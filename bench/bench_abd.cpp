// E14 -- Shared memory from messages, concretely: the ABD register
// (reference [22]) behind Section 2 item 4.
//
// Claims made executable: two-phase quorum operations give an atomic
// single-writer register whenever a majority of processes is correct;
// message complexity is 2n per write and 4n per read (the read's second
// half being the write-back that prevents new/old inversions); losing
// the majority blocks operations -- the partition behaviour predicate
// (4) excludes for shared memory.
#include "msgpass/abd.h"

#include "bench_util.h"

namespace {

using namespace rrfd;

void summary() {
  bench::banner(
      "E14 / ABD: an atomic register from messages + a majority",
      "Message complexity and the crash boundary of the emulation behind\n"
      "item 4 (reference [22]).");
  {
    bench::Table table({"n", "majority", "msgs/write", "msgs/read",
                        "atomicity (2000 random ops)"});
    for (int n : {3, 5, 9, 21}) {
      msgpass::AbdRegister reg(n, 0, 1);
      reg.begin_write(1);
      reg.run_until_quiet();
      const long w = reg.messages_sent();
      reg.begin_read(1);
      reg.run_until_quiet();
      const long r = reg.messages_sent() - w;

      // Random concurrent workload for the atomicity column.
      bool atomic = true;
      for (std::uint64_t seed = 0; seed < 10; ++seed) {
        msgpass::AbdRegister work(n, 0, seed);
        Rng driver(seed + 99);
        int writes = 0;
        auto busy = [&](core::ProcId c) {
          for (const auto& op : work.history()) {
            if (op.client == c && !op.done()) return true;
          }
          return false;
        };
        for (int event = 0; event < 200; ++event) {
          const int action = static_cast<int>(driver.below(4));
          if (action == 0 && !busy(0) && writes < 10) {
            work.begin_write(++writes);
          } else if (action == 1) {
            const auto c = static_cast<core::ProcId>(
                1 + driver.below(static_cast<std::uint64_t>(n - 1)));
            if (!busy(c)) work.begin_read(c);
          } else {
            work.step();
          }
        }
        work.run_until_quiet();
        atomic = atomic && msgpass::check_abd_atomicity(work.history()).empty();
      }

      table.add_row({std::to_string(n), std::to_string(n / 2 + 1),
                     std::to_string(w), std::to_string(r),
                     atomic ? "holds" : "VIOLATED"});
    }
    table.print();
  }
  {
    bench::banner("E14b / the majority boundary",
                  "Operations complete with < n/2 crashes and block at >= n/2.");
    bench::Table table({"n", "crashes", "write completes"});
    for (int n : {4, 5, 7}) {
      for (int crashes : {n / 2 - 1, n / 2, n / 2 + 1}) {
        if (crashes < 0 || crashes >= n) continue;
        msgpass::AbdRegister reg(n, 0, 2);
        for (int c = 0; c < crashes; ++c) {
          reg.crash(static_cast<core::ProcId>(n - 1 - c));
        }
        const int w = reg.begin_write(9);
        reg.run_until_quiet();
        table.add_row({std::to_string(n), std::to_string(crashes),
                       reg.op(w).done() ? "yes" : "no (blocked)"});
      }
    }
    table.print();
  }
}

void bm_abd_write(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    msgpass::AbdRegister reg(n, 0, seed++);
    reg.begin_write(7);
    reg.run_until_quiet();
    benchmark::DoNotOptimize(reg.history().size());
  }
  state.counters["msgs"] = 2.0 * n;
}
BENCHMARK(bm_abd_write)->Arg(5)->Arg(21)->Arg(63)->ArgName("n");

void bm_abd_read(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    msgpass::AbdRegister reg(n, 0, seed++);
    reg.begin_read(1);
    reg.run_until_quiet();
    benchmark::DoNotOptimize(reg.history().size());
  }
  state.counters["msgs"] = 4.0 * n;
}
BENCHMARK(bm_abd_read)->Arg(5)->Arg(21)->Arg(63)->ArgName("n");

}  // namespace

RRFD_BENCH_MAIN(summary)
