// E5 -- Theorem 4.1: asynchronous snapshot with <= k failures implements
// the first floor(f/k) rounds of a synchronous omission(f) system.
//
// Paper claim: the snapshot RRFD's per-round misses (<= k, forming a
// containment chain) accumulate to at most k * floor(f/k) <= f distinct
// announced processes -- exactly the omission model's budget. The summary
// verifies the cumulative-fault accounting across sweeps and shows the
// budget is spent at rate <= k per round.
#include "xform/round_combiner.h"

#include "bench_util.h"
#include "core/adversaries.h"
#include "core/predicates.h"

namespace {

using namespace rrfd;

void summary() {
  bench::banner(
      "E5 / Theorem 4.1: omission rounds from asynchronous snapshots",
      "Claim: a snapshot(k) pattern over floor(f/k) rounds IS an\n"
      "omission(f) pattern: cumulative announcements stay within f.");
  bench::Table table({"n", "k", "f", "rounds", "max cumulative faults",
                      "budget f", "omission(f) holds", "trials"});
  const int trials = 200;
  for (int n : {8, 16, 32}) {
    for (int k : {1, 2, 4}) {
      for (int f : {k, 3 * k, 6 * k}) {
        if (f >= n) continue;
        const int rounds = f / k;
        int max_cumulative = 0;
        bool holds = true;
        for (int trial = 0; trial < trials; ++trial) {
          core::SnapshotAdversary adv(
              n, k, 1000u * static_cast<unsigned>(trial) + static_cast<unsigned>(f));
          core::FaultPattern p = core::record_pattern(adv, rounds);
          core::FaultPattern omission = xform::omission_from_snapshot(p, k, f);
          max_cumulative =
              std::max(max_cumulative, omission.cumulative_union().size());
          holds = holds && core::sync_omission(f)->holds(omission);
        }
        table.add_row({std::to_string(n), std::to_string(k),
                       std::to_string(f), std::to_string(rounds),
                       std::to_string(max_cumulative), std::to_string(f),
                       holds ? "yes" : "NO", std::to_string(trials)});
      }
    }
  }
  table.print();
}

void bm_snapshot_to_omission(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  const int f = 3 * k;
  std::uint64_t seed = 9;
  for (auto _ : state) {
    core::SnapshotAdversary adv(n, k, seed++);
    core::FaultPattern p = core::record_pattern(adv, f / k);
    core::FaultPattern omission = xform::omission_from_snapshot(p, k, f);
    benchmark::DoNotOptimize(omission.rounds());
  }
}
BENCHMARK(bm_snapshot_to_omission)
    ->ArgsProduct({{16, 64}, {1, 2, 4}})
    ->ArgNames({"n", "k"});

}  // namespace

RRFD_BENCH_MAIN(summary)
