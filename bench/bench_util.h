// Shared helpers for the experiment benches.
//
// Every bench binary reproduces one experiment from DESIGN.md's index: it
// first prints a plain-text summary table (the "paper-shape" result that
// EXPERIMENTS.md records), then runs google-benchmark timings. The
// summary is computed from the same library code the tests validate.
#pragma once

#include <benchmark/benchmark.h>

#include <iostream>
#include <string>
#include <vector>

#include "util/str.h"

namespace rrfd::bench {

/// Plain fixed-width table printer for experiment summaries.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : widths_(headers.size()) {
    rows_.push_back(std::move(headers));
    for (std::size_t c = 0; c < rows_[0].size(); ++c) {
      widths_[c] = rows_[0][c].size();
    }
  }

  void add_row(std::vector<std::string> cells) {
    RRFD_REQUIRE(cells.size() == widths_.size());
    for (std::size_t c = 0; c < cells.size(); ++c) {
      widths_[c] = std::max(widths_[c], cells[c].size());
    }
    rows_.push_back(std::move(cells));
  }

  void print(std::ostream& os = std::cout) const {
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      os << "  ";
      for (std::size_t c = 0; c < rows_[r].size(); ++c) {
        os << pad_left(rows_[r][c], widths_[c]) << (c + 1 < rows_[r].size() ? "  " : "");
      }
      os << '\n';
      if (r == 0) {
        os << "  ";
        for (std::size_t c = 0; c < widths_.size(); ++c) {
          os << std::string(widths_[c], '-') << (c + 1 < widths_.size() ? "  " : "");
        }
        os << '\n';
      }
    }
  }

 private:
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::size_t> widths_;
};

inline void banner(const std::string& experiment, const std::string& claim) {
  std::cout << "\n=== " << experiment << " ===\n" << claim << "\n\n";
}

}  // namespace rrfd::bench

/// Standard main: experiment summary first, then benchmark timings.
#define RRFD_BENCH_MAIN(summary_fn)                       \
  int main(int argc, char** argv) {                       \
    summary_fn();                                         \
    ::benchmark::Initialize(&argc, argv);                 \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                \
    ::benchmark::Shutdown();                              \
    return 0;                                             \
  }
