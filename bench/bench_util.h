// Shared helpers for the experiment benches.
//
// Every bench binary reproduces one experiment from DESIGN.md's index: it
// first prints a plain-text summary table (the "paper-shape" result that
// EXPERIMENTS.md records), then runs google-benchmark timings. The
// summary is computed from the same library code the tests validate.
//
// Two output channels, kept strictly separate:
//  * the summary goes to stdout for humans, but to stderr whenever a
//    machine format is requested (--benchmark_format=json|csv), so that
//    `bench_x --benchmark_format=json | python3 -m json.tool` parses;
//  * every run additionally appends one machine-readable JSON object to
//    BENCH_rrfd.json (override the path with RRFD_BENCH_JSON, tag the
//    entry with RRFD_BENCH_LABEL) -- the perf trajectory the ROADMAP
//    tracks. See EXPERIMENTS.md for the schema. The record is written
//    with a single O_APPEND write so concurrent bench processes never
//    interleave partial lines.
//
// Summary sweeps can opt into the parallel sweep executor with
// RRFD_SWEEP_THREADS (see sweep/sweep.h and bench::sweep_trials below);
// the google-benchmark timing loops themselves always stay serial, since
// they measure per-op latency.
#pragma once

#include <benchmark/benchmark.h>
#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "sweep/sweep.h"
#include "util/str.h"

namespace rrfd::bench {

namespace detail {
inline std::ostream*& summary_stream() {
  static std::ostream* stream = &std::cout;
  return stream;
}
}  // namespace detail

/// Where experiment summaries go: stdout normally, stderr when the
/// benchmark output itself must stay machine-parseable.
inline std::ostream& summary_out() { return *detail::summary_stream(); }

/// Plain fixed-width table printer for experiment summaries.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : widths_(headers.size()) {
    rows_.push_back(std::move(headers));
    for (std::size_t c = 0; c < rows_[0].size(); ++c) {
      widths_[c] = rows_[0][c].size();
    }
  }

  void add_row(std::vector<std::string> cells) {
    RRFD_REQUIRE(cells.size() == widths_.size());
    for (std::size_t c = 0; c < cells.size(); ++c) {
      widths_[c] = std::max(widths_[c], cells[c].size());
    }
    rows_.push_back(std::move(cells));
  }

  void print(std::ostream& os) const {
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      os << "  ";
      for (std::size_t c = 0; c < rows_[r].size(); ++c) {
        os << pad_left(rows_[r][c], widths_[c]) << (c + 1 < rows_[r].size() ? "  " : "");
      }
      os << '\n';
      if (r == 0) {
        os << "  ";
        for (std::size_t c = 0; c < widths_.size(); ++c) {
          os << std::string(widths_[c], '-') << (c + 1 < widths_.size() ? "  " : "");
        }
        os << '\n';
      }
    }
  }

  void print() const { print(summary_out()); }

 private:
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::size_t> widths_;
};

inline void banner(const std::string& experiment, const std::string& claim) {
  summary_out() << "\n=== " << experiment << " ===\n" << claim << "\n\n";
}

// ---------------------------------------------------------------------------
// Machine-readable result emission (BENCH_rrfd.json).
// ---------------------------------------------------------------------------

/// One timed benchmark (one google-benchmark run).
struct ResultRecord {
  std::string name;            ///< e.g. "bm_engine_round_loop/n:32"
  std::int64_t iterations = 0;
  double real_per_op = 0.0;    ///< in `time_unit`
  double cpu_per_op = 0.0;     ///< in `time_unit`
  std::string time_unit;       ///< "ns", "us", ...
  std::vector<std::pair<std::string, double>> counters;
};

namespace detail {

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

inline std::string json_number(double v) {
  // JSON has no NaN/Inf; clamp to null-ish zero rather than emit garbage.
  if (!(v == v) || v > 1e308 || v < -1e308) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Captures every run while delegating display to the format-appropriate
/// base reporter (so --benchmark_format keeps working verbatim).
template <typename Base>
class CapturingReporter : public Base {
 public:
  template <typename... Args>
  explicit CapturingReporter(std::vector<ResultRecord>* sink, Args&&... args)
      : Base(std::forward<Args>(args)...), sink_(sink) {}

  void ReportRuns(
      const std::vector<benchmark::BenchmarkReporter::Run>& reports) override {
    for (const auto& run : reports) {
      if (run.error_occurred) continue;
      if (run.run_type ==
          benchmark::BenchmarkReporter::Run::RT_Aggregate) {
        continue;  // keep raw iterations only; aggregates are derivable
      }
      ResultRecord rec;
      rec.name = run.benchmark_name();
      rec.iterations = static_cast<std::int64_t>(run.iterations);
      rec.real_per_op = run.GetAdjustedRealTime();
      rec.cpu_per_op = run.GetAdjustedCPUTime();
      rec.time_unit = benchmark::GetTimeUnitString(run.time_unit);
      for (const auto& [key, counter] : run.counters) {
        rec.counters.emplace_back(key, counter.value);
      }
      sink_->push_back(std::move(rec));
    }
    Base::ReportRuns(reports);
  }

 private:
  std::vector<ResultRecord>* sink_;
};

}  // namespace detail

#ifndef RRFD_GIT_REV
#define RRFD_GIT_REV "unknown"
#endif

namespace detail {

/// Appends `line` to `path` with one O_APPEND write(2). POSIX makes the
/// seek-to-end + write atomic under O_APPEND, so records from concurrent
/// bench processes land whole -- an ofstream in append mode may flush a
/// record across several writes, and two racing processes can then
/// interleave partial lines (torn lines the strict parsers now call out).
inline void append_atomically(const std::string& path,
                              const std::string& line) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    std::cerr << "rrfd-bench: cannot open " << path << " for append\n";
    return;
  }
  ssize_t wrote;
  do {
    wrote = ::write(fd, line.data(), line.size());
  } while (wrote < 0 && errno == EINTR);
  if (wrote != static_cast<ssize_t>(line.size())) {
    std::cerr << "rrfd-bench: short/failed append to " << path << '\n';
  }
  ::close(fd);
}

}  // namespace detail

/// Appends one JSON object (a single line) describing this bench run to
/// BENCH_rrfd.json / $RRFD_BENCH_JSON. The file is JSON Lines: each line
/// parses standalone, and the whole file is a perf trajectory over time.
/// The record is emitted with a single O_APPEND write, so concurrent
/// bench runs appending to the same file cannot tear each other's lines.
inline void write_results_json(const std::string& experiment,
                               const std::vector<ResultRecord>& records) {
  if (records.empty()) return;
  const char* path_env = std::getenv("RRFD_BENCH_JSON");
  const std::string path = path_env ? path_env : "BENCH_rrfd.json";
  const char* label_env = std::getenv("RRFD_BENCH_LABEL");

  std::ostringstream os;
  os << "{\"experiment\":\"" << detail::json_escape(experiment) << "\""
     << ",\"git_rev\":\"" << detail::json_escape(RRFD_GIT_REV) << "\"";
  // `label` is always present (empty when RRFD_BENCH_LABEL is unset):
  // downstream diffing tools key rows on it, and a sometimes-missing
  // field made "unlabeled" indistinguishable from "written by an old
  // binary". The bench-smoke validator rejects label-less rows.
  os << ",\"label\":\""
     << detail::json_escape(label_env ? label_env : "") << "\"";
  os << ",\"results\":[";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const ResultRecord& r = records[i];
    if (i > 0) os << ',';
    os << "{\"name\":\"" << detail::json_escape(r.name) << "\""
       << ",\"iterations\":" << r.iterations
       << ",\"real_per_op\":" << detail::json_number(r.real_per_op)
       << ",\"cpu_per_op\":" << detail::json_number(r.cpu_per_op)
       << ",\"time_unit\":\"" << detail::json_escape(r.time_unit) << "\"";
    if (!r.counters.empty()) {
      os << ",\"counters\":{";
      for (std::size_t c = 0; c < r.counters.size(); ++c) {
        if (c > 0) os << ',';
        os << "\"" << detail::json_escape(r.counters[c].first)
           << "\":" << detail::json_number(r.counters[c].second);
      }
      os << '}';
    }
    os << '}';
  }
  os << "]}\n";
  detail::append_atomically(path, os.str());
}

/// Opt-in parallel summary sweeps: fn(trial, rng) per trial, fanned over
/// RRFD_SWEEP_THREADS workers (serial by default), results in trial
/// order and byte-identical to a serial run -- see sweep/sweep.h for the
/// determinism contract. Benches that call this must link rrfd_sweep.
template <typename Fn>
auto sweep_trials(int n_trials, std::uint64_t seed, Fn&& fn) {
  return ::rrfd::sweep::run(n_trials, seed, std::forward<Fn>(fn));
}

/// The shared main: routes the summary, runs google-benchmark with a
/// capturing reporter, and appends the machine-readable record.
inline int bench_main(int argc, char** argv, void (*summary_fn)()) {
  // Respect --benchmark_format before google-benchmark even parses it:
  // a machine format owns stdout, so the summary moves to stderr.
  std::string format = "console";
  for (int i = 1; i < argc; ++i) {
    const char* prefix = "--benchmark_format=";
    if (std::strncmp(argv[i], prefix, std::strlen(prefix)) == 0) {
      format = argv[i] + std::strlen(prefix);
    }
  }
  const bool machine = (format != "console");
  if (machine) detail::summary_stream() = &std::cerr;

  summary_fn();

  ::benchmark::Initialize(&argc, &argv[0]);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;

  std::vector<ResultRecord> records;
  std::size_t ran = 0;
  if (format == "json") {
    detail::CapturingReporter<benchmark::JSONReporter> reporter(&records);
    ran = ::benchmark::RunSpecifiedBenchmarks(&reporter);
  } else if (format == "csv") {
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    detail::CapturingReporter<benchmark::CSVReporter> reporter(&records);
#pragma GCC diagnostic pop
    ran = ::benchmark::RunSpecifiedBenchmarks(&reporter);
  } else {
    // Match the library's default console behaviour: colors only on ttys.
    const auto opts = isatty(fileno(stdout))
                          ? benchmark::ConsoleReporter::OO_ColorTabular
                          : benchmark::ConsoleReporter::OO_Tabular;
    detail::CapturingReporter<benchmark::ConsoleReporter> reporter(&records,
                                                                   opts);
    ran = ::benchmark::RunSpecifiedBenchmarks(&reporter);
  }
  (void)ran;

  // argv[0] may carry a path; the experiment name is the binary name.
  std::string experiment = argv[0] ? argv[0] : "bench";
  const std::size_t slash = experiment.find_last_of('/');
  if (slash != std::string::npos) experiment = experiment.substr(slash + 1);
  write_results_json(experiment, records);

  ::benchmark::Shutdown();
  return 0;
}

}  // namespace rrfd::bench

/// Standard main: experiment summary first, then benchmark timings, then
/// the BENCH_rrfd.json trajectory record.
#define RRFD_BENCH_MAIN(summary_fn)                        \
  int main(int argc, char** argv) {                        \
    return ::rrfd::bench::bench_main(argc, argv, summary_fn); \
  }
