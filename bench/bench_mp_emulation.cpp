// E7 -- Section 2 item 4: two rounds of asynchronous message passing
// (2f < n) emulate one round of SWMR shared memory.
//
// Paper claim: relaying first-round views through a second round yields,
// per emulated round, some process heard by everyone (predicate 4) while
// preserving the per-round bound f (predicate 3) -- the RRFD reading of
// the ABD emulation. The summary measures the emulation over the pattern
// combiner AND over the real event-driven message-passing substrate.
#include "xform/round_combiner.h"

#include <set>

#include "bench_util.h"
#include "core/adversaries.h"
#include "core/predicates.h"
#include "msgpass/round_sim.h"

namespace {

using namespace rrfd;

/// Protocol running the two-round emulation on the real substrate: round
/// payloads in odd rounds are values, in even rounds the bitmask of
/// first-round senders heard.
class EmulationProtocol final : public msgpass::RoundProtocol {
 public:
  explicit EmulationProtocol(int n)
      : n_(n), heard1_(static_cast<std::size_t>(n), core::ProcessSet(n)),
        heard_of_(static_cast<std::size_t>(n), core::ProcessSet(n)) {}

  std::uint64_t emit(core::ProcId i, core::Round r) override {
    if (r % 2 == 1) return static_cast<std::uint64_t>(i);  // value round
    return heard1_[static_cast<std::size_t>(i)].bits();    // relay round
  }

  void deliver(core::ProcId i, core::Round r, core::ProcId src,
               std::uint64_t payload) override {
    if (r % 2 == 1) {
      heard1_[static_cast<std::size_t>(i)].add(src);
    } else {
      heard_of_[static_cast<std::size_t>(i)] |=
          core::ProcessSet::from_bits(n_, payload);
    }
  }

  void round_complete(core::ProcId i, core::Round r,
                      const core::ProcessSet&) override {
    if (r % 2 == 0) {
      derived_.insert_or_assign(i, (heard_of_[static_cast<std::size_t>(i)] |
                                    heard1_[static_cast<std::size_t>(i)])
                                       .complement());
      heard1_[static_cast<std::size_t>(i)] = core::ProcessSet(n_);
      heard_of_[static_cast<std::size_t>(i)] = core::ProcessSet(n_);
    }
  }

  core::RoundFaults take_derived() {
    core::RoundFaults out;
    for (core::ProcId i = 0; i < n_; ++i) {
      out.push_back(derived_.count(i) ? derived_.at(i)
                                      : core::ProcessSet(n_));
    }
    derived_.clear();
    return out;
  }

 private:
  int n_;
  std::vector<core::ProcessSet> heard1_;
  std::vector<core::ProcessSet> heard_of_;
  std::map<core::ProcId, core::ProcessSet> derived_;
};

void summary() {
  bench::banner(
      "E7 / item 4: SWMR shared memory from majority message passing",
      "Claim: with 2f < n, two async rounds emulate one SWMR round --\n"
      "predicates (3) and (4) hold for the derived announcements.");
  {
    bench::Table table({"source", "n", "f", "pred 3 holds", "pred 4 holds",
                        "trials"});
    const int trials = 300;
    for (int n : {5, 9, 21, 63}) {
      for (int f : {1, 2, (n - 1) / 2}) {
        if (2 * f >= n) continue;
        bool p3 = true, p4 = true;
        for (int trial = 0; trial < trials; ++trial) {
          core::AsyncAdversary adv(
              n, f, 77u * static_cast<unsigned>(trial) + static_cast<unsigned>(n));
          core::FaultPattern two = core::record_pattern(adv, 2);
          core::FaultPattern derived = xform::swmr_from_async(two);
          p3 = p3 && core::PerRoundFaultBound(f).holds(derived);
          p4 = p4 && core::SomeoneHeardByAll().holds(derived);
        }
        table.add_row({"pattern combiner", std::to_string(n),
                       std::to_string(f), p3 ? "yes" : "NO",
                       p4 ? "yes" : "NO", std::to_string(trials)});
      }
    }
    // Real substrate runs.
    for (int n : {5, 9}) {
      const int f = (n - 1) / 2;
      bool p3 = true, p4 = true;
      const int trials_real = 50;
      for (int trial = 0; trial < trials_real; ++trial) {
        EmulationProtocol proto(n);
        msgpass::RoundEnforcedSim sim(
            n, f, 13u * static_cast<unsigned>(trial) + 7u);
        sim.run(proto, 2);
        core::FaultPattern derived(n);
        derived.append(proto.take_derived());
        p3 = p3 && core::PerRoundFaultBound(f).holds(derived);
        p4 = p4 && core::SomeoneHeardByAll().holds(derived);
      }
      table.add_row({"event-driven substrate", std::to_string(n),
                     std::to_string(f), p3 ? "yes" : "NO", p4 ? "yes" : "NO",
                     std::to_string(trials_real)});
    }
    table.print();
  }
  bench::banner(
      "E7b / partition counterexample",
      "Without a majority (2f >= n) the emulation fails: two halves that\n"
      "never hear each other leave nobody known to all.");
  {
    const int n = 4;
    core::FaultPattern p(n);
    const core::ProcessSet left(n, {0, 1}), right(n, {2, 3});
    for (int r = 0; r < 2; ++r) {
      core::RoundFaults round;
      for (core::ProcId i = 0; i < n; ++i) {
        round.push_back(left.contains(i) ? right : left);
      }
      p.append(round);
    }
    core::FaultPattern derived = xform::swmr_from_async(p);
    bench::summary_out()
        << "  n=4, f=2 partition: predicate 4 holds? "
        << (core::SomeoneHeardByAll().holds(derived) ? "yes (BUG)"
                                                     : "no (as expected)")
        << "\n";
  }
}

void bm_pattern_combiner(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int f = (n - 1) / 2;
  std::uint64_t seed = 2;
  for (auto _ : state) {
    core::AsyncAdversary adv(n, f, seed++);
    core::FaultPattern two = core::record_pattern(adv, 2);
    benchmark::DoNotOptimize(xform::swmr_from_async(two));
  }
}
BENCHMARK(bm_pattern_combiner)->Arg(9)->Arg(21)->Arg(63)->ArgName("n");

void bm_real_substrate_emulation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int f = (n - 1) / 2;
  std::uint64_t seed = 11;
  for (auto _ : state) {
    EmulationProtocol proto(n);
    msgpass::RoundEnforcedSim sim(n, f, seed++);
    auto pattern = sim.run(proto, 2);
    benchmark::DoNotOptimize(pattern.rounds());
  }
  state.counters["messages"] = 2.0 * n * n;
}
BENCHMARK(bm_real_substrate_emulation)->Arg(5)->Arg(9)->Arg(21)->ArgName("n");

}  // namespace

RRFD_BENCH_MAIN(summary)
