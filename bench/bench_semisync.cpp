// E4 / E4b -- Section 5: consensus in the semi-synchronous (DDS) model.
//
// Paper claims:
//   * DDS's algorithm ran in 2n steps; the open problem was an O(1)-step
//     algorithm. Theorem 5.1 + Theorem 3.1 give a 2-STEP algorithm.
//   * The 2-step round structure implements equation (5) -- identical
//     announcements -- under the model's delivery guarantee (phi = 1).
// The summary reports steps-to-decide for the 2-step algorithm vs the
// 2n-step baseline across n (the headline O(n) -> O(1)), and maps the
// guarantee boundary: equation (5) holds at phi = 1 and is violated by
// schedules at phi = 2.
#include "semisync/consensus.h"

#include "agreement/tasks.h"
#include "bench_util.h"
#include "core/predicates.h"
#include "xform/semisync_pattern.h"

namespace {

using namespace rrfd;

template <typename Algo>
int max_steps_to_decide(int n, int trials) {
  int worst = 0;
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<Algo> procs;
    for (int i = 0; i < n; ++i) procs.emplace_back(n, i, i + 1);
    std::vector<semisync::StepProcess*> raw;
    for (auto& p : procs) raw.push_back(&p);
    semisync::StepSimOptions opts;
    opts.phi = 1;
    opts.seed = 99u * static_cast<unsigned>(trial) + 3u;
    semisync::StepSim sim(raw, opts);
    auto result = sim.run();
    for (int s : result.steps_taken) worst = std::max(worst, s);
  }
  return worst;
}

void summary() {
  bench::banner(
      "E4 / Section 5: semi-synchronous consensus in 2 steps",
      "Claim: the DDS model admits a consensus algorithm deciding in 2\n"
      "steps (vs the 2n-step baseline) -- resolving the open problem.");
  {
    bench::Table table({"n", "2-step algorithm (steps)",
                        "naive baseline (steps)", "speedup"});
    for (int n : {2, 4, 8, 16, 32, 64}) {
      const int fast = max_steps_to_decide<semisync::TwoStepConsensus>(n, 50);
      const int slow =
          max_steps_to_decide<semisync::NaiveRepeatConsensus>(n, 10);
      table.add_row({std::to_string(n), std::to_string(fast),
                     std::to_string(slow),
                     fixed(static_cast<double>(slow) / fast, 1) + "x"});
    }
    table.print();
  }

  bench::banner(
      "E4b / Theorem 5.1: the delivery-bound boundary",
      "Claim: with delivery bound phi = 1 every run satisfies equation (5)\n"
      "(equal announcements); at phi = 2 adversarial schedules violate it.");
  bench::Table table({"phi", "n", "runs", "equation (5) violations"});
  for (int phi : {1, 2, 3}) {
    for (int n : {4, 8}) {
      const int runs = 300;
      int violations = 0;
      for (int trial = 0; trial < runs; ++trial) {
        semisync::StepSimOptions opts;
        opts.phi = phi;
        opts.early_delivery_prob = 0.3;
        opts.seed = 7u * static_cast<unsigned>(trial) + 1u;
        auto result = xform::semisync_pattern(n, /*rounds=*/3, opts);
        const bool ok = result.completed && !result.had_full_fault_set &&
                        core::equal_announcements()->holds(result.pattern);
        violations += !ok;
      }
      table.add_row({std::to_string(phi), std::to_string(n),
                     std::to_string(runs), std::to_string(violations)});
    }
  }
  table.print();
}

template <typename Algo>
void bm_consensus(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::uint64_t seed = 1;
  long total_steps = 0, runs = 0;
  for (auto _ : state) {
    std::vector<Algo> procs;
    for (int i = 0; i < n; ++i) procs.emplace_back(n, i, i);
    std::vector<semisync::StepProcess*> raw;
    for (auto& p : procs) raw.push_back(&p);
    semisync::StepSimOptions opts;
    opts.seed = seed++;
    semisync::StepSim sim(raw, opts);
    auto result = sim.run();
    total_steps += result.events;
    ++runs;
    benchmark::DoNotOptimize(result.events);
  }
  state.counters["events/run"] =
      static_cast<double>(total_steps) / static_cast<double>(runs);
}

void bm_twostep(benchmark::State& state) {
  bm_consensus<semisync::TwoStepConsensus>(state);
}
void bm_naive(benchmark::State& state) {
  bm_consensus<semisync::NaiveRepeatConsensus>(state);
}
BENCHMARK(bm_twostep)->Arg(4)->Arg(16)->Arg(64)->ArgName("n");
BENCHMARK(bm_naive)->Arg(4)->Arg(16)->Arg(64)->ArgName("n");

}  // namespace

RRFD_BENCH_MAIN(summary)
