// E9 -- Section 2 item 4 (discussion): the cycle argument and the
// 2-round conjecture.
//
// Paper claims: under the no-mutual-miss predicate, if no process is
// known to all after r rounds, the "does not know" relation contains a
// cycle of length > r, so after n rounds some input is common knowledge.
// The paper *conjectures* that two rounds suffice. The summary measures
// the empirical distribution of rounds-to-common-knowledge over random
// no-mutual-miss patterns and exhaustively checks the conjecture for
// small n over single-miss patterns.
#include "core/knowledge.h"

#include <algorithm>

#include "bench_util.h"
#include "core/adversaries.h"
#include "core/predicates.h"
#include "util/rng.h"

namespace {

using namespace rrfd;

/// A random one-round no-mutual-miss announcement: sample an orientation
/// of a random graph (each ordered pair (i,j) may be missed only if the
/// reverse is not).
core::RoundFaults random_no_mutual_round(int n, Rng& rng, double miss_prob) {
  core::RoundFaults round(static_cast<std::size_t>(n), core::ProcessSet(n));
  for (core::ProcId i = 0; i < n; ++i) {
    for (core::ProcId j = 0; j < n; ++j) {
      if (i == j) continue;
      if (round[static_cast<std::size_t>(j)].contains(i)) continue;
      if (rng.chance(miss_prob)) round[static_cast<std::size_t>(i)].add(j);
    }
  }
  // Keep every D a proper subset (structural requirement).
  for (auto& d : round) {
    if (d.full()) d.remove(static_cast<core::ProcId>(rng.below(static_cast<std::uint64_t>(n))));
  }
  return round;
}

void summary() {
  bench::banner(
      "E9 / item 4: the cycle argument and the 2-round conjecture",
      "Paper: under no-mutual-miss, some input is known to all within n\n"
      "rounds; 'we conjecture that two rounds suffice'. We measure the\n"
      "empirical maximum over random patterns.");
  {
    bench::Table table({"n", "miss prob", "max rounds to common knowledge",
                        "within n", "within 2 (conjecture)", "trials"});
    for (int n : {3, 4, 6, 8, 16, 32}) {
      for (double prob : {0.2, 0.5}) {
        const int trials = 400;
        int worst = 0;
        bool within_n = true;
        Rng rng(static_cast<std::uint64_t>(n) * 131u + (prob < 0.3 ? 1u : 2u));
        for (int trial = 0; trial < trials; ++trial) {
          core::FaultPattern p(n);
          for (int r = 0; r < n + 1; ++r) {
            p.append(random_no_mutual_round(n, rng, prob));
          }
          const core::Round rr = core::rounds_until_common_knowledge(p);
          if (rr < 0) {
            within_n = false;
            worst = n + 1;
          } else {
            worst = std::max(worst, rr);
            within_n = within_n && rr <= n;
          }
        }
        table.add_row({std::to_string(n), fixed(prob, 1),
                       std::to_string(worst), within_n ? "yes" : "NO",
                       worst <= 2 ? "held" : "open (max > 2 observed)",
                       std::to_string(trials)});
      }
    }
    table.print();
  }
  {
    bench::banner(
        "E9b / exhaustive single-miss patterns",
        "All functional-miss patterns (each process misses exactly one\n"
        "other, no mutual misses): exact worst-case rounds for small n.");
    bench::Table table({"n", "patterns checked", "worst rounds",
                        "2-round conjecture on this family"});
    for (int n : {3, 4}) {
      // Enumerate all assignments miss[i] in {0..n-1} \ {i} with the
      // no-mutual-miss constraint, repeated identically every round.
      long checked = 0;
      int worst = 0;
      std::vector<int> miss(static_cast<std::size_t>(n), 0);
      const long total = [&] {
        long t = 1;
        for (int i = 0; i < n; ++i) t *= n;  // include "miss self" = no miss
        return t;
      }();
      for (long code = 0; code < total; ++code) {
        long c = code;
        bool valid = true;
        for (int i = 0; i < n; ++i) {
          miss[static_cast<std::size_t>(i)] = static_cast<int>(c % n);
          c /= n;
        }
        core::RoundFaults round(static_cast<std::size_t>(n),
                                core::ProcessSet(n));
        for (int i = 0; i < n && valid; ++i) {
          const int m = miss[static_cast<std::size_t>(i)];
          if (m == i) continue;  // no miss
          if (miss[static_cast<std::size_t>(m)] == i) valid = false;  // mutual
          round[static_cast<std::size_t>(i)].add(m);
        }
        if (!valid) continue;
        ++checked;
        core::FaultPattern p(n);
        for (int r = 0; r < n + 1; ++r) p.append(round);
        const core::Round rr = core::rounds_until_common_knowledge(p);
        worst = std::max(worst, rr < 0 ? n + 1 : rr);
      }
      table.add_row({std::to_string(n), std::to_string(checked),
                     std::to_string(worst),
                     worst <= 2 ? "held" : "refuted on static patterns? see "
                                           "EXPERIMENTS.md"});
    }
    table.print();
  }
}

void bm_knowledge_propagation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(42);
  core::FaultPattern p(n);
  for (int r = 0; r < n; ++r) p.append(random_no_mutual_round(n, rng, 0.4));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::rounds_until_common_knowledge(p));
  }
}
BENCHMARK(bm_knowledge_propagation)->Arg(8)->Arg(32)->Arg(64)->ArgName("n");

}  // namespace

RRFD_BENCH_MAIN(summary)
