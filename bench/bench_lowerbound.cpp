// E6 -- Corollaries 4.2 / 4.4: the floor(f/k)+1 round bound for
// synchronous k-set agreement.
//
// Paper claim: any k-set agreement algorithm for the synchronous system
// with at most f crash (or omission) faults needs floor(f/k)+1 rounds.
// The summary runs flood-min against the chain adversary at exactly
// floor(f/k) rounds -- always producing k+1 distinct decisions -- and at
// floor(f/k)+1 rounds -- always correct. The crossover is the bound.
#include "agreement/flood_min.h"

#include "agreement/tasks.h"
#include "bench_util.h"
#include "core/adversaries.h"
#include "core/engine.h"

namespace {

using namespace rrfd;

struct BoundResult {
  int distinct = 0;
  bool ok = false;
};

BoundResult run_chain(int k, int chain_len, int extra_rounds) {
  const int f = k * chain_len;
  const int n = f + k + 2;
  core::ChainAdversary adv(n, f, k);
  const std::vector<int> inputs = adv.violating_inputs();
  std::vector<agreement::FloodMin> ps;
  for (int v : inputs) ps.emplace_back(v, adv.rounds() + extra_rounds);

  core::EngineOptions opts;
  opts.max_rounds = adv.rounds() + extra_rounds;
  opts.stop_when_all_decided = false;
  auto result = core::run_rounds(ps, adv, opts);

  core::ProcessSet survivors = core::ProcessSet::all(n);
  for (int m = 0; m < k; ++m) {
    for (core::Round j = 1; j <= adv.rounds(); ++j) {
      survivors.remove(adv.crasher(m, j));
    }
  }
  BoundResult out;
  out.distinct =
      agreement::distinct_decision_count(result.decisions, survivors);
  out.ok = agreement::check_k_set_agreement(inputs, result.decisions, k,
                                            survivors)
               .ok;
  return out;
}

void summary() {
  bench::banner(
      "E6 / Corollaries 4.2 & 4.4: floor(f/k)+1 round bound for k-set",
      "Claim: with f crash faults, k-set agreement is impossible in\n"
      "floor(f/k) rounds (the chain execution forces k+1 values) and\n"
      "solvable in floor(f/k)+1 (flood-min).");
  bench::Table table({"k", "f", "rounds run", "distinct decisions",
                      "k-set agreement"});
  for (int k : {1, 2, 3}) {
    for (int chain_len : {1, 2, 4}) {
      const int f = k * chain_len;
      BoundResult at_bound = run_chain(k, chain_len, 0);
      table.add_row({std::to_string(k), std::to_string(f),
                     std::to_string(chain_len) + "  (= floor(f/k))",
                     std::to_string(at_bound.distinct),
                     at_bound.ok ? "unexpectedly OK" : "VIOLATED (as proven)"});
      BoundResult above = run_chain(k, chain_len, 1);
      table.add_row({std::to_string(k), std::to_string(f),
                     std::to_string(chain_len + 1) + "  (= floor(f/k)+1)",
                     std::to_string(above.distinct),
                     above.ok ? "OK" : "UNEXPECTED VIOLATION"});
    }
  }
  table.print();
}

void bm_floodmin_chain(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const int chain_len = static_cast<int>(state.range(1));
  for (auto _ : state) {
    BoundResult r = run_chain(k, chain_len, 1);
    benchmark::DoNotOptimize(r.distinct);
  }
  state.counters["rounds"] = chain_len + 1;
}
BENCHMARK(bm_floodmin_chain)
    ->ArgsProduct({{1, 2, 3}, {1, 2, 4, 8}})
    ->ArgNames({"k", "R"});

void bm_floodmin_random_crash(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int f = static_cast<int>(state.range(1));
  std::vector<int> inputs;
  for (int i = 0; i < n; ++i) inputs.push_back(i);
  std::uint64_t seed = 3;
  for (auto _ : state) {
    std::vector<agreement::FloodMin> ps;
    for (int v : inputs) ps.emplace_back(v, f + 1);
    core::CrashAdversary adv(n, f, seed++);
    core::EngineOptions opts;
    opts.max_rounds = f + 1;
    opts.stop_when_all_decided = false;
    auto result = core::run_rounds(ps, adv, opts);
    benchmark::DoNotOptimize(result.decisions);
  }
}
BENCHMARK(bm_floodmin_random_crash)
    ->ArgsProduct({{8, 32, 64}, {1, 3, 7}})
    ->ArgNames({"n", "f"});

}  // namespace

RRFD_BENCH_MAIN(summary)
