// Flight-recorder overhead: tracing must cost nothing when off.
//
// The claim (DESIGN.md §3): every instrumented event site costs one relaxed
// atomic load and a predicted branch when no sink is attached. The summary
// measures the n = 32 engine round loop four ways --
//
//   handrolled  the same emit/announce/deliver cycle written out with no
//               trace sites at all (the true floor),
//   off         the instrumented core::run_rounds with no sink attached
//               (the config every test and experiment runs in),
//   ring        RingRecorder attached (the always-on flight recorder),
//   jsonl       JsonlWriter streaming to a null sink (full serialization),
//
// -- and reports the overhead of `off` relative to `handrolled`, which the
// acceptance bar requires to stay within 2%.
#include <benchmark/benchmark.h>

#include <chrono>
#include <ostream>
#include <streambuf>

#include "agreement/flood_min.h"
#include "bench_util.h"
#include "core/adversaries.h"
#include "core/engine.h"
#include "trace/trace.h"

namespace {

using rrfd::core::BenignAdversary;
using rrfd::core::DeliveryView;
using rrfd::core::EngineOptions;
using rrfd::core::FaultPattern;
using rrfd::core::ProcId;
using rrfd::core::Round;
using rrfd::core::RoundFaults;
using rrfd::agreement::FloodMin;

constexpr int kProcs = 32;
constexpr Round kRounds = 64;

std::vector<FloodMin> make_processes(int n) {
  std::vector<FloodMin> ps;
  ps.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) ps.emplace_back(i, kRounds);
  return ps;
}

/// The engine's round loop written out by hand with no trace sites: the
/// floor the instrumented engine is measured against.
int run_handrolled(int n) {
  auto ps = make_processes(n);
  BenignAdversary adv(n);
  FaultPattern pattern(n);
  std::vector<int> emitted;
  emitted.reserve(static_cast<std::size_t>(n));
  for (Round r = 1; r <= kRounds; ++r) {
    emitted.clear();
    for (ProcId i = 0; i < n; ++i) {
      emitted.push_back(ps[static_cast<std::size_t>(i)].emit(r));
    }
    pattern.append(adv.next_round());
    const RoundFaults& faults = pattern.round(r);
    for (ProcId i = 0; i < n; ++i) {
      const DeliveryView<int> view(emitted.data(),
                                   faults[static_cast<std::size_t>(i)]);
      ps[static_cast<std::size_t>(i)].absorb(
          r, view, faults[static_cast<std::size_t>(i)]);
    }
  }
  return ps[0].current_min();
}

/// The instrumented engine under whatever sink is currently attached.
int run_instrumented(int n) {
  auto ps = make_processes(n);
  BenignAdversary adv(n);
  EngineOptions opts;
  opts.max_rounds = kRounds;
  opts.stop_when_all_decided = false;
  auto result = rrfd::core::run_rounds(ps, adv, opts);
  return result.rounds;
}

/// An ostream that discards everything (JSONL serialization cost without
/// filesystem noise).
class NullBuffer final : public std::streambuf {
 protected:
  int overflow(int c) override { return c; }
  std::streamsize xsputn(const char*, std::streamsize count) override {
    return count;
  }
};

// ---------------------------------------------------------------------------
// google-benchmark timings
// ---------------------------------------------------------------------------

void bm_engine_loop_handrolled(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_handrolled(n));
  }
}
BENCHMARK(bm_engine_loop_handrolled)->Arg(8)->Arg(32)->ArgName("n");

void bm_trace_overhead_off(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_instrumented(n));
  }
}
BENCHMARK(bm_trace_overhead_off)->Arg(8)->Arg(32)->ArgName("n");

void bm_trace_overhead_ring(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  rrfd::trace::RingRecorder ring(256);
  rrfd::trace::ScopedTrace attach(&ring);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_instrumented(n));
  }
}
BENCHMARK(bm_trace_overhead_ring)->Arg(8)->Arg(32)->ArgName("n");

void bm_trace_overhead_jsonl(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  NullBuffer null_buffer;
  std::ostream null_stream(&null_buffer);
  rrfd::trace::JsonlWriter writer(null_stream);
  rrfd::trace::ScopedTrace attach(&writer);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_instrumented(n));
  }
}
BENCHMARK(bm_trace_overhead_jsonl)->Arg(8)->Arg(32)->ArgName("n");

// ---------------------------------------------------------------------------
// Summary: the 2% off-path claim, measured head to head
// ---------------------------------------------------------------------------

double best_ns_per_round(int (*fn)(int), int repeats) {
  using clock = std::chrono::steady_clock;
  // Warm up caches and the branch predictor before timing.
  benchmark::DoNotOptimize(fn(kProcs));
  double best = 1e300;
  for (int rep = 0; rep < repeats; ++rep) {
    const auto begin = clock::now();
    benchmark::DoNotOptimize(fn(kProcs));
    const auto end = clock::now();
    const double ns =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
                .count()) /
        static_cast<double>(kRounds);
    if (ns < best) best = ns;
  }
  return best;
}

void summary() {
  using rrfd::bench::Table;
  rrfd::bench::banner(
      "trace overhead (flight recorder off-path cost)",
      "Instrumented run_rounds vs the same loop with no trace sites, "
      "n = 32, 64 rounds. `off` must stay within 2% of `handrolled`.");

  const int repeats = 200;
  const double handrolled = best_ns_per_round(&run_handrolled, repeats);

  const double off = best_ns_per_round(&run_instrumented, repeats);

  rrfd::trace::RingRecorder ring(256);
  double with_ring = 0.0;
  {
    rrfd::trace::ScopedTrace attach(&ring);
    with_ring = best_ns_per_round(&run_instrumented, repeats);
  }

  NullBuffer null_buffer;
  std::ostream null_stream(&null_buffer);
  rrfd::trace::JsonlWriter writer(null_stream);
  double with_jsonl = 0.0;
  {
    rrfd::trace::ScopedTrace attach(&writer);
    with_jsonl = best_ns_per_round(&run_instrumented, repeats);
  }

  auto fmt1 = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f", v);
    return std::string(buf);
  };
  auto pct = [&](double v) { return fmt1((v / handrolled - 1.0) * 100.0) + "%"; };
  auto ns = fmt1;

  Table table({"config", "ns/round", "vs handrolled"});
  table.add_row({"handrolled", ns(handrolled), "--"});
  table.add_row({"off", ns(off), pct(off)});
  table.add_row({"ring", ns(with_ring), pct(with_ring)});
  table.add_row({"jsonl(null)", ns(with_jsonl), pct(with_jsonl)});
  table.print();
  rrfd::bench::summary_out()
      << "\n  acceptance: off within 2% of handrolled ("
      << pct(off) << " measured)\n";
}

}  // namespace

RRFD_BENCH_MAIN(summary)
