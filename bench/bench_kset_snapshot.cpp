// E2 -- Corollary 3.2: k-set agreement in asynchronous shared memory with
// at most k-1 crash failures.
//
// Paper claim: the Atomic-Snapshot RRFD with f = k-1 is a submodel of the
// k-uncertainty detector, so the one-round algorithm of Theorem 3.1
// solves k-set agreement there. The summary verifies the predicate
// implication and the end-to-end guarantee over seeded sweeps.
#include "agreement/one_round_kset.h"

#include "agreement/tasks.h"
#include "bench_util.h"
#include "core/adversaries.h"
#include "core/engine.h"
#include "core/predicates.h"

namespace {

using namespace rrfd;

void summary() {
  bench::banner(
      "E2 / Corollary 3.2: k-set agreement with k-1 snapshot failures",
      "Claim: atomic-snapshot RRFD with f = k-1 implies the k-uncertainty\n"
      "predicate, hence one-round k-set agreement with k-1 crash failures.");
  bench::Table table({"n", "k", "predicate implication", "max distinct",
                      "k-set ok", "trials"});
  const int trials = 200;
  for (int n : {8, 16, 32, 64}) {
    for (int k : {1, 2, 4}) {
      bool implication = true;
      bool task_ok = true;
      int max_distinct = 0;
      std::vector<int> inputs;
      for (int i = 0; i < n; ++i) inputs.push_back(i + 1);
      for (int trial = 0; trial < trials; ++trial) {
        core::SnapshotAdversary adv(
            n, k - 1, 31u * static_cast<unsigned>(trial) + 5u);
        core::FaultPattern p = core::record_pattern(adv, 1);
        implication = implication && core::k_uncertainty(k)->holds(p);

        adv.reset();
        std::vector<agreement::OneRoundKSet> ps;
        for (int v : inputs) ps.emplace_back(v);
        auto result = core::run_rounds(ps, adv);
        const int distinct = agreement::distinct_decision_count(
            result.decisions, core::ProcessSet::all(n));
        max_distinct = std::max(max_distinct, distinct);
        task_ok = task_ok && agreement::check_k_set_agreement(
                                 inputs, result.decisions, k,
                                 core::ProcessSet::all(n))
                                 .ok;
      }
      table.add_row({std::to_string(n), std::to_string(k),
                     implication ? "holds" : "VIOLATED",
                     std::to_string(max_distinct),
                     task_ok ? "yes" : "NO", std::to_string(trials)});
    }
  }
  table.print();
}

void bm_kset_under_snapshot(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  std::vector<int> inputs;
  for (int i = 0; i < n; ++i) inputs.push_back(i);
  std::uint64_t seed = 7;
  for (auto _ : state) {
    std::vector<agreement::OneRoundKSet> ps;
    for (int v : inputs) ps.emplace_back(v);
    core::SnapshotAdversary adv(n, k - 1, seed++);
    auto result = core::run_rounds(ps, adv);
    benchmark::DoNotOptimize(result.decisions);
  }
}
BENCHMARK(bm_kset_under_snapshot)
    ->ArgsProduct({{8, 32, 64}, {1, 2, 4}})
    ->ArgNames({"n", "k"});

}  // namespace

RRFD_BENCH_MAIN(summary)
