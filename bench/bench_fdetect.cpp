// E15 -- Section 7's program: RRFD generalizes classical failure
// detectors.
//
// Claims made executable by the detector bridge ("D(i,r) is the value
// that allows p_i to complete round r", item 6):
//   * P-driven rounds reproduce the synchronous crash structure;
//   * S-driven rounds satisfy the ImmortalProcess predicate, so the
//     rotating coordinator solves consensus with up to n-1 failures;
//   * diamond-S-driven rounds satisfy it only after stabilization: the
//     n-round algorithm fails on too-early windows and always succeeds
//     on post-stabilization windows.
#include "fdetect/bridge.h"

#include "agreement/s_consensus.h"
#include "agreement/tasks.h"
#include "bench_util.h"
#include "core/adversaries.h"
#include "core/engine.h"
#include "core/predicates.h"

namespace {

using namespace rrfd;

int consensus_failures(const core::FaultPattern& pattern,
                       const std::vector<int>& inputs,
                       const core::ProcessSet& alive) {
  const int n = pattern.n();
  std::vector<agreement::SConsensus> ps;
  for (int v : inputs) ps.emplace_back(n, v);
  core::ScriptedAdversary adv(pattern);
  auto result = core::run_rounds(ps, adv);
  return agreement::check_consensus(inputs, result.decisions, alive).ok ? 0
                                                                        : 1;
}

void summary() {
  bench::banner(
      "E15 / failure detectors as RRFDs (the Section 7 bridge)",
      "Detector-driven round completion turns oracle executions into\n"
      "fault patterns; the classical solvability results fall out of the\n"
      "pattern predicates.");
  {
    bench::Table table({"oracle", "n", "runs", "S-predicate holds",
                        "consensus failures"});
    const int runs = 100;
    for (int n : {4, 8, 16}) {
      std::vector<int> inputs;
      for (int i = 0; i < n; ++i) inputs.push_back(i + 1);

      int s_holds = 0, failures = 0;
      for (std::uint64_t seed = 0; seed < runs; ++seed) {
        fdetect::CrashSchedule sched(n);
        sched.crash_at(static_cast<core::ProcId>(n - 1), 5);
        fdetect::StrongOracle oracle(sched, seed, /*never_suspected=*/0, 0.5);
        fdetect::DetectorBridge bridge(sched, oracle, seed * 13 + 1);
        auto bridged = bridge.run(n);
        s_holds += core::detector_s()->holds(bridged.pattern);
        failures += consensus_failures(bridged.pattern, inputs,
                                       sched.correct());
      }
      table.add_row({"S", std::to_string(n), std::to_string(runs),
                     std::to_string(s_holds) + "/" + std::to_string(runs),
                     std::to_string(failures)});

      int early_failures = 0, late_failures = 0, late_holds = 0;
      for (std::uint64_t seed = 0; seed < runs; ++seed) {
        fdetect::CrashSchedule sched(n);
        fdetect::EventuallyStrongOracle oracle(sched, seed,
                                               /*stabilization=*/100000,
                                               /*never_suspected=*/0, 0.7);
        fdetect::DetectorBridge bridge(sched, oracle, seed * 13 + 1);
        auto bridged = bridge.run(n);  // entirely pre-stabilization
        early_failures += consensus_failures(bridged.pattern, inputs,
                                             core::ProcessSet::all(n));

        fdetect::EventuallyStrongOracle stable(sched, seed,
                                               /*stabilization=*/0,
                                               /*never_suspected=*/0, 0.7);
        fdetect::DetectorBridge bridge2(sched, stable, seed * 13 + 1);
        auto after = bridge2.run(n);  // entirely post-stabilization
        late_holds += core::detector_s()->holds(after.pattern);
        late_failures += consensus_failures(after.pattern, inputs,
                                            core::ProcessSet::all(n));
      }
      table.add_row({"diamond-S (early window)", std::to_string(n),
                     std::to_string(runs), "not owed",
                     std::to_string(early_failures)});
      table.add_row({"diamond-S (stable window)", std::to_string(n),
                     std::to_string(runs),
                     std::to_string(late_holds) + "/" + std::to_string(runs),
                     std::to_string(late_failures)});
    }
    table.print();
  }
}

void bm_bridge(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    fdetect::CrashSchedule sched(n);
    fdetect::StrongOracle oracle(sched, seed, 0, 0.4);
    fdetect::DetectorBridge bridge(sched, oracle, seed++);
    auto result = bridge.run(n);
    benchmark::DoNotOptimize(result.pattern.rounds());
  }
}
BENCHMARK(bm_bridge)->Arg(4)->Arg(16)->Arg(64)->ArgName("n");

}  // namespace

RRFD_BENCH_MAIN(summary)
