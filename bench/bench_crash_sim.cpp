// E6b -- Theorem 4.3: the cost of simulating synchronous crash rounds on
// asynchronous shared memory via adopt-commit.
//
// Paper claim: one simulated crash round costs three asynchronous rounds
// (snapshot + two adopt-commit register rounds), and each simulated round
// introduces at most k new faults. The summary reports the measured
// shared-memory step cost per simulated round and the fault accounting.
#include "xform/crash_from_async.h"

#include "agreement/flood_min.h"
#include "bench_util.h"
#include "runtime/schedulers.h"
#include "xform/pattern_checks.h"

namespace {

using namespace rrfd;

struct SimCost {
  double steps_per_round_per_proc = 0;
  int max_cumulative_faults = 0;
  bool crash_pattern_ok = true;
};

SimCost measure(int n, int k, core::Round rounds, int trials) {
  SimCost cost;
  long total_steps = 0;
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<agreement::FloodMin> procs;
    for (int i = 0; i < n; ++i) procs.emplace_back(i, rounds);

    // Count steps through a wrapping scheduler.
    class CountingScheduler final : public runtime::Scheduler {
     public:
      explicit CountingScheduler(std::uint64_t seed) : inner_(seed) {}
      Choice pick(const core::ProcessSet& runnable, int step) override {
        ++steps;
        return inner_.pick(runnable, step);
      }
      long steps = 0;

     private:
      runtime::RandomScheduler inner_;
    };
    CountingScheduler sched(17u * static_cast<unsigned>(trial) + 1u);
    auto result = xform::run_crash_from_async(procs, k, rounds, sched);
    total_steps += sched.steps;

    cost.crash_pattern_ok =
        cost.crash_pattern_ok &&
        xform::crash_pattern_holds_among(result.simulated,
                                         result.crashed.complement(),
                                         k * rounds);
    cost.max_cumulative_faults =
        std::max(cost.max_cumulative_faults,
                 result.simulated.cumulative_union().size());
  }
  cost.steps_per_round_per_proc = static_cast<double>(total_steps) /
                                  (static_cast<double>(trials) * rounds * n);
  return cost;
}

void summary() {
  bench::banner(
      "E6b / Theorem 4.3: crash-round simulation on async shared memory",
      "Claim: 3 async rounds (1 snapshot + 1 adopt-commit) simulate one\n"
      "synchronous crash round; each simulated round adds at most k new\n"
      "faults, so cumulative faults stay within f = k * rounds. Steps =\n"
      "shared-memory operations per process per simulated round (grows\n"
      "with n: n adopt-commit instances of O(n) reads each).");
  bench::Table table({"n", "k", "sim rounds", "steps/round/proc",
                      "max cumulative faults", "budget k*R", "<= budget?",
                      "crash pattern"});
  for (int n : {4, 6, 8}) {
    for (int k : {1, 2}) {
      const core::Round rounds = std::max(1, (n - 1) / k);
      SimCost c = measure(n, k, rounds, 5);
      table.add_row({std::to_string(n), std::to_string(k),
                     std::to_string(rounds),
                     fixed(c.steps_per_round_per_proc, 1),
                     std::to_string(c.max_cumulative_faults),
                     std::to_string(k * rounds),
                     c.max_cumulative_faults <= k * rounds ? "yes" : "NO",
                     c.crash_pattern_ok ? "valid" : "INVALID"});
    }
  }
  table.print();
}

void bm_crash_simulation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  const core::Round rounds = std::max(1, (n - 1) / k);
  std::uint64_t seed = 5;
  for (auto _ : state) {
    std::vector<agreement::FloodMin> procs;
    for (int i = 0; i < n; ++i) procs.emplace_back(i, rounds);
    runtime::RandomScheduler sched(seed++);
    auto result = xform::run_crash_from_async(procs, k, rounds, sched);
    benchmark::DoNotOptimize(result.decisions);
  }
  state.counters["sim_rounds"] = rounds;
  state.counters["async_rounds"] = 3.0 * rounds;
}
BENCHMARK(bm_crash_simulation)
    ->ArgsProduct({{4, 6, 8}, {1, 2}})
    ->ArgNames({"n", "k"});

}  // namespace

RRFD_BENCH_MAIN(summary)
