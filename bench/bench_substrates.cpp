// E11 -- Substrate performance and structural guarantees.
//
// Covers the building blocks the other experiments stand on:
//  * the round engine itself: emit/announce/absorb throughput of the
//    zero-copy delivery path every other experiment runs on;
//  * item 5: immediate-snapshot rounds satisfy the containment predicate;
//  * item 3's system B: two quorum-skew rounds implement one async round
//    (why A is not a weakest RRFD for message passing);
//  * snapshot implementations: reference vs Afek construction step costs.
#include "shm/snapshot.h"

#include <cstdlib>
#include <string_view>

#include "agreement/flood_min.h"
#include "bench_util.h"
#include "core/adversaries.h"
#include "core/engine.h"
#include "core/predicates.h"
#include "runtime/schedulers.h"
#include "xform/round_combiner.h"
#include "util/rng.h"

namespace {

using namespace rrfd;

void summary() {
  bench::banner(
      "E11a / item 5: immediate snapshots realize the snapshot RRFD",
      "Claim: one-shot immediate snapshot views satisfy self-inclusion and\n"
      "containment -- the item-5 predicate with D(i,r) the view complement.");
  {
    bench::Table table({"n", "runs", "containment violations",
                        "self-inclusion violations"});
    for (int n : {4, 8, 16}) {
      int containment_bad = 0, self_bad = 0;
      const int runs = 100;
      for (int trial = 0; trial < runs; ++trial) {
        shm::ImmediateSnapshot<int> snap(n);
        std::vector<std::optional<shm::View<int>>> views(
            static_cast<std::size_t>(n));
        runtime::Simulation sim(n, [&](runtime::Context& ctx) {
          views[static_cast<std::size_t>(ctx.id())] =
              snap.participate(ctx, ctx.id());
        });
        runtime::RandomScheduler sched(10u * static_cast<unsigned>(trial) + 3u);
        sim.run(sched);
        for (int i = 0; i < n; ++i) {
          const auto& vi = views[static_cast<std::size_t>(i)];
          if (!vi) continue;
          if (!(*vi)[static_cast<std::size_t>(i)]) ++self_bad;
          for (int j = i + 1; j < n; ++j) {
            const auto& vj = views[static_cast<std::size_t>(j)];
            if (!vj) continue;
            if (!shm::view_contains(*vi, *vj) &&
                !shm::view_contains(*vj, *vi)) {
              ++containment_bad;
            }
          }
        }
      }
      table.add_row({std::to_string(n), std::to_string(runs),
                     std::to_string(containment_bad),
                     std::to_string(self_bad)});
    }
    table.print();
  }
  bench::banner(
      "E11b / item 3: two rounds of system B implement one round of A",
      "Claim: with f < t and 2t < n, quorum-skew(t, f) relayed over two\n"
      "rounds satisfies the per-round bound f -- so A is NOT a weakest\n"
      "RRFD for asynchronous message passing.");
  {
    bench::Table table({"n", "t", "f", "derived |D| max", "bound f holds",
                        "trials"});
    struct Cfg { int n, t, f; };
    for (Cfg cfg : {Cfg{7, 3, 1}, Cfg{9, 4, 2}, Cfg{21, 8, 3}}) {
      Rng rng(static_cast<std::uint64_t>(cfg.n));
      int max_d = 0;
      bool holds = true;
      const int trials = 200;
      for (int trial = 0; trial < trials; ++trial) {
        core::FaultPattern b(cfg.n);
        for (int round = 0; round < 2; ++round) {
          core::RoundFaults rf;
          std::vector<int> q =
              rng.sample_without_replacement(cfg.n, cfg.t);  // maximal Q
          core::ProcessSet in_q(cfg.n);
          for (int p : q) in_q.add(p);
          for (core::ProcId i = 0; i < cfg.n; ++i) {
            // Maximal-size misses: the hardest patterns inside B.
            const int bound = in_q.contains(i) ? cfg.t : cfg.f;
            core::ProcessSet d(cfg.n);
            for (int m : rng.sample_without_replacement(cfg.n, bound)) {
              d.add(m);
            }
            rf.push_back(d);
          }
          b.append(rf);
        }
        core::FaultPattern a = xform::async_from_quorum_skew(b);
        for (core::ProcId i = 0; i < cfg.n; ++i) {
          max_d = std::max(max_d, a.d(i, 1).size());
        }
        holds = holds && core::async_message_passing(cfg.f)->holds(a);
      }
      table.add_row({std::to_string(cfg.n), std::to_string(cfg.t),
                     std::to_string(cfg.f), std::to_string(max_d),
                     holds ? "yes" : "NO", std::to_string(trials)});
    }
    table.print();
  }
}

// RRFD_BENCH_ENGINE_PATH=word|set selects the engine round-loop
// implementation (default word), so CI can time the same binary over
// both paths and diff the resulting JSONL rows.
core::EnginePath bench_engine_path() {
  const char* env = std::getenv("RRFD_BENCH_ENGINE_PATH");
  if (env == nullptr || *env == '\0') return core::EnginePath::kWord;
  const std::string_view v(env);
  RRFD_REQUIRE_MSG(v == "word" || v == "set",
                   "RRFD_BENCH_ENGINE_PATH must be 'word' or 'set'");
  return v == "set" ? core::EnginePath::kSet : core::EnginePath::kWord;
}

// The round loop every experiment stands on: flood-min over a fault-free
// adversary, fixed round count, so the timing isolates the engine's
// emit/announce/deliver cycle rather than any algorithm or adversary cost.
void bm_engine_round_loop(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const core::Round rounds = 64;
  core::EngineOptions opts;
  opts.max_rounds = rounds;
  opts.stop_when_all_decided = false;
  opts.path = bench_engine_path();
  core::BenignAdversary adv(n);
  for (auto _ : state) {
    std::vector<agreement::FloodMin> ps;
    ps.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) ps.emplace_back(i, rounds);
    adv.reset();
    auto result = core::run_rounds(ps, adv, opts);
    benchmark::DoNotOptimize(result.rounds);
  }
  state.counters["rounds_per_sec"] = benchmark::Counter(
      static_cast<double>(rounds) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(bm_engine_round_loop)->Arg(8)->Arg(32)->Arg(64)->ArgName("n");

void bm_immediate_snapshot(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    shm::ImmediateSnapshot<int> snap(n);
    runtime::Simulation sim(n, [&](runtime::Context& ctx) {
      benchmark::DoNotOptimize(snap.participate(ctx, ctx.id()));
    });
    runtime::RandomScheduler sched(seed++);
    sim.run(sched);
  }
}
BENCHMARK(bm_immediate_snapshot)->Arg(4)->Arg(8)->Arg(16)->ArgName("n");

void bm_afek_snapshot(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    shm::AfekSnapshot<int> snap(n);
    runtime::Simulation sim(n, [&](runtime::Context& ctx) {
      snap.update(ctx, ctx.id());
      benchmark::DoNotOptimize(snap.scan(ctx));
    });
    runtime::RandomScheduler sched(seed++);
    sim.run(sched, 1 << 20);
  }
}
BENCHMARK(bm_afek_snapshot)->Arg(4)->Arg(8)->Arg(16)->ArgName("n");

void bm_direct_snapshot(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    shm::DirectSnapshot<int> snap(n);
    runtime::Simulation sim(n, [&](runtime::Context& ctx) {
      snap.update(ctx, ctx.id());
      benchmark::DoNotOptimize(snap.scan(ctx));
    });
    runtime::RandomScheduler sched(seed++);
    sim.run(sched);
  }
}
BENCHMARK(bm_direct_snapshot)->Arg(4)->Arg(8)->Arg(16)->ArgName("n");

}  // namespace

RRFD_BENCH_MAIN(summary)
