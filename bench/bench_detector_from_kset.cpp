// E3 -- Theorem 3.3: building the k-uncertainty detector from a k-set
// consensus object plus SWMR shared memory.
//
// Paper claim: the construction supports |U D \ ^ D| < k per round, and
// every identifier in a process's Q has already emitted its round value.
// The summary sweeps n, k and schedules; "max uncertainty" is the largest
// |U D \ ^ D| observed (must be < k; it should also be > 0 sometimes for
// k > 1, showing the construction is not vacuously strong).
#include "xform/detector_from_kset.h"

#include "bench_util.h"
#include "runtime/schedulers.h"
#include "xform/pattern_checks.h"

namespace {

using namespace rrfd;

void summary() {
  bench::banner(
      "E3 / Theorem 3.3: k-uncertainty detector from a k-set object",
      "Claim: per round, announcements disagree on fewer than k\n"
      "processes, and every member of Q has already emitted.");
  bench::Table table({"n", "k", "max uncertainty", "< k?",
                      "emissions visible", "trials"});
  for (int n : {4, 6, 8, 16}) {
    for (int k : {1, 2, 3}) {
      const int trials = 60;
      int max_unc = 0;
      bool visible = true;
      for (int trial = 0; trial < trials; ++trial) {
        runtime::RandomScheduler sched(
            100u * static_cast<unsigned>(trial) + static_cast<unsigned>(n + k));
        auto result = xform::run_detector_from_kset(
            n, k, /*rounds=*/3, sched,
            static_cast<std::uint64_t>(trial) * 31u + 7u);
        for (core::Round r = 1; r <= result.pattern.rounds(); ++r) {
          max_unc = std::max(max_unc, (result.pattern.round_union(r) -
                                       result.pattern.round_intersection(r))
                                          .size());
        }
        for (const auto& round : result.emission_visible) {
          for (bool v : round) visible = visible && v;
        }
      }
      table.add_row({std::to_string(n), std::to_string(k),
                     std::to_string(max_unc),
                     max_unc < k ? "yes" : "NO",
                     visible ? "always" : "MISSING", std::to_string(trials)});
    }
  }
  table.print();
}

void bm_detector_from_kset(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    runtime::RandomScheduler sched(seed);
    auto result = xform::run_detector_from_kset(n, k, 2, sched, seed);
    ++seed;
    benchmark::DoNotOptimize(result.pattern.rounds());
  }
}
BENCHMARK(bm_detector_from_kset)
    ->ArgsProduct({{4, 8, 16}, {1, 2, 3}})
    ->ArgNames({"n", "k"});

}  // namespace

RRFD_BENCH_MAIN(summary)
