// E8 -- Section 2 item 6: the detector-S RRFD and wait-free consensus.
//
// Paper claims: (a) the S system's RRFD predicate "exists p_j never
// announced" is equivalent to |U U D| < n, i.e. the omission predicate
// with f = n-1; (b) this reduces wait-free consensus for S to an
// algorithm for that omission system -- realized here by the rotating
// coordinator, which decides in exactly n rounds.
#include "agreement/s_consensus.h"

#include "agreement/tasks.h"
#include "bench_util.h"
#include "core/adversaries.h"
#include "core/engine.h"
#include "core/predicates.h"

namespace {

using namespace rrfd;

void summary() {
  bench::banner(
      "E8 / item 6: detector-S RRFD and rotating-coordinator consensus",
      "Claims: S-predicate == cumulative bound n-1 (predicate\n"
      "manipulation), and consensus solvable in n rounds for every choice\n"
      "of immortal process, with all but one process allowed to fail.");
  {
    bench::Table table({"n", "predicate equivalence trials", "agree"});
    for (int n : {4, 8, 16, 32}) {
      const int trials = 300;
      bool agree = true;
      core::AsyncAdversary adv(n, n - 1, static_cast<unsigned>(n) * 7u);
      for (int trial = 0; trial < trials; ++trial) {
        core::FaultPattern p = core::record_pattern(adv, 4);
        agree = agree && (core::ImmortalProcess().holds(p) ==
                          core::CumulativeFaultBound(n - 1).holds(p));
      }
      table.add_row({std::to_string(n), std::to_string(trials),
                     agree ? "always" : "MISMATCH"});
    }
    table.print();
  }
  {
    bench::Table table(
        {"n", "rounds to decide", "consensus ok (all immortals x seeds)"});
    for (int n : {2, 4, 8, 16, 32}) {
      std::vector<int> inputs;
      for (int i = 0; i < n; ++i) inputs.push_back(i + 1);
      bool ok = true;
      int rounds = 0;
      for (core::ProcId immortal = 0; immortal < n; ++immortal) {
        for (std::uint64_t seed = 1; seed <= 10; ++seed) {
          std::vector<agreement::SConsensus> ps;
          for (int v : inputs) ps.emplace_back(n, v);
          core::ImmortalAdversary adv(n, seed, immortal);
          auto result = core::run_rounds(ps, adv);
          rounds = std::max(rounds, result.rounds);
          ok = ok && agreement::check_consensus(inputs, result.decisions,
                                                core::ProcessSet::all(n))
                         .ok;
        }
      }
      table.add_row({std::to_string(n), std::to_string(rounds),
                     ok ? "yes" : "NO"});
    }
    table.print();
  }
}

void bm_s_consensus(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<int> inputs;
  for (int i = 0; i < n; ++i) inputs.push_back(i);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    std::vector<agreement::SConsensus> ps;
    for (int v : inputs) ps.emplace_back(n, v);
    core::ImmortalAdversary adv(n, seed++);
    auto result = core::run_rounds(ps, adv);
    benchmark::DoNotOptimize(result.decisions);
  }
  state.counters["rounds"] = n;
}
BENCHMARK(bm_s_consensus)->Arg(4)->Arg(16)->Arg(64)->ArgName("n");

}  // namespace

RRFD_BENCH_MAIN(summary)
