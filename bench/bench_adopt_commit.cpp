// E10 -- Section 4.2: the adopt-commit protocol.
//
// Paper claim: the two-array protocol solves adopt-commit wait-free
// (n-1-resilient) in SWMR shared memory. The summary reports the step
// complexity (2 writes + 2n reads per process), exhaustive safety for
// n = 2 (all interleavings, with and without a crash), and randomized
// safety at larger n.
#include "agreement/adopt_commit.h"

#include "bench_util.h"
#include "runtime/explorer.h"
#include "runtime/schedulers.h"
#include "sweep/sharded_explorer.h"

namespace {

using namespace rrfd;

struct SafetyStats {
  long runs = 0;
  long violations = 0;
  long commits = 0;
  long adopts = 0;
};

SafetyStats random_sweep(int n, int trials) {
  SafetyStats stats;
  std::vector<int> proposals;
  for (int i = 0; i < n; ++i) proposals.push_back(i % 2);
  for (int trial = 0; trial < trials; ++trial) {
    agreement::AdoptCommit ac(n);
    std::vector<std::optional<agreement::AdoptCommitResult>> results(
        static_cast<std::size_t>(n));
    runtime::Simulation sim(n, [&](runtime::Context& ctx) {
      results[static_cast<std::size_t>(ctx.id())] =
          ac.run(ctx, proposals[static_cast<std::size_t>(ctx.id())]);
    });
    runtime::RandomScheduler sched(
        1000u * static_cast<unsigned>(trial) + static_cast<unsigned>(n),
        /*crash_prob=*/0.01, /*max_crashes=*/n - 1);
    sim.run(sched);
    ++stats.runs;

    std::optional<int> committed;
    bool bad = false;
    for (const auto& r : results) {
      if (!r) continue;
      if (r->commit) {
        if (committed && *committed != r->value) bad = true;
        committed = r->value;
        ++stats.commits;
      } else {
        ++stats.adopts;
      }
    }
    if (committed) {
      for (const auto& r : results) {
        if (r && r->value != *committed) bad = true;
      }
    }
    stats.violations += bad;
  }
  return stats;
}

void summary() {
  bench::banner(
      "E10 / Section 4.2: the adopt-commit protocol",
      "Claim: wait-free adopt-commit from two SWMR register arrays.\n"
      "Steps per process: 2 writes + 2n reads = 2n + 2.");
  {
    bench::Table table({"n", "steps/process (exact)", "runs", "violations",
                        "commit outcomes", "adopt outcomes"});
    for (int n : {2, 3, 5, 8, 16, 32}) {
      SafetyStats stats = random_sweep(n, 150);
      table.add_row({std::to_string(n), std::to_string(2 * n + 2),
                     std::to_string(stats.runs),
                     std::to_string(stats.violations),
                     std::to_string(stats.commits),
                     std::to_string(stats.adopts)});
    }
    table.print();
  }
  {
    bench::banner("E10b / exhaustive model checking (n = 2)",
                  "Every schedule, and every schedule with one crash.");
    bench::Table table({"configuration", "schedules", "exhausted",
                        "violations"});
    for (int crashes : {0, 1}) {
      runtime::ScheduleExplorer::Options opts;
      opts.max_schedules = 5000000;
      opts.max_crashes = crashes;
      // One schedule check; `violations` is nullptr for the probe run.
      auto check_one = [](long* violations) {
        return [violations](runtime::Scheduler& sched) {
          agreement::AdoptCommit ac(2);
          std::vector<std::optional<agreement::AdoptCommitResult>> results(2);
          runtime::Simulation sim(2, [&](runtime::Context& ctx) {
            results[static_cast<std::size_t>(ctx.id())] =
                ac.run(ctx, ctx.id());  // distinct proposals 0, 1
          });
          sim.run(sched);
          if (violations == nullptr) return;
          std::optional<int> committed;
          for (const auto& r : results) {
            if (r && r->commit) {
              if (committed && *committed != r->value) ++*violations;
              committed = r->value;
            }
          }
          if (committed) {
            for (const auto& r : results) {
              if (r && r->value != *committed) ++*violations;
            }
          }
        };
      };
      // Sharded by root decision; parallel under RRFD_SWEEP_THREADS. Each
      // shard counts into its own slot -- summed in shard order below, so
      // the total matches the serial explorer's exactly.
      std::vector<long> per_shard(16, 0);
      auto stats = sweep::explore_sharded(
          opts, [&](int shard) {
            return check_one(
                shard < 0 ? nullptr
                          : &per_shard[static_cast<std::size_t>(shard)]);
          });
      long violations = 0;
      for (long v : per_shard) violations += v;
      table.add_row({"n=2, crashes<=" + std::to_string(crashes),
                     std::to_string(stats.schedules),
                     stats.exhausted ? "yes" : "no",
                     std::to_string(violations)});
    }
    table.print();
  }
}

void bm_adopt_commit(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    agreement::AdoptCommit ac(n);
    runtime::Simulation sim(n, [&](runtime::Context& ctx) {
      benchmark::DoNotOptimize(ac.run(ctx, ctx.id() % 2));
    });
    runtime::RandomScheduler sched(seed++);
    sim.run(sched);
  }
  state.counters["steps/proc"] = 2 * n + 2;
}
BENCHMARK(bm_adopt_commit)->Arg(2)->Arg(8)->Arg(32)->ArgName("n");

}  // namespace

RRFD_BENCH_MAIN(summary)
