// E17 -- The exhaustive submodel engine itself (core/submodel.h).
//
// E13 asks lattice questions; this bench measures the machinery that
// answers them: prefix-pruned DFS with incremental StepEvaluators,
// process-permutation symmetry reduction, and deterministic sharding
// over the sweep worker pool. The summary contrasts the enumeration
// modes on fixed workloads and verifies that the sharded runs return
// byte-identical results to the serial ones; the timed benchmarks emit
// nodes/s, decided-patterns/s, pruning ratio, symmetry factor, and
// serial-vs-parallel speedup as counters into BENCH_rrfd.json.
#include "core/submodel.h"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <string_view>

#include "bench_util.h"
#include "core/predicates.h"
#include "sweep/submodel_parallel.h"

namespace {

using namespace rrfd;
using Clock = std::chrono::steady_clock;

/// Baseline decided-patterns/s measured by the summary; the timed
/// benchmarks report their speedup against it.
double g_baseline_patterns_per_s = 0.0;

// RRFD_BENCH_ENGINE_PATH=word|set selects which representation the DFS
// feeds the evaluators (default word), mirroring bench_substrates, so one
// binary records the E17 pre/post throughput multiple of the word cores.
core::EnginePath bench_engine_path() {
  const char* env = std::getenv("RRFD_BENCH_ENGINE_PATH");
  if (env == nullptr || *env == '\0') return core::EnginePath::kWord;
  const std::string_view v(env);
  RRFD_REQUIRE_MSG(v == "word" || v == "set",
                   "RRFD_BENCH_ENGINE_PATH must be 'word' or 'set'");
  return v == "set" ? core::EnginePath::kSet : core::EnginePath::kWord;
}

// RRFD_SUBMODEL_MEMO=on|off|auto selects the suffix-memoization policy
// (default auto), so one binary records the E17 pre-memo/post-memo rows
// and the E21 equivalence row against the same build.
core::Memo bench_memo() {
  const char* env = std::getenv("RRFD_SUBMODEL_MEMO");
  if (env == nullptr || *env == '\0') return core::Memo::kAuto;
  const std::string_view v(env);
  RRFD_REQUIRE_MSG(v == "on" || v == "off" || v == "auto",
                   "RRFD_SUBMODEL_MEMO must be 'on', 'off', or 'auto'");
  if (v == "on") return core::Memo::kOn;
  return v == "off" ? core::Memo::kOff : core::Memo::kAuto;
}

core::EnumOptions mode_options(bool prune, core::Symmetry sym, int threads) {
  core::EnumOptions o;
  o.prune = prune;
  o.symmetry = sym;
  o.path = bench_engine_path();
  o.memo = bench_memo();
  if (threads > 0) o.runner = sweep::shard_runner(threads);
  return o;
}

bool same_result(const core::ImplicationResult& a,
                 const core::ImplicationResult& b) {
  return a.holds == b.holds && a.patterns_checked == b.patterns_checked &&
         a.counterexample.has_value() == b.counterexample.has_value() &&
         (!a.counterexample.has_value() ||
          *a.counterexample == *b.counterexample) &&
         a.stats.nodes == b.stats.nodes && a.stats.leaves == b.stats.leaves &&
         a.stats.pruned_subtrees == b.stats.pruned_subtrees &&
         a.stats.patterns_decided == b.stats.patterns_decided &&
         a.stats.expanded_roots == b.stats.expanded_roots &&
         a.stats.memo_hits == b.stats.memo_hits &&
         a.stats.memo_misses == b.stats.memo_misses &&
         a.stats.memo_entries == b.stats.memo_entries;
}

std::string rate_str(double per_s) {
  return cat(static_cast<std::int64_t>(per_s / 1e6), "M/s");
}

std::string ratio_str(double ratio) {
  const auto tenths = static_cast<std::int64_t>(ratio * 10);
  return cat(tenths / 10, ".", tenths % 10, "x");
}

void summary() {
  bench::banner(
      "E17 / pruned, symmetry-reduced, sharded exhaustive checking",
      "Workload 1: snapshot(1) => 2-uncertainty, n = 4, 1 round (50625\n"
      "patterns; the implication holds, so every pattern is decided).\n"
      "Workload 2: detector-S => cumulative(3), n = 4, 2 rounds\n"
      "(15^8 = 2562890625 patterns). patterns/s counts *decided*\n"
      "patterns: a pruned subtree decides all its leaves at once.");

  const auto snapshot = core::atomic_snapshot(1);
  const auto kunc = core::k_uncertainty(2);

  struct Mode {
    std::string label;
    bool prune;
    core::Symmetry sym;
  };
  const std::vector<Mode> modes = {
      {"baseline (no prune, no sym)", false, core::Symmetry::kOff},
      {"pruned", true, core::Symmetry::kOff},
      {"pruned + symmetry", true, core::Symmetry::kOn},
  };

  bench::Table t1({"mode", "nodes", "decided", "sym factor", "ms",
                   "decided/s", "vs baseline"});
  double baseline_rate = 0.0;
  for (const auto& m : modes) {
    const auto t0 = Clock::now();
    auto r = core::implies_exhaustive(*snapshot, *kunc, 4, 1,
                                      mode_options(m.prune, m.sym, 0));
    const double s = std::chrono::duration<double>(Clock::now() - t0).count();
    const double rate = static_cast<double>(r.patterns_checked) / s;
    if (baseline_rate == 0.0) baseline_rate = rate;
    t1.add_row({m.label, std::to_string(r.stats.nodes),
                std::to_string(r.patterns_checked),
                cat(r.stats.total_roots / r.stats.expanded_roots, "x"),
                std::to_string(s * 1e3), rate_str(rate),
                ratio_str(rate / baseline_rate)});
  }
  t1.print();
  g_baseline_patterns_per_s = baseline_rate;

  bench::summary_out()
      << "\nWorkload 2, serial vs sharded (same 256 shards, spliced in "
         "order):\n\n";
  const core::ImmortalProcess immortal;
  const core::CumulativeFaultBound bound(3);
  bench::Table t2({"threads", "nodes", "pruned subtrees", "decided", "ms",
                   "decided/s", "speedup", "identical"});
  core::ImplicationResult serial;
  double serial_s = 0.0;
  for (const int threads : {1, 2, 4, 8}) {
    core::EnumOptions path_opts;
    path_opts.path = bench_engine_path();
    path_opts.memo = bench_memo();
    const auto t0 = Clock::now();
    auto r = sweep::implies_exhaustive(immortal, bound, 4, 2, threads, path_opts);
    const double s = std::chrono::duration<double>(Clock::now() - t0).count();
    if (threads == 1) {
      serial = r;
      serial_s = s;
    }
    t2.add_row({std::to_string(threads), std::to_string(r.stats.nodes),
                std::to_string(r.stats.pruned_subtrees),
                std::to_string(r.patterns_checked), std::to_string(s * 1e3),
                rate_str(static_cast<double>(r.patterns_checked) / s),
                ratio_str(serial_s / s),
                same_result(serial, r) ? "yes" : "NO"});
  }
  t2.print();
}

// ---------------------------------------------------------------------------
// Timed benchmarks (counters land in BENCH_rrfd.json)
// ---------------------------------------------------------------------------

void report_counters(benchmark::State& state,
                     const core::ImplicationResult& r) {
  using benchmark::Counter;
  state.counters["nodes_per_s"] = Counter(
      static_cast<double>(r.stats.nodes), Counter::kIsIterationInvariantRate);
  state.counters["decided_per_s"] =
      Counter(static_cast<double>(r.patterns_checked),
              Counter::kIsIterationInvariantRate);
  // Patterns decided per node expanded: 1.0 means no pruning leverage.
  state.counters["pruning_ratio"] =
      static_cast<double>(r.patterns_checked) /
      static_cast<double>(r.stats.nodes);
  state.counters["symmetry_factor"] =
      static_cast<double>(r.stats.total_roots) /
      static_cast<double>(r.stats.expanded_roots);
  state.counters["memo_hits"] = static_cast<double>(r.stats.memo_hits);
  state.counters["memo_misses"] = static_cast<double>(r.stats.memo_misses);
  state.counters["memo_entries"] = static_cast<double>(r.stats.memo_entries);
  // Absolute (time-independent) counts, so memo-on and memo-off runs of
  // the same workload can be diffed structurally: memoization must not
  // change either value. Both stay far below 2^53, so double is exact.
  state.counters["decided"] = static_cast<double>(r.patterns_checked);
  state.counters["nodes"] = static_cast<double>(r.stats.nodes);
}

/// Workload 1 under one enumeration mode: 0 = baseline, 1 = pruned,
/// 2 = pruned + symmetry.
void bm_submodel_modes_n4r1(benchmark::State& state) {
  const auto snapshot = core::atomic_snapshot(1);
  const auto kunc = core::k_uncertainty(2);
  const int mode = static_cast<int>(state.range(0));
  const auto opts = mode_options(
      mode >= 1, mode >= 2 ? core::Symmetry::kOn : core::Symmetry::kOff, 0);
  core::ImplicationResult r;
  for (auto _ : state) {
    r = core::implies_exhaustive(*snapshot, *kunc, 4, 1, opts);
    benchmark::DoNotOptimize(r.holds);
  }
  report_counters(state, r);
}
BENCHMARK(bm_submodel_modes_n4r1)->Arg(0)->Arg(1)->Arg(2)->ArgName("mode");

/// Workload 2, sharded over a worker pool; thread count is the argument.
void bm_submodel_sharded_n4r2(benchmark::State& state) {
  const core::ImmortalProcess immortal;
  const core::CumulativeFaultBound bound(3);
  const int threads = static_cast<int>(state.range(0));
  static core::ImplicationResult serial_reference;
  static bool have_reference = false;
  core::EnumOptions path_opts;
  path_opts.path = bench_engine_path();
  path_opts.memo = bench_memo();
  core::ImplicationResult r;
  for (auto _ : state) {
    r = sweep::implies_exhaustive(immortal, bound, 4, 2, threads, path_opts);
    benchmark::DoNotOptimize(r.holds);
  }
  if (threads == 1 && !have_reference) {
    serial_reference = r;
    have_reference = true;
  }
  report_counters(state, r);
  if (have_reference) {
    state.counters["matches_serial"] =
        same_result(serial_reference, r) ? 1.0 : 0.0;
  }
  if (g_baseline_patterns_per_s > 0.0) {
    // Decided-throughput of this run over the unpruned baseline's (the
    // summary measures the baseline on this same machine). The rate flag
    // divides the decided-per-baseline-second value by elapsed time,
    // yielding the dimensionless throughput ratio.
    state.counters["speedup_vs_baseline"] = benchmark::Counter(
        static_cast<double>(r.patterns_checked) / g_baseline_patterns_per_s,
        benchmark::Counter::kIsIterationInvariantRate);
  }
}
// UseRealTime so the rate counters divide by wall time: with a worker
// pool the calling thread mostly sleeps, and CPU-time-based rates would
// report absurd throughput at threads > 1.
BENCHMARK(bm_submodel_sharded_n4r2)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->ArgName("threads")
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(3);

/// Workload 2 with the memoization policy as the argument (0 = off,
/// 1 = on), serial, so one run records the memo speedup head-to-head.
/// The env knob is deliberately ignored here -- this benchmark *is* the
/// on/off comparison.
void bm_submodel_memo_n4r2(benchmark::State& state) {
  const core::ImmortalProcess immortal;
  const core::CumulativeFaultBound bound(3);
  core::EnumOptions opts;
  opts.path = bench_engine_path();
  opts.memo = state.range(0) != 0 ? core::Memo::kOn : core::Memo::kOff;
  core::ImplicationResult r;
  for (auto _ : state) {
    r = core::implies_exhaustive(immortal, bound, 4, 2, opts);
    benchmark::DoNotOptimize(r.holds);
  }
  report_counters(state, r);
}
BENCHMARK(bm_submodel_memo_n4r2)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("memo")
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(3);

/// E21 -- the 3-round equivalence detector-S <=> cumulative(3) at n = 4:
/// 15^12 = 129746337890625 patterns per direction, decidable in minutes
/// only through the transposition tables (the seed pass plus the inner
/// remaining-rounds tables collapse both the depth-1 and depth-2 state
/// repeats). Unmemoized this is ~50625x workload 2 -- hours -- so the
/// benchmark refuses to run with RRFD_SUBMODEL_MEMO=off rather than hang
/// a smoke job. full_space == 1 certifies that every pattern in both
/// directions was decided.
void bm_submodel_equiv_n4r3(benchmark::State& state) {
  if (bench_memo() == core::Memo::kOff) {
    state.SkipWithError(
        "RRFD_SUBMODEL_MEMO=off: 15^12 patterns per direction is not "
        "feasible unmemoized");
    return;
  }
  const core::ImmortalProcess immortal;
  const core::CumulativeFaultBound bound(3);
  core::EnumOptions opts;
  opts.path = bench_engine_path();
  opts.memo = core::Memo::kOn;
  // Memo hits account the replayed subtree's full node mass, so the
  // budget must cover the *unmemoized* work profile -- that is the point
  // of the exact-stats contract. 1e15 > 7 * 15^12 bounds any 3-round
  // n = 4 search.
  opts.node_budget = std::int64_t{1'000'000'000'000'000};
  core::EquivalenceResult r;
  for (auto _ : state) {
    r = core::equivalent_exhaustive(immortal, bound, 4, 3, opts);
    benchmark::DoNotOptimize(r.forward.holds);
  }
  report_counters(state, r.forward);
  const std::int64_t space = 129746337890625;  // 15^12
  state.counters["equivalent"] = r.equivalent() ? 1.0 : 0.0;
  state.counters["full_space"] =
      (r.forward.stats.patterns_decided == space &&
       r.backward.stats.patterns_decided == space)
          ? 1.0
          : 0.0;
}
BENCHMARK(bm_submodel_equiv_n4r3)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

}  // namespace

RRFD_BENCH_MAIN(summary)
