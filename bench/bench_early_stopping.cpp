// E12 -- Early-deciding consensus from announcement sets (the Section 7
// program: RRFDs as a setting to develop real algorithms).
//
// Claim: using D(i,r) as first-class information, consensus decides in
// 2 rounds when nothing fails and adapts to f' + 3 under f' actual
// crashes -- independent of the budget f -- while flood-min always pays
// f + 1. The summary sweeps the actual failure count.
#include "agreement/early_stopping.h"

#include "agreement/flood_min.h"
#include "agreement/tasks.h"
#include "bench_util.h"
#include "core/adversaries.h"
#include "core/engine.h"

namespace {

using namespace rrfd;

struct Adaptivity {
  int max_decision_round = 0;
  bool all_ok = true;
};

Adaptivity run_early(int n, int f, double crash_prob, int trials) {
  Adaptivity out;
  std::vector<int> inputs;
  for (int i = 0; i < n; ++i) inputs.push_back(i + 1);
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<agreement::EarlyStoppingConsensus> ps;
    for (int v : inputs) ps.emplace_back(n, v);
    core::CrashAdversary adv(
        n, f, 37u * static_cast<unsigned>(trial) + static_cast<unsigned>(n),
        crash_prob);
    core::EngineOptions opts;
    opts.max_rounds = f + 4;
    auto result = core::run_rounds(ps, adv, opts);
    const core::ProcessSet alive = adv.announced().complement();
    out.all_ok = out.all_ok &&
                 agreement::check_consensus(inputs, result.decisions, alive).ok;
    for (core::ProcId i : alive.members()) {
      out.max_decision_round =
          std::max(out.max_decision_round,
                   ps[static_cast<std::size_t>(i)].decision_round());
    }
  }
  return out;
}

void summary() {
  bench::banner(
      "E12 / early-deciding consensus from D-sets",
      "Claim: decide in 2 rounds failure-free and within f'+3 under f'\n"
      "actual crashes, vs flood-min's fixed f+1 -- the RRFD announcement\n"
      "sets as a first-class algorithmic resource (Section 7's program).");
  bench::Table table({"n", "budget f", "crash pressure", "worst decision round",
                      "flood-min rounds", "consensus ok", "trials"});
  for (int n : {6, 10, 16}) {
    for (int f : {3, 5}) {
      for (double prob : {0.0, 0.3}) {
        Adaptivity a = run_early(n, f, prob, 100);
        table.add_row({std::to_string(n), std::to_string(f),
                       prob == 0.0 ? "none (f' = 0)" : "heavy",
                       std::to_string(a.max_decision_round),
                       std::to_string(f + 1),
                       a.all_ok ? "yes" : "NO", "100"});
      }
    }
  }
  table.print();
}

void bm_early_stopping(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int f = static_cast<int>(state.range(1));
  std::vector<int> inputs;
  for (int i = 0; i < n; ++i) inputs.push_back(i);
  std::uint64_t seed = 3;
  for (auto _ : state) {
    std::vector<agreement::EarlyStoppingConsensus> ps;
    for (int v : inputs) ps.emplace_back(n, v);
    core::CrashAdversary adv(n, f, seed++, 0.3);
    core::EngineOptions opts;
    opts.max_rounds = f + 4;
    auto result = core::run_rounds(ps, adv, opts);
    benchmark::DoNotOptimize(result.decisions);
  }
}
BENCHMARK(bm_early_stopping)
    ->ArgsProduct({{8, 32}, {1, 3, 7}})
    ->ArgNames({"n", "f"});

void bm_floodmin_fixed(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int f = static_cast<int>(state.range(1));
  std::vector<int> inputs;
  for (int i = 0; i < n; ++i) inputs.push_back(i);
  std::uint64_t seed = 3;
  for (auto _ : state) {
    std::vector<agreement::FloodMin> ps;
    for (int v : inputs) ps.emplace_back(v, f + 1);
    core::CrashAdversary adv(n, f, seed++, 0.3);
    core::EngineOptions opts;
    opts.max_rounds = f + 1;
    opts.stop_when_all_decided = false;
    auto result = core::run_rounds(ps, adv, opts);
    benchmark::DoNotOptimize(result.decisions);
  }
}
BENCHMARK(bm_floodmin_fixed)
    ->ArgsProduct({{8, 32}, {1, 3, 7}})
    ->ArgNames({"n", "f"});

}  // namespace

RRFD_BENCH_MAIN(summary)
