// E13 -- The submodel lattice of Section 2, decided exactly.
//
// "This paper proposes to investigate systems by finding their RRFD
// counterparts. The RRFD counterparts, being part of the same family,
// bring forth the commonality and the difference between the systems."
// The summary prints the pairwise implication matrix over the model zoo,
// computed by exhaustive enumeration of every fault pattern for n = 3 --
// then decides the same matrix at n = 4 (50625 patterns per cell) and
// the paper's equivalences over two rounds at n = 4 (2.56e9 patterns per
// direction), which the pruned, symmetry-reduced, sharded engine
// finishes in seconds (E17 / bench_submodel quantifies the engine
// itself).
// E19 extends the lattice with the Heard-Of bridge: predicates compiled
// from operational specs (src/ho) are placed against the hand-written zoo
// and the advertised recoveries are re-decided as exact equivalences.
#include "core/submodel.h"

#include <chrono>
#include <cstdlib>
#include <string_view>

#include "bench_util.h"
#include "core/adversaries.h"
#include "core/predicates.h"
#include "ho/catalog.h"
#include "ho/compile.h"
#include "sweep/submodel_parallel.h"

namespace {

using namespace rrfd;

// RRFD_BENCH_ENGINE_PATH=word|set selects the representation the DFS
// feeds the evaluators (default word), mirroring bench_submodel, so the
// derived-model placement can be diffed across both engine paths.
core::EnginePath bench_engine_path() {
  const char* env = std::getenv("RRFD_BENCH_ENGINE_PATH");
  if (env == nullptr || *env == '\0') return core::EnginePath::kWord;
  const std::string_view v(env);
  RRFD_REQUIRE_MSG(v == "word" || v == "set",
                   "RRFD_BENCH_ENGINE_PATH must be 'word' or 'set'");
  return v == "set" ? core::EnginePath::kSet : core::EnginePath::kWord;
}

struct Entry {
  std::string label;
  core::PredicatePtr pred;
};

std::vector<Entry> model_zoo() {
  return {
      {"omission(1)", core::sync_omission(1)},
      {"crash(1)", core::sync_crash(1)},
      {"async(1)", core::async_message_passing(1)},
      {"swmr(1)", core::swmr_shared_memory(1)},
      {"snapshot(1)", core::atomic_snapshot(1)},
      {"S", core::detector_s()},
      {"2-uncertainty", core::k_uncertainty(2)},
      {"equal-D", core::equal_announcements()},
      {"skew(2,1)", core::quorum_skew(2, 1)},
  };
}

void print_matrix(int n, core::Round rounds) {
  const auto zoo = model_zoo();
  std::vector<std::string> headers{"implies ->"};
  for (const auto& e : zoo) headers.push_back(e.label);
  bench::Table table(headers);
  for (const auto& row : zoo) {
    std::vector<std::string> cells{row.label};
    for (const auto& col : zoo) {
      auto r = sweep::implies_exhaustive(*row.pred, *col.pred, n, rounds);
      cells.push_back(r.holds ? "1" : "0");
    }
    table.add_row(std::move(cells));
  }
  table.print();
}

void summary() {
  bench::banner(
      "E13 / the exact submodel lattice (n = 3, 1 round, all 343 patterns)",
      "Cell (row, col) = does row's predicate imply column's?\n"
      "(1 = submodel, 0 = counterexample exists)");

  const auto zoo = model_zoo();
  std::vector<std::string> headers{"implies ->"};
  for (const auto& e : zoo) headers.push_back(e.label);
  bench::Table table(headers);
  for (const auto& row : zoo) {
    std::vector<std::string> cells{row.label};
    for (const auto& col : zoo) {
      auto r = core::implies_exhaustive(*row.pred, *col.pred, 3, 1);
      cells.push_back(r.holds ? "1" : "0");
    }
    table.add_row(std::move(cells));
  }
  table.print();

  bench::banner(
      "E13b / exact equivalences",
      "Predicate manipulations the paper performs, decided over 2 rounds.");
  bench::Table eq({"claim", "verdict"});
  {
    auto r = core::equivalent_exhaustive(*core::equal_announcements(),
                                         *core::k_uncertainty(1), 3, 2);
    eq.add_row({"equation (5) == 1-uncertainty",
                r.equivalent() ? "equivalent" : "DIFFERENT"});
  }
  {
    core::ImmortalProcess immortal;
    core::CumulativeFaultBound bound(2);
    auto r = core::equivalent_exhaustive(immortal, bound, 3, 2);
    eq.add_row({"detector-S == omission budget n-1 (item 6)",
                r.equivalent() ? "equivalent" : "DIFFERENT"});
  }
  eq.print();

  using Clock = std::chrono::steady_clock;

  bench::banner(
      "E13c / the exact submodel lattice (n = 4, 1 round, all 50625 "
      "patterns)",
      "Same matrix one system size up, every cell decided exactly by the\n"
      "pruned, symmetry-reduced, sharded engine (RRFD_SWEEP_THREADS "
      "workers).");
  {
    const auto t0 = Clock::now();
    print_matrix(4, 1);
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    bench::summary_out() << "\n  (81 cells decided in " << ms << " ms)\n";
  }

  bench::banner(
      "E13d / exact equivalences at n = 4",
      "The same manipulations over 2 rounds at n = 4: 15^8 = 2562890625\n"
      "patterns per direction, decided exactly.");
  {
    bench::Table eq4({"claim", "verdict", "patterns/direction", "ms"});
    {
      const auto t0 = Clock::now();
      auto r = sweep::equivalent_exhaustive(*core::equal_announcements(),
                                            *core::k_uncertainty(1), 4, 2);
      const double ms =
          std::chrono::duration<double, std::milli>(Clock::now() - t0)
              .count();
      eq4.add_row({"equation (5) == 1-uncertainty",
                   r.equivalent() ? "equivalent" : "DIFFERENT",
                   std::to_string(r.forward.patterns_checked),
                   std::to_string(static_cast<std::int64_t>(ms))});
    }
    {
      core::ImmortalProcess immortal;
      core::CumulativeFaultBound bound(3);
      const auto t0 = Clock::now();
      auto r = sweep::equivalent_exhaustive(immortal, bound, 4, 2);
      const double ms =
          std::chrono::duration<double, std::milli>(Clock::now() - t0)
              .count();
      eq4.add_row({"detector-S == omission budget n-1 (item 6)",
                   r.equivalent() ? "equivalent" : "DIFFERENT",
                   std::to_string(r.forward.patterns_checked),
                   std::to_string(static_cast<std::int64_t>(ms))});
    }
    eq4.print();
  }

  bench::banner(
      "E19 / Heard-Of bridge: compiled operational specs vs the zoo "
      "(n = 3, 2 rounds)",
      "Rows are predicates compiled from src/ho specs; cell vs column:\n"
      "'=' equivalent, '<' strict submodel, '>' strict supermodel,\n"
      "'#' incomparable. Engine path: RRFD_BENCH_ENGINE_PATH (word).");
  {
    core::EnumOptions options;
    options.path = bench_engine_path();
    options.runner = sweep::shard_runner();
    const auto t0 = Clock::now();
    const auto catalog = ho::standard_catalog();
    std::vector<std::string> ho_headers{"derived \\ zoo"};
    for (const auto& z : ho::reference_zoo()) ho_headers.push_back(z.name);
    bench::Table ho_table(ho_headers);
    for (const auto& m : catalog) {
      std::vector<std::string> cells{m.name};
      for (const ho::Placement& p :
           ho::place_in_zoo(*m.pred, 3, 2, options)) {
        cells.push_back(p.implies ? (p.implied_by ? "=" : "<")
                                  : (p.implied_by ? ">" : "#"));
      }
      ho_table.add_row(std::move(cells));
    }
    ho_table.print();
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    bench::summary_out() << "\n  (" << catalog.size() << " x "
                         << ho::reference_zoo().size()
                         << " placements decided in " << ms << " ms)\n";
  }

  bench::banner(
      "E19b / recoveries: hand-written models as spec compositions",
      "Advertised equivalences re-decided exhaustively (both directions,\n"
      "117649 patterns each at n = 3, 2 rounds).");
  {
    core::EnumOptions options;
    options.path = bench_engine_path();
    options.runner = sweep::shard_runner();
    bench::Table rec({"spec", "hand-written model", "verdict"});
    const std::vector<std::pair<std::string, std::string>> claims = {
        {"loss_cap(1)", "async(1)"},
        {"kernel(1)", "S"},
        {"all(self_delivery(),faulty(1))", "omission(1)"},
        {"all(loss_cap(1),no_partition())", "swmr(1)"},
    };
    const auto hand_written = model_zoo();
    for (const auto& [spec, zoo_name] : claims) {
      core::PredicatePtr target;
      for (const auto& e : hand_written) {
        if (e.label == zoo_name) target = e.pred;
      }
      const auto derived = ho::compile_text(spec);
      const auto r =
          core::equivalent_exhaustive(*derived, *target, 3, 2, options);
      rec.add_row(
          {spec, zoo_name, r.equivalent() ? "equivalent" : "DIFFERENT"});
    }
    rec.print();
  }
}

void bm_exhaustive_implication(benchmark::State& state) {
  for (auto _ : state) {
    auto r = core::implies_exhaustive(*core::atomic_snapshot(1),
                                      *core::k_uncertainty(2), 3,
                                      static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(r.holds);
  }
}
BENCHMARK(bm_exhaustive_implication)->Arg(1)->Arg(2)->ArgName("rounds");

void bm_exhaustive_implication_n4(benchmark::State& state) {
  for (auto _ : state) {
    auto r = core::implies_exhaustive(*core::atomic_snapshot(1),
                                      *core::k_uncertainty(2), 4,
                                      static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(r.holds);
  }
}
BENCHMARK(bm_exhaustive_implication_n4)->Arg(1)->Arg(2)->ArgName("rounds");

void bm_sampled_implication(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    core::SnapshotAdversary adv(n, 1, seed++);
    auto r = core::implies_on_samples(adv, *core::k_uncertainty(2), 3, 100);
    benchmark::DoNotOptimize(r.holds);
  }
}
BENCHMARK(bm_sampled_implication)->Arg(8)->Arg(32)->Arg(64)->ArgName("n");

void bm_derived_placement(benchmark::State& state) {
  // One derived model placed against the full reference zoo (18 exact
  // implications per iteration) on the selected engine path.
  const auto derived = ho::compile_text("all(loss_cap(1),no_partition())");
  core::EnumOptions options;
  options.path = bench_engine_path();
  for (auto _ : state) {
    const auto placement = ho::place_in_zoo(*derived, 3, 1, options);
    benchmark::DoNotOptimize(placement.size());
  }
}
BENCHMARK(bm_derived_placement);

void bm_derived_equivalence_recovery(benchmark::State& state) {
  // The E19b headline recovery, timed: compiled kernel(1) against the
  // hand-written detector-S over `rounds` rounds.
  const auto derived = ho::compile_text("kernel(1)");
  const auto target = core::detector_s();
  core::EnumOptions options;
  options.path = bench_engine_path();
  for (auto _ : state) {
    const auto r = core::equivalent_exhaustive(
        *derived, *target, 3, static_cast<int>(state.range(0)), options);
    benchmark::DoNotOptimize(r.forward.patterns_checked);
  }
}
BENCHMARK(bm_derived_equivalence_recovery)->Arg(1)->Arg(2)->ArgName("rounds");

}  // namespace

RRFD_BENCH_MAIN(summary)
