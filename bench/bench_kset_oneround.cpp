// E1 -- Theorem 3.1: one-round k-set agreement under k-uncertainty.
//
// Paper claim: "k-set consensus can be solved in one round" with the
// detector |U D \ ^ D| < k. The summary sweeps n and k, reporting rounds
// to decide (always 1), the worst observed number of distinct decisions
// (always <= k), and how often the bound is attained with equality.
#include "agreement/one_round_kset.h"

#include "agreement/tasks.h"
#include "bench_util.h"
#include "core/adversaries.h"
#include "core/engine.h"

namespace {

using namespace rrfd;

struct Outcome {
  int rounds = 0;
  int max_distinct = 0;
  int trials_at_bound = 0;
  bool all_valid = true;
};

struct TrialResult {
  int rounds = 0;
  int distinct = 0;
  bool valid = false;
};

// Trials fan out over RRFD_SWEEP_THREADS workers (serial by default);
// each draws its adversary seed from a counter-derived Rng stream, so the
// summary is byte-identical at any thread count.
Outcome run_sweep(int n, int k, int trials) {
  std::vector<int> inputs;
  for (int i = 0; i < n; ++i) inputs.push_back(i + 1);
  const auto results = bench::sweep_trials(
      trials, 1000u * static_cast<std::uint64_t>(n) + static_cast<std::uint64_t>(k),
      [&](int /*trial*/, Rng& rng) {
        std::vector<agreement::OneRoundKSet> ps;
        for (int v : inputs) ps.emplace_back(v);
        core::KUncertaintyAdversary adv(n, k, rng());
        auto result = core::run_rounds(ps, adv);
        TrialResult t;
        t.rounds = result.rounds;
        t.distinct = agreement::distinct_decision_count(
            result.decisions, core::ProcessSet::all(n));
        t.valid = agreement::check_k_set_agreement(inputs, result.decisions, k,
                                                   core::ProcessSet::all(n))
                      .ok;
        return t;
      });
  Outcome out;
  for (const TrialResult& t : results) {
    out.rounds = std::max(out.rounds, t.rounds);
    out.max_distinct = std::max(out.max_distinct, t.distinct);
    out.trials_at_bound += (t.distinct == k);
    out.all_valid = out.all_valid && t.valid;
  }
  return out;
}

void summary() {
  bench::banner(
      "E1 / Theorem 3.1: one-round k-set agreement",
      "Claim: the k-uncertainty RRFD solves k-set agreement in ONE round;\n"
      "the number of distinct decisions never exceeds k.");
  bench::Table table({"n", "k", "rounds", "max distinct", "<= k?",
                      "trials hitting k", "trials"});
  const int trials = 200;
  for (int n : {8, 16, 32, 64}) {
    for (int k : {1, 2, 4, 8}) {
      Outcome o = run_sweep(n, k, trials);
      table.add_row({std::to_string(n), std::to_string(k),
                     std::to_string(o.rounds), std::to_string(o.max_distinct),
                     o.all_valid && o.max_distinct <= k ? "yes" : "NO",
                     std::to_string(o.trials_at_bound),
                     std::to_string(trials)});
    }
  }
  table.print();
}

void bm_one_round_kset(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  std::vector<int> inputs;
  for (int i = 0; i < n; ++i) inputs.push_back(i);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    std::vector<agreement::OneRoundKSet> ps;
    for (int v : inputs) ps.emplace_back(v);
    core::KUncertaintyAdversary adv(n, k, seed++);
    auto result = core::run_rounds(ps, adv);
    benchmark::DoNotOptimize(result.decisions);
  }
  state.counters["rounds"] = 1;
}
BENCHMARK(bm_one_round_kset)
    ->ArgsProduct({{8, 16, 32, 64}, {1, 2, 4, 8}})
    ->ArgNames({"n", "k"});

}  // namespace

RRFD_BENCH_MAIN(summary)
