// E16 -- the parallel deterministic sweep executor (src/sweep).
//
// Workload: an E1-shaped sweep (one-round k-set agreement under seeded
// k-uncertainty adversaries, n = 32, k = 4), the shape of every
// randomized experiment in EXPERIMENTS.md. The summary runs the same
// sweep serially and at several worker counts, requires the per-trial
// result vectors to be byte-identical (the sweep determinism contract),
// and reports wall-clock speedup. The timing loop then measures sweep
// throughput per thread count; speedup tracks the machine's core count
// (a single-core container shows ~1x by construction).
#include "sweep/sweep.h"

#include <chrono>

#include "agreement/one_round_kset.h"
#include "agreement/tasks.h"
#include "bench_util.h"
#include "core/adversaries.h"
#include "core/engine.h"

namespace {

using namespace rrfd;

constexpr int kN = 32;
constexpr int kK = 4;
constexpr std::uint64_t kSeed = 0xE16E16u;

/// One seeded trial; returns a digest folding every decision, so any
/// divergence between serial and parallel runs is visible byte-for-byte.
std::uint64_t one_trial(int /*trial*/, Rng& rng) {
  std::vector<agreement::OneRoundKSet> ps;
  for (int i = 0; i < kN; ++i) ps.emplace_back(i + 1);
  core::KUncertaintyAdversary adv(kN, kK, rng());
  auto result = core::run_rounds(ps, adv);
  std::uint64_t digest = 0xcbf29ce484222325ULL;
  for (const auto& d : result.decisions) {
    digest ^= static_cast<std::uint64_t>(d.value_or(-1));
    digest *= 0x100000001b3ULL;
  }
  digest ^= static_cast<std::uint64_t>(result.rounds);
  return digest;
}

void summary() {
  bench::banner(
      "E16 / sweep executor: parallel trials, serial results",
      "Contract: sweep::run at any thread count returns the same per-trial\n"
      "results, in trial order, as the serial loop (counter-derived RNG\n"
      "streams + trial-indexed reduction). Opt in with RRFD_SWEEP_THREADS.");

  const int trials = 600;
  const auto serial = sweep::run(trials, kSeed, one_trial, /*threads=*/1);

  bench::Table table({"threads", "trials", "wall ms", "speedup",
                      "identical to serial"});
  const auto t0 = std::chrono::steady_clock::now();
  (void)sweep::run(trials, kSeed, one_trial, /*threads=*/1);
  const double serial_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  for (int threads : {1, 2, 4, 8}) {
    const auto start = std::chrono::steady_clock::now();
    const auto parallel = sweep::run(trials, kSeed, one_trial, threads);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx", serial_ms / ms);
    table.add_row({std::to_string(threads), std::to_string(trials),
                   std::to_string(static_cast<long>(ms)), speedup,
                   parallel == serial ? "yes" : "NO"});
  }
  table.print();
}

void bm_sweep(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const int trials = 256;
  for (auto _ : state) {
    auto results = sweep::run(trials, kSeed, one_trial, threads);
    benchmark::DoNotOptimize(results);
  }
  state.counters["trials_per_sec"] = benchmark::Counter(
      static_cast<double>(trials), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(bm_sweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->ArgName("threads")
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void bm_rng_stream_derivation(benchmark::State& state) {
  // Cost of deriving one counter-based trial stream (contract item 1);
  // it is paid once per trial, so it must stay negligible next to a run.
  std::uint64_t i = 0;
  for (auto _ : state) {
    Rng rng = Rng::stream(kSeed, i++);
    benchmark::DoNotOptimize(rng());
  }
}
BENCHMARK(bm_rng_stream_derivation);

}  // namespace

RRFD_BENCH_MAIN(summary)
