// Evaluator conformance for every compiler-derived predicate: exact
// per-prefix verdicts against whole-pattern holds(), on the set path,
// the word path, and a mixed walk -- plus honesty checks on the derived
// traits (a dishonest prunable()/symmetric() would make the exhaustive
// engine cut or fold subtrees unsoundly).
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/fault_pattern.h"
#include "core/predicate.h"
#include "core/process_set.h"
#include "core/words.h"
#include "ho/catalog.h"
#include "ho/compile.h"
#include "ho/parse.h"
#include "util/rng.h"

namespace {

using namespace rrfd;
using core::FaultPattern;
using core::ProcessSet;
using core::ProcId;
using core::Round;
using core::RoundFaults;
using core::StepVerdict;
using core::full_mask;

/// How prefixes are fed to the evaluator under test.
enum class PushPath {
  kSet,    ///< push_round only
  kWord,   ///< push_round_words only
  kMixed,  ///< alternate per depth -- the contract says they interleave
};

/// Specs under conformance: the standard catalog plus compositions that
/// stress every combinator corner (closed/nested/out-of-range windows,
/// eventual bodies with conjunctions, asymmetric primitives, zero and
/// saturating budgets).
std::vector<std::string> conformance_specs() {
  std::vector<std::string> specs;
  for (const auto& entry : ho::standard_catalog()) specs.push_back(entry.spec);
  const std::vector<std::string> extra = {
      "faulty(0)",
      "kernel(2)",
      "kernel(3)",
      "mobile(2)",
      "loss_cap(0)",
      "delay(2)",
      "link_budget(2)",
      "window(1,1,mobile(0))",
      "window(2,3,loss_cap(1))",
      "window(3,0,crash_only())",
      "window(4,6,mobile(0))",
      "window(2,0,window(2,0,crash_only()))",
      "window(2,2,eventually(mobile(0)))",
      "eventually(all(self_delivery(),no_partition()))",
      "eventually(partition(src={0},dst={1}))",
      "all(window(2,0,crash_only()),eventually(mobile(0)))",
      "all(loss_cap(1),link_budget(1),delay(1))",
      "partition(src={0},dst={1})",
      "all(partition(src={1},dst={0}),faulty(2))",
  };
  specs.insert(specs.end(), extra.begin(), extra.end());
  return specs;
}

/// Exhaustive DFS over every pattern of (n, rounds): after each push the
/// verdict must match holds() on the prefix-as-complete-pattern, a
/// kSatisfiedForever promise must hold below, and -- when the predicate
/// declares prunable() -- a violation must never recover below.
void check_conformance(const core::Predicate& pred, int n, Round rounds,
                       PushPath path) {
  const std::uint64_t max_mask = full_mask(n) - 1;  // D != S
  auto eval = pred.evaluator();
  eval->begin(n, rounds);
  FaultPattern prefix(n);

  std::function<void(Round, bool, bool)> rec = [&](Round depth,
                                                   bool forever_above,
                                                   bool violated_above) {
    std::vector<std::uint64_t> digits(static_cast<std::size_t>(n), 0);
    for (;;) {
      RoundFaults round;
      for (int i = 0; i < n; ++i) {
        round.push_back(
            ProcessSet::from_bits(n, digits[static_cast<std::size_t>(i)]));
      }
      const bool use_words =
          path == PushPath::kWord ||
          (path == PushPath::kMixed && depth % 2 == 0);
      const StepVerdict v = use_words
                                ? eval->push_round_words(digits.data(), n)
                                : eval->push_round(round);
      prefix.append(round);
      const bool sat = pred.holds(prefix);
      EXPECT_EQ(v != StepVerdict::kViolatedForever, sat)
          << pred.name() << " at depth " << depth << "\n"
          << prefix.to_string();
      if (forever_above) {
        EXPECT_TRUE(sat) << pred.name()
                         << ": kSatisfiedForever promise broken\n"
                         << prefix.to_string();
      }
      if (violated_above && pred.prunable()) {
        EXPECT_FALSE(sat) << pred.name()
                          << ": prunable violation recovered\n"
                          << prefix.to_string();
      }
      if (depth < rounds) {
        rec(depth + 1, forever_above || v == StepVerdict::kSatisfiedForever,
            violated_above || v == StepVerdict::kViolatedForever);
      }
      prefix.pop_round();
      eval->pop_round();

      int i = 0;
      while (i < n && digits[static_cast<std::size_t>(i)] == max_mask) {
        digits[static_cast<std::size_t>(i)] = 0;
        ++i;
      }
      if (i == n) return;
      ++digits[static_cast<std::size_t>(i)];
    }
  };
  rec(1, false, false);
}

/// True when the spec fits a system of n processes (partition masks may
/// name ids that require a larger n).
bool fits(const std::string& spec, int n) {
  return ho::max_process_id(ho::parse_spec(spec)) < n;
}

TEST(HoConformance, EveryDerivedPredicateConformsOnBothPathsN2) {
  for (const std::string& spec : conformance_specs()) {
    if (!fits(spec, 2)) continue;
    const auto pred = ho::compile_text(spec);
    for (const PushPath path :
         {PushPath::kSet, PushPath::kWord, PushPath::kMixed}) {
      check_conformance(*pred, 2, 3, path);  // 9 + 81 + 729 prefixes
    }
  }
}

TEST(HoConformance, EveryDerivedPredicateConformsOnBothPathsN3) {
  for (const std::string& spec : conformance_specs()) {
    if (!fits(spec, 3)) continue;
    const auto pred = ho::compile_text(spec);
    check_conformance(*pred, 3, 2, PushPath::kSet);  // 343 + 117649
    check_conformance(*pred, 3, 2, PushPath::kWord);
  }
}

TEST(HoConformance, DeepWindowsConformOverLongPatterns) {
  // Windows that only open (or close) beyond depth 3 need longer
  // patterns than the sweep above; n = 2 keeps 9^5 prefixes cheap.
  for (const std::string& spec :
       {std::string("window(4,6,mobile(0))"),
        std::string("window(3,0,link_budget(1))"),
        std::string("all(window(2,4,delay(1)),window(5,0,crash_only()))")}) {
    const auto pred = ho::compile_text(spec);
    check_conformance(*pred, 2, 5, PushPath::kMixed);
  }
}

// --------------------------------------------------------------------------
// Trait honesty beyond prunability: claimed symmetry must be real
// invariance under process renaming.
// --------------------------------------------------------------------------

/// Applies a renaming pi to a pattern: D'(pi(i), r) = pi(D(i, r)).
FaultPattern permute(const FaultPattern& p, const std::vector<int>& pi) {
  const int n = p.n();
  FaultPattern out(n);
  for (Round r = 1; r <= p.rounds(); ++r) {
    RoundFaults round(static_cast<std::size_t>(n), ProcessSet(n));
    for (ProcId i = 0; i < n; ++i) {
      ProcessSet renamed(n);
      for (ProcId j : p.d(i, r)) {
        renamed.add(pi[static_cast<std::size_t>(j)]);
      }
      round[static_cast<std::size_t>(pi[static_cast<std::size_t>(i)])] =
          renamed;
    }
    out.append(std::move(round));
  }
  return out;
}

TEST(HoConformance, ClaimedSymmetryIsRealInvariance) {
  const std::vector<std::vector<int>> perms3 = {
      {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
  for (const std::string& spec : conformance_specs()) {
    const auto pred = ho::compile_text(spec);
    if (!pred->symmetric() || ho::max_process_id(ho::parse_spec(spec)) >= 0) {
      continue;
    }
    // Exhaustive over single rounds at n = 3, all non-identity renamings.
    const std::uint64_t full = full_mask(3);
    FaultPattern p(3);
    for (std::uint64_t d0 = 0; d0 < full; ++d0) {
      for (std::uint64_t d1 = 0; d1 < full; ++d1) {
        for (std::uint64_t d2 = 0; d2 < full; ++d2) {
          RoundFaults round{ProcessSet::from_bits(3, d0),
                            ProcessSet::from_bits(3, d1),
                            ProcessSet::from_bits(3, d2)};
          p.append(std::move(round));
          const bool base = pred->holds(p);
          for (const auto& pi : perms3) {
            EXPECT_EQ(pred->holds(permute(p, pi)), base)
                << spec << "\n" << p.to_string();
          }
          p.pop_round();
        }
      }
    }
  }
}

TEST(HoConformance, PartitionIsHonestlyAsymmetric) {
  // The conservative symmetric() == false must be earned: swapping the
  // two processes flips the verdict on a witness pattern.
  const auto pred = ho::compile_text("partition(src={0},dst={1})");
  FaultPattern p(2);
  p.append({ProcessSet(2), ProcessSet::from_bits(2, 0b01)});
  EXPECT_TRUE(pred->holds(p));
  EXPECT_FALSE(pred->holds(permute(p, {1, 0})));
}

// --------------------------------------------------------------------------
// Word-boundary walks: n = 63 / 64 masks with bit 63 live exercise the
// evaluators' word cores where shift-by-n would be UB.
// --------------------------------------------------------------------------

TEST(HoConformance, WordAndSetVerdictsMatchAtTheWordBoundary) {
  for (const std::string& spec : conformance_specs()) {
    if (ho::max_process_id(ho::parse_spec(spec)) >= 0) continue;
    const auto pred = ho::compile_text(spec);
    for (const int n : {63, 64}) {
      Rng rng(std::uint64_t{0x9e3779b97f4a7c15} ^
              static_cast<std::uint64_t>(n));
      auto set_eval = pred->evaluator();
      auto word_eval = pred->evaluator();
      const Round horizon = 8;
      set_eval->begin(n, horizon);
      word_eval->begin(n, horizon);
      FaultPattern prefix(n);
      for (int step = 0; step < 48; ++step) {
        if (prefix.rounds() == horizon ||
            (prefix.rounds() > 0 && rng.below(4) == 0)) {
          prefix.pop_round();
          set_eval->pop_round();
          word_eval->pop_round();
          continue;
        }
        std::vector<std::uint64_t> words(static_cast<std::size_t>(n));
        RoundFaults round;
        for (int i = 0; i < n; ++i) {
          // below(full_mask) yields D != S; at n = 64 bit 63 is live in
          // about half the draws.
          const std::uint64_t bits = rng.below(full_mask(n));
          words[static_cast<std::size_t>(i)] = bits;
          round.push_back(ProcessSet::from_bits(n, bits));
        }
        const StepVerdict vs = set_eval->push_round(round);
        const StepVerdict vw = word_eval->push_round_words(words.data(), n);
        prefix.append(std::move(round));
        EXPECT_EQ(vs, vw) << spec << " diverged at n=" << n << " depth "
                          << prefix.rounds();
        EXPECT_EQ(vs != StepVerdict::kViolatedForever, pred->holds(prefix))
            << spec << " verdict vs holds() at n=" << n;
      }
    }
  }
}

TEST(HoConformance, FullWordMasksFlowThroughEvaluators) {
  // Deterministic corner: at n = 64 suspect everyone-but-self (bit 63
  // set in 63 of 64 words), then a quiet round.
  const int n = 64;
  const auto pred = ho::compile_text("all(self_delivery(),loss_cap(63))");
  auto eval = pred->evaluator();
  eval->begin(n, 2);
  std::vector<std::uint64_t> words(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    words[static_cast<std::size_t>(i)] =
        full_mask(n) & ~(std::uint64_t{1} << i);
  }
  EXPECT_EQ(eval->push_round_words(words.data(), n),
            StepVerdict::kSatisfiedSoFar);
  // Same round via the set path on a fresh evaluator.
  RoundFaults round;
  for (int i = 0; i < n; ++i) {
    round.push_back(
        ProcessSet::from_bits(n, words[static_cast<std::size_t>(i)]));
  }
  auto set_eval = pred->evaluator();
  set_eval->begin(n, 2);
  EXPECT_EQ(set_eval->push_round(round), StepVerdict::kSatisfiedSoFar);
  // Violations at the boundary: process 63 suspecting itself.
  words[63] = std::uint64_t{1} << 63;
  EXPECT_EQ(eval->push_round_words(words.data(), n),
            StepVerdict::kViolatedForever);
}

}  // namespace
