// Semantics of compiled specs, and the headline recoveries: hand-written
// zoo models fall out of operational compositions, proved exhaustively.
#include "ho/compile.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/predicates.h"
#include "core/submodel.h"
#include "ho/catalog.h"
#include "ho/parse.h"
#include "sweep/submodel_parallel.h"
#include "util/check.h"

namespace {

using namespace rrfd;
using core::FaultPattern;
using core::ProcessSet;
using core::Round;
using core::RoundFaults;

/// Builds a pattern from per-round mask rows: rounds[r][i] = D(i,r+1).
FaultPattern make_pattern(int n,
                          const std::vector<std::vector<std::uint64_t>>& rounds) {
  FaultPattern p(n);
  for (const auto& row : rounds) {
    RoundFaults rf;
    for (std::uint64_t bits : row) rf.push_back(ProcessSet::from_bits(n, bits));
    p.append(std::move(rf));
  }
  return p;
}

bool holds(const std::string& spec, int n,
           const std::vector<std::vector<std::uint64_t>>& rounds) {
  return ho::compile_text(spec)->holds(make_pattern(n, rounds));
}

// --------------------------------------------------------------------------
// Primitive semantics on hand-built patterns (n = 3 unless noted).
// --------------------------------------------------------------------------

TEST(HoCompile, LossCapBoundsEveryAnnouncement) {
  EXPECT_TRUE(holds("loss_cap(1)", 3, {{0b010, 0b001, 0b000}}));
  EXPECT_FALSE(holds("loss_cap(1)", 3, {{0b011, 0b000, 0b000}}));
  EXPECT_TRUE(holds("loss_cap(2)", 3, {{0b011, 0b000, 0b000}}));
}

TEST(HoCompile, MobileCapBoundsTheRoundUnion) {
  // D(0) = {1}, D(1) = {2}: two distinct suspects in one round.
  EXPECT_FALSE(holds("mobile(1)", 3, {{0b010, 0b100, 0b000}}));
  EXPECT_TRUE(holds("mobile(2)", 3, {{0b010, 0b100, 0b000}}));
  // The suspect may move between rounds under mobile(1).
  EXPECT_TRUE(holds("mobile(1)", 3, {{0b010, 0b010, 0b010},
                                     {0b100, 0b100, 0b100}}));
}

TEST(HoCompile, SelfDeliveryForbidsSelfSuspicion) {
  EXPECT_TRUE(holds("self_delivery()", 3, {{0b010, 0b100, 0b001}}));
  EXPECT_FALSE(holds("self_delivery()", 3, {{0b000, 0b010, 0b000}}));
}

TEST(HoCompile, NoPartitionKeepsSomeoneHeardByAll) {
  EXPECT_FALSE(holds("no_partition()", 3, {{0b010, 0b100, 0b001}}));
  EXPECT_TRUE(holds("no_partition()", 3, {{0b010, 0b100, 0b000}}));
}

TEST(HoCompile, PartitionRequiresEveryDestinationToMissEverySource) {
  // src = {0}, dst = {1,2}: both 1 and 2 must suspect 0 every round.
  EXPECT_TRUE(holds("partition(src={0},dst={1,2})", 3,
                    {{0b000, 0b001, 0b001}}));
  EXPECT_FALSE(holds("partition(src={0},dst={1,2})", 3,
                     {{0b000, 0b001, 0b010}}));
  EXPECT_FALSE(holds("partition(src={0},dst={1,2})", 3,
                     {{0b000, 0b001, 0b001}, {0b000, 0b000, 0b001}}));
}

TEST(HoCompile, LinkBudgetCountsDropsPerOrderedLink) {
  // Link (0 <- 1) drops twice: over a budget of 1.
  EXPECT_FALSE(holds("link_budget(1)", 3,
                     {{0b010, 0b000, 0b000}, {0b010, 0b000, 0b000}}));
  // Two different links drop once each: within budget.
  EXPECT_TRUE(holds("link_budget(1)", 3,
                    {{0b010, 0b000, 0b000}, {0b100, 0b000, 0b000}}));
  // The same sender towards two receivers uses two separate budgets.
  EXPECT_TRUE(holds("link_budget(1)", 3,
                    {{0b100, 0b100, 0b000}}));
}

TEST(HoCompile, CrashOnlyRequiresMonotoneAnnouncements) {
  EXPECT_TRUE(holds("crash_only()", 3,
                    {{0b010, 0b000, 0b000}, {0b010, 0b010, 0b011}}));
  // Round 2 forgets the announcement of round 1.
  EXPECT_FALSE(holds("crash_only()", 3,
                     {{0b010, 0b000, 0b000}, {0b000, 0b010, 0b010}}));
}

TEST(HoCompile, FaultyCapAndKernelBoundTheCumulativeUnion) {
  const std::vector<std::vector<std::uint64_t>> spread = {
      {0b010, 0b000, 0b000}, {0b100, 0b000, 0b000}};
  EXPECT_FALSE(holds("faulty(1)", 3, spread));
  EXPECT_TRUE(holds("faulty(2)", 3, spread));
  EXPECT_FALSE(holds("kernel(2)", 3, spread));
  EXPECT_TRUE(holds("kernel(1)", 3, spread));
  // kernel(k) with k > n is unsatisfiable, even by the empty pattern.
  EXPECT_FALSE(ho::compile_text("kernel(4)")->holds(FaultPattern(3)));
}

TEST(HoCompile, DelayCapBoundsConsecutiveDropsPerLink) {
  EXPECT_FALSE(holds("delay(1)", 3,
                     {{0b010, 0b000, 0b000}, {0b010, 0b000, 0b000}}));
  // Down, up, down again: no run exceeds one round.
  EXPECT_TRUE(holds("delay(1)", 3,
                    {{0b010, 0b000, 0b000},
                     {0b000, 0b000, 0b000},
                     {0b010, 0b000, 0b000}}));
}

TEST(HoCompile, WindowScopesItsChildToASubRange) {
  // Monotonicity broken between rounds 1 and 2, intact from round 2 on.
  const std::vector<std::vector<std::uint64_t>> tail_monotone = {
      {0b010, 0b000, 0b000}, {0b000, 0b000, 0b000}, {0b001, 0b001, 0b010}};
  EXPECT_FALSE(holds("crash_only()", 3, tail_monotone));
  EXPECT_TRUE(holds("window(2,0,crash_only())", 3, tail_monotone));
  // window(1,1,...): only the first round is constrained.
  EXPECT_TRUE(holds("window(1,1,mobile(0))", 3,
                    {{0b000, 0b000, 0b000}, {0b010, 0b100, 0b001}}));
  EXPECT_FALSE(holds("window(1,1,mobile(0))", 3,
                     {{0b010, 0b000, 0b000}, {0b000, 0b000, 0b000}}));
  // A window beyond the pattern constrains nothing.
  EXPECT_TRUE(holds("window(3,4,mobile(0))", 3,
                    {{0b010, 0b100, 0b001}, {0b010, 0b100, 0b001}}));
  // Budgets reset inside the window: only in-window drops count.
  EXPECT_TRUE(holds("window(2,0,link_budget(1))", 3,
                    {{0b010, 0b000, 0b000},
                     {0b010, 0b000, 0b000},
                     {0b000, 0b000, 0b000}}));
}

TEST(HoCompile, EventuallyNeedsOneGoodRound) {
  EXPECT_TRUE(holds("eventually(mobile(0))", 3,
                    {{0b010, 0b100, 0b001}, {0b000, 0b000, 0b000}}));
  EXPECT_FALSE(holds("eventually(mobile(0))", 3,
                     {{0b010, 0b100, 0b001}, {0b010, 0b000, 0b000}}));
  // The empty pattern has no good round.
  EXPECT_FALSE(ho::compile_text("eventually(mobile(0))")->holds(
      FaultPattern(3)));
}

TEST(HoCompile, CompiledPredicatesRejectTooSmallSystems) {
  const auto pred = ho::compile_text("partition(src={0},dst={5})");
  EXPECT_THROW((void)pred->holds(FaultPattern(3)), ContractViolation);
  auto eval = pred->evaluator();
  EXPECT_THROW(eval->begin(3, 1), ContractViolation);
  EXPECT_NO_THROW((void)pred->holds(FaultPattern(6)));
}

TEST(HoCompile, NamesDefaultToCanonicalSpecText) {
  EXPECT_EQ(ho::compile_text(" loss_cap( 2 ) ")->name(), "ho:loss_cap(2)");
  EXPECT_EQ(ho::compile_text("loss_cap(2)", "custom")->name(), "custom");
}

// --------------------------------------------------------------------------
// Zoo recoveries: derived compositions are exhaustively equivalent to
// hand-written models (the E19 claim; suite name keeps these in the TSan
// submodel net).
// --------------------------------------------------------------------------

void expect_recovered(const std::string& spec, const core::PredicatePtr& zoo,
                      int n, Round rounds) {
  const auto derived = ho::compile_text(spec);
  const auto r = core::equivalent_exhaustive(*derived, *zoo, n, rounds);
  EXPECT_TRUE(r.equivalent())
      << spec << " vs " << zoo->name() << " at n=" << n
      << ", rounds=" << rounds << (r.forward.holds ? " (backward" : " (forward")
      << " direction refuted)";
}

TEST(HoSubmodelRecovery, LossCapRecoversAsyncMessagePassing) {
  expect_recovered("loss_cap(1)", core::async_message_passing(1), 3, 2);
  expect_recovered("loss_cap(1)", core::async_message_passing(1), 4, 1);
  expect_recovered("loss_cap(2)", core::async_message_passing(2), 3, 2);
}

TEST(HoSubmodelRecovery, KernelRecoversImmortalProcessDetectorS) {
  expect_recovered("kernel(1)", core::detector_s(), 3, 2);
  expect_recovered("kernel(1)", core::detector_s(), 4, 1);
}

TEST(HoSubmodelRecovery, SelfDeliveryPlusFaultyRecoversSyncOmission) {
  expect_recovered("all(self_delivery(),faulty(1))", core::sync_omission(1), 3,
                   2);
}

TEST(HoSubmodelRecovery, LossCapPlusNoPartitionRecoversSwmr) {
  expect_recovered("all(loss_cap(1),no_partition())",
                   core::swmr_shared_memory(1), 3, 2);
}

TEST(HoSubmodelRecovery, PrimitivesRecoverSingleZooPredicates) {
  expect_recovered("self_delivery()",
                   std::make_shared<core::NoSelfSuspicion>(), 3, 2);
  expect_recovered("faulty(2)", std::make_shared<core::CumulativeFaultBound>(2),
                   3, 2);
  expect_recovered("mobile(2)", std::make_shared<core::SomeoneHeardByAll>(), 3,
                   2);
  expect_recovered("window(1,0,crash_only())",
                   std::make_shared<core::CrashMonotonicity>(), 3, 2);
  expect_recovered("window(1,0,crash_only())",
                   std::make_shared<core::CrashMonotonicity>(), 2, 3);
  expect_recovered("kernel(1)", std::make_shared<core::ImmortalProcess>(), 3,
                   2);
}

TEST(HoSubmodelRecovery, ZeroBudgetsCollapseToNeverFaulty) {
  expect_recovered("link_budget(0)", std::make_shared<core::NeverFaulty>(), 3,
                   2);
  expect_recovered("delay(0)", std::make_shared<core::NeverFaulty>(), 3, 2);
  expect_recovered("mobile(0)", std::make_shared<core::NeverFaulty>(), 3, 2);
  expect_recovered("faulty(0)", std::make_shared<core::NeverFaulty>(), 3, 2);
}

TEST(HoSubmodelRecovery, DerivedAgainstDerivedEquivalences) {
  // kernel(k) and faulty(n-k) coincide for a fixed n.
  const auto kernel2 = ho::compile_text("kernel(2)");
  const auto faulty1 = ho::compile_text("faulty(1)");
  EXPECT_TRUE(core::equivalent_exhaustive(*kernel2, *faulty1, 3, 2)
                  .equivalent());
  // window(1,0,s) is the identity wrapper.
  const auto wrapped = ho::compile_text("window(1,0,link_budget(1))");
  const auto plain = ho::compile_text("link_budget(1)");
  EXPECT_TRUE(core::equivalent_exhaustive(*wrapped, *plain, 3, 2)
                  .equivalent());
}

TEST(HoSubmodelRecovery, StrictInclusionsComeOutStrict) {
  // mobile(1) is strictly stronger than loss_cap(1): the suspect set is
  // shared across observers.
  const auto mob = ho::compile_text("mobile(1)");
  const auto cap = ho::compile_text("loss_cap(1)");
  EXPECT_TRUE(core::implies_exhaustive(*mob, *cap, 3, 2).holds);
  const auto back = core::implies_exhaustive(*cap, *mob, 3, 2);
  EXPECT_FALSE(back.holds);
  ASSERT_TRUE(back.counterexample.has_value());
  EXPECT_TRUE(cap->holds(*back.counterexample));
  EXPECT_FALSE(mob->holds(*back.counterexample));
}

TEST(HoSubmodelRecovery, RecoveryDecidedIdenticallyAcrossEnginePaths) {
  const auto derived = ho::compile_text("all(loss_cap(1),no_partition())");
  const auto zoo = core::swmr_shared_memory(1);
  for (const auto symmetry : {core::Symmetry::kAuto, core::Symmetry::kOff}) {
    core::EnumOptions word;
    word.path = core::EnginePath::kWord;
    word.symmetry = symmetry;
    core::EnumOptions set = word;
    set.path = core::EnginePath::kSet;
    const auto rw = core::implies_exhaustive(*derived, *zoo, 3, 2, word);
    const auto rs = core::implies_exhaustive(*derived, *zoo, 3, 2, set);
    EXPECT_EQ(rw.holds, rs.holds);
    EXPECT_EQ(rw.patterns_checked, rs.patterns_checked);
    EXPECT_EQ(rw.stats.nodes, rs.stats.nodes);
    EXPECT_EQ(rw.stats.pruned_subtrees, rs.stats.pruned_subtrees);
  }
}

TEST(HoSubmodelRecovery, SweepExecutorDecidesRecoveries) {
  // The derived models ride the parallel sweep executor like any zoo
  // member; shard splice order makes the result thread-count invariant.
  const auto derived = ho::compile_text("all(self_delivery(),faulty(1))");
  const auto serial =
      core::equivalent_exhaustive(*derived, *core::sync_omission(1), 3, 2);
  const auto threaded = sweep::equivalent_exhaustive(
      *derived, *core::sync_omission(1), 3, 2, /*threads=*/4);
  EXPECT_TRUE(serial.equivalent());
  EXPECT_TRUE(threaded.equivalent());
  EXPECT_EQ(serial.forward.patterns_checked,
            threaded.forward.patterns_checked);
  EXPECT_EQ(serial.forward.stats.nodes, threaded.forward.stats.nodes);
}

TEST(HoSubmodelRecovery, EventuallyDescendsThroughViolatedPrefixes) {
  // eventually() is honestly non-prunable: the only counterexamples to
  // "eventually-quiet implies never-faulty" have their noisy round
  // *before* the quiet one, so the engine must keep descending under
  // prefixes the evaluator calls violated. An unsoundly pruning engine
  // (or an over-eager prunable() trait) would return holds here.
  const auto ev = ho::compile_text("eventually(mobile(0))");
  EXPECT_FALSE(ev->prunable());
  const auto never = std::make_shared<core::NeverFaulty>();
  const auto r = core::implies_exhaustive(*ev, *never, 2, 2);
  ASSERT_FALSE(r.holds);
  ASSERT_TRUE(r.counterexample.has_value());
  EXPECT_TRUE(ev->holds(*r.counterexample));
  EXPECT_FALSE(never->holds(*r.counterexample));
}

// --------------------------------------------------------------------------
// Catalog and placement.
// --------------------------------------------------------------------------

TEST(HoCatalog, EntriesAreCanonicalAndUniquelyNamed) {
  const auto catalog = ho::standard_catalog();
  ASSERT_FALSE(catalog.empty());
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const auto& entry = catalog[i];
    ASSERT_NE(entry.pred, nullptr) << entry.name;
    EXPECT_EQ(ho::to_text(ho::parse_spec(entry.spec)), entry.spec)
        << entry.name << ": catalog spec text is not canonical";
    EXPECT_EQ(entry.pred->name(), entry.name);
    for (std::size_t j = i + 1; j < catalog.size(); ++j) {
      EXPECT_NE(entry.name, catalog[j].name);
    }
  }
}

TEST(HoCatalog, PlacementFindsTheRecoveredZooModels) {
  const auto rows =
      ho::place_in_zoo(*ho::compile_text("loss_cap(1)"), 3, 1);
  ASSERT_EQ(rows.size(), ho::reference_zoo().size());
  bool saw_async = false;
  for (const auto& row : rows) {
    if (row.vs == "async(1)") {
      saw_async = true;
      EXPECT_TRUE(row.implies);
      EXPECT_TRUE(row.implied_by);
    }
  }
  EXPECT_TRUE(saw_async);
}

TEST(HoCatalog, PlacementHonorsEnumOptions) {
  core::EnumOptions options;
  options.path = core::EnginePath::kSet;
  options.runner = sweep::shard_runner(2);
  const auto rows = ho::place_in_zoo(*ho::compile_text("kernel(1)"), 3, 1,
                                     options);
  for (const auto& row : rows) {
    if (row.vs == "S") {
      EXPECT_TRUE(row.implies);
      EXPECT_TRUE(row.implied_by);
    }
  }
}

}  // namespace
