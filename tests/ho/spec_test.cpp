// Spec algebra: parser round-trips, strict errors, trait derivation.
#include "ho/spec.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ho/parse.h"
#include "util/check.h"

namespace {

using namespace rrfd;
using ho::Spec;
using ho::SpecKind;

TEST(HoSpec, CanonicalTextRoundTripsThroughParser) {
  const std::vector<std::string> canonical = {
      "loss_cap(1)",
      "mobile(0)",
      "self_delivery()",
      "no_partition()",
      "partition(src={0},dst={1,2})",
      "link_budget(2)",
      "crash_only()",
      "faulty(1)",
      "kernel(1)",
      "delay(3)",
      "all(self_delivery(),faulty(1))",
      "all(loss_cap(1),no_partition(),crash_only())",
      "window(2,0,crash_only())",
      "window(1,3,link_budget(1))",
      "eventually(mobile(0))",
      "eventually(all(self_delivery(),no_partition()))",
      "all(window(2,4,loss_cap(1)),eventually(mobile(0)))",
      "window(2,0,window(1,2,delay(1)))",
  };
  for (const std::string& text : canonical) {
    const Spec spec = ho::parse_spec(text);
    EXPECT_EQ(ho::to_text(spec), text);
    // to_text o parse is a fixed point on canonical text.
    EXPECT_EQ(ho::to_text(ho::parse_spec(ho::to_text(spec))), text);
  }
}

TEST(HoSpec, ParserAcceptsWhitespaceAndNormalizes) {
  const Spec spec =
      ho::parse_spec("  all( loss_cap( 1 ) ,\n no_partition( ) )  ");
  EXPECT_EQ(ho::to_text(spec), "all(loss_cap(1),no_partition())");
  const Spec part = ho::parse_spec("partition( src = { 0 , 2 } , dst={1} )");
  EXPECT_EQ(ho::to_text(part), "partition(src={0,2},dst={1})");
}

TEST(HoSpec, ParserRejectsMalformedSpecs) {
  const std::vector<std::string> bad = {
      "",                                 // no call at all
      "nope(1)",                          // unknown function
      "loss_cap",                         // missing argument list
      "loss_cap()",                       // missing bound
      "loss_cap(-1)",                     // negatives are not integers
      "loss_cap(1",                       // unbalanced parens
      "loss_cap(1))",                     // trailing input
      "loss_cap(1) x",                    // trailing input
      "loss_cap(crash_only())",           // spec where an int belongs
      "kernel(0)",                        // kernel size must be >= 1
      "all()",                            // empty conjunction
      "all(1)",                           // int where a spec belongs
      "window(0,0,crash_only())",         // lo must be >= 1
      "window(3,2,crash_only())",         // hi < lo
      "window(1,crash_only())",           // missing hi
      "eventually(crash_only())",         // body must be round-local
      "eventually(link_budget(1))",       // body must be round-local
      "eventually(window(1,1,mobile(0)))",  // body must be round-local
      "partition(src={},dst={0})",        // empty set literal
      "partition(src={0})",               // missing dst
      "partition(dst={0},src={1})",       // keywords in fixed order
      "partition(src={0},dst={64})",      // id out of range
      "partition(src=0,dst={1})",         // set braces required
  };
  for (const std::string& text : bad) {
    EXPECT_THROW((void)ho::parse_spec(text), ContractViolation) << text;
  }
}

TEST(HoSpec, IntegerParameterOverflowIsRejected) {
  EXPECT_THROW((void)ho::parse_spec("loss_cap(99999999999999999999)"),
               ContractViolation);
}

TEST(HoSpec, RoundLocalityIsStructural) {
  EXPECT_TRUE(ho::round_local(ho::parse_spec("loss_cap(1)")));
  EXPECT_TRUE(ho::round_local(
      ho::parse_spec("all(self_delivery(),no_partition(),mobile(1))")));
  EXPECT_FALSE(ho::round_local(ho::parse_spec("crash_only()")));
  EXPECT_FALSE(ho::round_local(ho::parse_spec("faulty(1)")));
  EXPECT_FALSE(
      ho::round_local(ho::parse_spec("all(loss_cap(1),link_budget(1))")));
  EXPECT_FALSE(ho::round_local(ho::parse_spec("window(1,1,mobile(0))")));
  EXPECT_FALSE(ho::round_local(ho::parse_spec("eventually(mobile(0))")));
}

TEST(HoSpec, TraitDerivationFollowsClosureProperties) {
  struct Case {
    std::string text;
    bool prunable;
    bool symmetric;
  };
  const std::vector<Case> cases = {
      {"loss_cap(1)", true, true},
      {"crash_only()", true, true},
      {"link_budget(1)", true, true},
      {"delay(2)", true, true},
      {"kernel(1)", true, true},
      // partition names identifiers: prefix-closed but not symmetric.
      {"partition(src={0},dst={1})", true, false},
      // eventually(): a later good round repairs a bad prefix.
      {"eventually(mobile(0))", false, true},
      // Conjunction is the AND of its parts' traits.
      {"all(loss_cap(1),partition(src={0},dst={1}))", true, false},
      {"all(loss_cap(1),eventually(mobile(0)))", false, true},
      {"all(partition(src={0},dst={1}),eventually(mobile(0)))", false, false},
      // window() preserves the child's closure properties.
      {"window(2,0,crash_only())", true, true},
      {"window(1,2,eventually(partition(src={0},dst={1})))", false, false},
  };
  for (const Case& c : cases) {
    const ho::Traits t = ho::derive_traits(ho::parse_spec(c.text));
    EXPECT_EQ(t.prunable, c.prunable) << c.text;
    EXPECT_EQ(t.symmetric, c.symmetric) << c.text;
  }
}

TEST(HoSpec, MaxProcessIdTracksPartitionMasks) {
  EXPECT_EQ(ho::max_process_id(ho::parse_spec("loss_cap(1)")), -1);
  EXPECT_EQ(ho::max_process_id(ho::parse_spec("partition(src={0},dst={1})")),
            1);
  EXPECT_EQ(ho::max_process_id(ho::parse_spec(
                "all(loss_cap(1),partition(src={2},dst={0,5}))")),
            5);
  EXPECT_EQ(ho::max_process_id(
                ho::parse_spec("partition(src={63},dst={0})")),
            63);
}

TEST(HoSpec, FactoryValidationMatchesParser) {
  EXPECT_THROW((void)ho::validate(ho::kernel(0)), ContractViolation);
  EXPECT_THROW((void)ho::validate(ho::loss_cap(-1)), ContractViolation);
  EXPECT_THROW((void)ho::validate(ho::partition(0, 1)), ContractViolation);
  EXPECT_THROW((void)ho::validate(ho::window(0, 0, ho::crash_only())),
               ContractViolation);
  EXPECT_THROW((void)ho::validate(ho::eventually(ho::crash_only())),
               ContractViolation);
  EXPECT_NO_THROW(ho::validate(ho::window(2, 2, ho::eventually(
                                                    ho::self_delivery()))));
}

}  // namespace
