// Properties of the three snapshot implementations.
//
// For single-shot use (every process updates once with a distinct value,
// then scans), atomic snapshots guarantee that all returned views are
// totally ordered by containment -- they are linearized. The Afek
// construction must exhibit exactly the same property as the atomic
// reference, across random schedules and crash injections; the immediate
// snapshot additionally guarantees self-inclusion and immediacy.
#include "shm/snapshot.h"

#include <gtest/gtest.h>

#include "runtime/schedulers.h"
#include "util/str.h"

namespace rrfd::shm {
namespace {

using runtime::Context;
using runtime::RandomScheduler;
using runtime::RoundRobinScheduler;
using runtime::Simulation;

/// Sorts views by size and checks pairwise containment.
template <typename T>
void expect_containment_chain(const std::vector<View<T>>& views) {
  for (std::size_t a = 0; a < views.size(); ++a) {
    for (std::size_t b = a + 1; b < views.size(); ++b) {
      EXPECT_TRUE(view_contains(views[a], views[b]) ||
                  view_contains(views[b], views[a]))
          << "views " << a << " and " << b << " are incomparable";
    }
  }
}

// ---------------------------------------------------------------------------
// DirectSnapshot
// ---------------------------------------------------------------------------

TEST(DirectSnapshot, UpdateThenScan) {
  DirectSnapshot<int> snap(3);
  View<int> view;
  Simulation sim(3, [&](Context& ctx) {
    snap.update(ctx, ctx.id() + 100);
    if (ctx.id() == 0) {
      ctx.step();
      ctx.step();  // let the others write under round-robin
      view = snap.scan(ctx);
    }
  });
  RoundRobinScheduler sched;
  sim.run(sched);
  ASSERT_EQ(view.size(), 3u);
  for (core::ProcId i = 0; i < 3; ++i) {
    ASSERT_TRUE(view[static_cast<std::size_t>(i)].has_value());
    EXPECT_EQ(*view[static_cast<std::size_t>(i)], i + 100);
  }
}

TEST(DirectSnapshot, ScansFormContainmentChain) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    DirectSnapshot<int> snap(4);
    std::vector<View<int>> views;
    Simulation sim(4, [&](Context& ctx) {
      snap.update(ctx, ctx.id());
      views.push_back(snap.scan(ctx));
    });
    RandomScheduler sched(seed);
    sim.run(sched);
    expect_containment_chain(views);
  }
}

// ---------------------------------------------------------------------------
// AfekSnapshot
// ---------------------------------------------------------------------------

TEST(AfekSnapshot, SequentialUpdateThenScan) {
  AfekSnapshot<int> snap(3);
  View<int> view;
  Simulation sim(3, [&](Context& ctx) {
    snap.update(ctx, ctx.id() + 7);
    if (ctx.id() == 2) {
      for (int i = 0; i < 40; ++i) ctx.step();  // let the others finish
      view = snap.scan(ctx);
    }
  });
  RoundRobinScheduler sched;
  sim.run(sched);
  ASSERT_EQ(view.size(), 3u);
  for (core::ProcId i = 0; i < 3; ++i) {
    ASSERT_TRUE(view[static_cast<std::size_t>(i)].has_value()) << i;
    EXPECT_EQ(*view[static_cast<std::size_t>(i)], i + 7);
  }
}

TEST(AfekSnapshot, ScanSeesOwnPriorUpdate) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    AfekSnapshot<int> snap(3);
    bool own_seen = true;
    Simulation sim(3, [&](Context& ctx) {
      snap.update(ctx, ctx.id());
      View<int> v = snap.scan(ctx);
      own_seen = own_seen &&
                 v[static_cast<std::size_t>(ctx.id())].has_value();
    });
    RandomScheduler sched(seed);
    sim.run(sched);
    EXPECT_TRUE(own_seen) << "seed " << seed;
  }
}

TEST(AfekSnapshot, SingleShotViewsFormContainmentChain) {
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    AfekSnapshot<int> snap(4);
    std::vector<View<int>> views;
    Simulation sim(4, [&](Context& ctx) {
      snap.update(ctx, ctx.id());
      views.push_back(snap.scan(ctx));
    });
    RandomScheduler sched(seed);
    sim.run(sched, /*max_steps=*/1 << 18);
    expect_containment_chain(views);
  }
}

TEST(AfekSnapshot, ContainmentSurvivesCrashes) {
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    AfekSnapshot<int> snap(4);
    std::vector<View<int>> views;
    Simulation sim(4, [&](Context& ctx) {
      snap.update(ctx, ctx.id());
      views.push_back(snap.scan(ctx));
    });
    RandomScheduler sched(seed, /*crash_prob=*/0.02, /*max_crashes=*/2);
    sim.run(sched, /*max_steps=*/1 << 18);
    expect_containment_chain(views);  // only completed scans are recorded
  }
}

TEST(AfekSnapshot, ScanIsWaitFreeUnderConcurrentUpdates) {
  // A scanner running against two busy updaters must terminate (the
  // embedded-scan shortcut); the step budget enforces it.
  AfekSnapshot<int> snap(3);
  View<int> view;
  bool scanned = false;
  Simulation sim(3, [&](Context& ctx) {
    if (ctx.id() == 2) {
      view = snap.scan(ctx);
      scanned = true;
    } else {
      for (int i = 0; i < 20; ++i) snap.update(ctx, i);
    }
  });
  RandomScheduler sched(/*seed=*/5);
  sim.run(sched, /*max_steps=*/1 << 16);
  EXPECT_TRUE(scanned);
}

TEST(AfekSnapshot, AgreesWithDirectUnderIdenticalSchedules) {
  // Not a strict requirement (they take different step counts), but both
  // must produce *valid* single-shot outcomes under any seed: every view
  // contains the scanner's own value and views chain.
  for (std::uint64_t seed = 100; seed < 130; ++seed) {
    AfekSnapshot<int> afek(3);
    std::vector<View<int>> views(3, View<int>{});
    Simulation sim(3, [&](Context& ctx) {
      afek.update(ctx, ctx.id() * 2);
      views[static_cast<std::size_t>(ctx.id())] = afek.scan(ctx);
    });
    RandomScheduler sched(seed);
    sim.run(sched, /*max_steps=*/1 << 18);
    for (core::ProcId i = 0; i < 3; ++i) {
      const auto& v = views[static_cast<std::size_t>(i)];
      ASSERT_EQ(v.size(), 3u);
      ASSERT_TRUE(v[static_cast<std::size_t>(i)].has_value());
      EXPECT_EQ(*v[static_cast<std::size_t>(i)], i * 2);
    }
    expect_containment_chain(views);
  }
}

// ---------------------------------------------------------------------------
// ImmediateSnapshot
// ---------------------------------------------------------------------------

struct ImmediateViews {
  std::vector<std::optional<View<int>>> by_proc;
};

ImmediateViews run_immediate(int n, std::uint64_t seed, int max_crashes) {
  ImmediateSnapshot<int> snap(n);
  ImmediateViews out;
  out.by_proc.assign(static_cast<std::size_t>(n), std::nullopt);
  Simulation sim(n, [&](Context& ctx) {
    out.by_proc[static_cast<std::size_t>(ctx.id())] =
        snap.participate(ctx, ctx.id() + 1000);
  });
  RandomScheduler sched(seed, max_crashes > 0 ? 0.05 : 0.0, max_crashes);
  sim.run(sched, 1 << 18);
  return out;
}

class ImmediateSnapshotProperties
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t, int>> {};

TEST_P(ImmediateSnapshotProperties, SelfInclusionContainmentImmediacy) {
  auto [n, seed, crashes] = GetParam();
  ImmediateViews views = run_immediate(n, seed, crashes);

  for (core::ProcId i = 0; i < n; ++i) {
    const auto& vi = views.by_proc[static_cast<std::size_t>(i)];
    if (!vi) continue;  // crashed before finishing
    // Self-inclusion.
    ASSERT_TRUE((*vi)[static_cast<std::size_t>(i)].has_value())
        << "process " << i << " missing from its own view";
    EXPECT_EQ(*(*vi)[static_cast<std::size_t>(i)], i + 1000);
    for (core::ProcId j = 0; j < n; ++j) {
      const auto& vj = views.by_proc[static_cast<std::size_t>(j)];
      if (!vj) continue;
      // Containment.
      EXPECT_TRUE(view_contains(*vi, *vj) || view_contains(*vj, *vi))
          << "views of " << i << " and " << j << " incomparable";
      // Immediacy: j in V_i implies V_j subseteq V_i.
      if ((*vi)[static_cast<std::size_t>(j)].has_value()) {
        EXPECT_TRUE(view_contains(*vi, *vj))
            << "immediacy broken for " << j << " in view of " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ImmediateSnapshotProperties,
    ::testing::Combine(::testing::Values(2, 3, 5, 8),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u),
                       ::testing::Values(0, 2)),
    [](const ::testing::TestParamInfo<std::tuple<int, std::uint64_t, int>>& pinfo) {
      // cat() instead of `"n" + std::to_string(...)`: the rvalue operator+
      // chain trips GCC 12's -Wrestrict false positive at -O3 -Werror.
      return cat("n", std::get<0>(pinfo.param), "_s", std::get<1>(pinfo.param),
                 "_c", std::get<2>(pinfo.param));
    });

TEST(ImmediateSnapshot, SoloParticipantSeesOnlyItself) {
  ImmediateViews views = run_immediate(1, 1, 0);
  ASSERT_TRUE(views.by_proc[0].has_value());
  EXPECT_EQ(view_size(*views.by_proc[0]), 1);
}

TEST(ImmediateSnapshot, FaultSetsMatchItem5Predicate) {
  // The RRFD reading: D(i,r) = complement of the view. One immediate
  // snapshot round satisfies item 5's predicate for any f >= n-1... and
  // with all participants alive, misses are bounded by n-1 trivially;
  // the structural parts (no self, containment) are what matter.
  const int n = 5;
  ImmediateViews views = run_immediate(n, 9, 0);
  for (core::ProcId i = 0; i < n; ++i) {
    ASSERT_TRUE(views.by_proc[static_cast<std::size_t>(i)].has_value());
    const auto& v = *views.by_proc[static_cast<std::size_t>(i)];
    EXPECT_TRUE(v[static_cast<std::size_t>(i)].has_value());
  }
}

}  // namespace
}  // namespace rrfd::shm
