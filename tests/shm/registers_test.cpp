#include "shm/registers.h"

#include <gtest/gtest.h>

#include "runtime/schedulers.h"

namespace rrfd::shm {
namespace {

using runtime::RoundRobinScheduler;
using runtime::Simulation;

TEST(SwmrRegister, WriteThenReadRoundTrips) {
  SwmrRegister<int> reg(/*owner=*/0, /*initial=*/-1);
  int seen = 0;
  Simulation sim(2, [&](runtime::Context& ctx) {
    if (ctx.id() == 0) {
      reg.write(ctx, 42);
    } else {
      ctx.step();  // let the writer go first under round-robin
      seen = reg.read(ctx);
    }
  });
  RoundRobinScheduler sched;
  sim.run(sched);
  EXPECT_EQ(reg.peek(), 42);
  EXPECT_EQ(seen, 42);
}

TEST(SwmrRegister, NonOwnerWriteIsRejected) {
  SwmrRegister<int> reg(/*owner=*/0);
  Simulation sim(2, [&](runtime::Context& ctx) {
    if (ctx.id() == 1) reg.write(ctx, 7);
  });
  RoundRobinScheduler sched;
  EXPECT_THROW(sim.run(sched), ContractViolation);
}

TEST(SwmrRegister, InitialValueReadable) {
  SwmrRegister<int> reg(/*owner=*/0, 123);
  int seen = 0;
  Simulation sim(1, [&](runtime::Context& ctx) { seen = reg.read(ctx); });
  RoundRobinScheduler sched;
  sim.run(sched);
  EXPECT_EQ(seen, 123);
}

TEST(SwmrArray, CellsStartUnwritten) {
  SwmrArray<int> arr(3);
  std::vector<std::optional<int>> collected;
  Simulation sim(1, [&](runtime::Context& ctx) { collected = arr.collect(ctx); });
  RoundRobinScheduler sched;
  sim.run(sched);
  ASSERT_EQ(collected.size(), 3u);
  for (const auto& c : collected) EXPECT_FALSE(c.has_value());
}

TEST(SwmrArray, EveryProcessWritesItsOwnCell) {
  SwmrArray<int> arr(4);
  Simulation sim(4, [&](runtime::Context& ctx) {
    arr.write(ctx, ctx.id() * 10);
  });
  RoundRobinScheduler sched;
  sim.run(sched);
  for (core::ProcId i = 0; i < 4; ++i) {
    ASSERT_TRUE(arr.peek(i).has_value());
    EXPECT_EQ(*arr.peek(i), i * 10);
  }
}

TEST(SwmrArray, CollectSeesCompletedWrites) {
  SwmrArray<int> arr(3);
  std::vector<std::optional<int>> seen_by_2;
  Simulation sim(3, [&](runtime::Context& ctx) {
    if (ctx.id() < 2) {
      arr.write(ctx, ctx.id());
    } else {
      // Let the writers finish first (round-robin: each write needs one
      // grant after start; give ourselves a couple of delay steps).
      ctx.step();
      ctx.step();
      seen_by_2 = arr.collect(ctx);
    }
  });
  RoundRobinScheduler sched;
  sim.run(sched);
  EXPECT_TRUE(seen_by_2[0].has_value());
  EXPECT_TRUE(seen_by_2[1].has_value());
}

TEST(SwmrArray, ReadSingleCell) {
  SwmrArray<int> arr(2);
  std::optional<int> r0, r1;
  Simulation sim(2, [&](runtime::Context& ctx) {
    if (ctx.id() == 0) {
      arr.write(ctx, 5);
      r1 = arr.read(ctx, 1);
    } else {
      ctx.step();
      r0 = arr.read(ctx, 0);
    }
  });
  RoundRobinScheduler sched;
  sim.run(sched);
  EXPECT_EQ(r0, std::optional<int>(5));
}

TEST(SwmrArray, OutOfRangeReadThrows) {
  SwmrArray<int> arr(2);
  Simulation sim(1, [&](runtime::Context& ctx) { arr.read(ctx, 5); });
  RoundRobinScheduler sched;
  EXPECT_THROW(sim.run(sched), ContractViolation);
}

TEST(SwmrArray, CrashedWriterLeavesCellUnwrittenOrWritten) {
  // A writer crashed before its write leaves bottom; after, the value.
  // Both are legal outcomes; what must never happen is a torn value.
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    SwmrArray<int> arr(3);
    Simulation sim(3, [&](runtime::Context& ctx) { arr.write(ctx, 7); });
    runtime::RandomScheduler sched(seed, /*crash_prob=*/0.3, /*max_crashes=*/2);
    sim.run(sched);
    for (core::ProcId i = 0; i < 3; ++i) {
      if (arr.peek(i).has_value()) {
        EXPECT_EQ(*arr.peek(i), 7);
      }
    }
  }
}

}  // namespace
}  // namespace rrfd::shm
