#include "shm/kset_object.h"

#include <gtest/gtest.h>

#include <set>

#include "runtime/schedulers.h"

namespace rrfd::shm {
namespace {

TEST(KSetObject, FirstProposalWins) {
  KSetObject obj(2, /*seed=*/1);
  EXPECT_EQ(obj.propose_unsimulated(41), 41);
  ASSERT_EQ(obj.winners().size(), 1u);
  EXPECT_EQ(obj.winners()[0], 41);
}

TEST(KSetObject, ValidityEveryReturnWasProposed) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    KSetObject obj(3, seed);
    std::set<int> proposed;
    for (int v = 0; v < 10; ++v) {
      proposed.insert(v * 7);
      const int got = obj.propose_unsimulated(v * 7);
      EXPECT_TRUE(proposed.count(got)) << "returned unproposed " << got;
    }
  }
}

TEST(KSetObject, AtMostKDistinctReturns) {
  for (int k = 1; k <= 4; ++k) {
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
      KSetObject obj(k, seed);
      std::set<int> returns;
      for (int v = 0; v < 30; ++v) returns.insert(obj.propose_unsimulated(v));
      EXPECT_LE(static_cast<int>(returns.size()), k);
    }
  }
}

TEST(KSetObject, KEqualsOneIsConsensus) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    KSetObject obj(1, seed);
    const int first = obj.propose_unsimulated(5);
    EXPECT_EQ(first, 5);
    for (int v = 6; v < 16; ++v) EXPECT_EQ(obj.propose_unsimulated(v), 5);
  }
}

TEST(KSetObject, DeterministicGivenSeed) {
  KSetObject a(3, 42), b(3, 42);
  for (int v = 0; v < 20; ++v) {
    EXPECT_EQ(a.propose_unsimulated(v), b.propose_unsimulated(v));
  }
}

TEST(KSetObject, ProposeTakesOneStep) {
  KSetObject obj(2, 7);
  runtime::Simulation sim(3, [&](runtime::Context& ctx) {
    const int got = obj.propose_unsimulated(ctx.id());
    (void)got;
    obj.propose(ctx, ctx.id() + 10);
  });
  runtime::RandomScheduler sched(3);
  runtime::SimOutcome out = sim.run(sched);
  // Each body: 1 start grant + 1 step grant + completion happens within
  // the step grant; 2 grants per process.
  EXPECT_EQ(out.steps, 6);
  EXPECT_LE(static_cast<int>(obj.winners().size()), 2);
}

TEST(KSetObject, RejectsInvalidK) {
  EXPECT_THROW(KSetObject(0, 1), ContractViolation);
}

}  // namespace
}  // namespace rrfd::shm
