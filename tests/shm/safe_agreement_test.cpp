// Safe agreement: always agrees, decides unless a crash lands in the
// doorway -- the complement of adopt-commit on the wait-free frontier.
#include "shm/safe_agreement.h"

#include <gtest/gtest.h>

#include <set>

#include "runtime/explorer.h"
#include "runtime/schedulers.h"

namespace rrfd::shm {
namespace {

using runtime::Context;
using runtime::RandomScheduler;
using runtime::RoundRobinScheduler;
using runtime::ScriptedScheduler;
using runtime::Simulation;

struct RunOutput {
  std::vector<std::optional<int>> decisions;
  core::ProcessSet crashed;

  explicit RunOutput(int n) : decisions(static_cast<std::size_t>(n)), crashed(n) {}
};

/// Everyone proposes its own id*10, then polls resolve a bounded number
/// of times (so doorway crashes surface as "undecided", not hangs).
RunOutput run_bounded(int n, runtime::Scheduler& sched, int polls = 50) {
  SafeAgreement sa(n);
  RunOutput out(n);
  Simulation sim(n, [&](Context& ctx) {
    sa.propose(ctx, ctx.id() * 10);
    for (int p = 0; p < polls; ++p) {
      const std::optional<int> d = sa.resolve(ctx);
      if (d) {
        out.decisions[static_cast<std::size_t>(ctx.id())] = d;
        return;
      }
    }
  });
  out.crashed = sim.run(sched).crashed;
  return out;
}

TEST(SafeAgreement, SoloProposerDecidesItsOwnValue) {
  RoundRobinScheduler sched;
  auto out = run_bounded(1, sched);
  EXPECT_EQ(out.decisions[0], std::optional<int>(0));
}

TEST(SafeAgreement, CrashFreeRunsAlwaysDecideAndAgree) {
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    RandomScheduler sched(seed);
    auto out = run_bounded(4, sched);
    std::set<int> values;
    for (const auto& d : out.decisions) {
      ASSERT_TRUE(d.has_value()) << "seed " << seed;
      values.insert(*d);
      EXPECT_EQ(*d % 10, 0);  // validity: somebody's proposal
    }
    EXPECT_EQ(values.size(), 1u) << "seed " << seed;
  }
}

TEST(SafeAgreement, ExhaustiveTwoProcessAgreement) {
  runtime::ScheduleExplorer explorer;
  long disagreements = 0, both_decided = 0;
  auto stats = explorer.explore([&](runtime::Scheduler& sched) {
    auto out = run_bounded(2, sched, /*polls=*/3);
    if (out.decisions[0] && out.decisions[1]) {
      ++both_decided;
      if (*out.decisions[0] != *out.decisions[1]) ++disagreements;
    }
  });
  EXPECT_TRUE(stats.exhausted);
  EXPECT_EQ(disagreements, 0);
  // (A proposer may burn all its polls while the other sits mid-doorway,
  // so not every schedule decides -- but plenty do.)
  EXPECT_GT(both_decided, 0);
}

TEST(SafeAgreement, ExhaustiveTwoProcessWithOneCrash) {
  runtime::ScheduleExplorer::Options opts;
  opts.max_crashes = 1;
  runtime::ScheduleExplorer explorer(opts);
  long disagreements = 0;
  bool blocked_run_seen = false;
  auto stats = explorer.explore([&](runtime::Scheduler& sched) {
    auto out = run_bounded(2, sched, /*polls=*/3);
    if (out.decisions[0] && out.decisions[1] &&
        *out.decisions[0] != *out.decisions[1]) {
      ++disagreements;
    }
    // A survivor left undecided = the crash landed in the doorway.
    for (core::ProcId i = 0; i < 2; ++i) {
      if (!out.crashed.contains(i) &&
          !out.decisions[static_cast<std::size_t>(i)]) {
        blocked_run_seen = true;
      }
    }
  });
  EXPECT_TRUE(stats.exhausted);
  EXPECT_EQ(disagreements, 0) << "agreement must survive every crash";
  EXPECT_TRUE(blocked_run_seen)
      << "some crash placement must block the object (that is the price "
         "safe agreement pays; otherwise it would solve consensus "
         "wait-free)";
}

TEST(SafeAgreement, DoorwayCrashBlocksResolution) {
  // Crash p0 exactly between its two level writes; p1 must stay
  // unresolved forever (bounded polls all return nullopt).
  SafeAgreement sa(2);
  std::optional<int> p1_decision;
  int p1_polls = 0;
  Simulation sim(2, [&](Context& ctx) {
    if (ctx.id() == 0) {
      sa.propose(ctx, 111);
    } else {
      sa.propose(ctx, 222);
      for (int p = 0; p < 30; ++p) {
        ++p1_polls;
        if (auto d = sa.resolve(ctx)) {
          p1_decision = d;
          return;
        }
      }
    }
  });
  // p0 grants: start, write1-of-propose (level 1), scan, then CRASH
  // before the second write.
  ScriptedScheduler sched({{0, false}, {0, false}, {0, false}, {0, true}});
  sim.run(sched);
  EXPECT_FALSE(p1_decision.has_value());
  EXPECT_EQ(p1_polls, 30);
}

TEST(SafeAgreement, CrashAfterDoorwayDoesNotBlock) {
  // Crash p0 after its second write: the object resolves fine.
  SafeAgreement sa(2);
  std::optional<int> p1_decision;
  Simulation sim(2, [&](Context& ctx) {
    if (ctx.id() == 0) {
      sa.propose(ctx, 111);
      for (;;) ctx.step();  // park until crashed
    } else {
      sa.propose(ctx, 222);
      for (int p = 0; p < 30 && !p1_decision; ++p) {
        p1_decision = sa.resolve(ctx);
      }
    }
  });
  // p0: start, write1, scan, write2 (doorway closed), then crash.
  ScriptedScheduler sched({{0, false}, {0, false}, {0, false}, {0, false},
                           {0, true}});
  sim.run(sched);
  ASSERT_TRUE(p1_decision.has_value());
  EXPECT_EQ(*p1_decision, 111) << "the first through the doorway wins";
}

TEST(SafeAgreement, LateProposersAdoptTheEarlyDecision) {
  // p0 completes everything first; p1 and p2 propose afterwards and must
  // back off to the established value.
  SafeAgreement sa(3);
  std::vector<std::optional<int>> decisions(3);
  Simulation sim(3, [&](Context& ctx) {
    decisions[static_cast<std::size_t>(ctx.id())] =
        sa.propose_and_resolve(ctx, ctx.id() + 100);
  });
  ScriptedScheduler sched({});  // lowest-first: p0 runs to completion
  sim.run(sched);
  for (const auto& d : decisions) EXPECT_EQ(d, std::optional<int>(100));
}

TEST(SafeAgreement, RandomSweepsNeverDisagree) {
  for (int n : {3, 5, 8}) {
    for (std::uint64_t seed = 0; seed < 30; ++seed) {
      RandomScheduler sched(seed, /*crash_prob=*/0.02, /*max_crashes=*/n - 1);
      auto out = run_bounded(n, sched);
      std::set<int> values;
      for (const auto& d : out.decisions) {
        if (d) values.insert(*d);
      }
      EXPECT_LE(values.size(), 1u) << "n=" << n << " seed=" << seed;
    }
  }
}

}  // namespace
}  // namespace rrfd::shm
