// Pattern-level simulations: items 3-4 emulations and Theorem 4.1.
#include "xform/round_combiner.h"

#include <gtest/gtest.h>

#include "core/adversaries.h"
#include "core/predicates.h"
#include "util/rng.h"
#include "util/str.h"

namespace rrfd::xform {
namespace {

using core::FaultPattern;
using core::ProcId;
using core::ProcessSet;
using core::record_pattern;

// ---------------------------------------------------------------------------
// Item 4: 2 async rounds (2f < n) => 1 SWMR round
// ---------------------------------------------------------------------------

class MajorityEmulationSweep
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(MajorityEmulationSweep, DerivedRoundSatisfiesSwmrPredicates) {
  auto [n, f, seed] = GetParam();
  if (2 * f >= n) GTEST_SKIP() << "emulation requires a majority (2f < n)";
  core::AsyncAdversary adv(n, f, seed);
  for (int trial = 0; trial < 30; ++trial) {
    FaultPattern async2 = record_pattern(adv, 2);
    ASSERT_TRUE(core::async_message_passing(f)->holds(async2));
    FaultPattern derived = swmr_from_async(async2);
    ASSERT_EQ(derived.rounds(), 1);
    EXPECT_TRUE(core::swmr_shared_memory(f)->holds(derived))
        << "constituents:\n"
        << async2.to_string() << "derived:\n"
        << derived.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MajorityEmulationSweep,
    ::testing::Combine(::testing::Values(3, 5, 9, 21, 63),
                       ::testing::Values(1, 2),
                       ::testing::Values(2u, 22u)),
    [](const ::testing::TestParamInfo<std::tuple<int, int, std::uint64_t>>& pinfo) {
      return cat("n", std::get<0>(pinfo.param), "_f", std::get<1>(pinfo.param),
                 "_s", std::get<2>(pinfo.param));
    });

TEST(MajorityEmulation, MultiRoundCombination) {
  core::AsyncAdversary adv(7, 3, /*seed=*/5);
  FaultPattern async6 = record_pattern(adv, 6);
  FaultPattern derived = swmr_from_async(async6);
  EXPECT_EQ(derived.rounds(), 3);
  EXPECT_TRUE(core::swmr_shared_memory(3)->holds(derived));
}

TEST(MajorityEmulation, WithoutMajorityPredicate4CanFail) {
  // 2f >= n: a partition into two halves that never hear each other
  // defeats the emulation -- the reason shared memory needs a majority.
  const int n = 4, f = 2;
  FaultPattern p(n);
  const ProcessSet left(n, {0, 1});
  const ProcessSet right(n, {2, 3});
  for (int r = 0; r < 2; ++r) {
    core::RoundFaults round;
    for (ProcId i = 0; i < n; ++i) {
      round.push_back(left.contains(i) ? right : left);
    }
    p.append(round);
  }
  ASSERT_TRUE(core::async_message_passing(f)->holds(p));
  FaultPattern derived = swmr_from_async(p);
  EXPECT_FALSE(core::SomeoneHeardByAll().holds(derived));
}

TEST(MajorityEmulation, OddRoundCountRejected) {
  core::AsyncAdversary adv(5, 1, 1);
  FaultPattern p = record_pattern(adv, 3);
  EXPECT_THROW(swmr_from_async(p), ContractViolation);
}

// ---------------------------------------------------------------------------
// Item 3: 2 rounds of B (quorum-skew) => 1 round of A (async f)
// ---------------------------------------------------------------------------

/// Random quorum-skew round: a set Q of up to t processes misses up to t,
/// the rest miss up to f.
core::RoundFaults random_skew_round(int n, int t, int f, Rng& rng) {
  std::vector<int> q = rng.sample_without_replacement(
      n, static_cast<int>(rng.below(static_cast<std::uint64_t>(t) + 1)));
  ProcessSet in_q(n);
  for (int p : q) in_q.add(p);
  core::RoundFaults round;
  for (ProcId i = 0; i < n; ++i) {
    const int bound = in_q.contains(i) ? t : f;
    const int size = static_cast<int>(rng.below(static_cast<std::uint64_t>(bound) + 1));
    ProcessSet d(n);
    for (int m : rng.sample_without_replacement(n, size)) d.add(m);
    round.push_back(d);
  }
  return round;
}

class QuorumSkewSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(QuorumSkewSweep, TwoBRoundsImplementOneARound) {
  auto [n, t, f] = GetParam();
  ASSERT_LT(f, t);
  ASSERT_LT(2 * t, n);
  Rng rng(static_cast<std::uint64_t>(n * 1000 + t * 10 + f));
  for (int trial = 0; trial < 40; ++trial) {
    FaultPattern b(n);
    b.append(random_skew_round(n, t, f, rng));
    b.append(random_skew_round(n, t, f, rng));
    ASSERT_TRUE(core::quorum_skew(t, f)->holds(b)) << b.to_string();
    FaultPattern a = async_from_quorum_skew(b);
    EXPECT_TRUE(core::async_message_passing(f)->holds(a))
        << "B pattern:\n"
        << b.to_string() << "derived A round:\n"
        << a.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QuorumSkewSweep,
    ::testing::Values(std::make_tuple(5, 2, 1), std::make_tuple(7, 3, 1),
                      std::make_tuple(9, 4, 2), std::make_tuple(21, 8, 3)),
    [](const ::testing::TestParamInfo<std::tuple<int, int, int>>& pinfo) {
      return cat("n", std::get<0>(pinfo.param), "_t", std::get<1>(pinfo.param),
                 "_f", std::get<2>(pinfo.param));
    });

TEST(QuorumSkew, AIsAStrictSubmodelOfB) {
  // Every A round is a B round (submodel)...
  core::AsyncAdversary a_adv(7, 1, /*seed=*/1);
  for (int trial = 0; trial < 30; ++trial) {
    FaultPattern p = record_pattern(a_adv, 1);
    EXPECT_TRUE(core::quorum_skew(3, 1)->holds(p));
  }
  // ...but not vice versa: a B round where a Q member misses t > f others.
  const int n = 7;
  FaultPattern b(n);
  core::RoundFaults round(static_cast<std::size_t>(n), ProcessSet(n));
  round[0] = ProcessSet(n, {1, 2, 3});  // |D| = 3 = t > f = 1
  b.append(round);
  EXPECT_TRUE(core::quorum_skew(3, 1)->holds(b));
  EXPECT_FALSE(core::async_message_passing(1)->holds(b));
}

// ---------------------------------------------------------------------------
// Theorem 4.1: snapshot(k) over floor(f/k) rounds is omission(f)
// ---------------------------------------------------------------------------

class Theorem41Sweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};  // n,k,f

TEST_P(Theorem41Sweep, SnapshotPatternIsAnOmissionPattern) {
  auto [n, k, f] = GetParam();
  const int rounds = f / k;
  core::SnapshotAdversary adv(n, k,
                              static_cast<std::uint64_t>(n + k * 31 + f));
  for (int trial = 0; trial < 30; ++trial) {
    FaultPattern snap = record_pattern(adv, rounds);
    FaultPattern omission = omission_from_snapshot(snap, k, f);
    EXPECT_TRUE(core::sync_omission(f)->holds(omission))
        << omission.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Theorem41Sweep,
    ::testing::Values(std::make_tuple(8, 1, 3), std::make_tuple(8, 2, 6),
                      std::make_tuple(12, 3, 9), std::make_tuple(32, 2, 7)),
    [](const ::testing::TestParamInfo<std::tuple<int, int, int>>& pinfo) {
      return cat("n", std::get<0>(pinfo.param), "_k", std::get<1>(pinfo.param),
                 "_f", std::get<2>(pinfo.param));
    });

TEST(Theorem41, TooManyRoundsRejected) {
  core::SnapshotAdversary adv(8, 2, /*seed=*/3);
  FaultPattern snap = record_pattern(adv, 4);  // floor(6/2) = 3 < 4
  EXPECT_THROW(omission_from_snapshot(snap, 2, 6), ContractViolation);
}

TEST(Theorem41, NonSnapshotInputRejected) {
  core::AsyncAdversary adv(8, 2, /*seed=*/900);
  // Find an async pattern violating containment (almost any will).
  for (int trial = 0; trial < 100; ++trial) {
    FaultPattern p = record_pattern(adv, 2);
    if (!core::atomic_snapshot(2)->holds(p)) {
      EXPECT_THROW(omission_from_snapshot(p, 2, 6), ContractViolation);
      return;
    }
  }
  FAIL() << "never sampled a non-snapshot async pattern";
}

}  // namespace
}  // namespace rrfd::xform
