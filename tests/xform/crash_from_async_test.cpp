// Theorem 4.3: simulating synchronous crash rounds on asynchronous
// shared memory with at most k failures, via adopt-commit.
#include "xform/crash_from_async.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "agreement/flood_min.h"
#include "agreement/tasks.h"
#include "runtime/schedulers.h"
#include "xform/pattern_checks.h"
#include "util/str.h"

namespace rrfd::xform {
namespace {

using agreement::FloodMin;
using core::ProcessSet;
using runtime::RandomScheduler;
using runtime::RoundRobinScheduler;

std::vector<FloodMin> make_floodmin(const std::vector<int>& inputs,
                                    core::Round decide_round) {
  std::vector<FloodMin> ps;
  for (int v : inputs) ps.emplace_back(v, decide_round);
  return ps;
}

TEST(CrashFromAsync, FaultFreeRunDeliversEverything) {
  const std::vector<int> inputs{4, 2, 7, 5};
  auto procs = make_floodmin(inputs, 2);
  RoundRobinScheduler sched;
  auto result = run_crash_from_async(procs, /*k=*/1, /*rounds=*/2, sched);
  EXPECT_TRUE(result.crashed.empty());
  // Nobody missing, nobody committed faulty: the simulated pattern is
  // fault-free and flood-min agrees on the global minimum.
  EXPECT_TRUE(result.simulated.cumulative_union().empty());
  for (const auto& d : result.decisions) {
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(*d, 2);
  }
  EXPECT_EQ(result.async_rounds_used, 6);
}

class CrashFromAsyncSweep
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(CrashFromAsyncSweep, SimulatedPatternIsSyncCrashWithBudgetKR) {
  auto [n, k, seed] = GetParam();
  // Stay within Theorem 4.3's envelope: simulate floor(f/k) rounds for the
  // largest legal fault budget f = n-1.
  const core::Round rounds = std::max(1, (n - 1) / k);
  std::vector<int> inputs;
  for (int i = 0; i < n; ++i) inputs.push_back(i + 10);

  for (int trial = 0; trial < 10; ++trial) {
    auto procs = make_floodmin(inputs, rounds);
    RandomScheduler sched(seed + static_cast<std::uint64_t>(trial) * 31,
                          /*crash_prob=*/0.002, /*max_crashes=*/k);
    auto result = run_crash_from_async(procs, k, rounds, sched);
    const ProcessSet alive = result.crashed.complement();

    // Theorem 4.3: the delivered-bottom pattern is a crash pattern with at
    // most k new faults per simulated round.
    EXPECT_TRUE(crash_pattern_holds_among(result.simulated, alive, k * rounds))
        << "n=" << n << " k=" << k << " trial=" << trial << "\n"
        << result.simulated.to_string();

    // And the simulated algorithm still solves its task: flood-min over
    // rounds > floor(f/k) ... here rounds = 3 with budget 3k means the
    // clean-round argument needs rounds >= faults+1; just check validity +
    // termination among alive processes, and full agreement when the
    // pattern stayed fault-free.
    for (core::ProcId i : alive.members()) {
      ASSERT_TRUE(result.decisions[static_cast<std::size_t>(i)].has_value());
    }
    if (result.simulated.cumulative_union().empty()) {
      auto check =
          agreement::check_consensus(inputs, result.decisions, alive);
      EXPECT_TRUE(check.ok) << check.failure;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CrashFromAsyncSweep,
    ::testing::Combine(::testing::Values(3, 4, 6),
                       ::testing::Values(1, 2),
                       ::testing::Values(5u, 50u)),
    [](const ::testing::TestParamInfo<std::tuple<int, int, std::uint64_t>>& pinfo) {
      return cat("n", std::get<0>(pinfo.param), "_k", std::get<1>(pinfo.param),
                 "_s", std::get<2>(pinfo.param));
    });

TEST(CrashFromAsync, ExecutorCrashBecomesSimulatedCrash) {
  // Crash one executor aggressively; the simulated pattern among alive
  // processes must announce at most k = 1 process, monotonically.
  const int n = 4;
  const core::Round rounds = 3;
  std::vector<int> inputs{9, 3, 6, 1};
  int simulated_crashes_seen = 0;
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    auto procs = make_floodmin(inputs, rounds);
    RandomScheduler sched(seed, /*crash_prob=*/0.01, /*max_crashes=*/1);
    auto result = run_crash_from_async(procs, /*k=*/1, rounds, sched);
    const ProcessSet alive = result.crashed.complement();
    EXPECT_TRUE(crash_pattern_holds_among(result.simulated, alive, rounds));
    core::ProcessSet announced(n);
    for (core::Round r = 1; r <= rounds; ++r) {
      for (core::ProcId i : alive.members()) {
        announced |= result.simulated.d(i, r);
      }
    }
    if (!announced.empty()) ++simulated_crashes_seen;
    // At most k = 1 new announcement per simulated round. Note announced
    // processes need not be the crashed executor: a merely-slow executor
    // can be missed in a snapshot round and committed faulty -- that is
    // the asynchrony the simulation absorbs.
    EXPECT_LE(announced.size(), rounds);
  }
  EXPECT_GT(simulated_crashes_seen, 0)
      << "crash injection never produced a simulated fault";
}

TEST(CrashFromAsync, FloodMinViaSimulationSolvesConsensusWithKOne) {
  // End-to-end Corollary-4.4 upper side: k = 1 failure, f = k * rounds
  // with rounds = floor(f/k) + 1 = 2: flood-min simulated for 2 rounds
  // tolerates the single (simulated) crash.
  std::vector<int> inputs{8, 6, 7, 5, 9};
  for (std::uint64_t seed = 100; seed < 125; ++seed) {
    auto procs = make_floodmin(inputs, 2);
    RandomScheduler sched(seed, /*crash_prob=*/0.004, /*max_crashes=*/1);
    auto result = run_crash_from_async(procs, /*k=*/1, /*rounds=*/2, sched);
    const ProcessSet alive = result.crashed.complement();
    const ProcessSet announced = result.simulated.cumulative_union();
    // Survivors of the *simulated* system: alive executors never announced.
    ProcessSet simulated_survivors = alive;
    for (core::ProcId p : announced.members()) simulated_survivors.remove(p);
    // Flood-min over R rounds tolerates R-1 faults; the simulation may
    // announce up to k per round (2 here), so assert consensus exactly
    // when at most one fault materialized, and 2-set agreement always.
    if (announced.size() <= 1) {
      auto check = agreement::check_consensus(inputs, result.decisions,
                                              simulated_survivors);
      EXPECT_TRUE(check.ok) << "seed " << seed << ": " << check.failure
                            << "\n"
                            << result.simulated.to_string();
    }
    auto loose = agreement::check_k_set_agreement(
        inputs, result.decisions, 2, simulated_survivors);
    EXPECT_TRUE(loose.ok) << "seed " << seed << ": " << loose.failure;
  }
}

TEST(CrashFromAsync, RejectsBadParameters) {
  std::vector<FloodMin> procs = make_floodmin({1, 2, 3}, 1);
  RoundRobinScheduler sched;
  EXPECT_THROW(run_crash_from_async(procs, /*k=*/0, 1, sched),
               ContractViolation);
  EXPECT_THROW(run_crash_from_async(procs, /*k=*/3, 1, sched),
               ContractViolation);
  // Budget beyond the theorem's envelope (k * rounds >= n).
  EXPECT_THROW(run_crash_from_async(procs, /*k=*/2, 2, sched),
               ContractViolation);
}

}  // namespace
}  // namespace rrfd::xform
