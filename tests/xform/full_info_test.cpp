// Item 3 reverse direction: full information lets a process recreate
// every message it missed from a peer once it hears from it again.
#include "xform/full_info.h"

#include <gtest/gtest.h>

#include "core/adversaries.h"
#include "core/engine.h"

namespace rrfd::xform {
namespace {

using core::FaultPattern;
using core::ProcessSet;
using core::run_rounds;

std::vector<FullInfoProcess> make_processes(int n) {
  std::vector<FullInfoProcess> ps;
  for (core::ProcId i = 0; i < n; ++i) ps.emplace_back(i, 100 + i);
  return ps;
}

TEST(History, TruncationReconstructsEarlierEmissions) {
  const int n = 3;
  auto ps = make_processes(n);
  core::BenignAdversary adv(n);
  core::EngineOptions opts;
  opts.max_rounds = 4;
  opts.stop_when_all_decided = false;
  run_rounds(ps, adv, opts);

  // p0's round-4 emission, truncated to round 2, equals p0's actual
  // round-2 emission.
  const auto& emissions = ps[0].emissions();
  ASSERT_EQ(emissions.size(), 4u);
  for (core::Round r = 1; r <= 4; ++r) {
    EXPECT_TRUE(history_equal(recover_emission(emissions[3], r),
                              emissions[static_cast<std::size_t>(r - 1)]))
        << "round " << r;
  }
}

TEST(History, EqualityIsStructuralNotPointer) {
  auto a = std::make_shared<History>();
  a->proc = 1;
  a->input = 5;
  auto b = std::make_shared<History>(*a);
  EXPECT_TRUE(history_equal(a, b));
  b->input = 6;
  EXPECT_FALSE(history_equal(a, b));
}

TEST(History, EqualityComparesChildren) {
  auto leaf1 = std::make_shared<History>();
  leaf1->proc = 0;
  leaf1->input = 1;
  auto leaf2 = std::make_shared<History>(*leaf1);
  leaf2->input = 2;

  auto a = std::make_shared<History>();
  a->proc = 1;
  a->rounds.push_back({{0, leaf1}});
  auto b = std::make_shared<History>();
  b->proc = 1;
  b->rounds.push_back({{0, leaf2}});
  EXPECT_FALSE(history_equal(a, b));
  b->rounds[0][0] = leaf1;
  EXPECT_TRUE(history_equal(a, b));
}

TEST(FullInfoRecovery, MissedMessagesAreRecreatedExactly) {
  // The paper's simulation: when p_i receives p_j's round-r message after
  // a gap, it recreates all of p_j's emissions in the gap. We run under an
  // async adversary, find gaps in the pattern, and check the truncated
  // history matches the ground-truth emission for every missed round.
  const int n = 5;
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    auto ps = make_processes(n);
    core::AsyncAdversary adv(n, /*f=*/2, seed);
    core::EngineOptions opts;
    opts.max_rounds = 6;
    opts.stop_when_all_decided = false;
    auto result = run_rounds(ps, adv, opts);
    const FaultPattern& pattern = result.pattern;

    for (core::ProcId i = 0; i < n; ++i) {
      for (core::ProcId j = 0; j < n; ++j) {
        // Find a round where i hears j after missing it in earlier rounds.
        for (core::Round r = 2; r <= pattern.rounds(); ++r) {
          if (pattern.d(i, r).contains(j)) continue;  // still missed
          // i received j's round-r emission: recreate every emission of j
          // for rounds q < r that i missed.
          const HistoryPtr received =
              ps[static_cast<std::size_t>(j)]
                  .emissions()[static_cast<std::size_t>(r - 1)];
          for (core::Round q = 1; q < r; ++q) {
            if (!pattern.d(i, q).contains(j)) continue;  // wasn't missed
            const HistoryPtr recreated = recover_emission(received, q);
            const HistoryPtr actual =
                ps[static_cast<std::size_t>(j)]
                    .emissions()[static_cast<std::size_t>(q - 1)];
            EXPECT_TRUE(history_equal(recreated, actual))
                << "i=" << i << " j=" << j << " q=" << q << " r=" << r;
          }
        }
      }
    }
  }
}

TEST(FullInfoProcess, HistoriesGrowByOneRoundPerAbsorb) {
  auto ps = make_processes(2);
  core::BenignAdversary adv(2);
  core::EngineOptions opts;
  opts.max_rounds = 3;
  opts.stop_when_all_decided = false;
  run_rounds(ps, adv, opts);
  EXPECT_EQ(ps[0].history()->rounds.size(), 3u);
  EXPECT_EQ(ps[0].emissions()[0]->rounds.size(), 0u);
  EXPECT_EQ(ps[0].emissions()[2]->rounds.size(), 2u);
}

TEST(FullInfoProcess, ReceivedChildrenMatchTheFaultPattern) {
  const int n = 4;
  auto ps = make_processes(n);
  core::AsyncAdversary adv(n, 1, /*seed=*/77);
  core::EngineOptions opts;
  opts.max_rounds = 3;
  opts.stop_when_all_decided = false;
  auto result = run_rounds(ps, adv, opts);
  for (core::ProcId i = 0; i < n; ++i) {
    const HistoryPtr h = ps[static_cast<std::size_t>(i)].history();
    for (core::Round r = 1; r <= 3; ++r) {
      const auto& received = h->rounds[static_cast<std::size_t>(r - 1)];
      for (core::ProcId j = 0; j < n; ++j) {
        EXPECT_EQ(received.count(j) > 0, !result.pattern.d(i, r).contains(j))
            << "i=" << i << " j=" << j << " r=" << r;
      }
    }
  }
}

TEST(History, RecoverEmissionBoundsChecked) {
  auto h = std::make_shared<History>();
  h->proc = 0;
  EXPECT_THROW(recover_emission(h, 2), ContractViolation);
  EXPECT_THROW(recover_emission(nullptr, 1), ContractViolation);
}

}  // namespace
}  // namespace rrfd::xform
