// Theorem 3.3: k-set object + SWMR memory => k-uncertainty detector.
#include "xform/detector_from_kset.h"

#include <gtest/gtest.h>

#include "core/predicates.h"
#include "runtime/schedulers.h"
#include "xform/pattern_checks.h"
#include "util/str.h"

namespace rrfd::xform {
namespace {

using runtime::RandomScheduler;
using runtime::RoundRobinScheduler;

TEST(DetectorFromKSet, SequentialRunAnnouncesNobody) {
  // Round-robin, no crashes: everyone sees everyone's output, and with
  // k-set validity at least the winners' identifiers propagate; under
  // round-robin all outputs are written before any collect completes...
  RoundRobinScheduler sched;
  auto result = run_detector_from_kset(4, 2, /*rounds=*/2, sched, /*seed=*/1);
  EXPECT_TRUE(result.crashed.empty());
  EXPECT_TRUE(k_uncertainty_holds_among(result.pattern,
                                        core::ProcessSet::all(4), 2));
}

class DetectorSweep
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(DetectorSweep, PatternSatisfiesKUncertainty) {
  auto [n, k, seed] = GetParam();
  for (int trial = 0; trial < 15; ++trial) {
    RandomScheduler sched(seed + static_cast<std::uint64_t>(trial) * 13);
    auto result =
        run_detector_from_kset(n, k, /*rounds=*/3, sched,
                               seed * 7 + static_cast<std::uint64_t>(trial));
    ASSERT_TRUE(result.crashed.empty());
    EXPECT_TRUE(k_uncertainty_holds_among(result.pattern,
                                          core::ProcessSet::all(n), k))
        << result.pattern.to_string();
  }
}

TEST_P(DetectorSweep, PatternSatisfiesKUncertaintyWithCrashes) {
  auto [n, k, seed] = GetParam();
  if (k >= n) GTEST_SKIP();
  for (int trial = 0; trial < 15; ++trial) {
    RandomScheduler sched(seed + static_cast<std::uint64_t>(trial) * 17,
                          /*crash_prob=*/0.01, /*max_crashes=*/k - 1 > 0 ? k - 1 : 0);
    auto result =
        run_detector_from_kset(n, k, /*rounds=*/2, sched,
                               seed + static_cast<std::uint64_t>(trial));
    const core::ProcessSet alive = result.crashed.complement();
    EXPECT_TRUE(k_uncertainty_holds_among(result.pattern, alive, k))
        << result.pattern.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DetectorSweep,
    ::testing::Combine(::testing::Values(3, 5, 8),
                       ::testing::Values(1, 2, 3),
                       ::testing::Values(1u, 31u)),
    [](const ::testing::TestParamInfo<std::tuple<int, int, std::uint64_t>>& pinfo) {
      return cat("n", std::get<0>(pinfo.param), "_k", std::get<1>(pinfo.param),
                 "_s", std::get<2>(pinfo.param));
    });

TEST(DetectorFromKSet, EmissionsOfQAreAlwaysVisible) {
  // The theorem's delivery claim: every identifier in Q has already
  // emitted its round value when D(i,r) is computed.
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    RandomScheduler sched(seed);
    auto result = run_detector_from_kset(6, 2, /*rounds=*/3, sched, seed);
    for (const auto& round : result.emission_visible) {
      for (bool visible : round) EXPECT_TRUE(visible);
    }
  }
}

TEST(DetectorFromKSet, KEqualsOneGivesEqualAnnouncements) {
  // With a consensus object (k = 1) all Q's agree up to the committed
  // winner: uncertainty 0 -- equal announcements among alive processes.
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    RandomScheduler sched(seed);
    auto result = run_detector_from_kset(5, 1, /*rounds=*/2, sched, seed);
    EXPECT_TRUE(k_uncertainty_holds_among(result.pattern,
                                          core::ProcessSet::all(5), 1))
        << result.pattern.to_string();
  }
}

TEST(DetectorFromKSet, UncertaintyActuallyOccursForLargeK) {
  // Non-degeneracy: with k = 3 and adversarial schedules, some round
  // should show nonzero disagreement (otherwise the construction is
  // trivially strong and the test proves nothing).
  bool disagreement = false;
  for (std::uint64_t seed = 0; seed < 60 && !disagreement; ++seed) {
    RandomScheduler sched(seed);
    auto result = run_detector_from_kset(6, 3, /*rounds=*/3, sched, seed);
    for (core::Round r = 1; r <= result.pattern.rounds(); ++r) {
      disagreement =
          disagreement || !(result.pattern.round_union(r) -
                            result.pattern.round_intersection(r))
                               .empty();
    }
  }
  EXPECT_TRUE(disagreement);
}

}  // namespace
}  // namespace rrfd::xform
