#include "xform/pattern_checks.h"

#include <gtest/gtest.h>

#include "core/adversaries.h"
#include "core/predicates.h"

namespace rrfd::xform {
namespace {

using core::FaultPattern;
using core::ProcessSet;

TEST(CrashPatternAmong, AgreesWithFullPredicateWhenAllAlive) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    core::CrashAdversary adv(6, 2, seed);
    FaultPattern p = core::record_pattern(adv, 4);
    EXPECT_EQ(crash_pattern_holds_among(p, ProcessSet::all(6), 2),
              core::sync_crash(2)->holds(p))
        << p.to_string();
  }
}

TEST(CrashPatternAmong, IgnoresDeadRows) {
  // Build a pattern where a "dead" row forgets an announcement -- invalid
  // over all rows, valid when row 2 is excluded.
  const int n = 3;
  FaultPattern p(n);
  p.append({ProcessSet(n, {1}), ProcessSet(n), ProcessSet(n)});
  p.append({ProcessSet(n, {1}), ProcessSet(n, {1}), ProcessSet(n)});
  EXPECT_FALSE(crash_pattern_holds_among(p, ProcessSet::all(n), 1));
  EXPECT_TRUE(crash_pattern_holds_among(p, ProcessSet(n, {0, 1}), 1));
}

TEST(CrashPatternAmong, BudgetEnforced) {
  const int n = 4;
  FaultPattern p(n);
  p.append({ProcessSet(n, {1, 2}), ProcessSet(n, {1, 2}),
            ProcessSet(n, {1, 2}), ProcessSet(n, {1, 2})});
  EXPECT_TRUE(crash_pattern_holds_among(p, ProcessSet::all(n), 2));
  EXPECT_FALSE(crash_pattern_holds_among(p, ProcessSet::all(n), 1));
}

TEST(CrashPatternAmong, SelfSuspicionOnlyAfterAnnouncement) {
  const int n = 3;
  FaultPattern bad(n);
  bad.append({ProcessSet(n, {0}), ProcessSet(n), ProcessSet(n)});
  EXPECT_FALSE(crash_pattern_holds_among(bad, ProcessSet::all(n), 1));

  FaultPattern good(n);
  good.append({ProcessSet(n), ProcessSet(n, {0}), ProcessSet(n)});
  good.append({ProcessSet(n, {0}), ProcessSet(n, {0}), ProcessSet(n, {0})});
  EXPECT_TRUE(crash_pattern_holds_among(good, ProcessSet::all(n), 1));
}

TEST(KUncertaintyAmong, AgreesWithFullPredicateWhenAllAlive) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    core::KUncertaintyAdversary adv(6, 2, seed);
    FaultPattern p = core::record_pattern(adv, 4);
    EXPECT_EQ(k_uncertainty_holds_among(p, ProcessSet::all(6), 2),
              core::k_uncertainty(2)->holds(p));
  }
}

TEST(KUncertaintyAmong, ExcludedRowCannotBreakIt) {
  const int n = 3;
  FaultPattern p(n);
  // Rows 0 and 1 agree; row 2 wildly disagrees.
  p.append({ProcessSet(n, {1}), ProcessSet(n, {1}), ProcessSet(n, {0, 1})});
  EXPECT_FALSE(k_uncertainty_holds_among(p, ProcessSet::all(n), 1));
  EXPECT_TRUE(k_uncertainty_holds_among(p, ProcessSet(n, {0, 1}), 1));
}

TEST(PatternChecks, EmptyAliveSetRejected) {
  FaultPattern p(3);
  EXPECT_THROW(crash_pattern_holds_among(p, ProcessSet(3), 1),
               ContractViolation);
  EXPECT_THROW(k_uncertainty_holds_among(p, ProcessSet(3), 1),
               ContractViolation);
}

}  // namespace
}  // namespace rrfd::xform
