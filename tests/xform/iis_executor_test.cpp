// The iterated-snapshot executors: real shared-memory rounds feeding the
// RRFD algorithms (item 5 / reference [4], end to end).
#include "xform/iis_executor.h"

#include <gtest/gtest.h>

#include "agreement/one_round_kset.h"
#include "agreement/tasks.h"
#include "core/predicates.h"
#include "runtime/schedulers.h"
#include "xform/pattern_checks.h"

namespace rrfd::xform {
namespace {

using agreement::OneRoundKSet;
using runtime::RandomScheduler;
using runtime::RoundRobinScheduler;

std::vector<OneRoundKSet> make_kset(const std::vector<int>& inputs) {
  std::vector<OneRoundKSet> ps;
  for (int v : inputs) ps.emplace_back(v);
  return ps;
}

TEST(IisExecutor, WaitFreePatternSatisfiesItem5) {
  const int n = 5;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    std::vector<int> inputs{1, 2, 3, 4, 5};
    auto procs = make_kset(inputs);
    RandomScheduler sched(seed);
    auto result = run_over_iis(procs, /*rounds=*/3, sched);
    ASSERT_TRUE(result.crashed.empty());
    EXPECT_TRUE(core::atomic_snapshot(n - 1)->holds(result.pattern))
        << result.pattern.to_string();
  }
}

TEST(IisExecutor, ResilientPatternSatisfiesItem5WithBoundF) {
  const int f = 2;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    std::vector<int> inputs{1, 2, 3, 4, 5};
    auto procs = make_kset(inputs);
    RandomScheduler sched(seed);
    auto result = run_over_iis(procs, /*rounds=*/3, sched, f);
    ASSERT_TRUE(result.crashed.empty());
    EXPECT_TRUE(core::atomic_snapshot(f)->holds(result.pattern))
        << result.pattern.to_string();
  }
}

TEST(IisExecutor, Corollary32EndToEnd) {
  // One-round k-set agreement over a LIVE snapshot memory with k-1 crash
  // failures -- Corollary 3.2 running on the real substrate.
  for (int k = 1; k <= 3; ++k) {
    std::vector<int> inputs{10, 11, 12, 13, 14, 15};
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
      auto procs = make_kset(inputs);
      RandomScheduler sched(seed, /*crash_prob=*/0.01,
                            /*max_crashes=*/k - 1);
      auto result = run_over_iis(procs, /*rounds=*/1, sched, /*f=*/k - 1);
      const core::ProcessSet alive = result.crashed.complement();
      auto check = agreement::check_k_set_agreement(inputs, result.decisions,
                                                    k, alive);
      EXPECT_TRUE(check.ok) << "k=" << k << " seed=" << seed << ": "
                            << check.failure << "\n"
                            << result.pattern.to_string();
    }
  }
}

TEST(IisExecutor, WaitFreeViewsCanBeTiny) {
  // The wait-free regime really is wait-free: a process that runs solo
  // (scheduler prioritizes it to completion) sees only itself, i.e.
  // |D| = n-1 -- this is what separates the IIS model from the
  // f-resilient one, where such a view is impossible.
  const int n = 4;
  std::vector<int> inputs{1, 2, 3, 4};
  auto procs = make_kset(inputs);
  // Empty script: the fallback always picks the lowest runnable process,
  // so p0 runs start to finish before anyone else moves.
  runtime::ScriptedScheduler sched({});
  auto result = run_over_iis(procs, /*rounds=*/1, sched);
  EXPECT_EQ(result.pattern.d(0, 1), core::ProcessSet(n, {1, 2, 3}));
  EXPECT_EQ(*result.decisions[0], 1);  // decided its own value
}

TEST(IisExecutor, ResilientViewsAreNeverSmallerThanNMinusF) {
  const int n = 6, f = 2;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    std::vector<int> inputs{1, 2, 3, 4, 5, 6};
    auto procs = make_kset(inputs);
    RandomScheduler sched(seed);
    auto result = run_over_iis(procs, /*rounds=*/2, sched, f);
    for (core::Round r = 1; r <= 2; ++r) {
      for (core::ProcId i = 0; i < n; ++i) {
        EXPECT_LE(result.pattern.d(i, r).size(), f);
      }
    }
  }
}

TEST(IisExecutor, CrashedExecutorsSurfaceAsMisses) {
  // Crash one executor before it writes: with the wait-free regime the
  // others can finish, and the crashed process appears in D sets.
  std::vector<int> inputs{1, 2, 3, 4};
  auto procs = make_kset(inputs);
  runtime::ScriptedScheduler sched({{3, true}});  // crash p3 immediately
  auto result = run_over_iis(procs, /*rounds=*/1, sched);
  ASSERT_TRUE(result.crashed.contains(3));
  for (core::ProcId i = 0; i < 3; ++i) {
    EXPECT_TRUE(result.pattern.d(i, 1).contains(3));
    EXPECT_TRUE(result.decisions[static_cast<std::size_t>(i)].has_value());
  }
}

TEST(IisExecutor, RejectsBadResilience) {
  std::vector<int> inputs{1, 2, 3};
  auto procs = make_kset(inputs);
  RoundRobinScheduler sched;
  EXPECT_THROW(run_over_iis(procs, 1, sched, /*f=*/3), ContractViolation);
}

}  // namespace
}  // namespace rrfd::xform
