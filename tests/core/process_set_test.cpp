#include "core/process_set.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "core/words.h"
#include "util/check.h"

namespace rrfd::core {
namespace {

TEST(ProcessSet, StartsEmpty) {
  ProcessSet s(5);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0);
  EXPECT_EQ(s.n(), 5);
  for (ProcId p = 0; p < 5; ++p) EXPECT_FALSE(s.contains(p));
}

TEST(ProcessSet, InitializerListConstruction) {
  ProcessSet s(6, {0, 2, 5});
  EXPECT_EQ(s.size(), 3);
  EXPECT_TRUE(s.contains(0));
  EXPECT_FALSE(s.contains(1));
  EXPECT_TRUE(s.contains(2));
  EXPECT_TRUE(s.contains(5));
}

TEST(ProcessSet, AllAndNone) {
  EXPECT_EQ(ProcessSet::all(4).size(), 4);
  EXPECT_TRUE(ProcessSet::all(4).full());
  EXPECT_TRUE(ProcessSet::none(4).empty());
  EXPECT_EQ(ProcessSet::all(64).size(), 64);  // boundary: full 64-bit word
  EXPECT_TRUE(ProcessSet::all(64).full());
}

TEST(ProcessSet, Single) {
  ProcessSet s = ProcessSet::single(8, 3);
  EXPECT_EQ(s.size(), 1);
  EXPECT_TRUE(s.contains(3));
  EXPECT_EQ(s.min(), 3);
  EXPECT_EQ(s.max(), 3);
}

TEST(ProcessSet, AddRemove) {
  ProcessSet s(4);
  s.add(1);
  s.add(3);
  EXPECT_EQ(s.size(), 2);
  s.remove(1);
  EXPECT_FALSE(s.contains(1));
  EXPECT_TRUE(s.contains(3));
  s.remove(3);
  EXPECT_TRUE(s.empty());
}

TEST(ProcessSet, AddIsIdempotent) {
  ProcessSet s(4);
  s.add(2);
  s.add(2);
  EXPECT_EQ(s.size(), 1);
}

TEST(ProcessSet, WithWithoutAreNonMutating) {
  const ProcessSet s(4, {1});
  const ProcessSet t = s.with(2);
  const ProcessSet u = s.without(1);
  EXPECT_EQ(s, ProcessSet(4, {1}));
  EXPECT_EQ(t, ProcessSet(4, {1, 2}));
  EXPECT_TRUE(u.empty());
}

TEST(ProcessSet, SetAlgebra) {
  const ProcessSet a(6, {0, 1, 2});
  const ProcessSet b(6, {2, 3, 4});
  EXPECT_EQ(a | b, ProcessSet(6, {0, 1, 2, 3, 4}));
  EXPECT_EQ(a & b, ProcessSet(6, {2}));
  EXPECT_EQ(a - b, ProcessSet(6, {0, 1}));
  EXPECT_EQ(b - a, ProcessSet(6, {3, 4}));
}

TEST(ProcessSet, CompoundAssignment) {
  ProcessSet a(4, {0});
  a |= ProcessSet(4, {1});
  EXPECT_EQ(a, ProcessSet(4, {0, 1}));
  a &= ProcessSet(4, {1, 2});
  EXPECT_EQ(a, ProcessSet(4, {1}));
  a -= ProcessSet(4, {1});
  EXPECT_TRUE(a.empty());
}

TEST(ProcessSet, Complement) {
  const ProcessSet a(5, {0, 3});
  EXPECT_EQ(a.complement(), ProcessSet(5, {1, 2, 4}));
  EXPECT_EQ(a.complement().complement(), a);
  EXPECT_TRUE(ProcessSet::all(5).complement().empty());
}

TEST(ProcessSet, SubsetAndIntersects) {
  const ProcessSet a(6, {1, 2});
  const ProcessSet b(6, {1, 2, 4});
  EXPECT_TRUE(a.subset_of(b));
  EXPECT_FALSE(b.subset_of(a));
  EXPECT_TRUE(a.subset_of(a));
  EXPECT_TRUE(ProcessSet::none(6).subset_of(a));
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(a.intersects(ProcessSet(6, {0, 5})));
}

TEST(ProcessSet, MinMax) {
  const ProcessSet s(10, {3, 5, 9});
  EXPECT_EQ(s.min(), 3);
  EXPECT_EQ(s.max(), 9);
}

TEST(ProcessSet, MinOfEmptyThrows) {
  EXPECT_THROW(ProcessSet(4).min(), ContractViolation);
  EXPECT_THROW(ProcessSet(4).max(), ContractViolation);
}

TEST(ProcessSet, MembersAreSortedAndComplete) {
  const ProcessSet s(12, {7, 0, 11, 4});
  EXPECT_EQ(s.members(), (std::vector<ProcId>{0, 4, 7, 11}));
  EXPECT_TRUE(ProcessSet(3).members().empty());
}

TEST(ProcessSet, ToString) {
  EXPECT_EQ(ProcessSet(5, {0, 2}).to_string(), "{0,2}");
  EXPECT_EQ(ProcessSet(5).to_string(), "{}");
}

TEST(ProcessSet, FromBitsRoundTrips) {
  const ProcessSet s(7, {1, 6});
  EXPECT_EQ(ProcessSet::from_bits(7, s.bits()), s);
}

TEST(ProcessSet, FromBitsRejectsOutOfRangeBits) {
  EXPECT_THROW(ProcessSet::from_bits(3, 0b1000), ContractViolation);
}

TEST(ProcessSet, MixingSystemSizesThrows) {
  const ProcessSet a(4, {1});
  const ProcessSet b(5, {1});
  EXPECT_THROW((void)(a | b), ContractViolation);
  EXPECT_THROW((void)(a & b), ContractViolation);
  EXPECT_THROW((void)(a - b), ContractViolation);
  EXPECT_THROW((void)a.subset_of(b), ContractViolation);
}

TEST(ProcessSet, MemberRangeIsChecked) {
  ProcessSet s(4);
  EXPECT_THROW(s.add(4), ContractViolation);
  EXPECT_THROW(s.add(-1), ContractViolation);
  EXPECT_THROW((void)s.contains(4), ContractViolation);
}

TEST(ProcessSet, SystemSizeIsChecked) {
  EXPECT_THROW(ProcessSet(0), ContractViolation);
  EXPECT_THROW(ProcessSet(65), ContractViolation);
}

TEST(ProcessSet, OrderingIsUsableAsMapKey) {
  std::map<ProcessSet, int> m;
  m[ProcessSet(4, {0})] = 1;
  m[ProcessSet(4, {1})] = 2;
  m[ProcessSet(4, {0})] = 3;
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m[ProcessSet(4, {0})], 3);
}

TEST(ProcessSet, EqualityRequiresSameSystemSize) {
  EXPECT_FALSE(ProcessSet(4, {1}) == ProcessSet(5, {1}));
  EXPECT_TRUE(ProcessSet(4, {1}) != ProcessSet(5, {1}));
}

TEST(ProcessSet, FullWidthShiftEdges) {
  // n = 64 is the shift edge of every mask expression: `1 << 64` and
  // `~0 >> 0` style formulas are UB or wrap, so all(64), complement,
  // from_bits and bit 63 must be exercised explicitly.
  const ProcessSet everyone = ProcessSet::all(64);
  EXPECT_EQ(everyone.size(), 64);
  EXPECT_EQ(everyone.bits(), ~std::uint64_t{0});
  EXPECT_TRUE(everyone.complement().empty());
  EXPECT_EQ(ProcessSet(64).complement(), everyone);

  const ProcessSet high = ProcessSet(64, {0, 63});
  EXPECT_EQ(high.bits(), (std::uint64_t{1} << 63) | 1u);
  EXPECT_EQ(high.min(), 0);
  EXPECT_EQ(high.max(), 63);
  EXPECT_EQ(ProcessSet::from_bits(64, high.bits()), high);
  EXPECT_EQ(high.complement().size(), 62);
  EXPECT_FALSE(high.complement().contains(63));

  // Iteration must reach bit 63 and stay sorted.
  std::vector<ProcId> seen;
  for (ProcId p : everyone) seen.push_back(p);
  ASSERT_EQ(seen.size(), 64u);
  EXPECT_EQ(seen.front(), 0);
  EXPECT_EQ(seen.back(), 63);
  EXPECT_EQ(everyone.members(), seen);
}

TEST(ProcessSet, WordHelperShiftEdges) {
  // The word path's helpers share the n = 64 edge: full_mask must not
  // shift by 64, and nth_set_bit must reach bit 63.
  EXPECT_EQ(full_mask(1), 1u);
  EXPECT_EQ(full_mask(63), ~std::uint64_t{0} >> 1);
  EXPECT_EQ(full_mask(64), ~std::uint64_t{0});
  EXPECT_EQ(full_mask(64), ProcessSet::all(64).bits());

  EXPECT_EQ(nth_set_bit(~std::uint64_t{0}, 0), 0);
  EXPECT_EQ(nth_set_bit(~std::uint64_t{0}, 63), 63);
  EXPECT_EQ(nth_set_bit(std::uint64_t{1} << 63, 0), 63);
  const ProcessSet sparse(64, {3, 17, 63});
  for (int k = 0; k < sparse.size(); ++k) {
    EXPECT_EQ(nth_set_bit(sparse.bits(), k),
              sparse.members()[static_cast<std::size_t>(k)]);
  }
}

TEST(ProcessSet, MixedSizeOperandsThrowAcrossTheFullApi) {
  // Every binary operation must reject operands from different system
  // sizes -- including at the n = 64 boundary, where the bit patterns of
  // a smaller set can be a valid subset of the larger universe.
  const ProcessSet small(4, {1});
  const ProcessSet wide = ProcessSet::all(64);
  for (const ProcessSet& other : {ProcessSet(5, {1}), wide}) {
    EXPECT_THROW((void)(small | other), ContractViolation);
    EXPECT_THROW((void)(small & other), ContractViolation);
    EXPECT_THROW((void)(small - other), ContractViolation);
    EXPECT_THROW((void)small.subset_of(other), ContractViolation);
    EXPECT_THROW((void)small.intersects(other), ContractViolation);
    ProcessSet mutated = small;
    EXPECT_THROW(mutated |= other, ContractViolation);
    EXPECT_THROW(mutated &= other, ContractViolation);
    EXPECT_THROW(mutated -= other, ContractViolation);
    EXPECT_EQ(mutated, small);  // failed compounds must not half-apply
  }
  EXPECT_THROW((void)ProcessSet::from_bits(63, ~std::uint64_t{0}),
               ContractViolation);
  EXPECT_THROW((void)ProcessSet(64).contains(64), ContractViolation);
  EXPECT_THROW((void)ProcessSet(64).add(64), ContractViolation);
}

}  // namespace
}  // namespace rrfd::core
