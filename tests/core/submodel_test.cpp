// The submodel lattice of Section 2, decided exactly by exhaustive
// pattern enumeration for small systems.
#include "core/submodel.h"

#include <gtest/gtest.h>

#include "core/adversaries.h"
#include "core/predicates.h"

namespace rrfd::core {
namespace {

TEST(EnumeratePatterns, CountsTheFullSpace) {
  // (2^n - 1)^(n * rounds) patterns.
  long count = enumerate_patterns(2, 1, [](const FaultPattern&) { return true; });
  EXPECT_EQ(count, 9);  // 3^2
  count = enumerate_patterns(3, 1, [](const FaultPattern&) { return true; });
  EXPECT_EQ(count, 343);  // 7^3
  count = enumerate_patterns(2, 2, [](const FaultPattern&) { return true; });
  EXPECT_EQ(count, 81);  // 3^4
}

TEST(EnumeratePatterns, StopsEarlyWhenAsked) {
  long visits = 0;
  enumerate_patterns(3, 1, [&](const FaultPattern&) {
    return ++visits < 10;
  });
  EXPECT_EQ(visits, 10);
}

TEST(EnumeratePatterns, RejectsLargeSystems) {
  EXPECT_THROW(
      enumerate_patterns(8, 1, [](const FaultPattern&) { return true; }),
      ContractViolation);
}

// ---------------------------------------------------------------------------
// Exact lattice facts (n = 3, 1-2 rounds)
// ---------------------------------------------------------------------------

TEST(Lattice, CrashImpliesOmissionBudget) {
  // "It is thus explicit in the model definition that the crash-fault
  // model is a submodel of the send-omission-fault model." In this
  // encoding the crash model relaxes no-self-suspicion for announced
  // (halted) processes, so the exact implication targets the omission
  // model's substance: the cumulative fault budget, plus no-self for
  // processes that are not announced.
  CumulativeFaultBound budget(1);
  auto r = implies_exhaustive(*sync_crash(1), budget, 3, 2);
  EXPECT_TRUE(r.holds) << r.counterexample->to_string();
  EXPECT_EQ(r.patterns_checked, 117649);  // 7^6

  NoSelfSuspicion exempt(/*exempt_announced=*/true);
  auto r2 = implies_exhaustive(*sync_crash(1), exempt, 3, 2);
  EXPECT_TRUE(r2.holds);

  // The literal strict-no-self omission predicate is NOT implied -- the
  // counterexample is exactly a halted process suspecting itself, which
  // the omission model (where processes never halt) has no reading for.
  auto strict = implies_exhaustive(*sync_crash(1), *sync_omission(1), 3, 2);
  EXPECT_FALSE(strict.holds);
  ASSERT_TRUE(strict.counterexample.has_value());
  bool self_after_announcement = false;
  const FaultPattern& cx = *strict.counterexample;
  for (Round round = 2; round <= cx.rounds(); ++round) {
    for (ProcId i = 0; i < cx.n(); ++i) {
      self_after_announcement =
          self_after_announcement ||
          (cx.d(i, round).contains(i) &&
           cx.cumulative_union(round - 1).contains(i));
    }
  }
  EXPECT_TRUE(self_after_announcement) << cx.to_string();
}

TEST(Lattice, OmissionDoesNotImplyCrash) {
  auto r = implies_exhaustive(*sync_omission(1), *sync_crash(1), 3, 2);
  EXPECT_FALSE(r.holds);
  ASSERT_TRUE(r.counterexample.has_value());
  // The counterexample is a genuine omission-not-crash pattern.
  EXPECT_TRUE(sync_omission(1)->holds(*r.counterexample));
  EXPECT_FALSE(sync_crash(1)->holds(*r.counterexample));
}

TEST(Lattice, SnapshotImpliesSwmr) {
  // Item 5 is a submodel of item 4: containment + no-self forces some
  // process (the largest view's owner) to be heard... in fact the minimal
  // D in the chain excludes its own owner, so |union D| < n.
  auto r = implies_exhaustive(*atomic_snapshot(2), *swmr_shared_memory(2), 3, 1);
  EXPECT_TRUE(r.holds) << r.counterexample->to_string();
}

TEST(Lattice, SwmrDoesNotImplySnapshot) {
  auto r = implies_exhaustive(*swmr_shared_memory(2), *atomic_snapshot(2), 3, 1);
  EXPECT_FALSE(r.holds);
}

TEST(Lattice, SnapshotWithKMinus1ImpliesKUncertainty) {
  for (int k = 1; k <= 3; ++k) {
    auto r = implies_exhaustive(*atomic_snapshot(k - 1), *k_uncertainty(k), 3, 1);
    EXPECT_TRUE(r.holds) << "k=" << k << "\n"
                         << r.counterexample->to_string();
  }
}

TEST(Lattice, EqualAnnouncementsEquivalentTo1Uncertainty) {
  auto r = equivalent_exhaustive(*equal_announcements(), *k_uncertainty(1), 3, 2);
  EXPECT_TRUE(r.equivalent());
}

TEST(Lattice, ImmortalEquivalentToCumulativeNMinus1) {
  // Item 6's predicate manipulation, exactly.
  ImmortalProcess immortal;
  CumulativeFaultBound bound(2);  // n - 1 for n = 3
  auto r = equivalent_exhaustive(immortal, bound, 3, 2);
  EXPECT_TRUE(r.equivalent());
  EXPECT_TRUE(r.forward.holds);
  EXPECT_TRUE(r.backward.holds);
}

TEST(Lattice, AsyncIsSubmodelOfQuorumSkewButNotConversely) {
  auto fwd = implies_exhaustive(*async_message_passing(1), *quorum_skew(2, 1),
                                3, 1);
  EXPECT_TRUE(fwd.holds);
  // B allows a process to miss t=2 others, violating |D| <= 1.
  auto bwd = implies_exhaustive(*quorum_skew(2, 1), *async_message_passing(1),
                                3, 1);
  EXPECT_FALSE(bwd.holds);
}

TEST(Lattice, KUncertaintyDoesNotImplySnapshot) {
  // The converse of Corollary 3.2's step fails: bounded uncertainty says
  // nothing about containment.
  auto r = implies_exhaustive(*k_uncertainty(2), *atomic_snapshot(1), 3, 1);
  EXPECT_FALSE(r.holds);
}

TEST(Lattice, NoMutualMissAndSomeoneHeardAreIncomparable) {
  NoMutualMiss nmm;
  SomeoneHeardByAll sha;
  EXPECT_FALSE(implies_exhaustive(nmm, sha, 3, 1).holds);
  EXPECT_FALSE(implies_exhaustive(sha, nmm, 3, 1).holds);
}

TEST(Lattice, UncertaintyIsMonotoneInK) {
  for (int k = 1; k <= 2; ++k) {
    auto r = implies_exhaustive(*k_uncertainty(k), *k_uncertainty(k + 1), 3, 1);
    EXPECT_TRUE(r.holds);
  }
}

// ---------------------------------------------------------------------------
// Sampled checks (larger systems)
// ---------------------------------------------------------------------------

TEST(SampledImplication, PassesForTrueImplications) {
  SnapshotAdversary adv(16, 1, /*seed=*/5);
  auto r = implies_on_samples(adv, *k_uncertainty(2), 3, 500);
  EXPECT_TRUE(r.holds);
  EXPECT_EQ(r.patterns_checked, 500);
}

TEST(SampledImplication, RefutesWithACounterexample) {
  AsyncAdversary adv(8, 3, /*seed=*/5);
  auto r = implies_on_samples(adv, *atomic_snapshot(3), 3, 500);
  EXPECT_FALSE(r.holds);
  ASSERT_TRUE(r.counterexample.has_value());
  EXPECT_FALSE(atomic_snapshot(3)->holds(*r.counterexample));
}

}  // namespace
}  // namespace rrfd::core
