// The submodel lattice of Section 2, decided exactly by exhaustive
// pattern enumeration for small systems.
#include "core/submodel.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "core/adversaries.h"
#include "core/predicates.h"
#include "core/words.h"

namespace rrfd::core {
namespace {

TEST(EnumeratePatterns, CountsTheFullSpace) {
  // (2^n - 1)^(n * rounds) patterns.
  long count = enumerate_patterns(2, 1, [](const FaultPattern&) { return true; });
  EXPECT_EQ(count, 9);  // 3^2
  count = enumerate_patterns(3, 1, [](const FaultPattern&) { return true; });
  EXPECT_EQ(count, 343);  // 7^3
  count = enumerate_patterns(2, 2, [](const FaultPattern&) { return true; });
  EXPECT_EQ(count, 81);  // 3^4
}

TEST(EnumeratePatterns, StopsEarlyWhenAsked) {
  long visits = 0;
  enumerate_patterns(3, 1, [&](const FaultPattern&) {
    return ++visits < 10;
  });
  EXPECT_EQ(visits, 10);
}

TEST(EnumeratePatterns, RejectsLargeSystems) {
  EXPECT_THROW(
      enumerate_patterns(8, 1, [](const FaultPattern&) { return true; }),
      ContractViolation);
}

// ---------------------------------------------------------------------------
// Exact lattice facts (n = 3, 1-2 rounds)
// ---------------------------------------------------------------------------

TEST(Lattice, CrashImpliesOmissionBudget) {
  // "It is thus explicit in the model definition that the crash-fault
  // model is a submodel of the send-omission-fault model." In this
  // encoding the crash model relaxes no-self-suspicion for announced
  // (halted) processes, so the exact implication targets the omission
  // model's substance: the cumulative fault budget, plus no-self for
  // processes that are not announced.
  CumulativeFaultBound budget(1);
  auto r = implies_exhaustive(*sync_crash(1), budget, 3, 2);
  EXPECT_TRUE(r.holds) << r.counterexample->to_string();
  EXPECT_EQ(r.patterns_checked, 117649);  // 7^6

  NoSelfSuspicion exempt(/*exempt_announced=*/true);
  auto r2 = implies_exhaustive(*sync_crash(1), exempt, 3, 2);
  EXPECT_TRUE(r2.holds);

  // The literal strict-no-self omission predicate is NOT implied -- the
  // counterexample is exactly a halted process suspecting itself, which
  // the omission model (where processes never halt) has no reading for.
  auto strict = implies_exhaustive(*sync_crash(1), *sync_omission(1), 3, 2);
  EXPECT_FALSE(strict.holds);
  ASSERT_TRUE(strict.counterexample.has_value());
  bool self_after_announcement = false;
  const FaultPattern& cx = *strict.counterexample;
  for (Round round = 2; round <= cx.rounds(); ++round) {
    for (ProcId i = 0; i < cx.n(); ++i) {
      self_after_announcement =
          self_after_announcement ||
          (cx.d(i, round).contains(i) &&
           cx.cumulative_union(round - 1).contains(i));
    }
  }
  EXPECT_TRUE(self_after_announcement) << cx.to_string();
}

TEST(Lattice, OmissionDoesNotImplyCrash) {
  auto r = implies_exhaustive(*sync_omission(1), *sync_crash(1), 3, 2);
  EXPECT_FALSE(r.holds);
  ASSERT_TRUE(r.counterexample.has_value());
  // The counterexample is a genuine omission-not-crash pattern.
  EXPECT_TRUE(sync_omission(1)->holds(*r.counterexample));
  EXPECT_FALSE(sync_crash(1)->holds(*r.counterexample));
}

TEST(Lattice, SnapshotImpliesSwmr) {
  // Item 5 is a submodel of item 4: containment + no-self forces some
  // process (the largest view's owner) to be heard... in fact the minimal
  // D in the chain excludes its own owner, so |union D| < n.
  auto r = implies_exhaustive(*atomic_snapshot(2), *swmr_shared_memory(2), 3, 1);
  EXPECT_TRUE(r.holds) << r.counterexample->to_string();
}

TEST(Lattice, SwmrDoesNotImplySnapshot) {
  auto r = implies_exhaustive(*swmr_shared_memory(2), *atomic_snapshot(2), 3, 1);
  EXPECT_FALSE(r.holds);
}

TEST(Lattice, SnapshotWithKMinus1ImpliesKUncertainty) {
  for (int k = 1; k <= 3; ++k) {
    auto r = implies_exhaustive(*atomic_snapshot(k - 1), *k_uncertainty(k), 3, 1);
    EXPECT_TRUE(r.holds) << "k=" << k << "\n"
                         << r.counterexample->to_string();
  }
}

TEST(Lattice, EqualAnnouncementsEquivalentTo1Uncertainty) {
  auto r = equivalent_exhaustive(*equal_announcements(), *k_uncertainty(1), 3, 2);
  EXPECT_TRUE(r.equivalent());
}

TEST(Lattice, ImmortalEquivalentToCumulativeNMinus1) {
  // Item 6's predicate manipulation, exactly.
  ImmortalProcess immortal;
  CumulativeFaultBound bound(2);  // n - 1 for n = 3
  auto r = equivalent_exhaustive(immortal, bound, 3, 2);
  EXPECT_TRUE(r.equivalent());
  EXPECT_TRUE(r.forward.holds);
  EXPECT_TRUE(r.backward.holds);
}

TEST(Lattice, AsyncIsSubmodelOfQuorumSkewButNotConversely) {
  auto fwd = implies_exhaustive(*async_message_passing(1), *quorum_skew(2, 1),
                                3, 1);
  EXPECT_TRUE(fwd.holds);
  // B allows a process to miss t=2 others, violating |D| <= 1.
  auto bwd = implies_exhaustive(*quorum_skew(2, 1), *async_message_passing(1),
                                3, 1);
  EXPECT_FALSE(bwd.holds);
}

TEST(Lattice, KUncertaintyDoesNotImplySnapshot) {
  // The converse of Corollary 3.2's step fails: bounded uncertainty says
  // nothing about containment.
  auto r = implies_exhaustive(*k_uncertainty(2), *atomic_snapshot(1), 3, 1);
  EXPECT_FALSE(r.holds);
}

TEST(Lattice, NoMutualMissAndSomeoneHeardAreIncomparable) {
  NoMutualMiss nmm;
  SomeoneHeardByAll sha;
  EXPECT_FALSE(implies_exhaustive(nmm, sha, 3, 1).holds);
  EXPECT_FALSE(implies_exhaustive(sha, nmm, 3, 1).holds);
}

TEST(Lattice, UncertaintyIsMonotoneInK) {
  for (int k = 1; k <= 2; ++k) {
    auto r = implies_exhaustive(*k_uncertainty(k), *k_uncertainty(k + 1), 3, 1);
    EXPECT_TRUE(r.holds);
  }
}

// ---------------------------------------------------------------------------
// Engine modes agree with the naive sweep
// ---------------------------------------------------------------------------

/// Every engine configuration that must return the same lattice answer.
std::vector<EnumOptions> all_modes() {
  EnumOptions defaults;
  EnumOptions no_prune;
  no_prune.prune = false;
  EnumOptions sym_off;
  sym_off.symmetry = Symmetry::kOff;
  EnumOptions sym_on;
  sym_on.symmetry = Symmetry::kOn;
  EnumOptions bare;
  bare.prune = false;
  bare.symmetry = Symmetry::kOff;
  return {defaults, no_prune, sym_off, sym_on, bare};
}

TEST(ExhaustiveModes, AgreeWithNaiveSweepOnLatticePairs) {
  struct Case {
    PredicatePtr a, b;
  };
  const std::vector<Case> cases = {
      {atomic_snapshot(1), k_uncertainty(2)},     // holds
      {k_uncertainty(2), atomic_snapshot(1)},     // refuted
      {sync_crash(1), sync_omission(1)},          // refuted (2 rounds)
      {equal_announcements(), k_uncertainty(1)},  // holds
  };
  for (const Round rounds : {1, 2}) {
    for (const auto& c : cases) {
      // Naive reference: full odometer sweep, no pruning, no symmetry.
      std::int64_t space = 0;
      bool naive_holds = true;
      enumerate_patterns(3, rounds, [&](const FaultPattern& p) {
        ++space;
        if (c.a->holds(p) && !c.b->holds(p)) naive_holds = false;
        return true;
      });
      for (const auto& opts : all_modes()) {
        auto r = implies_exhaustive(*c.a, *c.b, 3, rounds, opts);
        EXPECT_EQ(r.holds, naive_holds)
            << c.a->name() << " => " << c.b->name() << " rounds=" << rounds;
        if (naive_holds) {
          // Every configuration must decide the *entire* space: pruned
          // subtrees and symmetry orbits still count all their leaves.
          EXPECT_EQ(r.patterns_checked, space);
          EXPECT_EQ(r.stats.patterns_decided, space);
          EXPECT_FALSE(r.counterexample.has_value());
        } else {
          ASSERT_TRUE(r.counterexample.has_value());
          EXPECT_EQ(r.counterexample->rounds(), rounds);
          EXPECT_TRUE(c.a->holds(*r.counterexample));
          EXPECT_FALSE(c.b->holds(*r.counterexample));
        }
      }
    }
  }
}

TEST(ExhaustiveModes, ResultIndependentOfShardExecutionOrder) {
  // Shards may run in any order on any threads; the merge must still
  // report the counterexample of the lowest-numbered refuting shard and
  // the same work counts. Reverse execution order is the adversarial
  // schedule for that splice.
  EnumOptions reversed;
  reversed.runner = [](int n_jobs, const std::function<void(int)>& job) {
    for (int s = n_jobs - 1; s >= 0; --s) job(s);
  };
  const auto a = k_uncertainty(2);
  const auto b = atomic_snapshot(1);
  const auto serial = implies_exhaustive(*a, *b, 3, 1);
  const auto serial2 = implies_exhaustive(*a, *b, 3, 1);
  const auto rev = implies_exhaustive(*a, *b, 3, 1, reversed);
  for (const auto& r : {serial2, rev}) {
    EXPECT_EQ(r.holds, serial.holds);
    EXPECT_EQ(r.patterns_checked, serial.patterns_checked);
    ASSERT_TRUE(r.counterexample.has_value());
    EXPECT_EQ(*r.counterexample, *serial.counterexample);
    EXPECT_EQ(r.stats.nodes, serial.stats.nodes);
    EXPECT_EQ(r.stats.expanded_roots, serial.stats.expanded_roots);
  }
}

TEST(ExhaustiveCounts, FullSpaceCountExceeds32Bits) {
  // 15^8 = 2562890625 complete patterns at n = 4, 2 rounds -- more than
  // fits in 32 bits. cumulative(4) is vacuous at n = 4, so the b-side
  // evaluator promises kSatisfiedForever immediately and pruning decides
  // the whole space from a handful of nodes.
  NeverFaulty nf;
  CumulativeFaultBound vacuous(4);
  auto r = implies_exhaustive(nf, vacuous, 4, 2);
  EXPECT_TRUE(r.holds);
  EXPECT_EQ(r.patterns_checked, std::int64_t{2562890625});
  EXPECT_LT(r.stats.nodes, 10000);
  EXPECT_TRUE(r.stats.symmetry_used);
}

TEST(ExhaustiveBudget, ThrowsWhenNodeBudgetExceeded) {
  EnumOptions tiny;
  tiny.node_budget = 10;
  EXPECT_THROW(
      implies_exhaustive(*sync_crash(1), *sync_omission(1), 3, 2, tiny),
      ContractViolation);
}

// ---------------------------------------------------------------------------
// Word-width boundary (n = 63, 64)
// ---------------------------------------------------------------------------

TEST(WordBoundary, ExhaustiveSearchRejectsUnrepresentableSpacesCleanly) {
  // At n >= 63 the digit base 2^n - 1 itself overflows int64; the engine
  // must refuse with a ContractViolation before any enumeration -- on
  // both representations and through the equivalence wrapper. A missed
  // guard here would be a shift-by-63/64 on the way to a bogus space
  // count, so these throws are what UBSan holds clean.
  NeverFaulty nf;
  PerRoundFaultBound bound(1);
  for (const int n : {63, 64}) {
    for (const EnginePath path : {EnginePath::kWord, EnginePath::kSet}) {
      EnumOptions options;
      options.path = path;
      EXPECT_THROW(implies_exhaustive(nf, bound, n, 1, options),
                   ContractViolation)
          << "n=" << n;
      EXPECT_THROW(equivalent_exhaustive(nf, bound, n, 1, options),
                   ContractViolation)
          << "n=" << n;
    }
    EXPECT_THROW(
        enumerate_patterns(n, 1, [](const FaultPattern&) { return true; }),
        ContractViolation)
        << "n=" << n;
  }
  // n = kMaxProcesses itself is in-contract for non-enumerative uses;
  // only sizes beyond the word are malformed.
  EXPECT_THROW(
      enumerate_patterns(kMaxProcesses + 1, 1,
                         [](const FaultPattern&) { return true; }),
      ContractViolation);
}

TEST(WordBoundary, MaskRoundsRoundTripsFullWordPatterns) {
  // Bit 63 live everywhere: D(i,r) = S \ {i} is the largest legal mask at
  // n = 64 (full_mask - one bit). from_fault_pattern and to_fault_pattern
  // must be exact inverses on such patterns.
  const int n = 64;
  const std::uint64_t full = full_mask(n);
  EXPECT_EQ(full, ~std::uint64_t{0});
  FaultPattern p(n);
  for (Round r = 1; r <= 3; ++r) {
    RoundFaults round;
    for (int i = 0; i < n; ++i) {
      const std::uint64_t bits =
          r == 2 ? 0 : full & ~(std::uint64_t{1} << i);
      round.push_back(ProcessSet::from_bits(n, bits));
    }
    p.append(std::move(round));
  }
  MaskRounds m = MaskRounds::from_fault_pattern(p);
  EXPECT_EQ(m.n(), n);
  EXPECT_EQ(m.rounds(), 3);
  EXPECT_EQ(m.round(1)[63], full & ~(std::uint64_t{1} << 63));
  EXPECT_EQ(m.round_or(1), full);   // everyone suspected by someone
  EXPECT_EQ(m.round_and(1), 0u);    // nobody suspected by all
  EXPECT_EQ(m.round_or(2), 0u);
  EXPECT_EQ(m.to_fault_pattern(), p);

  // Push/pop keeps the word layout consistent at full width.
  std::uint64_t* d = m.push_round();
  for (int i = 0; i < n; ++i) d[i] = std::uint64_t{1} << 63;
  EXPECT_EQ(m.rounds(), 4);
  EXPECT_EQ(m.round_or(4), std::uint64_t{1} << 63);
  m.pop_round();
  EXPECT_EQ(m.to_fault_pattern(), p);
}

TEST(WordBoundary, ZooEvaluatorsHandleFullWordRounds) {
  // Zoo word cores at n = 64 (and 63, the last guarded size): suspect
  // everyone-but-self, which trips per-round bounds but not self-
  // suspicion, with bit 63 set in most words.
  for (const int n : {63, 64}) {
    std::vector<std::uint64_t> words(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      words[static_cast<std::size_t>(i)] =
          full_mask(n) & ~(std::uint64_t{1} << i);
    }
    NoSelfSuspicion no_self;
    auto self_eval = no_self.evaluator();
    self_eval->begin(n, 2);
    EXPECT_EQ(self_eval->push_round_words(words.data(), n),
              StepVerdict::kSatisfiedSoFar)
        << "n=" << n;
    PerRoundFaultBound bound(1);
    auto bound_eval = bound.evaluator();
    bound_eval->begin(n, 2);
    EXPECT_EQ(bound_eval->push_round_words(words.data(), n),
              StepVerdict::kViolatedForever)
        << "n=" << n;
    SomeoneHeardByAll heard;
    auto heard_eval = heard.evaluator();
    heard_eval->begin(n, 2);
    EXPECT_EQ(heard_eval->push_round_words(words.data(), n),
              StepVerdict::kViolatedForever)  // union is all of S
        << "n=" << n;
  }
}

// ---------------------------------------------------------------------------
// Non-prefix-closed custom predicates
// ---------------------------------------------------------------------------

/// Holds only for complete 2-round patterns: every proper prefix violates
/// it, so any engine that pruned on its violations would decide the whole
/// space vacuously. prunable() stays default-false.
class ExactlyTwoRounds final : public Predicate {
 public:
  std::string name() const override { return "exactly-two-rounds"; }
  std::string description() const override { return "rounds() == 2"; }
  bool holds(const FaultPattern& p) const override { return p.rounds() == 2; }
};

TEST(ExhaustiveCustom, NonPrefixClosedPredicateIsNotPrunedUnsoundly) {
  ExactlyTwoRounds only_two;
  NeverFaulty nf;
  // Every 1-round prefix violates A, yet genuine 2-round counterexamples
  // (patterns where each process is announced somewhere) exist below
  // them. The engine must keep descending through A's violations.
  auto r = implies_exhaustive(only_two, nf, 2, 2);
  EXPECT_FALSE(r.holds);
  ASSERT_TRUE(r.counterexample.has_value());
  EXPECT_EQ(r.counterexample->rounds(), 2);
  EXPECT_TRUE(only_two.holds(*r.counterexample));
  EXPECT_FALSE(nf.holds(*r.counterexample));
  // kAuto must not symmetry-reduce a predicate that never declared
  // symmetric(); kOn insists and therefore throws.
  EXPECT_FALSE(r.stats.symmetry_used);
  EnumOptions force;
  force.symmetry = Symmetry::kOn;
  EXPECT_THROW(implies_exhaustive(only_two, nf, 2, 2, force),
               ContractViolation);
}

// ---------------------------------------------------------------------------
// Sampled checks (larger systems)
// ---------------------------------------------------------------------------

TEST(SampledImplication, PassesForTrueImplications) {
  SnapshotAdversary adv(16, 1, /*seed=*/5);
  auto r = implies_on_samples(adv, *k_uncertainty(2), 3, 500);
  EXPECT_TRUE(r.holds);
  EXPECT_EQ(r.patterns_checked, 500);
}

TEST(SampledImplication, RefutesWithACounterexample) {
  AsyncAdversary adv(8, 3, /*seed=*/5);
  auto r = implies_on_samples(adv, *atomic_snapshot(3), 3, 500);
  EXPECT_FALSE(r.holds);
  ASSERT_TRUE(r.counterexample.has_value());
  EXPECT_FALSE(atomic_snapshot(3)->holds(*r.counterexample));
}

}  // namespace
}  // namespace rrfd::core
