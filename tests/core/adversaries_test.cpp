// Every adversary must stay inside its model's predicate, for every seed.
// These are the property sweeps that license using adversaries as stand-ins
// for "forall D(i,r) families satisfying P" in the experiments.
#include "core/adversaries.h"

#include <gtest/gtest.h>

#include <tuple>

#include "core/predicates.h"
#include "util/str.h"

namespace rrfd::core {
namespace {

constexpr Round kRounds = 6;

// ---------------------------------------------------------------------------
// Parameterized soundness sweep: (n, f, seed)
// ---------------------------------------------------------------------------

using Params = std::tuple<int, int, std::uint64_t>;

class AdversarySoundness : public ::testing::TestWithParam<Params> {
 protected:
  int n() const { return std::get<0>(GetParam()); }
  int f() const { return std::get<1>(GetParam()); }
  std::uint64_t seed() const { return std::get<2>(GetParam()); }
};

TEST_P(AdversarySoundness, OmissionSatisfiesSyncOmission) {
  OmissionAdversary adv(n(), f(), seed());
  FaultPattern p = record_pattern(adv, kRounds);
  EXPECT_TRUE(sync_omission(f())->holds(p)) << p.to_string();
}

TEST_P(AdversarySoundness, CrashSatisfiesSyncCrash) {
  CrashAdversary adv(n(), f(), seed());
  FaultPattern p = record_pattern(adv, kRounds);
  EXPECT_TRUE(sync_crash(f())->holds(p)) << p.to_string();
}

TEST_P(AdversarySoundness, AsyncSatisfiesPerRoundBound) {
  AsyncAdversary adv(n(), f(), seed());
  FaultPattern p = record_pattern(adv, kRounds);
  EXPECT_TRUE(async_message_passing(f())->holds(p)) << p.to_string();
}

TEST_P(AdversarySoundness, SwmrSatisfiesSwmrModel) {
  SwmrAdversary adv(n(), f(), seed());
  FaultPattern p = record_pattern(adv, kRounds);
  EXPECT_TRUE(swmr_shared_memory(f())->holds(p)) << p.to_string();
}

TEST_P(AdversarySoundness, SnapshotSatisfiesAtomicSnapshotModel) {
  SnapshotAdversary adv(n(), f(), seed());
  FaultPattern p = record_pattern(adv, kRounds);
  EXPECT_TRUE(atomic_snapshot(f())->holds(p)) << p.to_string();
}

TEST_P(AdversarySoundness, ResetReplaysIdenticalPattern) {
  SnapshotAdversary adv(n(), f(), seed());
  FaultPattern a = record_pattern(adv, kRounds);
  adv.reset();
  FaultPattern b = record_pattern(adv, kRounds);
  for (Round r = 1; r <= kRounds; ++r) {
    for (ProcId i = 0; i < n(); ++i) EXPECT_EQ(a.d(i, r), b.d(i, r));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AdversarySoundness,
    ::testing::Combine(::testing::Values(3, 5, 8, 16, 32, 64),
                       ::testing::Values(0, 1, 2),
                       ::testing::Values(1u, 42u, 20260706u)),
    [](const ::testing::TestParamInfo<Params>& pinfo) {
      return cat("n", std::get<0>(pinfo.param), "_f", std::get<1>(pinfo.param),
                 "_s", std::get<2>(pinfo.param));
    });

// ---------------------------------------------------------------------------
// k-uncertainty sweep: (n, k, seed)
// ---------------------------------------------------------------------------

class KUncertaintySoundness : public ::testing::TestWithParam<Params> {};

TEST_P(KUncertaintySoundness, SatisfiesKUncertainty) {
  auto [n, k, seed] = GetParam();
  KUncertaintyAdversary adv(n, k, seed);
  FaultPattern p = record_pattern(adv, kRounds);
  EXPECT_TRUE(k_uncertainty(k)->holds(p)) << p.to_string();
}

TEST_P(KUncertaintySoundness, UsuallyExercisesTheFullEnvelope) {
  // The adversary should not be degenerate: across enough rounds it should
  // produce at least one round with nonzero disagreement when k > 1.
  auto [n, k, seed] = GetParam();
  if (k == 1) GTEST_SKIP() << "k=1 forbids any disagreement";
  KUncertaintyAdversary adv(n, k, seed);
  FaultPattern p = record_pattern(adv, 50);
  bool disagreed = false;
  for (Round r = 1; r <= p.rounds(); ++r) {
    disagreed = disagreed ||
                !(p.round_union(r) - p.round_intersection(r)).empty();
  }
  EXPECT_TRUE(disagreed);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KUncertaintySoundness,
    ::testing::Combine(::testing::Values(4, 8, 24, 64),
                       ::testing::Values(1, 2, 3),
                       ::testing::Values(7u, 1234u)),
    [](const ::testing::TestParamInfo<Params>& pinfo) {
      return cat("n", std::get<0>(pinfo.param), "_k", std::get<1>(pinfo.param),
                 "_s", std::get<2>(pinfo.param));
    });

// ---------------------------------------------------------------------------
// Remaining adversaries
// ---------------------------------------------------------------------------

TEST(ScriptedAdversary, ReplaysThenGoesBenign) {
  FaultPattern p(3);
  p.append({ProcessSet(3, {1}), ProcessSet(3), ProcessSet(3)});
  ScriptedAdversary adv(p);
  RoundFaults r1 = adv.next_round();
  EXPECT_EQ(r1[0], ProcessSet(3, {1}));
  RoundFaults r2 = adv.next_round();
  EXPECT_TRUE(union_over(r2).empty());
  adv.reset();
  EXPECT_EQ(adv.next_round()[0], ProcessSet(3, {1}));
}

TEST(BenignAdversary, NeverAnnounces) {
  BenignAdversary adv(5);
  FaultPattern p = record_pattern(adv, 10);
  EXPECT_TRUE(NeverFaulty().holds(p));
}

TEST(ImmortalAdversary, ChosenProcessIsNeverAnnounced) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    ImmortalAdversary adv(6, seed, /*immortal=*/2);
    FaultPattern p = record_pattern(adv, 8);
    EXPECT_TRUE(detector_s()->holds(p));
    EXPECT_FALSE(p.cumulative_union().contains(2));
  }
}

TEST(ImmortalAdversary, PicksARandomImmortalWhenUnspecified) {
  ImmortalAdversary adv(6, /*seed=*/3);
  EXPECT_GE(adv.immortal(), 0);
  EXPECT_LT(adv.immortal(), 6);
  FaultPattern p = record_pattern(adv, 8);
  EXPECT_FALSE(p.cumulative_union().contains(adv.immortal()));
}

TEST(EqualAdversary, AllProcessesSeeTheSameSet) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    EqualAdversary adv(7, seed, /*miss_prob=*/0.8);
    FaultPattern p = record_pattern(adv, 6);
    EXPECT_TRUE(equal_announcements()->holds(p)) << p.to_string();
  }
}

TEST(OmissionAdversary, FaultyPoolHasExactlyF) {
  OmissionAdversary adv(8, 3, /*seed=*/11);
  EXPECT_EQ(adv.faulty_pool().size(), 3);
}

TEST(CrashAdversary, AnnouncementsAreMonotone) {
  CrashAdversary adv(8, 4, /*seed=*/21, /*crash_prob=*/0.5);
  ProcessSet prev(8);
  for (Round r = 1; r <= 10; ++r) {
    adv.next_round();
    EXPECT_TRUE(prev.subset_of(adv.announced()));
    prev = adv.announced();
  }
  EXPECT_LE(adv.announced().size(), 4);
}

// ---------------------------------------------------------------------------
// ChainAdversary: structure of the lower-bound execution
// ---------------------------------------------------------------------------

TEST(ChainAdversary, IsAValidSyncCrashPattern) {
  for (int k = 1; k <= 3; ++k) {
    for (int f = k; f <= 3 * k; f += k) {
      const int rounds = f / k;
      const int n = k * rounds + k + 2;
      ChainAdversary adv(n, f, k);
      FaultPattern p = record_pattern(adv, rounds + 2);
      EXPECT_TRUE(sync_crash(f)->holds(p))
          << "k=" << k << " f=" << f << "\n"
          << p.to_string();
    }
  }
}

TEST(ChainAdversary, OnlySuccessorHearsTheCrasher) {
  ChainAdversary adv(8, 4, 2);  // R = 2 rounds, chains {0,2},{1,3}
  ASSERT_EQ(adv.rounds(), 2);
  RoundFaults r1 = adv.next_round();
  // Round 1 crashers are 0 and 1; successors are 2 and 3.
  for (ProcId i = 0; i < 8; ++i) {
    EXPECT_EQ(!r1[static_cast<std::size_t>(i)].contains(0), i == 2 || i == 0);
    EXPECT_EQ(!r1[static_cast<std::size_t>(i)].contains(1), i == 3 || i == 1);
  }
  RoundFaults r2 = adv.next_round();
  // Round 2: 0 and 1 announced everywhere; crashers 2,3 heard only by the
  // terminals 4 and 5.
  for (ProcId i = 0; i < 8; ++i) {
    EXPECT_TRUE(r2[static_cast<std::size_t>(i)].contains(0));
    EXPECT_TRUE(r2[static_cast<std::size_t>(i)].contains(1));
    EXPECT_EQ(!r2[static_cast<std::size_t>(i)].contains(2), i == 4 || i == 2);
    EXPECT_EQ(!r2[static_cast<std::size_t>(i)].contains(3), i == 5 || i == 3);
  }
}

TEST(ChainAdversary, ViolatingInputsLayout) {
  ChainAdversary adv(8, 4, 2);
  const std::vector<int> inputs = adv.violating_inputs();
  EXPECT_EQ(inputs[0], 0);
  EXPECT_EQ(inputs[1], 1);
  for (std::size_t i = 2; i < inputs.size(); ++i) EXPECT_EQ(inputs[i], 2);
}

TEST(ChainAdversary, RejectsTooSmallSystems) {
  EXPECT_THROW(ChainAdversary(4, 4, 2), ContractViolation);  // needs n >= 7
  EXPECT_THROW(ChainAdversary(8, 1, 2), ContractViolation);  // k > f
}

TEST(ChainAdversary, CrasherAndTerminalIndexing) {
  ChainAdversary adv(12, 6, 2);  // R = 3
  EXPECT_EQ(adv.crasher(0, 1), 0);
  EXPECT_EQ(adv.crasher(1, 1), 1);
  EXPECT_EQ(adv.crasher(0, 2), 2);
  EXPECT_EQ(adv.crasher(1, 3), 5);
  EXPECT_EQ(adv.terminal(0), 6);
  EXPECT_EQ(adv.terminal(1), 7);
}

}  // namespace
}  // namespace rrfd::core
