#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <tuple>
#include <vector>

namespace rrfd {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, ReseedRestartsTheStream) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a());
  a.reseed(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a(), first[static_cast<std::size_t>(i)]);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.below(7), 7u);
    EXPECT_EQ(r.below(1), 0u);
  }
}

TEST(Rng, BelowZeroThrows) {
  Rng r(1);
  EXPECT_THROW(r.below(0), ContractViolation);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng r(9);
  std::vector<int> counts(10, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[r.below(10)];
  for (int c : counts) {
    EXPECT_GT(c, kDraws / 10 - kDraws / 50);
    EXPECT_LT(c, kDraws / 10 + kDraws / 50);
  }
}

TEST(Rng, RangeIsInclusive) {
  Rng r(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.range(-2, 2));
  EXPECT_EQ(seen, (std::set<std::int64_t>{-2, -1, 0, 1, 2}));
  EXPECT_EQ(r.range(3, 3), 3);
}

TEST(Rng, ChanceExtremes) {
  Rng r(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
    EXPECT_FALSE(r.chance(-0.5));
    EXPECT_TRUE(r.chance(1.5));
  }
}

TEST(Rng, Uniform01Bounds) {
  Rng r(13);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, PermutationIsAPermutation) {
  Rng r(17);
  for (int n : {0, 1, 5, 32}) {
    std::vector<int> p = r.permutation(n);
    std::sort(p.begin(), p.end());
    for (int i = 0; i < n; ++i) EXPECT_EQ(p[static_cast<std::size_t>(i)], i);
  }
}

TEST(Rng, SampleWithoutReplacementIsDistinct) {
  Rng r(19);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<int> s = r.sample_without_replacement(10, 4);
    ASSERT_EQ(s.size(), 4u);
    std::set<int> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), 4u);
    for (int v : s) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 10);
    }
  }
}

TEST(Rng, SampleBoundsChecked) {
  Rng r(23);
  EXPECT_THROW(r.sample_without_replacement(3, 4), ContractViolation);
  EXPECT_THROW(r.sample_without_replacement(3, -1), ContractViolation);
}

TEST(Rng, ShuffleKeepsElements) {
  Rng r(29);
  std::vector<int> v{1, 2, 3, 4, 5};
  auto sorted = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, RangeFullDomainDoesNotThrow) {
  // [INT64_MIN, INT64_MAX] has a span of 2^64, which wraps to 0 in the
  // uint64 arithmetic; the full-domain special case must fall back to a
  // raw draw instead of tripping the bound > 0 contract.
  Rng r(41);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 64; ++i) {
    seen.insert(r.range(std::numeric_limits<std::int64_t>::min(),
                        std::numeric_limits<std::int64_t>::max()));
  }
  // Draws are varied, not a stuck constant.
  EXPECT_GT(seen.size(), 60u);
}

TEST(Rng, RangeNearFullDomainStillBounded) {
  Rng r(43);
  const std::int64_t lo = std::numeric_limits<std::int64_t>::min();
  const std::int64_t hi = std::numeric_limits<std::int64_t>::max() - 1;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LE(r.range(lo, hi), hi);
  }
}

TEST(Rng, StreamIsPureFunctionOfSeedAndIndex) {
  // Unlike fork(), stream() must not depend on generator state or on the
  // order streams are derived in -- that is what makes parallel sweeps
  // order-independent.
  Rng a = Rng::stream(55, 3);
  Rng scratch = Rng::stream(55, 900);
  for (int i = 0; i < 10; ++i) (void)scratch();
  Rng b = Rng::stream(55, 3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, StreamsDifferAcrossIndexAndSeed) {
  Rng base = Rng::stream(7, 0);
  std::vector<std::uint64_t> base_draws;
  for (int i = 0; i < 64; ++i) base_draws.push_back(base());
  for (auto [seed, index] : {std::pair<std::uint64_t, std::uint64_t>{7, 1},
                             {7, 12345},
                             {8, 0},
                             {0xFFFFFFFFFFFFFFFFULL, 0}}) {
    Rng other = Rng::stream(seed, index);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
      same += (other() == base_draws[static_cast<std::size_t>(i)]);
    }
    EXPECT_LT(same, 3) << "seed=" << seed << " index=" << index;
  }
}

TEST(Rng, StreamAvoidsXorAliasing) {
  // Derivations that mix seed ^ index collide on pairs like (s, i) and
  // (s ^ d, i ^ d). Adjacent trial indices under adjacent seeds are the
  // practical shape of that aliasing in sweeps.
  Rng a = Rng::stream(12, 13);
  Rng b = Rng::stream(13, 12);
  Rng c = Rng::stream(12 ^ 13, 0);
  const std::uint64_t a0 = a(), b0 = b(), c0 = c();
  EXPECT_NE(a0, b0);
  EXPECT_NE(a0, c0);
  EXPECT_NE(b0, c0);
}

TEST(Rng, StreamsAreStatisticallyUncorrelated) {
  // Cross-correlation of the bit streams of neighboring trial streams:
  // agreement should be ~50% bitwise. 64k bits per pair gives a standard
  // deviation of ~0.2%, so a 1% tolerance is ~5 sigma.
  const int kWords = 1024;  // 64k bits
  for (auto [s1, i1, s2, i2] :
       {std::tuple<std::uint64_t, std::uint64_t, std::uint64_t,
                   std::uint64_t>{0, 0, 0, 1},
        {0, 1, 0, 2},
        {42, 100, 42, 101},
        {42, 0, 43, 0}}) {
    Rng x = Rng::stream(s1, i1);
    Rng y = Rng::stream(s2, i2);
    long agree = 0;
    for (int w = 0; w < kWords; ++w) {
      agree += __builtin_popcountll(~(x() ^ y()));
    }
    const double frac =
        static_cast<double>(agree) / (64.0 * static_cast<double>(kWords));
    EXPECT_LT(std::abs(frac - 0.5), 0.01)
        << "streams (" << s1 << "," << i1 << ") x (" << s2 << "," << i2
        << ") bit agreement " << frac;
  }
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.fork();
  // The child must not replay the parent's continuation.
  Rng parent2(31);
  (void)parent2.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (child() == parent());
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkIsDeterministic) {
  Rng a(37), b(37);
  Rng ca = a.fork(), cb = b.fork();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(ca(), cb());
}

}  // namespace
}  // namespace rrfd
