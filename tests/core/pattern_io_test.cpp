#include "core/pattern_io.h"

#include <gtest/gtest.h>

#include "core/adversaries.h"
#include "util/rng.h"

namespace rrfd::core {
namespace {

TEST(PatternIo, RoundTripsHandBuiltPattern) {
  FaultPattern p(4);
  p.append({ProcessSet(4, {1}), ProcessSet(4), ProcessSet(4, {1, 3}),
            ProcessSet(4)});
  p.append({ProcessSet(4, {2}), ProcessSet(4, {2}), ProcessSet(4),
            ProcessSet(4, {2})});
  FaultPattern q = pattern_from_text(pattern_to_text(p));
  ASSERT_EQ(q.n(), 4);
  ASSERT_EQ(q.rounds(), 2);
  for (Round r = 1; r <= 2; ++r) {
    for (ProcId i = 0; i < 4; ++i) EXPECT_EQ(q.d(i, r), p.d(i, r));
  }
}

TEST(PatternIo, RoundTripsAdversaryPatterns) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    SnapshotAdversary adv(6, 3, seed);
    FaultPattern p = record_pattern(adv, 4);
    FaultPattern q = pattern_from_text(pattern_to_text(p));
    for (Round r = 1; r <= 4; ++r) {
      for (ProcId i = 0; i < 6; ++i) EXPECT_EQ(q.d(i, r), p.d(i, r));
    }
  }
}

TEST(PatternIo, EmptyPattern) {
  FaultPattern p(3);
  FaultPattern q = pattern_from_text(pattern_to_text(p));
  EXPECT_EQ(q.n(), 3);
  EXPECT_EQ(q.rounds(), 0);
}

TEST(PatternIo, ParsesHandWrittenText) {
  const std::string text =
      "# the chain counterexample, round one\n"
      "n=3\n"
      "\n"
      "{1} , {} , {0,1}\n";
  FaultPattern p = pattern_from_text(text);
  EXPECT_EQ(p.rounds(), 1);
  EXPECT_EQ(p.d(0, 1), ProcessSet(3, {1}));
  EXPECT_EQ(p.d(1, 1), ProcessSet(3));
  EXPECT_EQ(p.d(2, 1), ProcessSet(3, {0, 1}));
}

TEST(PatternIo, RejectsMissingHeader) {
  EXPECT_THROW(pattern_from_text("{1},{},{}\n"), ContractViolation);
  EXPECT_THROW(pattern_from_text(""), ContractViolation);
}

TEST(PatternIo, RejectsWrongArity) {
  EXPECT_THROW(pattern_from_text("n=3\n{1},{}\n"), ContractViolation);
}

TEST(PatternIo, RejectsOutOfRangeMember) {
  EXPECT_THROW(pattern_from_text("n=3\n{3},{},{}\n"), ContractViolation);
}

TEST(PatternIo, RejectsFullSet) {
  EXPECT_THROW(pattern_from_text("n=2\n{0,1},{}\n"), ContractViolation);
}

TEST(PatternIo, RejectsMalformedSets) {
  EXPECT_THROW(pattern_from_text("n=3\n{1,{},{}\n"), ContractViolation);
  EXPECT_THROW(pattern_from_text("n=3\n{x},{},{}\n"), ContractViolation);
  EXPECT_THROW(pattern_from_text("n=3\n{0},{},{} {1}\n"), ContractViolation);
  // Trailing / repeated commas inside a set.
  EXPECT_THROW(pattern_from_text("n=3\n{0,},{},{}\n"), ContractViolation);
  EXPECT_THROW(pattern_from_text("n=3\n{0,,1},{},{}\n"), ContractViolation);
  EXPECT_THROW(pattern_from_text("n=3\n{,},{},{}\n"), ContractViolation);
  EXPECT_THROW(pattern_from_text("n=3\n{,0},{},{}\n"), ContractViolation);
}

TEST(PatternIo, RejectsMissingSetSeparators) {
  // Sets concatenated without a comma used to be silently accepted.
  EXPECT_THROW(pattern_from_text("n=3\n{0}{1},{2}\n"), ContractViolation);
  EXPECT_THROW(pattern_from_text("n=3\n{0} {1},{2}\n"), ContractViolation);
  EXPECT_THROW(pattern_from_text("n=3\n{0},,{1},{2}\n"), ContractViolation);
}

TEST(PatternIo, RejectsMalformedHeaderWithDiagnostic) {
  // A non-numeric count must raise the library's ContractViolation, not a
  // raw std::invalid_argument from std::stoi.
  EXPECT_THROW(pattern_from_text("n=abc\n"), ContractViolation);
  EXPECT_THROW(pattern_from_text("n=\n"), ContractViolation);
  EXPECT_THROW(pattern_from_text("n=0\n"), ContractViolation);
  EXPECT_THROW(pattern_from_text("n=3x\n"), ContractViolation);
  EXPECT_THROW(pattern_from_text("n=-2\n"), ContractViolation);
  // Counts beyond kMaxProcesses (and far beyond INT_MAX) must not wrap:
  // the accumulator is bounds-checked per digit, not parsed then checked.
  EXPECT_THROW(pattern_from_text("n=65\n"), ContractViolation);
  EXPECT_THROW(pattern_from_text("n=99999999999999999999\n"),
               ContractViolation);
}

TEST(PatternIo, RejectsOverflowingProcessIds) {
  EXPECT_THROW(pattern_from_text("n=3\n{99999999999999999999},{},{}\n"),
               ContractViolation);
}

TEST(PatternIo, WriteReadRoundTripProperty) {
  // Property: write_pattern and read_pattern are inverses over random
  // fault patterns (arbitrary n, round counts, and D sets with D != S).
  Rng rng(20260807);
  for (int trial = 0; trial < 200; ++trial) {
    const int n = static_cast<int>(rng.range(1, 16));
    const int rounds = static_cast<int>(rng.range(0, 6));
    FaultPattern p(n);
    for (int r = 0; r < rounds; ++r) {
      RoundFaults round;
      for (ProcId i = 0; i < n; ++i) {
        ProcessSet d(n);
        for (ProcId j = 0; j < n; ++j) {
          if (rng.chance(0.3)) d.add(j);
        }
        if (d.full()) d.remove(static_cast<ProcId>(rng.below(
            static_cast<std::uint64_t>(n))));  // the universal D != S rule
        round.push_back(d);
      }
      p.append(std::move(round));
    }
    FaultPattern q = pattern_from_text(pattern_to_text(p));
    ASSERT_EQ(q.n(), p.n());
    ASSERT_EQ(q.rounds(), p.rounds());
    for (Round r = 1; r <= p.rounds(); ++r) {
      for (ProcId i = 0; i < n; ++i) {
        ASSERT_EQ(q.d(i, r), p.d(i, r))
            << "trial " << trial << " round " << r << " proc " << i;
      }
    }
  }
}

TEST(PatternIo, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "# header comment\n"
      "n=2\n"
      "# round comment\n"
      "{1},{0}\n"
      "\n"
      "{},{}\n";
  FaultPattern p = pattern_from_text(text);
  EXPECT_EQ(p.rounds(), 2);
  EXPECT_EQ(p.d(0, 1), ProcessSet(2, {1}));
  EXPECT_TRUE(p.d(0, 2).empty());
}

}  // namespace
}  // namespace rrfd::core
