#include "core/pattern_io.h"

#include <gtest/gtest.h>

#include "core/adversaries.h"

namespace rrfd::core {
namespace {

TEST(PatternIo, RoundTripsHandBuiltPattern) {
  FaultPattern p(4);
  p.append({ProcessSet(4, {1}), ProcessSet(4), ProcessSet(4, {1, 3}),
            ProcessSet(4)});
  p.append({ProcessSet(4, {2}), ProcessSet(4, {2}), ProcessSet(4),
            ProcessSet(4, {2})});
  FaultPattern q = pattern_from_text(pattern_to_text(p));
  ASSERT_EQ(q.n(), 4);
  ASSERT_EQ(q.rounds(), 2);
  for (Round r = 1; r <= 2; ++r) {
    for (ProcId i = 0; i < 4; ++i) EXPECT_EQ(q.d(i, r), p.d(i, r));
  }
}

TEST(PatternIo, RoundTripsAdversaryPatterns) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    SnapshotAdversary adv(6, 3, seed);
    FaultPattern p = record_pattern(adv, 4);
    FaultPattern q = pattern_from_text(pattern_to_text(p));
    for (Round r = 1; r <= 4; ++r) {
      for (ProcId i = 0; i < 6; ++i) EXPECT_EQ(q.d(i, r), p.d(i, r));
    }
  }
}

TEST(PatternIo, EmptyPattern) {
  FaultPattern p(3);
  FaultPattern q = pattern_from_text(pattern_to_text(p));
  EXPECT_EQ(q.n(), 3);
  EXPECT_EQ(q.rounds(), 0);
}

TEST(PatternIo, ParsesHandWrittenText) {
  const std::string text =
      "# the chain counterexample, round one\n"
      "n=3\n"
      "\n"
      "{1} , {} , {0,1}\n";
  FaultPattern p = pattern_from_text(text);
  EXPECT_EQ(p.rounds(), 1);
  EXPECT_EQ(p.d(0, 1), ProcessSet(3, {1}));
  EXPECT_EQ(p.d(1, 1), ProcessSet(3));
  EXPECT_EQ(p.d(2, 1), ProcessSet(3, {0, 1}));
}

TEST(PatternIo, RejectsMissingHeader) {
  EXPECT_THROW(pattern_from_text("{1},{},{}\n"), ContractViolation);
  EXPECT_THROW(pattern_from_text(""), ContractViolation);
}

TEST(PatternIo, RejectsWrongArity) {
  EXPECT_THROW(pattern_from_text("n=3\n{1},{}\n"), ContractViolation);
}

TEST(PatternIo, RejectsOutOfRangeMember) {
  EXPECT_THROW(pattern_from_text("n=3\n{3},{},{}\n"), ContractViolation);
}

TEST(PatternIo, RejectsFullSet) {
  EXPECT_THROW(pattern_from_text("n=2\n{0,1},{}\n"), ContractViolation);
}

TEST(PatternIo, RejectsMalformedSets) {
  EXPECT_THROW(pattern_from_text("n=3\n{1,{},{}\n"), ContractViolation);
  EXPECT_THROW(pattern_from_text("n=3\n{x},{},{}\n"), ContractViolation);
  EXPECT_THROW(pattern_from_text("n=3\n{0},{},{} {1}\n"), ContractViolation);
}

TEST(PatternIo, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "# header comment\n"
      "n=2\n"
      "# round comment\n"
      "{1},{0}\n"
      "\n"
      "{},{}\n";
  FaultPattern p = pattern_from_text(text);
  EXPECT_EQ(p.rounds(), 2);
  EXPECT_EQ(p.d(0, 1), ProcessSet(2, {1}));
  EXPECT_TRUE(p.d(0, 2).empty());
}

}  // namespace
}  // namespace rrfd::core
