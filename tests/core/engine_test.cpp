#include "core/engine.h"

#include <gtest/gtest.h>

#include "core/adversaries.h"

namespace rrfd::core {
namespace {

/// Test process: emits its id each round, records exactly what it received,
/// decides after `decide_after` rounds on the set of peers it heard from in
/// the final round.
struct Recorder {
  using Message = int;
  using Decision = std::uint64_t;

  ProcId id = 0;
  Round decide_after = 1;
  Round rounds_seen = 0;
  std::vector<std::vector<std::optional<int>>> inboxes;
  std::vector<ProcessSet> fault_sets;

  int emit(Round) { return id; }

  void absorb(Round r, const DeliveryView<int>& view, const ProcessSet& d) {
    EXPECT_EQ(r, rounds_seen + 1);
    EXPECT_EQ(view.faults(), d);
    rounds_seen = r;
    // Materialize the view so the assertions below can inspect it after
    // the round (the view itself is only valid during absorb).
    std::vector<std::optional<int>> inbox(static_cast<std::size_t>(view.n()));
    for (ProcId j : view.senders()) {
      inbox[static_cast<std::size_t>(j)] = view[j];
    }
    inboxes.push_back(std::move(inbox));
    fault_sets.push_back(d);
  }

  bool decided() const { return rounds_seen >= decide_after; }

  std::uint64_t decision() const {
    if (fault_sets.empty()) return 0;  // decided before any round ran
    ProcessSet heard(fault_sets.back().n());
    for (std::size_t j = 0; j < inboxes.back().size(); ++j) {
      if (inboxes.back()[j]) heard.add(static_cast<ProcId>(j));
    }
    return heard.bits();
  }
};

std::vector<Recorder> make_processes(int n, Round decide_after) {
  std::vector<Recorder> ps;
  for (ProcId i = 0; i < n; ++i) {
    ps.push_back(Recorder{.id = i, .decide_after = decide_after, .rounds_seen = 0, .inboxes = {}, .fault_sets = {}});
  }
  return ps;
}

TEST(Engine, DeliversExactlyComplementOfD) {
  const int n = 4;
  FaultPattern script(n);
  script.append({ProcessSet(n, {1, 2}), ProcessSet(n), ProcessSet(n, {0}),
                 ProcessSet(n, {3})});
  ScriptedAdversary adv(script);
  auto ps = make_processes(n, 1);
  auto result = run_rounds(ps, adv);

  ASSERT_EQ(result.rounds, 1);
  // p0 missed {1,2}: receives messages from 0 and 3 only.
  EXPECT_TRUE(ps[0].inboxes[0][0].has_value());
  EXPECT_FALSE(ps[0].inboxes[0][1].has_value());
  EXPECT_FALSE(ps[0].inboxes[0][2].has_value());
  EXPECT_TRUE(ps[0].inboxes[0][3].has_value());
  // p1 missed nobody: receives all four, each carrying the sender's id.
  for (int j = 0; j < n; ++j) {
    ASSERT_TRUE(ps[1].inboxes[0][static_cast<std::size_t>(j)].has_value());
    EXPECT_EQ(*ps[1].inboxes[0][static_cast<std::size_t>(j)], j);
  }
  // p3 missed itself: no self-delivery.
  EXPECT_FALSE(ps[3].inboxes[0][3].has_value());
  EXPECT_TRUE(ps[3].inboxes[0][0].has_value());
}

TEST(Engine, PassesFaultSetsToProcesses) {
  const int n = 3;
  FaultPattern script(n);
  script.append({ProcessSet(n, {2}), ProcessSet(n), ProcessSet(n, {0, 1})});
  ScriptedAdversary adv(script);
  auto ps = make_processes(n, 1);
  run_rounds(ps, adv);
  EXPECT_EQ(ps[0].fault_sets[0], ProcessSet(n, {2}));
  EXPECT_EQ(ps[1].fault_sets[0], ProcessSet(n));
  EXPECT_EQ(ps[2].fault_sets[0], ProcessSet(n, {0, 1}));
}

TEST(Engine, RecordsThePatternItWasFed) {
  const int n = 5;
  SwmrAdversary adv(n, 2, /*seed=*/9);
  auto ps = make_processes(n, 3);
  auto result = run_rounds(ps, adv);
  EXPECT_EQ(result.pattern.rounds(), 3);
  adv.reset();
  FaultPattern replay = record_pattern(adv, 3);
  for (Round r = 1; r <= 3; ++r) {
    for (ProcId i = 0; i < n; ++i) {
      EXPECT_EQ(result.pattern.d(i, r), replay.d(i, r));
    }
  }
}

TEST(Engine, StopsWhenAllDecided) {
  BenignAdversary adv(3);
  auto ps = make_processes(3, 2);
  auto result = run_rounds(ps, adv);
  EXPECT_EQ(result.rounds, 2);
  EXPECT_TRUE(result.all_decided);
  for (const auto& d : result.decisions) EXPECT_TRUE(d.has_value());
}

TEST(Engine, RunsExactlyMaxRoundsWhenAskedTo) {
  BenignAdversary adv(3);
  auto ps = make_processes(3, 1);
  EngineOptions opts;
  opts.max_rounds = 7;
  opts.stop_when_all_decided = false;
  auto result = run_rounds(ps, adv, opts);
  EXPECT_EQ(result.rounds, 7);
  EXPECT_EQ(ps[0].rounds_seen, 7);
}

TEST(Engine, ReportsUndecidedAtMaxRounds) {
  BenignAdversary adv(3);
  auto ps = make_processes(3, 100);
  EngineOptions opts;
  opts.max_rounds = 5;
  auto result = run_rounds(ps, adv, opts);
  EXPECT_EQ(result.rounds, 5);
  EXPECT_FALSE(result.all_decided);
  for (const auto& d : result.decisions) EXPECT_FALSE(d.has_value());
}

TEST(Engine, MaxRoundsZeroRunsNothing) {
  BenignAdversary adv(3);
  auto ps = make_processes(3, 1);
  EngineOptions opts;
  opts.max_rounds = 0;
  auto result = run_rounds(ps, adv, opts);
  EXPECT_EQ(result.rounds, 0);
  EXPECT_EQ(result.pattern.rounds(), 0);
  EXPECT_FALSE(result.all_decided);
  for (const auto& d : result.decisions) EXPECT_FALSE(d.has_value());
  EXPECT_EQ(ps[0].rounds_seen, 0);
}

TEST(Engine, MaxRoundsZeroStillReportsPreDecidedProcesses) {
  // decide_after = 0: decided() holds before any round; zero rounds must
  // still collect the decisions.
  BenignAdversary adv(2);
  auto ps = make_processes(2, 0);
  EngineOptions opts;
  opts.max_rounds = 0;
  auto result = run_rounds(ps, adv, opts);
  EXPECT_EQ(result.rounds, 0);
  EXPECT_TRUE(result.all_decided);
  for (const auto& d : result.decisions) EXPECT_TRUE(d.has_value());
}

TEST(Engine, TruncationKeepsRunningPastDecisions) {
  // stop_when_all_decided = false: everyone decided by round 2, yet the
  // engine must drive (and record) all 5 rounds -- the truncated-
  // algorithm experiments depend on this.
  BenignAdversary adv(4);
  auto ps = make_processes(4, 2);
  EngineOptions opts;
  opts.max_rounds = 5;
  opts.stop_when_all_decided = false;
  auto result = run_rounds(ps, adv, opts);
  EXPECT_EQ(result.rounds, 5);
  EXPECT_EQ(result.pattern.rounds(), 5);
  EXPECT_TRUE(result.all_decided);
  for (const auto& p : ps) EXPECT_EQ(p.rounds_seen, 5);
}

TEST(Engine, RejectsMismatchedProcessCount) {
  BenignAdversary adv(4);
  auto ps = make_processes(3, 1);
  EXPECT_THROW(run_rounds(ps, adv), ContractViolation);
}

TEST(Engine, DistinctDecisionsFiltersAndDeduplicates) {
  const int n = 4;
  FaultPattern script(n);
  // p0 and p1 hear everyone; p2 and p3 miss p0.
  script.append({ProcessSet(n), ProcessSet(n), ProcessSet(n, {0}),
                 ProcessSet(n, {0})});
  ScriptedAdversary adv(script);
  auto ps = make_processes(n, 1);
  auto result = run_rounds(ps, adv);

  auto all = result.distinct_decisions();
  EXPECT_EQ(all.size(), 2u);  // {0,1,2,3} and {1,2,3}

  auto among = result.distinct_decisions(ProcessSet(n, {2, 3}));
  ASSERT_EQ(among.size(), 1u);
  EXPECT_EQ(among[0], ProcessSet(n, {1, 2, 3}).bits());

  // The empty filter selects nobody; a singleton selects one decision;
  // a filter over undecided processes yields nothing.
  EXPECT_TRUE(result.distinct_decisions(ProcessSet(n)).empty());
  EXPECT_EQ(result.distinct_decisions(ProcessSet::single(n, 0)).size(), 1u);
}

TEST(Engine, DistinctDecisionsIgnoresUndecidedInsideFilter) {
  BenignAdversary adv(3);
  std::vector<Recorder> ps;
  ps.push_back(Recorder{.id = 0, .decide_after = 1, .rounds_seen = 0, .inboxes = {}, .fault_sets = {}});
  ps.push_back(Recorder{.id = 1, .decide_after = 100, .rounds_seen = 0, .inboxes = {}, .fault_sets = {}});
  ps.push_back(Recorder{.id = 2, .decide_after = 100, .rounds_seen = 0, .inboxes = {}, .fault_sets = {}});
  EngineOptions opts;
  opts.max_rounds = 2;
  auto result = run_rounds(ps, adv, opts);
  EXPECT_FALSE(result.all_decided);
  // The filter includes p1 (undecided): only p0's decision shows up.
  auto among = result.distinct_decisions(ProcessSet(3, {0, 1}));
  ASSERT_EQ(among.size(), 1u);
  // And a filter of only-undecided processes is empty.
  EXPECT_TRUE(result.distinct_decisions(ProcessSet(3, {1, 2})).empty());
}

TEST(RunResult, DistinctDecisionsPreserveFirstSeenOrder) {
  // Regression for the sorted-dedup rewrite of distinct_decisions: the
  // result must stay in first-seen (lowest deciding ProcId) order, exactly
  // as the old quadratic scan produced it.
  RunResult<int> result(6);
  result.decisions = {7, 3, std::nullopt, 7, 1, 3};
  EXPECT_EQ(result.distinct_decisions(), (std::vector<int>{7, 3, 1}));
}

TEST(RunResult, DistinctDecisionsRespectAmongFilter) {
  RunResult<int> result(6);
  result.decisions = {7, 3, std::nullopt, 7, 1, 3};
  // Among {1, 3, 4}: first-seen order is 3 (p1), 7 (p3), 1 (p4).
  EXPECT_EQ(result.distinct_decisions(ProcessSet(6, {1, 3, 4})),
            (std::vector<int>{3, 7, 1}));
  EXPECT_TRUE(result.distinct_decisions(ProcessSet(6, {2})).empty());
}

TEST(RunResult, DistinctDecisionsFallBackForEqualityOnlyTypes) {
  // Decisions without operator< take the quadratic path; behavior must be
  // identical.
  struct EqOnly {
    int v = 0;
    bool operator==(const EqOnly&) const = default;
  };
  RunResult<EqOnly> result(5);
  result.decisions = {EqOnly{2}, EqOnly{9}, EqOnly{2}, std::nullopt, EqOnly{4}};
  const std::vector<EqOnly> distinct = result.distinct_decisions();
  ASSERT_EQ(distinct.size(), 3u);
  EXPECT_EQ(distinct[0].v, 2);
  EXPECT_EQ(distinct[1].v, 9);
  EXPECT_EQ(distinct[2].v, 4);
}

TEST(RunResult, DistinctDecisionsManyProcessesStressOrder) {
  // A larger instance (the case the O(k^2) scan was slow for): 64
  // processes, 8 distinct values, first occurrence at i = value.
  RunResult<int> result(64);
  result.decisions.assign(64, std::nullopt);
  for (int i = 0; i < 64; ++i) result.decisions[static_cast<std::size_t>(i)] = i % 8;
  const std::vector<int> distinct = result.distinct_decisions();
  EXPECT_EQ(distinct, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(Engine, ProcessesKeepParticipatingAfterDeciding) {
  // Decision is commitment, not halting: a process that decided in round 1
  // still emits and absorbs in round 2 (the "forever do" loop).
  BenignAdversary adv(2);
  std::vector<Recorder> ps;
  ps.push_back(Recorder{.id = 0, .decide_after = 1, .rounds_seen = 0, .inboxes = {}, .fault_sets = {}});
  ps.push_back(Recorder{.id = 1, .decide_after = 3, .rounds_seen = 0, .inboxes = {}, .fault_sets = {}});
  auto result = run_rounds(ps, adv);
  EXPECT_EQ(result.rounds, 3);
  EXPECT_EQ(ps[0].rounds_seen, 3);
}

}  // namespace
}  // namespace rrfd::core
