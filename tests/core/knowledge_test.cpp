#include "core/knowledge.h"

#include <gtest/gtest.h>

#include "core/adversaries.h"
#include "core/predicates.h"

namespace rrfd::core {
namespace {

TEST(KnowledgeTracker, InitiallyEveryoneKnowsOnlyThemselves) {
  KnowledgeTracker t(4);
  for (ProcId i = 0; i < 4; ++i) {
    EXPECT_EQ(t.known_by(i), ProcessSet::single(4, i));
  }
  EXPECT_TRUE(t.known_to_all().empty());
  EXPECT_EQ(t.rounds(), 0);
}

TEST(KnowledgeTracker, OneCleanRoundMakesEverythingCommon) {
  KnowledgeTracker t(5);
  t.step(uniform_round(5, ProcessSet(5)));
  EXPECT_EQ(t.known_to_all(), ProcessSet::all(5));
}

TEST(KnowledgeTracker, MissedProcessStaysUnknown) {
  KnowledgeTracker t(3);
  // Everyone misses p2.
  t.step(uniform_round(3, ProcessSet(3, {2})));
  EXPECT_EQ(t.known_to_all(), ProcessSet(3, {0, 1}));
  EXPECT_FALSE(t.known_by(0).contains(2));
  EXPECT_TRUE(t.known_by(2).contains(2));  // p2 still knows itself
}

TEST(KnowledgeTracker, KnowledgeIsTransitive) {
  KnowledgeTracker t(3);
  // Round 1: p1 hears p0; p2 hears nobody else... then round 2: p2 hears p1.
  t.step({ProcessSet(3, {1, 2}), ProcessSet(3, {2}), ProcessSet(3, {0, 1})});
  EXPECT_FALSE(t.known_by(2).contains(0));
  t.step({ProcessSet(3, {1, 2}), ProcessSet(3, {0, 2}), ProcessSet(3, {0})});
  // p2 heard p1, who knew p0's input after round 1.
  EXPECT_TRUE(t.known_by(2).contains(0));
}

TEST(KnowledgeTracker, RunAppliesWholePattern) {
  FaultPattern p(3);
  p.append(uniform_round(3, ProcessSet(3, {2})));
  p.append(uniform_round(3, ProcessSet(3)));
  KnowledgeTracker t(3);
  t.run(p);
  EXPECT_EQ(t.rounds(), 2);
  EXPECT_EQ(t.known_to_all(), ProcessSet::all(3));
}

TEST(RoundsUntilCommonKnowledge, BenignNeedsOneRound) {
  BenignAdversary adv(6);
  EXPECT_EQ(rounds_until_common_knowledge(record_pattern(adv, 3)), 1);
}

TEST(RoundsUntilCommonKnowledge, ReturnsMinusOneWhenNeverCommon) {
  // A 3-cycle of misses sustained forever keeps knowledge from becoming
  // common... but a cycle of length 3 only delays to round 3; to starve we
  // rotate the cycle so the same edge is always missing.
  FaultPattern p(2);
  for (int r = 0; r < 5; ++r) {
    p.append({ProcessSet(2, {1}), ProcessSet(2, {0})});
  }
  EXPECT_EQ(rounds_until_common_knowledge(p), -1);
}

TEST(RoundsUntilCommonKnowledge, DetectsRoundZeroForSingleton) {
  FaultPattern p(1);
  EXPECT_EQ(rounds_until_common_knowledge(p), 0);
}

// ---------------------------------------------------------------------------
// The item-4 cycle argument: under no-mutual-miss, some input is known to
// all within n rounds. (The paper proves <= n and conjectures 2.)
// ---------------------------------------------------------------------------

FaultPattern cyclic_pattern(int n, Round rounds, int rotate_per_round) {
  // D(i,r) = { (i + 1 + rotation) mod n }: every process misses exactly one
  // other, no two miss each other (for n >= 3), forming a cycle.
  FaultPattern p(n);
  for (Round r = 0; r < rounds; ++r) {
    RoundFaults round;
    for (ProcId i = 0; i < n; ++i) {
      const ProcId missed =
          static_cast<ProcId>((i + 1 + r * rotate_per_round) % n);
      round.push_back(missed == i ? ProcessSet(n)
                                  : ProcessSet::single(n, missed));
    }
    p.append(round);
  }
  return p;
}

TEST(CycleArgument, CyclicMissesSatisfyNoMutualMiss) {
  for (int n = 3; n <= 8; ++n) {
    FaultPattern p = cyclic_pattern(n, n, /*rotate_per_round=*/0);
    EXPECT_TRUE(NoMutualMiss().holds(p)) << "n=" << n;
  }
}

TEST(CycleArgument, CommonKnowledgeWithinNRounds) {
  // Static cycle: after round r, p_i has missed only p_{i+1}'s chain;
  // common knowledge must appear by round n as the paper argues.
  for (int n = 3; n <= 10; ++n) {
    FaultPattern p = cyclic_pattern(n, n, /*rotate_per_round=*/0);
    Round r = rounds_until_common_knowledge(p);
    ASSERT_NE(r, -1) << "n=" << n;
    EXPECT_LE(r, n) << "n=" << n;
  }
}

TEST(CycleArgument, RandomNoMutualMissPatternsReachCommonKnowledgeWithinN) {
  // Randomized probe of the paper's claim, using the snapshot adversary
  // (containment + no-self implies no-mutual-miss).
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const int n = 6;
    SnapshotAdversary adv(n, n - 1, seed);
    FaultPattern p = record_pattern(adv, n);
    ASSERT_TRUE(NoMutualMiss().holds(p)) << p.to_string();
    Round r = rounds_until_common_knowledge(p);
    ASSERT_NE(r, -1);
    EXPECT_LE(r, n);
  }
}

}  // namespace
}  // namespace rrfd::core
