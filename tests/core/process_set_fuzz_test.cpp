// Differential fuzzing: ProcessSet against std::set<int> as the reference
// model, across random operation sequences and system sizes.
#include <gtest/gtest.h>

#include <set>

#include "core/process_set.h"
#include "util/rng.h"
#include "util/str.h"

namespace rrfd::core {
namespace {

std::set<int> to_reference(const ProcessSet& s) {
  std::set<int> out;
  for (ProcId p : s.members()) out.insert(p);
  return out;
}

class ProcessSetFuzz : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(ProcessSetFuzz, MatchesReferenceModel) {
  auto [n, seed] = GetParam();
  Rng rng(seed);
  ProcessSet a(n), b(n);
  std::set<int> ra, rb;

  for (int op = 0; op < 2000; ++op) {
    const int p = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
    switch (rng.below(8)) {
      case 0:
        a.add(p);
        ra.insert(p);
        break;
      case 1:
        a.remove(p);
        ra.erase(p);
        break;
      case 2:
        b.add(p);
        rb.insert(p);
        break;
      case 3: {
        ProcessSet u = a | b;
        std::set<int> ru = ra;
        ru.insert(rb.begin(), rb.end());
        EXPECT_EQ(to_reference(u), ru);
        break;
      }
      case 4: {
        ProcessSet x = a & b;
        std::set<int> rx;
        for (int q : ra) {
          if (rb.count(q)) rx.insert(q);
        }
        EXPECT_EQ(to_reference(x), rx);
        break;
      }
      case 5: {
        ProcessSet d = a - b;
        std::set<int> rd;
        for (int q : ra) {
          if (!rb.count(q)) rd.insert(q);
        }
        EXPECT_EQ(to_reference(d), rd);
        break;
      }
      case 6: {
        ProcessSet c = a.complement();
        std::set<int> rc;
        for (int q = 0; q < n; ++q) {
          if (!ra.count(q)) rc.insert(q);
        }
        EXPECT_EQ(to_reference(c), rc);
        break;
      }
      default: {
        // Scalar queries.
        EXPECT_EQ(a.size(), static_cast<int>(ra.size()));
        EXPECT_EQ(a.empty(), ra.empty());
        EXPECT_EQ(a.contains(p), ra.count(p) > 0);
        if (!ra.empty()) {
          EXPECT_EQ(a.min(), *ra.begin());
          EXPECT_EQ(a.max(), *ra.rbegin());
        }
        bool subset = true;
        for (int q : ra) subset = subset && rb.count(q) > 0;
        EXPECT_EQ(a.subset_of(b), subset);
        bool inter = false;
        for (int q : ra) inter = inter || rb.count(q) > 0;
        EXPECT_EQ(a.intersects(b), inter);
        break;
      }
    }
  }
  EXPECT_EQ(to_reference(a), ra);
  EXPECT_EQ(to_reference(b), rb);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ProcessSetFuzz,
    ::testing::Combine(::testing::Values(1, 2, 7, 31, 64),
                       ::testing::Values(1u, 2u, 3u)),
    [](const ::testing::TestParamInfo<std::tuple<int, std::uint64_t>>& pinfo) {
      // cat() instead of `"n" + std::to_string(...)`: the rvalue operator+
      // chain trips GCC 12's -Wrestrict false positive at -O3 -Werror.
      return cat("n", std::get<0>(pinfo.param), "_s", std::get<1>(pinfo.param));
    });

}  // namespace
}  // namespace rrfd::core
