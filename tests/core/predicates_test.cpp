// Declarative checks of every model predicate in the zoo, plus the
// submodel relations Section 2 states explicitly.
#include "core/predicates.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/adversaries.h"
#include "core/submodel.h"

namespace rrfd::core {
namespace {

FaultPattern pattern_of(int n, std::vector<RoundFaults> rounds) {
  FaultPattern p(n);
  for (auto& r : rounds) p.append(std::move(r));
  return p;
}

// ---------------------------------------------------------------------------
// NoSelfSuspicion
// ---------------------------------------------------------------------------

TEST(NoSelfSuspicion, AcceptsSelfFreePattern) {
  NoSelfSuspicion pred;
  auto p = pattern_of(3, {{ProcessSet(3, {1}), ProcessSet(3), ProcessSet(3)}});
  EXPECT_TRUE(pred.holds(p));
}

TEST(NoSelfSuspicion, RejectsSelfSuspicion) {
  NoSelfSuspicion pred;
  auto p = pattern_of(3, {{ProcessSet(3, {0}), ProcessSet(3), ProcessSet(3)}});
  EXPECT_FALSE(pred.holds(p));
}

TEST(NoSelfSuspicion, ExemptionAllowsSelfAfterAnnouncement) {
  NoSelfSuspicion strict;
  NoSelfSuspicion exempt(/*exempt_announced=*/true);
  // p0 announced by p1 in round 1; p0 suspects itself in round 2.
  auto p = pattern_of(3, {{ProcessSet(3), ProcessSet(3, {0}), ProcessSet(3)},
                          {ProcessSet(3, {0}), ProcessSet(3, {0}),
                           ProcessSet(3, {0})}});
  EXPECT_FALSE(strict.holds(p));
  EXPECT_TRUE(exempt.holds(p));
}

TEST(NoSelfSuspicion, ExemptionDoesNotCoverFirstRoundSelf) {
  NoSelfSuspicion exempt(/*exempt_announced=*/true);
  auto p = pattern_of(3, {{ProcessSet(3, {0}), ProcessSet(3), ProcessSet(3)}});
  EXPECT_FALSE(exempt.holds(p));
}

// ---------------------------------------------------------------------------
// CumulativeFaultBound
// ---------------------------------------------------------------------------

TEST(CumulativeFaultBound, CountsDistinctProcessesAcrossRounds) {
  CumulativeFaultBound pred(2);
  auto p = pattern_of(4, {{ProcessSet(4, {1}), ProcessSet(4), ProcessSet(4),
                           ProcessSet(4)},
                          {ProcessSet(4, {2}), ProcessSet(4, {1}),
                           ProcessSet(4), ProcessSet(4)}});
  EXPECT_TRUE(pred.holds(p));  // {1,2} -- exactly 2 distinct
}

TEST(CumulativeFaultBound, RejectsWhenExceeded) {
  CumulativeFaultBound pred(1);
  auto p = pattern_of(4, {{ProcessSet(4, {1}), ProcessSet(4), ProcessSet(4),
                           ProcessSet(4)},
                          {ProcessSet(4, {2}), ProcessSet(4), ProcessSet(4),
                           ProcessSet(4)}});
  EXPECT_FALSE(pred.holds(p));
}

TEST(CumulativeFaultBound, ZeroMeansNoAnnouncements) {
  CumulativeFaultBound pred(0);
  EXPECT_TRUE(pred.holds(FaultPattern(3)));
  auto p = pattern_of(3, {{ProcessSet(3, {1}), ProcessSet(3), ProcessSet(3)}});
  EXPECT_FALSE(pred.holds(p));
}

// ---------------------------------------------------------------------------
// CrashMonotonicity
// ---------------------------------------------------------------------------

TEST(CrashMonotonicity, AcceptsGrowingAnnouncements) {
  CrashMonotonicity pred;
  auto p = pattern_of(
      3, {{ProcessSet(3, {2}), ProcessSet(3), ProcessSet(3)},
          {ProcessSet(3, {2}), ProcessSet(3, {2}), ProcessSet(3, {2})}});
  EXPECT_TRUE(pred.holds(p));
}

TEST(CrashMonotonicity, RejectsForgottenCrash) {
  CrashMonotonicity pred;
  auto p = pattern_of(3, {{ProcessSet(3, {2}), ProcessSet(3), ProcessSet(3)},
                          {ProcessSet(3), ProcessSet(3), ProcessSet(3)}});
  EXPECT_FALSE(pred.holds(p));
}

TEST(CrashMonotonicity, RequiresAnnouncementToEveryone) {
  CrashMonotonicity pred;
  // p2 announced in round 1, but p1 doesn't carry it in round 2.
  auto p = pattern_of(
      3, {{ProcessSet(3, {2}), ProcessSet(3), ProcessSet(3)},
          {ProcessSet(3, {2}), ProcessSet(3), ProcessSet(3, {2})}});
  EXPECT_FALSE(pred.holds(p));
}

// ---------------------------------------------------------------------------
// PerRoundFaultBound
// ---------------------------------------------------------------------------

TEST(PerRoundFaultBound, BoundsEveryProcessEveryRound) {
  PerRoundFaultBound pred(1);
  auto ok = pattern_of(3, {{ProcessSet(3, {1}), ProcessSet(3, {0}),
                            ProcessSet(3, {0})}});
  EXPECT_TRUE(pred.holds(ok));
  auto bad = pattern_of(3, {{ProcessSet(3, {1, 2}), ProcessSet(3),
                             ProcessSet(3)}});
  EXPECT_FALSE(pred.holds(bad));
}

TEST(PerRoundFaultBound, AllowsChangingTargets) {
  // The asynchronous signature: different misses in different rounds are
  // fine as long as each round's set is small.
  PerRoundFaultBound pred(1);
  auto p = pattern_of(3, {{ProcessSet(3, {1}), ProcessSet(3), ProcessSet(3)},
                          {ProcessSet(3, {2}), ProcessSet(3), ProcessSet(3)},
                          {ProcessSet(3, {0}), ProcessSet(3), ProcessSet(3)}});
  EXPECT_TRUE(pred.holds(p));
  // ...even though the cumulative union (3 processes) exceeds f = 1.
  EXPECT_FALSE(CumulativeFaultBound(1).holds(p));
}

// ---------------------------------------------------------------------------
// SomeoneHeardByAll
// ---------------------------------------------------------------------------

TEST(SomeoneHeardByAll, RejectsPartition) {
  SomeoneHeardByAll pred;
  // Every process announced to somebody: 0 misses 1, 1 misses 2, 2 misses 0.
  auto p = pattern_of(3, {{ProcessSet(3, {1}), ProcessSet(3, {2}),
                           ProcessSet(3, {0})}});
  EXPECT_FALSE(pred.holds(p));
}

TEST(SomeoneHeardByAll, AcceptsWhenOneProcessIsUniversallyHeard) {
  SomeoneHeardByAll pred;
  auto p = pattern_of(3, {{ProcessSet(3, {1}), ProcessSet(3, {0}),
                           ProcessSet(3, {0, 1})}});
  EXPECT_TRUE(pred.holds(p));  // p2 announced to nobody
}

// ---------------------------------------------------------------------------
// NoMutualMiss
// ---------------------------------------------------------------------------

TEST(NoMutualMiss, RejectsSymmetricMiss) {
  NoMutualMiss pred;
  auto p = pattern_of(3, {{ProcessSet(3, {1}), ProcessSet(3, {0}),
                           ProcessSet(3)}});
  EXPECT_FALSE(pred.holds(p));
}

TEST(NoMutualMiss, AcceptsCyclicMisses) {
  // The paper's point: a cycle 0 misses 1 misses 2 misses 0 satisfies
  // no-mutual-miss but violates someone-heard-by-all, so the two
  // predicates are incomparable.
  NoMutualMiss pred;
  auto p = pattern_of(3, {{ProcessSet(3, {1}), ProcessSet(3, {2}),
                           ProcessSet(3, {0})}});
  EXPECT_TRUE(pred.holds(p));
  EXPECT_FALSE(SomeoneHeardByAll().holds(p));
}

// ---------------------------------------------------------------------------
// ContainmentChain
// ---------------------------------------------------------------------------

TEST(ContainmentChain, AcceptsChain) {
  ContainmentChain pred;
  auto p = pattern_of(3, {{ProcessSet(3, {2}), ProcessSet(3, {2}),
                           ProcessSet(3)}});
  EXPECT_TRUE(pred.holds(p));
}

TEST(ContainmentChain, RejectsIncomparableSets) {
  ContainmentChain pred;
  auto p = pattern_of(4, {{ProcessSet(4, {1}), ProcessSet(4, {2}),
                           ProcessSet(4), ProcessSet(4)}});
  EXPECT_FALSE(pred.holds(p));
}

// ---------------------------------------------------------------------------
// ImmortalProcess
// ---------------------------------------------------------------------------

TEST(ImmortalProcess, HoldsWhenSomeoneNeverAnnounced) {
  ImmortalProcess pred;
  auto p = pattern_of(3, {{ProcessSet(3, {1}), ProcessSet(3, {0}),
                           ProcessSet(3)}});
  EXPECT_TRUE(pred.holds(p));  // p2 never announced
}

TEST(ImmortalProcess, FailsWhenEveryoneAnnouncedEventually) {
  ImmortalProcess pred;
  auto p = pattern_of(3, {{ProcessSet(3, {1}), ProcessSet(3, {2}),
                           ProcessSet(3)},
                          {ProcessSet(3, {0}), ProcessSet(3), ProcessSet(3)}});
  EXPECT_FALSE(pred.holds(p));
}

TEST(ImmortalProcess, EquivalentToCumulativeBoundNMinus1) {
  // Item 6's predicate manipulation: |U U D| < n <=> some process never
  // announced. Checked over random async patterns.
  ImmortalProcess immortal;
  CumulativeFaultBound bound(3);  // n-1 for n=4
  AsyncAdversary adv(4, 3, /*seed=*/77);
  for (int trial = 0; trial < 200; ++trial) {
    FaultPattern p = record_pattern(adv, 4);
    EXPECT_EQ(immortal.holds(p), bound.holds(p)) << p.to_string();
  }
}

// ---------------------------------------------------------------------------
// KUncertainty
// ---------------------------------------------------------------------------

TEST(KUncertainty, K1MeansIdenticalAnnouncements) {
  KUncertainty pred(1);
  auto agree = pattern_of(3, {uniform_round(3, ProcessSet(3, {1}))});
  EXPECT_TRUE(pred.holds(agree));
  auto disagree = pattern_of(3, {{ProcessSet(3, {1}), ProcessSet(3),
                                  ProcessSet(3)}});
  EXPECT_FALSE(pred.holds(disagree));
}

TEST(KUncertainty, CountsUnionMinusIntersection) {
  KUncertainty pred2(2);
  KUncertainty pred1(1);
  // Disagreement on exactly one process (p1): union {1,2}, intersection {2}.
  auto p = pattern_of(3, {{ProcessSet(3, {1, 2}), ProcessSet(3, {2}),
                           ProcessSet(3, {2})}});
  EXPECT_TRUE(pred2.holds(p));
  EXPECT_FALSE(pred1.holds(p));
}

TEST(KUncertainty, EqualAnnouncementsImpliesEveryK) {
  EqualAnnouncements eq;
  auto p = pattern_of(4, {uniform_round(4, ProcessSet(4, {0, 3}))});
  ASSERT_TRUE(eq.holds(p));
  for (int k = 1; k <= 4; ++k) EXPECT_TRUE(KUncertainty(k).holds(p));
}

// ---------------------------------------------------------------------------
// EqualAnnouncements
// ---------------------------------------------------------------------------

TEST(EqualAnnouncements, DetectsAnyDeviation) {
  EqualAnnouncements pred;
  auto p = pattern_of(3, {uniform_round(3, ProcessSet(3, {2})),
                          {ProcessSet(3, {2}), ProcessSet(3, {2}),
                           ProcessSet(3)}});
  EXPECT_FALSE(pred.holds(p));
}

// ---------------------------------------------------------------------------
// QuorumSkew
// ---------------------------------------------------------------------------

TEST(QuorumSkew, AcceptsWithinSkew) {
  QuorumSkew pred(/*t=*/2, /*f=*/1);
  // Two processes miss 2 (inside Q), the rest miss <= 1.
  auto p = pattern_of(5, {{ProcessSet(5, {1, 2}), ProcessSet(5, {3, 4}),
                           ProcessSet(5, {0}), ProcessSet(5), ProcessSet(5)}});
  EXPECT_TRUE(pred.holds(p));
}

TEST(QuorumSkew, RejectsTooManyOversized) {
  QuorumSkew pred(/*t=*/2, /*f=*/1);
  auto p = pattern_of(5, {{ProcessSet(5, {1, 2}), ProcessSet(5, {3, 4}),
                           ProcessSet(5, {0, 4}), ProcessSet(5),
                           ProcessSet(5)}});
  EXPECT_FALSE(pred.holds(p));  // three processes exceed f=1 > t=2
}

TEST(QuorumSkew, RejectsAboveT) {
  QuorumSkew pred(/*t=*/2, /*f=*/1);
  auto p = pattern_of(5, {{ProcessSet(5, {1, 2, 3}), ProcessSet(5),
                           ProcessSet(5), ProcessSet(5), ProcessSet(5)}});
  EXPECT_FALSE(pred.holds(p));  // |D| = 3 > t
}

TEST(QuorumSkew, AsyncIsSubmodelOfQuorumSkew) {
  // Section 2 item 3: A (plain async with f) is a strict submodel of B.
  AsyncAdversary adv(6, 1, /*seed=*/5);
  QuorumSkew b(/*t=*/2, /*f=*/1);
  for (int trial = 0; trial < 100; ++trial) {
    FaultPattern p = record_pattern(adv, 3);
    ASSERT_TRUE(PerRoundFaultBound(1).holds(p));
    EXPECT_TRUE(b.holds(p));
  }
}

// ---------------------------------------------------------------------------
// NeverFaulty
// ---------------------------------------------------------------------------

TEST(NeverFaulty, OnlyAcceptsEmptyAnnouncements) {
  NeverFaulty pred;
  FaultPattern clean(3);
  clean.append(uniform_round(3, ProcessSet(3)));
  EXPECT_TRUE(pred.holds(clean));
  auto p = pattern_of(3, {{ProcessSet(3, {1}), ProcessSet(3), ProcessSet(3)}});
  EXPECT_FALSE(pred.holds(p));
}

// ---------------------------------------------------------------------------
// Composition / named systems
// ---------------------------------------------------------------------------

TEST(NamedSystems, CrashIsSubmodelOfOmission) {
  // "It is thus explicit in the model definition that the crash-fault
  // model is a submodel of the send-omission-fault model."
  auto crash = sync_crash(2);
  for (unsigned trial = 0; trial < 200; ++trial) {
    CrashAdversary adv(5, 2, /*seed=*/13 + trial);
    FaultPattern p = record_pattern(adv, 5);
    ASSERT_TRUE(crash->holds(p)) << p.to_string();
    // A crash pattern in which no process self-suspects is an omission
    // pattern; self-suspicion only appears for announced (halted)
    // processes, which the omission model reads as "p_i late to its own
    // round" -- excluded there, so restrict the check to the strict part:
    EXPECT_TRUE(CumulativeFaultBound(2).holds(p));
  }
}

TEST(NamedSystems, SnapshotImpliesKUncertaintyAtKMinus1Failures) {
  // The step behind Corollary 3.2: the item-5 predicate with f = k-1
  // implies Theorem 3.1's predicate (containment makes union \ intersection
  // = largest D \ smallest D, of size <= f = k-1 < k).
  const int n = 6;
  for (int k = 1; k <= 4; ++k) {
    SnapshotAdversary adv(n, k - 1, /*seed=*/1000u + static_cast<unsigned>(k));
    auto snap = atomic_snapshot(k - 1);
    auto kunc = k_uncertainty(k);
    for (int trial = 0; trial < 100; ++trial) {
      FaultPattern p = record_pattern(adv, 3);
      ASSERT_TRUE(snap->holds(p)) << p.to_string();
      EXPECT_TRUE(kunc->holds(p)) << p.to_string();
    }
  }
}

TEST(NamedSystems, EqualAnnouncementsIsOneUncertainty) {
  EqualAdversary adv(5, /*seed=*/99);
  auto one = k_uncertainty(1);
  for (int trial = 0; trial < 100; ++trial) {
    FaultPattern p = record_pattern(adv, 3);
    ASSERT_TRUE(equal_announcements()->holds(p));
    EXPECT_TRUE(one->holds(p));
  }
}

TEST(NamedSystems, AndPredicateReportsParts) {
  auto sys = sync_crash(1);
  EXPECT_NE(sys->description().find("crash-monotonicity"),
            std::string::npos);
  EXPECT_EQ(sys->name(), "sync-crash(f=1)");
}

TEST(NamedSystems, AndPredicateShortCircuits) {
  auto sys = sync_omission(0);
  auto p = pattern_of(3, {{ProcessSet(3, {1}), ProcessSet(3), ProcessSet(3)}});
  EXPECT_FALSE(sys->holds(p));
}

TEST(NamedSystems, PrefixClosureOfZooPatterns) {
  // All paper models are prefix-closed; holds_all_prefixes must agree with
  // holds for adversary-generated patterns.
  SwmrAdversary adv(5, 2, /*seed=*/4242);
  auto sys = swmr_shared_memory(2);
  for (int trial = 0; trial < 50; ++trial) {
    FaultPattern p = record_pattern(adv, 4);
    EXPECT_EQ(sys->holds(p), sys->holds_all_prefixes(p));
  }
}

// ---------------------------------------------------------------------------
// Incremental evaluators (the exhaustive engine's view of the zoo)
// ---------------------------------------------------------------------------

/// Every instantiation the conformance sweep covers.
std::vector<PredicatePtr> evaluator_zoo() {
  return {
      std::make_shared<NoSelfSuspicion>(),
      std::make_shared<NoSelfSuspicion>(/*exempt_announced=*/true),
      std::make_shared<CumulativeFaultBound>(0),
      std::make_shared<CumulativeFaultBound>(1),
      std::make_shared<CumulativeFaultBound>(3),  // >= n at n = 2 and 3
      std::make_shared<CrashMonotonicity>(),
      std::make_shared<PerRoundFaultBound>(0),
      std::make_shared<PerRoundFaultBound>(1),
      std::make_shared<SomeoneHeardByAll>(),
      std::make_shared<NoMutualMiss>(),
      std::make_shared<ContainmentChain>(),
      std::make_shared<ImmortalProcess>(),
      std::make_shared<KUncertainty>(1),
      std::make_shared<KUncertainty>(2),
      std::make_shared<EqualAnnouncements>(),
      std::make_shared<QuorumSkew>(2, 1),
      std::make_shared<NeverFaulty>(),
      sync_crash(1),
      atomic_snapshot(1),
  };
}

/// Exhaustive DFS over every pattern of `rounds` rounds, exercising the
/// evaluator exactly the way the enumeration engine does (push/pop in
/// LIFO order, including pushes after a violation) and checking at every
/// prefix that
///  * the verdict is kViolatedForever iff holds(prefix) is false,
///  * below a kSatisfiedForever promise every prefix satisfies, and
///  * below a violation of a prunable() predicate every prefix violates.
void check_evaluator_conformance(const Predicate& pred, int n, Round rounds) {
  const std::uint64_t max_mask = (std::uint64_t{1} << n) - 2;
  auto eval = pred.evaluator();
  eval->begin(n, rounds);
  FaultPattern prefix(n);

  std::function<void(Round, bool, bool)> rec = [&](Round depth,
                                                   bool forever_above,
                                                   bool violated_above) {
    std::vector<std::uint64_t> digits(static_cast<std::size_t>(n), 0);
    for (;;) {
      RoundFaults round;
      for (int i = 0; i < n; ++i) {
        round.push_back(
            ProcessSet::from_bits(n, digits[static_cast<std::size_t>(i)]));
      }
      const StepVerdict v = eval->push_round(round);
      prefix.append(round);
      const bool sat = pred.holds(prefix);
      EXPECT_EQ(v != StepVerdict::kViolatedForever, sat)
          << pred.name() << " at depth " << depth << "\n"
          << prefix.to_string();
      if (forever_above) {
        EXPECT_TRUE(sat) << pred.name()
                         << ": kSatisfiedForever promise broken\n"
                         << prefix.to_string();
      }
      if (violated_above && pred.prunable()) {
        EXPECT_FALSE(sat) << pred.name()
                          << ": prunable violation recovered\n"
                          << prefix.to_string();
      }
      if (depth < rounds) {
        rec(depth + 1, forever_above || v == StepVerdict::kSatisfiedForever,
            violated_above || v == StepVerdict::kViolatedForever);
      }
      prefix.pop_round();
      eval->pop_round();

      int i = 0;
      while (i < n && digits[static_cast<std::size_t>(i)] == max_mask) {
        digits[static_cast<std::size_t>(i)] = 0;
        ++i;
      }
      if (i == n) return;
      ++digits[static_cast<std::size_t>(i)];
    }
  };
  rec(1, false, false);
}

TEST(StepEvaluators, ConformToHoldsOnEveryPrefixN2) {
  for (const auto& pred : evaluator_zoo()) {
    check_evaluator_conformance(*pred, 2, 3);  // 9 + 81 + 729 prefixes
  }
}

TEST(StepEvaluators, ConformToHoldsOnEveryPrefixN3) {
  for (const auto& pred : evaluator_zoo()) {
    check_evaluator_conformance(*pred, 3, 2);  // 343 + 117649 prefixes
  }
}

TEST(StepEvaluators, ZooDeclaresPrunableAndSymmetric) {
  for (const auto& pred : evaluator_zoo()) {
    EXPECT_TRUE(pred->prunable()) << pred->name();
    EXPECT_TRUE(pred->symmetric()) << pred->name();
  }
}

TEST(StepEvaluators, DefaultTraitsAreConservative) {
  // A custom predicate that overrides nothing gets the whole-pattern
  // fallback evaluator and neither trait -- the engine then neither
  // prunes on its violations nor symmetry-reduces.
  class EveryOther final : public Predicate {
   public:
    std::string name() const override { return "every-other"; }
    std::string description() const override { return "rounds() is even"; }
    bool holds(const FaultPattern& p) const override {
      return p.rounds() % 2 == 0;
    }
  };
  EveryOther pred;
  EXPECT_FALSE(pred.prunable());
  EXPECT_FALSE(pred.symmetric());
  // The fallback evaluator still reports exact per-prefix verdicts.
  check_evaluator_conformance(pred, 2, 3);
}

TEST(StepEvaluators, HoldsAllPrefixesSeesNonPrefixClosedViolations) {
  // holds() accepts any 2-round pattern, but the 1-round prefix fails:
  // holds_all_prefixes must say false even though holds says true.
  class ExactlyTwoRounds final : public Predicate {
   public:
    std::string name() const override { return "exactly-two-rounds"; }
    std::string description() const override { return "rounds() == 2"; }
    bool holds(const FaultPattern& p) const override {
      return p.rounds() == 2;
    }
  };
  ExactlyTwoRounds pred;
  FaultPattern p(3);
  p.append(uniform_round(3, ProcessSet(3)));
  p.append(uniform_round(3, ProcessSet(3)));
  EXPECT_TRUE(pred.holds(p));
  EXPECT_FALSE(pred.holds_all_prefixes(p));
}

// ---------------------------------------------------------------------------
// AndPredicate trait propagation
// ---------------------------------------------------------------------------

/// Not prefix-closed: a faulty prefix is repaired by a quiet final round.
/// Also not symmetric in spirit -- but declares neither trait, which is
/// exactly what a conjunction must respect.
class LastRoundQuiet final : public Predicate {
 public:
  std::string name() const override { return "last-round-quiet"; }
  std::string description() const override {
    return "the final round suspects nobody";
  }
  bool holds(const FaultPattern& p) const override {
    return p.rounds() == 0 || p.round_union(p.rounds()).empty();
  }
};

TEST(AndPredicateTraits, ConjunctionIsOnlyAsStrongAsItsWeakestPart) {
  // prunable()/symmetric() must be the AND over all conjuncts: one
  // non-prefix-closed part poisons the whole conjunction. A conjunction
  // that ignored the weak part would let the engine prune away patterns
  // whose violations later repair.
  auto weak = std::make_shared<LastRoundQuiet>();
  ASSERT_FALSE(weak->prunable());
  ASSERT_FALSE(weak->symmetric());

  auto mixed = all_of("bound-and-quiet",
                      {std::make_shared<PerRoundFaultBound>(1), weak});
  EXPECT_FALSE(mixed->prunable());
  EXPECT_FALSE(mixed->symmetric());

  // Order must not matter.
  auto flipped = all_of("quiet-and-bound",
                        {weak, std::make_shared<PerRoundFaultBound>(1)});
  EXPECT_FALSE(flipped->prunable());
  EXPECT_FALSE(flipped->symmetric());

  // All-strong conjunctions keep both traits.
  auto strong = all_of("bound-and-immortal",
                       {std::make_shared<PerRoundFaultBound>(1),
                        std::make_shared<ImmortalProcess>()});
  EXPECT_TRUE(strong->prunable());
  EXPECT_TRUE(strong->symmetric());

  // Nested conjunctions propagate transitively.
  auto nested = all_of("nested", {strong, mixed});
  EXPECT_FALSE(nested->prunable());
  EXPECT_FALSE(nested->symmetric());
}

TEST(AndPredicateTraits, FallbackEvaluatorStaysExactForWeakConjunction) {
  auto mixed = all_of("bound-and-quiet",
                      {std::make_shared<PerRoundFaultBound>(1),
                       std::make_shared<LastRoundQuiet>()});
  check_evaluator_conformance(*mixed, 2, 3);
  check_evaluator_conformance(*mixed, 3, 2);
}

TEST(AndPredicateTraits, EngineFindsViolationsBehindRepairedPrefixes) {
  // Regression for unsound pruning: every 2-round pattern satisfying
  // bound-and-quiet with a fault in round 1 violates NeverFaulty, and
  // every such pattern has a violating (non-quiet) 1-round prefix. If
  // the conjunction wrongly claimed prunable(), the engine would cut
  // those subtrees after the prefix violation and "prove" the bogus
  // implication bound-and-quiet => never-faulty.
  auto mixed = all_of("bound-and-quiet",
                      {std::make_shared<PerRoundFaultBound>(1),
                       std::make_shared<LastRoundQuiet>()});
  for (const EnginePath path : {EnginePath::kWord, EnginePath::kSet}) {
    EnumOptions options;
    options.path = path;
    const ImplicationResult r =
        implies_exhaustive(*mixed, *std::make_shared<NeverFaulty>(), 2, 2,
                           options);
    EXPECT_FALSE(r.holds);
    ASSERT_TRUE(r.counterexample.has_value());
    EXPECT_TRUE(mixed->holds(*r.counterexample));
    EXPECT_FALSE(NeverFaulty().holds(*r.counterexample));
    // The witness necessarily passes through a violated prefix.
    EXPECT_FALSE(mixed->holds_all_prefixes(*r.counterexample));
  }
}

}  // namespace
}  // namespace rrfd::core
