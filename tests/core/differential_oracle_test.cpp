// Differential oracle suite: the word path held against the set path
// everywhere both exist (DESIGN.md "Word arenas").
//
// Three layers, one contract each:
//  * evaluators: push_round_words and push_round are independently
//    written implementations of the same predicate semantics, so a seeded
//    random push/pop walk must produce verdict-identical streams --
//    including on an evaluator that mixes the two representations
//    call-for-call;
//  * submodel search: EnumOptions::path=kWord feeds odometer digits to
//    the evaluators directly; it must reproduce the kSet verdicts,
//    counterexamples, and every EnumStats counter exactly, under both
//    symmetry settings and under a threaded shard runner (this suite is
//    in the TSan CI net for that reason);
//  * engine: randomized configurations (n, adversary, seed, horizon,
//    stop rule) must give byte-identical RunResults and trace streams on
//    both EnginePath settings.
//
// engine_equivalence_test.cpp covers the engine on a fixed grid; this
// suite adds the randomized sweep and the evaluator/submodel layers.
#include "core/submodel.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "agreement/flood_min.h"
#include "core/adversaries.h"
#include "core/engine.h"
#include "core/predicates.h"
#include "core/words.h"
#include "sweep/submodel_parallel.h"
#include "trace/trace.h"
#include "util/rng.h"

namespace rrfd::core {
namespace {

struct NamedPredicate {
  std::string name;
  PredicatePtr pred;
};

/// Every zoo factory, parameterized so each is satisfiable at size n.
/// Together these instantiate all twelve evaluator cores (the factories
/// compose NeverFaulty and ImmortalProcess, which have no standalone
/// factory of their own).
std::vector<NamedPredicate> zoo(int n) {
  const int f = n > 2 ? n / 2 : 1;
  std::vector<NamedPredicate> out;
  out.push_back({"sync_omission", sync_omission(f)});
  out.push_back({"sync_crash", sync_crash(f)});
  out.push_back({"async_message_passing", async_message_passing(f)});
  out.push_back({"swmr_shared_memory", swmr_shared_memory(f)});
  out.push_back({"swmr_shared_memory_alt", swmr_shared_memory_alt(f)});
  out.push_back({"atomic_snapshot", atomic_snapshot(f)});
  out.push_back({"detector_s", detector_s()});
  out.push_back({"k_uncertainty", k_uncertainty(f)});
  out.push_back({"equal_announcements", equal_announcements()});
  out.push_back({"quorum_skew", quorum_skew(f + 1, f)});
  return out;
}

/// A legal round as digits: each D(i,r) uniform over every set except S.
std::vector<std::uint64_t> random_round_words(Rng& rng, int n) {
  std::vector<std::uint64_t> d(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) d[static_cast<std::size_t>(i)] =
      rng.below(full_mask(n));
  return d;
}

RoundFaults materialize(const std::vector<std::uint64_t>& d, int n) {
  RoundFaults round;
  round.reserve(d.size());
  for (std::uint64_t bits : d) round.push_back(ProcessSet::from_bits(n, bits));
  return round;
}

TEST(DifferentialOracle, EvaluatorWordAndSetVerdictsMatchOnRandomWalks) {
  // Three evaluators of the same predicate walk one seeded push/pop
  // sequence: one fed sets, one words, one alternating per call. Any
  // divergence pins the word core of that predicate. Terminal verdicts
  // are retracted immediately, exactly as the DFS backtracks on them.
  for (int n : {1, 2, 3, 5, 8, 16, 33, 63, 64}) {
    for (std::uint64_t seed : {1u, 77u, 4242u}) {
      for (const NamedPredicate& entry : zoo(n)) {
        Rng rng(seed * 1000003u + static_cast<std::uint64_t>(n));
        std::unique_ptr<StepEvaluator> set_eval = entry.pred->evaluator();
        std::unique_ptr<StepEvaluator> word_eval = entry.pred->evaluator();
        std::unique_ptr<StepEvaluator> mixed_eval = entry.pred->evaluator();
        const Round horizon = 12;
        set_eval->begin(n, horizon);
        word_eval->begin(n, horizon);
        mixed_eval->begin(n, horizon);
        int depth = 0;
        for (int step = 0; step < 64; ++step) {
          if (depth > 0 && (depth >= horizon || rng.below(4) == 0)) {
            set_eval->pop_round();
            word_eval->pop_round();
            mixed_eval->pop_round();
            --depth;
            continue;
          }
          const std::vector<std::uint64_t> d = random_round_words(rng, n);
          const RoundFaults round = materialize(d, n);
          const StepVerdict vs = set_eval->push_round(round);
          const StepVerdict vw = word_eval->push_round_words(d.data(), n);
          const StepVerdict vm = step % 2 == 0
                                     ? mixed_eval->push_round_words(d.data(), n)
                                     : mixed_eval->push_round(round);
          ++depth;
          EXPECT_EQ(static_cast<int>(vs), static_cast<int>(vw))
              << entry.name << " n=" << n << " seed=" << seed
              << " step=" << step;
          EXPECT_EQ(static_cast<int>(vs), static_cast<int>(vm))
              << entry.name << " (mixed) n=" << n << " seed=" << seed
              << " step=" << step;
          if (vs != StepVerdict::kSatisfiedSoFar) {
            // Backtrack off the terminal verdict, as the search would.
            set_eval->pop_round();
            word_eval->pop_round();
            mixed_eval->pop_round();
            --depth;
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Custom predicates exercise the materializing push_round_words default:
// a predicate that overrides only holds() gets the whole-pattern fallback
// evaluator, whose word entry point must bridge to the set entry point
// with identical three-valued verdicts.
// ---------------------------------------------------------------------------

/// Not prefix-closed: the parity of total suspicions flips per miss, so a
/// violated prefix recovers one push later.
class EvenTotalMisses final : public Predicate {
 public:
  std::string name() const override { return "even-total-misses"; }
  std::string description() const override {
    return "sum over rounds and processes of |D(i,r)| is even";
  }
  bool holds(const FaultPattern& p) const override {
    int total = 0;
    for (Round r = 1; r <= p.rounds(); ++r) {
      for (ProcId i = 0; i < p.n(); ++i) total += p.d(i, r).size();
    }
    return total % 2 == 0;
  }
};

/// Asymmetric: process 0 is distinguished, so renaming breaks it. Also
/// prefix-closed in truth but deliberately left with default traits.
class Pinned final : public Predicate {
 public:
  std::string name() const override { return "pinned-zero"; }
  std::string description() const override {
    return "process 0 is never suspected";
  }
  bool holds(const FaultPattern& p) const override {
    for (Round r = 1; r <= p.rounds(); ++r) {
      if (p.round_union(r).contains(0)) return false;
    }
    return true;
  }
};

TEST(DifferentialOracle, DefaultWordBridgeMatchesSetPathOnCustomPredicates) {
  // Same three-evaluator seeded walk as the zoo sweep above, but over
  // predicates that never wrote a word core -- the default bridge must
  // materialize each round and reproduce push_round verdicts exactly,
  // including verdict streams that recover after kViolatedForever.
  std::vector<NamedPredicate> customs;
  customs.push_back({"even_total_misses", std::make_shared<EvenTotalMisses>()});
  customs.push_back({"pinned_zero", std::make_shared<Pinned>()});
  for (int n : {1, 2, 3, 5, 16, 63, 64}) {
    for (std::uint64_t seed : {7u, 5151u}) {
      for (const NamedPredicate& entry : customs) {
        Rng rng(seed * 1000003u + static_cast<std::uint64_t>(n));
        std::unique_ptr<StepEvaluator> set_eval = entry.pred->evaluator();
        std::unique_ptr<StepEvaluator> word_eval = entry.pred->evaluator();
        std::unique_ptr<StepEvaluator> mixed_eval = entry.pred->evaluator();
        const Round horizon = 10;
        set_eval->begin(n, horizon);
        word_eval->begin(n, horizon);
        mixed_eval->begin(n, horizon);
        FaultPattern prefix(n);
        for (int step = 0; step < 64; ++step) {
          if (prefix.rounds() > 0 &&
              (prefix.rounds() >= horizon || rng.below(4) == 0)) {
            set_eval->pop_round();
            word_eval->pop_round();
            mixed_eval->pop_round();
            prefix.pop_round();
            continue;
          }
          const std::vector<std::uint64_t> d = random_round_words(rng, n);
          const RoundFaults round = materialize(d, n);
          const StepVerdict vs = set_eval->push_round(round);
          const StepVerdict vw = word_eval->push_round_words(d.data(), n);
          const StepVerdict vm =
              step % 2 == 0 ? mixed_eval->push_round_words(d.data(), n)
                            : mixed_eval->push_round(round);
          prefix.append(round);
          EXPECT_EQ(static_cast<int>(vs), static_cast<int>(vw))
              << entry.name << " n=" << n << " seed=" << seed
              << " step=" << step;
          EXPECT_EQ(static_cast<int>(vs), static_cast<int>(vm))
              << entry.name << " (mixed) n=" << n << " seed=" << seed
              << " step=" << step;
          // The fallback evaluator stays exact even past violations, so
          // no backtrack-on-terminal here: non-prunable predicates must
          // keep reporting correct verdicts below a violated prefix.
          EXPECT_EQ(vs != StepVerdict::kViolatedForever,
                    entry.pred->holds(prefix))
              << entry.name << " n=" << n << " seed=" << seed;
        }
      }
    }
  }
}

void expect_same_search(const ImplicationResult& word,
                        const ImplicationResult& set,
                        const std::string& what) {
  EXPECT_EQ(word.holds, set.holds) << what;
  EXPECT_EQ(word.patterns_checked, set.patterns_checked) << what;
  ASSERT_EQ(word.counterexample.has_value(), set.counterexample.has_value())
      << what;
  if (word.counterexample.has_value()) {
    EXPECT_EQ(*word.counterexample, *set.counterexample) << what;
  }
  EXPECT_EQ(word.stats.nodes, set.stats.nodes) << what;
  EXPECT_EQ(word.stats.leaves, set.stats.leaves) << what;
  EXPECT_EQ(word.stats.pruned_subtrees, set.stats.pruned_subtrees) << what;
  EXPECT_EQ(word.stats.patterns_decided, set.stats.patterns_decided) << what;
  EXPECT_EQ(word.stats.expanded_roots, set.stats.expanded_roots) << what;
  EXPECT_EQ(word.stats.total_roots, set.stats.total_roots) << what;
  EXPECT_EQ(word.stats.symmetry_used, set.stats.symmetry_used) << what;
  EXPECT_EQ(word.stats.shards, set.stats.shards) << what;
}

TEST(DifferentialOracle, SubmodelSearchMatchesAcrossPathsOnCustomPredicates) {
  // The DFS drives custom predicates through the bridge on the word path
  // (default traits: no pruning, no symmetry folding) -- searches must
  // agree counter-for-counter with the set path.
  const auto even = std::make_shared<EvenTotalMisses>();
  const auto pinned = std::make_shared<Pinned>();
  const auto never = std::make_shared<NeverFaulty>();
  const int n = 3;
  const Round rounds = 2;
  const std::vector<std::pair<PredicatePtr, PredicatePtr>> pairs = {
      {even, never},  {never, even},   {pinned, even},
      {even, pinned}, {pinned, never}, {never, pinned}};
  for (const auto& [a, b] : pairs) {
    EnumOptions options;
    options.path = EnginePath::kWord;
    const ImplicationResult word =
        implies_exhaustive(*a, *b, n, rounds, options);
    options.path = EnginePath::kSet;
    const ImplicationResult set =
        implies_exhaustive(*a, *b, n, rounds, options);
    expect_same_search(word, set, a->name() + " => " + b->name());
    // Refutations must be genuine on both paths.
    if (!word.holds) {
      ASSERT_TRUE(word.counterexample.has_value());
      EXPECT_TRUE(a->holds(*word.counterexample));
      EXPECT_FALSE(b->holds(*word.counterexample));
    }
  }
}

TEST(DifferentialOracle, SubmodelSearchMatchesAcrossPathsAndSymmetry) {
  // Every ordered zoo pair at n=3, rounds=2, under both symmetry
  // settings: the word DFS must reproduce the set DFS node-for-node.
  // Both outcomes (holds and refuted-with-counterexample) occur in this
  // grid; neither direction is asserted, only path identity.
  const int n = 3;
  const Round rounds = 2;
  const std::vector<NamedPredicate> preds = zoo(n);
  for (const NamedPredicate& a : preds) {
    for (const NamedPredicate& b : preds) {
      for (Symmetry symmetry : {Symmetry::kAuto, Symmetry::kOff}) {
        EnumOptions options;
        options.symmetry = symmetry;
        options.path = EnginePath::kWord;
        const ImplicationResult word =
            implies_exhaustive(*a.pred, *b.pred, n, rounds, options);
        options.path = EnginePath::kSet;
        const ImplicationResult set =
            implies_exhaustive(*a.pred, *b.pred, n, rounds, options);
        expect_same_search(
            word, set,
            a.name + " => " + b.name +
                (symmetry == Symmetry::kOff ? " (sym off)" : " (sym auto)"));
      }
    }
  }
}

TEST(DifferentialOracle, SubmodelSearchMatchesUnderThreadedRunner) {
  // The word path through the pool-backed shard runner (the TSan target):
  // same answers as the serial set path, and as its own serial run.
  const int n = 3;
  const Round rounds = 2;
  EnumOptions threaded;
  threaded.runner = sweep::shard_runner(4);
  threaded.path = EnginePath::kWord;
  EnumOptions serial;
  serial.path = EnginePath::kSet;
  for (const auto& [a, b] : std::vector<std::pair<std::string, std::string>>{
           {"sync_crash", "sync_omission"},
           {"sync_omission", "sync_crash"},
           {"atomic_snapshot", "async_message_passing"},
           {"equal_announcements", "detector_s"}}) {
    PredicatePtr pa;
    PredicatePtr pb;
    for (const NamedPredicate& entry : zoo(n)) {
      if (entry.name == a) pa = entry.pred;
      if (entry.name == b) pb = entry.pred;
    }
    ASSERT_TRUE(pa && pb) << a << " => " << b;
    expect_same_search(implies_exhaustive(*pa, *pb, n, rounds, threaded),
                       implies_exhaustive(*pa, *pb, n, rounds, serial),
                       a + " => " + b + " (threaded word vs serial set)");
  }
}

TEST(DifferentialOracle, EquivalenceCheckMatchesAcrossPaths) {
  const int n = 3;
  const Round rounds = 2;
  for (Symmetry symmetry : {Symmetry::kAuto, Symmetry::kOff}) {
    EnumOptions options;
    options.symmetry = symmetry;
    options.path = EnginePath::kWord;
    const EquivalenceResult word = equivalent_exhaustive(
        *swmr_shared_memory(1), *swmr_shared_memory_alt(1), n, rounds, options);
    options.path = EnginePath::kSet;
    const EquivalenceResult set = equivalent_exhaustive(
        *swmr_shared_memory(1), *swmr_shared_memory_alt(1), n, rounds, options);
    EXPECT_EQ(word.equivalent(), set.equivalent());
    expect_same_search(word.forward, set.forward, "swmr forward");
    expect_same_search(word.backward, set.backward, "swmr backward");
  }
}

std::unique_ptr<Adversary> random_adversary(Rng& rng, int n,
                                            std::uint64_t seed) {
  const int f =
      n > 2 ? 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(n - 1)))
            : 1;
  switch (rng.below(9)) {
    case 0: return std::make_unique<BenignAdversary>(n);
    case 1: return std::make_unique<OmissionAdversary>(n, f, seed);
    case 2: return std::make_unique<CrashAdversary>(n, f, seed);
    case 3: return std::make_unique<AsyncAdversary>(n, f, seed);
    case 4: return std::make_unique<SwmrAdversary>(n, f, seed);
    case 5: return std::make_unique<SnapshotAdversary>(n, f, seed);
    case 6: return std::make_unique<KUncertaintyAdversary>(n, f, seed);
    case 7: return std::make_unique<ImmortalAdversary>(n, seed);
    default: return std::make_unique<EqualAdversary>(n, seed);
  }
}

TEST(DifferentialOracle, EngineRunsMatchAcrossPathsOnRandomConfigs) {
  // Randomized engine configurations: everything observable -- the
  // RunResult (pattern, rounds, decisions, all_decided) and the full
  // trace event stream -- must be identical on both paths.
  Rng rng(0xd1ffu);
  for (int trial = 0; trial < 60; ++trial) {
    const int n = 2 + static_cast<int>(rng.below(63));
    const std::uint64_t seed = rng();
    std::unique_ptr<Adversary> adv = random_adversary(rng, n, seed);
    EngineOptions options;
    options.max_rounds = 1 + static_cast<Round>(rng.below(10));
    options.stop_when_all_decided = rng.chance(0.5);
    const Round decide_round =
        1 + static_cast<Round>(rng.below(
                static_cast<std::uint64_t>(options.max_rounds)));
    auto make = [&] {
      std::vector<agreement::FloodMin> ps;
      ps.reserve(static_cast<std::size_t>(n));
      for (ProcId i = 0; i < n; ++i) {
        ps.emplace_back(static_cast<int>((i * 7 + trial) % n), decide_round);
      }
      return ps;
    };

    trace::CaptureRecorder word_trace;
    std::vector<agreement::FloodMin> word_ps = make();
    options.path = EnginePath::kWord;
    RunResult<int> word = [&] {
      trace::ScopedTrace scoped(&word_trace);
      return run_rounds(word_ps, *adv, options);
    }();

    adv->reset();
    trace::CaptureRecorder set_trace;
    std::vector<agreement::FloodMin> set_ps = make();
    options.path = EnginePath::kSet;
    RunResult<int> set = [&] {
      trace::ScopedTrace scoped(&set_trace);
      return run_rounds(set_ps, *adv, options);
    }();

    EXPECT_EQ(word.pattern, set.pattern) << "trial " << trial;
    EXPECT_EQ(word.rounds, set.rounds) << "trial " << trial;
    EXPECT_EQ(word.all_decided, set.all_decided) << "trial " << trial;
    EXPECT_EQ(word.decisions, set.decisions) << "trial " << trial;
    ASSERT_EQ(word_trace.events().size(), set_trace.events().size())
        << "trial " << trial << " adversary " << adv->name();
    for (std::size_t k = 0; k < word_trace.events().size(); ++k) {
      EXPECT_EQ(word_trace.events()[k], set_trace.events()[k])
          << "trial " << trial << " event " << k;
    }
  }
}

}  // namespace
}  // namespace rrfd::core
