// Suffix-count memoization held against the plain DFS and the naive
// odometer (DESIGN.md "Suffix memoization").
//
// The memo contract is that transposition tables are *unobservable*
// except through the memo_* counters: every other statistic, the holds
// verdict, the counterexample, and the budget behaviour must be exactly
// those of the unmemoized search, on both engine paths, under both
// symmetry modes, at any thread count. These suites enforce that
// differentially across the whole zoo and the compiled Heard-Of catalog,
// and separately test the state_bytes canonicality contract the tables
// rest on: equal keys must imply identical verdict behaviour under any
// common suffix, including across evaluator instances and across
// prefixes of different depths.
#include "core/submodel.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/predicates.h"
#include "core/words.h"
#include "ho/catalog.h"
#include "sweep/submodel_parallel.h"
#include "util/check.h"
#include "util/rng.h"

namespace rrfd::core {
namespace {

struct NamedPredicate {
  std::string name;
  PredicatePtr pred;
};

/// Every zoo factory, parameterized to be satisfiable at size n.
std::vector<NamedPredicate> zoo(int n) {
  const int f = n > 2 ? n / 2 : 1;
  std::vector<NamedPredicate> out;
  out.push_back({"sync_omission", sync_omission(f)});
  out.push_back({"sync_crash", sync_crash(f)});
  out.push_back({"async_message_passing", async_message_passing(f)});
  out.push_back({"swmr_shared_memory", swmr_shared_memory(f)});
  out.push_back({"swmr_shared_memory_alt", swmr_shared_memory_alt(f)});
  out.push_back({"atomic_snapshot", atomic_snapshot(f)});
  out.push_back({"detector_s", detector_s()});
  out.push_back({"k_uncertainty", k_uncertainty(f)});
  out.push_back({"equal_announcements", equal_announcements()});
  out.push_back({"quorum_skew", quorum_skew(f + 1, f)});
  return out;
}

EnumOptions opts_with(Memo memo, EnginePath path, Symmetry sym,
                      int threads = 0) {
  EnumOptions o;
  o.memo = memo;
  o.path = path;
  o.symmetry = sym;
  if (threads > 0) o.runner = sweep::shard_runner(threads);
  return o;
}

/// Full-result equality, including every statistic. Memoization promises
/// that everything except the memo_* counters matches the unmemoized
/// run; when `include_memo` the counters themselves must match too
/// (memo-vs-memo comparisons across thread counts).
void expect_same(const ImplicationResult& ref, const ImplicationResult& got,
                 bool include_memo, const std::string& what) {
  EXPECT_EQ(ref.holds, got.holds) << what;
  EXPECT_EQ(ref.patterns_checked, got.patterns_checked) << what;
  ASSERT_EQ(ref.counterexample.has_value(), got.counterexample.has_value())
      << what;
  if (ref.counterexample.has_value()) {
    EXPECT_EQ(*ref.counterexample, *got.counterexample) << what;
  }
  EXPECT_EQ(ref.stats.nodes, got.stats.nodes) << what;
  EXPECT_EQ(ref.stats.leaves, got.stats.leaves) << what;
  EXPECT_EQ(ref.stats.pruned_subtrees, got.stats.pruned_subtrees) << what;
  EXPECT_EQ(ref.stats.patterns_decided, got.stats.patterns_decided) << what;
  EXPECT_EQ(ref.stats.expanded_roots, got.stats.expanded_roots) << what;
  EXPECT_EQ(ref.stats.total_roots, got.stats.total_roots) << what;
  EXPECT_EQ(ref.stats.symmetry_used, got.stats.symmetry_used) << what;
  if (include_memo) {
    EXPECT_EQ(ref.stats.memo_hits, got.stats.memo_hits) << what;
    EXPECT_EQ(ref.stats.memo_misses, got.stats.memo_misses) << what;
    EXPECT_EQ(ref.stats.memo_entries, got.stats.memo_entries) << what;
  }
}

TEST(SubmodelMemo, MatchesPlainDfsAcrossZooPairs) {
  // Every ordered pair from a zoo slice, n = 3, 2 rounds: memo-on must
  // reproduce the memo-off run stat-for-stat on both engine paths and
  // under both symmetry modes. The slice keeps the pair sweep fast but
  // spans the distinct evaluator families (per-round cores, cumulative
  // masks, conjunctions, the immortal/cumulative pair).
  const auto all = zoo(3);
  const std::vector<std::size_t> picks = {0, 2, 5, 6, 7};
  for (const std::size_t ia : picks) {
    for (const std::size_t ib : picks) {
      for (const EnginePath path : {EnginePath::kWord, EnginePath::kSet}) {
        for (const Symmetry sym : {Symmetry::kOff, Symmetry::kAuto}) {
          const auto off = implies_exhaustive(
              *all[ia].pred, *all[ib].pred, 3, 2,
              opts_with(Memo::kOff, path, sym));
          const auto on = implies_exhaustive(
              *all[ia].pred, *all[ib].pred, 3, 2,
              opts_with(Memo::kOn, path, sym));
          expect_same(off, on, /*include_memo=*/false,
                      all[ia].name + " => " + all[ib].name);
          EXPECT_EQ(off.stats.memo_hits, 0);
          EXPECT_EQ(off.stats.memo_entries, 0);
        }
      }
    }
  }
}

TEST(SubmodelMemo, MatchesPlainDfsAtThreeRounds) {
  // Deeper tables: n = 2 keeps 3 rounds cheap enough to sweep the whole
  // zoo pairwise. Three rounds exercise entries at two distinct
  // remaining-round levels plus the seed table.
  const auto all = zoo(2);
  for (const auto& a : all) {
    for (const auto& b : all) {
      for (const Symmetry sym : {Symmetry::kOff, Symmetry::kAuto}) {
        const auto off = implies_exhaustive(
            *a.pred, *b.pred, 2, 3, opts_with(Memo::kOff, EnginePath::kWord,
                                              sym));
        const auto on = implies_exhaustive(
            *a.pred, *b.pred, 2, 3, opts_with(Memo::kOn, EnginePath::kWord,
                                              sym));
        expect_same(off, on, /*include_memo=*/false,
                    a.name + " => " + b.name + " r=3");
      }
    }
  }
}

TEST(SubmodelMemo, MatchesPlainDfsAcrossStandardCatalog) {
  // The compiled Heard-Of evaluators key through the structural fold in
  // ho/compile.cpp -- a different state_bytes implementation family than
  // the zoo's, so they get their own differential sweep.
  const auto catalog = ho::standard_catalog();
  ASSERT_FALSE(catalog.empty());
  const auto ref = detector_s();
  for (const auto& m : catalog) {
    for (const EnginePath path : {EnginePath::kWord, EnginePath::kSet}) {
      const auto off = implies_exhaustive(
          *m.pred, *ref, 3, 2, opts_with(Memo::kOff, path, Symmetry::kAuto));
      const auto on = implies_exhaustive(
          *m.pred, *ref, 3, 2, opts_with(Memo::kOn, path, Symmetry::kAuto));
      expect_same(off, on, /*include_memo=*/false, m.name + " => detector_s");
      const auto off_b = implies_exhaustive(
          *ref, *m.pred, 3, 2, opts_with(Memo::kOff, path, Symmetry::kAuto));
      const auto on_b = implies_exhaustive(
          *ref, *m.pred, 3, 2, opts_with(Memo::kOn, path, Symmetry::kAuto));
      expect_same(off_b, on_b, /*include_memo=*/false,
                  "detector_s => " + m.name);
    }
  }
}

TEST(SubmodelMemo, MatchesNaiveOdometer) {
  // Ground truth below both engines: the unpruned odometer. The engine's
  // holds verdict must agree with a literal scan for counterexamples,
  // and a holding implication must decide the entire space.
  struct Case {
    PredicatePtr a;
    PredicatePtr b;
    int n;
    Round rounds;
  };
  const std::vector<Case> cases = {
      {std::make_shared<ImmortalProcess>(),
       std::make_shared<CumulativeFaultBound>(2), 3, 2},
      {k_uncertainty(2), k_uncertainty(1), 2, 3},
      {sync_omission(1), async_message_passing(1), 2, 3},
  };
  for (const auto& c : cases) {
    std::int64_t violations = 0;
    const std::int64_t space = enumerate_patterns(
        c.n, c.rounds, [&](const FaultPattern& p) {
          if (c.a->holds(p) && !c.b->holds(p)) ++violations;
          return true;
        });
    for (const Memo memo : {Memo::kOff, Memo::kOn}) {
      const auto r = implies_exhaustive(
          *c.a, *c.b, c.n, c.rounds,
          opts_with(memo, EnginePath::kWord, Symmetry::kOff));
      EXPECT_EQ(r.holds, violations == 0);
      if (r.holds) {
        EXPECT_EQ(r.stats.patterns_decided, space);
      } else {
        ASSERT_TRUE(r.counterexample.has_value());
        EXPECT_TRUE(c.a->holds(*r.counterexample));
        EXPECT_FALSE(c.b->holds(*r.counterexample));
      }
    }
  }
}

TEST(SubmodelMemo, ResultsIdenticalAtAnyThreadCount) {
  // The repeated-state workload (detector-S <=> cumulative bound at the
  // critical f) where memoization actually fires: the sharded runs must
  // be byte-identical to the serial one *including* the memo counters --
  // tables are per-shard plus the serial seed table, so hit/miss/entry
  // totals are fixed by the shard layout, never by the schedule.
  const ImmortalProcess immortal;
  const CumulativeFaultBound bound(2);
  const auto serial = implies_exhaustive(
      immortal, bound, 3, 2,
      opts_with(Memo::kOn, EnginePath::kWord, Symmetry::kAuto));
  EXPECT_GT(serial.stats.memo_hits, 0);
  EXPECT_GT(serial.stats.memo_entries, 0);
  for (const int threads : {1, 2, 4, 8}) {
    const auto sharded = implies_exhaustive(
        immortal, bound, 3, 2,
        opts_with(Memo::kOn, EnginePath::kWord, Symmetry::kAuto, threads));
    expect_same(serial, sharded, /*include_memo=*/true,
                "threads=" + std::to_string(threads));
  }
}

TEST(SubmodelMemo, CounterexampleIdenticalWithAndWithoutMemo) {
  // A refuted implication: 2-uncertainty does not imply 1-uncertainty.
  // The first counterexample in deterministic engine order must be the
  // same pattern whether or not subtrees were skipped via the tables
  // (entries are only ever created for counterexample-free subtrees).
  const auto a = k_uncertainty(2);
  const auto b = k_uncertainty(1);
  for (const Symmetry sym : {Symmetry::kOff, Symmetry::kAuto}) {
    for (const int threads : {0, 4}) {
      const auto off = implies_exhaustive(
          *a, *b, 3, 2, opts_with(Memo::kOff, EnginePath::kWord, sym,
                                  threads));
      const auto on = implies_exhaustive(
          *a, *b, 3, 2, opts_with(Memo::kOn, EnginePath::kWord, sym,
                                  threads));
      ASSERT_FALSE(off.holds);
      expect_same(off, on, /*include_memo=*/false, "counterexample order");
    }
  }
}

TEST(SubmodelMemo, BudgetExceededIdenticalWithAndWithoutMemo) {
  // Memo hits account the replayed subtree's full node mass, so a search
  // that exhausts the budget unmemoized exhausts it memoized too (and
  // vice versa) -- the ContractViolation must fire either way.
  const ImmortalProcess immortal;
  const CumulativeFaultBound bound(2);
  for (const Memo memo : {Memo::kOff, Memo::kOn}) {
    auto o = opts_with(memo, EnginePath::kWord, Symmetry::kOff);
    o.node_budget = 50;
    EXPECT_THROW(implies_exhaustive(immortal, bound, 3, 2, o),
                 ContractViolation);
  }
}

TEST(SubmodelMemo, CountersOffWhenDisabledOrUseless) {
  const ImmortalProcess immortal;
  const CumulativeFaultBound bound(2);
  // kOff: tables never consulted.
  const auto off = implies_exhaustive(
      immortal, bound, 3, 2,
      opts_with(Memo::kOff, EnginePath::kWord, Symmetry::kAuto));
  EXPECT_EQ(off.stats.memo_hits, 0);
  EXPECT_EQ(off.stats.memo_misses, 0);
  EXPECT_EQ(off.stats.memo_entries, 0);
  // One round: every inner node is a root; nothing to memoize even kOn.
  const auto r1 = implies_exhaustive(
      immortal, bound, 3, 1,
      opts_with(Memo::kOn, EnginePath::kWord, Symmetry::kAuto));
  EXPECT_EQ(r1.stats.memo_hits, 0);
  EXPECT_EQ(r1.stats.memo_entries, 0);
  // kAuto == kOn wherever both are sound.
  const auto on = implies_exhaustive(
      immortal, bound, 3, 2,
      opts_with(Memo::kOn, EnginePath::kWord, Symmetry::kAuto));
  const auto aut = implies_exhaustive(
      immortal, bound, 3, 2,
      opts_with(Memo::kAuto, EnginePath::kWord, Symmetry::kAuto));
  expect_same(on, aut, /*include_memo=*/true, "kAuto == kOn");
}

/// Overrides only holds(): gets the whole-pattern fallback evaluator,
/// which has unbounded state and therefore no key.
class ParityPredicate final : public Predicate {
 public:
  std::string name() const override { return "parity"; }
  std::string description() const override {
    return "total announced-set size over all rounds is even";
  }
  bool holds(const FaultPattern& p) const override {
    int total = 0;
    for (Round r = 1; r <= p.rounds(); ++r) {
      for (ProcId i = 0; i < p.n(); ++i) total += p.d(i, r).size();
    }
    return total % 2 == 0;
  }
};

TEST(SubmodelMemo, KeylessEvaluatorsFallBackToPlainDfs) {
  // A predicate on the whole-pattern fallback cannot be keyed; Memo::kOn
  // must quietly run the plain DFS (zero memo counters), not misbehave.
  const ParityPredicate parity;
  EXPECT_FALSE(parity.evaluator()->state_key().has_value());
  const CumulativeFaultBound bound(1);
  const auto off = implies_exhaustive(
      parity, bound, 2, 2, opts_with(Memo::kOff, EnginePath::kWord,
                                     Symmetry::kOff));
  const auto on = implies_exhaustive(
      parity, bound, 2, 2, opts_with(Memo::kOn, EnginePath::kWord,
                                     Symmetry::kOff));
  expect_same(off, on, /*include_memo=*/true, "keyless fallback");
  EXPECT_EQ(on.stats.memo_hits, 0);
  EXPECT_EQ(on.stats.memo_entries, 0);
}

// ---------------------------------------------------------------------------
// The state_bytes canonicality contract (core/predicate.h): equal keys
// must imply identical verdict behaviour under any common suffix that
// never pops below the keyed depth -- across instances and across
// prefixes of different depths. Memo soundness is exactly this property.
// ---------------------------------------------------------------------------

std::vector<std::uint64_t> random_round_words(Rng& rng, int n) {
  std::vector<std::uint64_t> d(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    d[static_cast<std::size_t>(i)] = rng.below(full_mask(n));
  }
  return d;
}

/// All predicates whose evaluators claim a key: the zoo plus the
/// immortal/cumulative/monotonicity cores plus the compiled catalog.
std::vector<NamedPredicate> keyed_predicates(int n) {
  std::vector<NamedPredicate> out = zoo(n);
  out.push_back({"immortal", std::make_shared<ImmortalProcess>()});
  out.push_back({"cumulative_1", std::make_shared<CumulativeFaultBound>(1)});
  out.push_back({"crash_monotonicity", std::make_shared<CrashMonotonicity>()});
  out.push_back(
      {"no_self_suspicion_exempt", std::make_shared<NoSelfSuspicion>(true)});
  for (auto& m : ho::standard_catalog()) {
    out.push_back({"ho_" + m.name, m.pred});
  }
  return out;
}

TEST(SubmodelStateKey, WholeZooAndCatalogAreKeyable) {
  // The memo's reach: if one of these quietly loses its key, memoization
  // silently degrades to the plain DFS and nobody notices until a bench
  // regresses. Pin keyability itself.
  for (const auto& entry : keyed_predicates(3)) {
    const auto eval = entry.pred->evaluator();
    eval->begin(3, 4);
    EXPECT_TRUE(eval->state_key().has_value()) << entry.name;
  }
}

TEST(SubmodelStateKey, EqualKeysImplyEqualSuffixBehaviour) {
  // Random prefix walks are bucketed by key; any two prefixes sharing a
  // key are replayed on fresh instances and driven through common random
  // suffixes, which must produce identical verdict streams. This is the
  // property the transposition tables assume, tested with no engine in
  // the loop.
  const int n = 3;
  const Round horizon = 8;
  const int kPrefixes = 48;
  for (const auto& entry : keyed_predicates(n)) {
    Rng rng(0x5eedu + static_cast<std::uint64_t>(entry.name.size()));
    // Key (as a byte string) -> list of prefixes (as digit rounds)
    // reaching it.
    std::map<std::string,
             std::vector<std::vector<std::vector<std::uint64_t>>>> buckets;
    for (int p = 0; p < kPrefixes; ++p) {
      const int depth = static_cast<int>(rng.below(5));
      std::vector<std::vector<std::uint64_t>> prefix;
      const auto eval = entry.pred->evaluator();
      eval->begin(n, horizon);
      for (int d = 0; d < depth; ++d) {
        prefix.push_back(random_round_words(rng, n));
        eval->push_round_words(prefix.back().data(), n);
      }
      const auto key = eval->state_key();
      ASSERT_TRUE(key.has_value()) << entry.name;
      buckets[std::string(key->begin(), key->end())].push_back(
          std::move(prefix));
    }
    for (const auto& [key, prefixes] : buckets) {
      if (prefixes.size() < 2) continue;
      for (std::size_t j = 1; j < std::min<std::size_t>(prefixes.size(), 4);
           ++j) {
        // Fresh instances at the two keyed states.
        const auto e1 = entry.pred->evaluator();
        const auto e2 = entry.pred->evaluator();
        e1->begin(n, horizon);
        e2->begin(n, horizon);
        for (const auto& round : prefixes[0]) {
          e1->push_round_words(round.data(), n);
        }
        for (const auto& round : prefixes[j]) {
          e2->push_round_words(round.data(), n);
        }
        // A common suffix walk, never popping below the prefixes.
        int suffix_depth = 0;
        const int base = static_cast<int>(
            std::max(prefixes[0].size(), prefixes[j].size()));
        for (int step = 0; step < 24; ++step) {
          const bool can_push = base + suffix_depth < horizon;
          if (suffix_depth > 0 && (!can_push || rng.below(4) == 0)) {
            e1->pop_round();
            e2->pop_round();
            --suffix_depth;
            continue;
          }
          if (!can_push) break;
          const auto d = random_round_words(rng, n);
          const StepVerdict v1 = e1->push_round_words(d.data(), n);
          const StepVerdict v2 = e2->push_round_words(d.data(), n);
          ++suffix_depth;
          ASSERT_EQ(static_cast<int>(v1), static_cast<int>(v2))
              << entry.name << " step=" << step;
          if (v1 != StepVerdict::kSatisfiedSoFar) {
            // Backtrack off terminal verdicts, as the search would.
            e1->pop_round();
            e2->pop_round();
            --suffix_depth;
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace rrfd::core
