// The engine is generic over message and decision types; these tests
// exercise it with non-trivial payloads (strings, structs) and richer
// round logic than the int-based suites.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "core/adversaries.h"
#include "core/engine.h"

namespace rrfd::core {
namespace {

// ---------------------------------------------------------------------------
// String gossip: each process accumulates the lexicographically smallest
// name it has heard.
// ---------------------------------------------------------------------------

struct Gossip {
  using Message = std::string;
  using Decision = std::string;

  std::string name;
  Round decide_round = 2;
  bool done = false;

  std::string emit(Round) const { return name; }

  void absorb(Round r, const DeliveryView<std::string>& view,
              const ProcessSet&) {
    for (ProcId j : view.senders()) {
      if (view[j] < name) name = view[j];
    }
    done = r >= decide_round;
  }

  bool decided() const { return done; }
  std::string decision() const { return name; }
};

TEST(EngineGeneric, StringMessagesFlood) {
  std::vector<Gossip> ps;
  for (const char* n : {"delta", "alpha", "echo", "bravo"}) {
    ps.push_back(Gossip{n, 1, false});
  }
  BenignAdversary adv(4);
  auto result = run_rounds(ps, adv);
  for (const auto& d : result.decisions) EXPECT_EQ(*d, "alpha");
}

TEST(EngineGeneric, StringMessagesUnderFaults) {
  std::vector<Gossip> ps;
  for (const char* n : {"zulu", "alpha", "mike", "kilo", "echo"}) {
    ps.push_back(Gossip{n, 3, false});
  }
  // Everyone always misses p1 ("alpha"): it must never propagate.
  FaultPattern p(5);
  for (int r = 0; r < 3; ++r) {
    RoundFaults round;
    for (ProcId i = 0; i < 5; ++i) {
      round.push_back(i == 1 ? ProcessSet(5) : ProcessSet(5, {1}));
    }
    p.append(round);
  }
  ScriptedAdversary adv(p);
  auto result = run_rounds(ps, adv);
  EXPECT_EQ(*result.decisions[0], "echo");
  EXPECT_EQ(*result.decisions[1], "alpha");  // p1 keeps its own
  EXPECT_EQ(*result.decisions[4], "echo");
}

// ---------------------------------------------------------------------------
// Struct messages carrying per-round metadata.
// ---------------------------------------------------------------------------

struct Tagged {
  Round round = 0;
  ProcId origin = -1;
  int hops = 0;
};

struct Relay {
  using Message = Tagged;
  using Decision = int;

  ProcId id;
  int n;
  Tagged best{};  // deepest-travelled message seen
  Round horizon;

  Tagged emit(Round r) const {
    Tagged out = best;
    out.round = r;
    if (out.origin < 0) out.origin = id;
    return out;
  }

  void absorb(Round r, const DeliveryView<Tagged>& view, const ProcessSet&) {
    for (ProcId j : view.senders()) {
      const Tagged& m = view[j];
      EXPECT_EQ(m.round, r) << "engine must not mix rounds";
      if (m.hops + 1 > best.hops) {
        best = m;
        best.hops = m.hops + 1;
      }
    }
  }

  bool decided() const { return best.hops >= horizon; }
  int decision() const { return best.hops; }
};

TEST(EngineGeneric, StructMessagesCountHops) {
  const int n = 3;
  std::vector<Relay> ps;
  for (ProcId i = 0; i < n; ++i) {
    ps.push_back(Relay{i, n, {}, /*horizon=*/4});
  }
  BenignAdversary adv(n);
  auto result = run_rounds(ps, adv);
  EXPECT_EQ(result.rounds, 4);
  for (const auto& d : result.decisions) EXPECT_EQ(*d, 4);
}

// ---------------------------------------------------------------------------
// Decision types beyond int.
// ---------------------------------------------------------------------------

struct SetCollector {
  using Message = std::uint64_t;
  using Decision = ProcessSet;

  ProcId id;
  int n;
  ProcessSet heard_ever;
  bool done = false;

  SetCollector(ProcId id_, int n_) : id(id_), n(n_), heard_ever(n_) {}

  std::uint64_t emit(Round) const { return heard_ever.bits(); }

  void absorb(Round r, const DeliveryView<std::uint64_t>& view,
              const ProcessSet&) {
    for (ProcId j : view.senders()) {
      heard_ever.add(j);
      heard_ever |= ProcessSet::from_bits(n, view[j]);
    }
    done = r >= 2;
  }

  bool decided() const { return done; }
  ProcessSet decision() const { return heard_ever; }
};

TEST(EngineGeneric, ProcessSetDecisions) {
  const int n = 4;
  std::vector<SetCollector> ps;
  for (ProcId i = 0; i < n; ++i) ps.emplace_back(i, n);
  SwmrAdversary adv(n, 1, /*seed=*/5);
  auto result = run_rounds(ps, adv);
  ASSERT_TRUE(result.all_decided);
  // Transitive hearing over two SWMR rounds must cover everyone: each
  // round someone is heard by all, so its accumulated set spreads.
  int covered = 0;
  for (const auto& d : result.decisions) covered += d->full();
  EXPECT_GT(covered, 0);
}

}  // namespace
}  // namespace rrfd::core
