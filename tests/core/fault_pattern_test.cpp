#include "core/fault_pattern.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace rrfd::core {
namespace {

FaultPattern two_round_pattern() {
  // n = 4.
  // round 1: D(0)={1}, D(1)={}, D(2)={1,3}, D(3)={}
  // round 2: D(0)={2}, D(1)={2}, D(2)={},   D(3)={2}
  FaultPattern p(4);
  p.append({ProcessSet(4, {1}), ProcessSet(4), ProcessSet(4, {1, 3}),
            ProcessSet(4)});
  p.append({ProcessSet(4, {2}), ProcessSet(4, {2}), ProcessSet(4),
            ProcessSet(4, {2})});
  return p;
}

TEST(FaultPattern, EmptyPattern) {
  FaultPattern p(3);
  EXPECT_EQ(p.rounds(), 0);
  EXPECT_TRUE(p.cumulative_union().empty());
}

TEST(FaultPattern, AppendAndAccess) {
  FaultPattern p = two_round_pattern();
  EXPECT_EQ(p.rounds(), 2);
  EXPECT_EQ(p.d(0, 1), ProcessSet(4, {1}));
  EXPECT_EQ(p.d(2, 1), ProcessSet(4, {1, 3}));
  EXPECT_EQ(p.d(2, 2), ProcessSet(4));
}

TEST(FaultPattern, RoundAccessIsOneBased) {
  FaultPattern p = two_round_pattern();
  EXPECT_THROW((void)p.d(0, 0), ContractViolation);
  EXPECT_THROW((void)p.d(0, 3), ContractViolation);
  EXPECT_THROW((void)p.round(0), ContractViolation);
}

TEST(FaultPattern, ProcessIndexIsChecked) {
  FaultPattern p = two_round_pattern();
  EXPECT_THROW((void)p.d(4, 1), ContractViolation);
  EXPECT_THROW((void)p.d(-1, 1), ContractViolation);
}

TEST(FaultPattern, RejectsWrongWidthRound) {
  FaultPattern p(3);
  EXPECT_THROW(p.append({ProcessSet(3), ProcessSet(3)}), ContractViolation);
}

TEST(FaultPattern, RejectsWrongSystemSize) {
  FaultPattern p(3);
  EXPECT_THROW(p.append({ProcessSet(4), ProcessSet(4), ProcessSet(4)}),
               ContractViolation);
}

TEST(FaultPattern, RejectsFullDSet) {
  // "Not all processes can be late": D(i,r) == S is structurally invalid.
  FaultPattern p(3);
  EXPECT_THROW(
      p.append({ProcessSet::all(3), ProcessSet(3), ProcessSet(3)}),
      ContractViolation);
}

TEST(FaultPattern, RoundUnionAndIntersection) {
  FaultPattern p = two_round_pattern();
  EXPECT_EQ(p.round_union(1), ProcessSet(4, {1, 3}));
  EXPECT_EQ(p.round_intersection(1), ProcessSet(4));
  EXPECT_EQ(p.round_union(2), ProcessSet(4, {2}));
  EXPECT_EQ(p.round_intersection(2), ProcessSet(4));
}

TEST(FaultPattern, IntersectionOfUniformRound) {
  FaultPattern p(3);
  p.append(uniform_round(3, ProcessSet(3, {0, 1})));
  EXPECT_EQ(p.round_intersection(1), ProcessSet(3, {0, 1}));
  EXPECT_EQ(p.round_union(1), ProcessSet(3, {0, 1}));
}

TEST(FaultPattern, CumulativeUnion) {
  FaultPattern p = two_round_pattern();
  EXPECT_EQ(p.cumulative_union(1), ProcessSet(4, {1, 3}));
  EXPECT_EQ(p.cumulative_union(2), ProcessSet(4, {1, 2, 3}));
  EXPECT_EQ(p.cumulative_union(), ProcessSet(4, {1, 2, 3}));
  EXPECT_TRUE(p.cumulative_union(0).empty());
}

TEST(FaultPattern, Prefix) {
  FaultPattern p = two_round_pattern();
  FaultPattern q = p.prefix(1);
  EXPECT_EQ(q.rounds(), 1);
  EXPECT_EQ(q.d(2, 1), ProcessSet(4, {1, 3}));
  EXPECT_EQ(p.prefix(0).rounds(), 0);
  EXPECT_THROW((void)p.prefix(3), ContractViolation);
}

TEST(FaultPattern, UniformRoundHelper) {
  RoundFaults r = uniform_round(5, ProcessSet(5, {2}));
  ASSERT_EQ(r.size(), 5u);
  for (const ProcessSet& d : r) EXPECT_EQ(d, ProcessSet(5, {2}));
}

TEST(FaultPattern, UnionOverHelpers) {
  RoundFaults r{ProcessSet(3, {0}), ProcessSet(3, {0, 1}), ProcessSet(3, {0})};
  EXPECT_EQ(union_over(r), ProcessSet(3, {0, 1}));
  EXPECT_EQ(intersection_over(r), ProcessSet(3, {0}));
}

TEST(FaultPattern, ToStringMentionsEveryRound) {
  FaultPattern p = two_round_pattern();
  const std::string s = p.to_string();
  EXPECT_NE(s.find("round 1"), std::string::npos);
  EXPECT_NE(s.find("round 2"), std::string::npos);
}

}  // namespace
}  // namespace rrfd::core
