// The engine's two round loops held against each other.
//
// EnginePath::kSet is the original per-ProcessSet loop; EnginePath::kWord
// is the SoA word-arena rewrite (DESIGN.md "Word arenas"). The contract is
// observational identity: same RunResult bytes (pattern, rounds, decisions),
// same trace event stream, same adversary RNG consumption. This suite
// replays seeded adversaries through both loops -- and additionally holds
// the delivered views against the pre-DeliveryView inbox semantics (one
// vector<optional<Message>> per recipient per round), recomputed here from
// the recorded pattern as an independent oracle.
#include "core/engine.h"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "agreement/flood_min.h"
#include "core/adversaries.h"
#include "trace/trace.h"

namespace rrfd::core {
namespace {

/// Emits its id, materializes every view it receives (the inbox oracle
/// needs the post-hoc copy; views die with the absorb call), decides after
/// `decide_after` rounds on the set of peers heard in the final round.
struct Recorder {
  using Message = int;
  using Decision = std::uint64_t;

  ProcId id = 0;
  Round decide_after = 1;
  Round rounds_seen = 0;
  std::vector<std::vector<std::optional<int>>> inboxes;
  std::vector<ProcessSet> fault_sets;

  int emit(Round) { return id; }

  void absorb(Round r, const DeliveryView<int>& view, const ProcessSet& d) {
    EXPECT_EQ(view.faults(), d);
    EXPECT_EQ(view.senders(), d.complement());
    rounds_seen = r;
    std::vector<std::optional<int>> inbox(static_cast<std::size_t>(view.n()));
    for (ProcId j : view.senders()) {
      inbox[static_cast<std::size_t>(j)] = view[j];
      EXPECT_EQ(view.get(j), &view[j]);
    }
    for (ProcId j : d) EXPECT_EQ(view.get(j), nullptr);
    inboxes.push_back(std::move(inbox));
    fault_sets.push_back(d);
  }

  bool decided() const { return rounds_seen >= decide_after; }
  std::uint64_t decision() const {
    if (fault_sets.empty()) return 0;
    ProcessSet heard(fault_sets.back().n());
    for (std::size_t j = 0; j < inboxes.back().size(); ++j) {
      if (inboxes.back()[j]) heard.add(static_cast<ProcId>(j));
    }
    return heard.bits();
  }
};

std::vector<Recorder> recorders(int n, Round decide_after) {
  std::vector<Recorder> ps;
  for (ProcId i = 0; i < n; ++i) {
    Recorder rec;
    rec.id = i;
    rec.decide_after = decide_after;
    ps.push_back(rec);
  }
  return ps;
}

template <typename Decision>
void expect_same_result(const RunResult<Decision>& word,
                        const RunResult<Decision>& set) {
  EXPECT_EQ(word.pattern, set.pattern);
  EXPECT_EQ(word.rounds, set.rounds);
  EXPECT_EQ(word.all_decided, set.all_decided);
  EXPECT_EQ(word.decisions, set.decisions);
}

/// Runs `make_adversary()` through both paths with fresh processes and a
/// reset adversary, requiring byte-identical results and trace streams.
template <typename P>
void expect_paths_agree(std::function<std::vector<P>()> make_processes,
                        Adversary& adversary, EngineOptions options) {
  trace::CaptureRecorder word_trace;
  std::optional<RunResult<typename P::Decision>> word;
  std::vector<P> word_ps = make_processes();
  {
    trace::ScopedTrace scoped(&word_trace);
    options.path = EnginePath::kWord;
    word = run_rounds(word_ps, adversary, options);
  }

  adversary.reset();
  trace::CaptureRecorder set_trace;
  std::optional<RunResult<typename P::Decision>> set;
  std::vector<P> set_ps = make_processes();
  {
    trace::ScopedTrace scoped(&set_trace);
    options.path = EnginePath::kSet;
    set = run_rounds(set_ps, adversary, options);
  }

  expect_same_result(*word, *set);
  ASSERT_EQ(word_trace.events().size(), set_trace.events().size());
  for (std::size_t k = 0; k < word_trace.events().size(); ++k) {
    EXPECT_EQ(word_trace.events()[k], set_trace.events()[k]) << "event " << k;
  }
  adversary.reset();
}

std::vector<AdversaryPtr> zoo(int n, std::uint64_t seed) {
  const int f = n > 2 ? n / 2 : 1;
  std::vector<AdversaryPtr> out;
  out.push_back(std::make_unique<BenignAdversary>(n));
  out.push_back(std::make_unique<OmissionAdversary>(n, f, seed));
  out.push_back(std::make_unique<CrashAdversary>(n, f, seed));
  out.push_back(std::make_unique<AsyncAdversary>(n, f, seed));
  out.push_back(std::make_unique<SwmrAdversary>(n, f, seed));
  out.push_back(std::make_unique<SnapshotAdversary>(n, f, seed));
  out.push_back(std::make_unique<KUncertaintyAdversary>(n, f, seed));
  out.push_back(std::make_unique<ImmortalAdversary>(n, seed));
  out.push_back(std::make_unique<EqualAdversary>(n, seed));
  return out;
}

TEST(EngineEquivalence, RecorderAgreesAcrossAdversaryZoo) {
  for (int n : {2, 3, 5, 8, 17, 33, 64}) {
    for (std::uint64_t seed : {1u, 7u, 1234u}) {
      for (const AdversaryPtr& adv : zoo(n, seed)) {
        EngineOptions options;
        options.max_rounds = 9;
        expect_paths_agree<Recorder>([n] { return recorders(n, 6); }, *adv,
                                     options);
      }
    }
  }
}

TEST(EngineEquivalence, FloodMinBatchAbsorbAgreesAcrossAdversaryZoo) {
  for (int n : {2, 5, 16, 64}) {
    for (std::uint64_t seed : {3u, 99u}) {
      for (const AdversaryPtr& adv : zoo(n, seed)) {
        auto make = [n] {
          std::vector<agreement::FloodMin> ps;
          for (ProcId i = 0; i < n; ++i) {
            // Duplicated and descending inputs exercise argmin ties.
            ps.emplace_back(/*input=*/(n - i) % (n / 2 + 1), /*decide_round=*/4);
          }
          return ps;
        };
        EngineOptions options;
        options.max_rounds = 8;
        expect_paths_agree<agreement::FloodMin>(make, *adv, options);
      }
    }
  }
}

TEST(EngineEquivalence, FloodMinBatchAbsorbMatchesChainLowerBound) {
  // The Corollary 4.2 construction: k crash chains force k+1 decisions out
  // of flood-min truncated at floor(f/k) rounds. The word path must
  // reproduce the violation decisions exactly.
  const int k = 2;
  const int f = 6;
  const int n = k * (f / k) + k + 1;
  ChainAdversary adv(n, f, k);
  auto make = [&] {
    std::vector<agreement::FloodMin> ps;
    const std::vector<int> inputs = adv.violating_inputs();
    for (ProcId i = 0; i < n; ++i) {
      ps.emplace_back(inputs[static_cast<std::size_t>(i)], adv.rounds());
    }
    return ps;
  };
  EngineOptions options;
  options.max_rounds = adv.rounds();
  expect_paths_agree<agreement::FloodMin>(make, adv, options);

  adv.reset();
  std::vector<agreement::FloodMin> ps = make();
  auto result = run_rounds(ps, adv, options);
  EXPECT_EQ(static_cast<int>(result.distinct_decisions().size()), k + 1);
}

TEST(EngineEquivalence, WordViewsMatchInboxSemantics) {
  // Pre-DeliveryView oracle: recompute each recipient's per-round inbox
  // (one optional<Message> per sender) from the recorded pattern and
  // require the materialized views to match it exactly.
  const int n = 11;
  CrashAdversary adv(n, 5, /*seed=*/42);
  std::vector<Recorder> ps = recorders(n, 4);
  EngineOptions options;
  options.max_rounds = 7;
  auto result = run_rounds(ps, adv, options);

  for (ProcId i = 0; i < n; ++i) {
    const Recorder& p = ps[static_cast<std::size_t>(i)];
    ASSERT_EQ(static_cast<Round>(p.inboxes.size()), result.rounds);
    for (Round r = 1; r <= result.rounds; ++r) {
      const ProcessSet& d = result.pattern.d(i, r);
      EXPECT_EQ(p.fault_sets[static_cast<std::size_t>(r - 1)], d);
      for (ProcId j = 0; j < n; ++j) {
        std::optional<int> expected;
        if (!d.contains(j)) expected = j;  // Recorder emits its id
        EXPECT_EQ(p.inboxes[static_cast<std::size_t>(r - 1)]
                           [static_cast<std::size_t>(j)],
                  expected)
            << "i=" << i << " j=" << j << " r=" << r;
      }
    }
  }
}

TEST(EngineEquivalence, WordPathRejectsFullAnnouncementWord) {
  // D(i,r) = S is structurally forbidden; the word path must enforce the
  // same contract FaultPattern::append enforces on the set path.
  class FullAdversary final : public Adversary {
   public:
    int n() const override { return 3; }
    std::string name() const override { return "full"; }
    RoundFaults next_round() override {
      return uniform_round(3, ProcessSet::all(3));
    }
    void next_round_words(std::uint64_t* out) override {
      out[0] = out[1] = out[2] = 0x7;
    }
    void reset() override {}
  };
  FullAdversary adv;
  for (EnginePath path : {EnginePath::kWord, EnginePath::kSet}) {
    std::vector<Recorder> ps = recorders(3, 1);
    EngineOptions options;
    options.path = path;
    EXPECT_THROW(run_rounds(ps, adv, options), ContractViolation);
  }
}

}  // namespace
}  // namespace rrfd::core
