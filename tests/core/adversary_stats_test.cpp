// Statistical sanity of the adversary generators: an adversary that is
// technically inside its predicate but degenerate (never announcing,
// always announcing the same process) would make the property sweeps
// vacuous. These tests pin down that the generators exercise their
// envelopes.
#include <gtest/gtest.h>

#include <map>

#include "core/adversaries.h"

namespace rrfd::core {
namespace {

TEST(AdversaryStats, OmissionPoolIsActuallyExercised) {
  OmissionAdversary adv(8, 3, /*seed=*/5, /*miss_prob=*/0.5);
  FaultPattern p = record_pattern(adv, 50);
  // Every pool member should be announced at least once over 50 rounds.
  EXPECT_EQ(p.cumulative_union(), adv.faulty_pool());
}

TEST(AdversaryStats, OmissionTargetsDifferentObserversDifferently) {
  OmissionAdversary adv(8, 3, /*seed=*/5);
  bool asymmetric = false;
  for (int r = 0; r < 20 && !asymmetric; ++r) {
    RoundFaults round = adv.next_round();
    for (std::size_t i = 1; i < round.size(); ++i) {
      asymmetric = asymmetric || round[i] != round[0];
    }
  }
  EXPECT_TRUE(asymmetric) << "send-omission must be per-observer";
}

TEST(AdversaryStats, AsyncMissSizesSpreadOverTheBound) {
  AsyncAdversary adv(10, 3, /*seed=*/11);
  std::map<int, int> size_histogram;
  for (int r = 0; r < 200; ++r) {
    for (const ProcessSet& d : adv.next_round()) ++size_histogram[d.size()];
  }
  // All sizes 0..f occur, none beyond f.
  for (int s = 0; s <= 3; ++s) EXPECT_GT(size_histogram[s], 0) << s;
  for (const auto& [size, count] : size_histogram) {
    EXPECT_LE(size, 3);
    (void)count;
  }
}

TEST(AdversaryStats, CrashAdversaryEventuallySpendsItsBudget) {
  CrashAdversary adv(8, 3, /*seed=*/2, /*crash_prob=*/0.3);
  for (int r = 0; r < 60; ++r) adv.next_round();
  EXPECT_EQ(adv.announced().size(), 3);
}

TEST(AdversaryStats, CrashAnnouncementsCanBePartialInTheCrashRound) {
  // The essence of a crash: seen by some, missed by others, in one round.
  bool partial = false;
  for (std::uint64_t seed = 0; seed < 40 && !partial; ++seed) {
    CrashAdversary adv(6, 2, seed, 0.5);
    FaultPattern p = record_pattern(adv, 6);
    for (Round r = 1; r <= p.rounds(); ++r) {
      const ProcessSet u = p.round_union(r);
      const ProcessSet x = p.round_intersection(r);
      partial = partial || !(u - x).empty();
    }
  }
  EXPECT_TRUE(partial);
}

TEST(AdversaryStats, SnapshotBlocksVaryInSize) {
  SnapshotAdversary adv(8, 4, /*seed=*/9);
  std::set<int> first_miss_sizes;
  for (int r = 0; r < 100; ++r) {
    RoundFaults round = adv.next_round();
    // The largest D in the chain = misses of the first block's members.
    int largest = 0;
    for (const ProcessSet& d : round) largest = std::max(largest, d.size());
    first_miss_sizes.insert(largest);
  }
  EXPECT_GE(first_miss_sizes.size(), 3u)
      << "partitions should vary, not repeat one shape";
  for (int s : first_miss_sizes) EXPECT_LE(s, 4);
}

TEST(AdversaryStats, SwmrExemptProcessRotates) {
  SwmrAdversary adv(6, 2, /*seed=*/13);
  ProcessSet ever_exempt(6);
  for (int r = 0; r < 100; ++r) {
    RoundFaults round = adv.next_round();
    const ProcessSet announced = union_over(round);
    // Exempt processes this round:
    ever_exempt |= announced.complement();
  }
  EXPECT_EQ(ever_exempt, ProcessSet::all(6))
      << "every process should get its turn at being universally heard";
}

TEST(AdversaryStats, KUncertaintyUsesPartialAnnouncements) {
  KUncertaintyAdversary adv(8, 3, /*seed=*/21);
  int partial_rounds = 0;
  const int rounds = 200;
  for (int r = 0; r < rounds; ++r) {
    RoundFaults round = adv.next_round();
    const ProcessSet diff = union_over(round) - intersection_over(round);
    partial_rounds += !diff.empty();
  }
  EXPECT_GT(partial_rounds, rounds / 4);
}

TEST(AdversaryStats, EqualAdversaryCoversManySets) {
  EqualAdversary adv(6, /*seed=*/31, /*miss_prob=*/0.4);
  std::set<std::uint64_t> seen;
  for (int r = 0; r < 200; ++r) seen.insert(adv.next_round()[0].bits());
  EXPECT_GE(seen.size(), 15u);
}

TEST(AdversaryStats, ImmortalAdversaryAnnouncesEveryoneElse) {
  ImmortalAdversary adv(6, /*seed=*/3, /*immortal=*/2);
  FaultPattern p = record_pattern(adv, 60);
  EXPECT_EQ(p.cumulative_union(), ProcessSet::all(6).without(2));
}

}  // namespace
}  // namespace rrfd::core
