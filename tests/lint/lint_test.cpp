// rrfd_lint behaves as DESIGN.md "Static analysis & determinism lint"
// promises: each rule fires on its golden bad snippet, justified
// suppressions silence findings, justification-free or unused
// suppressions are themselves findings, and the baseline is shrink-only
// (a grown baseline is rejected, a shrunk one passes).
#include "lint/linter.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lexer.h"

namespace rrfd::lint {
namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in) << "cannot open " << p;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Fixtures carry their pseudo-path (which drives rule scoping) in a
/// `// lint-fixture-path: <path>` first line.
std::string fixture_path(const std::string& source) {
  const std::string kTag = "lint-fixture-path:";
  std::size_t at = source.find(kTag);
  EXPECT_NE(at, std::string::npos) << "fixture missing lint-fixture-path";
  std::size_t begin = at + kTag.size();
  std::size_t end = source.find('\n', begin);
  std::string path = source.substr(begin, end - begin);
  std::size_t b = path.find_first_not_of(" \t");
  std::size_t e = path.find_last_not_of(" \t\r");
  return path.substr(b, e - b + 1);
}

std::vector<std::string> active_as_rule_lines(const LintedFile& linted) {
  std::vector<std::string> got;
  got.reserve(linted.active.size());
  for (const Finding& f : linted.active) {
    got.push_back(f.rule + ":" + std::to_string(f.line));
  }
  return got;
}

// ---------------------------------------------------------------------------
// Golden files: every *.violate and *.pass under golden/ is linted at its
// pseudo-path and compared, finding-for-finding, against its *.expected.

struct GoldenCase {
  std::string name;       // fixture stem, e.g. "no-wall-clock"
  fs::path fixture;
  fs::path expected;
};

std::vector<GoldenCase> golden_cases() {
  std::vector<GoldenCase> cases;
  for (const auto& entry : fs::directory_iterator(RRFD_LINT_GOLDEN_DIR)) {
    const fs::path& p = entry.path();
    if (p.extension() != ".violate" && p.extension() != ".pass") continue;
    GoldenCase c;
    c.name = p.stem().string();
    c.fixture = p;
    c.expected = fs::path(p).replace_extension(".expected");
    cases.push_back(std::move(c));
  }
  std::sort(cases.begin(), cases.end(),
            [](const GoldenCase& a, const GoldenCase& b) {
              return a.name < b.name;
            });
  return cases;
}

class LintGolden : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(LintGolden, FindingsMatchExpected) {
  const GoldenCase& c = GetParam();
  std::string source = read_file(c.fixture);
  LintedFile linted = lint_source(fixture_path(source), source);

  std::vector<std::string> want;
  std::istringstream is(read_file(c.expected));
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty()) want.push_back(line);
  }
  EXPECT_EQ(active_as_rule_lines(linted), want);

  // A .violate fixture must fail a run end-to-end (this is what gates the
  // static-analysis CI job); a .pass fixture must not.
  RunResult run = run_lint({{fixture_path(source), source}}, Baseline{});
  EXPECT_EQ(run.ok(), c.fixture.extension() == ".pass");
}

INSTANTIATE_TEST_SUITE_P(
    Golden, LintGolden, ::testing::ValuesIn(golden_cases()),
    [](const ::testing::TestParamInfo<GoldenCase>& pinfo) {
      std::string name = pinfo.param.name;
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

// Every registry rule must have a .violate golden fixture: adding a rule
// without demonstrating it fires is a test hole.
TEST(LintGoldenCoverage, EveryRuleHasAViolateFixture) {
  for (const Rule* rule : all_rules()) {
    fs::path fixture = fs::path(RRFD_LINT_GOLDEN_DIR) /
                       (std::string(rule->name()) + ".violate");
    EXPECT_TRUE(fs::exists(fixture))
        << "missing golden fixture for rule " << rule->name();
  }
}

// ---------------------------------------------------------------------------
// Suppressions

TEST(LintSuppression, JustifiedAllowSilences) {
  const std::string src =
      "// rrfd-lint: allow(no-wall-clock) -- demo timestamp only\n"
      "int t = static_cast<int>(clock());\n";
  LintedFile linted = lint_source("src/x.cpp", src);
  EXPECT_TRUE(linted.active.empty());
  ASSERT_EQ(linted.suppressed.size(), 1u);
  EXPECT_EQ(linted.suppressed[0].rule, "no-wall-clock");
}

TEST(LintSuppression, EmDashJustificationAccepted) {
  const std::string src =
      "// rrfd-lint: allow(no-wall-clock) \xe2\x80\x94 demo timestamp only\n"
      "int t = static_cast<int>(clock());\n";
  LintedFile linted = lint_source("src/x.cpp", src);
  EXPECT_TRUE(linted.active.empty());
  EXPECT_EQ(linted.suppressed.size(), 1u);
}

TEST(LintSuppression, MissingJustificationKeepsFindingAndFlagsComment) {
  const std::string src =
      "// rrfd-lint: allow(no-wall-clock)\n"
      "int t = static_cast<int>(clock());\n";
  LintedFile linted = lint_source("src/x.cpp", src);
  ASSERT_EQ(linted.active.size(), 2u);
  EXPECT_EQ(linted.active[0].rule, kBadSuppressionRule);
  EXPECT_EQ(linted.active[1].rule, "no-wall-clock");
  EXPECT_TRUE(linted.suppressed.empty());
}

TEST(LintSuppression, WrongRuleDoesNotSilence) {
  const std::string src =
      "// rrfd-lint: allow(no-raw-random) -- wrong rule named\n"
      "int t = static_cast<int>(clock());\n";
  LintedFile linted = lint_source("src/x.cpp", src);
  // The clock finding stays, and the allow is unused.
  ASSERT_EQ(linted.active.size(), 2u);
  EXPECT_EQ(linted.active[0].rule, kBadSuppressionRule);
  EXPECT_EQ(linted.active[1].rule, "no-wall-clock");
}

TEST(LintSuppression, UnusedAllowIsAFinding) {
  const std::string src =
      "// rrfd-lint: allow(no-wall-clock) -- nothing to suppress\n"
      "int t = 7;\n";
  LintedFile linted = lint_source("src/x.cpp", src);
  ASSERT_EQ(linted.active.size(), 1u);
  EXPECT_EQ(linted.active[0].rule, kBadSuppressionRule);
}

TEST(LintSuppression, ProseMentionIsNotASuppression) {
  const std::string src =
      "// The syntax is rrfd-lint: allow(rule) -- justification.\n"
      "int t = 7;\n";
  LintedFile linted = lint_source("src/x.cpp", src);
  EXPECT_TRUE(linted.active.empty());
}

TEST(LintSuppression, MultiLineJustificationAnchorsBelowBlock) {
  // A justification too long for one line wraps onto further comment
  // lines; the suppression guards the first code line after the block.
  const std::string src =
      "// rrfd-lint: allow(no-wall-clock) -- display-only timestamp: the\n"
      "// value never feeds back into scheduling, hashing, or any other\n"
      "// result-affecting path.\n"
      "int t = static_cast<int>(clock());\n";
  LintedFile linted = lint_source("src/x.cpp", src);
  EXPECT_TRUE(linted.active.empty());
  ASSERT_EQ(linted.suppressed.size(), 1u);
  EXPECT_EQ(linted.suppressed[0].line, 4);
}

TEST(LintSuppression, MultiLineBlockDoesNotReachPastCode) {
  // The block ends at the first non-comment line: a violation two code
  // lines below the comment is NOT covered.
  const std::string src =
      "// rrfd-lint: allow(no-wall-clock) -- wrapped justification text\n"
      "// continuing on a second line.\n"
      "int a = 7;\n"
      "int t = static_cast<int>(clock());\n";
  LintedFile linted = lint_source("src/x.cpp", src);
  ASSERT_EQ(linted.active.size(), 2u);
  EXPECT_EQ(linted.active[0].rule, kBadSuppressionRule);  // unused allow
  EXPECT_EQ(linted.active[1].rule, "no-wall-clock");
}

TEST(LintSuppression, MultiLineBlockEndsAtNextTag) {
  // A new rrfd-lint tag starts its own block: the first allow does not
  // swallow the second and stretch down to its code line.
  const std::string src =
      "// rrfd-lint: allow(no-wall-clock) -- stale leftover comment\n"
      "// rrfd-lint: allow(no-raw-random) -- demo seed for the README\n"
      "int t = rand();\n";
  LintedFile linted = lint_source("src/x.cpp", src);
  ASSERT_EQ(linted.suppressed.size(), 1u);
  EXPECT_EQ(linted.suppressed[0].rule, "no-raw-random");
  // The first allow matches nothing and is flagged as unused.
  ASSERT_EQ(linted.active.size(), 1u);
  EXPECT_EQ(linted.active[0].rule, kBadSuppressionRule);
  EXPECT_EQ(linted.active[0].line, 1);
}

TEST(LintSuppression, MultiRuleAllowCoversBoth) {
  const std::string src =
      "// rrfd-lint: allow(no-wall-clock, no-raw-random) -- demo seed\n"
      "int t = static_cast<int>(clock()) + rand();\n";
  LintedFile linted = lint_source("src/x.cpp", src);
  EXPECT_TRUE(linted.active.empty());
  EXPECT_EQ(linted.suppressed.size(), 2u);
}

// ---------------------------------------------------------------------------
// Baseline: shrink-only

TEST(LintBaseline, ParkedFindingPasses) {
  const std::string src = "std::mt19937 gen(1);\n";
  LintedFile linted = lint_source("src/x.cpp", src);
  ASSERT_EQ(linted.active.size(), 1u);

  Baseline baseline;
  baseline.entries.push_back(baseline_entry(linted.active[0]));
  RunResult run = run_lint({{"src/x.cpp", src}}, baseline);
  EXPECT_TRUE(run.ok());
  EXPECT_EQ(run.baselined.size(), 1u);
  EXPECT_TRUE(run.unsuppressed.empty());
}

TEST(LintBaseline, GrownBaselineIsRejected) {
  const std::string src = "std::mt19937 gen(1);\n";
  LintedFile linted = lint_source("src/x.cpp", src);
  ASSERT_EQ(linted.active.size(), 1u);

  Baseline baseline;
  baseline.entries.push_back(baseline_entry(linted.active[0]));
  // "Growing" the baseline: an entry for a finding that does not exist.
  baseline.entries.push_back(
      "no-wall-clock|src/other.cpp|0123456789abcdef");
  RunResult run = run_lint({{"src/x.cpp", src}}, baseline);
  EXPECT_FALSE(run.ok());
  ASSERT_EQ(run.stale_baseline.size(), 1u);
  EXPECT_EQ(run.stale_baseline[0],
            "no-wall-clock|src/other.cpp|0123456789abcdef");
}

TEST(LintBaseline, ShrunkBaselinePassesAfterFix) {
  // The violation was fixed and its entry removed: nothing stale, nothing
  // unsuppressed.
  RunResult run = run_lint({{"src/x.cpp", "int t = 7;\n"}}, Baseline{});
  EXPECT_TRUE(run.ok());
}

TEST(LintBaseline, FingerprintIgnoresLineNumbers) {
  const std::string before = "std::mt19937 gen(1);\n";
  const std::string after = "\n\n// moved down by edits above\n"
                            "std::mt19937 gen(1);\n";
  LintedFile a = lint_source("src/x.cpp", before);
  LintedFile b = lint_source("src/x.cpp", after);
  ASSERT_EQ(a.active.size(), 1u);
  ASSERT_EQ(b.active.size(), 1u);
  EXPECT_NE(a.active[0].line, b.active[0].line);
  EXPECT_EQ(finding_fingerprint(a.active[0]), finding_fingerprint(b.active[0]));
}

TEST(LintBaseline, MalformedEntriesFailTheRun) {
  Baseline baseline = parse_baseline(
      "# comment\n"
      "\n"
      "no-wall-clock|src/x.cpp|0123456789abcdef\n"
      "not a well formed line\n");
  EXPECT_EQ(baseline.entries.size(), 1u);
  ASSERT_EQ(baseline.malformed.size(), 1u);
  RunResult run = run_lint({}, baseline);
  EXPECT_FALSE(run.ok());
}

// ---------------------------------------------------------------------------
// Lexer: rules must never match inside comments or strings.

TEST(LintLexer, CommentsAndStringsAreNotCode) {
  const std::string src =
      "// mt19937 in a comment\n"
      "/* std::random_device in a block comment */\n"
      "const char* s = \"mt19937 rand() steady_clock\";\n"
      "const char* r = R\"(getenv(\"HOME\"))\";\n";
  LintedFile linted = lint_source("src/x.cpp", src);
  EXPECT_TRUE(linted.active.empty());
}

TEST(LintLexer, StringContentIsPreservedForEnvRule) {
  LexResult lexed = lex("getenv(\"RRFD_TRACE\")");
  ASSERT_EQ(lexed.tokens.size(), 4u);
  EXPECT_EQ(lexed.tokens[2].kind, TokKind::kString);
  EXPECT_EQ(lexed.tokens[2].text, "RRFD_TRACE");
}

TEST(LintLexer, DigitSeparatorsAreNotCharLiterals) {
  LexResult lexed = lex("int x = 1'000'000;");
  ASSERT_EQ(lexed.tokens.size(), 5u);
  EXPECT_EQ(lexed.tokens[3].kind, TokKind::kNumber);
  EXPECT_EQ(lexed.tokens[3].text, "1'000'000");
}

TEST(LintLexer, PreprocessorContinuationsSplice) {
  LexResult lexed = lex("#define FOO(a) \\\n  bar(a)\nint x;");
  ASSERT_GE(lexed.tokens.size(), 1u);
  EXPECT_EQ(lexed.tokens[0].kind, TokKind::kPreproc);
  EXPECT_NE(lexed.tokens[0].text.find("bar"), std::string::npos);
}

TEST(LintLexer, LineCommentContinuationSwallowsNextLine) {
  // Translation phase 2: a backslash-newline inside a // comment splices
  // the next line into the comment. `rand()` below is comment text, not
  // code, and must never reach the rules.
  LexResult lexed = lex("// hidden \\\nrand();\nint x;");
  ASSERT_EQ(lexed.tokens.size(), 3u);  // int x ;
  EXPECT_EQ(lexed.tokens[0].text, "int");
  ASSERT_EQ(lexed.comments.size(), 1u);
  EXPECT_EQ(lexed.comments[0].line, 1);
  EXPECT_EQ(lexed.comments[0].end_line, 2);
  EXPECT_NE(lexed.comments[0].text.find("rand"), std::string::npos);
  // And end-to-end: no finding from the spliced-away line.
  LintedFile linted = lint_source("src/x.cpp", "// ok \\\nrand();\n");
  EXPECT_TRUE(linted.active.empty());
}

TEST(LintLexer, LineCommentCrlfContinuation) {
  LexResult lexed = lex("// hidden \\\r\nrand();\nint x;");
  ASSERT_EQ(lexed.tokens.size(), 3u);
  EXPECT_EQ(lexed.comments.size(), 1u);
  EXPECT_EQ(lexed.comments[0].end_line, 2);
}

TEST(LintLexer, RawStringCustomDelimiter) {
  // The inner )" must not close a raw string with a custom delimiter;
  // only )delim" does.
  LexResult lexed = lex("auto s = R\"delim(rand() )\" )delim\";");
  ASSERT_EQ(lexed.tokens.size(), 5u);  // auto s = <string> ;
  EXPECT_EQ(lexed.tokens[3].kind, TokKind::kString);
  EXPECT_EQ(lexed.tokens[3].text, "rand() )\" ");
  // End-to-end: the rand() inside the literal is not a finding.
  LintedFile linted =
      lint_source("src/x.cpp", "auto s = R\"delim(rand() )\" )delim\";\n");
  EXPECT_TRUE(linted.active.empty());
}

TEST(LintLexer, RawStringPrefixedVariants) {
  for (const char* prefix : {"R", "u8R", "uR", "UR", "LR"}) {
    std::string src = std::string(prefix) + "\"(clock())\"";
    LexResult lexed = lex(src);
    ASSERT_EQ(lexed.tokens.size(), 1u) << prefix;
    EXPECT_EQ(lexed.tokens[0].kind, TokKind::kString) << prefix;
    EXPECT_EQ(lexed.tokens[0].text, "clock()") << prefix;
  }
}

TEST(LintLexer, CharLiteralPrefixedVariants) {
  for (const char* prefix : {"u8", "u", "U", "L"}) {
    std::string src = std::string(prefix) + "'x'";
    LexResult lexed = lex(src);
    ASSERT_EQ(lexed.tokens.size(), 1u) << prefix;
    EXPECT_EQ(lexed.tokens[0].kind, TokKind::kChar) << prefix;
  }
}

// ---------------------------------------------------------------------------
// Reports

TEST(LintReport, JsonIsOneRecordPerLinePlusSummary) {
  RunResult run = run_lint({{"src/x.cpp", "std::mt19937 gen(1);\n"}},
                           Baseline{});
  std::string json = render_json(run);
  int lines = 0;
  std::istringstream is(json);
  std::string line;
  while (std::getline(is, line)) {
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"schema\":\"rrfd-lint-v1\""), std::string::npos);
  }
  EXPECT_EQ(lines, 2);  // one finding + summary
  EXPECT_NE(json.find("\"ok\":false"), std::string::npos);
}

TEST(LintReport, TextSummaryCountsEverything) {
  RunResult run = run_lint({{"src/x.cpp", "std::mt19937 gen(1);\n"}},
                           Baseline{});
  std::string text = render_text(run);
  EXPECT_NE(text.find("[no-raw-random]"), std::string::npos);
  EXPECT_NE(text.find("1 files, 1 findings"), std::string::npos);
}

TEST(LintReport, SarifCarriesRulesAndResults) {
  RunResult run = run_lint({{"src/x.cpp", "std::mt19937 gen(1);\n"}},
                           Baseline{});
  std::string sarif = render_sarif(run);
  EXPECT_NE(sarif.find("\"version\":\"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\":\"rrfd_lint\""), std::string::npos);
  // Every registry rule is described, plus the driver's bad-suppression.
  for (const Rule* rule : all_rules()) {
    EXPECT_NE(sarif.find("\"id\":\"" + std::string(rule->name()) + "\""),
              std::string::npos)
        << rule->name();
  }
  EXPECT_NE(sarif.find("\"id\":\"bad-suppression\""), std::string::npos);
  // The live finding is an error result with a location and fingerprint.
  EXPECT_NE(sarif.find("\"ruleId\":\"no-raw-random\""), std::string::npos);
  EXPECT_NE(sarif.find("\"level\":\"error\""), std::string::npos);
  EXPECT_NE(sarif.find("\"uri\":\"src/x.cpp\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\":1"), std::string::npos);
  EXPECT_NE(sarif.find("rrfdLintFingerprint/v1"), std::string::npos);
  EXPECT_EQ(sarif.find("\"suppressions\""), std::string::npos);
}

TEST(LintReport, SarifMarksSuppressedAndBaselined) {
  const std::string suppressed_src =
      "// rrfd-lint: allow(no-wall-clock) -- demo output only\n"
      "int t = static_cast<int>(clock());\n";
  const std::string parked_src = "std::mt19937 gen(1);\n";
  LintedFile parked = lint_source("src/y.cpp", parked_src);
  ASSERT_EQ(parked.active.size(), 1u);
  Baseline baseline;
  baseline.entries.push_back(baseline_entry(parked.active[0]));

  RunResult run = run_lint(
      {{"src/x.cpp", suppressed_src}, {"src/y.cpp", parked_src}}, baseline);
  ASSERT_TRUE(run.ok());
  std::string sarif = render_sarif(run);
  EXPECT_NE(sarif.find("\"suppressions\":[{\"kind\":\"inSource\"}]"),
            std::string::npos);
  EXPECT_NE(sarif.find("\"suppressions\":[{\"kind\":\"external\"}]"),
            std::string::npos);
  EXPECT_EQ(sarif.find("\"level\":\"error\""), std::string::npos);
}

}  // namespace
}  // namespace rrfd::lint
