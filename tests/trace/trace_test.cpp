// The flight recorder itself: sinks, the JSONL wire format, and the
// ContractViolation context hook.
#include "trace/trace.h"

#include <gtest/gtest.h>

#include <sstream>

#include "util/check.h"
#include "util/log.h"

namespace rrfd::trace {
namespace {

TraceEvent make_event(EventKind kind, std::int32_t proc, std::int32_t round,
                      std::uint64_t a = 0, std::uint64_t b = 0,
                      Substrate sub = Substrate::kEngine) {
  TraceEvent ev;
  ev.kind = kind;
  ev.substrate = sub;
  ev.proc = proc;
  ev.round = round;
  ev.a = a;
  ev.b = b;
  return ev;
}

// ---------------------------------------------------------------------------
// Tracer + sinks
// ---------------------------------------------------------------------------

TEST(Tracer, OffByDefaultAndRecordIsANoOp) {
  ASSERT_EQ(Tracer::sink(), nullptr);
  EXPECT_FALSE(Tracer::on());
  record(EventKind::kEmit, Substrate::kEngine, 0, 1, 42);  // must not crash
}

TEST(Tracer, ScopedTraceAttachesAndRestores) {
  CaptureRecorder outer;
  CaptureRecorder inner;
  {
    ScopedTrace attach_outer(&outer);
    EXPECT_TRUE(Tracer::on());
    record(EventKind::kEmit, Substrate::kEngine, 0, 1, 1);
    {
      ScopedTrace attach_inner(&inner);
      record(EventKind::kEmit, Substrate::kEngine, 0, 1, 2);
    }
    record(EventKind::kEmit, Substrate::kEngine, 0, 1, 3);
  }
  EXPECT_FALSE(Tracer::on());
  ASSERT_EQ(outer.events().size(), 2u);
  EXPECT_EQ(outer.events()[0].a, 1u);
  EXPECT_EQ(outer.events()[1].a, 3u);
  ASSERT_EQ(inner.events().size(), 1u);
  EXPECT_EQ(inner.events()[0].a, 2u);
}

TEST(RingRecorder, KeepsOnlyTheTailAndCountsDrops) {
  RingRecorder ring(4);
  ScopedTrace attach(&ring);
  for (std::int32_t k = 0; k < 10; ++k) {
    record(EventKind::kDeliver, Substrate::kMsgpass, k, 1);
  }
  EXPECT_EQ(ring.total(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  const std::vector<TraceEvent> recent = ring.recent();
  ASSERT_EQ(recent.size(), 4u);
  for (std::size_t k = 0; k < recent.size(); ++k) {
    EXPECT_EQ(recent[k].proc, static_cast<std::int32_t>(6 + k));
  }
}

TEST(TeeSink, FansOutToBothSinks) {
  RingRecorder ring(8);
  CaptureRecorder capture;
  TeeSink tee(&ring, &capture);
  ScopedTrace attach(&tee);
  record(EventKind::kCrash, Substrate::kRuntime, 2, 7);
  EXPECT_EQ(ring.total(), 1u);
  ASSERT_EQ(capture.events().size(), 1u);
  EXPECT_EQ(capture.events()[0].proc, 2);
}

TEST(TraceEvent, ToStringNamesKindSubstrateAndFields) {
  const std::string s =
      to_string(make_event(EventKind::kAnnounce, 1, 2, 5, 0));
  EXPECT_NE(s.find("engine"), std::string::npos);
  EXPECT_NE(s.find("announce"), std::string::npos);
  EXPECT_NE(s.find("p=1"), std::string::npos);
  EXPECT_NE(s.find("r=2"), std::string::npos);
}

// ---------------------------------------------------------------------------
// ContractViolation context (the flight-recorder payoff)
// ---------------------------------------------------------------------------

TEST(RingRecorder, ContractViolationCarriesTheEventTail) {
  RingRecorder ring(8);
  ScopedTrace attach(&ring);
  record(EventKind::kRoundStart, Substrate::kMsgpass, 3, 9);
  record(EventKind::kDeliver, Substrate::kMsgpass, 3, 9, 1, 77);
  try {
    RRFD_ENSURE_MSG(false, "synthetic failure");
    FAIL() << "must throw";
  } catch (const ContractViolation& violation) {
    const std::string what = violation.what();
    EXPECT_NE(what.find("synthetic failure"), std::string::npos);
    EXPECT_NE(what.find("trace tail"), std::string::npos);
    EXPECT_NE(what.find("deliver"), std::string::npos);
    EXPECT_NE(what.find("r=9"), std::string::npos);
  }
}

TEST(RingRecorder, NoContextWhenDetached) {
  {
    RingRecorder ring(8);
    ScopedTrace attach(&ring);
    record(EventKind::kRoundStart, Substrate::kMsgpass, 3, 9);
  }
  try {
    RRFD_ENSURE_MSG(false, "synthetic failure");
    FAIL() << "must throw";
  } catch (const ContractViolation& violation) {
    EXPECT_EQ(std::string(violation.what()).find("trace tail"),
              std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// JSONL round-trip
// ---------------------------------------------------------------------------

TEST(Jsonl, WriterThenReaderRoundTripsExactly) {
  std::ostringstream os;
  {
    JsonlWriter writer(os);
    ScopedTrace attach(&writer);
    record(EventKind::kRunBegin, Substrate::kSemisync, 4, 0, 1, 1024);
    record(EventKind::kSchedChoice, Substrate::kSemisync, 2, 0, 3);
    record(EventKind::kDeliver, Substrate::kSemisync, 2, 1, 0,
           static_cast<std::uint64_t>(-7));  // negative payloads survive
    writer.on_log(1, "line with \"quotes\" and\nnewline");
    record(EventKind::kRunEnd, Substrate::kSemisync, -1, 17, 1, 0b1010);
  }

  std::istringstream is(os.str());
  const Trace trace = read_trace(is);
  EXPECT_EQ(trace.schema, kTraceSchema);
  EXPECT_FALSE(trace.git_rev.empty());
  ASSERT_EQ(trace.events.size(), 4u);
  EXPECT_EQ(trace.events[0],
            make_event(EventKind::kRunBegin, 4, 0, 1, 1024,
                       Substrate::kSemisync));
  EXPECT_EQ(trace.events[2].b, static_cast<std::uint64_t>(-7));
  EXPECT_EQ(trace.events[3].proc, -1);
  ASSERT_EQ(trace.logs.size(), 1u);
  EXPECT_EQ(trace.logs[0].first, 1);
  EXPECT_EQ(trace.logs[0].second, "line with \"quotes\" and\nnewline");

  // write_trace(read_trace(x)) is byte-stable.
  std::ostringstream os2;
  write_trace(os2, trace);
  std::istringstream is2(os2.str());
  const Trace again = read_trace(is2);
  EXPECT_EQ(again.events, trace.events);
  EXPECT_EQ(again.logs, trace.logs);
  EXPECT_EQ(again.git_rev, trace.git_rev);
}

TEST(Jsonl, ParserRejectsMissingMetaLine) {
  std::istringstream is(
      "{\"kind\":\"emit\",\"sub\":\"engine\",\"p\":0,\"r\":1,\"a\":0,\"b\":0}\n");
  EXPECT_THROW(read_trace(is), ContractViolation);
}

TEST(Jsonl, ParserRejectsWrongSchema) {
  std::istringstream is("{\"schema\":\"rrfd-trace-v999\",\"git_rev\":\"x\"}\n");
  EXPECT_THROW(read_trace(is), ContractViolation);
}

TEST(Jsonl, ParserRejectsUnknownKind) {
  std::istringstream is(
      "{\"schema\":\"rrfd-trace-v1\",\"git_rev\":\"x\"}\n"
      "{\"kind\":\"teleport\",\"sub\":\"engine\",\"p\":0,\"r\":1,\"a\":0,\"b\":0}\n");
  EXPECT_THROW(read_trace(is), ContractViolation);
}

TEST(Jsonl, ParserRejectsTrailingGarbage) {
  std::istringstream is(
      "{\"schema\":\"rrfd-trace-v1\",\"git_rev\":\"x\"}\n"
      "{\"kind\":\"emit\",\"sub\":\"engine\",\"p\":0,\"r\":1,\"a\":0,\"b\":0}junk\n");
  EXPECT_THROW(read_trace(is), ContractViolation);
}

TEST(Jsonl, ParserFlagsTornLines) {
  // A truncated record -- the tail of an interrupted or interleaved append
  // -- must fail with a diagnostic that names the likely cause, not just a
  // generic parse error.
  std::istringstream is(
      "{\"schema\":\"rrfd-trace-v1\",\"git_rev\":\"x\"}\n"
      "{\"kind\":\"emit\",\"sub\":\"engine\",\"p\":0,\"r\n");
  try {
    read_trace(is);
    FAIL() << "must throw";
  } catch (const ContractViolation& violation) {
    const std::string what = violation.what();
    EXPECT_NE(what.find("torn line"), std::string::npos) << what;
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
  }
}

TEST(Jsonl, CompleteButMalformedLinesAreNotCalledTorn) {
  std::istringstream is(
      "{\"schema\":\"rrfd-trace-v1\",\"git_rev\":\"x\"}\n"
      "{\"kind\":\"emit\",\"sub\":\"engine\",\"p\":zero,\"r\":1,\"a\":0,\"b\":0}\n");
  try {
    read_trace(is);
    FAIL() << "must throw";
  } catch (const ContractViolation& violation) {
    EXPECT_EQ(std::string(violation.what()).find("torn line"),
              std::string::npos);
  }
}

TEST(Jsonl, ParserErrorsNameTheLine) {
  std::istringstream is(
      "{\"schema\":\"rrfd-trace-v1\",\"git_rev\":\"x\"}\n"
      "{\"kind\":\"emit\",\"sub\":\"engine\",\"p\":zero,\"r\":1,\"a\":0,\"b\":0}\n");
  try {
    read_trace(is);
    FAIL() << "must throw";
  } catch (const ContractViolation& violation) {
    EXPECT_NE(std::string(violation.what()).find("line 2"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Log routing through the trace sink (satellite: injectable log sink)
// ---------------------------------------------------------------------------

TEST(LogForwarding, LogLinesLandInTheTraceWhenForwarded) {
  struct LogCapture final : TraceSink {
    void on_event(const TraceEvent&) override {}
    void on_log(int level, const std::string& msg) override {
      lines.emplace_back(level, msg);
    }
    std::vector<std::pair<int, std::string>> lines;
  };

  const LogLevel saved_level = Log::level();
  Log::set_level(LogLevel::kInfo);
  forward_logs_to_trace();

  LogCapture capture;
  {
    ScopedTrace attach(&capture);
    log_info("routed 42");
    log_debug("suppressed by level");
  }
  Log::set_sink(nullptr);
  Log::set_level(saved_level);

  ASSERT_EQ(capture.lines.size(), 1u);
  EXPECT_EQ(capture.lines[0].second, "routed 42");
}

}  // namespace
}  // namespace rrfd::trace
