// Record/replay round-trips on every execution substrate: a run recorded
// by the flight recorder, re-executed from its own trace, must reproduce
// the identical outcome AND the identical event stream.
#include "trace/replay.h"

#include <gtest/gtest.h>

#include <sstream>

#include "agreement/flood_min.h"
#include "core/adversaries.h"
#include "core/engine.h"
#include "msgpass/round_sim.h"
#include "runtime/schedulers.h"
#include "runtime/sim.h"
#include "semisync/network.h"
#include "trace/trace.h"

namespace rrfd::trace {
namespace {

using core::FaultPattern;
using core::ProcId;
using core::ProcessSet;
using core::Round;

/// Serializes a captured event stream through JSONL and back, so every
/// round-trip below also exercises the wire format (byte-identical events
/// after a disk round-trip, not just in-memory equality).
Trace through_jsonl(const CaptureRecorder& capture) {
  std::ostringstream os;
  {
    JsonlWriter writer(os);
    for (const TraceEvent& ev : capture.events()) writer.on_event(ev);
  }
  std::istringstream is(os.str());
  return read_trace(is);
}

// ---------------------------------------------------------------------------
// Engine (core::run_rounds)
// ---------------------------------------------------------------------------

TEST(Replay, EngineRunRoundTripsThroughScriptedAdversary) {
  const int n = 6;
  const int f = 2;
  auto make_procs = [&] {
    std::vector<agreement::FloodMin> ps;
    for (int i = 0; i < n; ++i) ps.emplace_back(/*input=*/i, /*decide_round=*/f + 1);
    return ps;
  };

  CaptureRecorder recording;
  core::RunResult<int> recorded(n);
  {
    ScopedTrace attach(&recording);
    auto procs = make_procs();
    core::CrashAdversary adversary(n, f, /*seed=*/42, /*crash_prob=*/0.6);
    recorded = core::run_rounds(procs, adversary);
  }

  TraceReplayer replayer(through_jsonl(recording));
  EXPECT_EQ(replayer.n(), n);
  EXPECT_EQ(replayer.substrate(), Substrate::kEngine);
  ASSERT_TRUE(replayer.recorded_rounds().has_value());
  EXPECT_EQ(*replayer.recorded_rounds(), recorded.rounds);
  EXPECT_EQ(replayer.recorded_pattern(), recorded.pattern);

  CaptureRecorder replaying;
  core::RunResult<int> replayed(n);
  {
    ScopedTrace attach(&replaying);
    auto procs = make_procs();
    core::AdversaryPtr adversary = replayer.scripted_adversary();
    replayed = core::run_rounds(procs, *adversary);
  }

  replayer.verify_matches(replaying.events());
  EXPECT_EQ(replayed.pattern, recorded.pattern);
  EXPECT_EQ(replayed.rounds, recorded.rounds);
  EXPECT_EQ(replayed.all_decided, recorded.all_decided);
  EXPECT_EQ(replayed.decisions, recorded.decisions);

  // The decide events alone already pin the outcome.
  const auto decisions = replayer.recorded_decisions();
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(decisions[static_cast<std::size_t>(i)].has_value());
    EXPECT_EQ(*decisions[static_cast<std::size_t>(i)],
              *recorded.decisions[static_cast<std::size_t>(i)]);
  }
}

TEST(Replay, TruncatedTracedRunReplaysByteIdenticallyOnBothPaths) {
  // Regression: max_rounds truncation x tracing x replay. A run cut off
  // by the horizon before every process decides leaves processes
  // undecided mid-protocol; the recorded trace ends at the truncation
  // point and the replay must stop exactly there too -- same RunResult,
  // byte-identical event stream -- on the word path, on the set path,
  // and when the recording path differs from the replaying path.
  const int n = 8;
  const Round horizon = 3;
  auto make_procs = [&] {
    std::vector<agreement::FloodMin> ps;
    // decide_round beyond the horizon forces truncation with no decisions.
    for (int i = 0; i < n; ++i) ps.emplace_back(/*input=*/i, /*decide_round=*/horizon + 2);
    return ps;
  };

  for (core::EnginePath record_path :
       {core::EnginePath::kWord, core::EnginePath::kSet}) {
    core::EngineOptions options;
    options.max_rounds = horizon;
    options.path = record_path;

    CaptureRecorder recording;
    core::RunResult<int> recorded(n);
    {
      ScopedTrace attach(&recording);
      auto procs = make_procs();
      core::OmissionAdversary adversary(n, /*f=*/3, /*seed=*/7);
      recorded = core::run_rounds(procs, adversary, options);
    }
    EXPECT_EQ(recorded.rounds, horizon);
    EXPECT_FALSE(recorded.all_decided);

    TraceReplayer replayer(through_jsonl(recording));
    ASSERT_TRUE(replayer.recorded_rounds().has_value());
    EXPECT_EQ(*replayer.recorded_rounds(), horizon);

    for (core::EnginePath replay_path :
         {core::EnginePath::kWord, core::EnginePath::kSet}) {
      options.path = replay_path;
      CaptureRecorder replaying;
      core::RunResult<int> replayed(n);
      {
        ScopedTrace attach(&replaying);
        auto procs = make_procs();
        core::AdversaryPtr adversary = replayer.scripted_adversary();
        replayed = core::run_rounds(procs, *adversary, options);
      }
      replayer.verify_matches(replaying.events());
      EXPECT_EQ(replayed.pattern, recorded.pattern);
      EXPECT_EQ(replayed.rounds, recorded.rounds);
      EXPECT_EQ(replayed.all_decided, recorded.all_decided);
      EXPECT_EQ(replayed.decisions, recorded.decisions);
    }
  }
}

// ---------------------------------------------------------------------------
// Runtime (thread-per-process cooperative simulation)
// ---------------------------------------------------------------------------

TEST(Replay, RuntimeScheduleRoundTripsThroughScriptedScheduler) {
  const int n = 4;
  auto body = [](runtime::Context& ctx) {
    for (int i = 0; i < 3 + ctx.id(); ++i) ctx.step();
  };

  CaptureRecorder recording;
  ProcessSet recorded_completed(n), recorded_crashed(n);
  std::vector<ProcId> recorded_schedule;
  {
    ScopedTrace attach(&recording);
    runtime::Simulation sim(n, body);
    runtime::RandomScheduler sched(/*seed=*/31, /*crash_prob=*/0.15,
                                   /*max_crashes=*/2);
    runtime::SimOutcome out = sim.run(sched);
    recorded_completed = out.completed;
    recorded_crashed = out.crashed;
    recorded_schedule = out.schedule;
  }

  TraceReplayer replayer(through_jsonl(recording));
  EXPECT_EQ(replayer.substrate(), Substrate::kRuntime);

  std::vector<runtime::Scheduler::Choice> script;
  for (const auto& [proc, crash] : replayer.scheduler_choices()) {
    script.push_back({proc, crash});
  }

  CaptureRecorder replaying;
  {
    ScopedTrace attach(&replaying);
    runtime::Simulation sim(n, body);
    runtime::ScriptedScheduler sched(script);
    runtime::SimOutcome out = sim.run(sched);
    EXPECT_EQ(out.completed, recorded_completed);
    EXPECT_EQ(out.crashed, recorded_crashed);
    EXPECT_EQ(out.schedule, recorded_schedule);
  }
  replayer.verify_matches(replaying.events());
}

// ---------------------------------------------------------------------------
// Msgpass (enforced-round message passing)
// ---------------------------------------------------------------------------

/// Deterministic flood-min over the round protocol interface.
class FloodProtocol final : public msgpass::RoundProtocol {
 public:
  explicit FloodProtocol(std::vector<int> inputs) : mins_(std::move(inputs)) {}

  std::uint64_t emit(ProcId i, Round) override {
    return static_cast<std::uint64_t>(mins_[static_cast<std::size_t>(i)]);
  }
  void deliver(ProcId i, Round, ProcId, std::uint64_t payload) override {
    mins_[static_cast<std::size_t>(i)] =
        std::min(mins_[static_cast<std::size_t>(i)], static_cast<int>(payload));
  }
  void round_complete(ProcId, Round, const ProcessSet&) override {}

  std::vector<int> mins_;
};

TEST(Replay, MsgpassDeliveryOrderRoundTripsThroughReplayLinks) {
  const int n = 5;
  const int f = 2;
  const Round rounds = 4;

  CaptureRecorder recording;
  FloodProtocol recorded_proto({9, 7, 5, 3, 1});
  FaultPattern recorded_pattern(n);
  ProcessSet recorded_crashed(n);
  {
    ScopedTrace attach(&recording);
    msgpass::RoundEnforcedSim sim(n, f, /*seed=*/1234);
    sim.add_crash({.who = 1, .in_round = 2, .reaches = 2});
    sim.add_crash({.who = 3, .in_round = 3, .reaches = 1});
    recorded_pattern = sim.run(recorded_proto, rounds);
    recorded_crashed = sim.crashed();
  }

  TraceReplayer replayer(through_jsonl(recording));
  EXPECT_EQ(replayer.substrate(), Substrate::kMsgpass);
  EXPECT_EQ(replayer.recorded_pattern(), recorded_pattern);

  CaptureRecorder replaying;
  FloodProtocol replayed_proto({9, 7, 5, 3, 1});
  {
    ScopedTrace attach(&replaying);
    // Different seed on purpose: every random draw of the recording run
    // must be reproduced from the trace, not from the RNG.
    msgpass::RoundEnforcedSim sim(n, f, /*seed=*/999);
    sim.add_crash({.who = 1, .in_round = 2, .reaches = 2});
    sim.add_crash({.who = 3, .in_round = 3, .reaches = 1});
    sim.replay_links(replayer.link_choices());
    sim.replay_crash_dests(replayer.crash_dests());
    FaultPattern replayed_pattern = sim.run(replayed_proto, rounds);
    EXPECT_EQ(replayed_pattern, recorded_pattern);
    EXPECT_EQ(sim.crashed(), recorded_crashed);
  }
  replayer.verify_matches(replaying.events());
  EXPECT_EQ(replayed_proto.mins_, recorded_proto.mins_);
}

TEST(Replay, MsgpassReplayRejectsAScriptFromADifferentRun) {
  const int n = 4;
  const Round rounds = 2;

  CaptureRecorder recording;
  {
    ScopedTrace attach(&recording);
    FloodProtocol proto({4, 3, 2, 1});
    msgpass::RoundEnforcedSim sim(n, /*f=*/1, /*seed=*/7);
    sim.add_crash({.who = 0, .in_round = 1, .reaches = 1});
    sim.run(proto, rounds);
  }
  TraceReplayer replayer(through_jsonl(recording));

  // Replaying against a fault-free sim: the scripted link stream refers to
  // deliveries that cannot occur, so the replay must fail loudly instead
  // of silently diverging.
  FloodProtocol proto({4, 3, 2, 1});
  msgpass::RoundEnforcedSim sim(n, /*f=*/1, /*seed=*/7);
  sim.replay_links(replayer.link_choices());
  sim.replay_crash_dests(replayer.crash_dests());
  EXPECT_THROW(sim.run(proto, rounds), ContractViolation);
}

// ---------------------------------------------------------------------------
// Semisync (DDS step model)
// ---------------------------------------------------------------------------

/// Broadcasts its id once, then echoes the count of distinct senders heard.
class Echo final : public semisync::StepProcess {
 public:
  explicit Echo(ProcId id, int decide_after) : id_(id), decide_after_(decide_after) {}

  std::optional<semisync::Broadcast> step(
      const std::vector<semisync::Envelope>& received) override {
    for (const auto& env : received) heard_.push_back(env.payload);
    ++steps_;
    if (steps_ == 1) return semisync::Broadcast{1, id_};
    return std::nullopt;
  }
  bool decided() const override { return steps_ >= decide_after_; }
  int decision() const override { return static_cast<int>(heard_.size()); }

  ProcId id_;
  int steps_ = 0;
  std::vector<int> heard_;

 private:
  int decide_after_;
};

TEST(Replay, SemisyncStepsRoundTripThroughReplaySteps) {
  const int n = 4;
  auto make_procs = [&] {
    std::vector<Echo> ps;
    for (ProcId i = 0; i < n; ++i) ps.emplace_back(i, /*decide_after=*/5);
    return ps;
  };
  auto raw = [](std::vector<Echo>& ps) {
    std::vector<semisync::StepProcess*> out;
    for (auto& p : ps) out.push_back(&p);
    return out;
  };

  semisync::StepSimOptions opts;
  opts.phi = 3;  // phi > 1: early-delivery coin flips matter and must replay
  opts.early_delivery_prob = 0.4;
  opts.seed = 77;

  CaptureRecorder recording;
  auto recorded_procs = make_procs();
  semisync::StepSimResult recorded(n);
  {
    ScopedTrace attach(&recording);
    auto ptrs = raw(recorded_procs);
    semisync::StepSim sim(ptrs, opts);
    sim.crash_after(2, 2);
    recorded = sim.run();
  }
  EXPECT_TRUE(recorded.all_alive_decided);

  TraceReplayer replayer(through_jsonl(recording));
  EXPECT_EQ(replayer.substrate(), Substrate::kSemisync);

  CaptureRecorder replaying;
  auto replayed_procs = make_procs();
  {
    ScopedTrace attach(&replaying);
    auto ptrs = raw(replayed_procs);
    semisync::StepSimOptions replay_opts = opts;
    replay_opts.seed = 31337;  // must be irrelevant under replay
    semisync::StepSim sim(ptrs, replay_opts);
    sim.crash_after(2, 2);
    sim.replay_steps(replayer.step_choices());
    semisync::StepSimResult replayed = sim.run();
    EXPECT_EQ(replayed.events, recorded.events);
    EXPECT_EQ(replayed.steps_taken, recorded.steps_taken);
    EXPECT_EQ(replayed.all_alive_decided, recorded.all_alive_decided);
    EXPECT_EQ(replayed.crashed, recorded.crashed);
  }
  replayer.verify_matches(replaying.events());
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(replayed_procs[static_cast<std::size_t>(i)].heard_,
              recorded_procs[static_cast<std::size_t>(i)].heard_);
  }
}

// ---------------------------------------------------------------------------
// Replayer input validation
// ---------------------------------------------------------------------------

TEST(Replay, RejectsTracesWithoutExactlyOneRun) {
  Trace empty;
  empty.schema = kTraceSchema;
  EXPECT_THROW(TraceReplayer{empty}, ContractViolation);

  TraceEvent begin;
  begin.kind = EventKind::kRunBegin;
  begin.proc = 3;
  Trace doubled;
  doubled.schema = kTraceSchema;
  doubled.events = {begin, begin};
  EXPECT_THROW(TraceReplayer{doubled}, ContractViolation);
}

TEST(Replay, VerifyMatchesNamesTheFirstDivergence) {
  TraceEvent begin;
  begin.kind = EventKind::kRunBegin;
  begin.proc = 2;
  TraceEvent emit;
  emit.kind = EventKind::kEmit;
  emit.proc = 0;
  emit.round = 1;
  emit.a = 5;

  Trace trace;
  trace.schema = kTraceSchema;
  trace.events = {begin, emit};
  TraceReplayer replayer(trace);

  TraceEvent wrong = emit;
  wrong.a = 6;
  try {
    replayer.verify_matches({begin, wrong});
    FAIL() << "must throw";
  } catch (const ContractViolation& violation) {
    EXPECT_NE(std::string(violation.what()).find("event #1"),
              std::string::npos);
  }
  EXPECT_NO_THROW(replayer.verify_matches({begin, emit}));
}

}  // namespace
}  // namespace rrfd::trace
