// Section 4.2's adopt-commit protocol: wait-free safety under every
// schedule (exhaustively for n = 2, randomized + crash-injected beyond).
#include "agreement/adopt_commit.h"

#include <gtest/gtest.h>

#include "runtime/explorer.h"
#include "runtime/schedulers.h"
#include "util/str.h"

namespace rrfd::agreement {
namespace {

using runtime::Context;
using runtime::RandomScheduler;
using runtime::RoundRobinScheduler;
using runtime::ScheduleExplorer;
using runtime::Simulation;

struct RunOutput {
  std::vector<std::optional<AdoptCommitResult>> results;
  core::ProcessSet crashed;

  explicit RunOutput(int n)
      : results(static_cast<std::size_t>(n)), crashed(n) {}
};

RunOutput run_adopt_commit(const std::vector<int>& proposals,
                           runtime::Scheduler& sched) {
  const int n = static_cast<int>(proposals.size());
  AdoptCommit ac(n);
  RunOutput out(n);
  Simulation sim(n, [&](Context& ctx) {
    out.results[static_cast<std::size_t>(ctx.id())] =
        ac.run(ctx, proposals[static_cast<std::size_t>(ctx.id())]);
  });
  out.crashed = sim.run(sched).crashed;
  return out;
}

/// The protocol's two guarantees plus validity.
void check_safety(const std::vector<int>& proposals, const RunOutput& out) {
  // Property 1: unanimous inputs => everyone (who finished) commits them.
  bool unanimous = true;
  for (int v : proposals) unanimous = unanimous && (v == proposals[0]);

  std::optional<int> committed;
  for (std::size_t i = 0; i < out.results.size(); ++i) {
    const auto& r = out.results[i];
    if (!r) continue;
    // Validity: outcome value is someone's proposal.
    EXPECT_TRUE(std::find(proposals.begin(), proposals.end(), r->value) !=
                proposals.end())
        << "invented value " << r->value;
    if (unanimous) {
      EXPECT_TRUE(r->commit) << "process " << i << " failed to commit";
      EXPECT_EQ(r->value, proposals[0]);
    }
    if (r->commit) {
      if (committed) {
        EXPECT_EQ(*committed, r->value) << "two different commits";
      }
      committed = r->value;
    }
  }
  // Property 2: a commit forces everyone to (at least) adopt its value.
  if (committed) {
    for (const auto& r : out.results) {
      if (r) {
        EXPECT_EQ(r->value, *committed);
      }
    }
  }
}

TEST(AdoptCommit, UnanimousCommitsUnderRoundRobin) {
  RoundRobinScheduler sched;
  auto out = run_adopt_commit({7, 7, 7}, sched);
  for (const auto& r : out.results) {
    ASSERT_TRUE(r.has_value());
    EXPECT_TRUE(r->commit);
    EXPECT_EQ(r->value, 7);
  }
}

TEST(AdoptCommit, SoloProcessCommitsItsOwnValue) {
  RoundRobinScheduler sched;
  auto out = run_adopt_commit({42}, sched);
  ASSERT_TRUE(out.results[0].has_value());
  EXPECT_TRUE(out.results[0]->commit);
  EXPECT_EQ(out.results[0]->value, 42);
}

TEST(AdoptCommit, ExhaustiveTwoProcessesDistinctValues) {
  ScheduleExplorer::Options opts;
  opts.max_schedules = 2000000;
  ScheduleExplorer explorer(opts);
  const std::vector<int> proposals{1, 2};
  long violations = 0;
  auto stats = explorer.explore([&](runtime::Scheduler& sched) {
    auto out = run_adopt_commit(proposals, sched);
    check_safety(proposals, out);
    if (::testing::Test::HasFailure()) ++violations;
  });
  EXPECT_TRUE(stats.exhausted) << "schedule space unexpectedly large";
  EXPECT_EQ(violations, 0);
  // The run count is also a regression guard on the protocol's length.
  EXPECT_GT(stats.schedules, 100);
}

TEST(AdoptCommit, ExhaustiveTwoProcessesWithOneCrash) {
  ScheduleExplorer::Options opts;
  opts.max_schedules = 2000000;
  opts.max_crashes = 1;
  ScheduleExplorer explorer(opts);
  const std::vector<int> proposals{3, 9};
  auto stats = explorer.explore([&](runtime::Scheduler& sched) {
    auto out = run_adopt_commit(proposals, sched);
    check_safety(proposals, out);
  });
  EXPECT_TRUE(stats.exhausted);
}

TEST(AdoptCommit, ExhaustiveTwoProcessesUnanimous) {
  ScheduleExplorer::Options opts;
  opts.max_schedules = 2000000;
  ScheduleExplorer explorer(opts);
  const std::vector<int> proposals{5, 5};
  auto stats = explorer.explore([&](runtime::Scheduler& sched) {
    auto out = run_adopt_commit(proposals, sched);
    check_safety(proposals, out);
    // Stronger: with unanimous inputs every completed process commits.
    for (const auto& r : out.results) {
      if (r) {
        EXPECT_TRUE(r->commit);
      }
    }
  });
  EXPECT_TRUE(stats.exhausted);
}

class AdoptCommitRandom
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(AdoptCommitRandom, SafetyUnderRandomSchedulesAndCrashes) {
  auto [n, seed] = GetParam();
  std::vector<int> proposals;
  for (int i = 0; i < n; ++i) proposals.push_back(i % 3);  // some collisions
  for (int trial = 0; trial < 40; ++trial) {
    RandomScheduler sched(seed + static_cast<std::uint64_t>(trial) * 7919,
                          /*crash_prob=*/0.02, /*max_crashes=*/n - 1);
    auto out = run_adopt_commit(proposals, sched);
    check_safety(proposals, out);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AdoptCommitRandom,
    ::testing::Combine(::testing::Values(2, 3, 5, 8, 16),
                       ::testing::Values(21u, 90210u)),
    [](const ::testing::TestParamInfo<std::tuple<int, std::uint64_t>>& pinfo) {
      return cat("n", std::get<0>(pinfo.param), "_s", std::get<1>(pinfo.param));
    });

TEST(AdoptCommit, DisagreementUnderContentionIsReachable) {
  // Adopt outcomes must actually occur for some schedule (otherwise the
  // protocol would be solving consensus, which is impossible wait-free).
  bool saw_adopt = false;
  for (std::uint64_t seed = 0; seed < 50 && !saw_adopt; ++seed) {
    RandomScheduler sched(seed);
    auto out = run_adopt_commit({1, 2}, sched);
    for (const auto& r : out.results) {
      saw_adopt = saw_adopt || (r && !r->commit);
    }
  }
  EXPECT_TRUE(saw_adopt);
}

TEST(AdoptCommit, CollectProposalsSeesRoundOneWrites) {
  AdoptCommit ac(2);
  std::vector<std::optional<int>> seen;
  Simulation sim(2, [&](Context& ctx) {
    if (ctx.id() == 0) {
      ac.run(ctx, 11);
    } else {
      for (int i = 0; i < 12; ++i) ctx.step();  // let p0 finish
      seen = ac.collect_proposals(ctx);
    }
  });
  RoundRobinScheduler sched;
  sim.run(sched);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], std::optional<int>(11));
  EXPECT_FALSE(seen[1].has_value());
}

}  // namespace
}  // namespace rrfd::agreement
