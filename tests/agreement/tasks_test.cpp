#include "agreement/tasks.h"

#include <gtest/gtest.h>

namespace rrfd::agreement {
namespace {

using core::ProcessSet;

TEST(Tasks, PassesCorrectConsensus) {
  std::vector<int> inputs{3, 1, 2};
  std::vector<std::optional<int>> decisions{1, 1, 1};
  EXPECT_TRUE(check_consensus(inputs, decisions, ProcessSet::all(3)).ok);
}

TEST(Tasks, FailsOnDisagreement) {
  std::vector<int> inputs{3, 1, 2};
  std::vector<std::optional<int>> decisions{1, 2, 1};
  auto res = check_consensus(inputs, decisions, ProcessSet::all(3));
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.failure.find("agreement"), std::string::npos);
}

TEST(Tasks, FailsOnInventedValue) {
  std::vector<int> inputs{3, 1, 2};
  std::vector<std::optional<int>> decisions{9, 9, 9};
  auto res = check_consensus(inputs, decisions, ProcessSet::all(3));
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.failure.find("validity"), std::string::npos);
}

TEST(Tasks, FailsOnMissingDecision) {
  std::vector<int> inputs{3, 1, 2};
  std::vector<std::optional<int>> decisions{1, std::nullopt, 1};
  auto res = check_consensus(inputs, decisions, ProcessSet::all(3));
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.failure.find("termination"), std::string::npos);
}

TEST(Tasks, MustDecideRestrictsTermination) {
  std::vector<int> inputs{3, 1, 2};
  std::vector<std::optional<int>> decisions{1, std::nullopt, 1};
  // Process 1 crashed: only 0 and 2 must decide.
  EXPECT_TRUE(check_consensus(inputs, decisions, ProcessSet(3, {0, 2})).ok);
}

TEST(Tasks, MustDecideRestrictsAgreementCount) {
  std::vector<int> inputs{3, 1, 2};
  std::vector<std::optional<int>> decisions{1, 2, 1};
  // The crashed process's deviating decision doesn't count.
  EXPECT_TRUE(check_consensus(inputs, decisions, ProcessSet(3, {0, 2})).ok);
}

TEST(Tasks, ValidityStillAppliesToExcludedProcesses) {
  std::vector<int> inputs{3, 1, 2};
  std::vector<std::optional<int>> decisions{1, 99, 1};
  // Even a non-counted process must not invent values.
  auto res = check_consensus(inputs, decisions, ProcessSet(3, {0, 2}));
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.failure.find("validity"), std::string::npos);
}

TEST(Tasks, KSetAllowsUpToKValues) {
  std::vector<int> inputs{0, 1, 2, 3};
  std::vector<std::optional<int>> decisions{0, 1, 0, 1};
  EXPECT_TRUE(
      check_k_set_agreement(inputs, decisions, 2, ProcessSet::all(4)).ok);
  EXPECT_FALSE(
      check_k_set_agreement(inputs, decisions, 1, ProcessSet::all(4)).ok);
}

TEST(Tasks, KSetBoundaryExactlyKPlusOneFails) {
  std::vector<int> inputs{0, 1, 2};
  std::vector<std::optional<int>> decisions{0, 1, 2};
  EXPECT_TRUE(
      check_k_set_agreement(inputs, decisions, 3, ProcessSet::all(3)).ok);
  EXPECT_FALSE(
      check_k_set_agreement(inputs, decisions, 2, ProcessSet::all(3)).ok);
}

TEST(Tasks, DistinctDecisionCount) {
  std::vector<std::optional<int>> decisions{1, 2, 1, std::nullopt, 3};
  EXPECT_EQ(distinct_decision_count(decisions, ProcessSet::all(5)), 3);
  EXPECT_EQ(distinct_decision_count(decisions, ProcessSet(5, {0, 2})), 1);
  EXPECT_EQ(distinct_decision_count(decisions, ProcessSet(5, {3})), 0);
}

TEST(Tasks, SizeMismatchThrows) {
  std::vector<int> inputs{1, 2};
  std::vector<std::optional<int>> decisions{1};
  EXPECT_THROW(check_consensus(inputs, decisions, core::ProcessSet::all(2)),
               ContractViolation);
}

}  // namespace
}  // namespace rrfd::agreement
