// Item 6: consensus under the detector-S RRFD via rotating coordinators.
#include "agreement/s_consensus.h"

#include <gtest/gtest.h>

#include "agreement/tasks.h"
#include "core/adversaries.h"
#include "core/engine.h"
#include "util/str.h"

namespace rrfd::agreement {
namespace {

using core::ImmortalAdversary;
using core::ProcessSet;
using core::run_rounds;

std::vector<SConsensus> make_processes(int n, const std::vector<int>& inputs) {
  std::vector<SConsensus> ps;
  for (int v : inputs) ps.emplace_back(n, v);
  return ps;
}

TEST(SConsensus, DecidesAfterExactlyNRounds) {
  const int n = 5;
  std::vector<int> inputs{1, 2, 3, 4, 5};
  auto ps = make_processes(n, inputs);
  ImmortalAdversary adv(n, /*seed=*/3);
  auto result = run_rounds(ps, adv);
  EXPECT_EQ(result.rounds, n);
  EXPECT_TRUE(result.all_decided);
}

class SConsensusSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(SConsensusSweep, SolvesConsensusForEveryImmortalChoice) {
  auto [n, seed] = GetParam();
  std::vector<int> inputs;
  for (int i = 0; i < n; ++i) inputs.push_back(1000 + i);

  // Every possible immortal process, adversary otherwise unconstrained
  // (up to n-1 processes "fail", which is the f = n-1 omission reading).
  for (core::ProcId immortal = 0; immortal < n; ++immortal) {
    auto ps = make_processes(n, inputs);
    ImmortalAdversary adv(n, seed, immortal);
    auto result = run_rounds(ps, adv);
    TaskCheck check =
        check_consensus(inputs, result.decisions, ProcessSet::all(n));
    EXPECT_TRUE(check.ok) << "immortal=" << immortal << ": " << check.failure
                          << "\n"
                          << result.pattern.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SConsensusSweep,
    ::testing::Combine(::testing::Values(2, 3, 5, 9, 16),
                       ::testing::Values(1u, 17u, 400u)),
    [](const ::testing::TestParamInfo<std::tuple<int, std::uint64_t>>& pinfo) {
      return cat("n", std::get<0>(pinfo.param), "_s", std::get<1>(pinfo.param));
    });

TEST(SConsensus, AdoptionHappensInTheImmortalsRound) {
  // After the immortal's coordinator round, all estimates must be equal.
  const int n = 4;
  const core::ProcId immortal = 2;
  std::vector<int> inputs{10, 20, 30, 40};
  auto ps = make_processes(n, inputs);
  ImmortalAdversary adv(n, /*seed=*/8, immortal);

  // Drive rounds manually up to the immortal's round (round 3 for p2).
  core::EngineOptions opts;
  opts.max_rounds = immortal + 1;  // rounds 1..3 coordinated by 0,1,2
  opts.stop_when_all_decided = false;
  run_rounds(ps, adv, opts);
  std::vector<int> estimates;
  for (const auto& p : ps) estimates.push_back(p.emit(0));
  for (int e : estimates) EXPECT_EQ(e, estimates[0]);
}

TEST(SConsensus, WithoutWeakAccuracyAgreementCanFail) {
  // Sanity check that the algorithm genuinely *needs* the predicate: an
  // adversary that silences every coordinator in its own round leaves all
  // estimates untouched -- n distinct decisions.
  const int n = 3;
  core::FaultPattern p(n);
  for (core::Round r = 1; r <= n; ++r) {
    const core::ProcId coord = static_cast<core::ProcId>((r - 1) % n);
    core::RoundFaults round;
    for (core::ProcId i = 0; i < n; ++i) {
      round.push_back(i == coord ? core::ProcessSet(n)
                                 : core::ProcessSet::single(n, coord));
    }
    p.append(round);
  }
  std::vector<int> inputs{7, 8, 9};
  auto ps = make_processes(n, inputs);
  core::ScriptedAdversary adv(p);
  auto result = run_rounds(ps, adv);
  EXPECT_EQ(distinct_decision_count(result.decisions, ProcessSet::all(n)), 3);
}

TEST(SConsensus, ValidityUnderBenignRuns) {
  const int n = 4;
  std::vector<int> inputs{5, 5, 5, 5};
  auto ps = make_processes(n, inputs);
  core::BenignAdversary adv(n);
  auto result = run_rounds(ps, adv);
  for (const auto& d : result.decisions) EXPECT_EQ(*d, 5);
}

}  // namespace
}  // namespace rrfd::agreement
