// Ablations: remove one load-bearing piece of each construction and watch
// the guarantee collapse. These tests document *why* the paper's designs
// are shaped the way they are.
#include <gtest/gtest.h>

#include <set>

#include "agreement/adopt_commit.h"
#include "agreement/one_round_kset.h"
#include "agreement/tasks.h"
#include "core/adversaries.h"
#include "core/engine.h"
#include "core/predicates.h"
#include "runtime/explorer.h"
#include "runtime/schedulers.h"
#include "shm/registers.h"

namespace rrfd::agreement {
namespace {

// ---------------------------------------------------------------------------
// Ablation 1: adopt-commit without the second register round.
// ---------------------------------------------------------------------------

/// One-round "adopt-commit": write, collect, commit on unanimity. The
/// write-then-collect order already makes commits unique, but without the
/// second round a commit does NOT force others to adopt its value -- the
/// convergence property (2) that Theorem 4.3 depends on.
struct OneRoundAdoptCommit {
  explicit OneRoundAdoptCommit(int n) : cells(n) {}

  AdoptCommitResult run(runtime::Context& ctx, int proposal) {
    cells.write(ctx, proposal);
    std::set<int> seen;
    for (const auto& c : cells.collect(ctx)) {
      if (c) seen.insert(*c);
    }
    if (seen.size() == 1) return {true, *seen.begin()};
    return {false, proposal};
  }

  shm::SwmrArray<int> cells;
};

TEST(Ablation, AdoptCommitNeedsItsSecondRound) {
  // Property (2): "if any process commits to v then all processes commit
  // or adopt v". Exhaustively explore the one-round variant with distinct
  // proposals: some schedule must show a commit that fails to drag the
  // other process along -- the failure the second round exists to prevent.
  auto divergence_reachable = [](auto make_protocol) {
    runtime::ScheduleExplorer explorer;
    bool diverged = false;
    explorer.explore([&](runtime::Scheduler& sched) {
      auto ac = make_protocol();
      std::vector<std::optional<AdoptCommitResult>> results(2);
      runtime::Simulation sim(2, [&](runtime::Context& ctx) {
        results[static_cast<std::size_t>(ctx.id())] = ac->run(ctx, ctx.id());
      });
      sim.run(sched);
      if (results[0] && results[1]) {
        for (int c = 0; c < 2; ++c) {
          const auto& committer = *results[static_cast<std::size_t>(c)];
          const auto& other = *results[static_cast<std::size_t>(1 - c)];
          if (committer.commit && other.value != committer.value) {
            diverged = true;
          }
        }
      }
    });
    return diverged;
  };

  EXPECT_TRUE(divergence_reachable(
      [] { return std::make_unique<OneRoundAdoptCommit>(2); }))
      << "one-round adopt-commit unexpectedly satisfies property (2)";
  // Control arm: the real two-round protocol never diverges.
  EXPECT_FALSE(divergence_reachable(
      [] { return std::make_unique<AdoptCommit>(2); }));
}

// ---------------------------------------------------------------------------
// Ablation 2: Theorem 3.1 without the lowest-identifier rule.
// ---------------------------------------------------------------------------

/// Decides on the HIGHEST-identifier heard process instead of the lowest.
struct HighestRuleKSet {
  using Message = int;
  using Decision = int;

  explicit HighestRuleKSet(int input) : input_(input) {}
  int emit(core::Round) const { return input_; }
  void absorb(core::Round r, const core::DeliveryView<int>& view,
              const core::ProcessSet&) {
    if (r != 1) return;
    decision_ = view[view.senders().max()];
  }
  bool decided() const { return decision_.has_value(); }
  int decision() const { return *decision_; }

  int input_;
  std::optional<int> decision_;
};

TEST(Ablation, TheoremThreeOneNeedsTheLowestIdRule) {
  // With the lowest-id rule, all chosen processes but the largest lie in
  // union-minus-intersection, bounding disagreement by k. The highest-id
  // rule has no such structure: a hand-built 2-uncertainty pattern forces
  // 3 distinct decisions.
  const int n = 4;
  core::FaultPattern p(n);
  // Uncertainty set {2,3} (|.| = 2 < k+1, so this is a 3-uncertainty
  // pattern; we compare both algorithms at k = 3).
  p.append({core::ProcessSet(n, {2, 3}), core::ProcessSet(n, {3}),
            core::ProcessSet(n), core::ProcessSet(n)});
  ASSERT_TRUE(core::KUncertainty(3).holds(p));

  std::vector<int> inputs{1, 2, 3, 4};
  {
    std::vector<HighestRuleKSet> ps;
    for (int v : inputs) ps.emplace_back(v);
    core::ScriptedAdversary adv(p);
    auto result = core::run_rounds(ps, adv);
    // Highest-heard: p0 decides input(1)=2, p1 decides input(2)=3,
    // p2/p3 decide input(3)=4: 3 distinct values.
    EXPECT_EQ(distinct_decision_count(result.decisions,
                                      core::ProcessSet::all(n)),
              3);
  }
  {
    std::vector<OneRoundKSet> ps;
    for (int v : inputs) ps.emplace_back(v);
    core::ScriptedAdversary adv(p);
    auto result = core::run_rounds(ps, adv);
    // Lowest-heard: everyone hears p0, everyone decides 1.
    EXPECT_EQ(distinct_decision_count(result.decisions,
                                      core::ProcessSet::all(n)),
              1);
  }
}

// ---------------------------------------------------------------------------
// Ablation 3: the semi-synchronous silence rule (Section 5).
// ---------------------------------------------------------------------------

TEST(Ablation, SectionFiveNeedsTheSilenceRule) {
  // If every process broadcasts regardless of what it received (no
  // "receive before send => stay silent"), multiple broadcasters appear
  // in a round and the heard sets need not be singletons -- the one-round
  // equal-announcement structure comes precisely from the read-modify-
  // write silencing. We verify at the pattern level: announcements built
  // from "everyone broadcasts, random subsets delivered per process"
  // violate equation (5) easily.
  core::AsyncAdversary adv(4, 2, /*seed=*/12);
  bool violated = false;
  for (int trial = 0; trial < 50 && !violated; ++trial) {
    core::FaultPattern p = core::record_pattern(adv, 1);
    violated = !core::EqualAnnouncements().holds(p);
  }
  EXPECT_TRUE(violated);
}

}  // namespace
}  // namespace rrfd::agreement
