// Early-deciding consensus driven by the RRFD announcement sets.
#include "agreement/early_stopping.h"

#include <gtest/gtest.h>

#include "agreement/tasks.h"
#include "core/adversaries.h"
#include "core/engine.h"
#include "util/str.h"

namespace rrfd::agreement {
namespace {

using core::ProcessSet;
using core::run_rounds;

std::vector<EarlyStoppingConsensus> make_processes(
    int n, const std::vector<int>& inputs) {
  std::vector<EarlyStoppingConsensus> ps;
  for (int v : inputs) ps.emplace_back(n, v);
  return ps;
}

TEST(EarlyStopping, FailureFreeRunDecidesAtRoundTwo) {
  const int n = 5;
  std::vector<int> inputs{5, 3, 8, 1, 9};
  auto ps = make_processes(n, inputs);
  core::BenignAdversary adv(n);
  auto result = run_rounds(ps, adv);
  EXPECT_EQ(result.rounds, 2);
  for (const auto& p : ps) {
    EXPECT_EQ(p.decision(), 1);
    EXPECT_EQ(p.decision_round(), 2);
  }
}

class EarlyStoppingSweep
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(EarlyStoppingSweep, ConsensusUnderRandomCrashPatterns) {
  auto [n, f, seed] = GetParam();
  std::vector<int> inputs;
  for (int i = 0; i < n; ++i) inputs.push_back((i * 5 + 3) % (2 * n));

  for (int trial = 0; trial < 40; ++trial) {
    auto ps = make_processes(n, inputs);
    core::CrashAdversary adv(n, f,
                             seed + static_cast<std::uint64_t>(trial) * 31,
                             /*crash_prob=*/0.35);
    core::EngineOptions opts;
    opts.max_rounds = f + 4;  // f' + 3 <= f + 3 always suffices
    auto result = run_rounds(ps, adv, opts);

    const ProcessSet alive = adv.announced().complement();
    TaskCheck check = check_consensus(inputs, result.decisions, alive);
    EXPECT_TRUE(check.ok) << check.failure << "\n"
                          << result.pattern.to_string();
    // Adaptivity bound: every alive process decided by f' + 3 where f' is
    // the number of actual faults (heard sets need one round to equalize
    // after the last crash, plus one verification round).
    const int actual_faults = adv.announced().size();
    for (core::ProcId i : alive.members()) {
      EXPECT_LE(ps[static_cast<std::size_t>(i)].decision_round(),
                actual_faults + 3)
          << result.pattern.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EarlyStoppingSweep,
    ::testing::Combine(::testing::Values(4, 6, 10, 16),
                       ::testing::Values(1, 2, 3),
                       ::testing::Values(2u, 1234u)),
    [](const ::testing::TestParamInfo<std::tuple<int, int, std::uint64_t>>& pinfo) {
      return cat("n", std::get<0>(pinfo.param), "_f", std::get<1>(pinfo.param),
                 "_s", std::get<2>(pinfo.param));
    });

TEST(EarlyStopping, SurvivesTheChainExecution) {
  // The chain adversary is exactly the execution that kills naive early
  // stopping: secret values hop through crashers. The reporter check must
  // block premature decisions, and agreement must hold once the chain is
  // exhausted.
  for (int f = 1; f <= 4; ++f) {
    const int k = 1;
    const int n = f + k + 2;
    core::ChainAdversary adv(n, f, k);
    const std::vector<int> inputs = adv.violating_inputs();
    auto ps = make_processes(n, inputs);
    core::EngineOptions opts;
    opts.max_rounds = f + 4;
    auto result = run_rounds(ps, adv, opts);

    ProcessSet survivors = ProcessSet::all(n);
    for (core::Round j = 1; j <= adv.rounds(); ++j) {
      survivors.remove(adv.crasher(0, j));
    }
    TaskCheck check = check_consensus(inputs, result.decisions, survivors);
    EXPECT_TRUE(check.ok) << "f=" << f << ": " << check.failure << "\n"
                          << result.pattern.to_string();
    // Nobody may decide while the chain is still feeding secrets: the
    // terminal receives value 0 in round f, so any decision before round
    // f+1 would have missed it.
    for (core::ProcId i : survivors.members()) {
      EXPECT_EQ(*result.decisions[static_cast<std::size_t>(i)], 0);
    }
  }
}

TEST(EarlyStopping, AdaptivityBeatsFloodMinWhenFaultsAreFew) {
  // f = 5 budget but zero actual faults: early stopping takes 2 rounds
  // where flood-min would take f + 1 = 6.
  const int n = 8;
  std::vector<int> inputs{4, 7, 2, 9, 5, 6, 8, 3};
  auto ps = make_processes(n, inputs);
  core::BenignAdversary adv(n);
  auto result = run_rounds(ps, adv);
  EXPECT_EQ(result.rounds, 2);
  EXPECT_TRUE(result.all_decided);
}

TEST(EarlyStopping, DoesNotDecideAtRoundOne) {
  const int n = 3;
  std::vector<int> inputs{1, 2, 3};
  auto ps = make_processes(n, inputs);
  core::BenignAdversary adv(n);
  core::EngineOptions opts;
  opts.max_rounds = 1;
  opts.stop_when_all_decided = false;
  auto result = run_rounds(ps, adv, opts);
  for (const auto& d : result.decisions) EXPECT_FALSE(d.has_value());
}

TEST(EarlyStopping, CurrentMinTracksFlooding) {
  const int n = 3;
  std::vector<int> inputs{5, 1, 9};
  auto ps = make_processes(n, inputs);
  core::BenignAdversary adv(n);
  core::EngineOptions opts;
  opts.max_rounds = 1;
  opts.stop_when_all_decided = false;
  run_rounds(ps, adv, opts);
  for (const auto& p : ps) EXPECT_EQ(p.current_min(), 1);
}

}  // namespace
}  // namespace rrfd::agreement
