// Structured consensus (reference [16]): leader suggestion + adopt-commit
// per phase. Safety is unconditional; termination needs scheduler luck
// (FLP forbids more).
#include "agreement/phase_consensus.h"

#include <gtest/gtest.h>

#include <set>

#include "agreement/tasks.h"
#include "runtime/schedulers.h"

namespace rrfd::agreement {
namespace {

using runtime::RandomScheduler;
using runtime::RoundRobinScheduler;

TEST(PhaseConsensus, RoundRobinDecidesInPhaseOne) {
  RoundRobinScheduler sched;
  auto result = run_phase_consensus({4, 7, 2, 9}, /*max_phases=*/8, sched);
  EXPECT_TRUE(result.all_alive_decided);
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(result.decisions[i].has_value());
    EXPECT_EQ(*result.decisions[i], 4);  // leader 0's input
    EXPECT_EQ(result.decision_phase[i], 1);
  }
}

TEST(PhaseConsensus, SafetyUnderRandomSchedules) {
  const std::vector<int> inputs{3, 1, 4, 1, 5};
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    RandomScheduler sched(seed);
    auto result = run_phase_consensus(inputs, /*max_phases=*/20, sched);
    std::set<int> decided;
    for (const auto& d : result.decisions) {
      if (d) decided.insert(*d);
    }
    EXPECT_LE(decided.size(), 1u) << "seed " << seed;
    for (int v : decided) {
      EXPECT_TRUE(std::find(inputs.begin(), inputs.end(), v) != inputs.end());
    }
  }
}

TEST(PhaseConsensus, SafetyUnderCrashes) {
  const std::vector<int> inputs{9, 8, 7, 6};
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    RandomScheduler sched(seed, /*crash_prob=*/0.02, /*max_crashes=*/3);
    auto result = run_phase_consensus(inputs, /*max_phases=*/20, sched);
    std::set<int> decided;
    for (const auto& d : result.decisions) {
      if (d) decided.insert(*d);
    }
    EXPECT_LE(decided.size(), 1u) << "seed " << seed;
  }
}

TEST(PhaseConsensus, TerminatesQuicklyUnderFairSchedules) {
  // Not guaranteed by theory (FLP), but overwhelmingly likely: almost all
  // fair random runs decide within a few phases.
  int decided_runs = 0;
  int max_phase = 0;
  const int runs = 50;
  for (std::uint64_t seed = 100; seed < 100 + runs; ++seed) {
    RandomScheduler sched(seed);
    auto result = run_phase_consensus({1, 2, 3}, /*max_phases=*/30, sched);
    if (result.all_alive_decided) {
      ++decided_runs;
      for (int p : result.decision_phase) max_phase = std::max(max_phase, p);
    }
  }
  EXPECT_GT(decided_runs, runs * 8 / 10);
  EXPECT_LE(max_phase, 30);
}

TEST(PhaseConsensus, DecidersStopAtMostOnePhaseApart) {
  // Once somebody commits in phase p, everyone else decides by phase p+1
  // (the adopt-commit chain makes phase p+1 unanimous).
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    RandomScheduler sched(seed);
    auto result = run_phase_consensus({5, 6, 7, 8}, /*max_phases=*/30, sched);
    if (!result.all_alive_decided) continue;
    int lo = 1 << 20, hi = 0;
    for (std::size_t i = 0; i < 4; ++i) {
      if (result.crashed.contains(static_cast<core::ProcId>(i))) continue;
      lo = std::min(lo, result.decision_phase[i]);
      hi = std::max(hi, result.decision_phase[i]);
    }
    EXPECT_LE(hi - lo, 1) << "seed " << seed;
  }
}

TEST(PhaseConsensus, SingleProcessDecidesImmediately) {
  RoundRobinScheduler sched;
  auto result = run_phase_consensus({42}, 4, sched);
  ASSERT_TRUE(result.decisions[0].has_value());
  EXPECT_EQ(*result.decisions[0], 42);
  EXPECT_EQ(result.decision_phase[0], 1);
}

TEST(PhaseConsensus, ValidatesArguments) {
  RoundRobinScheduler sched;
  EXPECT_THROW(run_phase_consensus({1, 2}, 0, sched), ContractViolation);
}

}  // namespace
}  // namespace rrfd::agreement
