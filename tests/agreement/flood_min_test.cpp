// Flood-min upper bound and the Chaudhuri-et-al. lower bound
// (Corollaries 4.2 / 4.4): floor(f/k)+1 rounds suffice, floor(f/k) don't.
#include "agreement/flood_min.h"

#include <gtest/gtest.h>

#include "agreement/tasks.h"
#include "core/adversaries.h"
#include "core/engine.h"
#include "util/str.h"

namespace rrfd::agreement {
namespace {

using core::ChainAdversary;
using core::EngineOptions;
using core::ProcessSet;
using core::run_rounds;

std::vector<FloodMin> make_processes(const std::vector<int>& inputs,
                                     core::Round decide_round) {
  std::vector<FloodMin> ps;
  ps.reserve(inputs.size());
  for (int v : inputs) ps.emplace_back(v, decide_round);
  return ps;
}

TEST(FloodMin, BenignOneRoundAgreesOnMinimum) {
  std::vector<int> inputs{7, 3, 9, 5};
  auto ps = make_processes(inputs, 1);
  core::BenignAdversary adv(4);
  auto result = run_rounds(ps, adv);
  for (const auto& d : result.decisions) EXPECT_EQ(*d, 3);
}

TEST(FloodMin, ConsensusInFPlus1RoundsUnderCrashes) {
  // k = 1: f+1 rounds of flood-min solve consensus with f crashes.
  const int n = 8, f = 3;
  std::vector<int> inputs{4, 9, 2, 7, 6, 8, 5, 3};
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    auto ps = make_processes(inputs, f + 1);
    core::CrashAdversary adv(n, f, seed, /*crash_prob=*/0.4);
    EngineOptions opts;
    opts.max_rounds = f + 1;
    opts.stop_when_all_decided = false;
    auto result = run_rounds(ps, adv, opts);
    const ProcessSet alive = adv.announced().complement();
    TaskCheck check = check_consensus(inputs, result.decisions, alive);
    EXPECT_TRUE(check.ok) << check.failure << "\n"
                          << result.pattern.to_string();
  }
}

class FloodMinBounds
    : public ::testing::TestWithParam<std::tuple<int, int>> {};  // (k, f/k)

TEST_P(FloodMinBounds, UpperBoundFloorFOverKPlus1RoundsSolveKSet) {
  auto [k, chains_len] = GetParam();
  const int f = k * chains_len;
  const int n = f + k + 2;
  ChainAdversary adv(n, f, k);
  const std::vector<int> inputs = adv.violating_inputs();

  // Same adversary, one extra round: the chain values escape and k-set
  // agreement holds.
  auto ps = make_processes(inputs, adv.rounds() + 1);
  EngineOptions opts;
  opts.max_rounds = adv.rounds() + 1;
  opts.stop_when_all_decided = false;
  auto result = run_rounds(ps, adv, opts);

  ProcessSet survivors = ProcessSet::all(n);
  for (int m = 0; m < k; ++m) {
    for (core::Round j = 1; j <= adv.rounds(); ++j) {
      survivors.remove(adv.crasher(m, j));
    }
  }
  TaskCheck check =
      check_k_set_agreement(inputs, result.decisions, k, survivors);
  EXPECT_TRUE(check.ok) << check.failure;
}

TEST_P(FloodMinBounds, LowerBoundFloorFOverKRoundsViolateKSet) {
  // Corollary 4.2/4.4: truncated at floor(f/k) rounds, the chain execution
  // forces k+1 distinct decisions among survivors.
  auto [k, chains_len] = GetParam();
  const int f = k * chains_len;
  const int n = f + k + 2;
  ChainAdversary adv(n, f, k);
  const std::vector<int> inputs = adv.violating_inputs();

  auto ps = make_processes(inputs, adv.rounds());
  EngineOptions opts;
  opts.max_rounds = adv.rounds();
  opts.stop_when_all_decided = false;
  auto result = run_rounds(ps, adv, opts);

  ProcessSet survivors = ProcessSet::all(n);
  for (int m = 0; m < k; ++m) {
    for (core::Round j = 1; j <= adv.rounds(); ++j) {
      survivors.remove(adv.crasher(m, j));
    }
  }
  const int distinct = distinct_decision_count(result.decisions, survivors);
  EXPECT_EQ(distinct, k + 1)
      << "expected the lower-bound execution to force k+1 values\n"
      << result.pattern.to_string();
  TaskCheck check =
      check_k_set_agreement(inputs, result.decisions, k, survivors);
  EXPECT_FALSE(check.ok);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FloodMinBounds,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(1, 2, 3, 5)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& pinfo) {
      return cat("k", std::get<0>(pinfo.param), "_R", std::get<1>(pinfo.param));
    });

TEST(FloodMin, TerminalsLearnChainValuesExactlyAtTheLastRound) {
  // Structural check of the lower-bound execution: terminal s_m knows v_m
  // only after round R, and nobody else (alive) ever learns it.
  const int k = 2, f = 4;
  ChainAdversary adv(8, f, k);  // R = 2
  const std::vector<int> inputs = adv.violating_inputs();
  auto ps = make_processes(inputs, adv.rounds());
  EngineOptions opts;
  opts.max_rounds = adv.rounds();
  opts.stop_when_all_decided = false;
  run_rounds(ps, adv, opts);

  EXPECT_EQ(ps[static_cast<std::size_t>(adv.terminal(0))].current_min(), 0);
  EXPECT_EQ(ps[static_cast<std::size_t>(adv.terminal(1))].current_min(), 1);
  // Survivors outside the chains (6 and 7) only ever see the value k = 2.
  EXPECT_EQ(ps[6].current_min(), 2);
  EXPECT_EQ(ps[7].current_min(), 2);
}

TEST(FloodMin, OmissionFaultsAreAlsoTolerated) {
  // Flood-min under a send-omission adversary with f+1 rounds: min-based
  // decisions may legitimately differ under pure omission (the classic
  // reason omission needs care), so only validity/termination are
  // checked here -- the crash-model guarantee is the previous tests'.
  const int n = 6, f = 2;
  std::vector<int> inputs{5, 1, 4, 2, 6, 3};
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    auto ps = make_processes(inputs, f + 1);
    core::OmissionAdversary adv(n, f, seed);
    EngineOptions opts;
    opts.max_rounds = f + 1;
    opts.stop_when_all_decided = false;
    auto result = run_rounds(ps, adv, opts);
    for (const auto& d : result.decisions) {
      ASSERT_TRUE(d.has_value());
      EXPECT_TRUE(std::find(inputs.begin(), inputs.end(), *d) != inputs.end());
    }
  }
}

TEST(FloodMin, RejectsNonPositiveDecideRound) {
  EXPECT_THROW(FloodMin(1, 0), ContractViolation);
}

}  // namespace
}  // namespace rrfd::agreement
