// Theorem 3.1: one-round k-set agreement under the k-uncertainty RRFD.
#include "agreement/one_round_kset.h"

#include <gtest/gtest.h>

#include "agreement/tasks.h"
#include "core/adversaries.h"
#include "core/engine.h"
#include "core/predicates.h"
#include "util/str.h"

namespace rrfd::agreement {
namespace {

using core::EngineOptions;
using core::FaultPattern;
using core::KUncertaintyAdversary;
using core::ProcessSet;
using core::run_rounds;

std::vector<OneRoundKSet> make_processes(const std::vector<int>& inputs) {
  std::vector<OneRoundKSet> ps;
  ps.reserve(inputs.size());
  for (int v : inputs) ps.emplace_back(v);
  return ps;
}

TEST(OneRoundKSet, DecidesInExactlyOneRound) {
  std::vector<int> inputs{10, 20, 30, 40};
  auto ps = make_processes(inputs);
  KUncertaintyAdversary adv(4, 2, /*seed=*/1);
  auto result = run_rounds(ps, adv);
  EXPECT_EQ(result.rounds, 1);
  EXPECT_TRUE(result.all_decided);
}

TEST(OneRoundKSet, BenignRunDecidesLowestInput) {
  std::vector<int> inputs{10, 20, 30};
  auto ps = make_processes(inputs);
  core::BenignAdversary adv(3);
  auto result = run_rounds(ps, adv);
  for (const auto& d : result.decisions) EXPECT_EQ(*d, 10);
}

class OneRoundKSetSweep
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(OneRoundKSetSweep, SolvesKSetAgreementUnderKUncertainty) {
  auto [n, k, seed] = GetParam();
  if (k > n) GTEST_SKIP() << "uncertainty bound k must be at most n";
  std::vector<int> inputs;
  for (int i = 0; i < n; ++i) inputs.push_back(i * 3 + 1);

  for (int trial = 0; trial < 50; ++trial) {
    auto ps = make_processes(inputs);
    KUncertaintyAdversary adv(n, k,
                              seed + static_cast<std::uint64_t>(trial) * 101);
    auto result = run_rounds(ps, adv);
    ASSERT_TRUE(result.all_decided);
    TaskCheck check = check_k_set_agreement(inputs, result.decisions, k,
                                            ProcessSet::all(n));
    EXPECT_TRUE(check.ok) << check.failure << "\n"
                          << result.pattern.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OneRoundKSetSweep,
    ::testing::Combine(::testing::Values(4, 8, 16, 64),
                       ::testing::Values(1, 2, 3, 8),
                       ::testing::Values(11u, 77u)),
    [](const ::testing::TestParamInfo<std::tuple<int, int, std::uint64_t>>& pinfo) {
      return cat("n", std::get<0>(pinfo.param), "_k", std::get<1>(pinfo.param),
                 "_s", std::get<2>(pinfo.param));
    });

TEST(OneRoundKSet, ConsensusUnderEqualAnnouncements) {
  // Equation 5 (k=1): everyone sees the same D, so everyone picks the same
  // lowest survivor -- consensus.
  std::vector<int> inputs{5, 6, 7, 8, 9};
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    auto ps = make_processes(inputs);
    core::EqualAdversary adv(5, seed, /*miss_prob=*/0.6);
    auto result = run_rounds(ps, adv);
    TaskCheck check =
        check_consensus(inputs, result.decisions, ProcessSet::all(5));
    EXPECT_TRUE(check.ok) << check.failure;
  }
}

TEST(OneRoundKSet, Corollary32SnapshotWithKMinus1Failures) {
  // Corollary 3.2: k-set agreement solvable in asynchronous shared memory
  // with k-1 failures -- the snapshot RRFD with f = k-1 implies the
  // k-uncertainty predicate, so the same one-round algorithm works.
  for (int k = 1; k <= 4; ++k) {
    const int n = 7;
    std::vector<int> inputs;
    for (int i = 0; i < n; ++i) inputs.push_back(100 - i);
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
      auto ps = make_processes(inputs);
      core::SnapshotAdversary adv(n, k - 1, seed);
      auto result = run_rounds(ps, adv);
      TaskCheck check = check_k_set_agreement(inputs, result.decisions, k,
                                              ProcessSet::all(n));
      EXPECT_TRUE(check.ok) << "k=" << k << ": " << check.failure;
    }
  }
}

TEST(OneRoundKSet, UncertaintyBoundIsTightKPlusOneValuesPossible) {
  // With a detector of uncertainty exactly k (i.e. a (k+1)-uncertainty
  // pattern), k+1 distinct decisions are reachable -- the algorithm's
  // guarantee degrades exactly with the detector, as Theorem 3.1's proof
  // predicts. Hand-build a worst case: D(i) staggered prefixes.
  const int n = 4;
  FaultPattern p(n);
  // D(0)={}, D(1)={0}, D(2)={0,1}, D(3)={0,1,2}: uncertainty = 3.
  p.append({ProcessSet(n), ProcessSet(n, {0}), ProcessSet(n, {0, 1}),
            ProcessSet(n, {0, 1, 2})});
  ASSERT_TRUE(core::k_uncertainty(4)->holds(p));
  ASSERT_FALSE(core::k_uncertainty(3)->holds(p));

  std::vector<int> inputs{1, 2, 3, 4};
  auto ps = make_processes(inputs);
  core::ScriptedAdversary adv(p);
  auto result = run_rounds(ps, adv);
  EXPECT_EQ(distinct_decision_count(result.decisions, ProcessSet::all(n)), 4);
}

}  // namespace
}  // namespace rrfd::agreement
