// Admission-queue contract: FIFO order, both caps shed with named
// reasons, nothing is lost silently (accepted == popped after a drain),
// and close() stops admission without dropping queued tickets.
#include "serve/queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace rrfd::serve {
namespace {

Ticket noop(const std::string& client) {
  return Ticket{client, [] {}};
}

TEST(ServeQueue, FifoOrderAndAccounting) {
  AdmissionQueue q({.depth = 8, .per_client = 8});
  std::vector<int> ran;
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(q.push({"c", [&ran, i] { ran.push_back(i); }}),
              Admission::kAccepted);
  }
  Ticket t;
  while (q.size() > 0) {
    ASSERT_TRUE(q.pop(&t));
    t.work();
  }
  EXPECT_EQ(ran, (std::vector<int>{0, 1, 2, 3, 4}));
  const auto stats = q.stats();
  EXPECT_EQ(stats.accepted, 5u);
  EXPECT_EQ(stats.popped, 5u);
  EXPECT_EQ(stats.shed_queue_full, 0u);
  EXPECT_EQ(stats.shed_client_cap, 0u);
}

TEST(ServeQueue, QueueFullShedsByName) {
  AdmissionQueue q({.depth = 3, .per_client = 8});
  EXPECT_EQ(q.push(noop("a")), Admission::kAccepted);
  EXPECT_EQ(q.push(noop("b")), Admission::kAccepted);
  EXPECT_EQ(q.push(noop("c")), Admission::kAccepted);
  EXPECT_EQ(q.push(noop("d")), Admission::kShedQueueFull);
  EXPECT_STREQ(admission_name(Admission::kShedQueueFull), "queue_full");
  // Shed is accounted, not silent.
  EXPECT_EQ(q.stats().shed_queue_full, 1u);
  // Popping one frees one slot.
  Ticket t;
  ASSERT_TRUE(q.pop(&t));
  EXPECT_EQ(q.push(noop("d")), Admission::kAccepted);
}

TEST(ServeQueue, PerClientCapShedsOnlyTheNoisyTenant) {
  AdmissionQueue q({.depth = 16, .per_client = 2});
  EXPECT_EQ(q.push(noop("noisy")), Admission::kAccepted);
  EXPECT_EQ(q.push(noop("noisy")), Admission::kAccepted);
  EXPECT_EQ(q.push(noop("noisy")), Admission::kShedClientCap);
  EXPECT_STREQ(admission_name(Admission::kShedClientCap), "client_cap");
  // A different tenant is unaffected by the noisy one's cap.
  EXPECT_EQ(q.push(noop("quiet")), Admission::kAccepted);
  // The cap releases when the ticket is popped (occupancy, not rate).
  Ticket t;
  ASSERT_TRUE(q.pop(&t));
  EXPECT_EQ(q.push(noop("noisy")), Admission::kAccepted);
  EXPECT_EQ(q.stats().shed_client_cap, 1u);
}

TEST(ServeQueue, CloseStopsAdmissionButDrainsQueuedTickets) {
  AdmissionQueue q({.depth = 8, .per_client = 8});
  EXPECT_EQ(q.push(noop("a")), Admission::kAccepted);
  EXPECT_EQ(q.push(noop("b")), Admission::kAccepted);
  q.close();
  EXPECT_EQ(q.push(noop("c")), Admission::kShedClosed);
  Ticket t;
  EXPECT_TRUE(q.pop(&t));   // queued work still drains...
  EXPECT_TRUE(q.pop(&t));
  EXPECT_FALSE(q.pop(&t));  // ...then pop reports shutdown
}

TEST(ServeQueue, PopBlocksUntilPushOrClose) {
  AdmissionQueue q({.depth = 4, .per_client = 4});
  std::vector<std::string> popped;
  std::thread consumer([&q, &popped] {
    Ticket t;
    while (q.pop(&t)) popped.push_back(t.client);
  });
  EXPECT_EQ(q.push(noop("x")), Admission::kAccepted);
  EXPECT_EQ(q.push(noop("y")), Admission::kAccepted);
  q.close();
  consumer.join();
  EXPECT_EQ(popped, (std::vector<std::string>{"x", "y"}));
}

TEST(ServeQueue, ConcurrentPushersNeverLoseTickets) {
  // Accounting holds under contention: accepted + shed == attempted,
  // and every accepted ticket is popped exactly once.
  AdmissionQueue q({.depth = 32, .per_client = 1000});
  constexpr int kPushers = 4;
  constexpr int kPerPusher = 250;
  std::atomic<int> executed{0};
  std::vector<std::thread> threads;
  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&q, &executed] {
      Ticket t;
      while (q.pop(&t)) {
        t.work();
        ++executed;
      }
    });
  }
  std::atomic<int> shed{0};
  for (int p = 0; p < kPushers; ++p) {
    threads.emplace_back([&q, &shed, p] {
      for (int i = 0; i < kPerPusher; ++i) {
        if (q.push(noop("client-" + std::to_string(p))) !=
            Admission::kAccepted) {
          ++shed;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  q.close();
  for (auto& t : consumers) t.join();
  const auto stats = q.stats();
  EXPECT_EQ(stats.accepted + stats.shed_queue_full, kPushers * kPerPusher);
  EXPECT_EQ(stats.popped, stats.accepted);
  EXPECT_EQ(executed.load(), static_cast<int>(stats.accepted));
  EXPECT_EQ(shed.load(), static_cast<int>(stats.shed_queue_full));
}

}  // namespace
}  // namespace rrfd::serve
