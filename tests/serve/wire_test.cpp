// Strictness of the rrfd-job-v1 request parser: every malformed line
// maps to a *named* rejection (wire.h ErrorCode) -- torn lines, wrong
// schema versions, unknown ops/kinds/fields, duplicates, range
// violations -- and canonical forms are stable under formatting and
// spec-sugar differences (they are the cache key's first component).
#include "serve/wire.h"

#include <gtest/gtest.h>

#include <string>

namespace rrfd::serve {
namespace {

ErrorCode code_of(const std::string& line) {
  try {
    (void)parse_request(line);
  } catch (const WireError& e) {
    return e.code();
  }
  ADD_FAILURE() << "expected a WireError for: " << line;
  return ErrorCode::kParseError;
}

const std::string kSweep =
    R"({"schema":"rrfd-job-v1","op":"submit","client":"c1","id":"j1",)"
    R"("kind":"sweep","n":6,"k":2,"trials":10,"seed":7})";

TEST(ServeWire, ParsesAWellFormedSweepSubmission) {
  const Request req = parse_request(kSweep);
  EXPECT_EQ(req.op, Op::kSubmit);
  EXPECT_EQ(req.client, "c1");
  EXPECT_EQ(req.id, "j1");
  EXPECT_EQ(req.kind, JobKind::kSweep);
  EXPECT_EQ(req.n, 6);
  EXPECT_EQ(req.k, 2);
  EXPECT_EQ(req.trials, 10);
  EXPECT_EQ(req.seed, 7u);
  EXPECT_EQ(req.canonical(), "sweep(n=6,k=2,trials=10)");
}

TEST(ServeWire, InterTokenWhitespaceIsTolerated) {
  // json.dumps-style ": " / ", " separators are legal JSON formatting,
  // not content; strictness applies to fields and values, not spacing.
  const Request req = parse_request(
      R"({"schema": "rrfd-job-v1", "op": "submit", "client": "c1",)"
      R"( "id": "j1", "kind": "sweep", "n": 6, "k": 2, "trials": 10,)"
      R"( "seed": 7})");
  EXPECT_EQ(req.canonical(), "sweep(n=6,k=2,trials=10)");
  EXPECT_EQ(req.seed, 7u);
}

TEST(ServeWire, FieldOrderDoesNotMatter) {
  const Request req = parse_request(
      R"({"seed":7,"trials":10,"k":2,"n":6,"kind":"sweep","id":"j1",)"
      R"("client":"c1","op":"submit","schema":"rrfd-job-v1"})");
  EXPECT_EQ(req.canonical(), "sweep(n=6,k=2,trials=10)");
}

TEST(ServeWire, TornLinesAreNamed) {
  // A request cut mid-write must be reported as framing damage, not as
  // a generic parse error: the client needs to know bytes were lost.
  EXPECT_EQ(code_of(kSweep.substr(0, kSweep.size() - 1)),
            ErrorCode::kTornLine);
  EXPECT_EQ(code_of(kSweep.substr(0, 25)), ErrorCode::kTornLine);
  EXPECT_EQ(code_of(""), ErrorCode::kTornLine);
  // Trailing carriage returns / spaces are transport artifacts, not tears.
  EXPECT_NO_THROW(parse_request(kSweep + "\r"));
  EXPECT_NO_THROW(parse_request(kSweep + "  "));
}

TEST(ServeWire, SchemaIsMandatoryAndVersioned) {
  EXPECT_EQ(code_of(R"({"op":"stats"})"), ErrorCode::kBadVersion);
  EXPECT_EQ(code_of(R"({"schema":"rrfd-job-v2","op":"stats"})"),
            ErrorCode::kBadVersion);
  EXPECT_EQ(code_of(R"({"schema":"rrfd-trace-v1","op":"stats"})"),
            ErrorCode::kBadVersion);
}

TEST(ServeWire, UnknownOpsAndKindsAreNamed) {
  EXPECT_EQ(code_of(R"({"schema":"rrfd-job-v1","op":"cancel"})"),
            ErrorCode::kUnknownOp);
  EXPECT_EQ(
      code_of(R"({"schema":"rrfd-job-v1","op":"submit","client":"c",)"
              R"("id":"j","kind":"bench"})"),
      ErrorCode::kUnknownKind);
}

TEST(ServeWire, UnknownFieldsAreRejected) {
  // A field the kind does not define is a contract violation, not
  // something to ignore: silently dropped fields hide client bugs and
  // would split the cache key from the client's intent.
  EXPECT_EQ(code_of(
                R"({"schema":"rrfd-job-v1","op":"submit","client":"c1",)"
                R"("id":"j1","kind":"sweep","n":6,"k":2,"trials":10,)"
                R"("seed":7,"nice":1})"),
            ErrorCode::kUnknownField);
  // A modelcheck-only field on a sweep submission is just as unknown.
  EXPECT_EQ(code_of(
                R"({"schema":"rrfd-job-v1","op":"submit","client":"c1",)"
                R"("id":"j1","kind":"sweep","n":6,"k":2,"trials":10,)"
                R"("seed":7,"rounds":1})"),
            ErrorCode::kUnknownField);
}

TEST(ServeWire, DuplicateAndMissingFieldsAreNamed) {
  EXPECT_EQ(code_of(
                R"({"schema":"rrfd-job-v1","op":"submit","client":"c1",)"
                R"("client":"c2","id":"j1","kind":"sweep","n":6,"k":2,)"
                R"("trials":10,"seed":7})"),
            ErrorCode::kDuplicateField);
  EXPECT_EQ(code_of(
                R"({"schema":"rrfd-job-v1","op":"submit","client":"c1",)"
                R"("id":"j1","kind":"sweep","n":6,"k":2,"trials":10})"),
            ErrorCode::kMissingField);
}

TEST(ServeWire, RangeViolationsAreNamed) {
  for (const char* bad : {
           // n beyond the word-arena bound
           R"({"schema":"rrfd-job-v1","op":"submit","client":"c","id":"j",)"
           R"("kind":"sweep","n":65,"k":2,"trials":10,"seed":7})",
           // k > n
           R"({"schema":"rrfd-job-v1","op":"submit","client":"c","id":"j",)"
           R"("kind":"sweep","n":4,"k":5,"trials":10,"seed":7})",
           // zero trials
           R"({"schema":"rrfd-job-v1","op":"submit","client":"c","id":"j",)"
           R"("kind":"sweep","n":4,"k":2,"trials":0,"seed":7})",
           // negative integer
           R"({"schema":"rrfd-job-v1","op":"submit","client":"c","id":"j",)"
           R"("kind":"sweep","n":-4,"k":2,"trials":10,"seed":7})",
           // empty client
           R"({"schema":"rrfd-job-v1","op":"submit","client":"","id":"j",)"
           R"("kind":"sweep","n":4,"k":2,"trials":10,"seed":7})",
           // malformed HO spec, caught at admission
           R"x({"schema":"rrfd-job-v1","op":"submit","client":"c","id":"j",)x"
           R"x("kind":"modelcheck","n":3,"rounds":1,"spec_a":"loss_cap(",)x"
           R"x("spec_b":"mobile(1)"})x",
           // embedded trace that does not parse
           R"({"schema":"rrfd-job-v1","op":"submit","client":"c","id":"j",)"
           R"("kind":"replay","protocol":"flood_min","f":2,"trace":"nope"})",
       }) {
    EXPECT_EQ(code_of(bad), ErrorCode::kBadValue) << bad;
  }
}

TEST(ServeWire, IntegerOverflowIsABadValueNotWraparound) {
  EXPECT_EQ(code_of(
                R"({"schema":"rrfd-job-v1","op":"submit","client":"c1",)"
                R"("id":"j1","kind":"sweep","n":6,"k":2,"trials":10,)"
                R"("seed":99999999999999999999999})"),
            ErrorCode::kBadValue);
}

TEST(ServeWire, CanonicalFormNormalizesSpecSugar) {
  const auto canon = [](const std::string& a, const std::string& b) {
    Request req = parse_request(
        R"({"schema":"rrfd-job-v1","op":"submit","client":"c","id":"j",)"
        R"("kind":"modelcheck","n":3,"rounds":1,"spec_a":")" +
        a + R"(","spec_b":")" + b + R"("})");
    return req.canonical();
  };
  // Whitespace inside a spec must not split the cache key.
  EXPECT_EQ(canon("loss_cap(1)", "mobile(1)"),
            canon("loss_cap( 1 )", "mobile( 1 )"));
  EXPECT_NE(canon("loss_cap(1)", "mobile(1)"),
            canon("loss_cap(2)", "mobile(1)"));
}

TEST(ServeWire, StatsOpIsMinimal) {
  const Request req = parse_request(R"({"schema":"rrfd-job-v1","op":"stats"})");
  EXPECT_EQ(req.op, Op::kStats);
  EXPECT_EQ(code_of(R"({"schema":"rrfd-job-v1","op":"stats","id":"x"})"),
            ErrorCode::kUnknownField);
}

TEST(ServeWire, EscapedStringsRoundTrip) {
  EXPECT_EQ(json_escape("a\"b\\c\nd\te\x01"), "a\\\"b\\\\c\\nd\\te\\u0001");
  const Request req = parse_request(
      R"({"schema":"rrfd-job-v1","op":"submit","client":"c\n1","id":"j\"1",)"
      R"("kind":"sweep","n":6,"k":2,"trials":10,"seed":7})");
  EXPECT_EQ(req.client, "c\n1");
  EXPECT_EQ(req.id, "j\"1");
}

}  // namespace
}  // namespace rrfd::serve
