// End-to-end job-server contract (DESIGN.md "Job server"): every
// request line gets exactly one ack and every accepted submission
// exactly one terminal line; duplicate submissions -- concurrent or
// late -- cost one execution and receive byte-identical result
// payloads; sheds and wire errors are named, never silent; a server
// stamped with the `unknown` git rev refuses to cache. The stress test
// is the acceptance bar: >=1000 concurrent submissions across client
// threads, fully accounted, with cache dedup equal to the duplicate
// count.
#include "serve/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "agreement/flood_min.h"
#include "core/adversaries.h"
#include "core/engine.h"
#include "serve/wire.h"
#include "trace/trace.h"
#include "util/log.h"
#include "util/mutex.h"
#include "util/str.h"
#include "util/thread_annotations.h"

namespace rrfd::serve {
namespace {

bool has(const std::string& line, const std::string& needle) {
  return line.find(needle) != std::string::npos;
}

/// Everything after the request id's closing quote: the per-line bytes
/// that the cache promises are identical across duplicate submissions.
std::string after_id(const std::string& line) {
  const std::string tag = "\"id\":\"";
  const auto pos = line.find(tag);
  EXPECT_NE(pos, std::string::npos) << line;
  const auto end = line.find('"', pos + tag.size());
  return line.substr(end + 1);
}

std::string sweep_line(const std::string& client, const std::string& id,
                       int n, int k, int trials, std::uint64_t seed) {
  return cat(R"({"schema":"rrfd-job-v1","op":"submit","client":")", client,
             R"(","id":")", id, R"(","kind":"sweep","n":)", n, ",\"k\":", k,
             ",\"trials\":", trials, ",\"seed\":", seed, "}");
}

/// Thread-safe line collector; sinks may be invoked from worker threads.
class Collector {
 public:
  Server::LineSink sink() {
    return [this](const std::string& line) {
      MutexLock lock(mu_);
      lines_.push_back(line);
    };
  }

  std::vector<std::string> lines() const {
    MutexLock lock(mu_);
    return lines_;
  }

  std::vector<std::string> lines_for(const std::string& id) const {
    const std::string tag = cat("\"id\":\"", id, "\"");
    std::vector<std::string> out;
    for (const std::string& line : lines()) {
      if (has(line, tag)) out.push_back(line);
    }
    return out;
  }

  /// Row + done payloads for one submission, id envelope stripped.
  std::vector<std::string> payloads_for(const std::string& id) const {
    std::vector<std::string> out;
    for (const std::string& line : lines_for(id)) {
      if (has(line, "\"ev\":\"row\"") || has(line, "\"ev\":\"done\"")) {
        out.push_back(after_id(line));
      }
    }
    return out;
  }

 private:
  mutable Mutex mu_;
  std::vector<std::string> lines_ RRFD_GUARDED_BY(mu_);
};

ServerOptions test_options() {
  ServerOptions options;
  options.git_rev = "test-rev";
  return options;
}

TEST(ServeServer, SweepJobProducesAckRowsAndSealedDone) {
  Server server(test_options());
  Collector out;
  server.submit_line(sweep_line("c1", "j1", 4, 2, 3, 7), out.sink());
  server.drain();
  const auto lines = out.lines_for("j1");
  ASSERT_EQ(lines.size(), 5u);  // ack + 3 rows + done
  EXPECT_TRUE(has(lines[0], "\"ev\":\"accepted\"")) << lines[0];
  EXPECT_TRUE(has(lines[0], "\"source\":\"execute\"")) << lines[0];
  EXPECT_TRUE(has(lines[0], "sweep(n=4,k=2,trials=3)|seed=7|rev=test-rev"))
      << lines[0];
  EXPECT_TRUE(has(lines[1], "\"ev\":\"row\"")) << lines[1];
  EXPECT_TRUE(has(lines[1], "\"trial\":0")) << lines[1];
  EXPECT_TRUE(has(lines[4], "\"ev\":\"done\"")) << lines[4];
  EXPECT_TRUE(has(lines[4], "\"rows\":3")) << lines[4];
  EXPECT_TRUE(has(lines[4], "\"stream_digest\":")) << lines[4];
}

TEST(ServeServer, ResultBytesAreAPureFunctionOfJobSeedRev) {
  // Two independent servers produce byte-identical response lines for
  // the same submission -- the determinism the cache key stands on.
  const auto run_once = [] {
    Server server(test_options());
    Collector out;
    server.submit_line(sweep_line("c1", "j1", 6, 2, 5, 11), out.sink());
    server.drain();
    return out.lines();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(ServeServer, ConcurrentDuplicatesExecuteOnceByteIdentically) {
  Server server(test_options());
  Collector out;
  std::thread t1([&server, &out] {
    server.submit_line(sweep_line("c1", "a", 6, 2, 4, 9), out.sink());
  });
  std::thread t2([&server, &out] {
    server.submit_line(sweep_line("c2", "b", 6, 2, 4, 9), out.sink());
  });
  t1.join();
  t2.join();
  server.drain();

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.executed, 1u);
  EXPECT_EQ(stats.cache.leads, 1u);
  EXPECT_EQ(stats.cache.hits + stats.cache.joins, 1u);

  const auto pa = out.payloads_for("a");
  const auto pb = out.payloads_for("b");
  ASSERT_EQ(pa.size(), 5u);  // 4 rows + done
  EXPECT_EQ(pa, pb);
  // Each submission's stream starts with its ack and ends with its done.
  for (const char* id : {"a", "b"}) {
    const auto lines = out.lines_for(id);
    ASSERT_EQ(lines.size(), 6u) << id;
    EXPECT_TRUE(has(lines.front(), "\"ev\":\"accepted\"")) << lines.front();
    EXPECT_TRUE(has(lines.back(), "\"ev\":\"done\"")) << lines.back();
  }
}

TEST(ServeServer, LateDuplicateIsACacheHit) {
  Server server(test_options());
  Collector out;
  server.submit_line(sweep_line("c1", "first", 4, 2, 2, 3), out.sink());
  server.drain();
  server.submit_line(sweep_line("c2", "again", 4, 2, 2, 3), out.sink());
  const auto lines = out.lines_for("again");
  ASSERT_FALSE(lines.empty());
  EXPECT_TRUE(has(lines.front(), "\"source\":\"cache\"")) << lines.front();
  EXPECT_EQ(out.payloads_for("first"), out.payloads_for("again"));
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.executed, 1u);
  EXPECT_EQ(stats.cache.hits, 1u);
}

TEST(ServeServer, UnknownRevNeverCaches) {
  // A binary built outside git stamps "unknown" (trace::build_git_rev's
  // fallback); two different builds would share every cache key, so the
  // server must execute every submission and store nothing.
  ServerOptions options;
  options.git_rev = kUnknownRev;
  Server server(std::move(options));
  Collector out;
  server.submit_line(sweep_line("c1", "x1", 4, 2, 2, 3), out.sink());
  server.drain();
  server.submit_line(sweep_line("c1", "x2", 4, 2, 2, 3), out.sink());
  server.drain();
  for (const char* id : {"x1", "x2"}) {
    const auto lines = out.lines_for(id);
    ASSERT_FALSE(lines.empty());
    EXPECT_TRUE(has(lines.front(), "\"source\":\"uncached\"")) << lines.front();
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.executed, 2u);  // the duplicate was re-executed
  EXPECT_EQ(stats.cache.bypasses, 2u);
  EXPECT_EQ(stats.cache.leads, 0u);
  EXPECT_EQ(stats.cache.hits, 0u);
  // Identical bytes all the same: determinism does not depend on caching.
  EXPECT_EQ(out.payloads_for("x1"), out.payloads_for("x2"));
}

TEST(ServeServer, MalformedLinesAreNamedErrorsNotSilentDrops) {
  Server server(test_options());
  Collector out;
  server.submit_line(R"({"schema":"rrfd-job-v1","op":"submit")", out.sink());
  server.submit_line(R"({"schema":"rrfd-job-v0","op":"stats"})", out.sink());
  server.submit_line(
      R"({"schema":"rrfd-job-v1","op":"submit","client":"c","id":"j",)"
      R"("kind":"sweep","n":4,"k":2,"trials":1,"seed":1,"zzz":3})",
      out.sink());
  const auto lines = out.lines();
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_TRUE(has(lines[0], "\"ev\":\"error\"")) << lines[0];
  EXPECT_TRUE(has(lines[0], "\"code\":\"torn_line\"")) << lines[0];
  EXPECT_TRUE(has(lines[1], "\"code\":\"bad_version\"")) << lines[1];
  EXPECT_TRUE(has(lines[2], "\"code\":\"unknown_field\"")) << lines[2];
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.wire_errors, 3u);
  EXPECT_EQ(stats.executed, 0u);
}

TEST(ServeServer, QueueFullShedIsNamedAndLeavesNoWaiterHanging) {
  ServerOptions options;
  options.workers = 1;
  options.queue.depth = 1;
  options.git_rev = "test-rev";
  Server server(std::move(options));

  // Pin the single worker inside job a's delivery so the queue's one
  // slot is observably occupied by job b when job c arrives.
  Mutex mu;
  CondVar cv;
  bool worker_pinned = false;
  bool release = false;
  std::vector<std::string> a_lines;
  const auto pinning_sink = [&](const std::string& line) {
    MutexLock lock(mu);
    a_lines.push_back(line);
    if (has(line, "\"ev\":\"row\"") && !worker_pinned) {
      worker_pinned = true;
      cv.notify_all();
      while (!release) cv.wait(mu);
    }
  };
  server.submit_line(sweep_line("c", "a", 4, 2, 1, 1), pinning_sink);
  {
    MutexLock lock(mu);
    while (!worker_pinned) cv.wait(mu);
  }

  Collector out;
  server.submit_line(sweep_line("c", "b", 4, 2, 1, 2), out.sink());
  server.submit_line(sweep_line("c", "shed-me", 4, 2, 1, 3), out.sink());
  const auto shed = out.lines_for("shed-me");
  ASSERT_EQ(shed.size(), 1u);
  EXPECT_TRUE(has(shed[0], "\"ev\":\"shed\"")) << shed[0];
  EXPECT_TRUE(has(shed[0], "\"reason\":\"queue_full\"")) << shed[0];

  {
    MutexLock lock(mu);
    release = true;
  }
  cv.notify_all();
  server.drain();
  // The accepted job behind the shed one still completed.
  const auto b_lines = out.lines_for("b");
  ASSERT_FALSE(b_lines.empty());
  EXPECT_TRUE(has(b_lines.back(), "\"ev\":\"done\"")) << b_lines.back();
  EXPECT_EQ(server.stats().queue.shed_queue_full, 1u);
}

TEST(ServeServer, ClientCapShedsOnlyTheNoisyTenant) {
  ServerOptions options;
  options.workers = 1;
  options.queue.depth = 64;
  options.queue.per_client = 1;
  options.git_rev = "test-rev";
  Server server(std::move(options));

  Mutex mu;
  CondVar cv;
  bool worker_pinned = false;
  bool release = false;
  std::vector<std::string> a_lines;
  const auto pinning_sink = [&](const std::string& line) {
    MutexLock lock(mu);
    a_lines.push_back(line);
    if (has(line, "\"ev\":\"row\"") && !worker_pinned) {
      worker_pinned = true;
      cv.notify_all();
      while (!release) cv.wait(mu);
    }
  };
  server.submit_line(sweep_line("noisy", "a", 4, 2, 1, 1), pinning_sink);
  {
    MutexLock lock(mu);
    while (!worker_pinned) cv.wait(mu);
  }

  Collector out;
  // a was popped (its cap slot released); b occupies noisy's one slot.
  server.submit_line(sweep_line("noisy", "b", 4, 2, 1, 2), out.sink());
  server.submit_line(sweep_line("noisy", "c", 4, 2, 1, 3), out.sink());
  server.submit_line(sweep_line("quiet", "d", 4, 2, 1, 4), out.sink());
  const auto shed = out.lines_for("c");
  ASSERT_EQ(shed.size(), 1u);
  EXPECT_TRUE(has(shed[0], "\"reason\":\"client_cap\"")) << shed[0];
  ASSERT_FALSE(out.lines_for("d").empty());
  EXPECT_TRUE(has(out.lines_for("d").front(), "\"ev\":\"accepted\""));

  {
    MutexLock lock(mu);
    release = true;
  }
  cv.notify_all();
  server.drain();
  EXPECT_TRUE(has(out.lines_for("b").back(), "\"ev\":\"done\""));
  EXPECT_TRUE(has(out.lines_for("d").back(), "\"ev\":\"done\""));
  EXPECT_EQ(server.stats().queue.shed_client_cap, 1u);
}

TEST(ServeServer, ModelcheckJobReportsBothDirections) {
  Server server(test_options());
  Collector out;
  server.submit_line(
      R"x({"schema":"rrfd-job-v1","op":"submit","client":"c","id":"m1",)x"
      R"x("kind":"modelcheck","n":3,"rounds":1,"spec_a":"loss_cap(1)",)x"
      R"x("spec_b":"loss_cap( 1 )"})x",
      out.sink());
  server.drain();
  const auto lines = out.lines_for("m1");
  ASSERT_EQ(lines.size(), 4u);  // ack + forward + backward + done
  EXPECT_TRUE(has(lines[1], "\"dir\":\"forward\"")) << lines[1];
  EXPECT_TRUE(has(lines[1], "\"holds\":true")) << lines[1];
  EXPECT_TRUE(has(lines[2], "\"dir\":\"backward\"")) << lines[2];
  EXPECT_TRUE(has(lines[3], "\"equivalent\":true")) << lines[3];
}

TEST(ServeServer, ReplayJobReExecutesByteIdentically) {
  // Record an engine run the way the flight_recorder example does, ship
  // it through the wire protocol, and let the server re-execute it.
  constexpr int kN = 4;
  constexpr int kF = 1;
  trace::CaptureRecorder capture;
  {
    trace::ScopedTrace attach(&capture);
    std::vector<agreement::FloodMin> ps;
    for (int i = 0; i < kN; ++i) ps.emplace_back(i * 3 + 1, kF + 1);
    core::CrashAdversary adversary(kN, kF, /*seed=*/7);
    core::run_rounds(ps, adversary);
  }
  trace::Trace recorded;
  recorded.schema = trace::kTraceSchema;
  recorded.git_rev = "recorder-rev";
  recorded.events = capture.events();
  std::ostringstream os;
  trace::write_trace(os, recorded);

  Server server(test_options());
  Collector out;
  server.submit_line(
      cat(R"({"schema":"rrfd-job-v1","op":"submit","client":"c","id":"r1",)",
          R"("kind":"replay","protocol":"flood_min","f":)", kF,
          R"(,"trace":")", json_escape(os.str()), R"("})"),
      out.sink());
  server.drain();
  const auto lines = out.lines_for("r1");
  ASSERT_EQ(lines.size(), 3u);  // ack + row + done
  EXPECT_TRUE(has(lines[1], "\"byte_identical\":true")) << lines[1];
  EXPECT_TRUE(has(lines[1], "\"trace_rev\":\"recorder-rev\"")) << lines[1];
  EXPECT_TRUE(has(lines[2], "\"ev\":\"done\"")) << lines[2];
}

// ---------------------------------------------------------------------------
// Log sink-swap vs in-flight work. Log routes through an atomic
// captureless-function-pointer slot (util/log.h); swapping the sink or
// toggling the level from one thread while server workers emit through
// it must be race-free. Replay jobs ride along so the tracer
// shared_mutex path (writers exclusive, sweeps shared) runs under the
// same churn. This suite runs under TSan in CI.

std::atomic<int> g_swap_sink_a{0};
std::atomic<int> g_swap_sink_b{0};
void swap_sink_a(LogLevel, const std::string&) { ++g_swap_sink_a; }
void swap_sink_b(LogLevel, const std::string&) { ++g_swap_sink_b; }

TEST(ServeServer, LogSinkSwapDuringInFlightJobsIsRaceFree) {
  g_swap_sink_a = 0;
  g_swap_sink_b = 0;
  Log::Sink saved_sink = Log::set_sink(swap_sink_a);
  const LogLevel saved_level = Log::level();
  Log::set_level(LogLevel::kTrace);

  // A recorded trace for the replay jobs (exclusive tracer path); same
  // recipe as ReplayJobReExecutesByteIdentically above.
  trace::CaptureRecorder capture;
  {
    trace::ScopedTrace attach(&capture);
    std::vector<agreement::FloodMin> ps;
    for (int i = 0; i < 4; ++i) ps.emplace_back(i * 3 + 1, 2);
    core::CrashAdversary adversary(4, 1, /*seed=*/7);
    core::run_rounds(ps, adversary);
  }
  trace::Trace recorded;
  recorded.schema = trace::kTraceSchema;
  recorded.git_rev = "recorder-rev";
  recorded.events = capture.events();
  std::ostringstream os;
  trace::write_trace(os, recorded);
  const std::string replay_payload = json_escape(os.str());

  ServerOptions options = test_options();
  options.workers = 4;
  options.queue.depth = 256;
  options.queue.per_client = 256;
  Server server(options);
  Collector out;
  // Every delivered line also flows through the global log slot, so the
  // worker threads hammer Log::write while the main thread swaps below.
  const Server::LineSink sink = [inner = out.sink()](const std::string& line) {
    log_trace(line);
    inner(line);
  };
  for (int i = 0; i < 24; ++i) {
    server.submit_line(sweep_line("c", cat("swap-s", i), 4, 1, 2,
                                  100 + static_cast<std::uint64_t>(i)),
                       sink);
    if (i % 6 == 0) {
      server.submit_line(
          cat(R"({"schema":"rrfd-job-v1","op":"submit","client":"c",)",
              R"("id":"swap-r)", i,
              R"(","kind":"replay","protocol":"flood_min","f":1,)",
              R"("trace":")", replay_payload, R"("})"),
          sink);
    }
  }
  for (int i = 0; i < 400; ++i) {
    Log::set_sink(i % 2 == 0 ? swap_sink_b : swap_sink_a);
    if (i % 16 == 0) Log::set_level(LogLevel::kOff);
    if (i % 16 == 8) Log::set_level(LogLevel::kTrace);
  }
  Log::set_level(LogLevel::kTrace);
  server.drain();
  // At least one line is guaranteed to land in a counting sink even if
  // every delivery happened to straddle a kOff window above.
  log_trace("post-drain");

  Log::set_sink(saved_sink);
  Log::set_level(saved_level);

  // Full accounting survives the churn: one ack and one terminal line
  // per submission, and the swapped-in sinks actually received lines.
  for (int i = 0; i < 24; ++i) {
    const auto lines = out.lines_for(cat("swap-s", i));
    ASSERT_GE(lines.size(), 2u) << i;
    EXPECT_TRUE(has(lines.back(), "\"ev\":\"done\"")) << lines.back();
  }
  for (int i = 0; i < 24; i += 6) {
    const auto lines = out.lines_for(cat("swap-r", i));
    ASSERT_GE(lines.size(), 2u) << i;
    EXPECT_TRUE(has(lines.back(), "\"ev\":\"done\"")) << lines.back();
  }
  EXPECT_GT(g_swap_sink_a.load() + g_swap_sink_b.load(), 0);
}

TEST(ServeServer, StatsOpAnswersSynchronously) {
  Server server(test_options());
  Collector out;
  server.submit_line(sweep_line("c1", "j1", 4, 2, 1, 1), out.sink());
  server.drain();
  server.submit_line(R"({"schema":"rrfd-job-v1","op":"stats"})", out.sink());
  const auto lines = out.lines();
  ASSERT_FALSE(lines.empty());
  const std::string& stats_line = lines.back();
  EXPECT_TRUE(has(stats_line, "\"ev\":\"stats\"")) << stats_line;
  EXPECT_TRUE(has(stats_line, "\"executed\":1")) << stats_line;
  EXPECT_TRUE(has(stats_line, "\"rev\":\"test-rev\"")) << stats_line;
}

TEST(ServeServer, ThousandConcurrentJobsAccountFullyAndDedup) {
  // The acceptance stress: >=1000 concurrent submissions across client
  // threads drawn from a small pool of distinct jobs. Every submission
  // is acked exactly once and terminated exactly once (nothing lost
  // silently), the distinct jobs execute exactly once each, the cache
  // absorbs every duplicate, and duplicates receive byte-identical
  // payload streams.
  constexpr int kClients = 8;
  constexpr int kPerClient = 125;
  constexpr int kDistinct = 25;

  ServerOptions options;
  options.workers = 4;
  options.queue.depth = 2048;     // deep enough that nothing sheds:
  options.queue.per_client = 2048;  // the assertions below are exact
  options.git_rev = "test-rev";
  Server server(std::move(options));

  Collector out;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&server, &out, c] {
      for (int i = 0; i < kPerClient; ++i) {
        const int job = (c * kPerClient + i) % kDistinct;
        server.submit_line(
            sweep_line(cat("client-", c), cat("t", c, "-", i), 4, 2, 2,
                       static_cast<std::uint64_t>(job)),
            out.sink());
      }
    });
  }
  for (auto& t : clients) t.join();
  server.drain();

  const ServerStats stats = server.stats();
  constexpr auto kTotal =
      static_cast<std::uint64_t>(kClients) * kPerClient;
  EXPECT_EQ(stats.requests, kTotal);
  EXPECT_EQ(stats.wire_errors, 0u);
  EXPECT_EQ(stats.executed, kDistinct);
  EXPECT_EQ(stats.cache.leads, kDistinct);
  // The dedup ledger: every duplicate is a hit or a join, nothing else.
  EXPECT_EQ(stats.cache.hits + stats.cache.joins, kTotal - kDistinct);
  EXPECT_EQ(stats.cache.failures, 0u);
  EXPECT_EQ(stats.queue.accepted, kDistinct);
  EXPECT_EQ(stats.queue.shed_queue_full, 0u);
  EXPECT_EQ(stats.queue.shed_client_cap, 0u);

  // Per-submission accounting and byte-identity across duplicates.
  std::map<int, std::vector<std::string>> stream_by_job;
  for (int c = 0; c < kClients; ++c) {
    for (int i = 0; i < kPerClient; ++i) {
      const std::string id = cat("t", c, "-", i);
      const auto lines = out.lines_for(id);
      ASSERT_FALSE(lines.empty()) << id;
      EXPECT_TRUE(has(lines.front(), "\"ev\":\"accepted\"")) << lines.front();
      int acks = 0;
      int terminals = 0;
      for (const std::string& line : lines) {
        if (has(line, "\"ev\":\"accepted\"") || has(line, "\"ev\":\"shed\"")) {
          ++acks;
        }
        if (has(line, "\"ev\":\"done\"") || has(line, "\"ev\":\"error\"")) {
          ++terminals;
        }
      }
      EXPECT_EQ(acks, 1) << id;
      EXPECT_EQ(terminals, 1) << id;
      EXPECT_TRUE(has(lines.back(), "\"ev\":\"done\"")) << lines.back();

      const int job = (c * kPerClient + i) % kDistinct;
      const auto payloads = out.payloads_for(id);
      const auto [it, inserted] = stream_by_job.emplace(job, payloads);
      if (!inserted) {
        EXPECT_EQ(it->second, payloads) << id;
      }
    }
  }
  EXPECT_EQ(stream_by_job.size(), static_cast<std::size_t>(kDistinct));
}

}  // namespace
}  // namespace rrfd::serve
