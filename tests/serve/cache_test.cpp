// Result-cache contract: one execution per key (lead / join / hit),
// byte-identical replays, failures never stored, and -- the PR's
// rev-poisoning fix -- a cache whose binary is stamped `unknown`
// refuses to cache anything at all.
#include "serve/cache.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace rrfd::serve {
namespace {

JobResult ok_result(const std::string& payload) {
  JobResult r;
  r.rows = {payload};
  r.done = "\"rows\":1";
  return r;
}

TEST(ServeCache, KeyIsCanonicalSeedRev) {
  ResultCache cache("abc1234");
  EXPECT_EQ(cache.key("sweep(n=6,k=2,trials=10)", 7),
            "sweep(n=6,k=2,trials=10)|seed=7|rev=abc1234");
  // Different seeds and different revs are different keys.
  EXPECT_NE(cache.key("sweep(n=6,k=2,trials=10)", 7),
            cache.key("sweep(n=6,k=2,trials=10)", 8));
  EXPECT_NE(cache.key("x", 0), ResultCache("def5678").key("x", 0));
}

TEST(ServeCache, LeadThenHitReplaysTheStoredResult) {
  ResultCache cache("abc1234");
  std::shared_ptr<const JobResult> hit;
  ASSERT_EQ(cache.submit("k1", [](const JobResult&) {}, &hit),
            ResultCache::Outcome::kLead);
  cache.publish("k1", ok_result("\"trial\":0,\"digest\":42"));

  ASSERT_EQ(cache.submit("k1", [](const JobResult&) {}, &hit),
            ResultCache::Outcome::kHit);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->rows, (std::vector<std::string>{"\"trial\":0,\"digest\":42"}));
  const auto stats = cache.stats();
  EXPECT_EQ(stats.leads, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.joins, 0u);
}

TEST(ServeCache, JoinersAreDeliveredByThePublisher) {
  ResultCache cache("abc1234");
  std::shared_ptr<const JobResult> hit;
  ASSERT_EQ(cache.submit("k1", [](const JobResult&) {}, &hit),
            ResultCache::Outcome::kLead);

  std::vector<std::string> delivered;
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(cache.submit(
                  "k1",
                  [&delivered, i](const JobResult& r) {
                    delivered.push_back(std::to_string(i) + ":" + r.rows[0]);
                  },
                  &hit),
              ResultCache::Outcome::kJoined);
  }
  EXPECT_TRUE(delivered.empty());  // nothing until the leader publishes
  cache.publish("k1", ok_result("row"));
  EXPECT_EQ(delivered, (std::vector<std::string>{"0:row", "1:row", "2:row"}));
  EXPECT_EQ(cache.stats().joins, 3u);
}

TEST(ServeCache, FailuresReachWaitersButAreNotCached) {
  ResultCache cache("abc1234");
  std::shared_ptr<const JobResult> hit;
  ASSERT_EQ(cache.submit("k1", [](const JobResult&) {}, &hit),
            ResultCache::Outcome::kLead);
  std::string seen;
  EXPECT_EQ(cache.submit(
                "k1",
                [&seen](const JobResult& r) {
                  seen = r.failed ? r.error_code : "ok";
                },
                &hit),
            ResultCache::Outcome::kJoined);
  JobResult error;
  error.failed = true;
  error.error_code = "exec_error";
  cache.fail("k1", error);
  EXPECT_EQ(seen, "exec_error");
  // A transient failure must not poison the key: the next submission
  // leads a fresh execution instead of replaying the error.
  EXPECT_EQ(cache.submit("k1", [](const JobResult&) {}, &hit),
            ResultCache::Outcome::kLead);
  EXPECT_EQ(cache.stats().failures, 1u);
}

TEST(ServeCache, UnknownRevRefusesToCache) {
  // trace.cpp stamps binaries built outside git with RRFD_GIT_REV
  // "unknown"; under that stamp two *different* builds share every
  // key, so caching would serve stale results across revisions. The
  // cache must refuse wholesale.
  ResultCache cache(kUnknownRev);
  EXPECT_FALSE(cache.caching_enabled());
  std::shared_ptr<const JobResult> hit;
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(cache.submit("k1", [](const JobResult&) {}, &hit),
              ResultCache::Outcome::kBypass);
  }
  const auto stats = cache.stats();
  EXPECT_EQ(stats.bypasses, 3u);
  EXPECT_EQ(stats.leads, 0u);
  EXPECT_EQ(stats.hits, 0u);
}

TEST(ServeCache, ConcurrentSubmittersCostOneLead) {
  ResultCache cache("abc1234");
  constexpr int kThreads = 8;
  std::atomic<int> leads{0};
  std::atomic<int> delivered{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &leads, &delivered] {
      std::shared_ptr<const JobResult> hit;
      const auto outcome = cache.submit(
          "hot-key", [&delivered](const JobResult&) { ++delivered; }, &hit);
      switch (outcome) {
        case ResultCache::Outcome::kLead:
          ++leads;
          cache.publish("hot-key", ok_result("row"));
          break;
        case ResultCache::Outcome::kHit:
          ++delivered;  // caller renders the hit itself
          break;
        case ResultCache::Outcome::kJoined:
        case ResultCache::Outcome::kBypass:
          break;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(leads.load(), 1);
  EXPECT_EQ(delivered.load(), kThreads - 1);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.leads, 1u);
  EXPECT_EQ(stats.joins + stats.hits, kThreads - 1u);
}

}  // namespace
}  // namespace rrfd::serve
