// Sharded exhaustive submodel checks over the worker pool: the result --
// verdict, counterexample, every work counter -- must be byte-identical
// to the serial engine at any thread count. This is the "Sweep
// determinism" contract (DESIGN.md) applied to the DFS shards.
#include "sweep/submodel_parallel.h"

#include <gtest/gtest.h>

#include <cstdint>

#include "core/predicates.h"

namespace rrfd::sweep {
namespace {

using core::ImplicationResult;

void expect_identical(const ImplicationResult& want,
                      const ImplicationResult& got) {
  EXPECT_EQ(want.holds, got.holds);
  EXPECT_EQ(want.patterns_checked, got.patterns_checked);
  ASSERT_EQ(want.counterexample.has_value(), got.counterexample.has_value());
  if (want.counterexample.has_value()) {
    EXPECT_EQ(*want.counterexample, *got.counterexample);
  }
  EXPECT_EQ(want.stats.nodes, got.stats.nodes);
  EXPECT_EQ(want.stats.leaves, got.stats.leaves);
  EXPECT_EQ(want.stats.pruned_subtrees, got.stats.pruned_subtrees);
  EXPECT_EQ(want.stats.patterns_decided, got.stats.patterns_decided);
  EXPECT_EQ(want.stats.expanded_roots, got.stats.expanded_roots);
  EXPECT_EQ(want.stats.total_roots, got.stats.total_roots);
  EXPECT_EQ(want.stats.symmetry_used, got.stats.symmetry_used);
  EXPECT_EQ(want.stats.shards, got.stats.shards);
}

TEST(SubmodelParallel, HoldingImplicationIdenticalAcrossThreadCounts) {
  const auto a = core::atomic_snapshot(1);
  const auto b = core::k_uncertainty(2);
  const auto serial = core::implies_exhaustive(*a, *b, 3, 2);
  EXPECT_TRUE(serial.holds);
  EXPECT_EQ(serial.patterns_checked, std::int64_t{117649});  // 7^6
  for (const int threads : {1, 2, 8}) {
    expect_identical(serial, implies_exhaustive(*a, *b, 3, 2, threads));
  }
}

TEST(SubmodelParallel, RefutedImplicationIdenticalAcrossThreadCounts) {
  // The counterexample is defined by shard index order, not by which
  // worker thread reaches its shard first.
  const auto a = core::sync_omission(1);
  const auto b = core::sync_crash(1);
  const auto serial = core::implies_exhaustive(*a, *b, 3, 2);
  EXPECT_FALSE(serial.holds);
  ASSERT_TRUE(serial.counterexample.has_value());
  for (const int threads : {1, 2, 8}) {
    const auto r = implies_exhaustive(*a, *b, 3, 2, threads);
    expect_identical(serial, r);
    EXPECT_TRUE(a->holds(*r.counterexample));
    EXPECT_FALSE(b->holds(*r.counterexample));
  }
}

TEST(SubmodelParallel, EquivalenceIdenticalAcrossThreadCounts) {
  const core::ImmortalProcess immortal;
  const core::CumulativeFaultBound bound(2);  // n - 1 at n = 3
  const auto serial = core::equivalent_exhaustive(immortal, bound, 3, 2);
  EXPECT_TRUE(serial.equivalent());
  for (const int threads : {1, 2, 8}) {
    const auto r = equivalent_exhaustive(immortal, bound, 3, 2, threads);
    expect_identical(serial.forward, r.forward);
    expect_identical(serial.backward, r.backward);
    EXPECT_TRUE(r.equivalent());
  }
}

TEST(SubmodelParallel, RunnerRespectsExtraOptions) {
  // Pruning off + sharded must still match serial pruning-off exactly.
  core::EnumOptions no_prune;
  no_prune.prune = false;
  const auto a = core::k_uncertainty(1);
  const auto b = core::equal_announcements();
  const auto serial = core::implies_exhaustive(*a, *b, 3, 1, no_prune);
  for (const int threads : {2, 8}) {
    expect_identical(serial,
                     implies_exhaustive(*a, *b, 3, 1, threads, no_prune));
  }
}

}  // namespace
}  // namespace rrfd::sweep
