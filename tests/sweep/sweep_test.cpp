// The sweep determinism contract (DESIGN.md "Sweep determinism"):
// counter-derived RNG streams, trial-ordered reduction, byte-identical
// results at any thread count, serial execution under tracing, and
// serial-equivalent sharded exhaustive exploration.
#include "sweep/sweep.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <thread>

#include "agreement/adopt_commit.h"
#include "agreement/one_round_kset.h"
#include "agreement/tasks.h"
#include "core/adversaries.h"
#include "core/engine.h"
#include "runtime/schedulers.h"
#include "sweep/sharded_explorer.h"
#include "trace/trace.h"

namespace rrfd::sweep {
namespace {

TEST(Sweep, ResultsAreTrialOrdered) {
  const auto results = run(
      100, 7, [](int trial, Rng&) { return trial * trial; }, /*threads=*/4);
  ASSERT_EQ(results.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(results[static_cast<std::size_t>(i)], i * i);
  }
}

TEST(Sweep, ZeroTrials) {
  const auto results =
      run(0, 7, [](int, Rng&) { return 1; }, /*threads=*/8);
  EXPECT_TRUE(results.empty());
}

TEST(Sweep, RngStreamsMatchSerialDerivation) {
  // Contract item 1: trial i's generator is Rng::stream(seed, i) exactly,
  // independent of worker scheduling.
  const std::uint64_t seed = 99;
  const auto drawn = run(
      32, seed, [](int, Rng& rng) { return rng(); }, /*threads=*/4);
  for (int i = 0; i < 32; ++i) {
    Rng expect = Rng::stream(seed, static_cast<std::uint64_t>(i));
    EXPECT_EQ(drawn[static_cast<std::size_t>(i)], expect());
  }
}

/// An E1-shaped trial: one-round k-set agreement under a seeded
/// k-uncertainty adversary, digested to a single word.
std::uint64_t e1_trial(int n, int k, Rng& rng) {
  std::vector<agreement::OneRoundKSet> ps;
  for (int i = 0; i < n; ++i) ps.emplace_back(i + 1);
  core::KUncertaintyAdversary adv(n, k, rng());
  auto result = core::run_rounds(ps, adv);
  std::uint64_t digest = 0xcbf29ce484222325ULL;
  for (const auto& d : result.decisions) {
    digest ^= static_cast<std::uint64_t>(d.value_or(-1));
    digest *= 0x100000001b3ULL;
  }
  return digest;
}

TEST(Sweep, SerialAndParallelAreByteIdentical) {
  // Contract item 3 over a full E1-style sweep (EXPERIMENTS.md E1).
  auto fn = [](int, Rng& rng) { return e1_trial(16, 2, rng); };
  const auto serial = run(200, 0xE1, fn, /*threads=*/1);
  for (int threads : {2, 3, 8}) {
    EXPECT_EQ(run(200, 0xE1, fn, threads), serial)
        << "results diverged at " << threads << " threads";
  }
}

TEST(Sweep, LowestFailingTrialIsRethrown) {
  auto fn = [](int trial, Rng&) -> int {
    if (trial == 3 || trial == 7) {
      throw std::runtime_error("trial " + std::to_string(trial));
    }
    return trial;
  };
  for (int threads : {1, 4}) {
    try {
      run(16, 0, fn, threads);
      FAIL() << "expected a throw at " << threads << " threads";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "trial 3");
    }
  }
}

TEST(Sweep, TracingForcesSerialInTrialOrder) {
  trace::CaptureRecorder capture;
  trace::ScopedTrace scoped(&capture);
  const auto main_thread = std::this_thread::get_id();
  std::vector<int> order;
  (void)run(
      20, 1,
      [&](int trial, Rng&) {
        EXPECT_EQ(std::this_thread::get_id(), main_thread);
        order.push_back(trial);
        trace::record(trace::EventKind::kEmit, trace::Substrate::kEngine,
                      trial, 0);
        return trial;
      },
      /*threads=*/8);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
    EXPECT_EQ(capture.events()[static_cast<std::size_t>(i)].proc, i);
  }
}

TEST(Sweep, ThreadsFromEnvParsesStrictly) {
  // rrfd-lint: allow(no-env-sideband) -- this test exercises the hook itself
  ASSERT_EQ(setenv("RRFD_SWEEP_THREADS", "8", 1), 0);
  EXPECT_EQ(threads_from_env(), 8);
  // rrfd-lint: allow(no-env-sideband) -- this test exercises the hook itself
  ASSERT_EQ(setenv("RRFD_SWEEP_THREADS", "0", 1), 0);
  EXPECT_EQ(threads_from_env(), 0);
  // rrfd-lint: allow(no-env-sideband) -- this test exercises the hook itself
  ASSERT_EQ(setenv("RRFD_SWEEP_THREADS", "eight", 1), 0);
  EXPECT_THROW(threads_from_env(), ContractViolation);
  // rrfd-lint: allow(no-env-sideband) -- this test exercises the hook itself
  ASSERT_EQ(setenv("RRFD_SWEEP_THREADS", "-2", 1), 0);
  EXPECT_THROW(threads_from_env(), ContractViolation);
  // rrfd-lint: allow(no-env-sideband) -- this test exercises the hook itself
  ASSERT_EQ(unsetenv("RRFD_SWEEP_THREADS"), 0);
  EXPECT_EQ(threads_from_env(), 0);
}

TEST(Sweep, ThreadsFromEnvRejectsEveryNonDigitForm) {
  // Golden regression for the strtol-era holes: leading whitespace and a
  // '+' prefix used to parse as valid, and values past INT_MAX depended
  // on strtol's clamping. The contract is digits-only in [0, 4096]; every
  // deviation is one clean ContractViolation, never a silent fallback.
  for (const char* bad : {
           " 8",                      // leading whitespace (strtol accepted)
           "8 ",                      // trailing whitespace
           "+8",                      // sign prefix (strtol accepted)
           "-0",                      // signed zero is still signed
           "4097",                    // above the documented cap
           "99999999999999999999",    // would overflow long long
           "2147483648",              // INT_MAX + 1 (strtol clamps to LONG_MAX)
           "0x8",                     // hex is not digits-only
           "8\n",                     // stray control character
       }) {
    // rrfd-lint: allow(no-env-sideband) -- this test exercises the hook itself
    ASSERT_EQ(setenv("RRFD_SWEEP_THREADS", bad, 1), 0);
    EXPECT_THROW(threads_from_env(), ContractViolation)
        << "accepted RRFD_SWEEP_THREADS=\"" << bad << '"';
  }
  // The boundary itself is valid.
  // rrfd-lint: allow(no-env-sideband) -- this test exercises the hook itself
  ASSERT_EQ(setenv("RRFD_SWEEP_THREADS", "4096", 1), 0);
  EXPECT_EQ(threads_from_env(), 4096);
  // rrfd-lint: allow(no-env-sideband) -- this test exercises the hook itself
  ASSERT_EQ(unsetenv("RRFD_SWEEP_THREADS"), 0);
}

TEST(Sweep, ConcurrentThrowsLeaveNoEmptySlot) {
  // Regression for the empty-slot hazard in run(): when many trials
  // throw at once from different workers, the surviving results must
  // still fill every non-throwing slot, the lowest failing trial must
  // win the rethrow race, and no worker may touch an unfilled slot
  // (run under TSan in CI; the ENSURE in run() guards the Release path).
  auto fn = [](int trial, Rng&) -> int {
    if (trial % 3 == 0) {
      throw std::runtime_error("trial " + std::to_string(trial));
    }
    return trial;
  };
  for (int threads : {2, 4, 8}) {
    for (int attempt = 0; attempt < 10; ++attempt) {
      try {
        run(64, 0, fn, threads);
        FAIL() << "expected a throw at " << threads << " threads";
      } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "trial 0");
      }
    }
  }
  // All-throwing sweeps exercise the path where *every* slot is empty.
  auto always = [](int trial, Rng&) -> int {
    throw std::runtime_error("trial " + std::to_string(trial));
  };
  try {
    run(32, 0, always, /*threads=*/8);
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "trial 0");
  }
}

// ---------------------------------------------------------------------------
// Sharded exhaustive exploration.
// ---------------------------------------------------------------------------

/// Signature of one explored schedule: the step sequence plus who crashed.
struct Signature {
  std::vector<runtime::ProcId> schedule;
  std::uint64_t crashed = 0;
  std::vector<int> outcome;

  friend bool operator==(const Signature&, const Signature&) = default;
};

/// Runs the n = 2 adopt-commit protocol (EXPERIMENTS.md E10's exhaustive
/// model check) under one schedule and records its signature.
Signature run_adopt_commit(runtime::Scheduler& sched) {
  agreement::AdoptCommit ac(2);
  std::vector<std::optional<agreement::AdoptCommitResult>> results(2);
  runtime::Simulation sim(2, [&](runtime::Context& ctx) {
    results[static_cast<std::size_t>(ctx.id())] = ac.run(ctx, ctx.id());
  });
  auto out = sim.run(sched);
  Signature sig;
  sig.schedule = out.schedule;
  sig.crashed = out.crashed.bits();
  for (const auto& r : results) {
    sig.outcome.push_back(r ? (r->commit ? 100 + r->value : r->value) : -1);
  }
  return sig;
}

TEST(ShardedExplorer, AdoptCommitMatchesSerialByteForByte) {
  for (int crashes : {0, 1}) {
    runtime::ScheduleExplorer::Options opts;
    opts.max_schedules = 5000000;
    opts.max_crashes = crashes;

    std::vector<Signature> serial;
    runtime::ScheduleExplorer explorer(opts);
    auto serial_stats = explorer.explore([&](runtime::Scheduler& sched) {
      serial.push_back(run_adopt_commit(sched));
    });
    ASSERT_TRUE(serial_stats.exhausted);

    // Sharded, 4 workers; per-shard collections spliced in shard order
    // must reproduce the serial visit sequence exactly.
    std::vector<std::vector<Signature>> per_shard(16);
    auto stats = explore_sharded(
        opts,
        [&](int shard) -> std::function<void(runtime::Scheduler&)> {
          if (shard < 0) {
            return [](runtime::Scheduler& sched) { run_adopt_commit(sched); };
          }
          auto* sink = &per_shard[static_cast<std::size_t>(shard)];
          return [sink](runtime::Scheduler& sched) {
            sink->push_back(run_adopt_commit(sched));
          };
        },
        /*threads=*/4);
    EXPECT_TRUE(stats.exhausted);
    EXPECT_EQ(stats.schedules, serial_stats.schedules);

    std::vector<Signature> spliced;
    for (const auto& shard : per_shard) {
      spliced.insert(spliced.end(), shard.begin(), shard.end());
    }
    EXPECT_EQ(spliced, serial) << "crashes<=" << crashes;
  }
}

TEST(ShardedExplorer, NoDecisionPointTreeRunsOnce) {
  runtime::ScheduleExplorer::Options opts;
  int probe_runs = 0;
  int collected_runs = 0;
  auto stats = explore_sharded(
      opts,
      [&](int shard) -> std::function<void(runtime::Scheduler&)> {
        int* counter = shard < 0 ? &probe_runs : &collected_runs;
        return [counter](runtime::Scheduler& sched) {
          runtime::Simulation sim(1, [](runtime::Context& ctx) { ctx.step(); });
          sim.run(sched);
          ++*counter;
        };
      },
      /*threads=*/4);
  EXPECT_TRUE(stats.exhausted);
  EXPECT_EQ(stats.schedules, 1);
  EXPECT_EQ(collected_runs, 1);
}

TEST(ShardedExplorer, TracedRunMatchesSerialTrace) {
  // Contract item 4 for exhaustive exploration: with a sink attached, the
  // sharded explorer's event stream is byte-identical to the serial one
  // (shards run sequentially with accumulated ordinals; probe silenced).
  auto run_one = [](runtime::Scheduler& sched) {
    runtime::Simulation sim(2, [](runtime::Context& ctx) { ctx.step(); });
    sim.run(sched);
  };

  trace::CaptureRecorder serial_capture;
  {
    trace::ScopedTrace scoped(&serial_capture);
    runtime::ScheduleExplorer explorer;
    auto stats = explorer.explore(run_one);
    ASSERT_TRUE(stats.exhausted);
  }

  trace::CaptureRecorder sharded_capture;
  {
    trace::ScopedTrace scoped(&sharded_capture);
    auto stats = explore_sharded(
        runtime::ScheduleExplorer::Options{},
        [&](int) -> std::function<void(runtime::Scheduler&)> {
          return run_one;
        },
        /*threads=*/8);
    ASSERT_TRUE(stats.exhausted);
  }
  EXPECT_EQ(sharded_capture.events(), serial_capture.events());
}

}  // namespace
}  // namespace rrfd::sweep
