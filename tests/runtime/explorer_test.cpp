#include "runtime/explorer.h"

#include <gtest/gtest.h>

#include <set>

#include "runtime/schedulers.h"

namespace rrfd::runtime {
namespace {

TEST(ScheduleExplorer, SingleProcessHasOneScheduleishPath) {
  ScheduleExplorer explorer;
  int runs = 0;
  auto stats = explorer.explore([&](Scheduler& sched) {
    Simulation sim(1, [](Context& ctx) {
      ctx.step();
      ctx.step();
    });
    sim.run(sched);
    ++runs;
  });
  EXPECT_TRUE(stats.exhausted);
  EXPECT_EQ(stats.schedules, 1);
  EXPECT_EQ(runs, 1);
}

TEST(ScheduleExplorer, EnumeratesAllInterleavings) {
  // Two processes, one step each: grants are (start_a, act_a) and
  // (start_b, act_b); the explorer must cover every legal interleaving of
  // the two grant pairs: C(4,2) = 6 schedules.
  ScheduleExplorer explorer;
  std::set<std::vector<ProcId>> schedules;
  auto stats = explorer.explore([&](Scheduler& sched) {
    Simulation sim(2, [](Context& ctx) { ctx.step(); });
    SimOutcome out = sim.run(sched);
    schedules.insert(out.schedule);
  });
  EXPECT_TRUE(stats.exhausted);
  EXPECT_EQ(stats.schedules, 6);
  EXPECT_EQ(schedules.size(), 6u);
}

TEST(ScheduleExplorer, FindsRaceOutcomes) {
  // Classic lost-update race: both processes read, then write read+1.
  // Exhaustive exploration must find both the serialized outcome (2) and
  // the lost-update outcome (1).
  std::set<int> outcomes;
  ScheduleExplorer explorer;
  explorer.explore([&](Scheduler& sched) {
    int reg = 0;
    Simulation sim(2, [&](Context& ctx) {
      ctx.step();
      const int seen = reg;  // read
      ctx.step();
      reg = seen + 1;  // write
    });
    sim.run(sched);
    outcomes.insert(reg);
  });
  EXPECT_EQ(outcomes, (std::set<int>{1, 2}));
}

TEST(ScheduleExplorer, RespectsMaxSchedules) {
  ScheduleExplorer::Options opts;
  opts.max_schedules = 3;
  ScheduleExplorer explorer(opts);
  int runs = 0;
  auto stats = explorer.explore([&](Scheduler& sched) {
    Simulation sim(3, [](Context& ctx) { ctx.step(); });
    sim.run(sched);
    ++runs;
  });
  EXPECT_FALSE(stats.exhausted);
  EXPECT_EQ(stats.schedules, 3);
  EXPECT_EQ(runs, 3);
}

TEST(ScheduleExplorer, CrashBudgetAddsCrashBranches) {
  // With a crash budget, some schedules must end with a crashed process.
  ScheduleExplorer::Options opts;
  opts.max_crashes = 1;
  ScheduleExplorer explorer(opts);
  bool saw_crash = false, saw_clean = false;
  auto stats = explorer.explore([&](Scheduler& sched) {
    Simulation sim(2, [](Context& ctx) { ctx.step(); });
    SimOutcome out = sim.run(sched);
    saw_crash = saw_crash || !out.crashed.empty();
    saw_clean = saw_clean || out.crashed.empty();
  });
  EXPECT_TRUE(stats.exhausted);
  EXPECT_TRUE(saw_crash);
  EXPECT_TRUE(saw_clean);
}

TEST(ScheduleExplorer, PropagatesAssertionFailures) {
  ScheduleExplorer explorer;
  EXPECT_THROW(explorer.explore([&](Scheduler& sched) {
    Simulation sim(2, [](Context& ctx) { ctx.step(); });
    SimOutcome out = sim.run(sched);
    if (out.schedule.front() == 1) throw std::runtime_error("found it");
  }),
               std::runtime_error);
}

/// Records the full choice sequence (steps *and* crashes) of one run;
/// distinct explored schedules have distinct sequences by construction,
/// so duplicates indicate stale backtracking state.
class RecordingScheduler final : public Scheduler {
 public:
  RecordingScheduler(Scheduler& inner,
                     std::vector<std::pair<ProcId, bool>>& out)
      : inner_(inner), out_(out) {}

  Choice pick(const ProcessSet& runnable, int step) override {
    Choice c = inner_.pick(runnable, step);
    out_.emplace_back(c.next, c.crash);
    return c;
  }

 private:
  Scheduler& inner_;
  std::vector<std::pair<ProcId, bool>>& out_;
};

/// Independent reference: counts the decision tree of a system in which
/// process i needs grants[i] scheduler grants (body steps + 1) and up to
/// `crashes_left` runnable processes may be crashed instead of stepped.
long reference_count(std::vector<int>& grants, std::uint64_t crashed,
                     int crashes_left) {
  const int n = static_cast<int>(grants.size());
  long total = 0;
  bool any_runnable = false;
  for (int p = 0; p < n; ++p) {
    if ((crashed >> p) & 1 || grants[static_cast<std::size_t>(p)] == 0) {
      continue;
    }
    any_runnable = true;
    --grants[static_cast<std::size_t>(p)];
    total += reference_count(grants, crashed, crashes_left);
    ++grants[static_cast<std::size_t>(p)];
  }
  if (crashes_left > 0) {
    for (int p = 0; p < n; ++p) {
      if ((crashed >> p) & 1 || grants[static_cast<std::size_t>(p)] == 0) {
        continue;
      }
      total += reference_count(grants, crashed | (1ULL << p), crashes_left - 1);
    }
  }
  return any_runnable ? total : 1;
}

TEST(ScheduleExplorer, VariableDepthCrashTreesCountExactly) {
  // Asymmetric step counts + crash budgets make schedule depth vary:
  // a schedule that crashes a process early terminates with fewer
  // decision points than its neighbors. The explorer must still visit
  // every schedule exactly once (count pinned by an independent
  // enumerator, uniqueness by the recorded choice sequences) -- the
  // regression for the stale-deeper-node truncation bug.
  struct Case {
    std::vector<int> steps;
    int crashes;
  };
  for (const Case& c : {Case{{1, 3}, 0}, Case{{1, 3}, 1}, Case{{1, 3}, 2},
                        Case{{2, 1}, 1}, Case{{1, 1, 2}, 1}}) {
    ScheduleExplorer::Options opts;
    opts.max_schedules = 1000000;
    opts.max_crashes = c.crashes;
    ScheduleExplorer explorer(opts);

    std::set<std::vector<std::pair<ProcId, bool>>> seen;
    long runs = 0;
    auto stats = explorer.explore([&](Scheduler& sched) {
      std::vector<std::pair<ProcId, bool>> choices;
      RecordingScheduler recorder(sched, choices);
      std::vector<Simulation::Body> bodies;
      for (int steps : c.steps) {
        bodies.push_back([steps](Context& ctx) {
          for (int i = 0; i < steps; ++i) ctx.step();
        });
      }
      Simulation sim(std::move(bodies));
      sim.run(recorder);
      ++runs;
      EXPECT_TRUE(seen.insert(choices).second)
          << "duplicate schedule at run " << runs;
    });

    std::vector<int> grants;
    for (int steps : c.steps) grants.push_back(steps + 1);
    const long expected = reference_count(grants, 0, c.crashes);
    EXPECT_TRUE(stats.exhausted);
    EXPECT_EQ(stats.schedules, expected);
    EXPECT_EQ(static_cast<long>(seen.size()), expected);
  }
}

TEST(ScheduleExplorer, ShardsPartitionTheTree) {
  // root_alternatives + explore_shard over every shard, spliced in shard
  // order, must reproduce the serial explore() visit sequence exactly.
  ScheduleExplorer::Options opts;
  opts.max_crashes = 1;
  auto run_one_collecting = [](std::vector<std::vector<ProcId>>* sink) {
    return [sink](Scheduler& sched) {
      Simulation sim(2, [](Context& ctx) {
        ctx.step();
        ctx.step();
      });
      SimOutcome out = sim.run(sched);
      if (sink) sink->push_back(out.schedule);
    };
  };

  std::vector<std::vector<ProcId>> serial;
  ScheduleExplorer explorer(opts);
  auto serial_stats = explorer.explore(run_one_collecting(&serial));
  ASSERT_TRUE(serial_stats.exhausted);

  ScheduleExplorer prober(opts);
  auto root = prober.root_alternatives(run_one_collecting(nullptr));
  // Two runnable processes, crash budget available: step 0/1, crash 0/1.
  ASSERT_EQ(root.size(), 4u);

  std::vector<std::vector<ProcId>> spliced;
  long total = 0;
  for (std::size_t shard = 0; shard < root.size(); ++shard) {
    ScheduleExplorer shard_explorer(opts);
    auto stats = shard_explorer.explore_shard(
        root, shard, run_one_collecting(&spliced), total);
    EXPECT_TRUE(stats.exhausted);
    total += stats.schedules;
  }
  EXPECT_EQ(total, serial_stats.schedules);
  EXPECT_EQ(spliced, serial);
}

TEST(ScheduleExplorer, ExhaustiveCountGrowsWithProgramLength) {
  auto count = [](int steps_per_proc) {
    ScheduleExplorer::Options opts;
    opts.max_schedules = 1000000;
    ScheduleExplorer explorer(opts);
    auto stats = explorer.explore([&](Scheduler& sched) {
      Simulation sim(2, [steps_per_proc](Context& ctx) {
        for (int i = 0; i < steps_per_proc; ++i) ctx.step();
      });
      sim.run(sched);
    });
    EXPECT_TRUE(stats.exhausted);
    return stats.schedules;
  };
  // Interleavings of two sequences of g grants each: C(2g, g).
  EXPECT_EQ(count(1), 6);    // C(4,2)
  EXPECT_EQ(count(2), 20);   // C(6,3)
  EXPECT_EQ(count(3), 70);   // C(8,4)
}

}  // namespace
}  // namespace rrfd::runtime
