#include "runtime/explorer.h"

#include <gtest/gtest.h>

#include <set>

#include "runtime/schedulers.h"

namespace rrfd::runtime {
namespace {

TEST(ScheduleExplorer, SingleProcessHasOneScheduleishPath) {
  ScheduleExplorer explorer;
  int runs = 0;
  auto stats = explorer.explore([&](Scheduler& sched) {
    Simulation sim(1, [](Context& ctx) {
      ctx.step();
      ctx.step();
    });
    sim.run(sched);
    ++runs;
  });
  EXPECT_TRUE(stats.exhausted);
  EXPECT_EQ(stats.schedules, 1);
  EXPECT_EQ(runs, 1);
}

TEST(ScheduleExplorer, EnumeratesAllInterleavings) {
  // Two processes, one step each: grants are (start_a, act_a) and
  // (start_b, act_b); the explorer must cover every legal interleaving of
  // the two grant pairs: C(4,2) = 6 schedules.
  ScheduleExplorer explorer;
  std::set<std::vector<ProcId>> schedules;
  auto stats = explorer.explore([&](Scheduler& sched) {
    Simulation sim(2, [](Context& ctx) { ctx.step(); });
    SimOutcome out = sim.run(sched);
    schedules.insert(out.schedule);
  });
  EXPECT_TRUE(stats.exhausted);
  EXPECT_EQ(stats.schedules, 6);
  EXPECT_EQ(schedules.size(), 6u);
}

TEST(ScheduleExplorer, FindsRaceOutcomes) {
  // Classic lost-update race: both processes read, then write read+1.
  // Exhaustive exploration must find both the serialized outcome (2) and
  // the lost-update outcome (1).
  std::set<int> outcomes;
  ScheduleExplorer explorer;
  explorer.explore([&](Scheduler& sched) {
    int reg = 0;
    Simulation sim(2, [&](Context& ctx) {
      ctx.step();
      const int seen = reg;  // read
      ctx.step();
      reg = seen + 1;  // write
    });
    sim.run(sched);
    outcomes.insert(reg);
  });
  EXPECT_EQ(outcomes, (std::set<int>{1, 2}));
}

TEST(ScheduleExplorer, RespectsMaxSchedules) {
  ScheduleExplorer::Options opts;
  opts.max_schedules = 3;
  ScheduleExplorer explorer(opts);
  int runs = 0;
  auto stats = explorer.explore([&](Scheduler& sched) {
    Simulation sim(3, [](Context& ctx) { ctx.step(); });
    sim.run(sched);
    ++runs;
  });
  EXPECT_FALSE(stats.exhausted);
  EXPECT_EQ(stats.schedules, 3);
  EXPECT_EQ(runs, 3);
}

TEST(ScheduleExplorer, CrashBudgetAddsCrashBranches) {
  // With a crash budget, some schedules must end with a crashed process.
  ScheduleExplorer::Options opts;
  opts.max_crashes = 1;
  ScheduleExplorer explorer(opts);
  bool saw_crash = false, saw_clean = false;
  auto stats = explorer.explore([&](Scheduler& sched) {
    Simulation sim(2, [](Context& ctx) { ctx.step(); });
    SimOutcome out = sim.run(sched);
    saw_crash = saw_crash || !out.crashed.empty();
    saw_clean = saw_clean || out.crashed.empty();
  });
  EXPECT_TRUE(stats.exhausted);
  EXPECT_TRUE(saw_crash);
  EXPECT_TRUE(saw_clean);
}

TEST(ScheduleExplorer, PropagatesAssertionFailures) {
  ScheduleExplorer explorer;
  EXPECT_THROW(explorer.explore([&](Scheduler& sched) {
    Simulation sim(2, [](Context& ctx) { ctx.step(); });
    SimOutcome out = sim.run(sched);
    if (out.schedule.front() == 1) throw std::runtime_error("found it");
  }),
               std::runtime_error);
}

TEST(ScheduleExplorer, ExhaustiveCountGrowsWithProgramLength) {
  auto count = [](int steps_per_proc) {
    ScheduleExplorer::Options opts;
    opts.max_schedules = 1000000;
    ScheduleExplorer explorer(opts);
    auto stats = explorer.explore([&](Scheduler& sched) {
      Simulation sim(2, [steps_per_proc](Context& ctx) {
        for (int i = 0; i < steps_per_proc; ++i) ctx.step();
      });
      sim.run(sched);
    });
    EXPECT_TRUE(stats.exhausted);
    return stats.schedules;
  };
  // Interleavings of two sequences of g grants each: C(2g, g).
  EXPECT_EQ(count(1), 6);    // C(4,2)
  EXPECT_EQ(count(2), 20);   // C(6,3)
  EXPECT_EQ(count(3), 70);   // C(8,4)
}

}  // namespace
}  // namespace rrfd::runtime
