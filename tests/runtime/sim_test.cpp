#include "runtime/sim.h"

#include <gtest/gtest.h>

#include "runtime/schedulers.h"

namespace rrfd::runtime {
namespace {

TEST(Simulation, RunsEveryBodyToCompletion) {
  std::vector<int> hits(4, 0);
  Simulation sim(4, [&](Context& ctx) {
    ctx.step();
    ++hits[static_cast<std::size_t>(ctx.id())];
  });
  RoundRobinScheduler sched;
  SimOutcome out = sim.run(sched);
  EXPECT_EQ(out.completed, ProcessSet::all(4));
  EXPECT_TRUE(out.crashed.empty());
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(Simulation, ContextReportsIdAndN) {
  std::vector<ProcId> ids;
  Simulation sim(3, [&](Context& ctx) {
    EXPECT_EQ(ctx.n(), 3);
    ids.push_back(ctx.id());
  });
  RoundRobinScheduler sched;
  sim.run(sched);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<ProcId>{0, 1, 2}));
}

TEST(Simulation, StepsAreSerialized) {
  // A plain int incremented by all processes with read-modify-write across
  // a step boundary stays consistent only because execution is serialized
  // and steps are the only interleaving points.
  int counter = 0;
  Simulation sim(8, [&](Context& ctx) {
    for (int i = 0; i < 100; ++i) {
      ctx.step();
      counter = counter + 1;  // not atomic on purpose
    }
  });
  RandomScheduler sched(/*seed=*/99);
  sim.run(sched);
  EXPECT_EQ(counter, 800);
}

TEST(Simulation, ScheduleIsDeterministicGivenSeed) {
  auto run_once = [](std::uint64_t seed) {
    Simulation sim(4, [](Context& ctx) {
      for (int i = 0; i < 5; ++i) ctx.step();
    });
    RandomScheduler sched(seed);
    return sim.run(sched).schedule;
  };
  EXPECT_EQ(run_once(7), run_once(7));
  EXPECT_NE(run_once(7), run_once(8));
}

TEST(Simulation, ScriptedScheduleIsFollowed) {
  std::vector<ProcId> order;
  Simulation sim(3, [&](Context& ctx) {
    ctx.step();
    order.push_back(ctx.id());
  });
  // First grants run bodies up to their first step; the next grant for
  // each runs body-after-step (recording) to completion.
  ScriptedScheduler sched({{2, false}, {0, false}, {2, false}, {1, false},
                           {0, false}, {1, false}});
  sim.run(sched);
  EXPECT_EQ(order, (std::vector<ProcId>{2, 0, 1}));
}

TEST(Simulation, CrashStopsAProcessMidProtocol) {
  std::vector<int> progress(3, 0);
  Simulation sim(3, [&](Context& ctx) {
    for (int i = 0; i < 10; ++i) {
      ctx.step();
      ++progress[static_cast<std::size_t>(ctx.id())];
    }
  });
  // Crash process 1 immediately; let the others run.
  ScriptedScheduler sched({{1, true}});
  SimOutcome out = sim.run(sched);
  EXPECT_EQ(out.crashed, ProcessSet(3, {1}));
  EXPECT_EQ(out.completed, ProcessSet(3, {0, 2}));
  EXPECT_EQ(progress[1], 0);
  EXPECT_EQ(progress[0], 10);
  EXPECT_EQ(progress[2], 10);
}

TEST(Simulation, CrashLeavesPartialEffectsVisible) {
  // A crash between two writes must leave the first write visible -- the
  // crash semantics of asynchronous shared memory.
  int first = 0, second = 0;
  Simulation sim(2, [&](Context& ctx) {
    if (ctx.id() == 0) {
      ctx.step();
      first = 1;
      ctx.step();
      second = 1;
    } else {
      ctx.step();
    }
  });
  // p0: initial grant, then one step (performs first=1), then crash.
  ScriptedScheduler sched({{0, false}, {0, false}, {0, true}, {1, false},
                           {1, false}});
  SimOutcome out = sim.run(sched);
  EXPECT_TRUE(out.crashed.contains(0));
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 0);
}

TEST(Simulation, RandomCrashInjectionRespectsBudget) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Simulation sim(6, [](Context& ctx) {
      for (int i = 0; i < 20; ++i) ctx.step();
    });
    RandomScheduler sched(seed, /*crash_prob=*/0.1, /*max_crashes=*/2);
    SimOutcome out = sim.run(sched);
    EXPECT_LE(out.crashed.size(), 2);
    EXPECT_EQ(out.completed.size() + out.crashed.size(), 6);
  }
}

TEST(Simulation, ExceptionsInBodiesPropagate) {
  Simulation sim(2, [](Context& ctx) {
    ctx.step();
    if (ctx.id() == 1) throw std::runtime_error("protocol bug");
  });
  RoundRobinScheduler sched;
  EXPECT_THROW(sim.run(sched), std::runtime_error);
}

TEST(Simulation, StepBudgetThrows) {
  Simulation sim(2, [](Context& ctx) {
    for (;;) ctx.step();  // never terminates
  });
  RoundRobinScheduler sched;
  EXPECT_THROW(sim.run(sched, /*max_steps=*/100), StepBudgetExhausted);
}

TEST(Simulation, IsSingleUse) {
  Simulation sim(1, [](Context& ctx) { ctx.step(); });
  RoundRobinScheduler sched;
  sim.run(sched);
  EXPECT_THROW(sim.run(sched), ContractViolation);
}

TEST(Simulation, PerProcessBodies) {
  int a = 0, b = 0;
  std::vector<Simulation::Body> bodies;
  bodies.push_back([&](Context& ctx) {
    ctx.step();
    a = 1;
  });
  bodies.push_back([&](Context& ctx) {
    ctx.step();
    b = 2;
  });
  Simulation sim(std::move(bodies));
  RoundRobinScheduler sched;
  sim.run(sched);
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
}

TEST(Simulation, BodyWithNoStepsStillRuns) {
  bool ran = false;
  Simulation sim(1, [&](Context&) { ran = true; });
  RoundRobinScheduler sched;
  SimOutcome out = sim.run(sched);
  EXPECT_TRUE(ran);
  EXPECT_TRUE(out.completed.contains(0));
}

TEST(Simulation, SchedulerPickMustBeRunnable) {
  // A scheduler that always picks 0, even after 0 finished.
  struct AlwaysZero final : Scheduler {
    Choice pick(const ProcessSet&, int) override { return {0, false}; }
  };
  Simulation sim(2, [](Context& ctx) { ctx.step(); });
  AlwaysZero sched;
  EXPECT_THROW(sim.run(sched), ContractViolation);
}

}  // namespace
}  // namespace rrfd::runtime
