// Failure detectors meet RRFDs: the Section 7 bridge, executably.
#include "fdetect/bridge.h"

#include <gtest/gtest.h>

#include "agreement/s_consensus.h"
#include "agreement/tasks.h"
#include "core/adversaries.h"
#include "core/engine.h"
#include "core/predicates.h"
#include "xform/pattern_checks.h"

namespace rrfd::fdetect {
namespace {

// ---------------------------------------------------------------------------
// CrashSchedule
// ---------------------------------------------------------------------------

TEST(CrashSchedule, TracksCrashTimes) {
  CrashSchedule sched(4);
  sched.crash_at(1, 10);
  sched.crash_at(3, 5);
  EXPECT_EQ(sched.crashed_by(4), core::ProcessSet(4));
  EXPECT_EQ(sched.crashed_by(5), core::ProcessSet(4, {3}));
  EXPECT_EQ(sched.crashed_by(100), core::ProcessSet(4, {1, 3}));
  EXPECT_EQ(sched.correct(), core::ProcessSet(4, {0, 2}));
  EXPECT_TRUE(sched.is_crashed(3, 5));
  EXPECT_FALSE(sched.is_crashed(3, 4));
}

// ---------------------------------------------------------------------------
// Oracles
// ---------------------------------------------------------------------------

TEST(PerfectOracle, SuspectsExactlyTheCrashed) {
  CrashSchedule sched(4);
  sched.crash_at(2, 7);
  PerfectOracle oracle(sched);
  EXPECT_TRUE(oracle.suspects(0, 6).empty());
  EXPECT_EQ(oracle.suspects(0, 7), core::ProcessSet(4, {2}));
  EXPECT_EQ(oracle.suspects(3, 1000), core::ProcessSet(4, {2}));
}

TEST(StrongOracle, NeverSuspectsTheDesignatedProcess) {
  CrashSchedule sched(5);
  sched.crash_at(4, 3);
  StrongOracle oracle(sched, /*seed=*/7, /*never_suspected=*/2,
                      /*false_suspicion=*/0.9);
  for (long t = 0; t < 50; ++t) {
    for (core::ProcId i = 0; i < 5; ++i) {
      const core::ProcessSet s = oracle.suspects(i, t);
      EXPECT_FALSE(s.contains(2));
      if (t >= 3) {
        EXPECT_TRUE(s.contains(4));  // strong completeness
      }
    }
  }
}

TEST(StrongOracle, FalseSuspicionsDoHappen) {
  CrashSchedule sched(5);
  StrongOracle oracle(sched, 7, 0, 0.5);
  bool false_suspicion = false;
  for (long t = 0; t < 20 && !false_suspicion; ++t) {
    false_suspicion = !oracle.suspects(1, t).empty();
  }
  EXPECT_TRUE(false_suspicion) << "an S oracle may be capriciously wrong";
}

TEST(StrongOracle, DesignatedProcessMustBeCorrect) {
  CrashSchedule sched(3);
  sched.crash_at(1, 0);
  EXPECT_THROW(StrongOracle(sched, 1, /*never_suspected=*/1),
               ContractViolation);
}

TEST(EventuallyStrongOracle, AccuracyOnlyAfterStabilization) {
  CrashSchedule sched(4);
  EventuallyStrongOracle oracle(sched, /*seed=*/3, /*stabilization=*/50,
                                /*never_suspected=*/1,
                                /*false_suspicion=*/0.9);
  bool suspected_early = false;
  for (long t = 0; t < 50; ++t) {
    suspected_early = suspected_early || oracle.suspects(0, t).contains(1);
  }
  EXPECT_TRUE(suspected_early) << "pre-stabilization accuracy is not owed";
  for (long t = 50; t < 120; ++t) {
    EXPECT_FALSE(oracle.suspects(0, t).contains(1));
  }
}

// ---------------------------------------------------------------------------
// The bridge: detector-driven rounds produce RRFD patterns
// ---------------------------------------------------------------------------

TEST(Bridge, PerfectOracleFaultFreeRunHasEmptyPattern) {
  CrashSchedule sched(4);
  PerfectOracle oracle(sched);
  DetectorBridge bridge(sched, oracle, /*seed=*/1);
  BridgeResult result = bridge.run(3);
  EXPECT_TRUE(core::NeverFaulty().holds(result.pattern))
      << result.pattern.to_string();
}

TEST(Bridge, CrashedSendersAppearInEveryLaterRow) {
  CrashSchedule sched(4);
  sched.crash_at(3, 0);  // crashed from the start
  PerfectOracle oracle(sched);
  DetectorBridge bridge(sched, oracle, 2);
  BridgeResult result = bridge.run(3);
  for (core::Round r = 1; r <= 3; ++r) {
    for (core::ProcId i = 0; i < 3; ++i) {
      EXPECT_EQ(result.pattern.d(i, r), core::ProcessSet(4, {3}));
    }
  }
}

TEST(Bridge, StrongOraclePatternSatisfiesTheSPredicate) {
  // Weak accuracy => the designated process is never in any D(i,r):
  // exactly item 6's RRFD.
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    CrashSchedule sched(5);
    sched.crash_at(4, 12);
    StrongOracle oracle(sched, seed, /*never_suspected=*/1, 0.6);
    DetectorBridge bridge(sched, oracle, seed * 17 + 1);
    BridgeResult result = bridge.run(5);
    EXPECT_TRUE(core::detector_s()->holds(result.pattern))
        << result.pattern.to_string();
    EXPECT_FALSE(result.pattern.cumulative_union().contains(1));
  }
}

TEST(Bridge, WaitIsResolvedOnlyThroughSuspicionOrDelivery) {
  // Whatever lands in D(i,r) was suspected at completion time; since the
  // oracle never suspects the observer itself, i never misses itself.
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    CrashSchedule sched(4);
    StrongOracle oracle(sched, seed, 0, 0.8);
    DetectorBridge bridge(sched, oracle, seed + 5);
    BridgeResult result = bridge.run(4);
    EXPECT_TRUE(core::NoSelfSuspicion().holds(result.pattern));
  }
}

// ---------------------------------------------------------------------------
// Rederiving the classical results (Section 7's program)
// ---------------------------------------------------------------------------

std::vector<agreement::SConsensus> make_consensus(int n,
                                                  const std::vector<int>& in) {
  std::vector<agreement::SConsensus> ps;
  for (int v : in) ps.emplace_back(n, v);
  return ps;
}

TEST(Bridge, ConsensusWithSThroughTheBridge) {
  // S => consensus, with up to n-1 failures: bridge the oracle into a
  // pattern, replay it through the engine, run the rotating coordinator.
  const int n = 5;
  std::vector<int> inputs{3, 1, 4, 1, 5};
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    CrashSchedule sched(n);
    sched.crash_at(0, 6);
    sched.crash_at(4, 20);
    StrongOracle oracle(sched, seed, /*never_suspected=*/2, 0.5);
    DetectorBridge bridge(sched, oracle, seed * 31 + 7);
    BridgeResult bridged = bridge.run(n);

    auto ps = make_consensus(n, inputs);
    core::ScriptedAdversary adv(bridged.pattern);
    auto result = core::run_rounds(ps, adv);

    // Decisions count for processes alive through the whole bridged run.
    const core::ProcessSet alive = sched.crashed_by(1L << 30).complement();
    auto check = agreement::check_consensus(inputs, result.decisions, alive);
    EXPECT_TRUE(check.ok) << "seed " << seed << ": " << check.failure << "\n"
                          << bridged.pattern.to_string();
  }
}

TEST(Bridge, DiamondSTooEarlyCanFailAndAfterStabilizationAlwaysWorks) {
  const int n = 4;
  std::vector<int> inputs{7, 8, 9, 6};
  bool early_failure = false;
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    CrashSchedule sched(n);
    EventuallyStrongOracle oracle(sched, seed, /*stabilization=*/1000,
                                  /*never_suspected=*/0,
                                  /*false_suspicion=*/0.7);
    DetectorBridge bridge(sched, oracle, seed * 3 + 2);
    // Run 2n rounds: the first n happen well before stabilization.
    BridgeResult bridged = bridge.run(2 * n);

    // (a) the n-round algorithm on the unstabilized prefix can disagree.
    {
      auto ps = make_consensus(n, inputs);
      core::ScriptedAdversary adv(bridged.pattern.prefix(n));
      auto result = core::run_rounds(ps, adv);
      auto check = agreement::check_consensus(inputs, result.decisions,
                                              core::ProcessSet::all(n));
      early_failure = early_failure || !check.ok;
    }
  }
  EXPECT_TRUE(early_failure)
      << "diamond-S before stabilization should sometimes break the "
         "n-round algorithm";

  // (b) any window after stabilization satisfies the S predicate, so the
  // algorithm always works there.
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    CrashSchedule sched(n);
    EventuallyStrongOracle oracle(sched, seed, /*stabilization=*/0,
                                  /*never_suspected=*/0, 0.7);
    DetectorBridge bridge(sched, oracle, seed * 3 + 2);
    BridgeResult bridged = bridge.run(n);
    ASSERT_TRUE(core::detector_s()->holds(bridged.pattern));
    auto ps = make_consensus(n, inputs);
    core::ScriptedAdversary adv(bridged.pattern);
    auto result = core::run_rounds(ps, adv);
    auto check = agreement::check_consensus(inputs, result.decisions,
                                            core::ProcessSet::all(n));
    EXPECT_TRUE(check.ok) << check.failure;
  }
}

TEST(Bridge, PerfectOracleGivesTheCrashModel) {
  // P-driven rounds announce exactly the crashed: among the processes
  // that stay alive, the resulting pattern is a synchronous crash
  // pattern (monotone after the crash round, budget = #crashes). Crashed
  // processes' own rows go vacuous, so the check restricts to survivors.
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    CrashSchedule sched(5);
    sched.crash_at(2, 4);
    sched.crash_at(0, 15);
    PerfectOracle oracle(sched);
    DetectorBridge bridge(sched, oracle, seed);
    BridgeResult result = bridge.run(5);
    EXPECT_TRUE(core::CumulativeFaultBound(2).holds(result.pattern));
    // Once a process is missed by a survivor, P keeps announcing it: its
    // membership in survivor rows is monotone round over round.
    const core::ProcessSet survivors = sched.correct();
    for (core::ProcId victim : core::ProcessSet(5, {0, 2}).members()) {
      bool seen = false;
      for (core::Round r = 1; r <= result.pattern.rounds(); ++r) {
        bool in_all = true;
        bool in_some = false;
        for (core::ProcId i : survivors.members()) {
          const bool present = result.pattern.d(i, r).contains(victim);
          in_all = in_all && present;
          in_some = in_some || present;
        }
        if (seen) {
          EXPECT_TRUE(in_all) << "victim " << victim << " forgotten at round "
                              << r << "\n" << result.pattern.to_string();
        }
        // A round after the crash fully announces the victim.
        seen = seen || in_all;
        (void)in_some;
      }
    }
  }
}

}  // namespace
}  // namespace rrfd::fdetect
