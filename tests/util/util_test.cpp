#include <gtest/gtest.h>

#include <sstream>

#include "util/check.h"
#include "util/log.h"
#include "util/str.h"

namespace rrfd {
namespace {

// ---------------------------------------------------------------------------
// str helpers
// ---------------------------------------------------------------------------

TEST(Str, CatConcatenatesMixedTypes) {
  EXPECT_EQ(cat("n=", 5, " p=", 1.5), "n=5 p=1.5");
  EXPECT_EQ(cat(), "");
  EXPECT_EQ(cat(42), "42");
}

TEST(Str, JoinWithSeparator) {
  EXPECT_EQ(join(std::vector<int>{1, 2, 3}, ","), "1,2,3");
  EXPECT_EQ(join(std::vector<int>{7}, ","), "7");
  EXPECT_EQ(join(std::vector<int>{}, ","), "");
  EXPECT_EQ(join(std::vector<std::string>{"a", "b"}, " -> "), "a -> b");
}

TEST(Str, PadLeft) {
  EXPECT_EQ(pad_left("7", 3), "  7");
  EXPECT_EQ(pad_left("abc", 3), "abc");
  EXPECT_EQ(pad_left("abcd", 3), "abcd");  // never truncates
}

TEST(Str, PadRight) {
  EXPECT_EQ(pad_right("7", 3), "7  ");
  EXPECT_EQ(pad_right("abcd", 2), "abcd");
}

TEST(Str, FixedPrecision) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(2.0, 0), "2");
  EXPECT_EQ(fixed(-0.5, 1), "-0.5");
}

// ---------------------------------------------------------------------------
// contracts
// ---------------------------------------------------------------------------

TEST(Check, RequireThrowsWithLocation) {
  try {
    RRFD_REQUIRE(1 == 2);
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("precondition"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("util_test.cpp"), std::string::npos);
  }
}

TEST(Check, RequireMsgCarriesTheMessage) {
  try {
    RRFD_REQUIRE_MSG(false, "the detector lied");
    FAIL();
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("the detector lied"),
              std::string::npos);
  }
}

TEST(Check, EnsureThrowsInvariant) {
  try {
    RRFD_ENSURE(false);
    FAIL();
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("invariant"), std::string::npos);
  }
}

TEST(Check, PassingChecksAreSilent) {
  EXPECT_NO_THROW(RRFD_REQUIRE(true));
  EXPECT_NO_THROW(RRFD_ENSURE(2 + 2 == 4));
  EXPECT_NO_THROW(RRFD_REQUIRE_MSG(true, "unused"));
}

// ---------------------------------------------------------------------------
// log
// ---------------------------------------------------------------------------

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(Log::level()) {}
  ~LogLevelGuard() { Log::set_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Logging, OffByDefault) {
  LogLevelGuard guard;
  EXPECT_EQ(Log::level(), LogLevel::kOff);
}

TEST(Logging, LevelsFilter) {
  LogLevelGuard guard;
  Log::set_level(LogLevel::kInfo);
  // kInfo enabled, kDebug filtered: verify via stderr capture.
  testing::internal::CaptureStderr();
  log_info("visible");
  log_debug("hidden");
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("visible"), std::string::npos);
  EXPECT_EQ(out.find("hidden"), std::string::npos);
}

TEST(Logging, TraceIncludesEverything) {
  LogLevelGuard guard;
  Log::set_level(LogLevel::kTrace);
  testing::internal::CaptureStderr();
  log_info("a");
  log_debug("b");
  log_trace("c");
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("a"), std::string::npos);
  EXPECT_NE(out.find("b"), std::string::npos);
  EXPECT_NE(out.find("c"), std::string::npos);
}

TEST(Logging, OffSuppressesAll) {
  LogLevelGuard guard;
  Log::set_level(LogLevel::kOff);
  testing::internal::CaptureStderr();
  log_info("x");
  log_trace("y");
  EXPECT_TRUE(testing::internal::GetCapturedStderr().empty());
}

}  // namespace
}  // namespace rrfd
