#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "util/check.h"
#include "util/log.h"
#include "util/str.h"

namespace rrfd {
namespace {

// ---------------------------------------------------------------------------
// str helpers
// ---------------------------------------------------------------------------

TEST(Str, CatConcatenatesMixedTypes) {
  EXPECT_EQ(cat("n=", 5, " p=", 1.5), "n=5 p=1.5");
  EXPECT_EQ(cat(), "");
  EXPECT_EQ(cat(42), "42");
}

TEST(Str, JoinWithSeparator) {
  EXPECT_EQ(join(std::vector<int>{1, 2, 3}, ","), "1,2,3");
  EXPECT_EQ(join(std::vector<int>{7}, ","), "7");
  EXPECT_EQ(join(std::vector<int>{}, ","), "");
  EXPECT_EQ(join(std::vector<std::string>{"a", "b"}, " -> "), "a -> b");
}

TEST(Str, PadLeft) {
  EXPECT_EQ(pad_left("7", 3), "  7");
  EXPECT_EQ(pad_left("abc", 3), "abc");
  EXPECT_EQ(pad_left("abcd", 3), "abcd");  // never truncates
}

TEST(Str, PadRight) {
  EXPECT_EQ(pad_right("7", 3), "7  ");
  EXPECT_EQ(pad_right("abcd", 2), "abcd");
}

TEST(Str, FixedPrecision) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(2.0, 0), "2");
  EXPECT_EQ(fixed(-0.5, 1), "-0.5");
}

// ---------------------------------------------------------------------------
// contracts
// ---------------------------------------------------------------------------

TEST(Check, RequireThrowsWithLocation) {
  try {
    RRFD_REQUIRE(1 == 2);
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("precondition"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("util_test.cpp"), std::string::npos);
  }
}

TEST(Check, RequireMsgCarriesTheMessage) {
  try {
    RRFD_REQUIRE_MSG(false, "the detector lied");
    FAIL();
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("the detector lied"),
              std::string::npos);
  }
}

TEST(Check, EnsureThrowsInvariant) {
  try {
    RRFD_ENSURE(false);
    FAIL();
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("invariant"), std::string::npos);
  }
}

TEST(Check, PassingChecksAreSilent) {
  EXPECT_NO_THROW(RRFD_REQUIRE(true));
  EXPECT_NO_THROW(RRFD_ENSURE(2 + 2 == 4));
  EXPECT_NO_THROW(RRFD_REQUIRE_MSG(true, "unused"));
}

// ---------------------------------------------------------------------------
// log
// ---------------------------------------------------------------------------

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(Log::level()) {}
  ~LogLevelGuard() { Log::set_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Logging, OffByDefault) {
  LogLevelGuard guard;
  EXPECT_EQ(Log::level(), LogLevel::kOff);
}

TEST(Logging, LevelsFilter) {
  LogLevelGuard guard;
  Log::set_level(LogLevel::kInfo);
  // kInfo enabled, kDebug filtered: verify via stderr capture.
  testing::internal::CaptureStderr();
  log_info("visible");
  log_debug("hidden");
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("visible"), std::string::npos);
  EXPECT_EQ(out.find("hidden"), std::string::npos);
}

TEST(Logging, TraceIncludesEverything) {
  LogLevelGuard guard;
  Log::set_level(LogLevel::kTrace);
  testing::internal::CaptureStderr();
  log_info("a");
  log_debug("b");
  log_trace("c");
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("a"), std::string::npos);
  EXPECT_NE(out.find("b"), std::string::npos);
  EXPECT_NE(out.find("c"), std::string::npos);
}

TEST(Logging, OffSuppressesAll) {
  LogLevelGuard guard;
  Log::set_level(LogLevel::kOff);
  testing::internal::CaptureStderr();
  log_info("x");
  log_trace("y");
  EXPECT_TRUE(testing::internal::GetCapturedStderr().empty());
}

namespace {
std::vector<std::pair<LogLevel, std::string>>* g_captured_lines = nullptr;
}  // namespace

TEST(Logging, InjectedSinkReceivesLinesInsteadOfStderr) {
  LogLevelGuard guard;
  Log::set_level(LogLevel::kInfo);

  std::vector<std::pair<LogLevel, std::string>> lines;
  g_captured_lines = &lines;
  Log::Sink previous = Log::set_sink(+[](LogLevel level, const std::string& msg) {
    g_captured_lines->emplace_back(level, msg);
  });
  EXPECT_EQ(previous, nullptr);  // default sink is represented as nullptr

  testing::internal::CaptureStderr();
  log_info("captured");
  log_debug("filtered before the sink");
  const std::string stderr_out = testing::internal::GetCapturedStderr();

  Log::set_sink(nullptr);
  g_captured_lines = nullptr;

  EXPECT_TRUE(stderr_out.empty());  // nothing leaked to the default writer
  ASSERT_EQ(lines.size(), 1u);      // level filtering happens before sinks
  EXPECT_EQ(lines[0].first, LogLevel::kInfo);
  EXPECT_EQ(lines[0].second, "captured");

  // Detaching restores the stderr writer.
  testing::internal::CaptureStderr();
  log_info("back to stderr");
  EXPECT_NE(testing::internal::GetCapturedStderr().find("back to stderr"),
            std::string::npos);
}

TEST(Logging, LevelAndSinkAreSafeUnderConcurrentToggling) {
  // The level and sink live in atomics precisely so concurrent writers and
  // a toggling thread do not race. This is a smoke test (a real data race
  // would need TSan to surface deterministically), but it pins the API
  // contract: logging while another thread flips the level must not crash
  // or tear.
  LogLevelGuard guard;
  testing::internal::CaptureStderr();
  std::atomic<bool> stop{false};
  std::thread toggler([&] {
    for (int k = 0; k < 1000; ++k) {
      Log::set_level(k % 2 == 0 ? LogLevel::kOff : LogLevel::kInfo);
    }
    stop.store(true);
  });
  int writes = 0;
  while (!stop.load()) {
    log_info("ping");
    ++writes;
  }
  toggler.join();
  Log::set_level(LogLevel::kOff);
  testing::internal::GetCapturedStderr();
  EXPECT_GE(writes, 0);
}

namespace {
std::atomic<int> g_swap_count_a{0};
std::atomic<int> g_swap_count_b{0};
void swap_count_a(LogLevel, const std::string&) { ++g_swap_count_a; }
void swap_count_b(LogLevel, const std::string&) { ++g_swap_count_b; }
}  // namespace

TEST(Logging, SinkSwapUnderConcurrentWritersIsRaceFree) {
  // The sink slot is an atomic captureless function pointer: installing a
  // new sink while writer threads emit through the old one must be free
  // of data races (this suite runs under TSan in CI). Both sinks stay
  // valid for the whole test, so a writer that loads the old pointer
  // right before a swap still calls into live code -- that is the
  // documented contract, and why sinks must not be destroyed while
  // in use.
  LogLevelGuard guard;
  Log::set_level(LogLevel::kInfo);
  g_swap_count_a = 0;
  g_swap_count_b = 0;
  Log::Sink saved = Log::set_sink(swap_count_a);

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  writers.reserve(4);
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&stop] {
      while (!stop.load()) log_info("ping");
    });
  }
  for (int k = 0; k < 2000; ++k) {
    Log::set_sink(k % 2 == 0 ? swap_count_b : swap_count_a);
  }
  // The swap loop can finish before the writer threads are scheduled at
  // all; hold the test open until at least one write landed so the
  // assertion below is not a coin flip.
  while (g_swap_count_a.load() + g_swap_count_b.load() == 0) {
    std::this_thread::yield();
  }
  stop.store(true);
  for (std::thread& t : writers) t.join();
  Log::set_sink(saved);

  EXPECT_GT(g_swap_count_a.load() + g_swap_count_b.load(), 0);
}

}  // namespace
}  // namespace rrfd
