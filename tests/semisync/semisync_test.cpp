// The semi-synchronous (DDS) substrate and Section 5's algorithms.
#include "semisync/consensus.h"

#include <gtest/gtest.h>

#include "agreement/tasks.h"
#include "core/predicates.h"
#include "xform/semisync_pattern.h"
#include "util/str.h"

namespace rrfd::semisync {
namespace {

// ---------------------------------------------------------------------------
// StepSim basics
// ---------------------------------------------------------------------------

/// Minimal process: broadcasts once, then counts what it receives.
class PingCounter final : public StepProcess {
 public:
  explicit PingCounter(int decide_after) : decide_after_(decide_after) {}

  std::optional<Broadcast> step(const std::vector<Envelope>& received) override {
    for (const Envelope& env : received) {
      ++heard_;
      senders_.push_back(env.sender);
    }
    ++steps_;
    if (steps_ == 1) return Broadcast{1, 99};
    return std::nullopt;
  }

  bool decided() const override { return steps_ >= decide_after_; }
  int decision() const override { return heard_; }

  int heard_ = 0;
  int steps_ = 0;
  std::vector<core::ProcId> senders_;

 private:
  int decide_after_;
};

TEST(StepSim, BroadcastReachesEveryoneWithinPhi1) {
  const int n = 4;
  std::vector<PingCounter> procs;
  for (int i = 0; i < n; ++i) procs.emplace_back(/*decide_after=*/6);
  std::vector<StepProcess*> raw;
  for (auto& p : procs) raw.push_back(&p);

  StepSimOptions opts;
  opts.phi = 1;
  opts.seed = 5;
  StepSim sim(raw, opts);
  StepSimResult result = sim.run();
  EXPECT_TRUE(result.all_alive_decided);
  // Everyone broadcast once; with phi = 1 everything is delivered by the
  // end (6 steps per process is plenty).
  for (const auto& p : procs) EXPECT_EQ(p.heard_, n);
}

TEST(StepSim, CrashedProcessStopsStepping) {
  const int n = 3;
  std::vector<PingCounter> procs;
  for (int i = 0; i < n; ++i) procs.emplace_back(4);
  std::vector<StepProcess*> raw;
  for (auto& p : procs) raw.push_back(&p);

  StepSimOptions opts;
  opts.seed = 7;
  StepSim sim(raw, opts);
  sim.crash_after(0, 1);  // p0 takes exactly one step (its broadcast)
  StepSimResult result = sim.run();
  EXPECT_TRUE(result.crashed.contains(0));
  EXPECT_EQ(procs[0].steps_, 1);
  // p0's broadcast still reaches the others (reliable broadcast).
  for (int i = 1; i < n; ++i) {
    EXPECT_NE(std::find(procs[static_cast<std::size_t>(i)].senders_.begin(),
                        procs[static_cast<std::size_t>(i)].senders_.end(), 0),
              procs[static_cast<std::size_t>(i)].senders_.end());
  }
}

TEST(StepSim, NeverScheduledProcess) {
  std::vector<PingCounter> procs;
  procs.emplace_back(2);
  procs.emplace_back(2);
  std::vector<StepProcess*> raw{&procs[0], &procs[1]};
  StepSimOptions opts;
  StepSim sim(raw, opts);
  sim.crash_after(0, 0);  // never runs
  StepSimResult result = sim.run();
  EXPECT_TRUE(result.crashed.contains(0));
  EXPECT_EQ(procs[0].steps_, 0);
  EXPECT_TRUE(result.all_alive_decided);
}

TEST(StepSim, StepBudgetStopsRun) {
  // A process that never decides exhausts the budget.
  class Forever final : public StepProcess {
   public:
    std::optional<Broadcast> step(const std::vector<Envelope>&) override {
      return std::nullopt;
    }
    bool decided() const override { return false; }
    int decision() const override { return 0; }
  };
  Forever p;
  std::vector<StepProcess*> raw{&p};
  StepSimOptions opts;
  opts.max_events = 50;
  StepSim sim(raw, opts);
  StepSimResult result = sim.run();
  EXPECT_FALSE(result.all_alive_decided);
  EXPECT_EQ(result.events, 50);
}

// ---------------------------------------------------------------------------
// Theorem 5.1: the 2-step round structure yields equation (5) at phi = 1
// ---------------------------------------------------------------------------

class Theorem51Sweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(Theorem51Sweep, EqualAnnouncementsAtPhi1) {
  auto [n, seed] = GetParam();
  StepSimOptions opts;
  opts.phi = 1;
  opts.seed = seed;
  auto result = xform::semisync_pattern(n, /*rounds=*/4, opts);
  ASSERT_TRUE(result.completed);
  ASSERT_FALSE(result.had_full_fault_set);
  EXPECT_TRUE(core::equal_announcements()->holds(result.pattern))
      << result.pattern.to_string();
  // Exactly one broadcaster per round is heard: |D| = n-1 for every row.
  for (core::Round r = 1; r <= result.pattern.rounds(); ++r) {
    EXPECT_EQ(result.pattern.d(0, r).size(), n - 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Theorem51Sweep,
    ::testing::Combine(::testing::Values(2, 3, 5, 8, 16),
                       ::testing::Values(1u, 9u, 123u, 777u)),
    [](const ::testing::TestParamInfo<std::tuple<int, std::uint64_t>>& pinfo) {
      return cat("n", std::get<0>(pinfo.param), "_s", std::get<1>(pinfo.param));
    });

TEST(Theorem51, Phi2AdmitsViolations) {
  // Beyond the model's delivery guarantee the theorem must fail for some
  // schedule: either unequal D sets or an empty round view.
  bool violated = false;
  for (std::uint64_t seed = 0; seed < 300 && !violated; ++seed) {
    StepSimOptions opts;
    opts.phi = 2;
    opts.early_delivery_prob = 0.2;
    opts.seed = seed;
    auto result = xform::semisync_pattern(4, /*rounds=*/3, opts);
    if (!result.completed || result.had_full_fault_set) {
      violated = true;
      break;
    }
    violated = !core::equal_announcements()->holds(result.pattern);
  }
  EXPECT_TRUE(violated);
}

// ---------------------------------------------------------------------------
// 2-step consensus (Section 5's headline) and the naive 2n-step baseline
// ---------------------------------------------------------------------------

template <typename Algo>
struct ConsensusRun {
  std::vector<std::optional<int>> decisions;
  std::vector<int> steps;
  bool completed = false;
};

template <typename Algo>
ConsensusRun<Algo> run_consensus(int n, const std::vector<int>& inputs,
                                 std::uint64_t seed,
                                 const std::vector<std::pair<int, int>>& crashes = {}) {
  std::vector<Algo> procs;
  for (int i = 0; i < n; ++i) {
    procs.emplace_back(n, i, inputs[static_cast<std::size_t>(i)]);
  }
  std::vector<StepProcess*> raw;
  for (auto& p : procs) raw.push_back(&p);
  StepSimOptions opts;
  opts.phi = 1;
  opts.seed = seed;
  StepSim sim(raw, opts);
  for (auto [who, after] : crashes) sim.crash_after(who, after);
  StepSimResult result = sim.run();

  ConsensusRun<Algo> out;
  out.completed = result.all_alive_decided;
  out.steps = result.steps_taken;
  out.decisions.assign(static_cast<std::size_t>(n), std::nullopt);
  for (int i = 0; i < n; ++i) {
    if (!result.crashed.contains(i) &&
        procs[static_cast<std::size_t>(i)].decided()) {
      out.decisions[static_cast<std::size_t>(i)] =
          procs[static_cast<std::size_t>(i)].decision();
    }
  }
  return out;
}

class SemiSyncConsensusSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(SemiSyncConsensusSweep, TwoStepConsensusAgreesAndTakes2Steps) {
  auto [n, seed] = GetParam();
  std::vector<int> inputs;
  for (int i = 0; i < n; ++i) inputs.push_back(50 + i);
  auto run = run_consensus<TwoStepConsensus>(n, inputs, seed);
  ASSERT_TRUE(run.completed);
  auto check = agreement::check_consensus(inputs, run.decisions,
                                          core::ProcessSet::all(n));
  EXPECT_TRUE(check.ok) << check.failure;
  for (int s : run.steps) EXPECT_EQ(s, 2);  // the headline: 2 steps
}

TEST_P(SemiSyncConsensusSweep, NaiveBaselineAgreesAndTakes2NSteps) {
  auto [n, seed] = GetParam();
  std::vector<int> inputs;
  for (int i = 0; i < n; ++i) inputs.push_back(i * 2);
  auto run = run_consensus<NaiveRepeatConsensus>(n, inputs, seed);
  ASSERT_TRUE(run.completed);
  auto check = agreement::check_consensus(inputs, run.decisions,
                                          core::ProcessSet::all(n));
  EXPECT_TRUE(check.ok) << check.failure;
  for (int s : run.steps) EXPECT_EQ(s, 2 * n);  // DDS's original complexity
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SemiSyncConsensusSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 6, 12, 32),
                       ::testing::Values(4u, 44u, 444u)),
    [](const ::testing::TestParamInfo<std::tuple<int, std::uint64_t>>& pinfo) {
      return cat("n", std::get<0>(pinfo.param), "_s", std::get<1>(pinfo.param));
    });

TEST(SemiSyncConsensus, ToleratesCrashes) {
  // Crash a process right after its first step (it may have been the
  // round's broadcaster); consensus must still hold among the rest --
  // the broadcast is reliable, so either everyone heard it or it never
  // broadcast.
  const int n = 5;
  std::vector<int> inputs{3, 1, 4, 1, 5};
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    auto run = run_consensus<TwoStepConsensus>(n, inputs, seed, {{0, 1}});
    ASSERT_TRUE(run.completed);
    core::ProcessSet alive = core::ProcessSet::all(n).without(0);
    auto check = agreement::check_consensus(inputs, run.decisions, alive);
    EXPECT_TRUE(check.ok) << "seed " << seed << ": " << check.failure;
  }
}

TEST(StepSim, CrashedProcessInboxStaysBounded) {
  // Regression: broadcasts used to be enqueued into crashed processes'
  // inboxes forever. Nothing ever drained those buffers (a crashed process
  // takes no further steps), so a long run with an early crash grew one
  // queued copy of every subsequent broadcast -- tens of thousands of
  // Pending entries here. The fix drops the inbox at the crash and stops
  // enqueuing afterwards.

  /// Broadcasts at every step and never decides: the worst-case chatter.
  class Chatterbox final : public StepProcess {
   public:
    std::optional<Broadcast> step(const std::vector<Envelope>&) override {
      ++steps_;
      return Broadcast{steps_, steps_};
    }
    bool decided() const override { return false; }
    int decision() const override { return 0; }

   private:
    int steps_ = 0;
  };

  const int n = 3;
  std::vector<Chatterbox> procs(static_cast<std::size_t>(n));
  std::vector<StepProcess*> raw;
  for (auto& p : procs) raw.push_back(&p);

  StepSimOptions opts;
  opts.seed = 11;
  opts.max_events = 10000;
  StepSim sim(raw, opts);
  sim.crash_after(0, 1);  // p0 crashes after its very first step
  StepSimResult result = sim.run();

  ASSERT_TRUE(result.crashed.contains(0));
  EXPECT_EQ(result.events, opts.max_events);
  // ~10k broadcasts happened after the crash; none may be buffered for p0.
  EXPECT_EQ(sim.inbox_size(0), 0u);
  // Sanity: alive processes still receive messages (the fix must not
  // starve anyone who can actually step).
  EXPECT_GT(result.steps_taken[1] + result.steps_taken[2], 0);
}

TEST(SemiSyncConsensus, DecisionMatchesTheRoundsBroadcaster) {
  const int n = 4;
  std::vector<int> inputs{10, 11, 12, 13};
  auto run = run_consensus<TwoStepConsensus>(n, inputs, /*seed=*/6);
  ASSERT_TRUE(run.completed);
  // All decisions equal some input (validity) -- and since exactly one
  // process broadcasts in round 1, they all equal that process's input.
  const int v = *run.decisions[0];
  for (const auto& d : run.decisions) EXPECT_EQ(*d, v);
}

}  // namespace
}  // namespace rrfd::semisync
