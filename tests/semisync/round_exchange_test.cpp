// Unit tests for the 2-step round structure, driven directly (no
// simulator): exact control over what arrives at each step.
#include "semisync/round_exchange.h"

#include <gtest/gtest.h>

namespace rrfd::semisync {
namespace {

std::optional<RoundExchange::RoundView> step(RoundExchange& ex,
                                             std::vector<Envelope> received,
                                             int payload,
                                             std::optional<Broadcast>& out) {
  return ex.on_step(received, payload, out);
}

TEST(RoundExchange, BroadcastsWhenNothingReceivedFirst) {
  RoundExchange ex(3, 0);
  std::optional<Broadcast> out;
  auto view = step(ex, {}, 42, out);
  EXPECT_FALSE(view.has_value());  // first step: no round completes
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->round, 1);
  EXPECT_EQ(out->payload, 42);
}

TEST(RoundExchange, StaysSilentAfterReceivingARoundMessage) {
  RoundExchange ex(3, 0);
  std::optional<Broadcast> out;
  auto view = step(ex, {Envelope{1, 1, 7}}, 42, out);
  EXPECT_FALSE(view.has_value());
  EXPECT_FALSE(out.has_value()) << "the read-modify-write must silence us";
}

TEST(RoundExchange, SecondStepCompletesTheRound) {
  RoundExchange ex(3, 0);
  std::optional<Broadcast> out;
  step(ex, {Envelope{1, 1, 7}}, 42, out);
  auto view = step(ex, {Envelope{2, 1, 9}}, 42, out);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->round, 1);
  EXPECT_EQ(view->heard, core::ProcessSet(3, {1, 2}));
  EXPECT_EQ(view->fault_set, core::ProcessSet(3, {0}));
  EXPECT_EQ(view->values.at(1), 7);
  EXPECT_EQ(view->values.at(2), 9);
  EXPECT_EQ(ex.current_round(), 2);
}

TEST(RoundExchange, LateMessagesAreDiscarded) {
  RoundExchange ex(3, 0);
  std::optional<Broadcast> out;
  step(ex, {}, 1, out);
  step(ex, {Envelope{1, 1, 5}}, 1, out);  // round 1 done
  // A straggler round-1 message arrives during round 2: ignored.
  step(ex, {Envelope{2, 1, 6}}, 1, out);
  auto view = step(ex, {}, 1, out);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->round, 2);
  EXPECT_FALSE(view->heard.contains(2));
}

TEST(RoundExchange, EarlyMessagesBufferForTheirRound) {
  RoundExchange ex(3, 0);
  std::optional<Broadcast> out;
  // A round-2 message arrives while we're still in round 1.
  step(ex, {Envelope{1, 2, 55}}, 1, out);
  EXPECT_TRUE(out.has_value()) << "no round-1 message seen: we broadcast";
  step(ex, {}, 1, out);  // round 1 completes (empty)
  // Round 2, first step: the buffered message silences us.
  step(ex, {}, 1, out);
  EXPECT_FALSE(out.has_value());
  auto view = step(ex, {}, 1, out);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->round, 2);
  EXPECT_TRUE(view->heard.contains(1));
  EXPECT_EQ(view->values.at(1), 55);
}

TEST(RoundExchange, OwnBroadcastCountsWhenDeliveredBack) {
  RoundExchange ex(2, 0);
  std::optional<Broadcast> out;
  step(ex, {}, 3, out);
  ASSERT_TRUE(out.has_value());
  // Self-delivery of our own broadcast on the second step.
  auto view = step(ex, {Envelope{0, 1, 3}}, 3, out);
  ASSERT_TRUE(view.has_value());
  EXPECT_TRUE(view->heard.contains(0));
  EXPECT_EQ(view->fault_set, core::ProcessSet(2, {1}));
}

TEST(RoundExchange, EmptyRoundYieldsFullFaultSet) {
  RoundExchange ex(2, 0);
  std::optional<Broadcast> out;
  step(ex, {}, 1, out);
  auto view = step(ex, {}, 1, out);
  ASSERT_TRUE(view.has_value());
  EXPECT_TRUE(view->heard.empty());
  EXPECT_TRUE(view->fault_set.full());  // the degenerate D = S outcome
}

TEST(RoundExchange, ValidatesConstruction) {
  EXPECT_THROW(RoundExchange(0, 0), ContractViolation);
  EXPECT_THROW(RoundExchange(3, 3), ContractViolation);
  EXPECT_THROW(RoundExchange(3, -1), ContractViolation);
}

}  // namespace
}  // namespace rrfd::semisync
