// Item 3 forward direction: the asynchronous message-passing system with
// enforced rounds implements the async RRFD (predicate 3).
#include "msgpass/round_sim.h"

#include <gtest/gtest.h>

#include <map>

#include "core/predicates.h"
#include "util/str.h"

namespace rrfd::msgpass {

/// White-box peer granted friendship by RoundEnforcedSim (see the header):
/// forwards to the private diagnostic raiser.
struct RoundEnforcedSimTestPeer {
  [[noreturn]] static void raise_deadlock(const RoundEnforcedSim& sim) {
    sim.raise_deadlock();
  }
};

namespace {

/// Protocol that records everything (and floods minima, for end-to-end
/// agreement checks).
class Recorder : public RoundProtocol {
 public:
  Recorder(int n, std::vector<int> inputs)
      : n_(n), mins_(std::move(inputs)) {}

  std::uint64_t emit(ProcId i, Round r) override {
    emitted_[{i, r}] = static_cast<std::uint64_t>(
        mins_[static_cast<std::size_t>(i)]);
    return emitted_[{i, r}];
  }

  void deliver(ProcId i, Round r, ProcId src, std::uint64_t payload) override {
    deliveries_[{i, r}].insert(src);
    mins_[static_cast<std::size_t>(i)] =
        std::min(mins_[static_cast<std::size_t>(i)], static_cast<int>(payload));
  }

  void round_complete(ProcId i, Round r, const ProcessSet& missing) override {
    completed_.insert_or_assign(std::make_pair(i, r), missing);
    // Sanity: nothing delivered for this round may be in the missing set.
    for (ProcId src : deliveries_[{i, r}]) {
      EXPECT_FALSE(missing.contains(src));
    }
  }

  int n_;
  std::vector<int> mins_;
  std::map<std::pair<ProcId, Round>, std::uint64_t> emitted_;
  std::map<std::pair<ProcId, Round>, std::set<ProcId>> deliveries_;
  std::map<std::pair<ProcId, Round>, ProcessSet> completed_;
};

TEST(RoundEnforcedSim, FaultFreeRunDeliversEverythingEventually) {
  const int n = 5;
  Recorder rec(n, {5, 4, 3, 2, 1});
  RoundEnforcedSim sim(n, /*f=*/0, /*seed=*/1);
  FaultPattern p = sim.run(rec, /*rounds=*/3);
  // f = 0: every round waits for all n messages; D always empty.
  EXPECT_TRUE(core::NeverFaulty().holds(p));
  for (int v : rec.mins_) EXPECT_EQ(v, 1);
}

class RoundEnforcedSweep
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(RoundEnforcedSweep, PatternSatisfiesPredicate3) {
  auto [n, f, seed] = GetParam();
  std::vector<int> inputs;
  for (int i = 0; i < n; ++i) inputs.push_back(i);
  Recorder rec(n, inputs);
  RoundEnforcedSim sim(n, f, seed);
  FaultPattern p = sim.run(rec, /*rounds=*/4);
  EXPECT_TRUE(core::async_message_passing(f)->holds(p)) << p.to_string();
}

TEST_P(RoundEnforcedSweep, PatternSatisfiesPredicate3WithCrashes) {
  auto [n, f, seed] = GetParam();
  if (f == 0) GTEST_SKIP() << "no crash budget";
  std::vector<int> inputs;
  for (int i = 0; i < n; ++i) inputs.push_back(i);
  Recorder rec(n, inputs);
  RoundEnforcedSim sim(n, f, seed);
  sim.add_crash({/*who=*/0, /*in_round=*/2, /*reaches=*/n / 2});
  FaultPattern p = sim.run(rec, /*rounds=*/4);
  EXPECT_TRUE(core::async_message_passing(f)->holds(p)) << p.to_string();
  EXPECT_TRUE(sim.crashed().contains(0));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RoundEnforcedSweep,
    ::testing::Combine(::testing::Values(4, 6, 10, 20),
                       ::testing::Values(0, 1, 2),
                       ::testing::Values(3u, 1009u)),
    [](const ::testing::TestParamInfo<std::tuple<int, int, std::uint64_t>>& pinfo) {
      return cat("n", std::get<0>(pinfo.param), "_f", std::get<1>(pinfo.param),
                 "_s", std::get<2>(pinfo.param));
    });

TEST(RoundEnforcedSim, LateMessagesAreDiscarded) {
  // With f = 1, a process may close a round while one sender's message is
  // still in flight; the message must not surface later. The Recorder's
  // round_complete sanity check (delivered => not missing) plus the
  // communication-closedness assertion here cover it.
  const int n = 4;
  Recorder rec(n, {0, 1, 2, 3});
  RoundEnforcedSim sim(n, /*f=*/1, /*seed=*/77);
  FaultPattern p = sim.run(rec, /*rounds=*/5);
  // Every delivery recorded for round r came from a sender not in D(i,r).
  for (const auto& [key, missing] : rec.completed_) {
    for (ProcId src : rec.deliveries_[key]) {
      EXPECT_FALSE(missing.contains(src));
    }
  }
  (void)p;
}

TEST(RoundEnforcedSim, SelfMessageMayBeLate) {
  // The paper explicitly allows p_i in D(i,r): with f >= 1 some seed
  // should exhibit a process whose own message arrived after it closed
  // the round.
  bool saw_self_late = false;
  for (std::uint64_t seed = 0; seed < 200 && !saw_self_late; ++seed) {
    const int n = 4;
    Recorder rec(n, {0, 1, 2, 3});
    RoundEnforcedSim sim(n, /*f=*/1, seed);
    FaultPattern p = sim.run(rec, /*rounds=*/3);
    for (core::Round r = 1; r <= p.rounds(); ++r) {
      for (ProcId i = 0; i < n; ++i) {
        saw_self_late = saw_self_late || p.d(i, r).contains(i);
      }
    }
  }
  EXPECT_TRUE(saw_self_late);
}

TEST(RoundEnforcedSim, CrashBudgetIsEnforced) {
  RoundEnforcedSim sim(4, /*f=*/1, /*seed=*/1);
  sim.add_crash({0, 1, 0});
  EXPECT_THROW(sim.add_crash({1, 1, 0}), ContractViolation);
}

TEST(RoundEnforcedSim, DuplicateCrashPlanRejected) {
  RoundEnforcedSim sim(4, /*f=*/2, /*seed=*/1);
  sim.add_crash({0, 1, 0});
  EXPECT_THROW(sim.add_crash({0, 2, 1}), ContractViolation);
}

TEST(RoundEnforcedSim, FloodMinOverRealAsyncAgrees) {
  // End-to-end: flood-min over the enforced rounds with f crash budget and
  // f+1 rounds gives consensus among alive processes when crashes are
  // full-stop (reach nobody) -- the crash-model guarantee.
  const int n = 6, f = 2;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    std::vector<int> inputs{9, 8, 7, 6, 5, 4};
    Recorder rec(n, inputs);
    RoundEnforcedSim sim(n, f, seed);
    sim.add_crash({1, 1, 0});  // crashes reaching nobody: clean crashes
    sim.add_crash({2, 2, 0});
    sim.run(rec, f + 1);
    std::set<int> survivors_mins;
    for (ProcId i = 0; i < n; ++i) {
      if (!sim.crashed().contains(i)) {
        survivors_mins.insert(rec.mins_[static_cast<std::size_t>(i)]);
      }
    }
    EXPECT_EQ(survivors_mins.size(), 1u) << "seed " << seed;
  }
}

TEST(RoundEnforcedSim, IsSingleUse) {
  Recorder rec(3, {1, 2, 3});
  RoundEnforcedSim sim(3, 0, 1);
  sim.run(rec, 1);
  EXPECT_THROW(sim.run(rec, 1), ContractViolation);
}

TEST(RoundEnforcedSim, PastHorizonCrashPlanIsRejectedAtRun) {
  // A plan targeting a round past the run horizon can never trigger. It
  // used to be accepted silently: the run came out fault-free while the
  // caller believed it had spent a crash from the budget.
  Recorder rec(4, {1, 2, 3, 4});
  RoundEnforcedSim sim(4, /*f=*/1, /*seed=*/3);
  sim.add_crash({.who = 2, .in_round = 5, .reaches = 0});
  try {
    sim.run(rec, /*rounds=*/3);
    FAIL() << "must throw";
  } catch (const ContractViolation& violation) {
    const std::string what = violation.what();
    EXPECT_NE(what.find("p2"), std::string::npos) << what;
    EXPECT_NE(what.find("round 5"), std::string::npos) << what;
    EXPECT_NE(what.find("after round 3"), std::string::npos) << what;
  }
}

TEST(RoundEnforcedSim, InHorizonCrashPlanStillTriggers) {
  // The companion check: the same plan within the horizon is accepted and
  // actually produces the crash.
  Recorder rec(4, {1, 2, 3, 4});
  RoundEnforcedSim sim(4, /*f=*/1, /*seed=*/3);
  sim.add_crash({.who = 2, .in_round = 3, .reaches = 0});
  sim.run(rec, /*rounds=*/3);
  EXPECT_TRUE(sim.crashed().contains(2));
}

TEST(RoundEnforcedSimDeadlock, ReportNamesPerProcessAndLinkState) {
  // The deadlock invariant is unreachable under a valid crash budget
  // (every alive process broadcasts every round and alive >= n - f), so
  // the diagnostic path is exercised white-box through the test peer. The
  // regression being pinned: the old message was a bare "round enforcement
  // deadlocked" with no state at all.
  Recorder rec(3, {3, 2, 1});
  RoundEnforcedSim sim(3, /*f=*/1, /*seed=*/5);
  sim.add_crash({.who = 0, .in_round = 1, .reaches = 1});
  sim.run(rec, /*rounds=*/2);
  try {
    RoundEnforcedSimTestPeer::raise_deadlock(sim);
    FAIL() << "must throw";
  } catch (const ContractViolation& violation) {
    const std::string what = violation.what();
    EXPECT_NE(what.find("deadlock"), std::string::npos) << what;
    // Global header + one line per process.
    EXPECT_NE(what.find("n=3 f=1"), std::string::npos) << what;
    for (int i = 0; i < 3; ++i) {
      EXPECT_NE(what.find("p" + std::to_string(i) + ": round="),
                std::string::npos)
          << what;
    }
    EXPECT_NE(what.find("received_from="), std::string::npos) << what;
    EXPECT_NE(what.find("buffered_rounds="), std::string::npos) << what;
    EXPECT_NE(what.find("non-empty links:"), std::string::npos) << what;
    // The crashed process is reported as such.
    EXPECT_NE(what.find("crashed={0}"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace rrfd::msgpass
