// ABD (reference [22]): an atomic register from messages + a majority.
#include "msgpass/abd.h"

#include <gtest/gtest.h>
#include "util/str.h"

namespace rrfd::msgpass {
namespace {

TEST(EventNet, FifoPerLink) {
  EventNet<int> net(2, /*seed=*/1);
  net.send(0, 1, 10);
  net.send(0, 1, 20);
  std::vector<int> got;
  while (net.deliver_one([&](core::ProcId, core::ProcId, const int& m) {
    got.push_back(m);
  })) {
  }
  EXPECT_EQ(got, (std::vector<int>{10, 20}));
  EXPECT_TRUE(net.idle());
  EXPECT_EQ(net.messages_sent(), 2);
  EXPECT_EQ(net.messages_delivered(), 2);
}

TEST(EventNet, CrashDropsTraffic) {
  EventNet<int> net(3, 1);
  net.send(0, 1, 5);
  net.crash(1);
  EXPECT_TRUE(net.idle());  // pending message evaporated
  net.send(0, 1, 6);
  net.send(1, 2, 7);
  EXPECT_TRUE(net.idle());  // to/from crashed: dropped
}

TEST(EventNet, BroadcastIncludesSelf) {
  EventNet<int> net(3, 1);
  net.broadcast(1, 9);
  int count = 0;
  core::ProcessSet dsts(3);
  while (net.deliver_one([&](core::ProcId src, core::ProcId dst, const int&) {
    EXPECT_EQ(src, 1);
    dsts.add(dst);
    ++count;
  })) {
  }
  EXPECT_EQ(count, 3);
  EXPECT_TRUE(dsts.full());
}

// ---------------------------------------------------------------------------
// ABD basics
// ---------------------------------------------------------------------------

TEST(Abd, SequentialWriteThenRead) {
  AbdRegister reg(3, /*writer=*/0, /*seed=*/1);
  const int w = reg.begin_write(42);
  reg.run_until_quiet();
  ASSERT_TRUE(reg.op(w).done());

  const int r = reg.begin_read(2);
  reg.run_until_quiet();
  ASSERT_TRUE(reg.op(r).done());
  EXPECT_EQ(reg.op(r).value, 42);
  EXPECT_EQ(reg.op(r).timestamp, 1);
  EXPECT_TRUE(check_abd_atomicity(reg.history()).empty());
}

TEST(Abd, ReadBeforeAnyWriteReturnsInitial) {
  AbdRegister reg(3, 0, 1, /*initial=*/-7);
  const int r = reg.begin_read(1);
  reg.run_until_quiet();
  ASSERT_TRUE(reg.op(r).done());
  EXPECT_EQ(reg.op(r).value, -7);
  EXPECT_EQ(reg.op(r).timestamp, 0);
}

TEST(Abd, SequentialWritesAreOrdered) {
  AbdRegister reg(5, 0, 3);
  for (int v = 1; v <= 4; ++v) {
    reg.begin_write(v * 10);
    reg.run_until_quiet();
  }
  const int r = reg.begin_read(4);
  reg.run_until_quiet();
  EXPECT_EQ(reg.op(r).value, 40);
  EXPECT_EQ(reg.op(r).timestamp, 4);
  EXPECT_TRUE(check_abd_atomicity(reg.history()).empty());
}

TEST(Abd, OneOpInFlightPerClient) {
  AbdRegister reg(3, 0, 1);
  reg.begin_write(1);
  EXPECT_THROW(reg.begin_write(2), ContractViolation);
  reg.begin_read(1);
  EXPECT_THROW(reg.begin_read(1), ContractViolation);
}

// ---------------------------------------------------------------------------
// Concurrency: random interleavings, histories must stay atomic
// ---------------------------------------------------------------------------

class AbdConcurrency
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(AbdConcurrency, RandomInterleavingsAreAtomic) {
  auto [n, seed] = GetParam();
  Rng driver(seed);
  AbdRegister reg(n, /*writer=*/0, seed * 33 + 1);

  int issued_writes = 0;
  auto busy = [&](core::ProcId client) {
    for (const AbdOpRecord& r : reg.history()) {
      if (r.client == client && !r.done()) return true;
    }
    return false;
  };
  for (int event = 0; event < 400; ++event) {
    const int action = static_cast<int>(driver.below(4));
    if (action == 0 && !busy(0) && issued_writes < 20) {
      reg.begin_write(++issued_writes * 100);
    } else if (action == 1) {
      const auto client =
          static_cast<core::ProcId>(1 + driver.below(static_cast<std::uint64_t>(n - 1)));
      if (!busy(client)) reg.begin_read(client);
    } else {
      reg.step();
    }
  }
  reg.run_until_quiet();
  const std::string diagnosis = check_abd_atomicity(reg.history());
  EXPECT_TRUE(diagnosis.empty()) << diagnosis;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AbdConcurrency,
    ::testing::Combine(::testing::Values(3, 5, 9),
                       ::testing::Values(1u, 7u, 42u, 1000u, 90210u)),
    [](const ::testing::TestParamInfo<std::tuple<int, std::uint64_t>>& pinfo) {
      return cat("n", std::get<0>(pinfo.param), "_s", std::get<1>(pinfo.param));
    });

// ---------------------------------------------------------------------------
// Fault tolerance: the majority boundary (predicate 4's story)
// ---------------------------------------------------------------------------

TEST(Abd, ToleratesMinorityCrashes) {
  const int n = 5;  // majority = 3
  AbdRegister reg(n, 0, 11);
  reg.crash(3);
  reg.crash(4);
  const int w = reg.begin_write(5);
  reg.run_until_quiet();
  EXPECT_TRUE(reg.op(w).done());
  const int r = reg.begin_read(1);
  reg.run_until_quiet();
  ASSERT_TRUE(reg.op(r).done());
  EXPECT_EQ(reg.op(r).value, 5);
}

TEST(Abd, BlocksWithoutAMajority) {
  const int n = 4;  // majority = 3
  AbdRegister reg(n, 0, 11);
  reg.crash(2);
  reg.crash(3);
  const int w = reg.begin_write(5);
  reg.run_until_quiet();
  // Only 2 replicas can ack: the operation can never complete -- this is
  // the partition behaviour item 4's predicate (4) excludes for shared
  // memory.
  EXPECT_FALSE(reg.op(w).done());
}

TEST(Abd, CrashMidOperationLeavesHistoryAtomic) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const int n = 5;
    AbdRegister reg(n, 0, seed);
    reg.begin_write(1);
    for (int i = 0; i < 3; ++i) reg.step();  // partial propagation
    reg.crash(4);
    reg.run_until_quiet();
    const int r = reg.begin_read(1);
    reg.run_until_quiet();
    ASSERT_TRUE(reg.op(r).done());
    EXPECT_TRUE(check_abd_atomicity(reg.history()).empty());
  }
}

// ---------------------------------------------------------------------------
// Ablation: reads need their write-back phase
// ---------------------------------------------------------------------------

namespace ablation {

/// Shared scenario: a write crashes mid-propagation (the new value lands
/// on a minority of replicas), then two sequential reads by different
/// clients. Without the read write-back phase, the first read can adopt
/// the new value from the lone updated replica while the second read's
/// quorum holds only old ones -- a new/old inversion.
std::string run_scenario(std::uint64_t seed, int partial_steps,
                         bool skip_write_back) {
  const int n = 5;
  AbdRegister reg(n, /*writer=*/0, seed);
  reg.set_skip_write_back_for_testing(skip_write_back);

  reg.begin_write(0xA);
  reg.run_until_quiet();

  reg.begin_write(0xB);                           // in flight...
  for (int i = 0; i < partial_steps; ++i) reg.step();
  reg.crash(0);  // ...the writer dies; remaining stores evaporate

  const int r1 = reg.begin_read(1);
  reg.run_until_quiet();
  const int r2 = reg.begin_read(2);
  reg.run_until_quiet();
  if (!reg.op(r1).done() || !reg.op(r2).done()) return {};
  return check_abd_atomicity(reg.history());
}

}  // namespace ablation

TEST(Abd, AblationSkippingWriteBackBreaksAtomicity) {
  bool violation_found = false;
  for (std::uint64_t seed = 0; seed < 200 && !violation_found; ++seed) {
    for (int partial = 1; partial <= 4 && !violation_found; ++partial) {
      violation_found =
          !ablation::run_scenario(seed, partial, /*skip_write_back=*/true)
               .empty();
    }
  }
  EXPECT_TRUE(violation_found)
      << "no new/old inversion found -- the ablation should expose one";
}

TEST(Abd, ControlWithWriteBackSameSchedulesStayAtomic) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    for (int partial = 1; partial <= 4; ++partial) {
      const std::string diagnosis =
          ablation::run_scenario(seed, partial, /*skip_write_back=*/false);
      EXPECT_TRUE(diagnosis.empty())
          << "seed " << seed << " partial " << partial << ": " << diagnosis;
    }
  }
}

TEST(Abd, MessageComplexityPerOperation) {
  const int n = 5;
  AbdRegister reg(n, 0, 1);
  reg.begin_write(1);
  reg.run_until_quiet();
  const long write_msgs = reg.messages_sent();
  EXPECT_EQ(write_msgs, 2 * n);  // n stores + n acks
  reg.begin_read(1);
  reg.run_until_quiet();
  // Read: n queries + n replies + n write-backs + n acks.
  EXPECT_EQ(reg.messages_sent() - write_msgs, 4 * n);
}

}  // namespace
}  // namespace rrfd::msgpass
