// Lower-bound explorer: watch the floor(f/k)+1 round bound bite.
//
//   $ ./lowerbound_explorer [k] [f]
//
// Builds the chain execution behind Corollaries 4.2/4.4 and runs
// flood-min truncated at floor(f/k) rounds (k+1 distinct decisions: a
// violation) and at floor(f/k)+1 rounds (correct). Prints the chain
// layout and the fault pattern so you can trace each smuggled value.
#include <cstdlib>
#include <iostream>

#include "agreement/flood_min.h"
#include "agreement/tasks.h"
#include "core/adversaries.h"
#include "core/engine.h"

namespace {

using namespace rrfd;

void run_with_rounds(int k, int f, int extra) {
  core::ChainAdversary adv(k * (f / k) + k + 2, f, k);
  const int n = adv.n();
  const core::Round rounds = adv.rounds() + extra;
  const std::vector<int> inputs = adv.violating_inputs();

  std::vector<agreement::FloodMin> ps;
  for (int v : inputs) ps.emplace_back(v, rounds);
  core::EngineOptions opts;
  opts.max_rounds = rounds;
  opts.stop_when_all_decided = false;
  auto result = core::run_rounds(ps, adv, opts);

  core::ProcessSet survivors = core::ProcessSet::all(n);
  for (int m = 0; m < k; ++m) {
    for (core::Round j = 1; j <= adv.rounds(); ++j) {
      survivors.remove(adv.crasher(m, j));
    }
  }

  std::cout << "\n--- flood-min run for " << rounds << " round(s) ("
            << (extra == 0 ? "= floor(f/k): the forbidden zone"
                           : "= floor(f/k)+1: the bound")
            << ") ---\n";
  std::cout << "fault pattern:\n" << result.pattern.to_string();
  std::cout << "survivor decisions:";
  for (core::ProcId i : survivors.members()) {
    std::cout << "  p" << i << "->"
              << *result.decisions[static_cast<std::size_t>(i)];
  }
  const int distinct =
      agreement::distinct_decision_count(result.decisions, survivors);
  auto check =
      agreement::check_k_set_agreement(inputs, result.decisions, k, survivors);
  std::cout << "\ndistinct decisions among survivors: " << distinct
            << "  (k = " << k << ")  ==> "
            << (check.ok ? "k-set agreement HOLDS" : "k-set agreement VIOLATED")
            << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const int k = argc > 1 ? std::atoi(argv[1]) : 2;
  const int f = argc > 2 ? std::atoi(argv[2]) : 4;
  if (k < 1 || f < k) {
    std::cerr << "usage: lowerbound_explorer [k >= 1] [f >= k]\n";
    return 2;
  }

  core::ChainAdversary layout(k * (f / k) + k + 2, f, k);
  std::cout << "Corollaries 4.2/4.4: k-set agreement with f crash faults "
               "needs floor(f/k)+1 rounds\n"
            << "k = " << k << ", f = " << f << ", floor(f/k) = "
            << layout.rounds() << ", n = " << layout.n() << "\n\n";
  std::cout << "chain layout (value m travels its chain, one hop per round, "
               "crashing each carrier):\n";
  for (int m = 0; m < k; ++m) {
    std::cout << "  value " << m << ":  p" << layout.crasher(m, 1);
    for (core::Round j = 2; j <= layout.rounds(); ++j) {
      std::cout << " -> p" << layout.crasher(m, j);
    }
    std::cout << " -> p" << layout.terminal(m) << " (survivor)\n";
  }
  std::cout << "  everyone else starts with value " << k << "\n";

  run_with_rounds(k, f, 0);
  run_with_rounds(k, f, 1);

  std::cout << "\nThe paper derives this bound by reduction: if floor(f/k) "
               "rounds sufficed,\nTheorems 4.1/4.3 would turn the algorithm "
               "into a k-resilient asynchronous\nk-set agreement protocol, "
               "contradicting the asynchronous impossibility\n[Borowsky-"
               "Gafni, Herlihy-Shavit, Saks-Zaharoglou].\n";
  return 0;
}
