// Model zoo: a guided tour of Section 2 -- every traditional system as an
// RRFD, with a sample execution from its adversary and the submodel
// relations the paper points out.
//
//   $ ./model_zoo [n] [seed]
#include <cstdlib>
#include <iostream>
#include <memory>

#include "core/adversaries.h"
#include "core/predicates.h"

int main(int argc, char** argv) {
  using namespace rrfd;
  using core::PredicatePtr;

  const int n = argc > 1 ? std::atoi(argv[1]) : 6;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;
  const int f = 2;
  const core::Round rounds = 3;

  struct Exhibit {
    std::string item;
    PredicatePtr model;
    std::unique_ptr<core::Adversary> adversary;
  };
  std::vector<Exhibit> zoo;
  zoo.push_back({"item 1: synchronous send-omission", core::sync_omission(f),
                 std::make_unique<core::OmissionAdversary>(n, f, seed)});
  zoo.push_back({"item 2: synchronous crash", core::sync_crash(f),
                 std::make_unique<core::CrashAdversary>(n, f, seed)});
  zoo.push_back({"item 3: asynchronous message passing",
                 core::async_message_passing(f),
                 std::make_unique<core::AsyncAdversary>(n, f, seed)});
  zoo.push_back({"item 4: SWMR shared memory", core::swmr_shared_memory(f),
                 std::make_unique<core::SwmrAdversary>(n, f, seed)});
  zoo.push_back({"item 5: atomic snapshot", core::atomic_snapshot(f),
                 std::make_unique<core::SnapshotAdversary>(n, f, seed)});
  zoo.push_back({"item 6: failure detector S", core::detector_s(),
                 std::make_unique<core::ImmortalAdversary>(n, seed)});
  zoo.push_back({"Theorem 3.1: k-uncertainty (k=2)", core::k_uncertainty(2),
                 std::make_unique<core::KUncertaintyAdversary>(n, 2, seed)});
  zoo.push_back({"Section 5: equal announcements", core::equal_announcements(),
                 std::make_unique<core::EqualAdversary>(n, seed)});

  std::cout << "The RRFD model zoo (n = " << n << ", f = " << f << ")\n"
            << "=========================================\n";
  for (Exhibit& e : zoo) {
    std::cout << "\n-- " << e.item << " --\n"
              << "   predicate: " << e.model->name() << "\n";
    core::FaultPattern pattern = core::record_pattern(*e.adversary, rounds);
    std::cout << pattern.to_string();
    std::cout << "   sample satisfies its predicate: "
              << (e.model->holds(pattern) ? "yes" : "NO (bug!)") << "\n";
  }

  std::cout << "\nSubmodel relations the paper calls out\n"
            << "======================================\n";
  {
    core::CrashAdversary crash(n, f, seed);
    core::FaultPattern p = core::record_pattern(crash, rounds);
    std::cout << "crash => omission budget:      "
              << (core::CumulativeFaultBound(f).holds(p) ? "holds" : "fails")
              << "   (item 2 is explicitly a submodel of item 1)\n";
  }
  {
    core::SnapshotAdversary snap(n, 1, seed);
    core::FaultPattern p = core::record_pattern(snap, rounds);
    std::cout << "snapshot(f=1) => 2-uncertainty: "
              << (core::k_uncertainty(2)->holds(p) ? "holds" : "fails")
              << "   (the step behind Corollary 3.2)\n";
  }
  {
    core::EqualAdversary eq(n, seed);
    core::FaultPattern p = core::record_pattern(eq, rounds);
    std::cout << "equation (5) => 1-uncertainty:  "
              << (core::k_uncertainty(1)->holds(p) ? "holds" : "fails")
              << "   (why the semi-synchronous model solves consensus)\n";
  }
  {
    core::AsyncAdversary as(n, n - 1, seed);
    core::FaultPattern p = core::record_pattern(as, rounds);
    std::cout << "S-predicate == cumulative n-1:  "
              << ((core::ImmortalProcess().holds(p) ==
                   core::CumulativeFaultBound(n - 1).holds(p))
                      ? "equivalent on this sample"
                      : "MISMATCH")
              << "   (item 6's predicate manipulation)\n";
  }
  return 0;
}
