// Flight recorder demo + CI determinism harness: record a seeded run to a
// JSONL trace, replay it from the trace alone, and verify the replayed
// event stream is byte-identical to the recording.
//
//   $ ./flight_recorder record <substrate> <seed> <trace.jsonl>
//   $ ./flight_recorder replay <substrate> <trace.jsonl>
//   $ ./flight_recorder demo
//
// Substrates: engine | msgpass | semisync (the three whose randomness is
// fully externalized; the runtime substrate is replayed in tests via
// ScriptedScheduler). `record` writes the trace file; `replay` re-executes
// from it and exits non-zero on any divergence, so
//
//   record x 7 a.jsonl && replay x a.jsonl
//
// is a self-checking determinism test (see .github/workflows/ci.yml).
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "agreement/flood_min.h"
#include "core/adversaries.h"
#include "core/engine.h"
#include "msgpass/round_sim.h"
#include "semisync/network.h"
#include "trace/replay.h"
#include "trace/trace.h"

namespace {

using namespace rrfd;

constexpr int kN = 6;
constexpr int kF = 2;
constexpr core::Round kRounds = 4;

// --------------------------------------------------------------------------
// engine: flood-min against a seeded crash adversary
// --------------------------------------------------------------------------

std::vector<agreement::FloodMin> engine_processes() {
  std::vector<agreement::FloodMin> ps;
  for (int i = 0; i < kN; ++i) ps.emplace_back(i * 3 + 1, kF + 1);
  return ps;
}

void engine_record(std::uint64_t seed) {
  auto ps = engine_processes();
  core::CrashAdversary adversary(kN, kF, seed, /*crash_prob=*/0.5);
  core::run_rounds(ps, adversary);
}

void engine_replay(const trace::TraceReplayer& replayer) {
  auto ps = engine_processes();
  core::AdversaryPtr adversary = replayer.scripted_adversary();
  core::run_rounds(ps, *adversary);
}

// --------------------------------------------------------------------------
// msgpass: flood over enforced rounds with mid-broadcast crashes
// --------------------------------------------------------------------------

class Flood final : public msgpass::RoundProtocol {
 public:
  Flood() : mins_{11, 7, 5, 3, 2, 13} {}

  std::uint64_t emit(core::ProcId i, core::Round) override {
    return static_cast<std::uint64_t>(mins_[static_cast<std::size_t>(i)]);
  }
  void deliver(core::ProcId i, core::Round, core::ProcId,
               std::uint64_t payload) override {
    mins_[static_cast<std::size_t>(i)] = std::min(
        mins_[static_cast<std::size_t>(i)], static_cast<int>(payload));
  }
  void round_complete(core::ProcId, core::Round,
                      const core::ProcessSet&) override {}

 private:
  std::vector<int> mins_;
};

void msgpass_setup(msgpass::RoundEnforcedSim& sim) {
  sim.add_crash({.who = 1, .in_round = 2, .reaches = 3});
  sim.add_crash({.who = 4, .in_round = 3, .reaches = 1});
}

void msgpass_record(std::uint64_t seed) {
  Flood proto;
  msgpass::RoundEnforcedSim sim(kN, kF, seed);
  msgpass_setup(sim);
  sim.run(proto, kRounds);
}

void msgpass_replay(const trace::TraceReplayer& replayer) {
  Flood proto;
  msgpass::RoundEnforcedSim sim(kN, kF, /*seed=*/0);
  msgpass_setup(sim);
  sim.replay_links(replayer.link_choices());
  sim.replay_crash_dests(replayer.crash_dests());
  sim.run(proto, kRounds);
}

// --------------------------------------------------------------------------
// semisync: broadcast-once processes under phi = 2 early delivery
// --------------------------------------------------------------------------

class Beacon final : public semisync::StepProcess {
 public:
  explicit Beacon(core::ProcId id) : id_(id) {}

  std::optional<semisync::Broadcast> step(
      const std::vector<semisync::Envelope>& received) override {
    heard_ += static_cast<int>(received.size());
    ++steps_;
    if (steps_ <= 2) return semisync::Broadcast{steps_, id_ * 100 + steps_};
    return std::nullopt;
  }
  bool decided() const override { return steps_ >= 6; }
  int decision() const override { return heard_; }

 private:
  core::ProcId id_;
  int steps_ = 0;
  int heard_ = 0;
};

void semisync_run(std::uint64_t seed, const trace::TraceReplayer* replayer) {
  std::vector<Beacon> procs;
  for (core::ProcId i = 0; i < kN; ++i) procs.emplace_back(i);
  std::vector<semisync::StepProcess*> raw;
  for (auto& p : procs) raw.push_back(&p);
  semisync::StepSimOptions opts;
  opts.phi = 2;
  opts.early_delivery_prob = 0.3;
  opts.seed = seed;
  semisync::StepSim sim(raw, opts);
  sim.crash_after(3, 2);
  if (replayer != nullptr) sim.replay_steps(replayer->step_choices());
  sim.run();
}

// --------------------------------------------------------------------------
// Driver
// --------------------------------------------------------------------------

void run_substrate(const std::string& substrate, std::uint64_t seed,
                   const trace::TraceReplayer* replayer) {
  if (substrate == "engine") {
    replayer ? engine_replay(*replayer) : engine_record(seed);
  } else if (substrate == "msgpass") {
    replayer ? msgpass_replay(*replayer) : msgpass_record(seed);
  } else if (substrate == "semisync") {
    semisync_run(seed, replayer);
  } else {
    throw std::runtime_error("unknown substrate: " + substrate +
                             " (want engine|msgpass|semisync)");
  }
}

int run_plain(const std::string& substrate, std::uint64_t seed) {
  // Attaches no sink of its own: whatever RRFD_TRACE installed (or nothing)
  // observes the run. Exercises the env-var recording path end to end.
  run_substrate(substrate, seed, nullptr);
  std::cout << "ran " << substrate << " (seed " << seed << "); "
            << (trace::Tracer::on() ? "trace sink attached (RRFD_TRACE?)"
                                    : "no trace sink attached")
            << "\n";
  return 0;
}

int record(const std::string& substrate, std::uint64_t seed,
           const std::string& path) {
  trace::JsonlWriter writer(path);
  trace::ScopedTrace attach(&writer);
  run_substrate(substrate, seed, nullptr);
  std::cout << "recorded " << substrate << " run (seed " << seed << ") to "
            << path << "\n";
  return 0;
}

int replay(const std::string& substrate, const std::string& path) {
  trace::TraceReplayer replayer(trace::read_trace_file(path));
  trace::CaptureRecorder capture;
  {
    trace::ScopedTrace attach(&capture);
    run_substrate(substrate, 0, &replayer);
  }
  replayer.verify_matches(capture.events());
  std::cout << "replayed " << substrate << " run from " << path << ": "
            << capture.events().size()
            << " events, byte-identical to the recording\n";
  return 0;
}

int demo() {
  // Record an engine run into memory, replay it, and show the trace tail
  // a ContractViolation would carry.
  trace::CaptureRecorder capture;
  {
    trace::ScopedTrace attach(&capture);
    engine_record(/*seed=*/7);
  }
  trace::Trace recorded;
  recorded.schema = trace::kTraceSchema;
  recorded.events = capture.events();
  trace::TraceReplayer replayer(recorded);

  std::cout << "recorded " << capture.events().size() << " events; pattern:\n"
            << replayer.recorded_pattern().to_string() << "\n";

  trace::CaptureRecorder again;
  {
    trace::ScopedTrace attach(&again);
    engine_replay(replayer);
  }
  replayer.verify_matches(again.events());
  std::cout << "replay reproduced the event stream byte-for-byte.\n\n";

  trace::RingRecorder ring(8);
  for (const auto& ev : capture.events()) ring.on_event(ev);
  std::cout << "flight-recorder tail (what a ContractViolation would "
               "attach):\n"
            << ring.to_string(8) << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const std::string mode = argc > 1 ? argv[1] : "demo";
    if (mode == "demo") return demo();
    if (mode == "record" && argc == 5) {
      return record(argv[2], std::strtoull(argv[3], nullptr, 10), argv[4]);
    }
    if (mode == "replay" && argc == 4) return replay(argv[2], argv[3]);
    if (mode == "run" && argc == 4) {
      return run_plain(argv[2], std::strtoull(argv[3], nullptr, 10));
    }
    std::cerr << "usage: flight_recorder demo\n"
              << "       flight_recorder record <engine|msgpass|semisync> "
                 "<seed> <trace.jsonl>\n"
              << "       flight_recorder replay <engine|msgpass|semisync> "
                 "<trace.jsonl>\n"
              << "       flight_recorder run <engine|msgpass|semisync> "
                 "<seed>   (sink via RRFD_TRACE)\n";
    return 2;
  } catch (const std::exception& error) {
    std::cerr << "flight_recorder: " << error.what() << "\n";
    return 1;
  }
}
