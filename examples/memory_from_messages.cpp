// Shared memory out of thin air (Section 2 item 4, two ways).
//
//   $ ./memory_from_messages [n] [seed]
//
// 1. Pattern level: two rounds of the asynchronous RRFD (2f < n) combine
//    into one SWMR round satisfying predicate (4) -- someone is heard by
//    everyone -- via the majority-intersection argument.
// 2. Protocol level: the ABD register (reference [22]) runs an actual
//    quorum protocol over the event-driven network, surviving a minority
//    of crashes and blocking the moment the majority is gone.
#include <cstdlib>
#include <iostream>

#include "core/adversaries.h"
#include "core/predicates.h"
#include "msgpass/abd.h"
#include "xform/round_combiner.h"

int main(int argc, char** argv) {
  using namespace rrfd;

  const int n = argc > 1 ? std::atoi(argv[1]) : 5;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 9;
  const int f = (n - 1) / 2;

  std::cout << "Item 4: SWMR shared memory from message passing (n = " << n
            << ", f = " << f << ", 2f < n)\n\n";

  std::cout << "-- 1. the RRFD view: two async rounds -> one SWMR round --\n";
  core::AsyncAdversary adv(n, f, seed);
  core::FaultPattern two = core::record_pattern(adv, 2);
  std::cout << "constituent async rounds:\n" << two.to_string();
  core::FaultPattern derived = xform::swmr_from_async(two);
  std::cout << "derived SWMR round:\n" << derived.to_string();
  std::cout << "predicate (3), |D| <= " << f << ": "
            << (core::PerRoundFaultBound(f).holds(derived) ? "holds" : "FAILS")
            << "\npredicate (4), someone heard by all: "
            << (core::SomeoneHeardByAll().holds(derived) ? "holds" : "FAILS")
            << "\n\n";

  std::cout << "-- 2. the protocol view: an ABD register over the wire --\n";
  msgpass::AbdRegister reg(n, /*writer=*/0, seed);
  int w1 = reg.begin_write(1001);
  reg.run_until_quiet();
  int r1 = reg.begin_read(static_cast<core::ProcId>(n - 1));
  reg.run_until_quiet();
  std::cout << "write(1001): " << (reg.op(w1).done() ? "completed" : "blocked")
            << ";  read by p" << n - 1 << " -> " << reg.op(r1).value << "\n";

  const int minority = (n - 1) / 2;
  for (int c = 0; c < minority; ++c) {
    reg.crash(static_cast<core::ProcId>(n - 1 - c));
  }
  std::cout << "crashing " << minority << " replicas (a minority)...\n";
  int w2 = reg.begin_write(1002);
  reg.run_until_quiet();
  int r2 = reg.begin_read(1);
  reg.run_until_quiet();
  std::cout << "write(1002): " << (reg.op(w2).done() ? "completed" : "blocked")
            << ";  read by p1 -> " << reg.op(r2).value << "\n";

  reg.crash(static_cast<core::ProcId>(n - 1 - minority));
  std::cout << "crashing one more (majority lost)...\n";
  int w3 = reg.begin_write(1003);
  reg.run_until_quiet();
  std::cout << "write(1003): " << (reg.op(w3).done() ? "completed (BUG)" : "blocked, as the partition argument demands")
            << "\n\n";

  std::cout << "history atomicity check: ";
  const std::string diagnosis = msgpass::check_abd_atomicity(reg.history());
  std::cout << (diagnosis.empty() ? "atomic" : diagnosis) << "\n";
  return 0;
}
