// Unifying synchrony and asynchrony (Section 4): run a *synchronous*
// algorithm on an *asynchronous* shared-memory substrate.
//
//   $ ./sync_vs_async [n] [k] [seed]
//
// Theorem 4.3's simulation: flood-min -- written for lock-step rounds --
// executes unchanged on the cooperative shared-memory runtime with up to
// k crash failures, through snapshots and adopt-commit. The output shows
// the asynchronous schedule's misses being laundered into a clean
// synchronous crash pattern.
#include <cstdlib>
#include <iostream>

#include "agreement/flood_min.h"
#include "agreement/tasks.h"
#include "runtime/schedulers.h"
#include "xform/crash_from_async.h"
#include "xform/pattern_checks.h"

int main(int argc, char** argv) {
  using namespace rrfd;

  const int n = argc > 1 ? std::atoi(argv[1]) : 5;
  const int k = argc > 2 ? std::atoi(argv[2]) : 1;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 11;
  const core::Round rounds = std::max(1, (n - 1) / k);

  std::cout << "Theorem 4.3: simulating " << rounds
            << " synchronous crash round(s) on an asynchronous\n"
            << "shared-memory system with at most " << k
            << " crash failure(s), n = " << n << "\n\n";

  std::vector<int> inputs;
  for (int i = 0; i < n; ++i) inputs.push_back((3 * i + 2) % (2 * n));
  std::cout << "inputs:";
  for (int v : inputs) std::cout << ' ' << v;
  std::cout << "\n\n";

  std::vector<agreement::FloodMin> procs;
  for (int v : inputs) procs.emplace_back(v, rounds);

  runtime::RandomScheduler scheduler(seed, /*crash_prob=*/0.004,
                                     /*max_crashes=*/k);
  auto result = xform::run_crash_from_async(procs, k, rounds, scheduler);

  std::cout << "asynchronous run complete ("
            << result.async_rounds_used
            << " async rounds: 1 snapshot + 1 adopt-commit per simulated "
               "round)\n";
  std::cout << "executors crashed by the scheduler: "
            << result.crashed.to_string() << "\n\n";

  std::cout << "the simulated synchronous crash pattern (delivered-bottom "
               "sets):\n"
            << result.simulated.to_string() << "\n";

  const core::ProcessSet alive = result.crashed.complement();
  std::cout << "pattern is a valid sync-crash(f=" << k * rounds
            << ") pattern among alive executors: "
            << (xform::crash_pattern_holds_among(result.simulated, alive,
                                                 k * rounds)
                    ? "yes"
                    : "NO")
            << "\n\n";

  std::cout << "flood-min decisions (survivors of the simulated system):\n";
  const core::ProcessSet announced = result.simulated.cumulative_union();
  for (core::ProcId i = 0; i < n; ++i) {
    std::cout << "  p" << i << ": ";
    if (result.crashed.contains(i)) {
      std::cout << "executor crashed\n";
    } else if (announced.contains(i)) {
      std::cout << "simulated crash (announced); decided "
                << *result.decisions[static_cast<std::size_t>(i)]
                << " (does not count)\n";
    } else {
      std::cout << "decided "
                << *result.decisions[static_cast<std::size_t>(i)] << "\n";
    }
  }

  core::ProcessSet survivors = alive;
  for (core::ProcId p : announced.members()) survivors.remove(p);
  auto check = agreement::check_k_set_agreement(
      inputs, result.decisions, std::max(1, announced.size()), survivors);
  std::cout << "\ntask check (" << std::max(1, announced.size())
            << "-set agreement among survivors): "
            << (check.ok ? "solved" : check.failure) << "\n";
  return check.ok ? 0 : 1;
}
