// Quickstart: define an RRFD model, run an algorithm against its
// adversary, and validate the task -- the library's core loop in ~60
// lines.
//
//   $ ./quickstart [n] [k] [seed]
//
// We use Theorem 3.1's setting: the k-uncertainty detector and the
// one-round k-set agreement algorithm.
#include <cstdlib>
#include <iostream>

#include "agreement/one_round_kset.h"
#include "agreement/tasks.h"
#include "core/adversaries.h"
#include "core/engine.h"
#include "core/predicates.h"

int main(int argc, char** argv) {
  using namespace rrfd;

  const int n = argc > 1 ? std::atoi(argv[1]) : 8;
  const int k = argc > 2 ? std::atoi(argv[2]) : 2;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 42;

  std::cout << "RRFD quickstart: one-round " << k << "-set agreement among "
            << n << " processes (Theorem 3.1)\n\n";

  // 1. A model is a predicate over the announcement sets D(i,r).
  core::PredicatePtr model = core::k_uncertainty(k);
  std::cout << "model: " << model->name() << "\n  " << model->description()
            << "\n\n";

  // 2. The detector is an adversary constrained by that predicate.
  core::KUncertaintyAdversary adversary(n, k, seed);

  // 3. Processes implement emit / absorb / decide.
  std::vector<int> inputs;
  for (int i = 0; i < n; ++i) inputs.push_back((i * 7) % n + 1);
  std::vector<agreement::OneRoundKSet> processes;
  for (int v : inputs) processes.emplace_back(v);

  // 4. The engine drives communication-closed rounds.
  auto result = core::run_rounds(processes, adversary);

  std::cout << "the detector announced (round 1):\n";
  for (core::ProcId i = 0; i < n; ++i) {
    std::cout << "  D(" << i << ",1) = " << result.pattern.d(i, 1)
              << "   input " << inputs[static_cast<std::size_t>(i)]
              << " -> decided " << *result.decisions[static_cast<std::size_t>(i)]
              << "\n";
  }

  // 5. Check the run against the model and the task.
  std::cout << "\npattern satisfies " << model->name() << ": "
            << (model->holds(result.pattern) ? "yes" : "no") << "\n";
  auto check = agreement::check_k_set_agreement(inputs, result.decisions, k,
                                                core::ProcessSet::all(n));
  std::cout << "k-set agreement in " << result.rounds
            << " round(s): " << (check.ok ? "solved" : check.failure) << "\n";
  return check.ok ? 0 : 1;
}
