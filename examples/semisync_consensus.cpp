// Section 5: solving the Dolev-Dwork-Stockmeyer open problem -- consensus
// in 2 steps in the semi-synchronous broadcast model.
//
//   $ ./semisync_consensus [n] [seed]
//
// Runs the 2-step algorithm and the 2n-step baseline side by side, then
// peeks under the hood: the per-round announcement sets are identical
// across processes (equation 5), which is the k = 1 detector of Theorem
// 3.1 -- one round suffices.
#include <cstdlib>
#include <iostream>

#include "agreement/tasks.h"
#include "core/predicates.h"
#include "semisync/consensus.h"
#include "xform/semisync_pattern.h"

namespace {

template <typename Algo>
void run_algo(const char* label, int n, const std::vector<int>& inputs,
              std::uint64_t seed) {
  using namespace rrfd;
  std::vector<Algo> procs;
  for (int i = 0; i < n; ++i) {
    procs.emplace_back(n, i, inputs[static_cast<std::size_t>(i)]);
  }
  std::vector<semisync::StepProcess*> raw;
  for (auto& p : procs) raw.push_back(&p);
  semisync::StepSimOptions opts;
  opts.phi = 1;
  opts.seed = seed;
  semisync::StepSim sim(raw, opts);
  auto result = sim.run();

  int max_steps = 0;
  for (int s : result.steps_taken) max_steps = std::max(max_steps, s);
  std::vector<std::optional<int>> decisions;
  for (auto& p : procs) decisions.emplace_back(p.decision());
  auto check = agreement::check_consensus(inputs, decisions,
                                          core::ProcessSet::all(n));
  std::cout << "  " << label << ": decided " << *decisions[0] << " in "
            << max_steps << " steps/process ("
            << (check.ok ? "consensus" : check.failure) << ")\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rrfd;

  const int n = argc > 1 ? std::atoi(argv[1]) : 6;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 3;

  std::vector<int> inputs;
  for (int i = 0; i < n; ++i) inputs.push_back(10 + i);

  std::cout << "Semi-synchronous (DDS) consensus, n = " << n << "\n";
  std::cout << "inputs:";
  for (int v : inputs) std::cout << ' ' << v;
  std::cout << "\n\n";

  run_algo<semisync::TwoStepConsensus>("Section 5 algorithm ", n, inputs, seed);
  run_algo<semisync::NaiveRepeatConsensus>("2n-step baseline    ", n, inputs,
                                           seed);

  std::cout << "\nWhy 2 steps work -- Theorem 5.1 (equation 5):\n";
  semisync::StepSimOptions opts;
  opts.phi = 1;
  opts.seed = seed;
  auto pat = xform::semisync_pattern(n, /*rounds=*/3, opts);
  std::cout << pat.pattern.to_string();
  std::cout << "equal announcements across processes: "
            << (core::equal_announcements()->holds(pat.pattern) ? "yes" : "NO")
            << "\nexactly one broadcaster per round is heard by everyone;\n"
            << "the detector has zero uncertainty (k = 1), so Theorem 3.1's\n"
            << "one-round rule decides after a single 2-step round.\n";

  std::cout << "\nBeyond the model's delivery bound (phi = 2), the guarantee "
               "breaks:\n";
  int violations = 0;
  const int runs = 200;
  for (int trial = 0; trial < runs; ++trial) {
    semisync::StepSimOptions bad;
    bad.phi = 2;
    bad.early_delivery_prob = 0.3;
    bad.seed = 1000u + static_cast<unsigned>(trial);
    auto r = xform::semisync_pattern(n, 3, bad);
    const bool ok = r.completed && !r.had_full_fault_set &&
                    core::equal_announcements()->holds(r.pattern);
    violations += !ok;
  }
  std::cout << "  equation (5) violated in " << violations << "/" << runs
            << " random phi=2 schedules\n";
  return 0;
}
