// Pattern inspector: evaluate any fault pattern against the model zoo.
//
//   $ ./pattern_inspector < pattern.txt
//   $ echo 'n=3
//     {1},{},{0,1}' | ./pattern_inspector
//
// Reads the textual pattern format (see core/pattern_io.h), prints which
// models accept it, the per-round structure, knowledge propagation, and
// what the one-round k-set algorithm would decide on it. Counterexamples
// produced by the lattice checker can be piped straight in.
#include <iostream>

#include "agreement/one_round_kset.h"
#include "core/adversaries.h"
#include "core/engine.h"
#include "core/knowledge.h"
#include "core/pattern_io.h"
#include "core/predicates.h"

int main() {
  using namespace rrfd;

  core::FaultPattern pattern = [] {
    try {
      return core::read_pattern(std::cin);
    } catch (const ContractViolation& e) {
      std::cerr << "could not parse a fault pattern from stdin: " << e.what()
                << "\nexpected format (see core/pattern_io.h):\n"
                << "  n=3\n  {1},{},{0,1}\n";
      std::exit(2);
    }
  }();
  const int n = pattern.n();
  std::cout << "pattern: n = " << n << ", rounds = " << pattern.rounds()
            << "\n"
            << pattern.to_string() << "\n";

  std::cout << "model membership\n----------------\n";
  std::vector<core::PredicatePtr> zoo;
  for (int f : {1, 2}) {
    if (f < n) {
      zoo.push_back(core::sync_omission(f));
      zoo.push_back(core::sync_crash(f));
      zoo.push_back(core::async_message_passing(f));
      zoo.push_back(core::swmr_shared_memory(f));
      zoo.push_back(core::atomic_snapshot(f));
    }
  }
  zoo.push_back(core::detector_s());
  for (int k : {1, 2, 3}) {
    if (k <= n) zoo.push_back(core::k_uncertainty(k));
  }
  zoo.push_back(core::equal_announcements());
  for (const auto& model : zoo) {
    std::cout << "  " << (model->holds(pattern) ? "[x] " : "[ ] ")
              << model->name() << "\n";
  }

  std::cout << "\nper-round structure\n-------------------\n";
  for (core::Round r = 1; r <= pattern.rounds(); ++r) {
    const core::ProcessSet u = pattern.round_union(r);
    const core::ProcessSet x = pattern.round_intersection(r);
    std::cout << "  round " << r << ": union " << u << "  intersection " << x
              << "  uncertainty " << (u - x).size() << "\n";
  }
  std::cout << "  cumulative announced: " << pattern.cumulative_union()
            << "\n";

  if (pattern.rounds() > 0) {
    std::cout << "\nknowledge propagation\n---------------------\n";
    const core::Round common = core::rounds_until_common_knowledge(pattern);
    if (common >= 0) {
      std::cout << "  some input known to all after round " << common << "\n";
    } else {
      std::cout << "  no input becomes common knowledge within the pattern\n";
    }

    std::cout << "\none-round k-set algorithm on round 1\n"
              << "------------------------------------\n";
    std::vector<agreement::OneRoundKSet> ps;
    for (core::ProcId i = 0; i < n; ++i) ps.emplace_back(i + 1);
    core::ScriptedAdversary adv(pattern);
    auto result = core::run_rounds(ps, adv);
    std::cout << "  decisions:";
    for (const auto& d : result.decisions) std::cout << ' ' << *d;
    std::cout << "\n";
  }
  return 0;
}
