// Failure detectors as RRFDs (Section 7's closing program).
//
//   $ ./failure_detectors [n] [seed]
//
// Classical oracles (P, S, diamond-S) drive round completion; the
// resulting fault patterns land in the RRFD lattice, and the classical
// solvability results follow from the pattern predicates alone.
#include <cstdlib>
#include <iostream>

#include "agreement/s_consensus.h"
#include "agreement/tasks.h"
#include "core/adversaries.h"
#include "core/engine.h"
#include "core/predicates.h"
#include "fdetect/bridge.h"

namespace {

using namespace rrfd;

void consensus_over(const core::FaultPattern& pattern,
                    const std::vector<int>& inputs,
                    const core::ProcessSet& alive) {
  const int n = pattern.n();
  std::vector<agreement::SConsensus> ps;
  for (int v : inputs) ps.emplace_back(n, v);
  core::ScriptedAdversary adv(pattern);
  auto result = core::run_rounds(ps, adv);
  auto check = agreement::check_consensus(inputs, result.decisions, alive);
  std::cout << "  rotating-coordinator consensus (" << n
            << " rounds): " << (check.ok ? "solved" : check.failure) << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 5;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 21;

  std::vector<int> inputs;
  for (int i = 0; i < n; ++i) inputs.push_back(100 + i);

  std::cout << "Failure detectors through the RRFD bridge (n = " << n
            << ")\n\"D(i,r) is the value that allows p_i to complete round "
               "r\" -- item 6\n\n";

  {
    std::cout << "-- P (perfect), one crash --\n";
    fdetect::CrashSchedule sched(n);
    sched.crash_at(static_cast<core::ProcId>(n - 1), 3);
    fdetect::PerfectOracle oracle(sched);
    fdetect::DetectorBridge bridge(sched, oracle, seed);
    auto bridged = bridge.run(n);
    std::cout << bridged.pattern.to_string();
    std::cout << "  announcements are exactly the crashed process, "
                 "everywhere after its crash round.\n";
    consensus_over(bridged.pattern, inputs, sched.correct());
  }
  {
    std::cout << "\n-- S (strong): capricious suspicions, one process "
                 "sacrosanct --\n";
    fdetect::CrashSchedule sched(n);
    sched.crash_at(static_cast<core::ProcId>(n - 1), 4);
    fdetect::StrongOracle oracle(sched, seed, /*never_suspected=*/0, 0.6);
    fdetect::DetectorBridge bridge(sched, oracle, seed + 1);
    auto bridged = bridge.run(n);
    std::cout << bridged.pattern.to_string();
    std::cout << "  S-predicate (some process never announced): "
              << (core::detector_s()->holds(bridged.pattern) ? "holds"
                                                             : "FAILS")
              << "\n";
    consensus_over(bridged.pattern, inputs, sched.correct());
  }
  {
    std::cout << "\n-- diamond-S before stabilization: all bets off --\n";
    fdetect::CrashSchedule sched(n);
    fdetect::EventuallyStrongOracle oracle(sched, seed, /*stabilization=*/
                                           1000000, 0, 0.7);
    fdetect::DetectorBridge bridge(sched, oracle, seed + 2);
    auto bridged = bridge.run(n);
    std::cout << "  S-predicate on this pre-stabilization window: "
              << (core::detector_s()->holds(bridged.pattern)
                      ? "holds (lucky run)"
                      : "fails, as allowed")
              << "\n";
    consensus_over(bridged.pattern, inputs, core::ProcessSet::all(n));
    std::cout << "  (agreement may legitimately fail above; rerun with "
                 "other seeds to see both outcomes)\n";
  }
  return 0;
}
