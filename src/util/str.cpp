#include "util/str.h"

#include <cstdio>

namespace rrfd {

std::string pad_left(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

std::string fixed(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

}  // namespace rrfd
