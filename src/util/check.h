// Lightweight contract checking for the RRFD library.
//
// RRFD_REQUIRE  -- precondition on public API boundaries; always on.
// RRFD_ENSURE   -- postcondition / internal invariant; always on.
// RRFD_ASSERT   -- debug-only sanity check (compiled out in NDEBUG builds).
//
// Violations throw rrfd::ContractViolation (derived from std::logic_error)
// so tests can assert on misuse and simulations never continue from a
// corrupted state.
#pragma once

#include <atomic>
#include <stdexcept>
#include <string>

namespace rrfd {

/// Thrown when a documented precondition or invariant of the library is
/// violated by the caller (or, for ENSURE, by the library itself).
class ContractViolation : public std::logic_error {
 public:
  ContractViolation(const char* kind, const char* expr, const char* file,
                    int line, const std::string& msg)
      : std::logic_error(std::string(kind) + " failed: (" + expr + ") at " +
                         file + ":" + std::to_string(line) +
                         (msg.empty() ? "" : ": " + msg)) {}
};

namespace detail {

/// Optional execution-context hook: when set, its output is appended to
/// every ContractViolation message. The flight recorder (src/trace)
/// installs a provider that renders the last events of its ring buffer,
/// so a mid-run blow-up carries the deliveries / scheduler choices that
/// led up to it.
using ContractContextProvider = std::string (*)();

inline std::atomic<ContractContextProvider>& contract_context_provider() {
  static std::atomic<ContractContextProvider> provider{nullptr};
  return provider;
}

[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& msg = {}) {
  std::string full = msg;
  if (ContractContextProvider provider =
          // rrfd-lint: allow(atomic-justified) -- captureless fn pointer
          contract_context_provider().load(std::memory_order_relaxed)) {
    const std::string context = provider();
    if (!context.empty()) {
      full += full.empty() ? context : "\n" + context;
    }
  }
  throw ContractViolation(kind, expr, file, line, full);
}

}  // namespace detail

}  // namespace rrfd

#define RRFD_REQUIRE(expr)                                                 \
  do {                                                                     \
    if (!(expr))                                                           \
      ::rrfd::detail::contract_fail("precondition", #expr, __FILE__,       \
                                    __LINE__);                             \
  } while (0)

#define RRFD_REQUIRE_MSG(expr, msg)                                        \
  do {                                                                     \
    if (!(expr))                                                           \
      ::rrfd::detail::contract_fail("precondition", #expr, __FILE__,       \
                                    __LINE__, (msg));                      \
  } while (0)

#define RRFD_ENSURE(expr)                                                  \
  do {                                                                     \
    if (!(expr))                                                           \
      ::rrfd::detail::contract_fail("invariant", #expr, __FILE__,          \
                                    __LINE__);                             \
  } while (0)

#define RRFD_ENSURE_MSG(expr, msg)                                         \
  do {                                                                     \
    if (!(expr))                                                           \
      ::rrfd::detail::contract_fail("invariant", #expr, __FILE__,          \
                                    __LINE__, (msg));                      \
  } while (0)

#ifdef NDEBUG
// sizeof keeps `expr` as an unevaluated operand: no code is generated,
// but variables that appear only in assertions still count as used
// (otherwise Release -Werror flags them as unused parameters).
#define RRFD_ASSERT(expr) ((void)sizeof((expr) ? 1 : 0))
#else
#define RRFD_ASSERT(expr)                                                  \
  do {                                                                     \
    if (!(expr))                                                           \
      ::rrfd::detail::contract_fail("assertion", #expr, __FILE__,          \
                                    __LINE__);                             \
  } while (0)
#endif
