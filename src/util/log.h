// Minimal leveled logger for simulation tracing.
//
// Off by default; tests and examples can raise the level to watch a run
// round by round. The level lives in a std::atomic with relaxed ordering:
// the cooperative runtime serializes all process steps today, but log and
// trace toggling must stay safe if a future substrate goes multi-threaded
// (a plain static read would be a data race the moment two OS threads log
// concurrently). Output is routed through an injectable sink so the flight
// recorder (src/trace) can capture log lines alongside trace events; the
// default sink writes to stderr.
#pragma once

#include <atomic>
#include <iostream>
#include <string>

namespace rrfd {

enum class LogLevel { kOff = 0, kInfo = 1, kDebug = 2, kTrace = 3 };

/// Global log configuration (process-wide).
class Log {
 public:
  /// Where log lines go once they pass the level check. Captureless
  /// function pointer (not std::function) so the slot fits in an atomic
  /// and swapping sinks is race-free.
  using Sink = void (*)(LogLevel level, const std::string& msg);

  static LogLevel level();
  static void set_level(LogLevel level);

  /// Emits `msg` if `level` is at or below the configured verbosity.
  static void write(LogLevel level, const std::string& msg);

  /// Installs a sink (nullptr restores the default stderr writer).
  /// Returns the previously installed sink (nullptr = default).
  static Sink set_sink(Sink sink);

  /// The stock stderr writer; custom sinks may delegate to it.
  static void default_write(LogLevel level, const std::string& msg);

 private:
  static std::atomic<LogLevel> level_;
  static std::atomic<Sink> sink_;
};

inline void log_info(const std::string& msg) {
  Log::write(LogLevel::kInfo, msg);
}
inline void log_debug(const std::string& msg) {
  Log::write(LogLevel::kDebug, msg);
}
inline void log_trace(const std::string& msg) {
  Log::write(LogLevel::kTrace, msg);
}

}  // namespace rrfd
