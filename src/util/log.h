// Minimal leveled logger for simulation tracing.
//
// Off by default; tests and examples can raise the level to watch a run
// round by round. Not thread-safe by design: the cooperative runtime
// serializes all process steps, so only one logical thread logs at a time.
#pragma once

#include <iostream>
#include <string>

namespace rrfd {

enum class LogLevel { kOff = 0, kInfo = 1, kDebug = 2, kTrace = 3 };

/// Global log configuration (process-wide).
class Log {
 public:
  static LogLevel level();
  static void set_level(LogLevel level);

  /// Emits `msg` if `level` is at or below the configured verbosity.
  static void write(LogLevel level, const std::string& msg);

 private:
  static LogLevel level_;
};

inline void log_info(const std::string& msg) {
  Log::write(LogLevel::kInfo, msg);
}
inline void log_debug(const std::string& msg) {
  Log::write(LogLevel::kDebug, msg);
}
inline void log_trace(const std::string& msg) {
  Log::write(LogLevel::kTrace, msg);
}

}  // namespace rrfd
