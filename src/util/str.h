// Small string-building helpers (GCC 12 lacks <format>).
#pragma once

#include <sstream>
#include <string>
#include <vector>

namespace rrfd {

/// Concatenates the stream representations of all arguments.
template <typename... Args>
std::string cat(Args&&... args) {
  std::ostringstream os;
  ((os << std::forward<Args>(args)), ...);
  return os.str();
}

/// Joins container elements with a separator: join({1,2,3}, ",") == "1,2,3".
template <typename Container>
std::string join(const Container& c, const std::string& sep) {
  std::ostringstream os;
  bool first = true;
  for (const auto& e : c) {
    if (!first) os << sep;
    os << e;
    first = false;
  }
  return os.str();
}

/// Fixed-width right-aligned decimal rendering, for plain-text tables.
std::string pad_left(const std::string& s, std::size_t width);
std::string pad_right(const std::string& s, std::size_t width);

/// Renders a double with the given precision (printf "%.*f").
std::string fixed(double v, int precision);

}  // namespace rrfd
