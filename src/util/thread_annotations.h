// Clang thread-safety annotation macros (the capability analysis from
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), spelled with an
// RRFD_ prefix and expanding to nothing on compilers without the
// attributes.
//
// Why this exists: the repo's determinism guarantees (byte-identical
// sweeps, dedup'd job streams, replayable traces) rest on a concurrent
// surface -- the serve queue/cache, the sweep pool, the trace sink swap --
// that TSan can only check on schedules a test happens to take. These
// annotations turn the lock discipline into a *compile-time contract*:
// every mutex-protected member names its mutex, every locking function
// declares what it acquires, and clang's -Wthread-safety proves (or
// refutes) the discipline on every path, scheduled or not. The dedicated
// CI job builds with -Werror=thread-safety so the analysis is
// load-bearing, and rrfd_lint's guarded-member rule makes the annotations
// themselves mandatory wherever a class holds a mutex (DESIGN.md §5).
//
// Use the rrfd::Mutex / rrfd::SharedMutex wrappers (util/mutex.h) as the
// capability types: the std:: primitives carry no capability attribute on
// libstdc++, so GUARDED_BY(std_mutex_member) would itself be rejected by
// -Wthread-safety-attributes.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define RRFD_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef RRFD_THREAD_ANNOTATION
#define RRFD_THREAD_ANNOTATION(x)  // not clang: annotations compile away
#endif

/// Marks a type as a capability (a mutex-like object the analysis can
/// track). `x` is the capability kind shown in diagnostics ("mutex").
#define RRFD_CAPABILITY(x) RRFD_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases
/// a capability (lock guards).
#define RRFD_SCOPED_CAPABILITY RRFD_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define RRFD_GUARDED_BY(x) RRFD_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by `x` (the pointer itself
/// may be read freely).
#define RRFD_PT_GUARDED_BY(x) RRFD_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the capability held exclusively on entry (and does
/// not release it).
#define RRFD_REQUIRES(...) \
  RRFD_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function requires the capability held at least shared on entry.
#define RRFD_REQUIRES_SHARED(...) \
  RRFD_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability exclusively (held on return).
#define RRFD_ACQUIRE(...) \
  RRFD_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function acquires the capability shared.
#define RRFD_ACQUIRE_SHARED(...) \
  RRFD_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (exclusive, shared, or -- with no
/// argument on a scoped capability's destructor -- whichever was taken).
#define RRFD_RELEASE(...) \
  RRFD_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function releases a shared hold of the capability.
#define RRFD_RELEASE_SHARED(...) \
  RRFD_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function attempts the capability; holds it iff the return value equals
/// the first macro argument.
#define RRFD_TRY_ACQUIRE(...) \
  RRFD_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (guards against self-deadlock on
/// non-recursive mutexes).
#define RRFD_EXCLUDES(...) RRFD_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Asserts (at runtime, by contract) that the capability is already held;
/// teaches the analysis about holds it cannot see.
#define RRFD_ASSERT_CAPABILITY(x) \
  RRFD_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the named capability.
#define RRFD_RETURN_CAPABILITY(x) RRFD_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment justifying why the analysis cannot see the invariant
/// (the thread-safety CI job greps for naked uses; see DESIGN.md §5).
#define RRFD_NO_THREAD_SAFETY_ANALYSIS \
  RRFD_THREAD_ANNOTATION(no_thread_safety_analysis)
