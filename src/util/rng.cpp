#include "util/rng.h"

namespace rrfd {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // xoshiro256** must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  RRFD_REQUIRE(bound > 0);
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  RRFD_REQUIRE(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  // span wraps to 0 exactly when [lo, hi] covers the full int64 domain;
  // every raw draw is then a valid sample (below(0) would be a contract
  // violation).
  if (span == 0) return static_cast<std::int64_t>(next());
  return lo + static_cast<std::int64_t>(below(span));
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::uniform01() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::vector<int> Rng::permutation(int n) {
  RRFD_REQUIRE(n >= 0);
  std::vector<int> p(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) p[static_cast<std::size_t>(i)] = i;
  shuffle(p);
  return p;
}

std::vector<int> Rng::sample_without_replacement(int n, int k) {
  RRFD_REQUIRE(0 <= k && k <= n);
  std::vector<int> p = permutation(n);
  p.resize(static_cast<std::size_t>(k));
  return p;
}

Rng Rng::fork() {
  Rng child(0);
  // Derive the child's state from fresh draws of the parent so parent and
  // child streams are decorrelated and the fork itself advances the parent.
  child.reseed(next() ^ rotl(next(), 23));
  return child;
}

Rng Rng::stream(std::uint64_t seed, std::uint64_t stream_index) {
  Rng out(0);
  // Two independent splitmix64 chains -- one walked from the seed, one
  // from the stream counter -- xor-combined per state word. Mixing the
  // *chains* (rather than reseeding from seed ^ stream_index) keeps pairs
  // like (s ^ d, i ^ d) from aliasing (s, i), and splitmix64's avalanche
  // decorrelates adjacent counters; rng_test pins the cross-correlation.
  std::uint64_t a = seed;
  std::uint64_t b = stream_index ^ 0xd1b54a32d192ed03ULL;
  for (auto& word : out.s_) word = splitmix64(a) ^ rotl(splitmix64(b), 23);
  if ((out.s_[0] | out.s_[1] | out.s_[2] | out.s_[3]) == 0) out.s_[0] = 1;
  return out;
}

}  // namespace rrfd
