// Annotated mutex wrappers: the capability types behind the repo's
// compile-time lock discipline (util/thread_annotations.h, DESIGN.md §5).
//
// libstdc++'s std::mutex carries no capability attribute, so a
// RRFD_GUARDED_BY(std_mutex_member) would be rejected by clang's
// -Wthread-safety-attributes. These wrappers are the thinnest possible
// annotated shims over the std primitives: same semantics, same cost
// (every method is an inline forward), plus the attributes that let the
// analysis track who holds what. All locking in the tree goes through
// the scoped guards below -- rrfd_lint's raw-lock-call rule bans naked
// .lock()/.unlock() everywhere except this file, which is the one
// sanctioned implementation site (same pattern as util/rng and
// no-raw-random).
//
// Condition variables: CondVar wraps std::condition_variable_any, which
// waits on any BasicLockable -- here the annotated Mutex itself. wait()
// takes the Mutex (not the guard) so it can carry RRFD_REQUIRES(mu):
// call sites prove to the analysis that the mutex is held at the wait.
// Use explicit `while (!cond) cv.wait(mu);` loops rather than predicate
// lambdas -- the loop body sits in the annotated function's scope, where
// the analysis can see the capability; a lambda would be analyzed as an
// unannotated function and flag every guarded read inside it.
#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/thread_annotations.h"

namespace rrfd {

/// Plain exclusive mutex, annotated as a capability.
class RRFD_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() RRFD_ACQUIRE() { mu_.lock(); }
  void unlock() RRFD_RELEASE() { mu_.unlock(); }
  bool try_lock() RRFD_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// Reader/writer mutex, annotated as a capability. Exclusive = writer,
/// shared = reader.
class RRFD_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() RRFD_ACQUIRE() { mu_.lock(); }
  void unlock() RRFD_RELEASE() { mu_.unlock(); }
  void lock_shared() RRFD_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() RRFD_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive hold of a Mutex (the std::lock_guard of this layer).
class RRFD_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) RRFD_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RRFD_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII exclusive (writer) hold of a SharedMutex.
class RRFD_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) RRFD_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~WriterLock() RRFD_RELEASE() { mu_.unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared (reader) hold of a SharedMutex.
class RRFD_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) RRFD_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderLock() RRFD_RELEASE() { mu_.unlock_shared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable paired with Mutex. The caller must hold `mu` at
/// every wait; the wait releases it atomically and reacquires before
/// returning (std::condition_variable_any semantics), which the analysis
/// models as "held throughout" -- exactly the caller's view.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) RRFD_REQUIRES(mu) { cv_.wait(mu); }
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace rrfd
