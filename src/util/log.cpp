#include "util/log.h"

namespace rrfd {

LogLevel Log::level_ = LogLevel::kOff;

LogLevel Log::level() { return level_; }

void Log::set_level(LogLevel level) { level_ = level; }

void Log::write(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) <= static_cast<int>(level_) &&
      level != LogLevel::kOff) {
    std::cerr << "[rrfd] " << msg << '\n';
  }
}

}  // namespace rrfd
