#include "util/log.h"

namespace rrfd {

std::atomic<LogLevel> Log::level_{LogLevel::kOff};
std::atomic<Log::Sink> Log::sink_{nullptr};

LogLevel Log::level() {
  // rrfd-lint: allow(atomic-justified) -- level gate is advisory; a stale
  // read only includes/drops one message near a set_level()
  return level_.load(std::memory_order_relaxed);
}

void Log::set_level(LogLevel level) {
  // rrfd-lint: allow(atomic-justified) -- see level(): advisory gate
  level_.store(level, std::memory_order_relaxed);
}

Log::Sink Log::set_sink(Sink sink) {
  // rrfd-lint: allow(atomic-justified) -- acq_rel hands the old sink back
  // with every write it saw ordered before the swap
  return sink_.exchange(sink, std::memory_order_acq_rel);
}

void Log::default_write(LogLevel level, const std::string& msg) {
  (void)level;
  std::cerr << "[rrfd] " << msg << '\n';
}

void Log::write(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) <= static_cast<int>(Log::level()) &&
      level != LogLevel::kOff) {
    // rrfd-lint: allow(atomic-justified) -- sinks are captureless function
    // pointers: the value is self-contained, nothing to order behind it
    if (Sink sink = sink_.load(std::memory_order_relaxed)) {
      sink(level, msg);
    } else {
      default_write(level, msg);
    }
  }
}

}  // namespace rrfd
