#include "util/log.h"

namespace rrfd {

std::atomic<LogLevel> Log::level_{LogLevel::kOff};
std::atomic<Log::Sink> Log::sink_{nullptr};

LogLevel Log::level() { return level_.load(std::memory_order_relaxed); }

void Log::set_level(LogLevel level) {
  level_.store(level, std::memory_order_relaxed);
}

Log::Sink Log::set_sink(Sink sink) {
  return sink_.exchange(sink, std::memory_order_acq_rel);
}

void Log::default_write(LogLevel level, const std::string& msg) {
  (void)level;
  std::cerr << "[rrfd] " << msg << '\n';
}

void Log::write(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) <= static_cast<int>(Log::level()) &&
      level != LogLevel::kOff) {
    if (Sink sink = sink_.load(std::memory_order_relaxed)) {
      sink(level, msg);
    } else {
      default_write(level, msg);
    }
  }
}

}  // namespace rrfd
