// Deterministic, seedable random number generation for simulations.
//
// Every stochastic component of the library (adversaries, schedulers,
// workload generators) takes an explicit Rng so that any execution can be
// reproduced from its seed. The generator is xoshiro256** (Blackman &
// Vigna), seeded through splitmix64 -- fast, high quality, and stable
// across platforms (unlike std::default_random_engine).
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace rrfd {

/// xoshiro256** pseudo-random generator with convenience sampling helpers.
/// Satisfies std::uniform_random_bit_generator, so it also works with
/// <random> distributions and std::shuffle.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initializes the state; the subsequent stream depends only on `seed`.
  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~static_cast<result_type>(0); }

  /// Next raw 64-bit value.
  result_type operator()() { return next(); }

  /// Uniform integer in [0, bound). Requires bound > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool chance(double p);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Fisher-Yates shuffle of an arbitrary vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// A uniformly random permutation of {0, 1, ..., n-1}.
  std::vector<int> permutation(int n);

  /// Chooses `k` distinct elements of {0..n-1}, in random order.
  std::vector<int> sample_without_replacement(int n, int k);

  /// Forks an independent generator whose stream is a deterministic
  /// function of this generator's current state. Useful for giving each
  /// simulated process its own stream.
  Rng fork();

  /// Counter-based stream derivation: an independent generator that is a
  /// pure function of (seed, stream_index). Unlike a fork() chain -- where
  /// trial i's generator depends on having forked trials 0..i-1 first --
  /// stream(seed, i) is order-independent, so a parallel sweep can derive
  /// trial i's generator on any worker thread and still reproduce the
  /// serial run exactly. This is the RNG contract of sweep::run (see
  /// DESIGN.md "Sweep determinism").
  static Rng stream(std::uint64_t seed, std::uint64_t stream_index);

 private:
  std::uint64_t next();

  std::uint64_t s_[4]{};
};

}  // namespace rrfd
