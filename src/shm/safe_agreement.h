// Safe agreement (Borowsky-Gafni): the building block of the BG
// simulation behind the asynchronous impossibility results ([9]) that
// Section 4 reduces the synchronous lower bounds to.
//
// Like consensus, but termination is sacrificed exactly where FLP bites:
//   validity + agreement always;
//   a propose() never blocks;
//   resolve() returns the decision unless some proposer crashed inside
//   the two-write "doorway" -- then the object may be stuck forever.
// Contrast with adopt-commit (agreement/adopt_commit.h): adopt-commit is
// wait-free but may fail to commit; safe agreement always decides unless
// a crash lands in the doorway. The pair brackets what is achievable
// wait-free.
//
// Implementation (the classic one): levels in SWMR registers.
//   propose(v): write (v, level 1); snapshot;
//               if somebody is at level 2, step back to level 0,
//               else advance to level 2.
//   resolve():  snapshot; if anyone is at level 1 the object is
//               unresolved (somebody is in the doorway); otherwise decide
//               the value of the lowest-id level-2 entry (at least one
//               exists: the first to leave the doorway went to 2).
#pragma once

#include <optional>

#include "shm/registers.h"
#include "shm/snapshot.h"

namespace rrfd::shm {

class SafeAgreement {
 public:
  explicit SafeAgreement(int n) : cells_(n) {}

  int n() const { return cells_.n(); }

  /// Wait-free; call at most once per process.
  void propose(runtime::Context& ctx, int value) {
    cells_.update(ctx, Entry{value, 1});
    const View<Entry> view = cells_.scan(ctx);
    bool someone_done = false;
    for (const auto& e : view) {
      someone_done = someone_done || (e && e->level == 2);
    }
    cells_.update(ctx, Entry{value, someone_done ? 0 : 2});
  }

  /// One snapshot; nullopt while some proposer sits in the doorway
  /// (level 1). Poll until resolved -- which may be never if that
  /// proposer crashed there.
  std::optional<int> resolve(runtime::Context& ctx) {
    const View<Entry> view = cells_.scan(ctx);
    std::optional<int> decision;
    for (const auto& e : view) {
      if (!e) continue;
      if (e->level == 1) return std::nullopt;  // doorway occupied
      if (e->level == 2 && !decision) decision = e->value;  // lowest id
    }
    return decision;  // nullopt also when nobody proposed yet
  }

  /// Convenience: propose then poll resolve until it answers. Blocks (by
  /// looping) while the doorway is occupied -- use only where the caller
  /// bounds steps externally.
  int propose_and_resolve(runtime::Context& ctx, int value) {
    propose(ctx, value);
    for (;;) {
      const std::optional<int> d = resolve(ctx);
      if (d) return *d;
    }
  }

 private:
  struct Entry {
    int value = 0;
    int level = 0;  // 0 = backed off, 1 = doorway, 2 = committed
  };

  DirectSnapshot<Entry> cells_;
};

}  // namespace rrfd::shm
