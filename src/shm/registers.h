// Single-writer multi-reader registers on the cooperative runtime.
//
// The primitive of Section 2 item 4: an array C_1..C_n where process p_i
// writes C_i and reads all others. Every read and write costs exactly one
// scheduler step, which is the only interleaving point -- so executions of
// register-based protocols range over all interleavings the asynchronous
// SWMR model allows.
#pragma once

#include <optional>
#include <vector>

#include "runtime/sim.h"
#include "util/check.h"

namespace rrfd::shm {

using core::ProcId;
using runtime::Context;

/// A single SWMR register. Writes are restricted to the owner; reads are
/// open to everyone. Both are atomic (one step each).
template <typename T>
class SwmrRegister {
 public:
  explicit SwmrRegister(ProcId owner, T initial = T{})
      : owner_(owner), value_(std::move(initial)) {}

  ProcId owner() const { return owner_; }

  /// Atomic write; only the owner may call this.
  void write(Context& ctx, T v) {
    RRFD_REQUIRE_MSG(ctx.id() == owner_,
                     "SWMR register written by a non-owner");
    ctx.step();
    value_ = std::move(v);
  }

  /// Atomic read.
  T read(Context& ctx) const {
    ctx.step();
    return value_;
  }

  /// Non-simulated inspection for validators and tests (no step, must only
  /// be used outside or after a run).
  const T& peek() const { return value_; }

 private:
  ProcId owner_;
  T value_;
};

/// An array of n SWMR registers, one per process, each initialized to
/// nullopt ("unwritten", the paper's bottom).
template <typename T>
class SwmrArray {
 public:
  explicit SwmrArray(int n) {
    RRFD_REQUIRE(0 < n && n <= core::kMaxProcesses);
    cells_.reserve(static_cast<std::size_t>(n));
    for (ProcId i = 0; i < n; ++i) cells_.emplace_back(i);
  }

  int n() const { return static_cast<int>(cells_.size()); }

  /// Writes the caller's own cell.
  void write(Context& ctx, T v) {
    cells_[static_cast<std::size_t>(ctx.id())].write(ctx, std::move(v));
  }

  /// Reads one cell.
  std::optional<T> read(Context& ctx, ProcId j) const {
    RRFD_REQUIRE(0 <= j && j < n());
    return cells_[static_cast<std::size_t>(j)].read(ctx);
  }

  /// Reads every cell once, in index order (n steps). Not atomic -- this
  /// is the "collect" primitive, NOT a snapshot.
  std::vector<std::optional<T>> collect(Context& ctx) const {
    std::vector<std::optional<T>> out;
    out.reserve(cells_.size());
    for (const auto& c : cells_) out.push_back(c.read(ctx));
    return out;
  }

  /// Non-simulated inspection (see SwmrRegister::peek).
  const std::optional<T>& peek(ProcId j) const {
    RRFD_REQUIRE(0 <= j && j < n());
    return cells_[static_cast<std::size_t>(j)].peek();
  }

 private:
  std::vector<SwmrRegister<std::optional<T>>> cells_;
};

}  // namespace rrfd::shm
