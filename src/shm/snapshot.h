// Atomic snapshots: the substrate of Section 2 item 5 and Section 4.2.
//
// Three implementations, strongest guarantees to weakest assumptions:
//
//  * DirectSnapshot -- a linearizable reference object whose update and
//    scan are single atomic steps. This is "assume an atomic snapshot
//    object exists" made executable; the other two are checked against it.
//
//  * AfekSnapshot -- the wait-free construction of Afek, Attiya, Dolev,
//    Gafni, Merritt & Shavit (JACM 1993, the paper's reference [21]) from
//    SWMR registers: double collects with embedded scans. Every register
//    access is one step, so the construction is exercised under arbitrary
//    interleavings and crashes.
//
//  * ImmediateSnapshot -- the one-shot immediate snapshot of Borowsky &
//    Gafni (the paper's reference [4]): views satisfy self-inclusion,
//    containment, and immediacy, which is precisely the RRFD predicate of
//    item 5 (round views form a containment chain).
#pragma once

#include <algorithm>
#include <optional>
#include <vector>

#include "shm/registers.h"

namespace rrfd::shm {

/// A view: for each process, its value if it is in the view.
template <typename T>
using View = std::vector<std::optional<T>>;

/// Linearizable reference snapshot object (single-step update and scan).
template <typename T>
class DirectSnapshot {
 public:
  explicit DirectSnapshot(int n) : cells_(static_cast<std::size_t>(n)) {
    RRFD_REQUIRE(0 < n && n <= core::kMaxProcesses);
  }

  int n() const { return static_cast<int>(cells_.size()); }

  /// Atomically installs the caller's value.
  void update(Context& ctx, T v) {
    ctx.step();
    cells_[static_cast<std::size_t>(ctx.id())] = std::move(v);
  }

  /// Atomically reads all cells.
  View<T> scan(Context& ctx) const {
    ctx.step();
    return cells_;
  }

  /// Non-simulated inspection.
  const View<T>& peek() const { return cells_; }

 private:
  View<T> cells_;
};

/// Wait-free snapshot from SWMR registers (Afek et al.).
///
/// Each cell carries (value, sequence number, embedded view). A scanner
/// double-collects until either two collects agree (a clean snapshot) or
/// some process is seen to move twice, in which case that process's
/// embedded view -- taken entirely within the scanner's interval -- is
/// returned. Updates perform an embedded scan and then a single write.
template <typename T>
class AfekSnapshot {
 public:
  explicit AfekSnapshot(int n) : regs_(n) {}

  int n() const { return regs_.n(); }

  /// Wait-free update: embedded scan + one write.
  void update(Context& ctx, T v) {
    View<T> embedded = scan(ctx);
    const std::optional<Cell> prior = regs_.peek(ctx.id());
    const long seq = prior ? prior->seq + 1 : 1;
    regs_.write(ctx, Cell{std::move(v), seq, std::move(embedded)});
  }

  /// Wait-free scan.
  View<T> scan(Context& ctx) const {
    std::vector<bool> moved(static_cast<std::size_t>(n()), false);
    std::vector<std::optional<Cell>> a = regs_.collect(ctx);
    for (;;) {
      std::vector<std::optional<Cell>> b = regs_.collect(ctx);
      bool clean = true;
      for (ProcId j = 0; j < n(); ++j) {
        const auto ja = static_cast<std::size_t>(j);
        const long sa = a[ja] ? a[ja]->seq : 0;
        const long sb = b[ja] ? b[ja]->seq : 0;
        if (sa == sb) continue;
        clean = false;
        if (moved[ja]) {
          // j completed an entire update inside our scan: its embedded
          // view is a snapshot within our interval.
          return b[ja]->embedded;
        }
        moved[ja] = true;
      }
      if (clean) return values_of(b);
      a = std::move(b);
    }
  }

 private:
  struct Cell {
    T value;
    long seq = 0;
    View<T> embedded;
  };

  static View<T> values_of(const std::vector<std::optional<Cell>>& cells) {
    View<T> out(cells.size());
    for (std::size_t j = 0; j < cells.size(); ++j) {
      if (cells[j]) out[j] = cells[j]->value;
    }
    return out;
  }

  SwmrArray<Cell> regs_;
};

/// One-shot immediate snapshot (Borowsky-Gafni). Each participant calls
/// participate() exactly once; the returned views V satisfy
///   self-inclusion:  i in V_i
///   containment:     V_i subseteq V_j or V_j subseteq V_i
///   immediacy:       j in V_i  =>  V_j subseteq V_i
/// which is the item-5 RRFD round structure (D(i,r) = complement of V_i).
template <typename T>
class ImmediateSnapshot {
 public:
  explicit ImmediateSnapshot(int n) : regs_(n) {}

  int n() const { return regs_.n(); }

  /// Announces `v` and returns this process's view. At most one call per
  /// process per object.
  View<T> participate(Context& ctx, T v) {
    const int count = n();
    int level = count + 1;
    for (;;) {
      --level;
      RRFD_ENSURE(level >= 1);
      regs_.write(ctx, Cell{v, level});
      std::vector<std::optional<Cell>> collected = regs_.collect(ctx);
      int at_or_below = 0;
      for (const auto& c : collected) {
        if (c && c->level <= level) ++at_or_below;
      }
      if (at_or_below >= level) {
        View<T> view(collected.size());
        for (std::size_t j = 0; j < collected.size(); ++j) {
          if (collected[j] && collected[j]->level <= level) {
            view[j] = collected[j]->value;
          }
        }
        return view;
      }
    }
  }

 private:
  struct Cell {
    T value;
    int level = 0;
  };

  SwmrArray<Cell> regs_;
};

/// Size of a view (number of present entries).
template <typename T>
int view_size(const View<T>& v) {
  return static_cast<int>(
      std::count_if(v.begin(), v.end(), [](const auto& e) { return e.has_value(); }));
}

/// Does `a` contain `b` (as sets of present indices)?
template <typename T>
bool view_contains(const View<T>& a, const View<T>& b) {
  RRFD_REQUIRE(a.size() == b.size());
  for (std::size_t j = 0; j < a.size(); ++j) {
    if (b[j] && !a[j]) return false;
  }
  return true;
}

}  // namespace rrfd::shm
