// A linearizable k-set-consensus object.
//
// Theorem 3.3 assumes "a system [that] allows a solution to the problem of
// k-set consensus"; this object is that assumption made executable. Its
// guarantees are exactly the task's:
//   validity:    every returned value was proposed by somebody;
//   k-agreement: at most k distinct values are ever returned.
// Within that envelope the object is adversarial: a seeded coin decides
// whether a proposal is admitted as a new "winner" or redirected to an
// existing one, so experiments range over many legal behaviours.
#pragma once

#include <vector>

#include "runtime/sim.h"
#include "util/check.h"
#include "util/rng.h"

namespace rrfd::shm {

class KSetObject {
 public:
  KSetObject(int k, std::uint64_t seed) : k_(k), rng_(seed) {
    RRFD_REQUIRE(k >= 1);
  }

  int k() const { return k_; }

  /// Proposes `value`; returns one of the object's winners (one atomic
  /// step). The first proposal always wins; later proposals may be
  /// admitted while fewer than k winners exist.
  int propose(runtime::Context& ctx, int value) {
    ctx.step();
    return propose_unsimulated(value);
  }

  /// Same semantics without a scheduler step -- for use outside the
  /// cooperative runtime (e.g. driving the object from engine-level code).
  int propose_unsimulated(int value) {
    if (winners_.empty() ||
        (static_cast<int>(winners_.size()) < k_ && rng_.chance(0.5))) {
      winners_.push_back(value);
      return value;
    }
    return winners_[static_cast<std::size_t>(rng_.below(winners_.size()))];
  }

  /// Winners so far (for validation).
  const std::vector<int>& winners() const { return winners_; }

 private:
  int k_;
  Rng rng_;
  std::vector<int> winners_;
};

}  // namespace rrfd::shm
