#include "trace/replay.h"

#include <algorithm>

#include "core/adversaries.h"
#include "util/str.h"

namespace rrfd::trace {

TraceReplayer::TraceReplayer(Trace trace) : trace_(std::move(trace)) {
  int run_begins = 0;
  for (const TraceEvent& ev : trace_.events) {
    if (ev.kind == EventKind::kRunBegin) {
      ++run_begins;
      n_ = ev.proc;
      substrate_ = ev.substrate;
    } else if (ev.kind == EventKind::kRunEnd) {
      recorded_rounds_ = ev.round;
    }
  }
  RRFD_REQUIRE_MSG(run_begins == 1,
                   cat("trace must contain exactly one run (found ",
                       run_begins, " run_begin events)"));
  RRFD_REQUIRE_MSG(0 < n_ && n_ <= core::kMaxProcesses,
                   "trace run_begin carries an invalid system size");
}

core::FaultPattern TraceReplayer::recorded_pattern() const {
  core::Round max_round = 0;
  for (const TraceEvent& ev : trace_.events) {
    if (ev.kind == EventKind::kAnnounce) {
      max_round = std::max(max_round, static_cast<core::Round>(ev.round));
    }
  }
  std::vector<core::RoundFaults> rounds(
      static_cast<std::size_t>(max_round),
      core::RoundFaults(static_cast<std::size_t>(n_),
                        core::ProcessSet::none(n_)));
  for (const TraceEvent& ev : trace_.events) {
    if (ev.kind != EventKind::kAnnounce) continue;
    RRFD_REQUIRE_MSG(1 <= ev.round && 0 <= ev.proc && ev.proc < n_,
                     "announce event out of range: " + to_string(ev));
    rounds[static_cast<std::size_t>(ev.round - 1)]
          [static_cast<std::size_t>(ev.proc)] =
        core::ProcessSet::from_bits(n_, ev.a);
  }
  core::FaultPattern pattern(n_);
  for (core::RoundFaults& round : rounds) pattern.append(std::move(round));
  return pattern;
}

core::AdversaryPtr TraceReplayer::scripted_adversary() const {
  return std::make_unique<core::ScriptedAdversary>(recorded_pattern());
}

std::vector<std::optional<std::int64_t>> TraceReplayer::recorded_decisions()
    const {
  std::vector<std::optional<std::int64_t>> out(
      static_cast<std::size_t>(n_));
  for (const TraceEvent& ev : trace_.events) {
    if (ev.kind != EventKind::kDecide || ev.b == 0) continue;
    RRFD_REQUIRE_MSG(0 <= ev.proc && ev.proc < n_,
                     "decide event out of range: " + to_string(ev));
    out[static_cast<std::size_t>(ev.proc)] =
        static_cast<std::int64_t>(ev.a);
  }
  return out;
}

std::vector<std::pair<std::int32_t, bool>> TraceReplayer::scheduler_choices()
    const {
  std::vector<std::pair<std::int32_t, bool>> out;
  for (const TraceEvent& ev : trace_.events) {
    if (ev.substrate != Substrate::kRuntime) continue;
    if (ev.kind == EventKind::kSchedChoice) {
      out.emplace_back(ev.proc, ev.b != 0);
    } else if (ev.kind == EventKind::kCrash) {
      out.emplace_back(ev.proc, true);
    }
  }
  return out;
}

std::vector<std::uint32_t> TraceReplayer::link_choices() const {
  std::vector<std::uint32_t> out;
  for (const TraceEvent& ev : trace_.events) {
    if (ev.substrate == Substrate::kMsgpass &&
        ev.kind == EventKind::kSchedChoice) {
      out.push_back(static_cast<std::uint32_t>(ev.a));
    }
  }
  return out;
}

std::vector<std::pair<std::int32_t, std::uint64_t>> TraceReplayer::crash_dests()
    const {
  std::vector<std::pair<std::int32_t, std::uint64_t>> out;
  for (const TraceEvent& ev : trace_.events) {
    if (ev.substrate == Substrate::kMsgpass &&
        ev.kind == EventKind::kCrash) {
      out.emplace_back(ev.proc, ev.a);
    }
  }
  return out;
}

std::vector<std::pair<std::int32_t, std::int32_t>>
TraceReplayer::step_choices() const {
  std::vector<std::pair<std::int32_t, std::int32_t>> out;
  for (const TraceEvent& ev : trace_.events) {
    if (ev.substrate == Substrate::kSemisync &&
        ev.kind == EventKind::kSchedChoice) {
      out.emplace_back(ev.proc, static_cast<std::int32_t>(ev.a));
    }
  }
  return out;
}

void TraceReplayer::verify_matches(
    const std::vector<TraceEvent>& replayed) const {
  const std::vector<TraceEvent>& recorded = trace_.events;
  const std::size_t common = std::min(recorded.size(), replayed.size());
  for (std::size_t k = 0; k < common; ++k) {
    RRFD_ENSURE_MSG(recorded[k] == replayed[k],
                    cat("replay diverged at event #", k, ":\n  recorded: ",
                        to_string(recorded[k]),
                        "\n  replayed: ", to_string(replayed[k])));
  }
  RRFD_ENSURE_MSG(recorded.size() == replayed.size(),
                  cat("replay diverged: recorded ", recorded.size(),
                      " events, replayed ", replayed.size(),
                      " (streams agree on the common prefix)"));
}

}  // namespace rrfd::trace
