#include "trace/trace.h"

#include <cstdlib>
#include <fstream>
#include <limits>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/log.h"
#include "util/str.h"

#ifndef RRFD_GIT_REV
#define RRFD_GIT_REV "unknown"
#endif

namespace rrfd::trace {

namespace {

constexpr const char* kKindNames[] = {
    "run_begin", "run_end", "round_start", "round_end",  "emit",
    "announce",  "deliver", "sched",       "crash",      "decide",
};
constexpr const char* kSubstrateNames[] = {
    "engine", "runtime", "explorer", "msgpass", "semisync",
};

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const char* build_git_rev() { return RRFD_GIT_REV; }

const char* kind_name(EventKind kind) {
  const auto idx = static_cast<std::size_t>(kind);
  RRFD_REQUIRE(idx < std::size(kKindNames));
  return kKindNames[idx];
}

const char* substrate_name(Substrate substrate) {
  const auto idx = static_cast<std::size_t>(substrate);
  RRFD_REQUIRE(idx < std::size(kSubstrateNames));
  return kSubstrateNames[idx];
}

std::string to_string(const TraceEvent& ev) {
  std::ostringstream os;
  os << substrate_name(ev.substrate) << ' ' << kind_name(ev.kind)
     << " p=" << ev.proc << " r=" << ev.round << " a=" << ev.a
     << " b=" << ev.b;
  return os.str();
}

void Tracer::detail_install_context_hook() {
  rrfd::detail::contract_context_provider().store(
      +[]() -> std::string {
        TraceSink* s = Tracer::sink();
        return s ? s->context() : std::string();
      },
      // rrfd-lint: allow(atomic-justified) -- idempotent hook install
      std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// RingRecorder
// ---------------------------------------------------------------------------

RingRecorder::RingRecorder(std::size_t capacity) {
  RRFD_REQUIRE(capacity > 0);
  ring_.resize(capacity);
}

void RingRecorder::on_event(const TraceEvent& ev) {
  ring_[static_cast<std::size_t>(total_ % ring_.size())] = ev;
  ++total_;
}

std::vector<TraceEvent> RingRecorder::recent() const {
  std::vector<TraceEvent> out;
  const std::uint64_t held = total_ < ring_.size() ? total_ : ring_.size();
  out.reserve(static_cast<std::size_t>(held));
  for (std::uint64_t k = total_ - held; k < total_; ++k) {
    out.push_back(ring_[static_cast<std::size_t>(k % ring_.size())]);
  }
  return out;
}

std::string RingRecorder::to_string(std::size_t last_n) const {
  const std::vector<TraceEvent> events = recent();
  const std::size_t from = events.size() > last_n ? events.size() - last_n : 0;
  std::ostringstream os;
  os << "trace tail (" << (events.size() - from) << " of " << total_
     << " events):";
  for (std::size_t k = from; k < events.size(); ++k) {
    os << "\n  #" << (total_ - events.size() + k) << ' '
       << trace::to_string(events[k]);
  }
  return os.str();
}

std::string RingRecorder::context() const {
  if (total_ == 0) return {};
  return to_string();
}

std::string TeeSink::context() const {
  const std::string a = first_->context();
  const std::string b = second_->context();
  if (a.empty()) return b;
  if (b.empty()) return a;
  return a + "\n" + b;
}

// ---------------------------------------------------------------------------
// JSONL writing
// ---------------------------------------------------------------------------

namespace {

void write_event_line(std::ostream& os, const TraceEvent& ev) {
  os << "{\"kind\":\"" << kind_name(ev.kind) << "\",\"sub\":\""
     << substrate_name(ev.substrate) << "\",\"p\":" << ev.proc
     << ",\"r\":" << ev.round << ",\"a\":" << ev.a << ",\"b\":" << ev.b
     << "}\n";
}

void write_log_line(std::ostream& os, int level, const std::string& msg) {
  os << "{\"kind\":\"log\",\"level\":" << level << ",\"msg\":\""
     << json_escape(msg) << "\"}\n";
}

void write_meta_line(std::ostream& os, const std::string& git_rev) {
  os << "{\"schema\":\"" << kTraceSchema << "\",\"git_rev\":\""
     << json_escape(git_rev) << "\"}\n";
}

}  // namespace

JsonlWriter::JsonlWriter(std::ostream& os) : os_(&os), owned_(nullptr) {
  write_meta();
}

JsonlWriter::JsonlWriter(const std::string& path) {
  auto* file = new std::ofstream(path, std::ios::trunc);
  if (!*file) {
    delete file;
    RRFD_REQUIRE_MSG(false, "cannot open trace file: " + path);
  }
  owned_ = file;
  os_ = file;
  write_meta();
}

JsonlWriter::~JsonlWriter() {
  if (owned_) delete static_cast<std::ofstream*>(owned_);
}

void JsonlWriter::write_meta() {
  write_meta_line(*os_, RRFD_GIT_REV);
  // Flush eagerly: the RRFD_TRACE env writer is never destructed, so a
  // buffered meta line would be lost in runs that record no events.
  os_->flush();
}

void JsonlWriter::on_event(const TraceEvent& ev) {
  write_event_line(*os_, ev);
  os_->flush();
}

void JsonlWriter::on_log(int level, const std::string& msg) {
  write_log_line(*os_, level, msg);
  os_->flush();
}

void write_trace(std::ostream& os, const Trace& trace) {
  write_meta_line(os, trace.git_rev);
  for (const TraceEvent& ev : trace.events) write_event_line(os, ev);
  for (const auto& [level, msg] : trace.logs) write_log_line(os, level, msg);
}

// ---------------------------------------------------------------------------
// JSONL parsing (strict, schema-checked)
// ---------------------------------------------------------------------------

namespace {

/// Minimal strict scanner for the flat one-line objects this library
/// writes. Not a general JSON parser: objects are non-nested, keys are
/// known, values are strings or decimal integers.
class LineParser {
 public:
  LineParser(const std::string& line, std::size_t lineno)
      : line_(line), lineno_(lineno) {}

  void expect(char c) {
    RRFD_REQUIRE_MSG(pos_ < line_.size() && line_[pos_] == c,
                     where() + ": expected '" + std::string(1, c) + "'");
    ++pos_;
  }

  bool consume(char c) {
    if (pos_ < line_.size() && line_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string key() {
    std::string k = string_value();
    expect(':');
    return k;
  }

  std::string string_value() {
    expect('"');
    std::string out;
    while (pos_ < line_.size() && line_[pos_] != '"') {
      char c = line_[pos_++];
      if (c == '\\') {
        RRFD_REQUIRE_MSG(pos_ < line_.size(), where() + ": dangling escape");
        char esc = line_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'u': {
            RRFD_REQUIRE_MSG(pos_ + 4 <= line_.size(),
                             where() + ": truncated \\u escape");
            unsigned code = 0;
            for (int k = 0; k < 4; ++k) {
              char h = line_[pos_++];
              unsigned digit = 0;
              if (h >= '0' && h <= '9') digit = static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') digit = static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') digit = static_cast<unsigned>(h - 'A' + 10);
              else RRFD_REQUIRE_MSG(false, where() + ": bad \\u escape");
              code = code * 16 + digit;
            }
            RRFD_REQUIRE_MSG(code < 0x80, where() + ": non-ASCII \\u escape");
            out += static_cast<char>(code);
            break;
          }
          default:
            RRFD_REQUIRE_MSG(false, where() + ": unsupported escape");
        }
      } else {
        out += c;
      }
    }
    expect('"');
    return out;
  }

  std::int64_t int_value() {
    const bool negative = consume('-');
    RRFD_REQUIRE_MSG(pos_ < line_.size() && std::isdigit(
                         static_cast<unsigned char>(line_[pos_])),
                     where() + ": expected integer");
    std::uint64_t v = 0;
    while (pos_ < line_.size() &&
           std::isdigit(static_cast<unsigned char>(line_[pos_]))) {
      const std::uint64_t digit =
          static_cast<std::uint64_t>(line_[pos_++] - '0');
      RRFD_REQUIRE_MSG(v <= (~std::uint64_t{0} - digit) / 10,
                       where() + ": integer overflow");
      v = v * 10 + digit;
    }
    if (negative) {
      RRFD_REQUIRE_MSG(v <= static_cast<std::uint64_t>(
                                std::numeric_limits<std::int64_t>::max()),
                       where() + ": integer overflow");
      return -static_cast<std::int64_t>(v);
    }
    // Values above int64 max are a/b bitmask words; the caller re-widens.
    return static_cast<std::int64_t>(v);
  }

  std::uint64_t uint_value() {
    RRFD_REQUIRE_MSG(pos_ < line_.size() && std::isdigit(
                         static_cast<unsigned char>(line_[pos_])),
                     where() + ": expected unsigned integer");
    std::uint64_t v = 0;
    while (pos_ < line_.size() &&
           std::isdigit(static_cast<unsigned char>(line_[pos_]))) {
      const std::uint64_t digit =
          static_cast<std::uint64_t>(line_[pos_++] - '0');
      RRFD_REQUIRE_MSG(v <= (~std::uint64_t{0} - digit) / 10,
                       where() + ": integer overflow");
      v = v * 10 + digit;
    }
    return v;
  }

  void done() {
    RRFD_REQUIRE_MSG(pos_ == line_.size(),
                     where() + ": trailing characters");
  }

  std::string where() const {
    return cat("trace line ", lineno_, " col ", pos_ + 1);
  }

 private:
  const std::string& line_;
  std::size_t lineno_;
  std::size_t pos_ = 0;
};

EventKind kind_from_name(const std::string& name, const std::string& where) {
  for (std::size_t k = 0; k < std::size(kKindNames); ++k) {
    if (name == kKindNames[k]) return static_cast<EventKind>(k);
  }
  RRFD_REQUIRE_MSG(false, where + ": unknown event kind '" + name + "'");
}

Substrate substrate_from_name(const std::string& name,
                              const std::string& where) {
  for (std::size_t k = 0; k < std::size(kSubstrateNames); ++k) {
    if (name == kSubstrateNames[k]) return static_cast<Substrate>(k);
  }
  RRFD_REQUIRE_MSG(false, where + ": unknown substrate '" + name + "'");
}

}  // namespace

Trace read_trace(std::istream& is) {
  Trace trace;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    try {
      LineParser p(line, lineno);
      p.expect('{');

      if (lineno == 1) {
        // Meta line: {"schema":"...","git_rev":"..."}.
        RRFD_REQUIRE_MSG(p.key() == "schema",
                         p.where() + ": first line must carry the schema");
        trace.schema = p.string_value();
        RRFD_REQUIRE_MSG(trace.schema == kTraceSchema,
                         p.where() + ": unsupported trace schema '" +
                             trace.schema + "'");
        p.expect(',');
        RRFD_REQUIRE_MSG(p.key() == "git_rev",
                         p.where() + ": expected git_rev");
        trace.git_rev = p.string_value();
        p.expect('}');
        p.done();
        continue;
      }
      RRFD_REQUIRE_MSG(!trace.schema.empty(),
                       p.where() + ": events before the schema line");

      RRFD_REQUIRE_MSG(p.key() == "kind", p.where() + ": expected kind");
      const std::string kind = p.string_value();
      if (kind == "log") {
        p.expect(',');
        RRFD_REQUIRE_MSG(p.key() == "level", p.where() + ": expected level");
        const auto level = static_cast<int>(p.int_value());
        p.expect(',');
        RRFD_REQUIRE_MSG(p.key() == "msg", p.where() + ": expected msg");
        trace.logs.emplace_back(level, p.string_value());
        p.expect('}');
        p.done();
        continue;
      }

      TraceEvent ev;
      ev.kind = kind_from_name(kind, p.where());
      p.expect(',');
      RRFD_REQUIRE_MSG(p.key() == "sub", p.where() + ": expected sub");
      ev.substrate = substrate_from_name(p.string_value(), p.where());
      p.expect(',');
      RRFD_REQUIRE_MSG(p.key() == "p", p.where() + ": expected p");
      ev.proc = static_cast<std::int32_t>(p.int_value());
      p.expect(',');
      RRFD_REQUIRE_MSG(p.key() == "r", p.where() + ": expected r");
      ev.round = static_cast<std::int32_t>(p.int_value());
      p.expect(',');
      RRFD_REQUIRE_MSG(p.key() == "a", p.where() + ": expected a");
      ev.a = p.uint_value();
      p.expect(',');
      RRFD_REQUIRE_MSG(p.key() == "b", p.where() + ": expected b");
      ev.b = p.uint_value();
      p.expect('}');
      p.done();
      trace.events.push_back(ev);
    } catch (const ContractViolation& e) {
      // Torn-line guard: a line that does not close its object is the
      // signature of interleaved partial appends from concurrent writers
      // (the reason the emitters write whole lines with one O_APPEND
      // write). Say so instead of leaving only a bare parse error.
      if (line.back() != '}') {
        RRFD_REQUIRE_MSG(
            false,
            std::string(e.what()) +
                "\n  (trace line " + std::to_string(lineno) +
                " does not end in '}': likely a torn line from a "
                "concurrent/interrupted append)");
      }
      throw;
    }
  }
  RRFD_REQUIRE_MSG(!trace.schema.empty(), "trace is empty (no schema line)");
  return trace;
}

Trace read_trace_file(const std::string& path) {
  std::ifstream is(path);
  RRFD_REQUIRE_MSG(static_cast<bool>(is), "cannot open trace file: " + path);
  return read_trace(is);
}

// ---------------------------------------------------------------------------
// Log routing + RRFD_TRACE env hook
// ---------------------------------------------------------------------------

void forward_logs_to_trace() {
  Log::set_sink(+[](LogLevel level, const std::string& msg) {
    if (TraceSink* s = Tracer::sink()) {
      s->on_log(static_cast<int>(level), msg);
    } else {
      Log::default_write(level, msg);
    }
  });
}

namespace {

/// RRFD_TRACE=path streams every run of the hosting binary to `path` as
/// JSONL (binaries linking rrfd_trace only; see README). Attached before
/// main() runs; intentionally leaked so late events still land.
struct EnvTraceInit {
  EnvTraceInit() {
    const char* path = std::getenv("RRFD_TRACE");
    if (path == nullptr || *path == '\0') return;
    auto* writer = new JsonlWriter(std::string(path));
    Tracer::attach(writer);
    forward_logs_to_trace();
  }
};
const EnvTraceInit env_trace_init;

}  // namespace

}  // namespace rrfd::trace
