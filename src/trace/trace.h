// The flight recorder: structured round-level tracing for every execution
// substrate.
//
// The paper's models are defined entirely by the per-round families
// {D(i,r)}, yet a finished run normally keeps only the final FaultPattern.
// When a predicate check or lower-bound experiment misbehaves, the
// interesting part is *which* delivery, scheduler choice, or crash event
// produced the pattern. The tracer captures exactly that: a stream of
// small, fixed-size, typed TraceEvents emitted by the round engine
// (core/engine.h), the cooperative runtime (runtime/sim.cpp, explorer),
// the enforced-round message-passing simulator (msgpass/round_sim.cpp),
// and the semi-synchronous step simulator (semisync/network.cpp).
//
// Zero overhead when off: the only cost on an untraced hot path is one
// relaxed atomic load and a predicted branch per event site (see
// bench_trace's bm_trace_overhead, which pins the off-path cost against a
// hand-rolled uninstrumented round loop). Everything event-shaped is
// header-inline so substrates do not link against this library; only code
// that *consumes* traces (sinks, IO, replay) does.
//
// Sinks:
//   RingRecorder    -- bounded in-memory ring; feeds ContractViolation
//                      context (the last N events before a blow-up).
//   CaptureRecorder -- unbounded vector; raw material for TraceReplayer.
//   JsonlWriter     -- schema-versioned JSON Lines file/stream, git rev
//                      stamped, mirroring the BENCH_rrfd.json conventions.
//   TeeSink         -- fan-out to two sinks (e.g. ring + JSONL).
//
// The JSONL schema and the replay contract are documented in DESIGN.md §3;
// set RRFD_TRACE=path to stream a run to disk from any binary linking
// rrfd_trace (see README).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/check.h"

namespace rrfd::trace {

/// What happened. One enumerator per structural event of a round-based
/// execution; every substrate maps its own vocabulary onto these.
enum class EventKind : std::uint8_t {
  kRunBegin = 0,    ///< a substrate run started
  kRunEnd,          ///< ... and finished
  kRoundStart,      ///< a round was entered (globally, or by one process)
  kRoundEnd,        ///< a round was left
  kEmit,            ///< a process produced its round message / broadcast
  kAnnounce,        ///< an RRFD announcement: D(i,r) became known
  kDeliver,         ///< a message delivery (or a whole delivered view)
  kSchedChoice,     ///< the scheduler/adversary picked who acts next
  kCrash,           ///< a crash was injected
  kDecide,          ///< a process committed to a decision
};

/// Which simulator produced an event.
enum class Substrate : std::uint8_t {
  kEngine = 0,   ///< core::run_rounds
  kRuntime,      ///< runtime::Simulation (incl. under ScheduleExplorer)
  kExplorer,     ///< runtime::ScheduleExplorer (schedule boundaries)
  kMsgpass,      ///< msgpass::RoundEnforcedSim
  kSemisync,     ///< semisync::StepSim
};

const char* kind_name(EventKind kind);
const char* substrate_name(Substrate substrate);

/// The git revision compiled into this binary (the RRFD_GIT_REV stamp
/// every JsonlWriter meta line carries), or "unknown" when the build
/// ran outside git. Consumers that key long-lived artifacts on the
/// revision -- the job server's result cache above all -- must treat
/// "unknown" as *uncacheable*: two different builds would otherwise
/// share every key (see src/serve/cache.h).
const char* build_git_rev();

/// One structural event. Fixed-size and trivially copyable so the ring
/// recorder is a memcpy and the off-path cost is a branch. Field meaning
/// depends on `kind` (the canonical table, also in DESIGN.md §3):
///
///   kind         proc        round       a                  b
///   ------------ ----------- ----------- ------------------ -------------
///   run_begin    n           0           config word 1      config word 2
///   run_end      -1          rounds/steps outcome bits       outcome bits
///   round_start  i (or -1)   r           0                  0
///   round_end    i (or -1)   r           0                  0
///   emit         i           r           payload            1 if a valid
///   announce     i           r           D(i,r) bitmask     0
///   deliver      recipient   r           sender             payload
///   sched_choice chosen      step index  aux (take/link)    1 if crash
///   crash        p           r or step   aux (dest mask)    aux (reaches)
///   decide       p           r           decision value     1 if a valid
///
/// "config word"s are substrate-specific (engine: max_rounds /
/// stop_when_all_decided; msgpass: f / target rounds; semisync: phi /
/// max_events). Payload/decision words are recorded only when the value is
/// integral (b tells); bitmasks are ProcessSet::bits() words.
struct TraceEvent {
  EventKind kind = EventKind::kRunBegin;
  Substrate substrate = Substrate::kEngine;
  std::int32_t proc = -1;
  std::int32_t round = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// Renders one event as "engine announce p=1 r=2 a=0x5 b=0".
std::string to_string(const TraceEvent& ev);

/// Receives the event stream. Implementations must tolerate events from
/// nested runs (a simulation driven inside another simulation) -- the
/// stream is a flat, ordered log.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  virtual void on_event(const TraceEvent& ev) = 0;

  /// Log lines routed through rrfd::Log when the tracer owns the log sink
  /// (see Log::set_sink). Default: ignore.
  virtual void on_log(int /*level*/, const std::string& /*msg*/) {}

  /// Human-readable context for ContractViolation messages (the ring
  /// recorder returns its tail). Default: nothing.
  virtual std::string context() const { return {}; }
};

/// The process-wide tracer: one atomic sink pointer. All hot-path pieces
/// are inline so substrates pay one relaxed load per event site when
/// tracing is off and never link against the trace library.
class Tracer {
 public:
  /// Is any sink attached? (The off-path fast check.)
  static bool on() {
    // rrfd-lint: allow(atomic-justified) -- off-path check; swaps only
    return sink_.load(std::memory_order_relaxed) != nullptr;
  }

  static TraceSink* sink() {
    // rrfd-lint: allow(atomic-justified) -- attach() contract: no swap
    // happens while other threads emit, so no ordering is carried here
    return sink_.load(std::memory_order_relaxed);
  }

  /// Attaches `sink` (nullptr detaches) and returns the previous sink.
  /// Also installs the contract-context hook so ContractViolations carry
  /// the sink's context() while attached. Not thread-safe with respect to
  /// concurrent event emission from *other* threads mid-swap; swap only
  /// between runs.
  static TraceSink* attach(TraceSink* sink) {
    detail_install_context_hook();
    // rrfd-lint: allow(atomic-justified) -- publishes the sink's state to
    // the attaching thread's subsequent emits (swap only between runs)
    return sink_.exchange(sink, std::memory_order_acq_rel);
  }

  static void emit(const TraceEvent& ev) {
    if (TraceSink* s = sink()) s->on_event(ev);
  }

 private:
  static void detail_install_context_hook();

  static inline std::atomic<TraceSink*> sink_{nullptr};
};

/// The per-site emission helper: one relaxed load, one predicted branch,
/// and no event construction when tracing is off.
inline void record(EventKind kind, Substrate substrate, std::int32_t proc,
                   std::int32_t round, std::uint64_t a = 0,
                   std::uint64_t b = 0) {
  TraceSink* s = Tracer::sink();
  if (!s) return;
  TraceEvent ev;
  ev.kind = kind;
  ev.substrate = substrate;
  ev.proc = proc;
  ev.round = round;
  ev.a = a;
  ev.b = b;
  s->on_event(ev);
}

/// RAII sink attachment: attach on construction, restore the previous sink
/// on destruction.
class ScopedTrace {
 public:
  explicit ScopedTrace(TraceSink* sink) : prev_(Tracer::attach(sink)) {}
  ~ScopedTrace() { Tracer::attach(prev_); }

  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  TraceSink* prev_;
};

/// Bounded ring of the most recent events. The flight recorder proper:
/// cheap enough to leave on, and its tail is attached to every
/// ContractViolation raised while it is the active sink.
class RingRecorder : public TraceSink {
 public:
  explicit RingRecorder(std::size_t capacity = 256);

  void on_event(const TraceEvent& ev) override;
  std::string context() const override;

  /// Events currently held, oldest first.
  std::vector<TraceEvent> recent() const;

  std::size_t capacity() const { return ring_.size(); }
  std::uint64_t total() const { return total_; }    ///< events ever seen
  std::uint64_t dropped() const {
    return total_ > ring_.size() ? total_ - ring_.size() : 0;
  }

  /// Renders the last `last_n` events, one per line.
  std::string to_string(std::size_t last_n = 16) const;

 private:
  std::vector<TraceEvent> ring_;
  std::uint64_t total_ = 0;
};

/// Unbounded in-memory capture; the recording half of record/replay.
class CaptureRecorder : public TraceSink {
 public:
  void on_event(const TraceEvent& ev) override { events_.push_back(ev); }

  const std::vector<TraceEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

 private:
  std::vector<TraceEvent> events_;
};

/// Fans events out to two sinks (e.g. a ring for crash context plus a
/// JSONL stream for offline replay).
class TeeSink : public TraceSink {
 public:
  TeeSink(TraceSink* first, TraceSink* second) : first_(first), second_(second) {
    RRFD_REQUIRE(first != nullptr && second != nullptr);
  }

  void on_event(const TraceEvent& ev) override {
    first_->on_event(ev);
    second_->on_event(ev);
  }
  void on_log(int level, const std::string& msg) override {
    first_->on_log(level, msg);
    second_->on_log(level, msg);
  }
  std::string context() const override;

 private:
  TraceSink* first_;
  TraceSink* second_;
};

// ---------------------------------------------------------------------------
// Serialized traces (JSON Lines).
// ---------------------------------------------------------------------------

/// A parsed trace: schema metadata plus the event stream. The wire format
/// is JSON Lines, mirroring BENCH_rrfd.json: line 1 is a meta object
///   {"schema":"rrfd-trace-v1","git_rev":"<rev>"}
/// and every further line is one event
///   {"kind":"announce","sub":"engine","p":1,"r":2,"a":5,"b":0}
/// (a/b are unsigned decimal integers; log lines are
///   {"kind":"log","level":1,"msg":"..."} and are skipped by the parser's
/// event stream but preserved round-trip as `logs`).
struct Trace {
  std::string schema;    ///< "rrfd-trace-v1"
  std::string git_rev;   ///< revision of the writing binary
  std::vector<TraceEvent> events;
  std::vector<std::pair<int, std::string>> logs;  ///< (level, message)
};

inline constexpr const char* kTraceSchema = "rrfd-trace-v1";

/// Streams every event (and captured log line) as JSON Lines. The meta
/// line is written on construction; events are flushed line-by-line so a
/// crashed run still leaves a readable prefix.
class JsonlWriter : public TraceSink {
 public:
  /// Writes to `os` (not owned; must outlive the writer).
  explicit JsonlWriter(std::ostream& os);
  /// Opens (truncates) `path`. Throws ContractViolation if unwritable.
  explicit JsonlWriter(const std::string& path);
  ~JsonlWriter() override;

  void on_event(const TraceEvent& ev) override;
  void on_log(int level, const std::string& msg) override;

 private:
  void write_meta();

  std::ostream* os_;
  void* owned_;  // std::ofstream* when constructed from a path
};

/// Parses the JSONL format strictly: unknown kinds, malformed lines, or a
/// missing/mismatched schema line raise ContractViolation (consistent with
/// the pattern parser's strictness).
Trace read_trace(std::istream& is);
Trace read_trace_file(const std::string& path);

/// Writes a trace back out (meta line + events + logs); read_trace of the
/// result round-trips exactly.
void write_trace(std::ostream& os, const Trace& trace);

/// Installs a Log sink that forwards rrfd::Log lines into the active
/// trace sink's on_log (falling back to the default stderr writer when no
/// trace sink is attached). Call Log::set_sink(nullptr) to undo.
void forward_logs_to_trace();

}  // namespace rrfd::trace
