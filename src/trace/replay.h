// Deterministic replay of recorded traces.
//
// A trace captured by the flight recorder contains everything that made a
// run what it was: the adversary's announcements (engine), the scheduler's
// choices (runtime), the delivery-order picks (msgpass), and the step /
// delivery-count schedule (semisync). TraceReplayer extracts those choice
// streams in the form each substrate can re-consume --
//
//   engine    -> scripted_adversary()  feeds core::run_rounds
//   runtime   -> scheduler_choices()   feeds runtime::ScriptedScheduler
//   msgpass   -> link_choices()        feeds RoundEnforcedSim::replay_links
//   semisync  -> step_choices()        feeds StepSim::replay_steps
//
// -- and verifies that the re-execution reproduced the recorded run
// byte-for-byte: verify_matches() compares the replayed event stream
// against the recorded one and throws ContractViolation at the first
// divergence. Any saved trace is therefore a deterministic regression
// test. The replay contract is documented in DESIGN.md §3.
#pragma once

#include <optional>
#include <utility>

#include "core/adversary.h"
#include "core/fault_pattern.h"
#include "trace/trace.h"

namespace rrfd::trace {

class TraceReplayer {
 public:
  /// Takes ownership of the recorded trace. The trace must contain exactly
  /// one run (one run_begin event); nested or concatenated runs must be
  /// split by the caller first.
  explicit TraceReplayer(Trace trace);

  const Trace& trace() const { return trace_; }

  /// System size, from the run_begin event.
  int n() const { return n_; }

  /// Which simulator recorded the run.
  Substrate substrate() const { return substrate_; }

  /// Rounds (engine/msgpass) or steps (runtime/semisync) the recorded run
  /// executed, from the run_end event; nullopt if the run never ended
  /// (e.g. the trace stops at a crash mid-run).
  std::optional<int> recorded_rounds() const { return recorded_rounds_; }

  /// The {D(i,r)} family assembled from the announce events. Processes
  /// with no announcement in a round (e.g. crashed ones in msgpass)
  /// contribute empty sets, matching what the substrates return.
  core::FaultPattern recorded_pattern() const;

  /// An adversary replaying the recorded announcements round by round;
  /// feeding it to core::run_rounds with identically-constructed processes
  /// reproduces the recorded RunResult exactly.
  core::AdversaryPtr scripted_adversary() const;

  /// Recorded decisions per process: (value, round committed); only
  /// decisions with an integral encodable value are recoverable.
  std::vector<std::optional<std::int64_t>> recorded_decisions() const;

  /// Runtime substrate: the scheduler's (process, crashed?) choices in
  /// order. Convertible 1:1 into runtime::Scheduler::Choice.
  std::vector<std::pair<std::int32_t, bool>> scheduler_choices() const;

  /// Msgpass substrate: the link index picked at each event-loop
  /// iteration, for RoundEnforcedSim::replay_links.
  std::vector<std::uint32_t> link_choices() const;

  /// Msgpass substrate: the destination mask each crashing process
  /// reached, for RoundEnforcedSim::replay_crash_dests.
  std::vector<std::pair<std::int32_t, std::uint64_t>> crash_dests() const;

  /// Semisync substrate: (process, messages delivered) per step, for
  /// StepSim::replay_steps.
  std::vector<std::pair<std::int32_t, std::int32_t>> step_choices() const;

  /// Asserts that a re-executed event stream matches the recorded one
  /// exactly (same events, same order; metadata and log lines ignored).
  /// Throws ContractViolation describing the first divergence.
  void verify_matches(const std::vector<TraceEvent>& replayed) const;
  void verify_matches(const Trace& replayed) const {
    verify_matches(replayed.events);
  }

 private:
  Trace trace_;
  int n_ = 0;
  Substrate substrate_ = Substrate::kEngine;
  std::optional<int> recorded_rounds_;
};

}  // namespace rrfd::trace
