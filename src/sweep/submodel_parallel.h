// Parallel execution for the exhaustive submodel checks.
//
// core/submodel.h shards its DFS over first-round indices and accepts an
// injected ShardRunner; this header supplies the pool-backed runner so
// that core stays free of any threading dependency. The determinism
// contract carries over unchanged from sweep::run ("Sweep determinism",
// DESIGN.md): shard results are spliced in shard index order inside the
// engine, so implies_exhaustive with this runner returns byte-identical
// results -- same counterexample, same counts -- at any thread count,
// including the serial default.
#pragma once

#include "core/submodel.h"
#include "sweep/sweep.h"

namespace rrfd::sweep {

/// A ShardRunner over the shared worker pool. `threads` follows the
/// RRFD_SWEEP_THREADS convention (0/1 = serial on the calling thread);
/// an attached trace sink forces serial execution, as everywhere else.
core::ShardRunner shard_runner(int threads = threads_from_env());

/// implies_exhaustive with shards fanned out over `threads` workers.
/// Extra options (pruning, symmetry, budget) are preserved; the runner
/// field of `options` is overridden.
core::ImplicationResult implies_exhaustive(
    const core::Predicate& a, const core::Predicate& b, int n,
    core::Round rounds, int threads = threads_from_env(),
    core::EnumOptions options = {});

/// equivalent_exhaustive with shards fanned out over `threads` workers.
core::EquivalenceResult equivalent_exhaustive(
    const core::Predicate& a, const core::Predicate& b, int n,
    core::Round rounds, int threads = threads_from_env(),
    core::EnumOptions options = {});

}  // namespace rrfd::sweep
