#include "sweep/sweep.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <string>
#include <thread>

#include "trace/trace.h"

namespace rrfd::sweep {

int threads_from_env() {
  const char* env = std::getenv("RRFD_SWEEP_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  RRFD_REQUIRE_MSG(end != env && *end == '\0' && v >= 0 && v <= 4096,
                   "RRFD_SWEEP_THREADS must be an integer in [0, 4096], got '" +
                       std::string(env) + "'");
  return static_cast<int>(v);
}

namespace detail {

void run_indexed(int n_jobs, int threads,
                 const std::function<void(int)>& job) {
  RRFD_REQUIRE(n_jobs >= 0);
  if (n_jobs == 0) return;
  if (threads > n_jobs) threads = n_jobs;
  // Tracing forces serial (contract item 4): the Tracer is one
  // process-wide sink; concurrent workers would interleave its event
  // stream nondeterministically.
  if (trace::Tracer::on()) threads = 1;

  if (threads <= 1) {
    for (int i = 0; i < n_jobs; ++i) job(i);
    return;
  }

  std::atomic<int> next{0};
  std::mutex mu;
  int first_error_job = n_jobs;
  std::exception_ptr first_error;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int w = 0; w < threads; ++w) {
    workers.emplace_back([&] {
      for (;;) {
        const int i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n_jobs) return;
        try {
          job(i);
        } catch (...) {
          // Keep running every job: jobs are claimed in index order, so
          // by the time any job fails, all lower-indexed jobs have been
          // claimed and will record their own (lower) failures -- the
          // rethrown exception is deterministically the lowest-index one,
          // matching what the serial loop surfaces first.
          std::lock_guard<std::mutex> lock(mu);
          if (i < first_error_job) {
            first_error_job = i;
            first_error = std::current_exception();
          }
        }
      }
    });
  }
  for (auto& t : workers) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace detail

}  // namespace rrfd::sweep
