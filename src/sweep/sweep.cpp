#include "sweep/sweep.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <string>
#include <thread>

#include "trace/trace.h"
#include "util/mutex.h"

namespace rrfd::sweep {

int threads_from_env() {
  const char* env = std::getenv("RRFD_SWEEP_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  // Hand-rolled digits-only parse instead of strtol: strtol silently
  // accepts leading whitespace and a '+' sign (" 8", "+8"), which the
  // strict-knob contract forbids, and its overflow behaviour (LONG_MAX +
  // errno) is easy to mishandle. Here every deviation -- sign,
  // whitespace, hex, embedded garbage, or a value that would overflow
  // any integer width -- is the same clean ContractViolation.
  const std::string raw(env);
  long v = 0;
  bool ok = true;
  for (char c : raw) {
    if (c < '0' || c > '9') {
      ok = false;
      break;
    }
    v = v * 10 + (c - '0');
    if (v > 4096) {  // caps the accumulator: no overflow for any input
      ok = false;
      break;
    }
  }
  RRFD_REQUIRE_MSG(ok,
                   "RRFD_SWEEP_THREADS must be an unsigned integer in "
                   "[0, 4096] (digits only: no sign, whitespace, or base "
                   "prefix), got '" +
                       raw + "'");
  return static_cast<int>(v);
}

namespace detail {

void run_indexed(int n_jobs, int threads,
                 const std::function<void(int)>& job) {
  RRFD_REQUIRE(n_jobs >= 0);
  if (n_jobs == 0) return;
  if (threads > n_jobs) threads = n_jobs;
  // Tracing forces serial (contract item 4): the Tracer is one
  // process-wide sink; concurrent workers would interleave its event
  // stream nondeterministically.
  if (trace::Tracer::on()) threads = 1;

  if (threads <= 1) {
    for (int i = 0; i < n_jobs; ++i) job(i);
    return;
  }

  std::atomic<int> next{0};
  Mutex mu;
  int first_error_job = n_jobs;
  std::exception_ptr first_error;
  const auto drain = [&] {
    for (;;) {
      // rrfd-lint: allow(atomic-justified) -- claim counter; joins publish
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n_jobs) return;
      try {
        job(i);
      } catch (...) {
        // Keep running every job: jobs are claimed in index order, so
        // by the time any job fails, all lower-indexed jobs have been
        // claimed and will record their own (lower) failures -- the
        // rethrown exception is deterministically the lowest-index one,
        // matching what the serial loop surfaces first.
        MutexLock lock(mu);
        if (i < first_error_job) {
          first_error_job = i;
          first_error = std::current_exception();
        }
      }
    }
  };
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  try {
    for (int w = 0; w < threads; ++w) workers.emplace_back(drain);
  } catch (...) {
    // Thread creation failed (resource exhaustion). Without this guard
    // the joinable threads already in `workers` would std::terminate at
    // unwind, and with zero workers started no job would ever run --
    // leaving callers (sweep::run) with unfilled result slots. Degrade
    // instead: the calling thread drains the same claim counter, so
    // every job still runs exactly once and the results are complete.
    drain();
  }
  for (auto& t : workers) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace detail

}  // namespace rrfd::sweep
