#include "sweep/submodel_parallel.h"

#include <utility>

namespace rrfd::sweep {

core::ShardRunner shard_runner(int threads) {
  return [threads](int n_jobs, const std::function<void(int)>& job) {
    detail::run_indexed(n_jobs, threads, job);
  };
}

core::ImplicationResult implies_exhaustive(const core::Predicate& a,
                                           const core::Predicate& b, int n,
                                           core::Round rounds, int threads,
                                           core::EnumOptions options) {
  options.runner = shard_runner(threads);
  return core::implies_exhaustive(a, b, n, rounds, options);
}

core::EquivalenceResult equivalent_exhaustive(const core::Predicate& a,
                                              const core::Predicate& b, int n,
                                              core::Round rounds, int threads,
                                              core::EnumOptions options) {
  options.runner = shard_runner(threads);
  return core::equivalent_exhaustive(a, b, n, rounds, options);
}

}  // namespace rrfd::sweep
