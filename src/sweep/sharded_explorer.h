// Parallel exhaustive schedule exploration.
//
// The DFS tree of runtime::ScheduleExplorer is partitioned by its first
// decision point: shard k owns the subtree in which the root choice is
// pinned to the k-th root alternative. Shards are disjoint, cover the
// tree, and shard k visits exactly the schedules the serial explore()
// visits while the root sits on alternative k -- so per-shard results
// concatenated in shard order reproduce the serial visit sequence, and
// the whole model check parallelizes without giving up determinism
// (sweep_test pins serial-vs-sharded equality on the n = 2 adopt-commit
// exhaustive check from EXPERIMENTS.md E10).
//
// Trace interaction: with a trace sink attached the shards execute
// sequentially in shard order with accumulated schedule ordinals, and the
// root-probe run is silenced, so the recorded trace is byte-identical to
// the serial explorer's (see "Sweep determinism" in DESIGN.md).
#pragma once

#include <functional>

#include "runtime/explorer.h"
#include "sweep/sweep.h"

namespace rrfd::sweep {

/// Builds the schedule-checking callback for one shard. Called once with
/// shard = -1 for the root-discovery probe (one full run whose outcome
/// must NOT be collected -- it replays shard 0's first schedule), then
/// once per shard k >= 0. Collect per-shard results and splice them in
/// shard order to match the serial explorer's visit order.
using RunOneFactory =
    std::function<std::function<void(runtime::Scheduler&)>(int shard)>;

/// Explores the whole schedule tree across `threads` workers, one shard
/// per root alternative. Merged stats: `schedules` sums the shards (the
/// probe run is not counted), `exhausted` requires every shard to finish
/// under its own `options.max_schedules` budget.
runtime::ScheduleExplorer::Stats explore_sharded(
    const runtime::ScheduleExplorer::Options& options,
    const RunOneFactory& make_run_one, int threads = threads_from_env());

}  // namespace rrfd::sweep
