// Parallel deterministic sweep execution.
//
// Every experiment in EXPERIMENTS.md is a sweep: hundreds of seeded
// adversary trials per parameter cell, or an exhaustive enumeration of
// fault patterns / schedules. All of them are embarrassingly parallel --
// trials are independent by construction -- but naively fanning them out
// loses the property the whole repository is built on: byte-identical
// reproducibility from a seed.
//
// sweep::run keeps it. The contract ("Sweep determinism", DESIGN.md):
//
//  1. Trial i's randomness comes from Rng::stream(seed, i), a pure
//     function of the root seed and the trial counter. No fork() chain,
//     no shared generator: a worker can derive trial 731's generator
//     without having touched trials 0..730.
//  2. Results land in a vector indexed by trial, so the returned sequence
//     is ordered by trial index regardless of completion order.
//  3. Thread count changes scheduling only, never results: run(n, s, f, 1)
//     and run(n, s, f, 8) return identical vectors (sweep_test pins this
//     byte-for-byte over an E1-shaped workload).
//  4. Tracing forces serial: the flight recorder's Tracer is one
//     process-wide sink, so if a sink is attached the trials execute on
//     the calling thread in trial order -- the trace is then identical to
//     the serial run's. (Workers never write the global sink
//     concurrently.)
//  5. If trials throw, the exception with the lowest trial index is
//     rethrown -- the same one the serial loop would have surfaced first.
//
// Opt-in: thread count defaults to RRFD_SWEEP_THREADS (unset/0/1 =>
// serial). Benches that measure per-op latency keep their timing loops
// serial and use the pool only for summary sweeps.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace rrfd::sweep {

/// Worker count from RRFD_SWEEP_THREADS: 0 (serial) when unset or empty;
/// a non-numeric or out-of-range value is a ContractViolation (strict,
/// like every other knob in this repository).
int threads_from_env();

namespace detail {

/// Runs job(0), ..., job(n_jobs - 1) across `threads` workers (claimed
/// from a shared counter). threads <= 1 -- or an attached trace sink --
/// executes serially on the calling thread in index order. All jobs run
/// even if some throw; afterwards the exception with the lowest job index
/// is rethrown, so the surfaced failure is schedule-independent.
void run_indexed(int n_jobs, int threads,
                 const std::function<void(int)>& job);

}  // namespace detail

/// Runs `fn(trial, rng)` for every trial in [0, n_trials), each with its
/// own counter-derived Rng stream, and returns the results ordered by
/// trial index. `fn` must be safe to call concurrently from different
/// threads (trials share no mutable state through the sweep itself).
template <typename Fn>
auto run(int n_trials, std::uint64_t seed, Fn&& fn,
         int threads = threads_from_env()) {
  using R = std::invoke_result_t<Fn&, int, Rng&>;
  static_assert(!std::is_void_v<R>,
                "sweep::run collects per-trial results; return the trial's "
                "outcome (use a struct for multiple values)");
  RRFD_REQUIRE(n_trials >= 0);
  std::vector<std::optional<R>> slots(static_cast<std::size_t>(n_trials));
  detail::run_indexed(n_trials, threads, [&](int trial) {
    Rng rng = Rng::stream(seed, static_cast<std::uint64_t>(trial));
    slots[static_cast<std::size_t>(trial)].emplace(fn(trial, rng));
  });
  std::vector<R> results;
  results.reserve(slots.size());
  for (auto& slot : slots) {
    // run_indexed only returns normally when every job ran to completion
    // (a throwing trial is rethrown above). A disengaged slot here would
    // therefore be a scheduler bug -- surface it as a ContractViolation
    // rather than dereferencing an empty optional (UB).
    RRFD_ENSURE_MSG(slot.has_value(),
                    "sweep::run: trial slot left empty after run_indexed");
    results.push_back(std::move(*slot));
  }
  return results;
}

}  // namespace rrfd::sweep
