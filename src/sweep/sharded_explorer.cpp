#include "sweep/sharded_explorer.h"

#include "trace/trace.h"

namespace rrfd::sweep {

using runtime::ScheduleExplorer;
using runtime::Scheduler;

ScheduleExplorer::Stats explore_sharded(const ScheduleExplorer::Options& options,
                                        const RunOneFactory& make_run_one,
                                        int threads) {
  std::vector<Scheduler::Choice> root;
  {
    // Silence the probe: it replays a schedule that shard 0 will visit
    // again, and a traced sharded run must match the serial trace exactly.
    trace::ScopedTrace silence(nullptr);
    ScheduleExplorer probe(options);
    root = probe.root_alternatives(make_run_one(-1));
  }
  if (root.empty()) {
    // No decision point at all: the tree is a single schedule. Run it
    // through shard 0's collector (the probe's outcome was discarded).
    ScheduleExplorer only(options);
    return only.explore(make_run_one(0));
  }

  std::vector<ScheduleExplorer::Stats> per_shard(root.size());
  if (threads > 1 && !trace::Tracer::on()) {
    detail::run_indexed(
        static_cast<int>(root.size()), threads, [&](int shard) {
          ScheduleExplorer explorer(options);
          per_shard[static_cast<std::size_t>(shard)] = explorer.explore_shard(
              root, static_cast<std::size_t>(shard), make_run_one(shard));
        });
  } else {
    // Serial (or traced): shard order with accumulated ordinals keeps the
    // event stream byte-identical to the serial explorer's.
    long ordinal = 0;
    for (std::size_t shard = 0; shard < root.size(); ++shard) {
      ScheduleExplorer explorer(options);
      per_shard[shard] = explorer.explore_shard(
          root, shard, make_run_one(static_cast<int>(shard)), ordinal);
      ordinal += per_shard[shard].schedules;
    }
  }

  ScheduleExplorer::Stats merged;
  merged.exhausted = true;
  for (const auto& stats : per_shard) {
    merged.schedules += stats.schedules;
    merged.exhausted = merged.exhausted && stats.exhausted;
  }
  return merged;
}

}  // namespace rrfd::sweep
