#include "xform/pattern_checks.h"

#include "util/check.h"

namespace rrfd::xform {
namespace {

core::ProcessSet union_among(const core::FaultPattern& pattern, core::Round r,
                             const core::ProcessSet& alive) {
  core::ProcessSet u(pattern.n());
  for (core::ProcId i : alive.members()) u |= pattern.d(i, r);
  return u;
}

core::ProcessSet intersection_among(const core::FaultPattern& pattern,
                                    core::Round r,
                                    const core::ProcessSet& alive) {
  core::ProcessSet x = core::ProcessSet::all(pattern.n());
  for (core::ProcId i : alive.members()) x &= pattern.d(i, r);
  return x;
}

}  // namespace

bool crash_pattern_holds_among(const core::FaultPattern& pattern,
                               const core::ProcessSet& alive, int budget) {
  RRFD_REQUIRE(pattern.n() == alive.n());
  RRFD_REQUIRE(!alive.empty());
  core::ProcessSet announced(pattern.n());
  for (core::Round r = 1; r <= pattern.rounds(); ++r) {
    for (core::ProcId i : alive.members()) {
      // Monotonicity: everything announced earlier must be in every row.
      if (!announced.subset_of(pattern.d(i, r))) return false;
      // Self-suspicion is only legitimate for a process that is genuinely
      // crashed in the simulated system: announced in an earlier round,
      // or announced by some *other* observer in this very round (the
      // Corollary 4.4 "I crashed" outcome, where a process commits its own
      // faultiness together with everybody else).
      if (pattern.d(i, r).contains(i) && !announced.contains(i)) {
        bool corroborated = false;
        for (core::ProcId j : alive.members()) {
          corroborated =
              corroborated || (j != i && pattern.d(j, r).contains(i));
        }
        if (!corroborated) return false;
      }
    }
    announced |= union_among(pattern, r, alive);
    if (announced.size() > budget) return false;
  }
  return true;
}

bool k_uncertainty_holds_among(const core::FaultPattern& pattern,
                               const core::ProcessSet& alive, int k) {
  RRFD_REQUIRE(pattern.n() == alive.n());
  RRFD_REQUIRE(!alive.empty());
  RRFD_REQUIRE(k >= 1);
  for (core::Round r = 1; r <= pattern.rounds(); ++r) {
    const core::ProcessSet disagreement =
        union_among(pattern, r, alive) - intersection_among(pattern, r, alive);
    if (disagreement.size() >= k) return false;
  }
  return true;
}

}  // namespace rrfd::xform
