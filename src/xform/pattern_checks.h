// Predicate checks restricted to a subset of observers.
//
// Simulations executed on the crash-prone runtime produce fault patterns
// whose rows for crashed *executors* are vacuous (a crashed executor
// reports nothing). The model guarantees only bind the processes that are
// actually running, so the Theorem 4.3 / Theorem 3.3 validations check
// the predicates over the alive rows.
#pragma once

#include "core/fault_pattern.h"

namespace rrfd::xform {

/// Synchronous-crash validity over `alive` rows: no self-suspicion before
/// announcement, cumulative announcements bounded by `budget`, and crash
/// monotonicity (everything announced in round r appears in every alive
/// row of round r+1).
bool crash_pattern_holds_among(const core::FaultPattern& pattern,
                               const core::ProcessSet& alive, int budget);

/// Theorem 3.1 detector validity over `alive` rows:
/// |U D \ ^ D| < k per round, computed over alive observers only.
bool k_uncertainty_holds_among(const core::FaultPattern& pattern,
                               const core::ProcessSet& alive, int k);

}  // namespace rrfd::xform
