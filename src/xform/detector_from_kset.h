// Theorem 3.3: a system with a k-set-consensus object and SWMR shared
// memory supports the k-uncertainty detector of Theorem 3.1.
//
// Per round r:
//   * each process appends its round-r value to its cell (the emission);
//   * all run one k-set consensus with their own identifiers as input;
//   * each process writes its k-set output j to an output cell, collects
//     the output cells, and takes Q = the set of identifiers it read;
//   * D(i,r) := S \ Q.
// Any two Q's differ only in chosen identifiers (at most k of them), and
// all contain the identifier whose output cell was written first -- so
// |union D \ intersection D| <= k - 1 < k.
#pragma once

#include <memory>
#include <vector>

#include "core/fault_pattern.h"
#include "runtime/sim.h"
#include "shm/kset_object.h"
#include "shm/registers.h"

namespace rrfd::xform {

/// Result of running the construction.
struct DetectorFromKSetResult {
  core::FaultPattern pattern;            ///< the D(i,r) family produced
  core::ProcessSet crashed;              ///< processes crashed mid-run
  std::vector<std::vector<bool>> emission_visible;
  ///< emission_visible[r-1][i]: every member of process i's round-r Q had
  ///< already emitted when i computed D(i,r) (the theorem's "it can read
  ///< emitted values for Q at round r").

  DetectorFromKSetResult(int n, core::Round rounds)
      : pattern(n),
        crashed(n),
        emission_visible(static_cast<std::size_t>(rounds),
                         std::vector<bool>(static_cast<std::size_t>(n), true)) {}
};

/// Runs `rounds` rounds of the Theorem 3.3 construction for n processes
/// under the given scheduler. `seed` feeds the k-set objects' adversarial
/// choices.
DetectorFromKSetResult run_detector_from_kset(int n, int k,
                                              core::Round rounds,
                                              runtime::Scheduler& scheduler,
                                              std::uint64_t seed,
                                              int max_steps = 1 << 20);

}  // namespace rrfd::xform
