#include "xform/detector_from_kset.h"

#include <set>

#include "util/check.h"

namespace rrfd::xform {

DetectorFromKSetResult run_detector_from_kset(int n, int k,
                                              core::Round rounds,
                                              runtime::Scheduler& scheduler,
                                              std::uint64_t seed,
                                              int max_steps) {
  RRFD_REQUIRE(0 < n && n <= core::kMaxProcesses);
  RRFD_REQUIRE(1 <= k && k <= n);
  RRFD_REQUIRE(rounds >= 1);

  // Per-round shared state.
  struct RoundObjects {
    shm::SwmrArray<int> emissions;  // the round's emitted values
    shm::SwmrArray<int> outputs;    // k-set outputs (identifiers)
    shm::KSetObject kset;

    RoundObjects(int n_, int k_, std::uint64_t s)
        : emissions(n_), outputs(n_), kset(k_, s) {}
  };
  std::vector<RoundObjects> shared;
  shared.reserve(static_cast<std::size_t>(rounds));
  for (core::Round r = 1; r <= rounds; ++r) {
    shared.emplace_back(n, k, seed ^ (0x9e37u + static_cast<unsigned>(r)));
  }

  // D sets land here, one slot per (round, process); written only by the
  // owning simulated process (steps are serialized, so no data races).
  std::vector<std::vector<core::ProcessSet>> d_sets(
      static_cast<std::size_t>(rounds),
      std::vector<core::ProcessSet>(static_cast<std::size_t>(n),
                                    core::ProcessSet::none(n)));
  DetectorFromKSetResult result(n, rounds);

  runtime::Simulation sim(n, [&](runtime::Context& ctx) {
    const core::ProcId i = ctx.id();
    for (core::Round r = 1; r <= rounds; ++r) {
      RoundObjects& obj = shared[static_cast<std::size_t>(r - 1)];

      // Emit: append the round's value to our cell.
      obj.emissions.write(ctx, i * 1000 + r);

      // Run k-set consensus on identifiers; publish and collect outputs.
      const int chosen = obj.kset.propose(ctx, i);
      obj.outputs.write(ctx, chosen);
      std::set<int> q;
      for (const auto& cell : obj.outputs.collect(ctx)) {
        if (cell) q.insert(*cell);
      }
      RRFD_ENSURE(!q.empty());  // contains at least our own output

      core::ProcessSet heard(n);
      for (int id : q) {
        RRFD_ENSURE(0 <= id && id < n);
        heard.add(id);
      }
      d_sets[static_cast<std::size_t>(r - 1)][static_cast<std::size_t>(i)] =
          heard.complement();

      // The theorem's claim: everyone in Q has already emitted this round.
      const auto emitted = obj.emissions.collect(ctx);
      for (int id : q) {
        if (!emitted[static_cast<std::size_t>(id)]) {
          result.emission_visible[static_cast<std::size_t>(r - 1)]
                                 [static_cast<std::size_t>(i)] = false;
        }
      }
    }
  });

  runtime::SimOutcome outcome = sim.run(scheduler, max_steps);
  result.crashed = outcome.crashed;
  for (const auto& round : d_sets) result.pattern.append(round);
  return result;
}

}  // namespace rrfd::xform
