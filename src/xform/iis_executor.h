// Iterated-snapshot executors (the paper's reference [4] and Section 2
// item 5): running an RRFD algorithm where every round's announcements
// come from a real shared-memory snapshot protocol on the cooperative
// runtime.
//
// Two resilience regimes:
//  * f = n-1 (wait-free): each round is a one-shot Borowsky-Gafni
//    immediate snapshot -- the Iterated Immediate Snapshot model of [4].
//    D(i,r) is the complement of the view; self-inclusion, containment
//    and immediacy hold by the snapshot's own guarantees.
//  * f < n-1 (f-resilient): each round writes to an atomic snapshot and
//    re-scans until at most f values are missing (the paper's item-5
//    phrasing: "reads in a snapshot until the number of values it misses
//    is <= f"). Scan linearization makes the miss sets a containment
//    chain; termination requires at most f crashes.
//
// Either way the produced pattern satisfies the item-5 predicate, which
// the tests check -- closing the loop between the abstract
// SnapshotAdversary and the real substrate (e.g. Corollary 3.2 end to
// end: one-round k-set agreement over a live snapshot memory with k-1
// crash failures).
#pragma once

#include <memory>
#include <optional>

#include "core/engine.h"
#include "runtime/sim.h"
#include "shm/snapshot.h"

namespace rrfd::xform {

template <typename Decision>
struct IisRunResult {
  core::FaultPattern pattern;  ///< D(i,r) = view complements
  core::ProcessSet crashed;    ///< executors crashed by the scheduler
  std::vector<std::optional<Decision>> decisions;

  explicit IisRunResult(int n)
      : pattern(n), crashed(n),
        decisions(static_cast<std::size_t>(n), std::nullopt) {}
};

/// Runs `rounds` rounds of the given engine-style processes (int
/// messages) over per-round snapshots under `scheduler`. `f` selects the
/// resilience regime (defaults to wait-free, f = n-1).
template <typename P>
  requires core::RoundProcess<P> && std::same_as<typename P::Message, int>
IisRunResult<typename P::Decision> run_over_iis(std::vector<P>& procs,
                                                core::Round rounds,
                                                runtime::Scheduler& scheduler,
                                                int f = -1,
                                                int max_steps = 1 << 22) {
  const int n = static_cast<int>(procs.size());
  RRFD_REQUIRE(0 < n && n <= core::kMaxProcesses);
  RRFD_REQUIRE(rounds >= 1);
  if (f < 0) f = n - 1;
  RRFD_REQUIRE(0 <= f && f <= n - 1);
  const bool wait_free = (f == n - 1);

  struct RoundObjects {
    std::unique_ptr<shm::ImmediateSnapshot<int>> immediate;
    std::unique_ptr<shm::DirectSnapshot<int>> atomic;
  };
  std::vector<RoundObjects> objects(static_cast<std::size_t>(rounds));
  for (auto& obj : objects) {
    if (wait_free) {
      obj.immediate = std::make_unique<shm::ImmediateSnapshot<int>>(n);
    } else {
      obj.atomic = std::make_unique<shm::DirectSnapshot<int>>(n);
    }
  }

  std::vector<std::vector<core::ProcessSet>> d_sets(
      static_cast<std::size_t>(rounds),
      std::vector<core::ProcessSet>(static_cast<std::size_t>(n),
                                    core::ProcessSet::none(n)));

  runtime::Simulation sim(n, [&](runtime::Context& ctx) {
    const core::ProcId i = ctx.id();
    P& proc = procs[static_cast<std::size_t>(i)];
    for (core::Round r = 1; r <= rounds; ++r) {
      RoundObjects& obj = objects[static_cast<std::size_t>(r - 1)];
      const int value = proc.emit(r);

      shm::View<int> view;
      if (wait_free) {
        view = obj.immediate->participate(ctx, value);
      } else {
        obj.atomic->update(ctx, value);
        for (;;) {
          view = obj.atomic->scan(ctx);
          if (n - shm::view_size(view) <= f) break;
        }
      }

      std::vector<int> delivered(static_cast<std::size_t>(n), 0);
      core::ProcessSet missed(n);
      for (core::ProcId j = 0; j < n; ++j) {
        if (view[static_cast<std::size_t>(j)]) {
          delivered[static_cast<std::size_t>(j)] =
              *view[static_cast<std::size_t>(j)];
        } else {
          missed.add(j);
        }
      }
      d_sets[static_cast<std::size_t>(r - 1)][static_cast<std::size_t>(i)] =
          missed;
      proc.absorb(r, core::DeliveryView<int>(delivered.data(), missed),
                  missed);
    }
  });

  IisRunResult<typename P::Decision> result(n);
  runtime::SimOutcome outcome = sim.run(scheduler, max_steps);
  result.crashed = outcome.crashed;
  for (const auto& round : d_sets) result.pattern.append(round);
  for (core::ProcId i = 0; i < n; ++i) {
    const P& proc = procs[static_cast<std::size_t>(i)];
    if (!result.crashed.contains(i) && proc.decided()) {
      result.decisions[static_cast<std::size_t>(i)] = proc.decision();
    }
  }
  return result;
}

}  // namespace rrfd::xform
