// Item 3, reverse direction: the round-based RRFD system implements the
// plain asynchronous system via full information.
//
// "Run A in full information mode. When process p_i receives a round-r
// message at round r from p_j it can recreate all the simulated messages
// it missed from p_j since the last round it received a message from p_j.
// It can thus simulate their FIFO reception at that moment."
//
// FullInfoProcess emits its complete history each round; histories are
// immutable DAG nodes shared by pointer. recover_emission() truncates a
// received history to reconstruct what its owner emitted in any earlier
// round -- exactly the recreation step of the simulation. The tests
// verify reconstructed emissions are structurally identical to the ones
// the engine actually transported.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "core/delivery.h"
#include "core/process_set.h"
#include "core/types.h"
#include "util/check.h"

namespace rrfd::xform {

/// Immutable full-information history of one process up to some round.
/// rounds.size() == r-1 means "as emitted at round r" (inputs only at
/// round 1).
struct History {
  core::ProcId proc = -1;
  int input = 0;
  /// rounds[q-1]: messages received in round q, sender -> their history
  /// as emitted at round q. Absent sender = missed (in D).
  std::vector<std::map<core::ProcId, std::shared_ptr<const History>>> rounds;
};

using HistoryPtr = std::shared_ptr<const History>;

/// Structural equality (histories are DAGs; compares recursively).
bool history_equal(const HistoryPtr& a, const HistoryPtr& b);

/// Reconstructs what `h`'s owner emitted at round `r` (1-based), i.e. the
/// prefix of `h` with r-1 recorded rounds. Requires r-1 <= h->rounds.size().
HistoryPtr recover_emission(const HistoryPtr& h, core::Round r);

/// The full-information protocol as an engine RoundProcess.
class FullInfoProcess {
 public:
  using Message = HistoryPtr;
  using Decision = int;  // trivially the input; full-info never "decides"

  FullInfoProcess(core::ProcId id, int input);

  HistoryPtr emit(core::Round r);

  void absorb(core::Round r, const core::DeliveryView<HistoryPtr>& view,
              const core::ProcessSet& d);

  bool decided() const { return false; }
  int decision() const { return input_; }

  /// The history as currently accumulated (emission for the next round).
  HistoryPtr history() const;

  /// All emissions made so far, by round (ground truth for recovery tests).
  const std::vector<HistoryPtr>& emissions() const { return emissions_; }

 private:
  core::ProcId id_;
  int input_;
  History accumulating_;
  std::vector<HistoryPtr> emissions_;
};

}  // namespace rrfd::xform
