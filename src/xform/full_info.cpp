#include "xform/full_info.h"

namespace rrfd::xform {

bool history_equal(const HistoryPtr& a, const HistoryPtr& b) {
  if (a == b) return true;  // shared structure fast path
  if (!a || !b) return false;
  if (a->proc != b->proc || a->input != b->input ||
      a->rounds.size() != b->rounds.size()) {
    return false;
  }
  for (std::size_t q = 0; q < a->rounds.size(); ++q) {
    const auto& ra = a->rounds[q];
    const auto& rb = b->rounds[q];
    if (ra.size() != rb.size()) return false;
    auto ita = ra.begin();
    auto itb = rb.begin();
    for (; ita != ra.end(); ++ita, ++itb) {
      if (ita->first != itb->first) return false;
      if (!history_equal(ita->second, itb->second)) return false;
    }
  }
  return true;
}

HistoryPtr recover_emission(const HistoryPtr& h, core::Round r) {
  RRFD_REQUIRE(h != nullptr);
  RRFD_REQUIRE(1 <= r);
  RRFD_REQUIRE(static_cast<std::size_t>(r - 1) <= h->rounds.size());
  if (static_cast<std::size_t>(r - 1) == h->rounds.size()) return h;
  auto copy = std::make_shared<History>();
  copy->proc = h->proc;
  copy->input = h->input;
  copy->rounds.assign(h->rounds.begin(),
                      h->rounds.begin() + (r - 1));
  return copy;
}

FullInfoProcess::FullInfoProcess(core::ProcId id, int input)
    : id_(id), input_(input) {
  accumulating_.proc = id;
  accumulating_.input = input;
}

HistoryPtr FullInfoProcess::history() const {
  return std::make_shared<History>(accumulating_);
}

HistoryPtr FullInfoProcess::emit(core::Round r) {
  RRFD_REQUIRE(static_cast<std::size_t>(r - 1) == accumulating_.rounds.size());
  HistoryPtr h = history();
  emissions_.push_back(h);
  return h;
}

void FullInfoProcess::absorb(core::Round r,
                             const core::DeliveryView<HistoryPtr>& view,
                             const core::ProcessSet& d) {
  RRFD_REQUIRE(static_cast<std::size_t>(r - 1) == accumulating_.rounds.size());
  RRFD_REQUIRE(view.faults() == d);
  std::map<core::ProcId, HistoryPtr> received;
  for (core::ProcId j : view.senders()) {
    received.emplace(j, view[j]);
  }
  accumulating_.rounds.push_back(std::move(received));
}

}  // namespace rrfd::xform
