#include "xform/semisync_pattern.h"

#include <memory>

#include "semisync/round_exchange.h"
#include "util/check.h"

namespace rrfd::xform {
namespace {

/// Step process that just runs the 2-step round structure `rounds` times,
/// recording every completed round's fault set.
class ExchangeRunner final : public semisync::StepProcess {
 public:
  ExchangeRunner(int n, core::ProcId self, core::Round rounds)
      : exchange_(n, self), rounds_(rounds) {}

  std::optional<semisync::Broadcast> step(
      const std::vector<semisync::Envelope>& received) override {
    std::optional<semisync::Broadcast> out;
    auto view = exchange_.on_step(received, /*payload=*/exchange_.self(), out);
    if (view) {
      fault_sets.push_back(view->fault_set);
      if (view->round >= rounds_) done_ = true;
    }
    return out;
  }

  bool decided() const override { return done_; }
  int decision() const override { return 0; }

  std::vector<core::ProcessSet> fault_sets;

 private:
  semisync::RoundExchange exchange_;
  core::Round rounds_;
  bool done_ = false;
};

}  // namespace

SemisyncPatternResult semisync_pattern(int n, core::Round rounds,
                                       const semisync::StepSimOptions& options) {
  RRFD_REQUIRE(0 < n && n <= core::kMaxProcesses);
  RRFD_REQUIRE(rounds >= 1);

  std::vector<std::unique_ptr<ExchangeRunner>> runners;
  std::vector<semisync::StepProcess*> raw;
  for (core::ProcId i = 0; i < n; ++i) {
    runners.push_back(std::make_unique<ExchangeRunner>(n, i, rounds));
    raw.push_back(runners.back().get());
  }

  semisync::StepSim sim(raw, options);
  semisync::StepSimResult run = sim.run();

  SemisyncPatternResult result(n);
  result.steps_taken = run.steps_taken;
  result.completed = run.all_alive_decided && run.crashed.empty();
  for (const auto& runner : runners) {
    for (const core::ProcessSet& d : runner->fault_sets) {
      result.had_full_fault_set = result.had_full_fault_set || d.full();
    }
  }
  if (result.completed && !result.had_full_fault_set) {
    for (core::Round r = 1; r <= rounds; ++r) {
      core::RoundFaults round;
      for (core::ProcId i = 0; i < n; ++i) {
        round.push_back(
            runners[static_cast<std::size_t>(i)]
                ->fault_sets[static_cast<std::size_t>(r - 1)]);
      }
      result.pattern.append(round);
    }
  }
  return result;
}

}  // namespace rrfd::xform
