#include "xform/round_combiner.h"

#include "core/predicates.h"
#include "util/check.h"

namespace rrfd::xform {
namespace {

/// Relayed knowledge: what i has "heard of" after a relay round, where the
/// round-2 senders report their round-1 views. First-hand round-1 hearing
/// counts as well (a process knows what it heard itself).
ProcessSet heard_of(ProcId i, const core::RoundFaults& round1,
                    const core::RoundFaults& round2, bool first_hand) {
  const int n = static_cast<int>(round1.size());
  const ProcessSet heard2 =
      round2[static_cast<std::size_t>(i)].complement();
  ProcessSet known(n);
  if (first_hand) {
    known |= round1[static_cast<std::size_t>(i)].complement();
  }
  for (ProcId j : heard2.members()) {
    known |= round1[static_cast<std::size_t>(j)].complement();
  }
  return known;
}

core::RoundFaults combine(const core::RoundFaults& round1,
                          const core::RoundFaults& round2, bool first_hand) {
  RRFD_REQUIRE(!round1.empty() && round1.size() == round2.size());
  const int n = static_cast<int>(round1.size());
  core::RoundFaults derived;
  derived.reserve(round1.size());
  for (ProcId i = 0; i < n; ++i) {
    derived.push_back(heard_of(i, round1, round2, first_hand).complement());
  }
  return derived;
}

}  // namespace

core::RoundFaults swmr_round_from_async(const core::RoundFaults& round1,
                                        const core::RoundFaults& round2) {
  return combine(round1, round2, /*first_hand=*/true);
}

FaultPattern swmr_from_async(const FaultPattern& async_pattern) {
  RRFD_REQUIRE_MSG(async_pattern.rounds() % 2 == 0,
                   "need an even number of constituent rounds");
  FaultPattern out(async_pattern.n());
  for (Round r = 1; r + 1 <= async_pattern.rounds(); r += 2) {
    out.append(swmr_round_from_async(async_pattern.round(r),
                                     async_pattern.round(r + 1)));
  }
  return out;
}

core::RoundFaults async_round_from_quorum_skew(const core::RoundFaults& round1,
                                               const core::RoundFaults& round2) {
  // Identical relay construction; only the *guarantee* differs (and is
  // checked by the tests against the respective predicates). First-hand
  // hearing is included here too -- it only shrinks D'.
  return combine(round1, round2, /*first_hand=*/true);
}

FaultPattern async_from_quorum_skew(const FaultPattern& b_pattern) {
  RRFD_REQUIRE_MSG(b_pattern.rounds() % 2 == 0,
                   "need an even number of constituent rounds");
  FaultPattern out(b_pattern.n());
  for (Round r = 1; r + 1 <= b_pattern.rounds(); r += 2) {
    out.append(async_round_from_quorum_skew(b_pattern.round(r),
                                            b_pattern.round(r + 1)));
  }
  return out;
}

FaultPattern omission_from_snapshot(const FaultPattern& snapshot_pattern,
                                    int k, int f) {
  RRFD_REQUIRE(1 <= k && k <= f);
  RRFD_REQUIRE_MSG(snapshot_pattern.rounds() <= f / k,
                   "Theorem 4.1 covers only the first floor(f/k) rounds");
  RRFD_REQUIRE_MSG(core::atomic_snapshot(k)->holds(snapshot_pattern),
                   "input is not an atomic-snapshot(k) pattern");
  return snapshot_pattern;
}

}  // namespace rrfd::xform
