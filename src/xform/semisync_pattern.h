// Extracting an RRFD fault pattern from the semi-synchronous substrate
// (Section 5's implementation of the equal-announcement detector).
//
// Runs plain RoundExchange processes for a number of rounds under the
// step simulator and assembles, per round, D(i,r) as each process
// reported it. Theorem 5.1 is the statement that with phi = 1 the result
// satisfies equation (5) -- EqualAnnouncements -- which the tests and
// bench_semisync check; with phi >= 2 adversarial schedules violate it.
#pragma once

#include "core/fault_pattern.h"
#include "semisync/network.h"

namespace rrfd::xform {

struct SemisyncPatternResult {
  core::FaultPattern pattern;
  std::vector<int> steps_taken;
  bool completed = false;  ///< all processes finished all rounds
  /// Some process heard nobody in some round (possible when phi >= 2; a
  /// D(i,r) = S outcome, which is outside the RRFD structural envelope and
  /// counts as an equation-(5) violation). The pattern is not built then.
  bool had_full_fault_set = false;

  explicit SemisyncPatternResult(int n) : pattern(n) {}
};

/// Runs `rounds` rounds of the 2-step exchange for n processes.
SemisyncPatternResult semisync_pattern(int n, core::Round rounds,
                                       const semisync::StepSimOptions& options);

}  // namespace rrfd::xform
