// Theorem 4.3: an asynchronous Atomic-Snapshot system with at most k
// crash failures implements the first floor(f/k) rounds of a synchronous
// system with at most f *crash* faults (strengthening Theorem 4.1 from
// send-omission to crash via adopt-commit, in the style of Neiger-Toueg
// omission-to-crash transformers).
//
// One simulated synchronous round costs three asynchronous rounds:
//  (1) write the simulated round value to a snapshot; scan until at most
//      k values are missing. The missed set M_i joins the locally
//      proposed-faulty set F_i (snapshot linearization makes the M_i a
//      containment chain, so each simulated round adds at most k new
//      processes to U_i F_i).
//  (2+3) for every process j, run an adopt-commit with input "j-faulty"
//      (if j in F_i) or "j-alive(v_j)". Commit-faulty delivers bottom --
//      j appears crashed to us this round; adopt-faulty keeps j in F_i
//      but still delivers j's value (recovered from the adopt-commit's
//      round-1 proposals: a faulty adoption can only form after some
//      alive proposal was written, so one re-collect finds it);
//      an alive result delivers j's value directly.
//
// Crash monotonicity holds because a commit anywhere forces everyone to
// adopt-or-commit faulty (AC property 2), hence everyone proposes faulty
// next round, hence everyone commits faulty (AC property 1) from then on.
#pragma once

#include <limits>
#include <optional>

#include "agreement/adopt_commit.h"
#include "core/engine.h"
#include "shm/snapshot.h"

namespace rrfd::xform {

/// The "j-faulty" proposal in the per-process adopt-commit instances.
inline constexpr int kFaultyProposal = std::numeric_limits<int>::min();

template <typename Decision>
struct CrashFromAsyncResult {
  core::FaultPattern simulated;  ///< the delivered-bottom sets D(i,r)
  core::ProcessSet crashed;      ///< executors crashed by the scheduler
  std::vector<std::optional<Decision>> decisions;  ///< per sync process
  int async_rounds_used = 0;     ///< 3 per simulated round (bookkeeping)

  explicit CrashFromAsyncResult(int n)
      : simulated(n),
        crashed(n),
        decisions(static_cast<std::size_t>(n), std::nullopt) {}
};

/// Runs `rounds` simulated synchronous rounds of the given sync-model
/// processes (engine RoundProcess concept, int messages) on the
/// asynchronous shared-memory substrate with at most k crash failures.
/// The scheduler must not crash more than k executors (a RandomScheduler
/// with max_crashes = k, say); otherwise the scan loop legitimately
/// blocks and the step budget throws.
template <typename P>
  requires core::RoundProcess<P> && std::same_as<typename P::Message, int>
CrashFromAsyncResult<typename P::Decision> run_crash_from_async(
    std::vector<P>& sync_procs, int k, core::Round rounds,
    runtime::Scheduler& scheduler, int max_steps = 1 << 22) {
  const int n = static_cast<int>(sync_procs.size());
  RRFD_REQUIRE(0 < n && n <= core::kMaxProcesses);
  RRFD_REQUIRE(1 <= k && k < n);
  RRFD_REQUIRE(rounds >= 1);
  // The theorem covers the first floor(f/k) rounds of a synchronous system
  // with f < n faults: beyond k*rounds < n the simulation could commit
  // every process faulty, leaving a round with D(i,r) = S, which is
  // outside the RRFD structure ("not all processes can be late").
  RRFD_REQUIRE_MSG(k * rounds < n,
                   "fault budget k*rounds must stay below n (Theorem 4.3 "
                   "covers the first floor(f/k) rounds, f < n)");

  struct RoundObjects {
    shm::DirectSnapshot<int> snapshot;
    std::vector<agreement::AdoptCommit> per_process;

    RoundObjects(int n_) : snapshot(n_) {
      per_process.reserve(static_cast<std::size_t>(n_));
      for (int j = 0; j < n_; ++j) per_process.emplace_back(n_);
    }
  };
  std::vector<RoundObjects> shared;
  shared.reserve(static_cast<std::size_t>(rounds));
  for (core::Round r = 0; r < rounds; ++r) shared.emplace_back(n);

  std::vector<std::vector<core::ProcessSet>> d_sets(
      static_cast<std::size_t>(rounds),
      std::vector<core::ProcessSet>(static_cast<std::size_t>(n),
                                    core::ProcessSet::none(n)));

  runtime::Simulation sim(n, [&](runtime::Context& ctx) {
    const core::ProcId i = ctx.id();
    P& proc = sync_procs[static_cast<std::size_t>(i)];
    core::ProcessSet faulty(n);  // F_i: processes we propose to have crashed

    for (core::Round r = 1; r <= rounds; ++r) {
      RoundObjects& obj = shared[static_cast<std::size_t>(r - 1)];

      // Async round 1: publish the simulated value; scan until at most k
      // values are missing.
      const int value = proc.emit(r);
      RRFD_REQUIRE_MSG(value != kFaultyProposal,
                       "simulated value collides with the faulty sentinel");
      obj.snapshot.update(ctx, value);
      shm::View<int> view;
      core::ProcessSet missing(n);
      for (;;) {
        view = obj.snapshot.scan(ctx);
        missing = core::ProcessSet::none(n);
        for (core::ProcId j = 0; j < n; ++j) {
          if (!view[static_cast<std::size_t>(j)]) missing.add(j);
        }
        if (missing.size() <= k) break;
      }
      faulty |= missing;

      // Async rounds 2+3: n adopt-commit instances decide, per process j,
      // whether this simulated round delivers j's value or bottom. Every
      // j either contributes a delivered value or joins `bottom`, so the
      // delivery mask handed to absorb() is exactly bottom's complement.
      std::vector<int> delivered(static_cast<std::size_t>(n), 0);
      core::ProcessSet bottom(n);
      for (core::ProcId j = 0; j < n; ++j) {
        const auto js = static_cast<std::size_t>(j);
        const int proposal =
            faulty.contains(j) ? kFaultyProposal : *view[js];
        const agreement::AdoptCommitResult res =
            obj.per_process[js].run(ctx, proposal);

        if (res.value != kFaultyProposal) {
          delivered[js] = res.value;  // alive (committed or adopted)
          continue;
        }
        faulty.add(j);
        if (res.commit) {
          bottom.add(j);  // j crashed as far as round r is concerned
          continue;
        }
        // Adopt-faulty: deliver j's value anyway. Some alive proposal was
        // necessarily written before any faulty adoption could form.
        std::optional<int> recovered;
        for (const auto& prop : obj.per_process[js].collect_proposals(ctx)) {
          if (prop && *prop != kFaultyProposal) {
            recovered = *prop;
            break;
          }
        }
        RRFD_ENSURE_MSG(recovered.has_value(),
                        "adopt-faulty without a written alive proposal");
        delivered[js] = *recovered;
      }

      d_sets[static_cast<std::size_t>(r - 1)][static_cast<std::size_t>(i)] =
          bottom;
      proc.absorb(r, core::DeliveryView<int>(delivered.data(), bottom),
                  bottom);
    }
  });

  CrashFromAsyncResult<typename P::Decision> result(n);
  runtime::SimOutcome outcome = sim.run(scheduler, max_steps);
  result.crashed = outcome.crashed;
  result.async_rounds_used = 3 * rounds;
  for (const auto& round : d_sets) result.simulated.append(round);
  for (core::ProcId i = 0; i < n; ++i) {
    const P& proc = sync_procs[static_cast<std::size_t>(i)];
    if (!result.crashed.contains(i) && proc.decided()) {
      result.decisions[static_cast<std::size_t>(i)] = proc.decision();
    }
  }
  return result;
}

}  // namespace rrfd::xform
