// Pattern-level model simulations: combining rounds of one RRFD system to
// implement a round of another (Section 2 items 3-4, Section 4.1).
//
// "An RRFD system A implements B if by combining some rounds of A to
// simulate a round of B we can simulate the messages emitted at the round
// and implement a predicate that implies B's RRFD predicate."
//
// These functions operate on fault patterns directly: they compute the
// derived round's D' sets from the constituent rounds' D sets, exactly as
// the full-information relaying in the paper's constructions would. The
// algorithmic side (actual message contents) is exercised separately by
// the msgpass and engine tests; at the pattern level, what matters is
// that the derived pattern satisfies the target predicate -- which the
// property tests check against the declarative predicate zoo.
#pragma once

#include "core/fault_pattern.h"

namespace rrfd::xform {

using core::FaultPattern;
using core::ProcessSet;
using core::ProcId;
using core::Round;

/// Item 4: two rounds of the asynchronous system (predicate 3, with
/// 2f < n) implement one SWMR round (predicates 3 and 4).
///
/// Round 1: everyone emits its value; round 2: everyone emits the set of
/// processes it heard in round 1. The derived announcement set is
///   D'(i) = S \ heard-of(i),
/// where heard-of(i) is everything i heard first-hand in round 1 plus
/// everything reported by the round-2 senders it heard. Because everyone
/// hears a majority in round 1, some process is heard by a majority, and
/// any two majorities intersect -- so that process is known to all:
/// predicate 4 holds.
core::RoundFaults swmr_round_from_async(const core::RoundFaults& round1,
                                        const core::RoundFaults& round2);

/// Combines a 2R-round async pattern into an R-round SWMR pattern.
FaultPattern swmr_from_async(const FaultPattern& async_pattern);

/// Item 3: two rounds of system B (quorum-skew(t, f), f < t, 2t < n)
/// implement one round of system A (per-round bound f). Relaying: i "hears
/// of" j's emission if some round-2 sender it heard had heard j in round 1.
/// Any process hears at least n - t round-2 senders, hence at least one
/// outside Q, whose round-1 view misses at most f -- so |D'(i)| <= f.
core::RoundFaults async_round_from_quorum_skew(const core::RoundFaults& round1,
                                               const core::RoundFaults& round2);

/// Combines a 2R-round B pattern into an R-round A pattern.
FaultPattern async_from_quorum_skew(const FaultPattern& b_pattern);

/// Theorem 4.1: an atomic-snapshot pattern with per-round bound k, taken
/// over floor(f/k) rounds, *is* a send-omission(f) pattern -- the
/// simulation is the identity on announcements. This helper asserts the
/// structural preconditions (no self-suspicion, containment, per-round
/// bound k, at most floor(f/k) rounds) and returns the pattern unchanged;
/// the predicate implication is what Theorem 4.1 proves and what the
/// tests verify declaratively.
FaultPattern omission_from_snapshot(const FaultPattern& snapshot_pattern,
                                    int k, int f);

}  // namespace rrfd::xform
