// Flood-min: the classic synchronous k-set agreement algorithm.
//
// Every round, broadcast the smallest input seen so far; after R rounds
// decide it. With at most f crash (or send-omission) faults, R =
// floor(f/k) + 1 rounds suffice for k-set agreement (and Corollaries
// 4.2/4.4 show no algorithm can do it in floor(f/k) rounds -- which the
// truncated version of this very algorithm demonstrates against the
// ChainAdversary).
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "core/delivery.h"
#include "core/process_set.h"
#include "core/types.h"
#include "core/words.h"
#include "util/check.h"

namespace rrfd::agreement {

class FloodMin {
 public:
  using Message = int;
  using Decision = int;

  /// Decides after `decide_round` rounds (use floor(f/k)+1 for a correct
  /// run, floor(f/k) to reproduce the lower-bound violation).
  FloodMin(int input, core::Round decide_round)
      : min_(input), decide_round_(decide_round) {
    RRFD_REQUIRE(decide_round >= 1);
  }

  int emit(core::Round) const { return min_; }

  void absorb(core::Round r, const core::DeliveryView<int>& view,
              const core::ProcessSet&) {
    for (core::ProcId j : view.senders()) {
      min_ = std::min(min_, view[j]);
    }
    if (r >= decide_round_) decided_ = true;
  }

  /// Batch absorb for the engine's word path (core::WordAbsorbProcess):
  /// advances every process one round in a handful of whole-word passes.
  /// delivered[i] is the word of S \ D(i,r). Observably equivalent to n
  /// absorb() calls; the equivalence suites check that bit for bit.
  ///
  /// The kernel: one linear pass finds the round's global minimum m; any
  /// recipient that hears a sender holding m is settled by a single
  /// compare (m bounds everything it heard), so a fault-free round is two
  /// linear passes. Only recipients cut off from every holder fall back
  /// to a bit-scan over what they did hear -- bit-scan chains are
  /// latency-bound, which is why the common case avoids them entirely.
  static void absorb_round(std::vector<FloodMin>& processes, core::Round r,
                           const int* emitted,
                           const std::uint64_t* delivered) {
    const int n = static_cast<int>(processes.size());
    const std::uint64_t full = core::full_mask(n);
    int m = emitted[0];
    for (int j = 1; j < n; ++j) m = std::min(m, emitted[j]);
    // Lazily computed word of senders emitting m: a recipient that hears
    // everyone trivially hears a holder, so a fault-free round never
    // builds it.
    std::uint64_t holders = 0;
    std::uint64_t rest = 0;
    for (int i = 0; i < n; ++i) {
      FloodMin& p = processes[static_cast<std::size_t>(i)];
      const std::uint64_t del = delivered[i];
      bool hit = del == full;
      if (!hit) {
        if (holders == 0) {
          for (int j = 0; j < n; ++j) {
            holders |= static_cast<std::uint64_t>(emitted[j] == m) << j;
          }
        }
        hit = (del & holders) != 0;
      }
      if (hit) {
        // min over what i heard is exactly m; own state can only be
        // smaller if i suspects itself, hence the min.
        p.min_ = std::min(p.min_, m);
      } else {
        rest |= std::uint64_t{1} << i;
      }
      p.decided_ = p.decided_ || r >= p.decide_round_;
    }
    for (std::uint64_t u = rest; u != 0; u &= u - 1) {
      FloodMin& p = processes[static_cast<std::size_t>(std::countr_zero(u))];
      for (std::uint64_t s = delivered[std::countr_zero(u)]; s != 0;
           s &= s - 1) {
        p.min_ = std::min(p.min_, emitted[std::countr_zero(s)]);
      }
    }
  }

  bool decided() const { return decided_; }
  int decision() const {
    RRFD_REQUIRE(decided());
    return min_;
  }

  /// Current estimate (also readable before deciding).
  int current_min() const { return min_; }

 private:
  int min_;
  core::Round decide_round_;
  bool decided_ = false;
};

}  // namespace rrfd::agreement
