// Flood-min: the classic synchronous k-set agreement algorithm.
//
// Every round, broadcast the smallest input seen so far; after R rounds
// decide it. With at most f crash (or send-omission) faults, R =
// floor(f/k) + 1 rounds suffice for k-set agreement (and Corollaries
// 4.2/4.4 show no algorithm can do it in floor(f/k) rounds -- which the
// truncated version of this very algorithm demonstrates against the
// ChainAdversary).
#pragma once

#include <algorithm>

#include "core/delivery.h"
#include "core/process_set.h"
#include "core/types.h"
#include "util/check.h"

namespace rrfd::agreement {

class FloodMin {
 public:
  using Message = int;
  using Decision = int;

  /// Decides after `decide_round` rounds (use floor(f/k)+1 for a correct
  /// run, floor(f/k) to reproduce the lower-bound violation).
  FloodMin(int input, core::Round decide_round)
      : min_(input), decide_round_(decide_round) {
    RRFD_REQUIRE(decide_round >= 1);
  }

  int emit(core::Round) const { return min_; }

  void absorb(core::Round r, const core::DeliveryView<int>& view,
              const core::ProcessSet&) {
    for (core::ProcId j : view.senders()) {
      min_ = std::min(min_, view[j]);
    }
    if (r >= decide_round_) decided_ = true;
  }

  bool decided() const { return decided_; }
  int decision() const {
    RRFD_REQUIRE(decided());
    return min_;
  }

  /// Current estimate (also readable before deciding).
  int current_min() const { return min_; }

 private:
  int min_;
  core::Round decide_round_;
  bool decided_ = false;
};

}  // namespace rrfd::agreement
