// Theorem 3.1: one-round k-set agreement under the k-uncertainty RRFD.
//
// "A process p_i emits its value and chooses the value of the process in
// S \ D(i,1) with the lowest process identifier." If two processes choose
// values of p1 < p2, then p1 is in the union of the round's fault sets
// (somebody skipped it) but not in the intersection (its own chooser kept
// it), so all chosen processes except the largest lie in union minus
// intersection -- at most k-1 of them, hence at most k distinct values.
#pragma once

#include <optional>

#include "core/delivery.h"
#include "core/process_set.h"
#include "core/types.h"
#include "util/check.h"

namespace rrfd::agreement {

class OneRoundKSet {
 public:
  using Message = int;
  using Decision = int;

  explicit OneRoundKSet(int input) : input_(input) {}

  int emit(core::Round) const { return input_; }

  void absorb(core::Round r, const core::DeliveryView<int>& view,
              const core::ProcessSet&) {
    if (r != 1) return;  // everything happens in the first round
    const core::ProcId lowest = view.senders().min();  // != empty since D != S
    RRFD_ENSURE_MSG(view.has(lowest), "engine must deliver messages of S \\ D");
    decision_ = view[lowest];
  }

  bool decided() const { return decision_.has_value(); }
  int decision() const {
    RRFD_REQUIRE(decided());
    return *decision_;
  }

 private:
  int input_;
  std::optional<int> decision_;
};

}  // namespace rrfd::agreement
