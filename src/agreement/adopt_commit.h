// The adopt-commit protocol of Section 4.2 (simplified from Yang, Neiger
// & Gafni, the paper's reference [16]).
//
// Wait-free (n-1-resilient) in SWMR shared memory. Guarantees:
//   1. If every input equals v, every process commits v.
//   2. If any process commits v, every process commits or adopts v
//      (in particular nobody commits a different value).
// Two register arrays: round 1 publishes proposals; a process that saw a
// unanimous round 1 proposes to commit. Because the first round-2 write
// fixes the only committable value, commits can't diverge.
#pragma once

#include <set>

#include "shm/registers.h"
#include "util/check.h"

namespace rrfd::agreement {

/// Outcome of one adopt-commit instance for one process.
struct AdoptCommitResult {
  bool commit = false;
  int value = 0;

  friend bool operator==(const AdoptCommitResult& a,
                         const AdoptCommitResult& b) {
    return a.commit == b.commit && a.value == b.value;
  }
};

/// One-shot adopt-commit object; each process calls run() at most once.
class AdoptCommit {
 public:
  explicit AdoptCommit(int n) : round1_(n), round2_(n) {}

  int n() const { return round1_.n(); }

  AdoptCommitResult run(runtime::Context& ctx, int proposal) {
    // -- Round 1: publish the proposal, look for unanimity. --------------
    round1_.write(ctx, proposal);
    std::set<int> seen;
    for (const auto& cell : round1_.collect(ctx)) {
      if (cell) seen.insert(*cell);
    }
    RRFD_ENSURE(!seen.empty());  // at least our own write

    Tagged mine;
    if (seen.size() == 1) {
      mine = Tagged{/*commit=*/true, *seen.begin()};
    } else {
      mine = Tagged{/*commit=*/false, proposal};
    }
    round2_.write(ctx, mine);

    // -- Round 2: a commit seen anywhere forces convergence. -------------
    bool all_commit_v = true;
    std::optional<int> committed;
    for (const auto& cell : round2_.collect(ctx)) {
      if (!cell) continue;
      if (cell->commit) {
        RRFD_ENSURE_MSG(!committed || *committed == cell->value,
                        "two distinct commit proposals: protocol broken");
        committed = cell->value;
      } else {
        all_commit_v = false;
      }
    }

    if (committed && all_commit_v) return {true, *committed};
    if (committed) return {false, *committed};
    return {false, proposal};
  }

  /// Re-collects the round-1 proposals (n reads). Used by the Theorem 4.3
  /// simulation: when a process ends with "adopt faulty" it needs the
  /// simulated value some alive-proposer published; the protocol
  /// guarantees such a proposal was written before any faulty adoption
  /// could form, so one extra collect finds it.
  std::vector<std::optional<int>> collect_proposals(runtime::Context& ctx) const {
    return round1_.collect(ctx);
  }

 private:
  struct Tagged {
    bool commit = false;
    int value = 0;
  };

  shm::SwmrArray<int> round1_;
  shm::SwmrArray<Tagged> round2_;
};

}  // namespace rrfd::agreement
