// Task validators: executable input/output specifications.
//
// A task T is an input/output relation; an RRFD system solves T if after
// enough rounds processes commit to outputs satisfying it. These checkers
// are the oracles used by tests and benches to decide whether a run solved
// k-set agreement (Section 3) or consensus (k = 1).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/process_set.h"

namespace rrfd::agreement {

/// Result of validating a run against a task.
struct TaskCheck {
  bool ok = true;
  std::string failure;  ///< empty when ok; otherwise what went wrong

  static TaskCheck pass() { return {}; }
  static TaskCheck fail(std::string why) { return {false, std::move(why)}; }
};

/// Validates k-set agreement:
///   termination: every process in `must_decide` decided;
///   validity:    every decision (of any process) is some process's input;
///   k-agreement: processes in `must_decide` chose at most k distinct
///                values.
/// `must_decide` is typically the survivors -- in crash models the
/// announced processes' outputs do not count.
TaskCheck check_k_set_agreement(const std::vector<int>& inputs,
                                const std::vector<std::optional<int>>& decisions,
                                int k, const core::ProcessSet& must_decide);

/// Consensus is 1-set agreement.
TaskCheck check_consensus(const std::vector<int>& inputs,
                          const std::vector<std::optional<int>>& decisions,
                          const core::ProcessSet& must_decide);

/// Number of distinct decided values among `among`.
int distinct_decision_count(const std::vector<std::optional<int>>& decisions,
                            const core::ProcessSet& among);

}  // namespace rrfd::agreement
