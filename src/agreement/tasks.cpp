#include "agreement/tasks.h"

#include <algorithm>
#include <set>

#include "util/check.h"
#include "util/str.h"

namespace rrfd::agreement {

TaskCheck check_k_set_agreement(const std::vector<int>& inputs,
                                const std::vector<std::optional<int>>& decisions,
                                int k, const core::ProcessSet& must_decide) {
  RRFD_REQUIRE(k >= 1);
  RRFD_REQUIRE(inputs.size() == decisions.size());
  RRFD_REQUIRE(static_cast<int>(inputs.size()) == must_decide.n());

  for (core::ProcId p : must_decide.members()) {
    if (!decisions[static_cast<std::size_t>(p)]) {
      return TaskCheck::fail(cat("termination: process ", p, " undecided"));
    }
  }

  for (std::size_t i = 0; i < decisions.size(); ++i) {
    if (!decisions[i]) continue;
    if (std::find(inputs.begin(), inputs.end(), *decisions[i]) ==
        inputs.end()) {
      return TaskCheck::fail(cat("validity: process ", i, " decided ",
                                 *decisions[i], " which nobody proposed"));
    }
  }

  const int distinct = distinct_decision_count(decisions, must_decide);
  if (distinct > k) {
    return TaskCheck::fail(cat("agreement: ", distinct,
                               " distinct decisions, but k = ", k));
  }
  return TaskCheck::pass();
}

TaskCheck check_consensus(const std::vector<int>& inputs,
                          const std::vector<std::optional<int>>& decisions,
                          const core::ProcessSet& must_decide) {
  return check_k_set_agreement(inputs, decisions, 1, must_decide);
}

int distinct_decision_count(const std::vector<std::optional<int>>& decisions,
                            const core::ProcessSet& among) {
  std::set<int> values;
  for (core::ProcId p : among.members()) {
    const auto& d = decisions[static_cast<std::size_t>(p)];
    if (d) values.insert(*d);
  }
  return static_cast<int>(values.size());
}

}  // namespace rrfd::agreement
