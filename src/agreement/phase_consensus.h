// Structured consensus from adopt-commit (Yang, Neiger & Gafni -- the
// paper's reference [16]): alternate a leader suggestion with an
// adopt-commit until somebody commits.
//
//   phase p:  the phase's leader (p mod n) publishes its estimate;
//             everyone who reads it adopts it;
//             all run adopt-commit on their estimates;
//             commit  -> decide;  adopt -> carry the value to phase p+1.
//
// Safety is unconditional (the adopt-commit chain: once anything commits
// v, everyone leaves the phase holding v, so later phases are unanimous).
// Termination is where FLP bites: a wait-free adversary can stall leaders
// forever, so the run is bounded by max_phases; under fair random
// schedules a phase whose leader is read by everyone occurs quickly, and
// one phase after the first commit everybody has decided.
#pragma once

#include <optional>
#include <vector>

#include "agreement/adopt_commit.h"
#include "runtime/sim.h"
#include "shm/registers.h"

namespace rrfd::agreement {

struct PhaseConsensusResult {
  std::vector<std::optional<int>> decisions;  ///< per process
  std::vector<int> decision_phase;            ///< 0 = undecided
  core::ProcessSet crashed;
  bool all_alive_decided = false;

  explicit PhaseConsensusResult(int n)
      : decisions(static_cast<std::size_t>(n)),
        decision_phase(static_cast<std::size_t>(n), 0),
        crashed(n) {}
};

/// Runs the protocol for up to `max_phases` phases under `scheduler`.
PhaseConsensusResult run_phase_consensus(const std::vector<int>& inputs,
                                         int max_phases,
                                         runtime::Scheduler& scheduler,
                                         int max_steps = 1 << 22);

}  // namespace rrfd::agreement
