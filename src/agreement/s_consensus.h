// Consensus under the detector-S RRFD (Section 2 item 6).
//
// The item-6 predicate -- some process is never announced to anyone -- is
// equivalent to the send-omission predicate with f = n-1, and admits a
// wait-free consensus algorithm: rotate a coordinator through all n
// processes; whoever hears the round's coordinator adopts its estimate.
// In the round coordinated by the immortal process every process adopts
// the same estimate, and adoption preserves equality afterwards, so after
// n rounds all estimates agree.
//
// This is the reduction the paper performs "just by predicate
// manipulation": wait-free consensus for failure detector S reduced to an
// algorithm for the omission RRFD with f = n-1.
#pragma once

#include "core/delivery.h"
#include "core/process_set.h"
#include "core/types.h"
#include "util/check.h"

namespace rrfd::agreement {

class SConsensus {
 public:
  using Message = int;
  using Decision = int;

  SConsensus(int n, int input) : n_(n), estimate_(input) {
    RRFD_REQUIRE(n >= 1);
  }

  int emit(core::Round) const { return estimate_; }

  void absorb(core::Round r, const core::DeliveryView<int>& view,
              const core::ProcessSet&) {
    const core::ProcId coordinator = static_cast<core::ProcId>((r - 1) % n_);
    if (const int* m = view.get(coordinator)) {
      estimate_ = *m;
    }
    if (r >= n_) decided_ = true;
  }

  bool decided() const { return decided_; }
  int decision() const {
    RRFD_REQUIRE(decided());
    return estimate_;
  }

 private:
  int n_;
  int estimate_;
  bool decided_ = false;
};

}  // namespace rrfd::agreement
