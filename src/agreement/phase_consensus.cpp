#include "agreement/phase_consensus.h"

namespace rrfd::agreement {

PhaseConsensusResult run_phase_consensus(const std::vector<int>& inputs,
                                         int max_phases,
                                         runtime::Scheduler& scheduler,
                                         int max_steps) {
  const int n = static_cast<int>(inputs.size());
  RRFD_REQUIRE(0 < n && n <= core::kMaxProcesses);
  RRFD_REQUIRE(max_phases >= 1);

  struct Phase {
    shm::SwmrRegister<std::optional<int>> leader_estimate;
    AdoptCommit ac;

    Phase(int n_, core::ProcId leader)
        : leader_estimate(leader, std::nullopt), ac(n_) {}
  };
  std::vector<std::unique_ptr<Phase>> phases;
  for (int p = 0; p < max_phases; ++p) {
    phases.push_back(
        std::make_unique<Phase>(n, static_cast<core::ProcId>(p % n)));
  }

  PhaseConsensusResult result(n);

  runtime::Simulation sim(n, [&](runtime::Context& ctx) {
    const core::ProcId i = ctx.id();
    int estimate = inputs[static_cast<std::size_t>(i)];
    for (int p = 0; p < max_phases; ++p) {
      Phase& phase = *phases[static_cast<std::size_t>(p)];

      // Leader suggestion.
      if (phase.leader_estimate.owner() == i) {
        phase.leader_estimate.write(ctx, estimate);
      }
      const std::optional<int> suggested = phase.leader_estimate.read(ctx);
      if (suggested) estimate = *suggested;

      // Adopt-commit on the (possibly re-aligned) estimates.
      const AdoptCommitResult ac = phase.ac.run(ctx, estimate);
      estimate = ac.value;
      if (ac.commit) {
        result.decisions[static_cast<std::size_t>(i)] = estimate;
        result.decision_phase[static_cast<std::size_t>(i)] = p + 1;
        return;  // decided; halt
      }
    }
  });

  runtime::SimOutcome outcome = sim.run(scheduler, max_steps);
  result.crashed = outcome.crashed;
  result.all_alive_decided = true;
  for (core::ProcId i = 0; i < n; ++i) {
    if (!result.crashed.contains(i) &&
        !result.decisions[static_cast<std::size_t>(i)]) {
      result.all_alive_decided = false;
    }
  }
  return result;
}

}  // namespace rrfd::agreement
