// Early-deciding consensus in the synchronous crash RRFD -- the paper's
// Section 7 program ("we advocate using [RRFDs] ... as a setting to
// develop real algorithms") made concrete: the announcement sets D(i,r)
// are first-class inputs to the decision rule.
//
// Each round every process floods (current minimum, the set of processes
// it heard LAST round). Process i decides at the end of round r >= 2 iff
//   (a) heard_i(r) == heard_i(r-1), and
//   (b) every round-r sender reported hearing exactly heard_i(r-1).
//
// Safety sketch (crash model): alive processes are heard by everyone, so
// every round-r sender s was in H = heard_i(r-1) and its report was
// checked; hence every sender's round-(r-1) minimum was computed over the
// same set H, making all of them equal to some w. i decides w, and every
// alive process's minimum at the end of round r is exactly w -- values
// smaller than w would need a crasher chain, whose last link either
// breaks (a) (i misses the crasher) or (b) (the crasher's report reveals
// the secret's source outside H). No fault bound f appears in the rule:
// the algorithm adapts to the actual number of failures f', deciding by
// round f' + 2 (and at round 2 in failure-free runs), vs the fixed
// f + 1 of flood-min.
#pragma once

#include <algorithm>
#include <cstdint>

#include "core/delivery.h"
#include "core/process_set.h"
#include "core/types.h"
#include "util/check.h"

namespace rrfd::agreement {

/// Round message: the flooded minimum plus last round's heard set.
struct EarlyStoppingMessage {
  int min = 0;
  std::uint64_t heard_prev_bits = 0;
};

class EarlyStoppingConsensus {
 public:
  using Message = EarlyStoppingMessage;
  using Decision = int;

  EarlyStoppingConsensus(int n, int input)
      : n_(n), min_(input), prev_heard_(core::ProcessSet::all(n)) {}

  Message emit(core::Round) const {
    return {min_, prev_heard_.bits()};
  }

  void absorb(core::Round r, const core::DeliveryView<Message>& view,
              const core::ProcessSet& d) {
    const core::ProcessSet heard_now = d.complement();
    bool reports_match = true;
    for (core::ProcId j : view.senders()) {
      const Message& m = view[j];
      min_ = std::min(min_, m.min);
      reports_match =
          reports_match && (m.heard_prev_bits == prev_heard_.bits());
    }
    if (!decided_ && r >= 2 && heard_now == prev_heard_ && reports_match) {
      decided_ = true;
      decision_ = min_;
      decision_round_ = r;
    }
    prev_heard_ = heard_now;
  }

  bool decided() const { return decided_; }
  int decision() const {
    RRFD_REQUIRE(decided_);
    return decision_;
  }

  /// Round at which the early rule fired (for adaptivity measurements).
  core::Round decision_round() const {
    RRFD_REQUIRE(decided_);
    return decision_round_;
  }

  int current_min() const { return min_; }

 private:
  int n_;
  int min_;
  core::ProcessSet prev_heard_;
  bool decided_ = false;
  int decision_ = 0;
  core::Round decision_round_ = 0;
};

}  // namespace rrfd::agreement
