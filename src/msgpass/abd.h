// ABD: a single-writer multi-reader atomic register from asynchronous
// message passing with a majority of correct processes (Attiya, Bar-Noy
// & Dolev -- the paper's reference [22], the result behind Section 2
// item 4's "implementation of shared-memory by message-passing").
//
// Every process hosts a replica (timestamp, value). Operations are
// two-phase quorum exchanges:
//   write(v):  stamp (ts+1), send STORE to all, await majority acks.
//   read():    send QUERY to all, await a majority of (ts, v) replies,
//              adopt the maximum; then WRITE-BACK that pair to a
//              majority before returning (the phase that makes reads
//              atomic rather than merely regular).
// With fewer than a majority of crashes every operation terminates; the
// moment a majority is lost, operations block -- exactly the partition
// boundary predicate (4) talks about.
//
// Operations are explicit state machines driven by network deliveries,
// so a test can interleave any number of concurrent operations under a
// seeded schedule and then check atomicity on the recorded history.
#pragma once

#include <optional>
#include <vector>

#include "msgpass/event_net.h"

namespace rrfd::msgpass {

/// One completed (or pending) operation, for history checking.
struct AbdOpRecord {
  enum class Kind { kWrite, kRead };

  int id = 0;
  Kind kind = Kind::kRead;
  core::ProcId client = -1;
  int value = 0;       ///< written value / value returned by the read
  long timestamp = 0;  ///< the timestamp the operation installed or adopted
  long started_at = 0;   ///< delivery-count when the op was issued
  long finished_at = -1; ///< delivery-count when it completed (-1 = pending)

  bool done() const { return finished_at >= 0; }
};

class AbdRegister {
 public:
  /// n replicas; `writer` is the unique writing client; reads may be
  /// issued by any process.
  AbdRegister(int n, core::ProcId writer, std::uint64_t seed,
              int initial = 0);

  int n() const { return net_.n(); }

  /// Issues operations (asynchronous; complete via step()/run_until_quiet).
  /// A client may have one operation in flight at a time.
  int begin_write(int value);
  int begin_read(core::ProcId client);

  /// Delivers one network message; false when the network is idle.
  bool step();

  /// Drives the network until idle (all issuable progress made).
  void run_until_quiet(long max_deliveries = 1 << 20);

  /// Crashes a replica/client.
  void crash(core::ProcId p);

  const std::vector<AbdOpRecord>& history() const { return ops_; }
  const AbdOpRecord& op(int id) const;
  long messages_sent() const { return net_.messages_sent(); }

 private:
  struct Message {
    enum class Type { kStore, kStoreAck, kQuery, kQueryReply };
    Type type = Type::kStore;
    int op_id = 0;
    long ts = 0;
    int value = 0;
  };

  struct Pending {
    int op_id = 0;
    bool write_back_phase = false;  // reads: currently in phase 2
    int acks = 0;
    long best_ts = -1;
    int best_value = 0;
  };

  void on_message(core::ProcId src, core::ProcId dst, const Message& m);
  void complete(Pending& pending, long ts, int value);
  int majority() const { return net_.n() / 2 + 1; }

  EventNet<Message> net_;
  core::ProcId writer_;

  // Replica state, one per process.
  std::vector<long> replica_ts_;
  std::vector<int> replica_value_;

  // Client state, one (optional) pending op per process.
  std::vector<std::optional<Pending>> pending_;

  long writer_ts_ = 0;
  std::vector<AbdOpRecord> ops_;
  long clock_ = 0;  // delivery counter, for history ordering

  // Ablation hook: skip the read write-back phase (breaks atomicity; see
  // tests/msgpass/abd_test.cpp).
 public:
  void set_skip_write_back_for_testing(bool skip) { skip_write_back_ = skip; }

 private:
  bool skip_write_back_ = false;
};

/// Atomicity (single-writer) checker over a completed history:
///  * every read returns a value actually written (or the initial value);
///  * a read that starts after a write completes never returns an older
///    timestamp (reads-follow-writes);
///  * if read A completes before read B starts, ts(B) >= ts(A) (no
///    new/old inversion).
/// Returns an empty string if the history is atomic, else a diagnosis.
std::string check_abd_atomicity(const std::vector<AbdOpRecord>& history);

}  // namespace rrfd::msgpass
