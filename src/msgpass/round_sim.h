// Asynchronous message passing with enforced communication-closed rounds
// (Section 2 item 3, forward direction).
//
// "System N implements A by simulating rounds, discarding messages that
// have been missed, and buffering messages which are too early. Each
// round a process waits until it receives n - f messages of the round."
//
// The simulator is event-driven: every point-to-point copy of a broadcast
// is a separate delivery event; a seeded scheduler permutes deliveries
// arbitrarily subject to per-link FIFO. Crashes stop a process, possibly
// mid-broadcast (reaching only a subset of destinations). A process
// finalizes round r the moment its count of distinct round-r senders
// reaches n - f; the senders still missing at that moment are its D(i,r).
// The produced fault pattern therefore satisfies |D(i,r)| <= f by
// construction -- which is exactly predicate (3), i.e. the simulation
// *implements* the asynchronous RRFD system A.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/fault_pattern.h"
#include "core/process_set.h"
#include "util/rng.h"

namespace rrfd::msgpass {

using core::FaultPattern;
using core::ProcessSet;
using core::ProcId;
using core::Round;

/// Application callback interface: what runs *on top of* the enforced
/// rounds. Payloads are 64-bit words (a value, or a ProcessSet bitmask).
class RoundProtocol {
 public:
  virtual ~RoundProtocol() = default;

  /// Payload process i broadcasts for round r (asked once per round, when
  /// i enters r).
  virtual std::uint64_t emit(ProcId i, Round r) = 0;

  /// A round-r message from `src` accepted by process i (on time).
  virtual void deliver(ProcId i, Round r, ProcId src, std::uint64_t payload) = 0;

  /// Process i finalized round r with fault set `missing` (= D(i,r)).
  virtual void round_complete(ProcId i, Round r, const ProcessSet& missing) = 0;
};

/// Crash instruction: process `who` crashes while broadcasting round
/// `in_round`, reaching only `reaches` destinations (chosen by seed).
struct CrashPlan {
  ProcId who = -1;
  Round in_round = 1;
  int reaches = 0;  ///< how many destinations its last broadcast reaches
};

class RoundEnforcedSim {
 public:
  /// n processes, at most f of which may crash; delivery order is chosen
  /// by `seed`.
  RoundEnforcedSim(int n, int f, std::uint64_t seed);

  /// Registers a crash (before run()). At most f crashes total. The
  /// plan's round is validated against the horizon at run() time: a plan
  /// whose `in_round` exceeds the `rounds` passed to run() is rejected
  /// with a ContractViolation (it could never trigger, and silently
  /// consuming the crash budget on it produced fault-free executions that
  /// looked like crash experiments).
  void add_crash(const CrashPlan& plan);

  /// Replay mode: consume delivery-order choices (absolute link indices,
  /// src * n + dst, as recorded by the flight recorder's sched events)
  /// instead of the seeded RNG. Each scripted link must be deliverable at
  /// its turn and the script must cover the whole run; violations raise
  /// ContractViolation. See trace/replay.h.
  void replay_links(std::vector<std::uint32_t> links);

  /// Replay mode companion: the exact destination set each crashing
  /// process reached (ProcessSet bitmask, as recorded by the crash
  /// events). Without this a replayed crash would re-draw its random
  /// destination subset and diverge. See trace/replay.h.
  void replay_crash_dests(
      std::vector<std::pair<ProcId, std::uint64_t>> dests);

  /// Runs every alive process through `rounds` rounds. Returns the fault
  /// pattern observed by the alive processes (crashed processes contribute
  /// empty D sets from their crash round on). Satisfies predicate (3).
  FaultPattern run(RoundProtocol& protocol, Round rounds);

  const ProcessSet& crashed() const { return crashed_; }

  /// Diagnostic snapshot used when round enforcement deadlocks: per-process
  /// current round / received_from sizes / buffered-round counts, plus the
  /// pending queue length of every non-empty link. (The flight recorder's
  /// ring buffer, when attached, appends the event tail to the same
  /// ContractViolation.)
  std::string state_report() const;

 private:
  /// White-box access for tests/msgpass/round_sim_test.cpp: the deadlock
  /// invariant is unreachable under a valid crash budget, so its
  /// diagnostic path is exercised by a test peer instead.
  friend struct RoundEnforcedSimTestPeer;

  [[noreturn]] void raise_deadlock() const;

  struct Event {
    ProcId src = -1;
    ProcId dst = -1;
    Round round = 0;
    std::uint64_t payload = 0;
  };

  struct ProcState {
    Round current = 0;                       // round being executed (0 = not started)
    std::map<Round, std::map<ProcId, std::uint64_t>> pending;  // buffered arrivals
    ProcessSet received_from;                // senders counted for `current`
    bool finished = false;

    explicit ProcState(int n) : received_from(n) {}
  };

  void broadcast(ProcId src, Round r, std::uint64_t payload);
  void enter_round(ProcId i, Round r, RoundProtocol& protocol);
  void try_finalize(ProcId i, RoundProtocol& protocol);
  void accept(ProcId i, Round r, ProcId src, std::uint64_t payload,
              RoundProtocol& protocol);

  int n_;
  int f_;
  Rng rng_;
  Round target_rounds_ = 0;
  bool replaying_ = false;
  std::vector<std::uint32_t> replay_links_;
  std::size_t replay_next_ = 0;
  std::vector<std::pair<ProcId, std::uint64_t>> replay_crash_dests_;
  std::vector<ProcState> procs_;
  std::vector<std::deque<Event>> links_;  // index src * n + dst, FIFO
  /// pending_dst_[src] bit d <=> links_[src * n + d] is non-empty. The
  /// event loop picks the k-th deliverable link from these words instead
  /// of rebuilding an O(n^2) vector of ready link indices per event.
  std::vector<std::uint64_t> pending_dst_;
  std::vector<CrashPlan> crash_plans_;
  ProcessSet crashed_;
  std::vector<std::vector<ProcessSet>> fault_sets_;  // [round][proc]
  RoundProtocol* protocol_ = nullptr;
};

}  // namespace rrfd::msgpass
