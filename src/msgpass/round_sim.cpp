#include "msgpass/round_sim.h"

#include <algorithm>
#include <bit>
#include <sstream>

#include "core/words.h"
#include "trace/trace.h"
#include "util/check.h"
#include "util/str.h"

namespace rrfd::msgpass {

namespace {
constexpr auto kSub = trace::Substrate::kMsgpass;
}  // namespace

RoundEnforcedSim::RoundEnforcedSim(int n, int f, std::uint64_t seed)
    : n_(n), f_(f), rng_(seed), crashed_(n) {
  RRFD_REQUIRE(0 < n && n <= core::kMaxProcesses);
  RRFD_REQUIRE(0 <= f && f < n);
  procs_.assign(static_cast<std::size_t>(n), ProcState(n));
  links_.resize(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  pending_dst_.assign(static_cast<std::size_t>(n), 0);
}

void RoundEnforcedSim::add_crash(const CrashPlan& plan) {
  RRFD_REQUIRE(0 <= plan.who && plan.who < n_);
  RRFD_REQUIRE(plan.in_round >= 1);
  RRFD_REQUIRE(0 <= plan.reaches && plan.reaches <= n_);
  RRFD_REQUIRE_MSG(static_cast<int>(crash_plans_.size()) < f_,
                   "more crashes than the failure bound f");
  for (const CrashPlan& existing : crash_plans_) {
    RRFD_REQUIRE_MSG(existing.who != plan.who,
                     "process already has a crash plan");
  }
  crash_plans_.push_back(plan);
}

void RoundEnforcedSim::replay_links(std::vector<std::uint32_t> links) {
  RRFD_REQUIRE_MSG(target_rounds_ == 0, "replay_links must precede run()");
  replaying_ = true;
  replay_links_ = std::move(links);
  replay_next_ = 0;
}

void RoundEnforcedSim::replay_crash_dests(
    std::vector<std::pair<ProcId, std::uint64_t>> dests) {
  RRFD_REQUIRE_MSG(target_rounds_ == 0,
                   "replay_crash_dests must precede run()");
  replay_crash_dests_ = std::move(dests);
}

void RoundEnforcedSim::broadcast(ProcId src, Round r, std::uint64_t payload) {
  trace::record(trace::EventKind::kEmit, kSub, src, r, payload, 1);

  // Determine destinations: everyone, unless this is the sender's crash
  // round, in which case a random subset of size `reaches` (the essence of
  // a crash mid-broadcast).
  std::vector<ProcId> dests;
  dests.reserve(static_cast<std::size_t>(n_));
  for (ProcId d = 0; d < n_; ++d) dests.push_back(d);

  for (const CrashPlan& plan : crash_plans_) {
    if (plan.who == src && plan.in_round == r) {
      if (replaying_) {
        // The subset the crash reached is an RNG draw in recording mode;
        // replay substitutes the recorded destination mask instead.
        const auto scripted = std::find_if(
            replay_crash_dests_.begin(), replay_crash_dests_.end(),
            [src](const auto& entry) { return entry.first == src; });
        RRFD_REQUIRE_MSG(scripted != replay_crash_dests_.end(),
                         cat("replay has no crash destinations for p", src,
                             " (see replay_crash_dests)"));
        dests.clear();
        for (ProcId d = 0; d < n_; ++d) {
          if ((scripted->second >> d) & 1) dests.push_back(d);
        }
        RRFD_ENSURE_MSG(static_cast<int>(dests.size()) == plan.reaches,
                        "replayed crash destination mask disagrees with the "
                        "crash plan's reach count");
      } else {
        rng_.shuffle(dests);
        dests.resize(static_cast<std::size_t>(plan.reaches));
      }
      crashed_.add(src);
      procs_[static_cast<std::size_t>(src)].finished = true;
      std::uint64_t dest_mask = 0;
      for (ProcId d : dests) dest_mask |= std::uint64_t{1} << d;
      trace::record(trace::EventKind::kCrash, kSub, src, r, dest_mask,
                    static_cast<std::uint64_t>(plan.reaches));
      break;
    }
  }

  std::uint64_t sent = 0;
  for (ProcId d : dests) {
    links_[static_cast<std::size_t>(src) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(d)]
        .push_back(Event{src, d, r, payload});
    sent |= std::uint64_t{1} << d;
  }
  pending_dst_[static_cast<std::size_t>(src)] |= sent;
}

void RoundEnforcedSim::enter_round(ProcId i, Round r, RoundProtocol& protocol) {
  ProcState& st = procs_[static_cast<std::size_t>(i)];
  st.current = r;
  st.received_from = ProcessSet::none(n_);
  trace::record(trace::EventKind::kRoundStart, kSub, i, r);

  broadcast(i, r, protocol.emit(i, r));
  if (st.finished) return;  // crashed during this broadcast

  // Drain messages that arrived early for this round.
  auto it = st.pending.find(r);
  if (it != st.pending.end()) {
    for (const auto& [src, payload] : it->second) {
      trace::record(trace::EventKind::kDeliver, kSub, i, r,
                    static_cast<std::uint64_t>(src), payload);
      protocol.deliver(i, r, src, payload);
      st.received_from.add(src);
    }
    st.pending.erase(it);
  }
  try_finalize(i, protocol);
}

void RoundEnforcedSim::try_finalize(ProcId i, RoundProtocol& protocol) {
  ProcState& st = procs_[static_cast<std::size_t>(i)];
  while (!st.finished && st.received_from.size() >= n_ - f_) {
    const Round r = st.current;
    const ProcessSet missing = st.received_from.complement();
    fault_sets_[static_cast<std::size_t>(r - 1)][static_cast<std::size_t>(i)] =
        missing;
    trace::record(trace::EventKind::kAnnounce, kSub, i, r, missing.bits());
    trace::record(trace::EventKind::kRoundEnd, kSub, i, r);
    protocol.round_complete(i, r, missing);
    if (r >= target_rounds_) {
      st.finished = true;
      return;
    }
    enter_round(i, r + 1, protocol);
    // enter_round re-invokes try_finalize; if it advanced further or
    // finished, the loop condition handles it (st.current changed).
    return;
  }
}

void RoundEnforcedSim::accept(ProcId i, Round r, ProcId src,
                              std::uint64_t payload, RoundProtocol& protocol) {
  ProcState& st = procs_[static_cast<std::size_t>(i)];
  if (st.finished) return;          // done or crashed: drop
  if (r < st.current) return;       // late: discard (communication closed)
  if (r > st.current) {             // early: buffer
    st.pending[r][src] = payload;
    return;
  }
  if (st.received_from.contains(src)) return;  // per-link FIFO dedup guard
  trace::record(trace::EventKind::kDeliver, kSub, i, r,
                static_cast<std::uint64_t>(src), payload);
  protocol.deliver(i, r, src, payload);
  st.received_from.add(src);
  try_finalize(i, protocol);
}

std::string RoundEnforcedSim::state_report() const {
  std::ostringstream os;
  os << "n=" << n_ << " f=" << f_ << " target_rounds=" << target_rounds_
     << " crashed=" << crashed_.to_string();
  for (ProcId i = 0; i < n_; ++i) {
    const ProcState& st = procs_[static_cast<std::size_t>(i)];
    os << "\n  p" << i << ": round=" << st.current
       << " received_from=" << st.received_from.size() << " ("
       << st.received_from.to_string() << ")"
       << " buffered_rounds=" << st.pending.size()
       << (st.finished ? " finished" : " waiting");
  }
  std::size_t pending_links = 0;
  for (std::size_t l = 0; l < links_.size(); ++l) {
    if (links_[l].empty()) continue;
    ++pending_links;
    const auto src = static_cast<ProcId>(l / static_cast<std::size_t>(n_));
    const auto dst = static_cast<ProcId>(l % static_cast<std::size_t>(n_));
    os << "\n  link p" << src << "->p" << dst << ": " << links_[l].size()
       << " pending";
  }
  os << "\n  non-empty links: " << pending_links << " of " << links_.size();
  return os.str();
}

void RoundEnforcedSim::raise_deadlock() const {
  RRFD_ENSURE_MSG(false, "round enforcement deadlocked (no deliverable "
                         "message but a process is still waiting)\n" +
                             state_report());
}

FaultPattern RoundEnforcedSim::run(RoundProtocol& protocol, Round rounds) {
  RRFD_REQUIRE(rounds >= 1);
  RRFD_REQUIRE_MSG(target_rounds_ == 0, "RoundEnforcedSim is single-use");
  // A plan beyond the horizon can never trigger; accepting it would
  // consume the crash budget while silently producing a fault-free run.
  for (const CrashPlan& plan : crash_plans_) {
    RRFD_REQUIRE_MSG(
        plan.in_round <= rounds,
        cat("crash plan for p", plan.who, " targets round ", plan.in_round,
            " but the run stops after round ", rounds,
            " (past-horizon plans are rejected; see add_crash)"));
  }
  target_rounds_ = rounds;
  fault_sets_.assign(
      static_cast<std::size_t>(rounds),
      std::vector<ProcessSet>(static_cast<std::size_t>(n_),
                              ProcessSet::none(n_)));

  trace::record(trace::EventKind::kRunBegin, kSub, n_, 0,
                static_cast<std::uint64_t>(f_),
                static_cast<std::uint64_t>(rounds));

  for (ProcId i = 0; i < n_; ++i) enter_round(i, 1, protocol);

  // Event loop: deliver pending messages in random order (per-link FIFO)
  // until every alive process has finished its rounds. Deliverable links
  // are tracked as per-src destination words; the k-th ready link (in
  // ascending src * n + dst order, exactly the order the old ready-vector
  // scan produced) is found with popcount/bit-select instead of
  // rebuilding an O(n^2) index vector per event.
  for (;;) {
    std::uint64_t finished = 0;
    for (ProcId i = 0; i < n_; ++i) {
      if (procs_[static_cast<std::size_t>(i)].finished) {
        finished |= std::uint64_t{1} << i;
      }
    }
    if (finished == core::full_mask(n_)) break;

    int ready_count = 0;
    for (ProcId src = 0; src < n_; ++src) {
      std::uint64_t& pending = pending_dst_[static_cast<std::size_t>(src)];
      // Destinations that finished evaporate their queued messages.
      for (std::uint64_t evap = pending & finished; evap != 0;
           evap &= evap - 1) {
        links_[static_cast<std::size_t>(src) * static_cast<std::size_t>(n_) +
               static_cast<std::size_t>(std::countr_zero(evap))]
            .clear();
      }
      pending &= ~finished;
      ready_count += std::popcount(pending);
    }
    if (ready_count == 0) {
      // No deliverable messages but some process is still waiting: can only
      // happen if more than f processes crashed, which add_crash prevents.
      raise_deadlock();
    }

    std::size_t link;
    if (replaying_) {
      RRFD_REQUIRE_MSG(replay_next_ < replay_links_.size(),
                       "replay script exhausted while deliveries remain");
      link = replay_links_[replay_next_++];
      RRFD_ENSURE_MSG(
          link < links_.size() &&
              (pending_dst_[link / static_cast<std::size_t>(n_)] >>
                   (link % static_cast<std::size_t>(n_)) &
               1) != 0,
          cat("replayed link choice ", link,
              " is not deliverable at this point\n", state_report()));
    } else {
      int k = static_cast<int>(
          rng_.below(static_cast<std::uint64_t>(ready_count)));
      ProcId src = 0;
      for (;; ++src) {
        const int c =
            std::popcount(pending_dst_[static_cast<std::size_t>(src)]);
        if (k < c) break;
        k -= c;
      }
      link =
          static_cast<std::size_t>(src) * static_cast<std::size_t>(n_) +
          static_cast<std::size_t>(core::nth_set_bit(
              pending_dst_[static_cast<std::size_t>(src)], k));
    }
    Event ev = links_[link].front();
    links_[link].pop_front();
    if (links_[link].empty()) {
      pending_dst_[link / static_cast<std::size_t>(n_)] &=
          ~(std::uint64_t{1} << (link % static_cast<std::size_t>(n_)));
    }
    trace::record(trace::EventKind::kSchedChoice, kSub, ev.dst, ev.round,
                  static_cast<std::uint64_t>(link));
    accept(ev.dst, ev.round, ev.src, ev.payload, protocol);
  }

  FaultPattern pattern(n_);
  for (const auto& round : fault_sets_) pattern.append(round);
  trace::record(trace::EventKind::kRunEnd, kSub, -1, rounds,
                crashed_.bits());
  return pattern;
}

}  // namespace rrfd::msgpass
