#include "msgpass/round_sim.h"

#include "util/check.h"

namespace rrfd::msgpass {

RoundEnforcedSim::RoundEnforcedSim(int n, int f, std::uint64_t seed)
    : n_(n), f_(f), rng_(seed), crashed_(n) {
  RRFD_REQUIRE(0 < n && n <= core::kMaxProcesses);
  RRFD_REQUIRE(0 <= f && f < n);
  procs_.assign(static_cast<std::size_t>(n), ProcState(n));
  links_.resize(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
}

void RoundEnforcedSim::add_crash(const CrashPlan& plan) {
  RRFD_REQUIRE(0 <= plan.who && plan.who < n_);
  RRFD_REQUIRE(plan.in_round >= 1);
  RRFD_REQUIRE(0 <= plan.reaches && plan.reaches <= n_);
  RRFD_REQUIRE_MSG(static_cast<int>(crash_plans_.size()) < f_,
                   "more crashes than the failure bound f");
  for (const CrashPlan& existing : crash_plans_) {
    RRFD_REQUIRE_MSG(existing.who != plan.who,
                     "process already has a crash plan");
  }
  crash_plans_.push_back(plan);
}

void RoundEnforcedSim::broadcast(ProcId src, Round r, std::uint64_t payload) {
  // Determine destinations: everyone, unless this is the sender's crash
  // round, in which case a random subset of size `reaches` (the essence of
  // a crash mid-broadcast).
  std::vector<ProcId> dests;
  dests.reserve(static_cast<std::size_t>(n_));
  for (ProcId d = 0; d < n_; ++d) dests.push_back(d);

  for (const CrashPlan& plan : crash_plans_) {
    if (plan.who == src && plan.in_round == r) {
      rng_.shuffle(dests);
      dests.resize(static_cast<std::size_t>(plan.reaches));
      crashed_.add(src);
      procs_[static_cast<std::size_t>(src)].finished = true;
      break;
    }
  }

  for (ProcId d : dests) {
    links_[static_cast<std::size_t>(src) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(d)]
        .push_back(Event{src, d, r, payload});
  }
}

void RoundEnforcedSim::enter_round(ProcId i, Round r, RoundProtocol& protocol) {
  ProcState& st = procs_[static_cast<std::size_t>(i)];
  st.current = r;
  st.received_from = ProcessSet::none(n_);

  broadcast(i, r, protocol.emit(i, r));
  if (st.finished) return;  // crashed during this broadcast

  // Drain messages that arrived early for this round.
  auto it = st.pending.find(r);
  if (it != st.pending.end()) {
    for (const auto& [src, payload] : it->second) {
      protocol.deliver(i, r, src, payload);
      st.received_from.add(src);
    }
    st.pending.erase(it);
  }
  try_finalize(i, protocol);
}

void RoundEnforcedSim::try_finalize(ProcId i, RoundProtocol& protocol) {
  ProcState& st = procs_[static_cast<std::size_t>(i)];
  while (!st.finished && st.received_from.size() >= n_ - f_) {
    const Round r = st.current;
    const ProcessSet missing = st.received_from.complement();
    fault_sets_[static_cast<std::size_t>(r - 1)][static_cast<std::size_t>(i)] =
        missing;
    protocol.round_complete(i, r, missing);
    if (r >= target_rounds_) {
      st.finished = true;
      return;
    }
    enter_round(i, r + 1, protocol);
    // enter_round re-invokes try_finalize; if it advanced further or
    // finished, the loop condition handles it (st.current changed).
    return;
  }
}

void RoundEnforcedSim::accept(ProcId i, Round r, ProcId src,
                              std::uint64_t payload, RoundProtocol& protocol) {
  ProcState& st = procs_[static_cast<std::size_t>(i)];
  if (st.finished) return;          // done or crashed: drop
  if (r < st.current) return;       // late: discard (communication closed)
  if (r > st.current) {             // early: buffer
    st.pending[r][src] = payload;
    return;
  }
  if (st.received_from.contains(src)) return;  // per-link FIFO dedup guard
  protocol.deliver(i, r, src, payload);
  st.received_from.add(src);
  try_finalize(i, protocol);
}

FaultPattern RoundEnforcedSim::run(RoundProtocol& protocol, Round rounds) {
  RRFD_REQUIRE(rounds >= 1);
  RRFD_REQUIRE_MSG(target_rounds_ == 0, "RoundEnforcedSim is single-use");
  target_rounds_ = rounds;
  fault_sets_.assign(
      static_cast<std::size_t>(rounds),
      std::vector<ProcessSet>(static_cast<std::size_t>(n_),
                              ProcessSet::none(n_)));

  for (ProcId i = 0; i < n_; ++i) enter_round(i, 1, protocol);

  // Event loop: deliver pending messages in random order (per-link FIFO)
  // until every alive process has finished its rounds.
  for (;;) {
    std::vector<std::size_t> ready;
    bool anyone_unfinished = false;
    for (ProcId i = 0; i < n_; ++i) {
      if (!procs_[static_cast<std::size_t>(i)].finished) {
        anyone_unfinished = true;
      }
    }
    if (!anyone_unfinished) break;

    for (std::size_t l = 0; l < links_.size(); ++l) {
      if (links_[l].empty()) continue;
      const ProcId dst = static_cast<ProcId>(l % static_cast<std::size_t>(n_));
      if (procs_[static_cast<std::size_t>(dst)].finished) {
        links_[l].clear();  // destination is done; messages evaporate
        continue;
      }
      ready.push_back(l);
    }
    if (ready.empty()) {
      // No deliverable messages but some process is still waiting: can only
      // happen if more than f processes crashed, which add_crash prevents.
      RRFD_ENSURE_MSG(false, "round enforcement deadlocked");
    }

    const std::size_t link =
        ready[static_cast<std::size_t>(rng_.below(ready.size()))];
    Event ev = links_[link].front();
    links_[link].pop_front();
    accept(ev.dst, ev.round, ev.src, ev.payload, protocol);
  }

  FaultPattern pattern(n_);
  for (const auto& round : fault_sets_) pattern.append(round);
  return pattern;
}

}  // namespace rrfd::msgpass
