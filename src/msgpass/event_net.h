// A typed, event-driven asynchronous point-to-point network.
//
// Complements the round-enforced simulator (round_sim.h): protocols that
// are *not* round-based -- quorum protocols like ABD -- exchange typed
// messages over per-link FIFO channels, with a seeded scheduler choosing
// delivery order and crashes cutting a process out of the network. This
// is the raw asynchronous message-passing system N of Section 2 items
// 3-4, before any round structure is imposed on it.
#pragma once

#include <deque>
#include <functional>
#include <vector>

#include "core/process_set.h"
#include "core/types.h"
#include "util/check.h"
#include "util/rng.h"

namespace rrfd::msgpass {

template <typename M>
class EventNet {
 public:
  /// Delivery callback: (src, dst, message).
  using Handler = std::function<void(core::ProcId, core::ProcId, const M&)>;

  EventNet(int n, std::uint64_t seed) : n_(n), rng_(seed), crashed_(n) {
    RRFD_REQUIRE(0 < n && n <= core::kMaxProcesses);
    links_.resize(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  }

  int n() const { return n_; }

  /// Enqueues a message. Sends from or to a crashed process are dropped
  /// (a crashed process neither sends nor receives).
  void send(core::ProcId src, core::ProcId dst, M m) {
    RRFD_REQUIRE(0 <= src && src < n_ && 0 <= dst && dst < n_);
    if (crashed_.contains(src) || crashed_.contains(dst)) return;
    link(src, dst).push_back(std::move(m));
    ++sent_;
  }

  /// Sends to every process (including the sender).
  void broadcast(core::ProcId src, const M& m) {
    for (core::ProcId dst = 0; dst < n_; ++dst) send(src, dst, m);
  }

  /// Crashes a process: pending traffic to and from it evaporates.
  void crash(core::ProcId p) {
    RRFD_REQUIRE(0 <= p && p < n_);
    crashed_.add(p);
    for (core::ProcId q = 0; q < n_; ++q) {
      link(p, q).clear();
      link(q, p).clear();
    }
  }

  const core::ProcessSet& crashed() const { return crashed_; }

  bool idle() const {
    for (const auto& l : links_) {
      if (!l.empty()) return false;
    }
    return true;
  }

  long messages_sent() const { return sent_; }
  long messages_delivered() const { return delivered_; }

  /// Delivers one pending message chosen uniformly at random among
  /// non-empty links (respecting per-link FIFO). Returns false if idle.
  bool deliver_one(const Handler& handler) {
    std::vector<std::size_t> ready;
    for (std::size_t l = 0; l < links_.size(); ++l) {
      if (!links_[l].empty()) ready.push_back(l);
    }
    if (ready.empty()) return false;
    const std::size_t l =
        ready[static_cast<std::size_t>(rng_.below(ready.size()))];
    const auto src = static_cast<core::ProcId>(l / static_cast<std::size_t>(n_));
    const auto dst = static_cast<core::ProcId>(l % static_cast<std::size_t>(n_));
    M m = std::move(links_[l].front());
    links_[l].pop_front();
    ++delivered_;
    handler(src, dst, m);
    return true;
  }

  /// Keeps delivering until idle or the budget runs out; returns the
  /// number of deliveries performed.
  long run_until_idle(const Handler& handler, long max_deliveries = 1 << 20) {
    long count = 0;
    while (count < max_deliveries && deliver_one(handler)) ++count;
    return count;
  }

 private:
  std::deque<M>& link(core::ProcId src, core::ProcId dst) {
    return links_[static_cast<std::size_t>(src) * static_cast<std::size_t>(n_) +
                  static_cast<std::size_t>(dst)];
  }

  int n_;
  Rng rng_;
  core::ProcessSet crashed_;
  std::vector<std::deque<M>> links_;
  long sent_ = 0;
  long delivered_ = 0;
};

}  // namespace rrfd::msgpass
