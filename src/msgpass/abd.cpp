#include "msgpass/abd.h"

#include "util/str.h"

namespace rrfd::msgpass {

AbdRegister::AbdRegister(int n, core::ProcId writer, std::uint64_t seed,
                         int initial)
    : net_(n, seed),
      writer_(writer),
      replica_ts_(static_cast<std::size_t>(n), 0),
      replica_value_(static_cast<std::size_t>(n), initial),
      pending_(static_cast<std::size_t>(n)) {
  RRFD_REQUIRE(0 <= writer && writer < n);
}

const AbdOpRecord& AbdRegister::op(int id) const {
  RRFD_REQUIRE(0 <= id && id < static_cast<int>(ops_.size()));
  return ops_[static_cast<std::size_t>(id)];
}

int AbdRegister::begin_write(int value) {
  RRFD_REQUIRE_MSG(!pending_[static_cast<std::size_t>(writer_)],
                   "writer already has an operation in flight");
  RRFD_REQUIRE_MSG(!net_.crashed().contains(writer_), "writer crashed");

  const int id = static_cast<int>(ops_.size());
  ++writer_ts_;
  AbdOpRecord rec;
  rec.id = id;
  rec.kind = AbdOpRecord::Kind::kWrite;
  rec.client = writer_;
  rec.value = value;
  rec.timestamp = writer_ts_;
  rec.started_at = clock_;
  ops_.push_back(rec);

  Pending p;
  p.op_id = id;
  p.write_back_phase = true;  // writes have only the store phase
  p.best_ts = writer_ts_;
  p.best_value = value;
  pending_[static_cast<std::size_t>(writer_)] = p;

  net_.broadcast(writer_, Message{Message::Type::kStore, id, writer_ts_, value});
  return id;
}

int AbdRegister::begin_read(core::ProcId client) {
  RRFD_REQUIRE(0 <= client && client < net_.n());
  RRFD_REQUIRE_MSG(!pending_[static_cast<std::size_t>(client)],
                   "client already has an operation in flight");
  RRFD_REQUIRE_MSG(!net_.crashed().contains(client), "client crashed");

  const int id = static_cast<int>(ops_.size());
  AbdOpRecord rec;
  rec.id = id;
  rec.kind = AbdOpRecord::Kind::kRead;
  rec.client = client;
  rec.started_at = clock_;
  ops_.push_back(rec);

  Pending p;
  p.op_id = id;
  pending_[static_cast<std::size_t>(client)] = p;

  net_.broadcast(client, Message{Message::Type::kQuery, id, 0, 0});
  return id;
}

void AbdRegister::complete(Pending& pending, long ts, int value) {
  AbdOpRecord& rec = ops_[static_cast<std::size_t>(pending.op_id)];
  rec.timestamp = ts;
  if (rec.kind == AbdOpRecord::Kind::kRead) rec.value = value;
  rec.finished_at = clock_;
}

void AbdRegister::on_message(core::ProcId src, core::ProcId dst,
                             const Message& m) {
  switch (m.type) {
    case Message::Type::kStore: {
      // Replica: install if newer, acknowledge regardless.
      const auto d = static_cast<std::size_t>(dst);
      if (m.ts > replica_ts_[d]) {
        replica_ts_[d] = m.ts;
        replica_value_[d] = m.value;
      }
      net_.send(dst, src, Message{Message::Type::kStoreAck, m.op_id, m.ts, 0});
      return;
    }
    case Message::Type::kQuery: {
      const auto d = static_cast<std::size_t>(dst);
      net_.send(dst, src,
                Message{Message::Type::kQueryReply, m.op_id, replica_ts_[d],
                        replica_value_[d]});
      return;
    }
    case Message::Type::kStoreAck: {
      auto& slot = pending_[static_cast<std::size_t>(dst)];
      if (!slot || slot->op_id != m.op_id || !slot->write_back_phase) return;
      if (++slot->acks >= majority()) {
        complete(*slot, slot->best_ts, slot->best_value);
        slot.reset();
      }
      return;
    }
    case Message::Type::kQueryReply: {
      auto& slot = pending_[static_cast<std::size_t>(dst)];
      if (!slot || slot->op_id != m.op_id || slot->write_back_phase) return;
      if (m.ts > slot->best_ts) {
        slot->best_ts = m.ts;
        slot->best_value = m.value;
      }
      if (++slot->acks >= majority()) {
        if (skip_write_back_) {
          complete(*slot, slot->best_ts, slot->best_value);
          slot.reset();
          return;
        }
        // Phase 2: write the adopted pair back to a majority.
        slot->write_back_phase = true;
        slot->acks = 0;
        net_.broadcast(dst, Message{Message::Type::kStore, m.op_id,
                                    slot->best_ts, slot->best_value});
      }
      return;
    }
  }
}

bool AbdRegister::step() {
  const bool delivered = net_.deliver_one(
      [this](core::ProcId src, core::ProcId dst, const Message& m) {
        on_message(src, dst, m);
      });
  if (delivered) ++clock_;
  return delivered;
}

void AbdRegister::run_until_quiet(long max_deliveries) {
  long count = 0;
  while (count < max_deliveries && step()) ++count;
}

void AbdRegister::crash(core::ProcId p) {
  net_.crash(p);
  pending_[static_cast<std::size_t>(p)].reset();  // its op will never finish
}

std::string check_abd_atomicity(const std::vector<AbdOpRecord>& history) {
  // Collect completed writes by timestamp (single writer: timestamps are
  // unique and ordered by issue order).
  for (const AbdOpRecord& r : history) {
    if (r.kind != AbdOpRecord::Kind::kRead || !r.done()) continue;

    // Validity: the returned timestamp corresponds to a write with that
    // value, or is 0 (the initial value).
    if (r.timestamp != 0) {
      bool matched = false;
      for (const AbdOpRecord& w : history) {
        if (w.kind == AbdOpRecord::Kind::kWrite && w.timestamp == r.timestamp) {
          matched = true;
          if (w.value != r.value) {
            return cat("read op ", r.id, " returned value ", r.value,
                       " but the timestamp-", r.timestamp, " write wrote ",
                       w.value);
          }
        }
      }
      if (!matched) {
        return cat("read op ", r.id, " returned unknown timestamp ",
                   r.timestamp);
      }
    }

    // Reads-follow-writes: a write completed before the read started must
    // be visible (read ts >= write ts).
    for (const AbdOpRecord& w : history) {
      if (w.kind == AbdOpRecord::Kind::kWrite && w.done() &&
          w.finished_at <= r.started_at && r.timestamp < w.timestamp) {
        return cat("read op ", r.id, " (ts ", r.timestamp,
                   ") missed write op ", w.id, " (ts ", w.timestamp,
                   ") that completed before it started");
      }
    }

    // No new/old inversion between reads.
    for (const AbdOpRecord& other : history) {
      if (other.kind == AbdOpRecord::Kind::kRead && other.done() &&
          other.finished_at <= r.started_at &&
          r.timestamp < other.timestamp) {
        return cat("new/old inversion: read op ", r.id, " (ts ", r.timestamp,
                   ") started after read op ", other.id, " (ts ",
                   other.timestamp, ") completed");
      }
    }
  }
  return {};
}

}  // namespace rrfd::msgpass
