// Minimal C++ lexer for rrfd_lint.
//
// This is not a compiler front end: it splits a translation unit into
// identifiers, literals, punctuation, and preprocessor directives, and
// collects comments separately so rules never match inside comment or
// string text (the classic grep false positive). String literal *content*
// is preserved on the token -- the no-env-sideband rule needs to read the
// argument of getenv("...") -- but rules that scan identifiers only ever
// see code.
//
// Deliberately unhandled: trigraphs, digraphs, and UCN identifiers. The
// repo does not use them, and a lint pass that misses an exotic spelling
// fails open (no finding), never closed.
#pragma once

#include <string>
#include <vector>

namespace rrfd::lint {

enum class TokKind {
  kIdent,    // identifiers and keywords
  kNumber,   // numeric literals (incl. digit separators)
  kString,   // string literal; text holds the content without quotes
  kChar,     // character literal
  kPunct,    // operators and punctuation ("::", "->", "<", ...)
  kPreproc,  // whole preprocessor directive, continuations spliced
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  int line = 0;  // 1-based
  int col = 0;   // 1-based
};

struct Comment {
  std::string text;  // without the // or /* */ markers, trimmed
  int line = 0;      // line the comment starts on
  int end_line = 0;  // line it ends on (block comments, spliced // lines)
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

/// Lexes a whole source file. Never throws on malformed input: an
/// unterminated literal or comment simply ends at EOF.
LexResult lex(const std::string& source);

}  // namespace rrfd::lint
