#include "lint/rules.h"

#include <algorithm>
#include <array>
#include <cstddef>
#include <memory>
#include <set>
#include <string>

namespace rrfd::lint {
namespace {

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

bool is_ident(const Token& t, std::string_view text) {
  return t.kind == TokKind::kIdent && t.text == text;
}

bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

/// tokens[i - 1] / tokens[i + 1] with bounds checks; a static sentinel
/// punct token stands in for "nothing there".
const Token& tok_at(const std::vector<Token>& toks, std::ptrdiff_t i) {
  static const Token kNone{TokKind::kPunct, "", 0, 0};
  if (i < 0 || i >= static_cast<std::ptrdiff_t>(toks.size())) return kNone;
  return toks[static_cast<std::size_t>(i)];
}

void add(std::vector<Finding>& out, const Rule& rule, const FileContext& file,
         const Token& at, std::string message) {
  out.push_back(Finding{std::string(rule.name()), file.path, at.line, at.col,
                        std::move(message), file.snippet(at.line)});
}

/// True when the identifier at `i` is spelled as a qualified name whose
/// qualifier is NOT `std` (e.g. `mylib::time`). Unqualified names and
/// `std::`-qualified names return false.
bool foreign_qualified(const std::vector<Token>& toks, std::size_t i) {
  std::ptrdiff_t p = static_cast<std::ptrdiff_t>(i);
  if (!is_punct(tok_at(toks, p - 1), "::")) return false;
  const Token& scope = tok_at(toks, p - 2);
  return !(scope.kind == TokKind::kIdent && scope.text == "std");
}

/// True when `name(` at index `i` reads as a *call* to a free function of
/// that name: not a member access (x.time()), not qualified into a
/// foreign namespace, and not a declaration (`int time()` -- preceded by
/// a type-ish identifier rather than an expression-context keyword).
bool is_free_call(const std::vector<Token>& toks, std::size_t i) {
  if (!is_punct(tok_at(toks, static_cast<std::ptrdiff_t>(i) + 1), "(")) {
    return false;
  }
  const Token& prev = tok_at(toks, static_cast<std::ptrdiff_t>(i) - 1);
  if (is_punct(prev, ".") || is_punct(prev, "->")) return false;
  if (foreign_qualified(toks, i)) return false;
  if (prev.kind == TokKind::kIdent) {
    static const std::set<std::string, std::less<>> kExprKeywords = {
        "return", "co_return", "co_yield", "case", "throw", "else", "do"};
    return kExprKeywords.count(prev.text) > 0;
  }
  return true;
}

/// Scans a balanced <...> starting at the '<' token index `open`.
/// Returns the index one past the closing '>', or `open` if unbalanced /
/// too long to be a plausible template argument list. Collects the indices
/// of top-level ',' separators when `commas` is non-null.
std::size_t scan_template_args(const std::vector<Token>& toks,
                               std::size_t open,
                               std::vector<std::size_t>* commas = nullptr) {
  if (open >= toks.size() || !is_punct(toks[open], "<")) return open;
  int depth = 0;
  constexpr std::size_t kMaxSpan = 256;
  for (std::size_t i = open; i < toks.size() && i - open < kMaxSpan; ++i) {
    const Token& t = toks[i];
    if (is_punct(t, "<")) ++depth;
    if (is_punct(t, ">")) {
      --depth;
      if (depth == 0) return i + 1;
    }
    if (depth == 1 && commas != nullptr && is_punct(t, ",")) {
      commas->push_back(i);
    }
    // A template argument list never crosses these.
    if (is_punct(t, ";") || is_punct(t, "{")) break;
  }
  return open;
}

// ---------------------------------------------------------------------------
// no-wall-clock

class NoWallClock final : public Rule {
 public:
  std::string_view name() const override { return "no-wall-clock"; }
  std::string_view description() const override {
    return "wall-clock time sources are banned outside bench/: they make "
           "results depend on when and where a run happens";
  }
  bool applies_to(std::string_view path) const override {
    return !starts_with(path, "bench/");
  }
  void check(const FileContext& file, std::vector<Finding>& out) const override {
    static const std::set<std::string, std::less<>> kClockTypes = {
        "system_clock", "steady_clock", "high_resolution_clock"};
    static const std::set<std::string, std::less<>> kClockCalls = {
        "time",          "clock",    "gettimeofday", "clock_gettime",
        "timespec_get",  "localtime", "gmtime",      "mktime",
        "ftime"};
    const auto& toks = file.lexed.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::kIdent) continue;
      if (kClockTypes.count(t.text) > 0) {
        add(out, *this, file, t,
            "std::chrono::" + t.text + " reads the wall clock");
        continue;
      }
      if (kClockCalls.count(t.text) > 0 && is_free_call(toks, i)) {
        add(out, *this, file, t, "call to wall-clock function " + t.text + "()");
      }
    }
  }
};

// ---------------------------------------------------------------------------
// no-raw-random

class NoRawRandom final : public Rule {
 public:
  std::string_view name() const override { return "no-raw-random"; }
  std::string_view description() const override {
    return "raw <random>/<cstdlib> generators are banned outside "
           "src/util/rng.{h,cpp}: all randomness must flow through "
           "counter-derived Rng streams";
  }
  bool applies_to(std::string_view path) const override {
    return path != "src/util/rng.h" && path != "src/util/rng.cpp";
  }
  void check(const FileContext& file, std::vector<Finding>& out) const override {
    static const std::set<std::string, std::less<>> kEngineTypes = {
        "random_device",  "mt19937",        "mt19937_64",
        "minstd_rand",    "minstd_rand0",   "default_random_engine",
        "knuth_b",        "ranlux24",       "ranlux24_base",
        "ranlux48",       "ranlux48_base"};
    static const std::set<std::string, std::less<>> kRandCalls = {
        "rand", "srand", "rand_r", "drand48", "lrand48", "mrand48"};
    const auto& toks = file.lexed.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::kIdent) continue;
      if (kEngineTypes.count(t.text) > 0) {
        add(out, *this, file, t,
            t.text + " bypasses the seeded Rng contract (use Rng::stream)");
        continue;
      }
      if (kRandCalls.count(t.text) > 0 && is_free_call(toks, i)) {
        add(out, *this, file, t,
            "call to " + t.text + "() bypasses the seeded Rng contract");
      }
    }
  }
};

// ---------------------------------------------------------------------------
// no-unordered-iteration

class NoUnorderedIteration final : public Rule {
 public:
  std::string_view name() const override { return "no-unordered-iteration"; }
  std::string_view description() const override {
    return "range-for over unordered containers is banned: hash iteration "
           "order leaks into results (use ordered containers or a sorted "
           "snapshot)";
  }
  void check(const FileContext& file, std::vector<Finding>& out) const override {
    static const std::set<std::string, std::less<>> kUnorderedTypes = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"};
    const auto& toks = file.lexed.tokens;

    // Pass A: names declared (anywhere in this file) with an unordered
    // container type, including members and parameters. Single-file
    // resolution only -- cross-file types are out of scope by design.
    std::set<std::string, std::less<>> unordered_names;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != TokKind::kIdent ||
          kUnorderedTypes.count(toks[i].text) == 0) {
        continue;
      }
      std::size_t j = i + 1;
      if (j < toks.size() && is_punct(toks[j], "<")) {
        std::size_t past = scan_template_args(toks, j);
        if (past == j) continue;  // unbalanced; not a declaration
        j = past;
      }
      // `unordered_map<K,V> a, b;` with cv/ref/ptr decoration.
      while (j < toks.size()) {
        while (j < toks.size() &&
               (is_punct(toks[j], "&") || is_punct(toks[j], "*") ||
                is_ident(toks[j], "const"))) {
          ++j;
        }
        if (j >= toks.size() || toks[j].kind != TokKind::kIdent) break;
        unordered_names.insert(toks[j].text);
        ++j;
        if (j < toks.size() && is_punct(toks[j], ",")) {
          ++j;
          continue;
        }
        break;
      }
    }

    // Pass B: range-for statements whose range expression mentions an
    // unordered name or an unordered type (temporaries, members).
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (!is_ident(toks[i], "for") || !is_punct(toks[i + 1], "(")) continue;
      int depth = 0;
      std::size_t colon = 0;
      std::size_t close = 0;
      for (std::size_t j = i + 1; j < toks.size(); ++j) {
        if (is_punct(toks[j], "(")) ++depth;
        if (is_punct(toks[j], ")")) {
          --depth;
          if (depth == 0) {
            close = j;
            break;
          }
        }
        if (depth == 1 && colon == 0 && is_punct(toks[j], ";")) break;
        if (depth == 1 && colon == 0 && is_punct(toks[j], ":")) colon = j;
      }
      if (colon == 0 || close == 0) continue;  // classic for / unbalanced
      for (std::size_t j = colon + 1; j < close; ++j) {
        if (toks[j].kind != TokKind::kIdent) continue;
        if (kUnorderedTypes.count(toks[j].text) > 0 ||
            unordered_names.count(toks[j].text) > 0) {
          add(out, *this, file, toks[i],
              "range-for over unordered container '" + toks[j].text +
                  "': iteration order is hash-dependent");
          break;
        }
      }
    }
  }
};

// ---------------------------------------------------------------------------
// no-pointer-order

class NoPointerOrder final : public Rule {
 public:
  std::string_view name() const override { return "no-pointer-order"; }
  std::string_view description() const override {
    return "hashing or ordering by pointer value is banned in "
           "result-affecting code: addresses vary run to run";
  }
  void check(const FileContext& file, std::vector<Finding>& out) const override {
    const auto& toks = file.lexed.tokens;
    check_std_templates(file, toks, out);
    check_comparator_lambdas(file, toks, out);
  }

 private:
  static bool span_has_star(const std::vector<Token>& toks, std::size_t begin,
                            std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      if (is_punct(toks[i], "*")) return true;
    }
    return false;
  }

  // std::hash<T*>, std::less<T*>, std::greater<T*>, and ordered containers
  // keyed on pointers (std::map<T*, V>, std::set<T*>).
  void check_std_templates(const FileContext& file,
                           const std::vector<Token>& toks,
                           std::vector<Finding>& out) const {
    static const std::set<std::string, std::less<>> kWholeArg = {
        "hash", "less", "greater"};
    static const std::set<std::string, std::less<>> kKeyArg = {
        "map", "set", "multimap", "multiset"};
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::kIdent) continue;
      bool whole = kWholeArg.count(t.text) > 0;
      bool keyed = kKeyArg.count(t.text) > 0;
      if (!whole && !keyed) continue;
      // Require std:: qualification: bare `map`/`set`/`less` identifiers
      // are too common as local names.
      std::ptrdiff_t p = static_cast<std::ptrdiff_t>(i);
      if (!is_punct(tok_at(toks, p - 1), "::") ||
          !is_ident(tok_at(toks, p - 2), "std")) {
        continue;
      }
      if (i + 1 >= toks.size() || !is_punct(toks[i + 1], "<")) continue;
      std::vector<std::size_t> commas;
      std::size_t past = scan_template_args(toks, i + 1, &commas);
      if (past == i + 1) continue;
      std::size_t arg_end = keyed && !commas.empty() ? commas[0] : past - 1;
      if (span_has_star(toks, i + 2, arg_end)) {
        add(out, *this, file, t,
            "std::" + t.text +
                " instantiated with a pointer type orders/hashes by address");
      }
    }
  }

  // Lambda comparators passed to ordering algorithms that compare raw
  // pointer parameters (`[](const T* a, const T* b) { return a < b; }`).
  void check_comparator_lambdas(const FileContext& file,
                                const std::vector<Token>& toks,
                                std::vector<Finding>& out) const {
    static const std::set<std::string, std::less<>> kOrderingAlgos = {
        "sort",        "stable_sort", "partial_sort", "nth_element",
        "min_element", "max_element", "lower_bound",  "upper_bound",
        "equal_range", "binary_search", "merge",      "unique",
        "is_sorted",   "make_heap",   "sort_heap"};
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != TokKind::kIdent ||
          kOrderingAlgos.count(toks[i].text) == 0 ||
          !is_punct(toks[i + 1], "(")) {
        continue;
      }
      // Span of the call's argument list.
      int depth = 0;
      std::size_t close = 0;
      for (std::size_t j = i + 1; j < toks.size(); ++j) {
        if (is_punct(toks[j], "(")) ++depth;
        if (is_punct(toks[j], ")")) {
          --depth;
          if (depth == 0) {
            close = j;
            break;
          }
        }
      }
      if (close == 0) continue;
      for (std::size_t j = i + 2; j < close; ++j) {
        if (is_punct(toks[j], "[")) j = check_lambda(file, toks, j, out);
      }
      i = close;
    }
  }

  // Examines a potential lambda starting at the '[' token; returns the
  // index to resume scanning from.
  std::size_t check_lambda(const FileContext& file,
                           const std::vector<Token>& toks, std::size_t open,
                           std::vector<Finding>& out) const {
    // Capture list.
    std::size_t j = open;
    int depth = 0;
    for (; j < toks.size(); ++j) {
      if (is_punct(toks[j], "[")) ++depth;
      if (is_punct(toks[j], "]")) {
        --depth;
        if (depth == 0) break;
      }
    }
    if (j >= toks.size() || !is_punct(tok_at(toks, static_cast<std::ptrdiff_t>(j) + 1), "(")) {
      return open;  // not a lambda with a parameter list
    }
    // Parameter list: collect names of pointer-typed parameters.
    std::set<std::string, std::less<>> ptr_params;
    std::size_t params_open = j + 1;
    std::size_t params_close = 0;
    depth = 0;
    bool saw_star = false;
    std::string last_ident;
    for (std::size_t k = params_open; k < toks.size(); ++k) {
      const Token& t = toks[k];
      if (is_punct(t, "(")) ++depth;
      if (is_punct(t, ")")) {
        --depth;
        if (depth == 0) {
          params_close = k;
          if (saw_star && !last_ident.empty()) ptr_params.insert(last_ident);
          break;
        }
      }
      if (depth != 1) continue;
      if (is_punct(t, ",")) {
        if (saw_star && !last_ident.empty()) ptr_params.insert(last_ident);
        saw_star = false;
        last_ident.clear();
      } else if (is_punct(t, "*")) {
        saw_star = true;
      } else if (t.kind == TokKind::kIdent) {
        last_ident = t.text;
      }
    }
    if (params_close == 0 || ptr_params.empty()) return params_close + 1;
    // Body: flag `a < b` where both are raw pointer params (a deref like
    // `*a < *b` or a member access `a->x < b->x` breaks the adjacency).
    std::size_t body_open = params_close + 1;
    while (body_open < toks.size() && !is_punct(toks[body_open], "{") &&
           !is_punct(toks[body_open], ";")) {
      ++body_open;  // skip trailing return type etc.
    }
    if (body_open >= toks.size() || !is_punct(toks[body_open], "{")) {
      return params_close + 1;
    }
    depth = 0;
    for (std::size_t k = body_open; k < toks.size(); ++k) {
      if (is_punct(toks[k], "{")) ++depth;
      if (is_punct(toks[k], "}")) {
        --depth;
        if (depth == 0) return k + 1;
      }
      if (toks[k].kind != TokKind::kPunct) continue;
      const std::string& op = toks[k].text;
      if (op != "<" && op != ">" && op != "<=" && op != ">=") continue;
      const Token& lhs = tok_at(toks, static_cast<std::ptrdiff_t>(k) - 1);
      const Token& rhs = tok_at(toks, static_cast<std::ptrdiff_t>(k) + 1);
      if (lhs.kind == TokKind::kIdent && rhs.kind == TokKind::kIdent &&
          ptr_params.count(lhs.text) > 0 && ptr_params.count(rhs.text) > 0) {
        add(out, *this, file, toks[k],
            "comparator orders by raw pointer value ('" + lhs.text + " " +
                op + " " + rhs.text + "')");
      }
    }
    return toks.size();
  }
};

// ---------------------------------------------------------------------------
// no-env-sideband

class NoEnvSideband final : public Rule {
 public:
  std::string_view name() const override { return "no-env-sideband"; }
  std::string_view description() const override {
    return "getenv is restricted to the documented hooks (RRFD_TRACE, "
           "RRFD_BENCH_*, RRFD_SWEEP_THREADS, RRFD_SUBMODEL_MEMO); "
           "setenv/putenv are banned";
  }
  void check(const FileContext& file, std::vector<Finding>& out) const override {
    const auto& toks = file.lexed.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::kIdent) continue;
      bool call = is_punct(tok_at(toks, static_cast<std::ptrdiff_t>(i) + 1), "(");
      if (!call) continue;
      if (t.text == "setenv" || t.text == "putenv" || t.text == "unsetenv") {
        add(out, *this, file, t,
            t.text + "() mutates the environment mid-run");
        continue;
      }
      if (t.text != "getenv" && t.text != "secure_getenv") continue;
      if (foreign_qualified(toks, i)) continue;
      const Token& arg = tok_at(toks, static_cast<std::ptrdiff_t>(i) + 2);
      const Token& after = tok_at(toks, static_cast<std::ptrdiff_t>(i) + 3);
      if (arg.kind != TokKind::kString || !is_punct(after, ")")) {
        add(out, *this, file, t,
            "getenv with a computed variable name cannot be allowlisted");
        continue;
      }
      if (!allowed(arg.text)) {
        add(out, *this, file, t,
            "getenv(\"" + arg.text + "\") is not a documented hook");
      }
    }
  }

 private:
  static bool allowed(const std::string& var) {
    return var == "RRFD_TRACE" || var == "RRFD_SWEEP_THREADS" ||
           var == "RRFD_SUBMODEL_MEMO" || starts_with(var, "RRFD_BENCH_");
  }
};

// ---------------------------------------------------------------------------
// contract-hygiene

class ContractHygiene final : public Rule {
 public:
  std::string_view name() const override { return "contract-hygiene"; }
  std::string_view description() const override {
    return "contract macros must carry a non-empty message; headers must "
           "have include guards and no namespace-scope using-directives";
  }
  void check(const FileContext& file, std::vector<Finding>& out) const override {
    const auto& toks = file.lexed.tokens;
    if (file.is_header) {
      check_guard(file, toks, out);
      check_using_namespace(file, toks, out);
    }
    check_contract_messages(file, toks, out);
  }

 private:
  static std::string normalize_directive(const std::string& raw) {
    std::string norm;
    for (char c : raw) {
      if (c == ' ' || c == '\t') {
        if (!norm.empty() && norm.back() != ' ') norm += ' ';
      } else {
        norm += c;
      }
    }
    return norm;
  }

  void check_guard(const FileContext& file, const std::vector<Token>& toks,
                  std::vector<Finding>& out) const {
    for (const Token& t : toks) {
      if (t.kind != TokKind::kPreproc) continue;
      std::string norm = normalize_directive(t.text);
      if (starts_with(norm, "#pragma once") || starts_with(norm, "# pragma once") ||
          starts_with(norm, "#ifndef") || starts_with(norm, "# ifndef")) {
        return;
      }
    }
    Token anchor{TokKind::kPreproc, "", 1, 1};
    add(out, *this, file, anchor,
        "header has neither '#pragma once' nor an #ifndef include guard");
  }

  void check_using_namespace(const FileContext& file,
                             const std::vector<Token>& toks,
                             std::vector<Finding>& out) const {
    // Brace contexts: 'n' = namespace body, 'b' = anything else. A
    // using-directive is namespace-scope iff every enclosing brace is 'n'.
    std::vector<char> stack;
    bool pending_ns = false;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (is_ident(t, "namespace")) {
        // `using namespace` is handled below; `namespace X = ...;` aliases
        // and `namespace X {` openings both start here.
        const Token& prev = tok_at(toks, static_cast<std::ptrdiff_t>(i) - 1);
        if (!is_ident(prev, "using")) pending_ns = true;
        continue;
      }
      if (is_punct(t, ";")) pending_ns = false;  // alias or declaration
      if (is_punct(t, "{")) {
        stack.push_back(pending_ns ? 'n' : 'b');
        pending_ns = false;
      }
      if (is_punct(t, "}") && !stack.empty()) stack.pop_back();
      if (is_ident(t, "using") &&
          is_ident(tok_at(toks, static_cast<std::ptrdiff_t>(i) + 1),
                   "namespace")) {
        bool ns_scope =
            std::all_of(stack.begin(), stack.end(),
                        [](char c) { return c == 'n'; });
        if (ns_scope) {
          add(out, *this, file, t,
              "using-directive at namespace scope in a header leaks into "
              "every includer");
        }
      }
    }
  }

  void check_contract_messages(const FileContext& file,
                               const std::vector<Token>& toks,
                               std::vector<Finding>& out) const {
    static const std::set<std::string, std::less<>> kMsgMacros = {
        "RRFD_REQUIRE_MSG", "RRFD_ENSURE_MSG"};
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != TokKind::kIdent ||
          kMsgMacros.count(toks[i].text) == 0 ||
          !is_punct(toks[i + 1], "(")) {
        continue;
      }
      // Find the last top-level argument.
      int depth = 0;
      std::size_t last_arg_begin = i + 2;
      std::size_t close = 0;
      for (std::size_t j = i + 1; j < toks.size(); ++j) {
        const Token& t = toks[j];
        if (is_punct(t, "(") || is_punct(t, "[") || is_punct(t, "{")) ++depth;
        if (is_punct(t, ")") || is_punct(t, "]") || is_punct(t, "}")) {
          --depth;
          if (depth == 0) {
            close = j;
            break;
          }
        }
        if (depth == 1 && is_punct(t, ",")) last_arg_begin = j + 1;
      }
      if (close == 0) continue;
      // Empty iff the argument is string literals with no content.
      bool all_strings = close > last_arg_begin;
      bool any_content = false;
      for (std::size_t j = last_arg_begin; j < close; ++j) {
        if (toks[j].kind != TokKind::kString) {
          all_strings = false;
          break;
        }
        if (!toks[j].text.empty()) any_content = true;
      }
      if (all_strings && !any_content) {
        add(out, *this, file, toks[i],
            toks[i].text + " with an empty message defeats the point of the "
                           "_MSG variant");
      }
    }
  }
};

// ---------------------------------------------------------------------------
// Shared helpers for the concurrency-contract rules (PR 10): the mutex
// type vocabulary and the declared-name collector the flow-aware rules
// resolve against. Single-file resolution only, same stance as
// no-unordered-iteration: a name declared in another header is invisible,
// and the rule fails open.

/// Capability types: the annotated wrappers plus the std primitives they
/// wrap (which survive only inside src/util/mutex.h).
const std::set<std::string, std::less<>>& mutex_types() {
  static const std::set<std::string, std::less<>> kTypes = {
      "mutex",          "shared_mutex",       "recursive_mutex",
      "timed_mutex",    "shared_timed_mutex", "recursive_timed_mutex",
      "Mutex",          "SharedMutex"};
  return kTypes;
}

/// Names declared (anywhere in this file) with a type from `types`,
/// including members, locals, and parameters, with cv/ref/ptr decoration
/// and comma declarator lists.
std::set<std::string, std::less<>> declared_names(
    const std::vector<Token>& toks,
    const std::set<std::string, std::less<>>& types) {
  std::set<std::string, std::less<>> names;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent || types.count(toks[i].text) == 0) {
      continue;
    }
    std::size_t j = i + 1;
    if (j < toks.size() && is_punct(toks[j], "<")) {
      std::size_t past = scan_template_args(toks, j);
      if (past == j) continue;  // unbalanced; not a declaration
      j = past;
    }
    while (j < toks.size()) {
      while (j < toks.size() &&
             (is_punct(toks[j], "&") || is_punct(toks[j], "*") ||
              is_ident(toks[j], "const"))) {
        ++j;
      }
      if (j >= toks.size() || toks[j].kind != TokKind::kIdent) break;
      names.insert(toks[j].text);
      ++j;
      if (j < toks.size() && is_punct(toks[j], ",")) {
        ++j;
        continue;
      }
      break;
    }
  }
  return names;
}

// ---------------------------------------------------------------------------
// guarded-member

class GuardedMember final : public Rule {
 public:
  std::string_view name() const override { return "guarded-member"; }
  std::string_view description() const override {
    return "a class holding a mutex must annotate every other mutable "
           "data member with RRFD_GUARDED_BY (or carry a justified "
           "suppression naming the external invariant)";
  }
  void check(const FileContext& file, std::vector<Finding>& out) const override {
    const auto& toks = file.lexed.tokens;

    struct Ctx {
      bool is_class = false;
      std::vector<Span> spans;
      std::size_t span_begin = 0;
      bool span_braced = false;
    };
    std::vector<Ctx> stack;
    bool pending_class = false;   // saw class/struct/union, awaiting '{'
    int pending_parens = 0;

    const auto top_is_class = [&] {
      return !stack.empty() && stack.back().is_class;
    };
    const auto finalize_span = [&](std::size_t end, bool braced) {
      Ctx& c = stack.back();
      if (end > c.span_begin) c.spans.push_back({c.span_begin, end, braced});
      c.span_begin = end + 1;
      c.span_braced = false;
    };

    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind == TokKind::kPreproc) continue;
      // template <...> parameter lists spell `class T`; skip them whole.
      if (is_ident(t, "template") && i + 1 < toks.size() &&
          is_punct(toks[i + 1], "<")) {
        std::size_t past = scan_template_args(toks, i + 1);
        if (past != i + 1) {
          i = past - 1;
          continue;
        }
      }
      if ((is_ident(t, "class") || is_ident(t, "struct") ||
           is_ident(t, "union")) &&
          !is_ident(tok_at(toks, static_cast<std::ptrdiff_t>(i) - 1),
                    "enum")) {
        pending_class = true;
        pending_parens = 0;
        continue;
      }
      if (pending_class) {
        if (is_punct(t, "(")) ++pending_parens;
        if (is_punct(t, ")")) --pending_parens;
        if (is_punct(t, ";") && pending_parens == 0) {
          pending_class = false;  // forward declaration
          continue;
        }
      }
      if (is_punct(t, "{")) {
        Ctx ctx;
        ctx.is_class = pending_class;
        ctx.span_begin = i + 1;
        stack.push_back(ctx);
        pending_class = false;
        continue;
      }
      if (is_punct(t, "}")) {
        if (stack.empty()) continue;
        Ctx closed = std::move(stack.back());
        stack.pop_back();
        if (closed.is_class) {
          if (closed.span_begin < i) {
            closed.spans.push_back({closed.span_begin, i, false});
          }
          evaluate_class(file, toks, closed.spans, out);
        }
        // Back inside a class: the group we just closed ends the member
        // declaration it belongs to (function body / nested type).
        if (top_is_class()) finalize_span(i, /*braced=*/true);
        continue;
      }
      if (!top_is_class()) continue;
      if (is_punct(t, ";")) {
        finalize_span(i, /*braced=*/false);
        continue;
      }
      if (t.kind == TokKind::kIdent &&
          (t.text == "public" || t.text == "private" ||
           t.text == "protected") &&
          is_punct(tok_at(toks, static_cast<std::ptrdiff_t>(i) + 1), ":")) {
        stack.back().span_begin = i + 2;
        stack.back().span_braced = false;
        ++i;
        continue;
      }
    }
  }

 private:
  /// One declaration span inside a class body: [begin, end) token
  /// indices, `braced` when the span was closed by a {...} group (a
  /// function definition, nested type, or brace initializer) rather
  /// than by ';'. Braced spans are never judged -- the rule fails open.
  struct Span {
    std::size_t begin, end;
    bool braced;
  };

  /// Idents that make a span exempt wherever they appear at top level:
  /// internally synchronized or immutable members need no guard.
  static bool exempt_ident(const std::string& text) {
    static const std::set<std::string, std::less<>> kExempt = {
        "atomic",       "atomic_flag",
        "condition_variable", "condition_variable_any",
        "CondVar",      "once_flag",
        "static",       "constexpr",
        "const",        "friend",
        "using",        "typedef",
        "operator",     "enum",
        "class",        "struct",
        "union",        "template"};
    return kExempt.count(text) > 0;
  }

  void evaluate_class(const FileContext& file, const std::vector<Token>& toks,
                      const std::vector<Span>& spans,
                      std::vector<Finding>& out) const {
    // Does any unbraced span declare a mutex member? (Braced spans are
    // method bodies; a local mutex inside one is not a class capability.)
    bool has_mutex = false;
    for (const Span& s : spans) {
      if (s.braced) continue;
      for (std::size_t i = s.begin; i < s.end; ++i) {
        if (toks[i].kind == TokKind::kIdent &&
            mutex_types().count(toks[i].text) > 0) {
          has_mutex = true;
          break;
        }
      }
      if (has_mutex) break;
    }
    if (!has_mutex) return;

    for (const Span& s : spans) {
      if (s.braced || s.end <= s.begin) continue;
      const Token* name_tok = nullptr;
      bool annotated = false, exempt = false, function = false;
      for (std::size_t i = s.begin; i < s.end; ++i) {
        const Token& t = toks[i];
        if (is_punct(t, "<")) {
          std::size_t past = scan_template_args(toks, i);
          if (past != i) {
            i = past - 1;
            continue;
          }
        }
        if (is_punct(t, "=")) break;  // default initializer: decl is done
        if (t.kind != TokKind::kIdent) {
          if (is_punct(t, "~")) function = true;  // destructor decl
          continue;
        }
        if (t.text == "RRFD_GUARDED_BY" || t.text == "RRFD_PT_GUARDED_BY") {
          annotated = true;
          break;
        }
        if (exempt_ident(t.text) || mutex_types().count(t.text) > 0) {
          exempt = true;
          break;
        }
        if (is_punct(tok_at(toks, static_cast<std::ptrdiff_t>(i) + 1), "(")) {
          function = true;  // declarator followed by a parameter list
          break;
        }
        name_tok = &t;
      }
      if (annotated || exempt || function || name_tok == nullptr) continue;
      add(out, *this, file, *name_tok,
          "member '" + name_tok->text +
              "' of a mutex-holding class has no RRFD_GUARDED_BY "
              "annotation");
    }
  }
};

// ---------------------------------------------------------------------------
// raw-lock-call

class RawLockCall final : public Rule {
 public:
  std::string_view name() const override { return "raw-lock-call"; }
  std::string_view description() const override {
    return "naked .lock()/.unlock() on a declared mutex is banned: use "
           "scoped guards (MutexLock/WriterLock/ReaderLock) so no early "
           "return or exception can leak a hold";
  }
  bool applies_to(std::string_view path) const override {
    // The annotated wrappers are the one sanctioned implementation site.
    return path != "src/util/mutex.h";
  }
  void check(const FileContext& file, std::vector<Finding>& out) const override {
    const auto& toks = file.lexed.tokens;
    const auto names = declared_names(toks, mutex_types());
    if (names.empty()) return;
    static const std::set<std::string, std::less<>> kLockCalls = {
        "lock",        "unlock",        "try_lock",
        "lock_shared", "unlock_shared", "try_lock_shared"};
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::kIdent || kLockCalls.count(t.text) == 0) {
        continue;
      }
      std::ptrdiff_t p = static_cast<std::ptrdiff_t>(i);
      if (!is_punct(tok_at(toks, p + 1), "(")) continue;
      const Token& access = tok_at(toks, p - 1);
      if (!is_punct(access, ".") && !is_punct(access, "->")) continue;
      const Token& recv = tok_at(toks, p - 2);
      if (recv.kind != TokKind::kIdent || names.count(recv.text) == 0) {
        continue;
      }
      add(out, *this, file, t,
          "naked " + recv.text + "." + t.text +
              "(): hold mutexes through a scoped guard");
    }
  }
};

// ---------------------------------------------------------------------------
// no-detached-thread

class NoDetachedThread final : public Rule {
 public:
  std::string_view name() const override { return "no-detached-thread"; }
  std::string_view description() const override {
    return "detached threads outlive every invariant silently: each "
           "std::thread must be joined or owned by a pool that joins it";
  }
  void check(const FileContext& file, std::vector<Finding>& out) const override {
    const auto& toks = file.lexed.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (!is_ident(toks[i], "detach")) continue;
      std::ptrdiff_t p = static_cast<std::ptrdiff_t>(i);
      if (!is_punct(tok_at(toks, p + 1), "(")) continue;
      const Token& access = tok_at(toks, p - 1);
      if (!is_punct(access, ".") && !is_punct(access, "->")) continue;
      add(out, *this, file, toks[i],
          "detach() abandons the thread: join it or hand it to a pool");
    }
  }
};

// ---------------------------------------------------------------------------
// atomic-justified

class AtomicJustified final : public Rule {
 public:
  std::string_view name() const override { return "atomic-justified"; }
  std::string_view description() const override {
    return "non-default memory orders need a justified 'rrfd-lint: "
           "allow(atomic-justified)' stating why the weaker ordering is "
           "sound";
  }
  void check(const FileContext& file, std::vector<Finding>& out) const override {
    static const std::set<std::string, std::less<>> kWeakOrders = {
        "memory_order_relaxed", "memory_order_consume",
        "memory_order_acquire", "memory_order_release",
        "memory_order_acq_rel"};
    static const std::set<std::string, std::less<>> kWeakSuffixes = {
        "relaxed", "consume", "acquire", "release", "acq_rel"};
    const auto& toks = file.lexed.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::kIdent) continue;
      std::string spelled;
      if (kWeakOrders.count(t.text) > 0) {
        spelled = t.text;
      } else if (t.text == "memory_order") {
        // C++20 scoped spelling: memory_order::relaxed.
        std::ptrdiff_t p = static_cast<std::ptrdiff_t>(i);
        const Token& suffix = tok_at(toks, p + 2);
        if (!is_punct(tok_at(toks, p + 1), "::") ||
            suffix.kind != TokKind::kIdent ||
            kWeakSuffixes.count(suffix.text) == 0) {
          continue;
        }
        spelled = "memory_order::" + suffix.text;
      } else {
        continue;
      }
      add(out, *this, file, t,
          "explicit weak ordering " + spelled +
              ": justify why it is sound (seq_cst is the default)");
    }
  }
};

}  // namespace

std::string FileContext::snippet(int line) const {
  if (line < 1 || line > static_cast<int>(lines.size())) return {};
  const std::string& raw = lines[static_cast<std::size_t>(line - 1)];
  std::size_t b = raw.find_first_not_of(" \t");
  if (b == std::string::npos) return {};
  std::size_t e = raw.find_last_not_of(" \t\r");
  return raw.substr(b, e - b + 1);
}

const std::vector<const Rule*>& all_rules() {
  static const NoWallClock wall_clock;
  static const NoRawRandom raw_random;
  static const NoUnorderedIteration unordered_iteration;
  static const NoPointerOrder pointer_order;
  static const NoEnvSideband env_sideband;
  static const ContractHygiene contract_hygiene;
  static const GuardedMember guarded_member;
  static const RawLockCall raw_lock_call;
  static const NoDetachedThread no_detached_thread;
  static const AtomicJustified atomic_justified;
  static const std::vector<const Rule*> rules = {
      &wall_clock,     &raw_random,    &unordered_iteration,
      &pointer_order,  &env_sideband,  &contract_hygiene,
      &guarded_member, &raw_lock_call, &no_detached_thread,
      &atomic_justified};
  return rules;
}

}  // namespace rrfd::lint
