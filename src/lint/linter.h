// rrfd_lint driver: suppressions, baseline, and reporting.
//
// Suppression contract (DESIGN.md "Static analysis & determinism lint"):
// a finding is silenced by a comment on the same line or the line above:
//
//   // rrfd-lint: allow(no-wall-clock) -- trace timestamps are display-only
//
// The justification after the dash is mandatory; an allow() without one is
// itself a finding (rule "bad-suppression"), as is an allow() that no
// longer matches anything. A justification may wrap onto the comment
// lines that immediately follow the allow(); the suppression then guards
// the first code line after the whole block. Findings can also be parked
// in a checked-in
// baseline file, which CI only allows to shrink: an entry with no matching
// live finding is stale and fails the run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lint/rules.h"

namespace rrfd::lint {

/// Rule id for defective or unused allow(...) comments. Not a registry
/// rule: emitted by the driver while resolving suppressions.
inline constexpr std::string_view kBadSuppressionRule = "bad-suppression";

/// One file's findings after inline-suppression resolution.
struct LintedFile {
  std::vector<Finding> active;      // unsuppressed, incl. bad-suppression
  std::vector<Finding> suppressed;  // silenced by a justified allow(...)
};

/// Lints one in-memory source file. `path` must be repo-relative with
/// forward slashes; it drives per-rule scoping.
LintedFile lint_source(const std::string& path, const std::string& source);

/// Stable fingerprint used by the baseline: FNV-1a over rule, path, and
/// the whitespace-normalized source line. Line numbers are deliberately
/// excluded so unrelated edits above a parked finding do not invalidate
/// its entry.
std::uint64_t finding_fingerprint(const Finding& f);

/// Renders the baseline line for a finding: "rule|path|fingerprint-hex".
std::string baseline_entry(const Finding& f);

struct Baseline {
  /// Entries as written, one per parked finding instance (multiset
  /// semantics: two identical lines park two identical findings).
  std::vector<std::string> entries;
  /// Lines that could not be parsed (reported, never silently dropped).
  std::vector<std::string> malformed;
};

/// Parses a baseline file: '#' comments and blank lines ignored.
Baseline parse_baseline(const std::string& text);

/// Aggregate result over a run; `unsuppressed` non-empty or
/// `stale_baseline`/`malformed_baseline` non-empty means the run fails.
struct RunResult {
  int files = 0;
  std::vector<Finding> unsuppressed;
  std::vector<Finding> suppressed;
  std::vector<Finding> baselined;
  std::vector<std::string> stale_baseline;
  std::vector<std::string> malformed_baseline;

  bool ok() const {
    return unsuppressed.empty() && stale_baseline.empty() &&
           malformed_baseline.empty();
  }
};

/// Lints every (path, source) pair and resolves the baseline.
RunResult run_lint(
    const std::vector<std::pair<std::string, std::string>>& files,
    const Baseline& baseline);

/// Human-readable report (one finding per line, then a summary).
std::string render_text(const RunResult& result);

/// JSONL report, one record per finding plus a trailing summary record,
/// schema "rrfd-lint-v1" (same discipline as BENCH_rrfd.json).
std::string render_json(const RunResult& result);

/// SARIF 2.1.0 report (one run, one result per unsuppressed finding,
/// suppressed/baselined findings carried with a suppression record) for
/// code-scanning upload.
std::string render_sarif(const RunResult& result);

}  // namespace rrfd::lint
