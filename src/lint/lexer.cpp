#include "lint/lexer.h"

#include <cctype>
#include <cstddef>

namespace rrfd::lint {
namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return {};
  std::size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

/// Cursor over the source with 1-based line/column bookkeeping.
class Cursor {
 public:
  explicit Cursor(const std::string& src) : src_(src) {}

  bool done() const { return pos_ >= src_.size(); }
  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  int line() const { return line_; }
  int col() const { return col_; }

  char advance() {
    char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

 private:
  const std::string& src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

class Lexer {
 public:
  explicit Lexer(const std::string& src) : cur_(src) {}

  LexResult run() {
    while (!cur_.done()) step();
    return std::move(out_);
  }

 private:
  void step() {
    char c = cur_.peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      cur_.advance();
      return;
    }
    if (c == '\n') {
      cur_.advance();
      at_line_start_ = true;
      return;
    }
    if (c == '/' && cur_.peek(1) == '/') return lex_line_comment();
    if (c == '/' && cur_.peek(1) == '*') return lex_block_comment();
    if (c == '#' && at_line_start_) return lex_preproc();
    at_line_start_ = false;
    if (is_ident_start(c)) return lex_ident_or_prefixed_literal();
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(cur_.peek(1))))) {
      return lex_number();
    }
    if (c == '"') return lex_string(/*raw=*/false);
    if (c == '\'') return lex_char();
    lex_punct();
  }

  // A `//` comment extends across backslash-newline splices, exactly as
  // translation phase 2 dictates: `// text \` swallows the next line into
  // the comment. Missing this is a real false-positive source -- the next
  // line is comment text, not code, and must never reach the rules.
  void lex_line_comment() {
    int line = cur_.line();
    cur_.advance();  // '/'
    cur_.advance();  // '/'
    std::string text;
    while (!cur_.done()) {
      if (cur_.peek() == '\\' && (cur_.peek(1) == '\n' ||
                                  (cur_.peek(1) == '\r' &&
                                   cur_.peek(2) == '\n'))) {
        cur_.advance();                        // backslash
        if (cur_.peek() == '\r') cur_.advance();
        if (!cur_.done()) cur_.advance();      // newline: comment continues
        text += ' ';
        continue;
      }
      if (cur_.peek() == '\n') break;
      text += cur_.advance();
    }
    out_.comments.push_back({trim(text), line, cur_.line()});
  }

  void lex_block_comment() {
    int line = cur_.line();
    cur_.advance();  // '/'
    cur_.advance();  // '*'
    std::string text;
    while (!cur_.done()) {
      if (cur_.peek() == '*' && cur_.peek(1) == '/') {
        cur_.advance();
        cur_.advance();
        break;
      }
      text += cur_.advance();
    }
    out_.comments.push_back({trim(text), line, cur_.line()});
    // A block comment does not interrupt a directive-start position, but
    // tracking that costs more than it buys; treat it as ordinary code.
    at_line_start_ = false;
  }

  // Consumes a whole directive, splicing backslash-newline continuations.
  // Comment text inside the directive is kept verbatim: directives are
  // matched as whole strings ("#pragma once"), never sub-lexed.
  void lex_preproc() {
    Token tok{TokKind::kPreproc, "", cur_.line(), cur_.col()};
    while (!cur_.done()) {
      if (cur_.peek() == '\\' && (cur_.peek(1) == '\n' ||
                                  (cur_.peek(1) == '\r' &&
                                   cur_.peek(2) == '\n'))) {
        cur_.advance();  // backslash
        while (!cur_.done() && cur_.peek() != '\n') cur_.advance();
        if (!cur_.done()) cur_.advance();  // newline: directive continues
        tok.text += ' ';
        continue;
      }
      if (cur_.peek() == '\n') break;
      tok.text += cur_.advance();
    }
    tok.text = trim(tok.text);
    out_.tokens.push_back(std::move(tok));
  }

  void lex_ident_or_prefixed_literal() {
    Token tok{TokKind::kIdent, "", cur_.line(), cur_.col()};
    while (!cur_.done() && is_ident_char(cur_.peek())) {
      tok.text += cur_.advance();
    }
    // String/char literal prefixes: R"(..)", u8"..", L'c', and friends.
    const std::string& id = tok.text;
    if (cur_.peek() == '"') {
      if (id == "R" || id == "u8R" || id == "uR" || id == "UR" ||
          id == "LR") {
        return lex_string(/*raw=*/true);
      }
      if (id == "u8" || id == "u" || id == "U" || id == "L") {
        return lex_string(/*raw=*/false);
      }
    }
    if (cur_.peek() == '\'' &&
        (id == "u8" || id == "u" || id == "U" || id == "L")) {
      return lex_char();
    }
    out_.tokens.push_back(std::move(tok));
  }

  void lex_number() {
    Token tok{TokKind::kNumber, "", cur_.line(), cur_.col()};
    // Good enough for lint purposes: digits, digit separators, hex/exponent
    // letters, and a sign directly after an exponent marker.
    while (!cur_.done()) {
      char c = cur_.peek();
      if (is_ident_char(c) || c == '\'' || c == '.') {
        tok.text += cur_.advance();
        continue;
      }
      if ((c == '+' || c == '-') && !tok.text.empty()) {
        char prev = tok.text.back();
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          tok.text += cur_.advance();
          continue;
        }
      }
      break;
    }
    out_.tokens.push_back(std::move(tok));
  }

  void lex_string(bool raw) {
    Token tok{TokKind::kString, "", cur_.line(), cur_.col()};
    cur_.advance();  // opening quote
    if (raw) {
      std::string delim;
      while (!cur_.done() && cur_.peek() != '(') delim += cur_.advance();
      if (!cur_.done()) cur_.advance();  // '('
      const std::string close = ")" + delim + "\"";
      std::string content;
      while (!cur_.done()) {
        content += cur_.advance();
        if (content.size() >= close.size() &&
            content.compare(content.size() - close.size(), close.size(),
                            close) == 0) {
          content.erase(content.size() - close.size());
          break;
        }
      }
      tok.text = std::move(content);
    } else {
      while (!cur_.done() && cur_.peek() != '"' && cur_.peek() != '\n') {
        char c = cur_.advance();
        if (c == '\\' && !cur_.done()) {
          tok.text += c;
          tok.text += cur_.advance();
          continue;
        }
        tok.text += c;
      }
      if (!cur_.done() && cur_.peek() == '"') cur_.advance();
    }
    out_.tokens.push_back(std::move(tok));
  }

  void lex_char() {
    Token tok{TokKind::kChar, "", cur_.line(), cur_.col()};
    cur_.advance();  // opening quote
    while (!cur_.done() && cur_.peek() != '\'' && cur_.peek() != '\n') {
      char c = cur_.advance();
      if (c == '\\' && !cur_.done()) {
        tok.text += c;
        tok.text += cur_.advance();
        continue;
      }
      tok.text += c;
    }
    if (!cur_.done() && cur_.peek() == '\'') cur_.advance();
    out_.tokens.push_back(std::move(tok));
  }

  void lex_punct() {
    Token tok{TokKind::kPunct, "", cur_.line(), cur_.col()};
    char c = cur_.advance();
    tok.text += c;
    char n = cur_.peek();
    // Two-character operators the rules care about. '<<'/'>>' are left as
    // two tokens so template-argument scans can balance '<'/'>' directly.
    if ((c == ':' && n == ':') || (c == '-' && n == '>') ||
        (c == '=' && n == '=') || (c == '!' && n == '=') ||
        (c == '<' && n == '=') || (c == '>' && n == '=') ||
        (c == '&' && n == '&') || (c == '|' && n == '|')) {
      tok.text += cur_.advance();
    }
    out_.tokens.push_back(std::move(tok));
  }

  Cursor cur_;
  LexResult out_;
  bool at_line_start_ = true;
};

}  // namespace

LexResult lex(const std::string& source) { return Lexer(source).run(); }

}  // namespace rrfd::lint
