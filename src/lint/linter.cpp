#include "lint/linter.h"

#include <algorithm>
#include <cstddef>
#include <map>
#include <sstream>
#include <string>

namespace rrfd::lint {
namespace {

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return {};
  std::size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  lines.push_back(std::move(cur));
  return lines;
}

bool is_header_path(const std::string& path) {
  auto ends_with = [&](std::string_view suffix) {
    return path.size() >= suffix.size() &&
           path.compare(path.size() - suffix.size(), suffix.size(), suffix) ==
               0;
  };
  return ends_with(".h") || ends_with(".hpp");
}

/// A parsed `rrfd-lint: allow(rule, ...)` comment.
struct Suppression {
  std::vector<std::string> rules;
  int line = 0;        // line the comment starts on
  int anchor_end = 0;  // last line of the comment block it heads
  bool justified = false;
  bool used = false;
};

/// Extracts suppressions from the file's comments. A comment that
/// mentions "rrfd-lint:" but does not parse as a well-formed allow()
/// yields an unjustified suppression (rules empty), which the caller
/// reports as bad-suppression. A justification may continue over the
/// comment lines that immediately follow; the suppression then anchors
/// to the first code line after the whole block (`anchor_end + 1`).
std::vector<Suppression> parse_suppressions(
    const LexResult& lexed, const std::vector<std::string>& lines) {
  std::vector<Suppression> result;
  const std::string kTag = "rrfd-lint:";
  for (const Comment& c : lexed.comments) {
    // Only comments that *start* with the tag are suppressions; a mention
    // mid-prose (docs quoting the syntax) is not.
    if (c.text.compare(0, kTag.size(), kTag) != 0) continue;
    Suppression sup;
    sup.line = c.line;
    sup.anchor_end = c.end_line > 0 ? c.end_line : c.line;
    std::string rest = trim(c.text.substr(kTag.size()));
    const std::string kAllow = "allow(";
    if (rest.compare(0, kAllow.size(), kAllow) != 0) {
      result.push_back(std::move(sup));  // malformed: not allow(...)
      continue;
    }
    std::size_t close = rest.find(')', kAllow.size());
    if (close == std::string::npos) {
      result.push_back(std::move(sup));
      continue;
    }
    // Comma-separated rule list.
    std::string list = rest.substr(kAllow.size(), close - kAllow.size());
    std::istringstream is(list);
    std::string item;
    while (std::getline(is, item, ',')) {
      item = trim(item);
      if (!item.empty()) sup.rules.push_back(item);
    }
    // Justification: everything after the closing paren, minus a leading
    // separator (em dash, --, -, or :).
    std::string just = trim(rest.substr(close + 1));
    for (std::string_view sep : {"\xe2\x80\x94", "--", "-", ":"}) {
      if (just.compare(0, sep.size(), sep) == 0) {
        just = trim(just.substr(sep.size()));
        break;
      }
    }
    sup.justified = !sup.rules.empty() && !just.empty();
    result.push_back(std::move(sup));
  }
  // Extend each anchor through the comment-only lines directly below the
  // allow(): a justification too long for one line wraps onto further
  // `//` lines, and the suppression still guards the code line after the
  // block. A line that starts a new rrfd-lint tag ends the block.
  for (Suppression& sup : result) {
    while (sup.anchor_end >= 1 &&
           sup.anchor_end < static_cast<int>(lines.size())) {
      std::string next = trim(lines[static_cast<std::size_t>(sup.anchor_end)]);
      if (next.compare(0, 2, "//") != 0) break;
      std::string body = next.substr(2);
      std::size_t b = body.find_first_not_of("/ \t");
      if (b != std::string::npos &&
          body.compare(b, kTag.size(), kTag) == 0) {
        break;
      }
      ++sup.anchor_end;
    }
  }
  return result;
}

std::uint64_t fnv1a64(std::string_view data, std::uint64_t h) {
  for (char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string normalize_ws(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == ' ' || c == '\t') {
      if (!out.empty() && out.back() != ' ') out += ' ';
    } else {
      out += c;
    }
  }
  return trim(out);
}

std::string hex16(std::uint64_t v) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[v & 0xf];
    v >>= 4;
  }
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kDigits = "0123456789abcdef";
          out += "\\u00";
          out += kDigits[(c >> 4) & 0xf];
          out += kDigits[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

void append_finding_json(std::ostringstream& os, const Finding& f,
                         std::string_view status) {
  os << "{\"schema\":\"rrfd-lint-v1\",\"kind\":\"finding\",\"rule\":\""
     << json_escape(f.rule) << "\",\"path\":\"" << json_escape(f.path)
     << "\",\"line\":" << f.line << ",\"col\":" << f.col << ",\"status\":\""
     << status << "\",\"message\":\"" << json_escape(f.message)
     << "\",\"snippet\":\"" << json_escape(f.snippet) << "\",\"fingerprint\":\""
     << hex16(finding_fingerprint(f)) << "\"}\n";
}

}  // namespace

std::uint64_t finding_fingerprint(const Finding& f) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = fnv1a64(f.rule, h);
  h = fnv1a64("|", h);
  h = fnv1a64(f.path, h);
  h = fnv1a64("|", h);
  h = fnv1a64(normalize_ws(f.snippet), h);
  return h;
}

std::string baseline_entry(const Finding& f) {
  return f.rule + "|" + f.path + "|" + hex16(finding_fingerprint(f));
}

Baseline parse_baseline(const std::string& text) {
  Baseline baseline;
  for (const std::string& raw : split_lines(text)) {
    std::string line = trim(raw);
    if (line.empty() || line[0] == '#') continue;
    // rule|path|16-hex-digit fingerprint
    std::size_t p1 = line.find('|');
    std::size_t p2 = p1 == std::string::npos ? p1 : line.find('|', p1 + 1);
    bool well_formed = p2 != std::string::npos &&
                       line.size() == p2 + 1 + 16 &&
                       line.find('|', p2 + 1) == std::string::npos;
    if (well_formed) {
      baseline.entries.push_back(line);
    } else {
      baseline.malformed.push_back(line);
    }
  }
  return baseline;
}

LintedFile lint_source(const std::string& path, const std::string& source) {
  FileContext file;
  file.path = path;
  file.lines = split_lines(source);
  file.lexed = lex(source);
  file.is_header = is_header_path(path);

  std::vector<Finding> raw;
  for (const Rule* rule : all_rules()) {
    if (rule->applies_to(path)) rule->check(file, raw);
  }
  std::stable_sort(raw.begin(), raw.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.line != b.line) return a.line < b.line;
                     return a.col < b.col;
                   });

  std::vector<Suppression> sups = parse_suppressions(file.lexed, file.lines);
  LintedFile out;
  for (Finding& f : raw) {
    Suppression* hit = nullptr;
    for (Suppression& s : sups) {
      // Same line as the allow(), or the first code line after its
      // comment block (single-line comments: the line directly below).
      if (s.line != f.line && s.anchor_end + 1 != f.line) continue;
      if (std::find(s.rules.begin(), s.rules.end(), f.rule) == s.rules.end()) {
        continue;
      }
      s.used = true;  // even an unjustified allow "claims" its finding
      hit = &s;
      break;
    }
    if (hit != nullptr && hit->justified) {
      out.suppressed.push_back(std::move(f));
    } else {
      out.active.push_back(std::move(f));
    }
  }
  for (const Suppression& s : sups) {
    std::string message;
    if (s.rules.empty()) {
      message = "malformed rrfd-lint comment: expected "
                "'rrfd-lint: allow(<rule>) -- <justification>'";
    } else if (!s.justified) {
      message = "suppression without a justification (add '-- <why>')";
    } else if (!s.used) {
      message = "suppression matches no finding on its own line or on the "
                "line after its comment block; remove it";
    } else {
      continue;
    }
    out.active.push_back(Finding{std::string(kBadSuppressionRule), path,
                                 s.line, 1, std::move(message),
                                 file.snippet(s.line)});
  }
  std::stable_sort(out.active.begin(), out.active.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.line < b.line;
                   });
  return out;
}

RunResult run_lint(
    const std::vector<std::pair<std::string, std::string>>& files,
    const Baseline& baseline) {
  RunResult result;
  result.malformed_baseline = baseline.malformed;

  // Multiset of unconsumed baseline entries.
  std::map<std::string, int> parked;
  for (const std::string& e : baseline.entries) ++parked[e];

  for (const auto& [path, source] : files) {
    ++result.files;
    LintedFile linted = lint_source(path, source);
    for (Finding& f : linted.suppressed) {
      result.suppressed.push_back(std::move(f));
    }
    for (Finding& f : linted.active) {
      auto it = parked.find(baseline_entry(f));
      if (it != parked.end() && it->second > 0) {
        --it->second;
        result.baselined.push_back(std::move(f));
      } else {
        result.unsuppressed.push_back(std::move(f));
      }
    }
  }
  for (const auto& [entry, count] : parked) {
    for (int i = 0; i < count; ++i) result.stale_baseline.push_back(entry);
  }
  return result;
}

std::string render_text(const RunResult& result) {
  std::ostringstream os;
  for (const Finding& f : result.unsuppressed) {
    os << f.path << ":" << f.line << ":" << f.col << ": [" << f.rule << "] "
       << f.message;
    if (!f.snippet.empty()) os << "\n    " << f.snippet;
    os << "\n";
  }
  for (const std::string& e : result.malformed_baseline) {
    os << "baseline: malformed entry '" << e << "'\n";
  }
  for (const std::string& e : result.stale_baseline) {
    os << "baseline: stale entry '" << e
       << "' no longer matches any finding; remove it (shrink-only)\n";
  }
  os << "rrfd_lint: " << result.files << " files, "
     << result.unsuppressed.size() << " findings, "
     << result.suppressed.size() << " suppressed, "
     << result.baselined.size() << " baselined, "
     << result.stale_baseline.size() + result.malformed_baseline.size()
     << " baseline errors\n";
  return os.str();
}

std::string render_json(const RunResult& result) {
  std::ostringstream os;
  for (const Finding& f : result.unsuppressed) {
    append_finding_json(os, f, "unsuppressed");
  }
  for (const Finding& f : result.suppressed) {
    append_finding_json(os, f, "suppressed");
  }
  for (const Finding& f : result.baselined) {
    append_finding_json(os, f, "baselined");
  }
  for (const std::string& e : result.stale_baseline) {
    os << "{\"schema\":\"rrfd-lint-v1\",\"kind\":\"stale_baseline\",\"entry\":\""
       << json_escape(e) << "\"}\n";
  }
  for (const std::string& e : result.malformed_baseline) {
    os << "{\"schema\":\"rrfd-lint-v1\",\"kind\":\"malformed_baseline\","
          "\"entry\":\""
       << json_escape(e) << "\"}\n";
  }
  os << "{\"schema\":\"rrfd-lint-v1\",\"kind\":\"summary\",\"files\":"
     << result.files << ",\"findings\":" << result.unsuppressed.size()
     << ",\"suppressed\":" << result.suppressed.size()
     << ",\"baselined\":" << result.baselined.size()
     << ",\"stale_baseline\":" << result.stale_baseline.size()
     << ",\"malformed_baseline\":" << result.malformed_baseline.size()
     << ",\"ok\":" << (result.ok() ? "true" : "false") << "}\n";
  return os.str();
}

namespace {

/// One SARIF result object. `suppression_kind` empty means the finding is
/// live; "inSource" / "external" mark allow()-silenced and baselined
/// findings so code scanning shows them as dismissed, not open.
void append_sarif_result(std::ostringstream& os, const Finding& f,
                         std::string_view level,
                         std::string_view suppression_kind, bool first) {
  if (!first) os << ",";
  os << "{\"ruleId\":\"" << json_escape(f.rule) << "\",\"level\":\"" << level
     << "\",\"message\":{\"text\":\"" << json_escape(f.message)
     << "\"},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":"
        "{\"uri\":\""
     << json_escape(f.path)
     << "\",\"uriBaseId\":\"SRCROOT\"},\"region\":{\"startLine\":"
     << (f.line > 0 ? f.line : 1) << ",\"startColumn\":"
     << (f.col > 0 ? f.col : 1)
     << "}}}],\"partialFingerprints\":{\"rrfdLintFingerprint/v1\":\""
     << hex16(finding_fingerprint(f)) << "\"}";
  if (!suppression_kind.empty()) {
    os << ",\"suppressions\":[{\"kind\":\"" << suppression_kind << "\"}]";
  }
  os << "}";
}

}  // namespace

std::string render_sarif(const RunResult& result) {
  std::ostringstream os;
  os << "{\"$schema\":\"https://raw.githubusercontent.com/oasis-tcs/"
        "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\","
        "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{"
        "\"name\":\"rrfd_lint\",\"rules\":[";
  bool first = true;
  for (const Rule* rule : all_rules()) {
    if (!first) os << ",";
    first = false;
    os << "{\"id\":\"" << json_escape(std::string(rule->name()))
       << "\",\"shortDescription\":{\"text\":\""
       << json_escape(std::string(rule->description())) << "\"}}";
  }
  os << ",{\"id\":\"" << kBadSuppressionRule
     << "\",\"shortDescription\":{\"text\":\"defective or unused "
        "rrfd-lint allow() comment\"}}]}},\"results\":[";
  first = true;
  for (const Finding& f : result.unsuppressed) {
    append_sarif_result(os, f, "error", "", first);
    first = false;
  }
  for (const Finding& f : result.suppressed) {
    append_sarif_result(os, f, "note", "inSource", first);
    first = false;
  }
  for (const Finding& f : result.baselined) {
    append_sarif_result(os, f, "note", "external", first);
    first = false;
  }
  os << "]}]}\n";
  return os.str();
}

}  // namespace rrfd::lint
