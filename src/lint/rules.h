// Rule registry for rrfd_lint.
//
// Each rule is a pure function over one lexed file: it receives the token
// stream plus raw lines and appends findings. Rules never see comments or
// string interiors except where they ask for them explicitly, and they
// carry their own path scoping (e.g. no-wall-clock exempts bench/). The
// rule list is the contract documented in DESIGN.md "Static analysis &
// determinism lint" -- additions there and here must move together.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "lint/lexer.h"

namespace rrfd::lint {

/// One lexed source file, paths repo-relative with forward slashes
/// ("src/util/rng.h"). `lines` is the raw text split on '\n' (1-based
/// access via context_line); findings quote it for snippets.
struct FileContext {
  std::string path;
  std::vector<std::string> lines;
  LexResult lexed;
  bool is_header = false;

  /// The trimmed source text of a 1-based line (empty if out of range).
  std::string snippet(int line) const;
};

struct Finding {
  std::string rule;
  std::string path;
  int line = 0;
  int col = 0;
  std::string message;
  std::string snippet;
};

class Rule {
 public:
  virtual ~Rule() = default;

  /// Stable kebab-case rule id, used in allow(...) suppressions, the
  /// baseline file, and --json output.
  virtual std::string_view name() const = 0;
  virtual std::string_view description() const = 0;

  /// Path-based scoping; returning false skips the file entirely.
  virtual bool applies_to(std::string_view path) const {
    (void)path;
    return true;
  }

  virtual void check(const FileContext& file,
                     std::vector<Finding>& out) const = 0;
};

/// All registered rules, in stable (report) order. The objects live for
/// the program's lifetime.
const std::vector<const Rule*>& all_rules();

}  // namespace rrfd::lint
