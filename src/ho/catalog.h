// Named derived models and their placement in the submodel lattice.
//
// The bridge's payoff is that models are *generated*: standard_catalog()
// compiles a set of operational specs into predicates, reference_zoo()
// exposes the hand-written models bench_lattice ranks (E13), and
// place_in_zoo() runs the exact engine both ways against every zoo
// member, so a derived model lands in the same lattice the paper draws
// for the hand-written ones. ho_compile (tools/) emits the placement as
// JSONL; bench_lattice's E19 section prints it as a matrix.
#pragma once

#include <string>
#include <vector>

#include "core/predicate.h"
#include "core/submodel.h"

namespace rrfd::ho {

/// A compiled catalog entry: the canonical spec text and its predicate.
struct DerivedModel {
  std::string name;
  std::string spec;
  core::PredicatePtr pred;
};

/// Exemplar compositions, one per primitive family plus mixed ones.
/// Deterministic order; every entry round-trips through parse_spec().
std::vector<DerivedModel> standard_catalog();

/// A hand-written zoo model to place derived predicates against.
struct ZooModel {
  std::string name;
  core::PredicatePtr pred;
};

/// The nine models bench_lattice's E13 matrix ranks, same labels.
std::vector<ZooModel> reference_zoo();

/// One row of a placement: both implication directions between a derived
/// model and one zoo member, decided exactly.
struct Placement {
  std::string vs;        ///< zoo model label
  bool implies = false;     ///< derived => zoo (derived is a submodel)
  bool implied_by = false;  ///< zoo => derived (zoo is a submodel)
};

/// Places `derived` against every reference_zoo() member by exhaustive
/// implication at (n, rounds). `options` selects engine path / pruning /
/// symmetry / runner, so callers can route the decision through the
/// parallel sweep executor (sweep::shard_runner).
std::vector<Placement> place_in_zoo(const core::Predicate& derived, int n,
                                    core::Round rounds,
                                    const core::EnumOptions& options = {});

}  // namespace rrfd::ho
