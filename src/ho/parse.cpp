#include "ho/parse.h"

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.h"
#include "util/check.h"
#include "util/str.h"

namespace rrfd::ho {

namespace {

/// Hand-rolled recursive descent over the spec grammar. Positions are
/// 0-based byte offsets into the input, reported in every error.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Spec parse() {
    Spec spec = parse_call();
    skip_ws();
    fail_unless(pos_ == text_.size(), "trailing input after spec");
    validate(spec);
    return spec;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    detail::contract_fail(
        "spec parse", "well-formed spec text", __FILE__, __LINE__,
        cat("at offset ", pos_, ": ", what, " in \"", text_, "\""));
  }

  void fail_unless(bool ok, const std::string& what) const {
    if (!ok) fail(what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool peek_is(char c) {
    skip_ws();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  void expect(char c) {
    skip_ws();
    fail_unless(pos_ < text_.size() && text_[pos_] == c,
                cat("expected '", c, "'"));
    ++pos_;
  }

  static bool ident_char(char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_';
  }

  std::string parse_ident() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() && ident_char(text_[pos_])) ++pos_;
    fail_unless(pos_ > start, "expected a name");
    return text_.substr(start, pos_ - start);
  }

  int parse_int() {
    skip_ws();
    const std::size_t start = pos_;
    std::int64_t value = 0;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      value = value * 10 + (text_[pos_] - '0');
      fail_unless(value <= 1'000'000, "integer parameter too large");
      ++pos_;
    }
    fail_unless(pos_ > start, "expected an integer");
    return static_cast<int>(value);
  }

  std::uint64_t parse_set() {
    expect('{');
    std::uint64_t mask = 0;
    while (true) {
      const int p = parse_int();
      fail_unless(p < core::kMaxProcesses,
                  cat("process id ", p, " out of range"));
      mask |= std::uint64_t{1} << p;
      if (peek_is(',')) {
        expect(',');
        continue;
      }
      break;
    }
    expect('}');
    return mask;
  }

  std::uint64_t parse_keyword_set(const std::string& key) {
    const std::string got = parse_ident();
    fail_unless(got == key, cat("expected '", key, "='"));
    expect('=');
    return parse_set();
  }

  Spec parse_call() {
    const std::string name = parse_ident();
    expect('(');
    Spec spec = parse_args(name);
    expect(')');
    return spec;
  }

  Spec parse_args(const std::string& name) {
    if (name == "loss_cap") return loss_cap(parse_int());
    if (name == "mobile") return mobile(parse_int());
    if (name == "link_budget") return link_budget(parse_int());
    if (name == "faulty") return faulty(parse_int());
    if (name == "kernel") return kernel(parse_int());
    if (name == "delay") return delay(parse_int());
    if (name == "self_delivery") return self_delivery();
    if (name == "no_partition") return no_partition();
    if (name == "crash_only") return crash_only();
    if (name == "partition") {
      const std::uint64_t src = parse_keyword_set("src");
      expect(',');
      const std::uint64_t dst = parse_keyword_set("dst");
      return partition(src, dst);
    }
    if (name == "all") {
      std::vector<Spec> children;
      children.push_back(parse_call());
      while (peek_is(',')) {
        expect(',');
        children.push_back(parse_call());
      }
      return all(std::move(children));
    }
    if (name == "window") {
      const int lo = parse_int();
      expect(',');
      const int hi = parse_int();
      expect(',');
      return window(lo, hi, parse_call());
    }
    if (name == "eventually") return eventually(parse_call());
    fail(cat("unknown spec function '", name, "'"));
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Spec parse_spec(const std::string& text) { return Parser(text).parse(); }

}  // namespace rrfd::ho
