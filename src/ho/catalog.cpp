#include "ho/catalog.h"

#include "core/predicates.h"
#include "ho/compile.h"

namespace rrfd::ho {

std::vector<DerivedModel> standard_catalog() {
  // Kept small on purpose: one exemplar per primitive family, plus the
  // compositions that recover hand-written zoo models (the recoveries
  // are proved exhaustively in tests/ho/compile_test.cpp and E19).
  const std::vector<std::pair<std::string, std::string>> entries = {
      {"ho-async(1)", "loss_cap(1)"},
      {"ho-omission(1)", "all(self_delivery(),faulty(1))"},
      {"ho-swmr(1)", "all(loss_cap(1),no_partition())"},
      {"ho-detector-S", "kernel(1)"},
      {"ho-mobile(1)", "mobile(1)"},
      {"ho-link-budget(1)", "link_budget(1)"},
      {"ho-delay(1)", "delay(1)"},
      {"ho-crash-tail", "window(2,0,crash_only())"},
      {"ho-eventually-quiet", "eventually(mobile(0))"},
      {"ho-partition(0|12)", "partition(src={0},dst={1,2})"},
  };
  std::vector<DerivedModel> catalog;
  catalog.reserve(entries.size());
  for (const auto& [name, spec] : entries) {
    catalog.push_back({name, spec, compile_text(spec, name)});
  }
  return catalog;
}

std::vector<ZooModel> reference_zoo() {
  return {
      {"omission(1)", core::sync_omission(1)},
      {"crash(1)", core::sync_crash(1)},
      {"async(1)", core::async_message_passing(1)},
      {"swmr(1)", core::swmr_shared_memory(1)},
      {"snapshot(1)", core::atomic_snapshot(1)},
      {"S", core::detector_s()},
      {"2-uncertainty", core::k_uncertainty(2)},
      {"equal-D", core::equal_announcements()},
      {"skew(2,1)", core::quorum_skew(2, 1)},
  };
}

std::vector<Placement> place_in_zoo(const core::Predicate& derived, int n,
                                    core::Round rounds,
                                    const core::EnumOptions& options) {
  std::vector<Placement> placements;
  for (const ZooModel& zoo : reference_zoo()) {
    Placement p;
    p.vs = zoo.name;
    p.implies =
        core::implies_exhaustive(derived, *zoo.pred, n, rounds, options).holds;
    p.implied_by =
        core::implies_exhaustive(*zoo.pred, derived, n, rounds, options).holds;
    placements.push_back(std::move(p));
  }
  return placements;
}

}  // namespace rrfd::ho
