// Operational fault specifications: the input language of the Heard-Of
// bridge.
//
// The paper treats a model as a predicate over {D(i,r)}; the Heard-Of
// line of work (Shimi-Hurault-Queinnec) shows that whole message-passing
// models can be *derived* by composing elementary operational behaviors
// (message loss, bounded delay, crashes, partitions) instead of
// hand-writing the predicate. A Spec is the AST of such a composition:
// leaves are operational primitives with an exact lowering to a
// constraint over fault announcements (HO(i,r) = S \ D(i,r)), interior
// nodes are combinators (conjunction, round windows, eventual variants).
// src/ho/compile.h lowers a Spec to a core::Predicate implementing the
// full incremental-evaluator contract; the traits the exhaustive engine
// relies on (prunable / symmetric) are derived here from the primitives'
// closure properties, so a composed model never claims a licence its
// parts cannot justify.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.h"

namespace rrfd::ho {

/// Node kinds of the operational algebra. Each primitive documents its
/// exact lowering to a constraint over the fault pattern; `r` ranges over
/// the rounds the node is applied to (the whole pattern at top level, a
/// contiguous sub-range under window()).
enum class SpecKind {
  // -- Round-local primitives (each round checked in isolation) --------
  /// loss_cap(f): every announcement is small, |D(i,r)| <= f for all i.
  /// Lowering of "at most f messages to any single receiver are lost per
  /// round"; loss_cap(f) recovers the zoo's PerRoundFaultBound(f).
  kLossCap,
  /// mobile(f): |U_i D(i,r)| <= f. At most f senders are suspected
  /// anywhere in a round, but *which* senders may change every round --
  /// the classic mobile-fault adversary. mobile(0) is a lossless round.
  kMobileCap,
  /// self_delivery(): i is never in D(i,r) -- a process always hears from
  /// itself (local delivery cannot be lost).
  kSelfDelivery,
  /// no_partition(): U_i D(i,r) != S -- some process is heard by
  /// everybody in every round (no total split of the system).
  kNoPartition,
  /// partition(src, dst): every destination misses every source,
  /// src <= D(i,r) for all i in dst. An *asymmetric* primitive: it names
  /// concrete identifiers, so it is deliberately not symmetric().
  kPartition,
  // -- Stateful primitives (constraint spans rounds) --------------------
  /// link_budget(c): each ordered link (j -> i) drops at most c times
  /// across the rounds in scope, #{r : j in D(i,r)} <= c.
  kLinkBudget,
  /// crash_only(): announcements are monotone, D(i,r) <= D(k,r+1) --
  /// once suspected by anyone, suspected by everyone forever. This is
  /// the zoo's CrashMonotonicity; faults behave like crash-stop.
  kCrashOnly,
  /// faulty(f): |U_r U_i D(i,r)| <= f -- at most f distinct processes
  /// are ever suspected (the cumulative fault bound).
  kFaultyCap,
  /// kernel(k): at least k processes are *never* suspected by anyone,
  /// |U_r U_i D(i,r)| <= n - k. kernel(1) is the zoo's ImmortalProcess.
  kKernel,
  /// delay(d): no link stays down longer than d consecutive rounds --
  /// j in D(i,r) for at most d successive r per ordered link (j -> i).
  /// A lost message is "delayed"; it must get through within d+1 rounds.
  kDelayCap,
  // -- Combinators -------------------------------------------------------
  /// all(s1, ..., sk): conjunction over the same rounds.
  kAll,
  /// window(lo, hi, s): s applies to rounds lo..hi of the current scope
  /// (1-based, relative; hi == 0 means "to the end"). The sub-range is
  /// re-numbered 1..k for s, so stateful primitives treat it as their
  /// whole pattern.
  kWindow,
  /// eventually(s): some round in scope satisfies the round-local body s.
  /// Violations are NOT stable under extension (a later good round can
  /// repair a bad prefix), so any spec containing eventually() compiles
  /// to a non-prunable predicate.
  kEventually,
};

/// A composed operational specification. Plain data: `a`/`b` hold the
/// integer parameters (f, c, d, k, lo, hi), `src`/`dst` the partition
/// masks, `children` the sub-specs of combinators.
struct Spec {
  SpecKind kind;
  int a = 0;
  int b = 0;
  std::uint64_t src = 0;
  std::uint64_t dst = 0;
  std::vector<Spec> children;
};

/// Factory helpers (each validates its parameters; see validate()).
Spec loss_cap(int f);
Spec mobile(int f);
Spec self_delivery();
Spec no_partition();
Spec partition(std::uint64_t src, std::uint64_t dst);
Spec link_budget(int c);
Spec crash_only();
Spec faulty(int f);
Spec kernel(int k);
Spec delay(int d);
Spec all(std::vector<Spec> children);
Spec window(core::Round lo, core::Round hi, Spec child);
Spec eventually(Spec child);

/// Evaluator traits the exhaustive engine consumes, derived from the
/// spec's structure (see derive_traits()).
struct Traits {
  /// Violations stable under extension -- kViolatedForever licences a cut.
  bool prunable = false;
  /// Invariant under process renaming -- licences symmetry reduction.
  bool symmetric = false;
};

/// True iff the spec constrains each round in isolation (primitives
/// minus the stateful ones, closed under all()). eventually() requires a
/// round-local body: "some round is quiet" is meaningful, "some suffix
/// respects a link budget" is not expressible round-by-round.
bool round_local(const Spec& spec);

/// Derives honest evaluator traits:
///  - every primitive's violations are stable under extension (a bad
///    round / exceeded budget stays bad), so primitives are prunable;
///    eventually() is the exception and poisons prunability upward.
///  - every primitive except partition() is permutation-invariant;
///    symmetry is the AND over the composition.
Traits derive_traits(const Spec& spec);

/// Checks structural well-formedness (parameter ranges, arities,
/// round-local eventually() bodies, non-empty partition sides). Throws
/// rrfd::ContractViolation on the first problem.
void validate(const Spec& spec);

/// Largest process identifier the spec names explicitly (partition
/// masks), or -1 if it names none. Compiled predicates REQUIRE
/// max_process_id(spec) < n at evaluation time.
int max_process_id(const Spec& spec);

/// Canonical rendering, e.g. "all(loss_cap(1),no_partition())". Parsing
/// the result (ho/parse.h) reproduces the spec; to_text(parse_spec(t))
/// is a fixed point for canonical t.
std::string to_text(const Spec& spec);

}  // namespace rrfd::ho
