#include "ho/compile.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/fault_pattern.h"
#include "core/process_set.h"
#include "core/words.h"
#include "ho/parse.h"
#include "util/check.h"
#include "util/str.h"

namespace rrfd::ho {

namespace {

using core::FaultPattern;
using core::ProcessSet;
using core::ProcId;
using core::Round;
using core::RoundFaults;
using core::StepVerdict;
using core::full_mask;
namespace statekey = core::statekey;

// --------------------------------------------------------------------------
// Round-local primitive checks.
//
// Two independently written cores per primitive: the set core works in
// ProcessSet algebra, the word core in raw masks. The differential and
// conformance suites hold them against each other on every derived
// model, the same regime the hand-written zoo lives under.
// --------------------------------------------------------------------------

bool prim_ok_set(const Spec& s, const RoundFaults& round) {
  switch (s.kind) {
    case SpecKind::kLossCap:
      for (const ProcessSet& d : round) {
        if (d.size() > s.a) return false;
      }
      return true;
    case SpecKind::kMobileCap:
      return union_over(round).size() <= s.a;
    case SpecKind::kSelfDelivery:
      for (std::size_t i = 0; i < round.size(); ++i) {
        if (round[i].contains(static_cast<ProcId>(i))) return false;
      }
      return true;
    case SpecKind::kNoPartition:
      return !union_over(round).full();
    case SpecKind::kPartition: {
      const int n = round.front().n();
      const ProcessSet sources = ProcessSet::from_bits(n, s.src);
      for (ProcId i : ProcessSet::from_bits(n, s.dst)) {
        if (!sources.subset_of(round[static_cast<std::size_t>(i)])) {
          return false;
        }
      }
      return true;
    }
    case SpecKind::kAll:
      for (const Spec& c : s.children) {
        if (!prim_ok_set(c, round)) return false;
      }
      return true;
    default:
      break;
  }
  RRFD_REQUIRE_MSG(false, "prim_ok_set: spec is not round-local");
  return false;
}

bool prim_ok_words(const Spec& s, const std::uint64_t* d, int n) {
  switch (s.kind) {
    case SpecKind::kLossCap:
      for (int i = 0; i < n; ++i) {
        if (std::popcount(d[i]) > s.a) return false;
      }
      return true;
    case SpecKind::kMobileCap: {
      std::uint64_t u = 0;
      for (int i = 0; i < n; ++i) u |= d[i];
      return std::popcount(u) <= s.a;
    }
    case SpecKind::kSelfDelivery:
      for (int i = 0; i < n; ++i) {
        if ((d[i] >> i) & 1) return false;
      }
      return true;
    case SpecKind::kNoPartition: {
      std::uint64_t u = 0;
      for (int i = 0; i < n; ++i) u |= d[i];
      return u != full_mask(n);
    }
    case SpecKind::kPartition:
      for (std::uint64_t m = s.dst; m != 0; m &= m - 1) {
        const int i = std::countr_zero(m);
        if ((s.src & ~d[i]) != 0) return false;
      }
      return true;
    case SpecKind::kAll:
      for (const Spec& c : s.children) {
        if (!prim_ok_words(c, d, n)) return false;
      }
      return true;
    default:
      break;
  }
  RRFD_REQUIRE_MSG(false, "prim_ok_words: spec is not round-local");
  return false;
}

/// True iff no legal round (every D a proper subset of S) can violate
/// the round-local spec -- the licence for kSatisfiedForever.
bool prim_vacuous(const Spec& s, int n) {
  switch (s.kind) {
    case SpecKind::kLossCap:
      return s.a >= n - 1;  // |D| <= n-1 because D != S
    case SpecKind::kMobileCap:
      return s.a >= n || n == 1;  // n == 1: every D is empty
    case SpecKind::kSelfDelivery:
    case SpecKind::kNoPartition:
      return n == 1;
    case SpecKind::kPartition:
      return false;
    case SpecKind::kAll:
      for (const Spec& c : s.children) {
        if (!prim_vacuous(c, n)) return false;
      }
      return true;
    default:
      break;
  }
  RRFD_REQUIRE_MSG(false, "prim_vacuous: spec is not round-local");
  return false;
}

// --------------------------------------------------------------------------
// Whole-pattern interpreter (holds()).
//
// Evaluates the spec over the contiguous (1-based, absolute) round range
// [lo, hi] of the pattern; window() narrows the range for its child and
// stateful primitives treat the range as their whole scope, matching the
// renumbering the incremental WindowNode performs.
// --------------------------------------------------------------------------

std::size_t link_index(int n, int i, int j) {
  return static_cast<std::size_t>(i) * static_cast<std::size_t>(n) +
         static_cast<std::size_t>(j);
}

bool holds_range(const Spec& s, const FaultPattern& p, Round lo, Round hi) {
  const int n = p.n();
  switch (s.kind) {
    case SpecKind::kLossCap:
    case SpecKind::kMobileCap:
    case SpecKind::kSelfDelivery:
    case SpecKind::kNoPartition:
    case SpecKind::kPartition:
      for (Round r = lo; r <= hi; ++r) {
        if (!prim_ok_set(s, p.round(r))) return false;
      }
      return true;
    case SpecKind::kLinkBudget: {
      std::vector<int> drops(static_cast<std::size_t>(n) *
                                 static_cast<std::size_t>(n),
                             0);
      for (Round r = lo; r <= hi; ++r) {
        for (ProcId i = 0; i < n; ++i) {
          for (ProcId j : p.d(i, r)) {
            if (++drops[link_index(n, i, j)] > s.a) return false;
          }
        }
      }
      return true;
    }
    case SpecKind::kCrashOnly:
      for (Round r = lo; r < hi; ++r) {
        const ProcessSet announced = p.round_union(r);
        for (ProcId k = 0; k < n; ++k) {
          if (!announced.subset_of(p.d(k, r + 1))) return false;
        }
      }
      return true;
    case SpecKind::kFaultyCap:
    case SpecKind::kKernel: {
      ProcessSet u(n);
      for (Round r = lo; r <= hi; ++r) u |= p.round_union(r);
      const int cap = (s.kind == SpecKind::kFaultyCap) ? s.a : n - s.a;
      return u.size() <= cap;
    }
    case SpecKind::kDelayCap: {
      std::vector<int> run(static_cast<std::size_t>(n) *
                               static_cast<std::size_t>(n),
                           0);
      for (Round r = lo; r <= hi; ++r) {
        for (ProcId i = 0; i < n; ++i) {
          const ProcessSet& d = p.d(i, r);
          for (ProcId j = 0; j < n; ++j) {
            if (d.contains(j)) {
              if (++run[link_index(n, i, j)] > s.a) return false;
            } else {
              run[link_index(n, i, j)] = 0;
            }
          }
        }
      }
      return true;
    }
    case SpecKind::kAll:
      for (const Spec& c : s.children) {
        if (!holds_range(c, p, lo, hi)) return false;
      }
      return true;
    case SpecKind::kWindow: {
      const Round child_lo = lo + s.a - 1;
      const Round child_hi = (s.b == 0) ? hi : std::min(hi, lo + s.b - 1);
      return holds_range(s.children.front(), p, child_lo, child_hi);
    }
    case SpecKind::kEventually:
      for (Round r = lo; r <= hi; ++r) {
        if (prim_ok_set(s.children.front(), p.round(r))) return true;
      }
      return false;
  }
  RRFD_REQUIRE_MSG(false, "holds_range: unknown spec kind");
  return false;
}

// --------------------------------------------------------------------------
// Incremental evaluator nodes.
//
// One node per spec subtree, each with the same LIFO push/pop shape as a
// StepEvaluator but returning its verdict through current() so that
// combinator nodes can poll children after every push. All per-push
// state lives in per-depth stacks, so pop() is exact backtracking and a
// node answers in O(n) (O(n^2) for the per-link primitives) per push.
// --------------------------------------------------------------------------

class Node {
 public:
  virtual ~Node() = default;
  /// Resets to the empty scope. `total` is the number of rounds this
  /// node's scope can grow to (the enumeration bound, narrowed by
  /// enclosing windows); budget primitives use it for their vacuity
  /// licence.
  virtual void begin(int n, Round total) = 0;
  virtual void push_set(const RoundFaults& round) = 0;
  virtual void push_words(const std::uint64_t* d) = 0;
  virtual void pop() = 0;
  virtual StepVerdict current() const = 0;
  /// Canonical state fingerprint under the StepEvaluator::state_bytes
  /// contract (every node below implements it -- the spec algebra only
  /// admits bounded state -- but the conservative default keeps future
  /// nodes sound until they opt in).
  virtual bool state_bytes(std::vector<std::uint8_t>& /*out*/) const {
    return false;
  }
};

std::unique_ptr<Node> build_node(const Spec& spec);

/// "In every round of scope, the round-local body holds."
class PerRoundNode final : public Node {
 public:
  explicit PerRoundNode(const Spec& spec) : spec_(spec) {}

  void begin(int n, Round) override {
    n_ = n;
    vacuous_ = prim_vacuous(spec_, n);
    violated_.clear();
  }
  void push_set(const RoundFaults& round) override {
    push(prim_ok_set(spec_, round));
  }
  void push_words(const std::uint64_t* d) override {
    push(prim_ok_words(spec_, d, n_));
  }
  void pop() override { violated_.pop_back(); }
  StepVerdict current() const override {
    if (!violated_.empty() && violated_.back() != 0) {
      return StepVerdict::kViolatedForever;
    }
    return vacuous_ ? StepVerdict::kSatisfiedForever
                    : StepVerdict::kSatisfiedSoFar;
  }
  bool state_bytes(std::vector<std::uint8_t>& out) const override {
    const bool violated = !violated_.empty() && violated_.back() != 0;
    statekey::append_u8(out, violated ? 0xFF : 0x00);
    return true;
  }

 private:
  void push(bool round_ok) {
    const bool prev = !violated_.empty() && violated_.back() != 0;
    violated_.push_back(static_cast<char>(prev || !round_ok));
  }

  const Spec& spec_;
  int n_ = 0;
  bool vacuous_ = false;
  std::vector<char> violated_;
};

/// "Some round of scope satisfies the round-local body." Violations are
/// not stable (a later good round repairs the prefix), which is exactly
/// why derive_traits() strips prunability; the verdict itself stays
/// exact at every depth.
class EventuallyNode final : public Node {
 public:
  explicit EventuallyNode(const Spec& body) : body_(body) {}

  void begin(int n, Round) override {
    n_ = n;
    seen_.clear();
  }
  void push_set(const RoundFaults& round) override {
    push(prim_ok_set(body_, round));
  }
  void push_words(const std::uint64_t* d) override {
    push(prim_ok_words(body_, d, n_));
  }
  void pop() override { seen_.pop_back(); }
  StepVerdict current() const override {
    const bool seen = !seen_.empty() && seen_.back() != 0;
    // A good round can never be un-seen, so satisfaction is permanent.
    return seen ? StepVerdict::kSatisfiedForever
                : StepVerdict::kViolatedForever;
  }
  bool state_bytes(std::vector<std::uint8_t>& out) const override {
    const bool seen = !seen_.empty() && seen_.back() != 0;
    statekey::append_u8(out, seen ? 0x01 : 0x00);
    return true;
  }

 private:
  void push(bool round_ok) {
    const bool prev = !seen_.empty() && seen_.back() != 0;
    seen_.push_back(static_cast<char>(prev || round_ok));
  }

  const Spec& body_;
  int n_ = 0;
  std::vector<char> seen_;
};

/// Conjunction: push into every child, combine verdicts.
class AllNode final : public Node {
 public:
  explicit AllNode(const Spec& spec) {
    for (const Spec& c : spec.children) children_.push_back(build_node(c));
  }

  void begin(int n, Round total) override {
    for (auto& c : children_) c->begin(n, total);
  }
  void push_set(const RoundFaults& round) override {
    for (auto& c : children_) c->push_set(round);
  }
  void push_words(const std::uint64_t* d) override {
    for (auto& c : children_) c->push_words(d);
  }
  void pop() override {
    for (auto& c : children_) c->pop();
  }
  StepVerdict current() const override {
    bool all_forever = true;
    for (const auto& c : children_) {
      const StepVerdict v = c->current();
      if (v == StepVerdict::kViolatedForever) return v;
      all_forever = all_forever && v == StepVerdict::kSatisfiedForever;
    }
    return all_forever ? StepVerdict::kSatisfiedForever
                       : StepVerdict::kSatisfiedSoFar;
  }
  bool state_bytes(std::vector<std::uint8_t>& out) const override {
    // Children are a fixed list, but their keys vary in length, so each
    // is length-prefixed to keep the concatenation unambiguous.
    for (const auto& c : children_) {
      const std::size_t pos = statekey::begin_length_prefix(out);
      if (!c->state_bytes(out)) return false;
      statekey::end_length_prefix(out, pos);
    }
    return true;
  }

 private:
  std::vector<std::unique_ptr<Node>> children_;
};

/// Scope restriction: forwards only rounds lo..hi (1-based within this
/// node's scope) to the child, renumbered as the child's own scope. Once
/// the window has closed (depth >= hi), the child's sub-pattern can no
/// longer change, so a kSatisfiedSoFar child hardens to forever.
class WindowNode final : public Node {
 public:
  explicit WindowNode(const Spec& spec)
      : lo_(spec.a), hi_(spec.b), child_(build_node(spec.children.front())) {}

  void begin(int n, Round total) override {
    depth_ = 0;
    const Round child_hi = (hi_ == 0) ? total : std::min(hi_, total);
    child_->begin(n, std::max(0, child_hi - lo_ + 1));
  }
  void push_set(const RoundFaults& round) override {
    ++depth_;
    if (in_window(depth_)) child_->push_set(round);
  }
  void push_words(const std::uint64_t* d) override {
    ++depth_;
    if (in_window(depth_)) child_->push_words(d);
  }
  void pop() override {
    if (in_window(depth_)) child_->pop();
    --depth_;
  }
  StepVerdict current() const override {
    const StepVerdict v = child_->current();
    if (v == StepVerdict::kSatisfiedSoFar && hi_ != 0 && depth_ >= hi_) {
      return StepVerdict::kSatisfiedForever;
    }
    return v;
  }
  bool state_bytes(std::vector<std::uint8_t>& out) const override {
    // Future behaviour depends on how far the scope has advanced
    // relative to the window bounds, canonicalized: past a closed
    // window every depth is equivalent, and once an unbounded window
    // has opened the exact depth no longer matters.
    const Round canon = (hi_ != 0) ? std::min(depth_, hi_)
                                   : std::min(depth_, lo_);
    statekey::append_u32(out, static_cast<std::uint32_t>(canon));
    return child_->state_bytes(out);
  }

 private:
  bool in_window(Round depth) const {
    return depth >= lo_ && (hi_ == 0 || depth <= hi_);
  }

  Round lo_;
  Round hi_;
  std::unique_ptr<Node> child_;
  Round depth_ = 0;
};

/// link_budget(c): per-link drop counters with an over-budget tally;
/// pop() undoes a push from the recorded round words.
class LinkBudgetNode final : public Node {
 public:
  explicit LinkBudgetNode(int budget) : budget_(budget) {}

  void begin(int n, Round total) override {
    n_ = n;
    vacuous_ = budget_ >= total;  // each link drops at most once per round
    drops_.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
                  0);
    history_.clear();
    over_.assign(1, 0);
  }
  void push_set(const RoundFaults& round) override {
    const std::size_t base = history_.size();
    history_.resize(base + static_cast<std::size_t>(n_));
    int over = over_.back();
    for (std::size_t i = 0; i < round.size(); ++i) {
      history_[base + i] = round[i].bits();
      for (ProcId j : round[i]) {
        if (++drops_[link_index(n_, static_cast<int>(i), j)] == budget_ + 1) {
          ++over;
        }
      }
    }
    over_.push_back(over);
  }
  void push_words(const std::uint64_t* d) override {
    const std::size_t base = history_.size();
    history_.resize(base + static_cast<std::size_t>(n_));
    int over = over_.back();
    for (int i = 0; i < n_; ++i) {
      history_[base + static_cast<std::size_t>(i)] = d[i];
      for (std::uint64_t m = d[i]; m != 0; m &= m - 1) {
        const int j = std::countr_zero(m);
        if (++drops_[link_index(n_, i, j)] == budget_ + 1) ++over;
      }
    }
    over_.push_back(over);
  }
  void pop() override {
    const std::size_t base = history_.size() - static_cast<std::size_t>(n_);
    for (int i = 0; i < n_; ++i) {
      for (std::uint64_t m = history_[base + static_cast<std::size_t>(i)];
           m != 0; m &= m - 1) {
        --drops_[link_index(n_, i, std::countr_zero(m))];
      }
    }
    history_.resize(base);
    over_.pop_back();
  }
  StepVerdict current() const override {
    if (over_.back() > 0) return StepVerdict::kViolatedForever;
    return vacuous_ ? StepVerdict::kSatisfiedForever
                    : StepVerdict::kSatisfiedSoFar;
  }
  bool state_bytes(std::vector<std::uint8_t>& out) const override {
    // An over-budget link can only stay over along a suffix: absorbing.
    // Otherwise the full drop matrix is the state (each count is at most
    // the budget here, but future drops depend on the exact values).
    if (over_.back() > 0) {
      statekey::append_u8(out, 0xFF);
      return true;
    }
    statekey::append_u8(out, 0x00);
    for (const int drops : drops_) {
      statekey::append_u32(out, static_cast<std::uint32_t>(drops));
    }
    return true;
  }

 private:
  int budget_;
  int n_ = 0;
  bool vacuous_ = false;
  std::vector<int> drops_;
  std::vector<std::uint64_t> history_;  // n pushed words per depth
  std::vector<int> over_;               // links over budget, per depth
};

/// crash_only(): per-depth stack of (previous round's announcement
/// union, violated-so-far); a broken adjacency stays broken.
class CrashOnlyNode final : public Node {
 public:
  void begin(int n, Round) override {
    n_ = n;
    state_.assign(1, State{0, false});
  }
  void push_set(const RoundFaults& round) override {
    const State top = state_.back();
    bool violated = top.violated;
    const ProcessSet announced = ProcessSet::from_bits(n_, top.prev_union);
    ProcessSet next(n_);
    for (const ProcessSet& d : round) {
      if (state_.size() > 1 && !announced.subset_of(d)) violated = true;
      next |= d;
    }
    state_.push_back(State{next.bits(), violated});
  }
  void push_words(const std::uint64_t* d) override {
    const State top = state_.back();
    bool violated = top.violated;
    std::uint64_t next = 0;
    for (int i = 0; i < n_; ++i) {
      if (state_.size() > 1 && (top.prev_union & ~d[i]) != 0) violated = true;
      next |= d[i];
    }
    state_.push_back(State{next, violated});
  }
  void pop() override { state_.pop_back(); }
  StepVerdict current() const override {
    return state_.back().violated ? StepVerdict::kViolatedForever
                                  : StepVerdict::kSatisfiedSoFar;
  }
  bool state_bytes(std::vector<std::uint8_t>& out) const override {
    const State& s = state_.back();
    if (s.violated) {
      statekey::append_u8(out, 0xFF);  // a broken adjacency stays broken
      return true;
    }
    statekey::append_u8(out, state_.size() > 1 ? 0x01 : 0x00);
    statekey::append_u64(out, s.prev_union);
    return true;
  }

 private:
  struct State {
    std::uint64_t prev_union;
    bool violated;
  };

  int n_ = 0;
  std::vector<State> state_;
};

/// faulty(f) / kernel(k): cumulative announcement union against a cap.
class CumulativeCapNode final : public Node {
 public:
  CumulativeCapNode(SpecKind kind, int value) : kind_(kind), value_(value) {}

  void begin(int n, Round) override {
    n_ = n;
    cap_ = (kind_ == SpecKind::kFaultyCap) ? value_ : n - value_;
    unions_.assign(1, 0);
  }
  void push_set(const RoundFaults& round) override {
    ProcessSet u = ProcessSet::from_bits(n_, unions_.back());
    for (const ProcessSet& d : round) u |= d;
    unions_.push_back(u.bits());
  }
  void push_words(const std::uint64_t* d) override {
    std::uint64_t u = unions_.back();
    for (int i = 0; i < n_; ++i) u |= d[i];
    unions_.push_back(u);
  }
  void pop() override { unions_.pop_back(); }
  StepVerdict current() const override {
    if (std::popcount(unions_.back()) > cap_) {
      return StepVerdict::kViolatedForever;
    }
    // cap >= n: even the full S stays within the cap.
    return cap_ >= n_ ? StepVerdict::kSatisfiedForever
                      : StepVerdict::kSatisfiedSoFar;
  }
  bool state_bytes(std::vector<std::uint8_t>& out) const override {
    const std::uint64_t u = unions_.back();
    if (std::popcount(u) > cap_) {
      statekey::append_u8(out, 0xFF);  // the union only grows: sticky
    } else {
      statekey::append_u8(out, 0x00);
      statekey::append_u64(out, u);
    }
    return true;
  }

 private:
  SpecKind kind_;
  int value_;
  int n_ = 0;
  int cap_ = 0;
  std::vector<std::uint64_t> unions_;
};

/// delay(d): per-depth matrix of consecutive-drop run lengths per link.
class DelayCapNode final : public Node {
 public:
  explicit DelayCapNode(int cap) : cap_(cap) {}

  void begin(int n, Round total) override {
    n_ = n;
    vacuous_ = cap_ >= total;
    runs_.assign(
        1, std::vector<int>(
               static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0));
    violated_.assign(1, 0);
  }
  void push_set(const RoundFaults& round) override {
    const std::vector<int>& prev = runs_.back();
    std::vector<int> next(prev.size());
    bool violated = violated_.back() != 0;
    for (int i = 0; i < n_; ++i) {
      const ProcessSet& d = round[static_cast<std::size_t>(i)];
      for (ProcId j = 0; j < n_; ++j) {
        const std::size_t link = link_index(n_, i, j);
        const int run = d.contains(j) ? prev[link] + 1 : 0;
        next[link] = run;
        if (run > cap_) violated = true;
      }
    }
    runs_.push_back(std::move(next));
    violated_.push_back(static_cast<char>(violated));
  }
  void push_words(const std::uint64_t* d) override {
    const std::vector<int>& prev = runs_.back();
    std::vector<int> next(prev.size());
    bool violated = violated_.back() != 0;
    for (int i = 0; i < n_; ++i) {
      for (int j = 0; j < n_; ++j) {
        const std::size_t link = link_index(n_, i, j);
        const int run = ((d[i] >> j) & 1) != 0 ? prev[link] + 1 : 0;
        next[link] = run;
        if (run > cap_) violated = true;
      }
    }
    runs_.push_back(std::move(next));
    violated_.push_back(static_cast<char>(violated));
  }
  void pop() override {
    runs_.pop_back();
    violated_.pop_back();
  }
  StepVerdict current() const override {
    if (violated_.back() != 0) return StepVerdict::kViolatedForever;
    return vacuous_ ? StepVerdict::kSatisfiedForever
                    : StepVerdict::kSatisfiedSoFar;
  }
  bool state_bytes(std::vector<std::uint8_t>& out) const override {
    if (violated_.back() != 0) {
      statekey::append_u8(out, 0xFF);  // an exceeded run is permanent
      return true;
    }
    statekey::append_u8(out, 0x00);
    for (const int run : runs_.back()) {
      statekey::append_u32(out, static_cast<std::uint32_t>(run));
    }
    return true;
  }

 private:
  int cap_;
  int n_ = 0;
  bool vacuous_ = false;
  std::vector<std::vector<int>> runs_;
  std::vector<char> violated_;
};

std::unique_ptr<Node> build_node(const Spec& spec) {
  // Any fully round-local subtree (including all() of round-locals)
  // collapses into one per-round node.
  if (round_local(spec)) return std::make_unique<PerRoundNode>(spec);
  switch (spec.kind) {
    case SpecKind::kAll:
      return std::make_unique<AllNode>(spec);
    case SpecKind::kWindow:
      return std::make_unique<WindowNode>(spec);
    case SpecKind::kEventually:
      return std::make_unique<EventuallyNode>(spec.children.front());
    case SpecKind::kLinkBudget:
      return std::make_unique<LinkBudgetNode>(spec.a);
    case SpecKind::kCrashOnly:
      return std::make_unique<CrashOnlyNode>();
    case SpecKind::kFaultyCap:
    case SpecKind::kKernel:
      return std::make_unique<CumulativeCapNode>(spec.kind, spec.a);
    case SpecKind::kDelayCap:
      return std::make_unique<DelayCapNode>(spec.a);
    default:
      break;
  }
  RRFD_REQUIRE_MSG(false, "build_node: unknown spec kind");
  return nullptr;
}

// --------------------------------------------------------------------------
// The compiled predicate.
// --------------------------------------------------------------------------

class HoEvaluator final : public core::StepEvaluator {
 public:
  HoEvaluator(const Spec& spec, int max_id)
      : root_(build_node(spec)), max_id_(max_id) {}

  void begin(int n, Round total_rounds) override {
    RRFD_REQUIRE_MSG(max_id_ < n, "spec names a process id >= n");
    n_ = n;
    root_->begin(n, total_rounds);
  }
  StepVerdict push_round(const RoundFaults& round) override {
    RRFD_ASSERT(static_cast<int>(round.size()) == n_);
    root_->push_set(round);
    return root_->current();
  }
  StepVerdict push_round_words(const std::uint64_t* d, int n) override {
    RRFD_ASSERT(n == n_);
    root_->push_words(d);
    return root_->current();
  }
  void pop_round() override { root_->pop(); }
  bool state_bytes(std::vector<std::uint8_t>& out) const override {
    return root_->state_bytes(out);
  }

 private:
  std::unique_ptr<Node> root_;
  int max_id_;
  int n_ = 0;
};

class HoPredicate final : public core::Predicate {
 public:
  HoPredicate(Spec spec, std::string name)
      : spec_(std::move(spec)),
        name_(std::move(name)),
        traits_(derive_traits(spec_)),
        max_id_(max_process_id(spec_)) {}

  std::string name() const override { return name_; }
  std::string description() const override {
    return cat("Heard-Of composition ", to_text(spec_),
               " lowered to a fault-pattern predicate");
  }
  bool holds(const FaultPattern& pattern) const override {
    RRFD_REQUIRE_MSG(max_id_ < pattern.n(), "spec names a process id >= n");
    return holds_range(spec_, pattern, 1, pattern.rounds());
  }
  std::unique_ptr<core::StepEvaluator> evaluator() const override {
    // The nodes hold a reference into spec_; the evaluator must not
    // outlive the predicate (same lifetime rule as AndEvaluator's
    // borrowed parts).
    return std::make_unique<HoEvaluator>(spec_, max_id_);
  }
  bool prunable() const override { return traits_.prunable; }
  bool symmetric() const override { return traits_.symmetric; }

 private:
  Spec spec_;
  std::string name_;
  Traits traits_;
  int max_id_;
};

}  // namespace

core::PredicatePtr compile(const Spec& spec, std::string name) {
  validate(spec);
  if (name.empty()) name = cat("ho:", to_text(spec));
  return std::make_shared<HoPredicate>(spec, std::move(name));
}

core::PredicatePtr compile_text(const std::string& spec_text,
                                std::string name) {
  return compile(parse_spec(spec_text), std::move(name));
}

}  // namespace rrfd::ho
