// Lowering operational specs to RRFD predicates.
//
// compile() turns a validated Spec into a core::Predicate that
// implements the full incremental-evaluator contract the exhaustive
// engine (core/submodel.h) relies on:
//
//  - holds() is a whole-pattern set-algebra interpreter over the spec;
//  - evaluator() is a tree of incremental nodes mirroring the spec, with
//    *independently written* push_round (ProcessSet algebra) and
//    push_round_words (raw-word) cores per primitive, so the
//    differential suites compare two genuinely distinct evaluations of
//    every derived model;
//  - prunable()/symmetric() come from ho::derive_traits(), i.e. from the
//    primitives' closure properties, never from optimism. A spec
//    containing eventually() is honestly non-prunable and the DFS
//    descends under its violated prefixes; partition() is honestly
//    asymmetric and disables symmetry reduction.
//
// Derived predicates are ordinary PredicatePtr values: they enter
// submodel queries, the sweep executor, and bench_lattice exactly like
// the hand-written zoo.
#pragma once

#include <string>

#include "core/predicate.h"
#include "ho/spec.h"

namespace rrfd::ho {

/// Compiles a spec into a predicate. `name` defaults to
/// "ho:" + to_text(spec). Throws rrfd::ContractViolation if the spec is
/// malformed (see ho::validate()).
core::PredicatePtr compile(const Spec& spec, std::string name = "");

/// parse_spec() + compile() in one step.
core::PredicatePtr compile_text(const std::string& spec_text,
                                std::string name = "");

}  // namespace rrfd::ho
