// Text syntax for operational specifications.
//
// The concrete syntax mirrors the factory helpers in ho/spec.h:
//
//   spec  := name '(' args ')'
//   args  := (arg (',' arg)*)?
//   arg   := INT | spec | key '=' set
//   set   := '{' INT (',' INT)* '}'
//
// e.g. "all(loss_cap(1),no_partition())",
//      "window(2,0,crash_only())",
//      "partition(src={0},dst={1,2})".
//
// Whitespace is allowed between tokens. Parsing is strict: unknown
// names, wrong arities, trailing input, and out-of-range parameters all
// throw rrfd::ContractViolation with a position-carrying message, so a
// bad spec fails loudly instead of compiling to the wrong model.
// to_text() output parses back to the same spec (round-trip tested).
#pragma once

#include <string>

#include "ho/spec.h"

namespace rrfd::ho {

/// Parses and validates a spec. Throws rrfd::ContractViolation on any
/// syntax or validation error.
Spec parse_spec(const std::string& text);

}  // namespace rrfd::ho
