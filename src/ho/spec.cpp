#include "ho/spec.h"

#include <bit>

#include "util/check.h"
#include "util/str.h"

namespace rrfd::ho {

namespace {

Spec leaf(SpecKind kind, int a = 0) {
  Spec s;
  s.kind = kind;
  s.a = a;
  return s;
}

/// Renders a partition-side mask as "{0,2,5}".
std::string mask_to_text(std::uint64_t mask) {
  std::string out = "{";
  bool first = true;
  for (std::uint64_t m = mask; m != 0; m &= m - 1) {
    if (!first) out += ',';
    out += std::to_string(std::countr_zero(m));
    first = false;
  }
  out += '}';
  return out;
}

}  // namespace

Spec loss_cap(int f) { return leaf(SpecKind::kLossCap, f); }
Spec mobile(int f) { return leaf(SpecKind::kMobileCap, f); }
Spec self_delivery() { return leaf(SpecKind::kSelfDelivery); }
Spec no_partition() { return leaf(SpecKind::kNoPartition); }

Spec partition(std::uint64_t src, std::uint64_t dst) {
  Spec s = leaf(SpecKind::kPartition);
  s.src = src;
  s.dst = dst;
  return s;
}

Spec link_budget(int c) { return leaf(SpecKind::kLinkBudget, c); }
Spec crash_only() { return leaf(SpecKind::kCrashOnly); }
Spec faulty(int f) { return leaf(SpecKind::kFaultyCap, f); }
Spec kernel(int k) { return leaf(SpecKind::kKernel, k); }
Spec delay(int d) { return leaf(SpecKind::kDelayCap, d); }

Spec all(std::vector<Spec> children) {
  Spec s;
  s.kind = SpecKind::kAll;
  s.children = std::move(children);
  return s;
}

Spec window(core::Round lo, core::Round hi, Spec child) {
  Spec s;
  s.kind = SpecKind::kWindow;
  s.a = lo;
  s.b = hi;
  s.children.push_back(std::move(child));
  return s;
}

Spec eventually(Spec child) {
  Spec s;
  s.kind = SpecKind::kEventually;
  s.children.push_back(std::move(child));
  return s;
}

bool round_local(const Spec& spec) {
  switch (spec.kind) {
    case SpecKind::kLossCap:
    case SpecKind::kMobileCap:
    case SpecKind::kSelfDelivery:
    case SpecKind::kNoPartition:
    case SpecKind::kPartition:
      return true;
    case SpecKind::kAll:
      for (const Spec& c : spec.children) {
        if (!round_local(c)) return false;
      }
      return true;
    case SpecKind::kLinkBudget:
    case SpecKind::kCrashOnly:
    case SpecKind::kFaultyCap:
    case SpecKind::kKernel:
    case SpecKind::kDelayCap:
    case SpecKind::kWindow:
    case SpecKind::kEventually:
      return false;
  }
  return false;  // unreachable; keeps -Wreturn-type quiet
}

Traits derive_traits(const Spec& spec) {
  switch (spec.kind) {
    case SpecKind::kPartition:
      // Prefix-closed (a missing containment stays missing) but names
      // concrete identifiers, so renaming processes changes its meaning.
      return {/*prunable=*/true, /*symmetric=*/false};
    case SpecKind::kLossCap:
    case SpecKind::kMobileCap:
    case SpecKind::kSelfDelivery:
    case SpecKind::kNoPartition:
    case SpecKind::kLinkBudget:
    case SpecKind::kCrashOnly:
    case SpecKind::kFaultyCap:
    case SpecKind::kKernel:
    case SpecKind::kDelayCap:
      // Bad rounds and exceeded budgets never recover: violations are
      // stable under extension. No primitive mentions identifiers.
      return {/*prunable=*/true, /*symmetric=*/true};
    case SpecKind::kAll: {
      Traits t{/*prunable=*/true, /*symmetric=*/true};
      for (const Spec& c : spec.children) {
        const Traits ct = derive_traits(c);
        t.prunable = t.prunable && ct.prunable;
        t.symmetric = t.symmetric && ct.symmetric;
      }
      return t;
    }
    case SpecKind::kWindow:
      // A window restricts which rounds the child sees; once a
      // constrained round is bad it stays in the sub-pattern, so the
      // child's closure properties carry over unchanged.
      return derive_traits(spec.children.front());
    case SpecKind::kEventually: {
      // A violated prefix (no good round yet) is repaired by any later
      // good round: violations are NOT stable under extension.
      Traits t = derive_traits(spec.children.front());
      t.prunable = false;
      return t;
    }
  }
  return {};  // unreachable
}

void validate(const Spec& spec) {
  switch (spec.kind) {
    case SpecKind::kLossCap:
    case SpecKind::kMobileCap:
    case SpecKind::kFaultyCap:
    case SpecKind::kLinkBudget:
    case SpecKind::kDelayCap:
      RRFD_REQUIRE_MSG(spec.a >= 0,
                       cat(to_text(spec), ": bound must be >= 0"));
      RRFD_REQUIRE(spec.children.empty());
      return;
    case SpecKind::kKernel:
      RRFD_REQUIRE_MSG(spec.a >= 1,
                       cat(to_text(spec), ": kernel size must be >= 1"));
      RRFD_REQUIRE(spec.children.empty());
      return;
    case SpecKind::kSelfDelivery:
    case SpecKind::kNoPartition:
    case SpecKind::kCrashOnly:
      RRFD_REQUIRE(spec.children.empty());
      return;
    case SpecKind::kPartition:
      RRFD_REQUIRE_MSG(spec.src != 0 && spec.dst != 0,
                       "partition(): src and dst must be non-empty");
      RRFD_REQUIRE(spec.children.empty());
      return;
    case SpecKind::kAll:
      RRFD_REQUIRE_MSG(!spec.children.empty(),
                       "all(): needs at least one sub-spec");
      for (const Spec& c : spec.children) validate(c);
      return;
    case SpecKind::kWindow:
      RRFD_REQUIRE_MSG(spec.a >= 1, "window(): lo must be >= 1");
      RRFD_REQUIRE_MSG(spec.b == 0 || spec.b >= spec.a,
                       "window(): hi must be 0 (open) or >= lo");
      RRFD_REQUIRE(spec.children.size() == 1);
      validate(spec.children.front());
      return;
    case SpecKind::kEventually:
      RRFD_REQUIRE(spec.children.size() == 1);
      RRFD_REQUIRE_MSG(round_local(spec.children.front()),
                       "eventually(): body must be round-local");
      validate(spec.children.front());
      return;
  }
  RRFD_REQUIRE_MSG(false, "unknown spec kind");
}

int max_process_id(const Spec& spec) {
  int max_id = -1;
  if (spec.kind == SpecKind::kPartition) {
    const std::uint64_t named = spec.src | spec.dst;
    if (named != 0) max_id = 63 - std::countl_zero(named);
  }
  for (const Spec& c : spec.children) {
    const int child_max = max_process_id(c);
    if (child_max > max_id) max_id = child_max;
  }
  return max_id;
}

std::string to_text(const Spec& spec) {
  switch (spec.kind) {
    case SpecKind::kLossCap:
      return cat("loss_cap(", spec.a, ")");
    case SpecKind::kMobileCap:
      return cat("mobile(", spec.a, ")");
    case SpecKind::kSelfDelivery:
      return "self_delivery()";
    case SpecKind::kNoPartition:
      return "no_partition()";
    case SpecKind::kPartition:
      return cat("partition(src=", mask_to_text(spec.src),
                       ",dst=", mask_to_text(spec.dst), ")");
    case SpecKind::kLinkBudget:
      return cat("link_budget(", spec.a, ")");
    case SpecKind::kCrashOnly:
      return "crash_only()";
    case SpecKind::kFaultyCap:
      return cat("faulty(", spec.a, ")");
    case SpecKind::kKernel:
      return cat("kernel(", spec.a, ")");
    case SpecKind::kDelayCap:
      return cat("delay(", spec.a, ")");
    case SpecKind::kAll: {
      std::string out = "all(";
      for (std::size_t i = 0; i < spec.children.size(); ++i) {
        if (i > 0) out += ',';
        out += to_text(spec.children[i]);
      }
      out += ')';
      return out;
    }
    case SpecKind::kWindow:
      return cat("window(", spec.a, ",", spec.b, ",",
                       to_text(spec.children.front()), ")");
    case SpecKind::kEventually:
      return cat("eventually(", to_text(spec.children.front()), ")");
  }
  return "?";  // unreachable
}

}  // namespace rrfd::ho
