#include "serve/server.h"

#include <atomic>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "serve/exec.h"
#include "serve/wire.h"
#include "trace/trace.h"
#include "util/check.h"
#include "util/mutex.h"
#include "util/str.h"
#include "util/thread_annotations.h"

namespace rrfd::serve {

namespace {

std::string head(const char* ev, const std::string& id) {
  return cat("{\"schema\":\"", kJobSchema, "\",\"ev\":\"", ev,
             "\",\"id\":\"", json_escape(id), "\"");
}

std::string accepted_line(const std::string& id, const std::string& key,
                          const char* source) {
  return cat(head("accepted", id), ",\"key\":\"", json_escape(key),
             "\",\"source\":\"", source, "\"}");
}

std::string shed_line(const std::string& id, Admission admission) {
  return cat(head("shed", id), ",\"reason\":\"", admission_name(admission),
             "\"}");
}

std::string error_line(const std::string& id, const std::string& code,
                       const std::string& detail) {
  return cat(head("error", id), ",\"code\":\"", code, "\",\"detail\":\"",
             json_escape(detail), "\"}");
}

/// Renders a finished result for one subscriber: rows, then the
/// terminal line (done or error). The bytes after the id field are a
/// pure function of the result -- the byte-identity the cache promises.
void deliver(const Server::LineSink& sink, const std::string& id,
             const JobResult& result) {
  if (result.failed) {
    sink(error_line(id, result.error_code, result.error_detail));
    return;
  }
  for (const std::string& row : result.rows) {
    sink(cat(head("row", id), ",", row, "}"));
  }
  sink(cat(head("done", id), ",", result.done, "}"));
}

/// Orders the submitter's ack line in front of anything a worker
/// writes: the worker blocks on wait() until the submitter, having
/// emitted the ack, calls open(). A ticket that is shed is destroyed
/// without a worker ever waiting, so an unopened gate cannot leak.
struct AckGate {
  Mutex mu;
  CondVar cv;
  bool opened RRFD_GUARDED_BY(mu) = false;

  void open() {
    {
      MutexLock lock(mu);
      opened = true;
    }
    cv.notify_all();
  }

  void wait() {
    MutexLock lock(mu);
    while (!opened) cv.wait(mu);
  }
};

}  // namespace

struct Server::Impl {
  explicit Impl(ServerOptions opts)
      : options(std::move(opts)),
        queue(options.queue),
        cache(options.git_rev.empty() ? trace::build_git_rev()
                                      : options.git_rev) {
    RRFD_REQUIRE_MSG(options.workers >= 1, "server needs at least one worker");
    workers.reserve(static_cast<std::size_t>(options.workers));
    for (int w = 0; w < options.workers; ++w) {
      workers.emplace_back([this] { worker_loop(); });
    }
  }

  void worker_loop() {
    Ticket ticket;
    while (queue.pop(&ticket)) {
      ticket.work();
      finish_one();
    }
  }

  void finish_one() {
    MutexLock lock(outstanding_mu);
    RRFD_ENSURE_MSG(outstanding > 0, "outstanding-job accounting underflow");
    --outstanding;
    if (outstanding == 0) idle.notify_all();
  }

  /// Executes one admitted job on a worker. Replay attaches the global
  /// trace sink, so it excludes everything else; sweeps and modelchecks
  /// run concurrently under the shared side.
  JobResult execute_job(const Request& req) {
    ++executed;
    if (req.kind == JobKind::kReplay) {
      WriterLock exclusive(tracer_mu);
      return execute(req, options.sweep_threads);
    }
    ReaderLock shared(tracer_mu);
    return execute(req, options.sweep_threads);
  }

  const ServerOptions options;
  // rrfd-lint: allow(guarded-member) -- internally synchronized (own mutex)
  AdmissionQueue queue;
  // rrfd-lint: allow(guarded-member) -- internally synchronized (own mutex)
  ResultCache cache;

  SharedMutex tracer_mu;  ///< replay = exclusive, others = shared

  Mutex outstanding_mu;
  CondVar idle;
  /// Tickets admitted, terminal not delivered.
  std::size_t outstanding RRFD_GUARDED_BY(outstanding_mu) = 0;

  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> wire_errors{0};
  std::atomic<std::uint64_t> executed{0};

  // rrfd-lint: allow(guarded-member) -- ctor-built; joined via shutdown latch
  std::vector<std::thread> workers;
  Mutex shutdown_mu;
  bool shut_down RRFD_GUARDED_BY(shutdown_mu) = false;
};

Server::Server(ServerOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

Server::~Server() { shutdown(); }

const std::string& Server::git_rev() const { return impl_->cache.git_rev(); }

void Server::submit_line(const std::string& line, const LineSink& sink) {
  Impl& im = *impl_;
  ++im.requests;

  Request req;
  try {
    req = parse_request(line);
  } catch (const WireError& e) {
    ++im.wire_errors;
    sink(error_line("", error_code_name(e.code()), e.detail()));
    return;
  }

  if (req.op == Op::kStats) {
    const ServerStats s = stats();
    sink(cat("{\"schema\":\"", kJobSchema, "\",\"ev\":\"stats\"",
             ",\"requests\":", s.requests, ",\"wire_errors\":", s.wire_errors,
             ",\"executed\":", s.executed, ",\"accepted\":", s.queue.accepted,
             ",\"shed_queue_full\":", s.queue.shed_queue_full,
             ",\"shed_client_cap\":", s.queue.shed_client_cap,
             ",\"cache_leads\":", s.cache.leads, ",\"cache_joins\":",
             s.cache.joins, ",\"cache_hits\":", s.cache.hits,
             ",\"cache_bypasses\":", s.cache.bypasses, ",\"cache_failures\":",
             s.cache.failures, ",\"rev\":\"", json_escape(git_rev()),
             "\"}"));
    return;
  }

  const std::string key = im.cache.key(req.canonical(), req.seed);
  const std::string id = req.id;

  std::shared_ptr<const JobResult> hit;
  const ResultCache::Outcome outcome = im.cache.submit(
      key,
      // Join delivery: runs on the leader's worker thread once the
      // single execution resolves; the ack rides in front of the
      // result stream.
      [sink, id, key](const JobResult& result) {
        sink(accepted_line(id, key, "joined"));
        deliver(sink, id, result);
      },
      &hit);

  if (outcome == ResultCache::Outcome::kHit) {
    sink(accepted_line(id, key, "cache"));
    deliver(sink, id, *hit);
    return;
  }
  if (outcome == ResultCache::Outcome::kJoined) {
    return;  // ack + stream delivered by the leader
  }

  // kLead or kBypass: this submission must execute, so it faces
  // admission control.
  const bool lead = outcome == ResultCache::Outcome::kLead;
  auto gate = std::make_shared<AckGate>();
  Ticket ticket;
  ticket.client = req.client;
  ticket.work = [&im, req, key, id, sink, lead, gate] {
    gate->wait();  // the ack line goes out before any result line
    JobResult result = im.execute_job(req);
    if (lead) {
      // Resolve the cache entry first so late duplicates hit/join the
      // finished result rather than leading a second execution.
      if (result.failed) {
        im.cache.fail(key, result);
      } else {
        im.cache.publish(key, result);
      }
    }
    deliver(sink, id, result);
  };

  {
    MutexLock lock(im.outstanding_mu);
    ++im.outstanding;
  }
  const Admission admission = im.queue.push(std::move(ticket));
  if (admission != Admission::kAccepted) {
    im.finish_one();
    if (lead) {
      // The execution this entry was waiting on will never run; joined
      // waiters (if any raced in) get the shed as a named failure.
      JobResult shed;
      shed.failed = true;
      shed.error_code = "shed";
      shed.error_detail = cat("leader submission shed: ",
                              admission_name(admission));
      im.cache.fail(key, shed);
    }
    sink(shed_line(id, admission));
    return;
  }
  sink(accepted_line(id, key, lead ? "execute" : "uncached"));
  gate->open();
}

void Server::drain() {
  Impl& im = *impl_;
  MutexLock lock(im.outstanding_mu);
  while (im.outstanding != 0) im.idle.wait(im.outstanding_mu);
}

void Server::shutdown() {
  Impl& im = *impl_;
  {
    MutexLock lock(im.shutdown_mu);
    if (im.shut_down) return;
    im.shut_down = true;
  }
  im.queue.close();
  for (std::thread& w : im.workers) w.join();
}

ServerStats Server::stats() const {
  const Impl& im = *impl_;
  ServerStats s;
  // rrfd-lint: allow(atomic-justified) -- advisory counter, ordering-free
  s.requests = im.requests.load(std::memory_order_relaxed);
  // rrfd-lint: allow(atomic-justified) -- advisory counter, ordering-free
  s.wire_errors = im.wire_errors.load(std::memory_order_relaxed);
  // rrfd-lint: allow(atomic-justified) -- advisory counter, ordering-free
  s.executed = im.executed.load(std::memory_order_relaxed);
  s.queue = im.queue.stats();
  s.cache = im.cache.stats();
  return s;
}

}  // namespace rrfd::serve
