#include "serve/wire.h"

#include <cctype>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "ho/parse.h"
#include "ho/spec.h"
#include "trace/trace.h"
#include "util/check.h"
#include "util/str.h"

namespace rrfd::serve {

namespace {

constexpr const char* kErrorNames[] = {
    "torn_line",     "parse_error",     "bad_version",
    "unknown_op",    "unknown_kind",    "unknown_field",
    "duplicate_field", "missing_field", "bad_value",
};

[[noreturn]] void fail(ErrorCode code, const std::string& detail) {
  throw WireError(code, detail);
}

/// One parsed field value: a string or a non-negative integer. The
/// protocol has no floats, booleans, nulls, arrays, or nested objects --
/// anything else on a request line is a parse_error by design.
struct Value {
  bool is_string = false;
  std::string str;
  std::uint64_t num = 0;
};

/// Strict scanner for one flat request object. Mirrors the trace
/// parser's posture (trace.cpp): known shapes only, loud failures.
class Scanner {
 public:
  explicit Scanner(const std::string& line) : line_(line) {}

  std::vector<std::pair<std::string, Value>> object() {
    expect('{');
    std::vector<std::pair<std::string, Value>> fields;
    if (!consume('}')) {
      do {
        std::string key = string_value();
        expect(':');
        fields.emplace_back(std::move(key), value());
      } while (consume(','));
      expect('}');
    }
    skip_ws();
    if (pos_ != line_.size()) {
      fail(ErrorCode::kParseError, where() + ": trailing characters");
    }
    return fields;
  }

 private:
  std::string where() const { return cat("col ", pos_ + 1); }

  /// Inter-token whitespace is legal JSON (json.dumps emits ": ") and
  /// carries no information -- tolerating it is not leniency about
  /// *content*, which stays strict. Newlines stay excluded: the
  /// transport is line-delimited, so one can never appear mid-object.
  void skip_ws() {
    while (pos_ < line_.size() &&
           (line_[pos_] == ' ' || line_[pos_] == '\t')) {
      ++pos_;
    }
  }

  void expect(char c) {
    skip_ws();
    if (pos_ >= line_.size() || line_[pos_] != c) {
      fail(ErrorCode::kParseError,
           where() + ": expected '" + std::string(1, c) + "'");
    }
    ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < line_.size() && line_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Value value() {
    skip_ws();
    Value v;
    if (pos_ < line_.size() && line_[pos_] == '"') {
      v.is_string = true;
      v.str = string_value();
      return v;
    }
    if (pos_ < line_.size() && line_[pos_] == '-') {
      // The protocol's integers are all counts, sizes, or seeds; a
      // negative value is never meaningful and is rejected by name.
      fail(ErrorCode::kBadValue, where() + ": negative integer");
    }
    if (pos_ >= line_.size() ||
        !std::isdigit(static_cast<unsigned char>(line_[pos_]))) {
      fail(ErrorCode::kParseError, where() + ": expected string or integer");
    }
    while (pos_ < line_.size() &&
           std::isdigit(static_cast<unsigned char>(line_[pos_]))) {
      const auto digit = static_cast<std::uint64_t>(line_[pos_++] - '0');
      if (v.num > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
        fail(ErrorCode::kBadValue, where() + ": integer overflow");
      }
      v.num = v.num * 10 + digit;
    }
    return v;
  }

  std::string string_value() {
    expect('"');
    std::string out;
    while (pos_ < line_.size() && line_[pos_] != '"') {
      char c = line_[pos_++];
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= line_.size()) {
        fail(ErrorCode::kParseError, where() + ": dangling escape");
      }
      char esc = line_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > line_.size()) {
            fail(ErrorCode::kParseError, where() + ": truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = line_[pos_++];
            unsigned digit = 0;
            if (h >= '0' && h <= '9') digit = static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') digit = static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') digit = static_cast<unsigned>(h - 'A' + 10);
            else fail(ErrorCode::kParseError, where() + ": bad \\u escape");
            code = code * 16 + digit;
          }
          if (code >= 0x80) {
            fail(ErrorCode::kParseError, where() + ": non-ASCII \\u escape");
          }
          out += static_cast<char>(code);
          break;
        }
        default:
          fail(ErrorCode::kParseError, where() + ": unsupported escape");
      }
    }
    expect('"');
    return out;
  }

  const std::string& line_;
  std::size_t pos_ = 0;
};

/// Field accessor over the scanned object: tracks which fields were
/// consumed so leftovers become unknown_field, and rejects duplicates.
class Fields {
 public:
  explicit Fields(std::vector<std::pair<std::string, Value>> fields)
      : fields_(std::move(fields)) {
    for (const auto& [key, value] : fields_) {
      if (!by_name_.emplace(key, &value).second) {
        fail(ErrorCode::kDuplicateField, "field '" + key + "' appears twice");
      }
    }
  }

  std::string str(const std::string& key) {
    const Value& v = take(key);
    if (!v.is_string) {
      fail(ErrorCode::kBadValue, "field '" + key + "' must be a string");
    }
    return v.str;
  }

  std::uint64_t uint(const std::string& key) {
    const Value& v = take(key);
    if (v.is_string) {
      fail(ErrorCode::kBadValue, "field '" + key + "' must be an integer");
    }
    return v.num;
  }

  /// A bounded integer field; bounds violations name the field.
  int bounded(const std::string& key, int lo, int hi) {
    const std::uint64_t v = uint(key);
    if (v < static_cast<std::uint64_t>(lo) ||
        v > static_cast<std::uint64_t>(hi)) {
      fail(ErrorCode::kBadValue, cat("field '", key, "' must be in [", lo,
                                     ", ", hi, "], got ", v));
    }
    return static_cast<int>(v);
  }

  bool has(const std::string& key) const { return by_name_.count(key) > 0; }

  /// Every field must have been consumed by now.
  void finish() const {
    for (const auto& [key, value] : fields_) {
      (void)value;
      if (taken_.count(key) == 0) {
        fail(ErrorCode::kUnknownField,
             "field '" + key + "' is not part of this request");
      }
    }
  }

 private:
  const Value& take(const std::string& key) {
    auto it = by_name_.find(key);
    if (it == by_name_.end()) {
      fail(ErrorCode::kMissingField, "required field '" + key + "' is absent");
    }
    taken_.insert(key);
    return *it->second;
  }

  std::vector<std::pair<std::string, Value>> fields_;
  std::map<std::string, const Value*> by_name_;
  std::set<std::string> taken_;
};

}  // namespace

const char* error_code_name(ErrorCode code) {
  const auto idx = static_cast<std::size_t>(code);
  RRFD_REQUIRE(idx < std::size(kErrorNames));
  return kErrorNames[idx];
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += kHex[static_cast<unsigned char>(c) & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

Request parse_request(const std::string& line) {
  // Torn-line guard first: a line that does not close its object is the
  // signature of an interleaved or interrupted append (same heuristic as
  // the trace reader), and gets its own name so clients can tell a
  // framing failure from a malformed-but-whole request.
  std::size_t end = line.size();
  while (end > 0 && (line[end - 1] == ' ' || line[end - 1] == '\r')) --end;
  if (end == 0 || line[end - 1] != '}') {
    fail(ErrorCode::kTornLine,
         "line does not end in '}': likely a torn line from a "
         "concurrent/interrupted append");
  }

  Fields fields(Scanner(line.substr(0, end)).object());

  if (!fields.has("schema")) {
    fail(ErrorCode::kBadVersion, "request carries no schema field");
  }
  const std::string schema = fields.str("schema");
  if (schema != kJobSchema) {
    fail(ErrorCode::kBadVersion, "unsupported schema '" + schema +
                                     "' (this server speaks " +
                                     std::string(kJobSchema) + ")");
  }

  Request req;
  const std::string op = fields.str("op");
  if (op == "stats") {
    req.op = Op::kStats;
    fields.finish();
    return req;
  }
  if (op != "submit") {
    fail(ErrorCode::kUnknownOp, "unknown op '" + op + "'");
  }
  req.op = Op::kSubmit;
  req.client = fields.str("client");
  req.id = fields.str("id");
  if (req.client.empty() || req.id.empty()) {
    fail(ErrorCode::kBadValue, "client and id must be non-empty");
  }

  const std::string kind = fields.str("kind");
  if (kind == "sweep") {
    req.kind = JobKind::kSweep;
    req.n = fields.bounded("n", 1, 64);
    req.k = fields.bounded("k", 1, req.n);
    req.trials = fields.bounded("trials", 1, 100000);
    req.seed = fields.uint("seed");
  } else if (kind == "modelcheck") {
    req.kind = JobKind::kModelCheck;
    req.n = fields.bounded("n", 1, 6);
    req.rounds = fields.bounded("rounds", 1, 4);
    req.spec_a = fields.str("spec_a");
    req.spec_b = fields.str("spec_b");
    // Validate (and later canonicalize) through the HO parser now, so a
    // malformed spec is a named admission failure, not a mid-execution
    // surprise delivered to every deduped waiter.
    for (const std::string* spec : {&req.spec_a, &req.spec_b}) {
      try {
        (void)ho::parse_spec(*spec);
      } catch (const ContractViolation& e) {
        fail(ErrorCode::kBadValue,
             "spec '" + *spec + "' does not parse: " + e.what());
      }
    }
  } else if (kind == "replay") {
    req.kind = JobKind::kReplay;
    const std::string protocol = fields.str("protocol");
    if (protocol == "flood_min") {
      req.protocol = ReplayProtocol::kFloodMin;
      req.f = fields.bounded("f", 0, 63);
    } else if (protocol == "kset") {
      req.protocol = ReplayProtocol::kKSet;
      req.k = fields.bounded("k", 1, 64);
    } else {
      fail(ErrorCode::kBadValue, "unknown replay protocol '" + protocol + "'");
    }
    req.trace = fields.str("trace");
    // Validate the embedded trace eagerly for the same reason as specs.
    try {
      std::istringstream is(req.trace);
      (void)trace::read_trace(is);
    } catch (const ContractViolation& e) {
      fail(ErrorCode::kBadValue,
           std::string("embedded trace does not parse: ") + e.what());
    }
  } else {
    fail(ErrorCode::kUnknownKind, "unknown job kind '" + kind + "'");
  }

  fields.finish();
  return req;
}

std::string Request::canonical() const {
  RRFD_REQUIRE_MSG(op == Op::kSubmit, "only submitted jobs have a canonical form");
  switch (kind) {
    case JobKind::kSweep:
      return cat("sweep(n=", n, ",k=", k, ",trials=", trials, ")");
    case JobKind::kModelCheck: {
      // Canonical spec text: whitespace and sugar differences between
      // submissions must not defeat the cache.
      const std::string a = ho::to_text(ho::parse_spec(spec_a));
      const std::string b = ho::to_text(ho::parse_spec(spec_b));
      return cat("modelcheck(n=", n, ",rounds=", rounds, ",a=", a, ",b=", b,
                 ")");
    }
    case JobKind::kReplay: {
      const std::string proto = protocol == ReplayProtocol::kFloodMin
                                    ? cat("flood_min,f=", f)
                                    : cat("kset,k=", k);
      std::ostringstream digest;
      digest << std::hex << fnv1a(trace);
      return cat("replay(", proto, ",trace=", digest.str(), ":",
                 trace.size(), ")");
    }
  }
  RRFD_ENSURE_MSG(false, "unreachable job kind");
}

}  // namespace rrfd::serve
