// Executing one admitted job against the existing engines.
//
// Each kind maps onto machinery the repository already trusts:
//
//   sweep      -> sweep::run over one-round k-set agreement trials under
//                 seeded k-uncertainty adversaries (the E1 workload);
//                 one `row` per trial carrying the decision digest.
//   modelcheck -> ho::compile_text both specs, then
//                 sweep::equivalent_exhaustive on the word path; rows
//                 carry the per-direction verdicts and pattern counts.
//   replay     -> parse the uploaded rrfd-trace-v1, re-instantiate the
//                 named protocol, re-run it under the trace's scripted
//                 adversary, and verify_matches the re-execution against
//                 the recording. Divergence is a named failure
//                 ("replay_divergence"), byte-identity a result row.
//
// Every result is a pure function of (Request::canonical(), seed): no
// wall clock, no environment, no iteration-order leaks -- which is what
// entitles the server to cache it (cache.h). The caller is responsible
// for tracer exclusivity: replay attaches the process-wide trace sink,
// so it must never run concurrently with any other job (server.cpp
// holds a shared_mutex exclusively around replay execution).
#pragma once

#include "serve/cache.h"
#include "serve/wire.h"

namespace rrfd::serve {

/// Executes `req` (op == kSubmit) and returns its result stream.
/// `sweep_threads` is the inner fan-out for sweep/modelcheck jobs
/// (0/1 = serial, the RRFD_SWEEP_THREADS convention); it never changes
/// result bytes, only wall-clock. Execution failures come back as a
/// failed JobResult, not an exception.
JobResult execute(const Request& req, int sweep_threads);

}  // namespace rrfd::serve
