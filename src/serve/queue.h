// Admission-controlled FIFO work queue for the job server.
//
// Admission happens at push time, synchronously, so a client learns the
// fate of a submission before the next line is read: either the ticket
// is queued (FIFO, popped by worker threads), or it is *shed* with a
// named reason. Nothing is ever dropped silently -- the shed counters
// plus the popped counter always account for every accepted push
// (`server_test` stress-pins accepted == delivered + shed == submitted).
//
// Two caps, both fixed at construction:
//   * `depth`      -- total tickets queued (backpressure for everyone);
//   * `per_client` -- tickets queued per tenant, so one chatty client
//                     cannot occupy the whole queue (multi-tenant
//                     fairness; the per-client count is released when a
//                     worker pops the ticket).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace rrfd::serve {

/// One queued unit of work: the tenant it is accounted to plus the
/// closure a worker runs.
struct Ticket {
  std::string client;
  std::function<void()> work;
};

enum class Admission : std::uint8_t {
  kAccepted,      ///< queued; a worker will run it
  kShedQueueFull, ///< total depth cap hit
  kShedClientCap, ///< this client's cap hit
  kShedClosed,    ///< the queue is shutting down
};

const char* admission_name(Admission admission);

class AdmissionQueue {
 public:
  struct Options {
    std::size_t depth = 64;
    std::size_t per_client = 8;
  };

  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t shed_queue_full = 0;
    std::uint64_t shed_client_cap = 0;
    std::uint64_t shed_closed = 0;
    std::uint64_t popped = 0;
  };

  explicit AdmissionQueue(Options options);

  /// Admits or sheds `ticket`; never blocks.
  Admission push(Ticket ticket);

  /// Blocks until a ticket is available or the queue is closed and
  /// drained; returns false only in the latter case.
  bool pop(Ticket* out);

  /// Stops admitting; pending tickets still drain through pop().
  void close();

  Stats stats() const;
  std::size_t size() const;

 private:
  const Options options_;
  mutable Mutex mu_;
  CondVar ready_;
  std::deque<Ticket> queue_ RRFD_GUARDED_BY(mu_);
  std::map<std::string, std::size_t> per_client_ RRFD_GUARDED_BY(mu_);
  Stats stats_ RRFD_GUARDED_BY(mu_);
  bool closed_ RRFD_GUARDED_BY(mu_) = false;
};

}  // namespace rrfd::serve
