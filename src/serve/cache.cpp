#include "serve/cache.h"

#include <utility>

#include "util/check.h"
#include "util/str.h"

namespace rrfd::serve {

ResultCache::ResultCache(std::string git_rev) : git_rev_(std::move(git_rev)) {
  RRFD_REQUIRE_MSG(!git_rev_.empty(), "cache rev must be non-empty");
}

std::string ResultCache::key(const std::string& canonical,
                             std::uint64_t seed) const {
  return cat(canonical, "|seed=", seed, "|rev=", git_rev_);
}

ResultCache::Outcome ResultCache::submit(const std::string& key,
                                         Delivery delivery,
                                         std::shared_ptr<const JobResult>* hit) {
  RRFD_REQUIRE(hit != nullptr);
  MutexLock lock(mu_);
  if (!caching_enabled()) {
    // Refusal path: results stamped `unknown` would collide across
    // builds, so nothing is stored and nothing is deduped.
    ++stats_.bypasses;
    return Outcome::kBypass;
  }
  auto [it, inserted] = entries_.try_emplace(key);
  if (inserted) {
    ++stats_.leads;
    return Outcome::kLead;
  }
  if (!it->second.done) {
    ++stats_.joins;
    it->second.waiters.push_back(std::move(delivery));
    return Outcome::kJoined;
  }
  ++stats_.hits;
  *hit = it->second.result;
  return Outcome::kHit;
}

void ResultCache::publish(const std::string& key, JobResult result) {
  RRFD_REQUIRE_MSG(!result.failed, "publish() is for successes; use fail()");
  auto stored = std::make_shared<const JobResult>(std::move(result));
  std::vector<Delivery> waiters;
  {
    MutexLock lock(mu_);
    auto it = entries_.find(key);
    RRFD_REQUIRE_MSG(it != entries_.end() && !it->second.done,
                     "publish() without a leading submit(): " + key);
    it->second.done = true;
    it->second.result = stored;
    waiters.swap(it->second.waiters);
  }
  for (const Delivery& waiter : waiters) waiter(*stored);
}

void ResultCache::fail(const std::string& key, JobResult error) {
  RRFD_REQUIRE_MSG(error.failed, "fail() requires a failed result");
  std::vector<Delivery> waiters;
  {
    MutexLock lock(mu_);
    auto it = entries_.find(key);
    RRFD_REQUIRE_MSG(it != entries_.end() && !it->second.done,
                     "fail() without a leading submit(): " + key);
    waiters.swap(it->second.waiters);
    entries_.erase(it);
    ++stats_.failures;
  }
  for (const Delivery& waiter : waiters) waiter(error);
}

ResultCache::Stats ResultCache::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

}  // namespace rrfd::serve
