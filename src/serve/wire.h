// The `rrfd-job-v1` wire protocol: line-delimited JSON over a local
// pipe pair (sweep_serve reads requests on stdin, writes responses on
// stdout) or any byte stream a caller wants to frame lines over.
//
// Requests -- one object per line, strictly parsed (DESIGN.md "Job
// server"): a missing/mismatched schema, an unknown op/kind/field, a
// duplicated field, an out-of-range value, or a line that does not close
// its object are all *named* rejections (`ErrorCode`), never silent
// drops and never best-effort guesses. Examples:
//
//   {"schema":"rrfd-job-v1","op":"submit","client":"c1","id":"j1",
//    "kind":"sweep","n":6,"k":2,"trials":100,"seed":7}
//   {"schema":"rrfd-job-v1","op":"submit","client":"c1","id":"j2",
//    "kind":"modelcheck","spec_a":"loss_cap(1)","spec_b":"mobile(1)",
//    "n":3,"rounds":1}
//   {"schema":"rrfd-job-v1","op":"submit","client":"c1","id":"j3",
//    "kind":"replay","protocol":"flood_min","f":2,
//    "trace":"{\"schema\":\"rrfd-trace-v1\",...}\n..."}
//   {"schema":"rrfd-job-v1","op":"stats"}
//
// Responses are rendered by the Server (server.h); this header owns the
// request side plus the shared JSON-string escaping. The *result stream*
// of a job (its `row` and `done` payloads) is a pure function of the
// job's canonical form and seed, which is what makes results cacheable
// by (canonical form, seed, git rev) -- see cache.h.
#pragma once

#include <cstdint>
#include <string>

namespace rrfd::serve {

inline constexpr const char* kJobSchema = "rrfd-job-v1";

/// Named rejection reasons. Every malformed request maps to exactly one
/// of these; the code is echoed verbatim in the `error` response line so
/// clients (and the admission tests) can assert on it.
enum class ErrorCode : std::uint8_t {
  kTornLine,        ///< line does not close its object (torn/interleaved)
  kParseError,      ///< not a flat JSON object of known value shapes
  kBadVersion,      ///< schema field missing or not rrfd-job-v1
  kUnknownOp,       ///< op is not submit|stats
  kUnknownKind,     ///< kind is not sweep|modelcheck|replay
  kUnknownField,    ///< a field this op/kind does not define
  kDuplicateField,  ///< the same field appears twice
  kMissingField,    ///< a required field is absent
  kBadValue,        ///< a field parsed but is out of its documented range
};

const char* error_code_name(ErrorCode code);

/// Thrown by parse_request; carries the named code plus a human detail.
class WireError {
 public:
  WireError(ErrorCode code, std::string detail)
      : code_(code), detail_(std::move(detail)) {}

  ErrorCode code() const { return code_; }
  const std::string& detail() const { return detail_; }

 private:
  ErrorCode code_;
  std::string detail_;
};

enum class Op : std::uint8_t { kSubmit, kStats };
enum class JobKind : std::uint8_t { kSweep, kModelCheck, kReplay };

/// Replay workloads the server knows how to re-instantiate. A trace
/// records the adversary's choices, not the protocol, so the request
/// names the protocol that produced it (see exec.h).
enum class ReplayProtocol : std::uint8_t { kFloodMin, kKSet };

/// A validated request. For op == kSubmit exactly the fields of `kind`
/// are populated; everything else is zero/empty.
struct Request {
  Op op = Op::kSubmit;
  std::string client;  ///< tenant name (admission accounting key)
  std::string id;      ///< client-chosen correlation id, echoed back

  JobKind kind = JobKind::kSweep;

  // sweep
  int n = 0;
  int k = 0;
  int trials = 0;
  std::uint64_t seed = 0;

  // modelcheck (also uses n)
  std::string spec_a;
  std::string spec_b;
  int rounds = 0;

  // replay
  ReplayProtocol protocol = ReplayProtocol::kFloodMin;
  int f = 0;  ///< flood_min fault budget (kset reuses `k`)
  std::string trace;  ///< full rrfd-trace-v1 JSONL content

  /// The canonical form: a deterministic rendering of every
  /// result-affecting field except the seed (specs are canonicalized
  /// through the HO parser, traces through a content digest). Two
  /// requests with equal canonical forms and equal seeds have
  /// byte-identical result streams; see cache.h for the full cache key.
  std::string canonical() const;
};

/// Parses one request line strictly; throws WireError on any deviation.
Request parse_request(const std::string& line);

/// JSON string escaping shared by request parsing and response
/// rendering (ASCII control characters become \u00xx).
std::string json_escape(const std::string& s);

/// FNV-1a over a byte string; the digest used for trace canonicalization
/// and result-stream checksums.
std::uint64_t fnv1a(const std::string& bytes);

}  // namespace rrfd::serve
