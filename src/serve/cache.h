// Result cache + in-flight dedup for the job server.
//
// Determinism is what makes this sound: results are a pure function of
// (job canonical form, seed, git rev) -- the sweep contract pins the
// first two (DESIGN.md "Sweep determinism"), and the rev pins the code.
// The cache key is exactly that triple:
//
//   <canonical>|seed=<seed>|rev=<git rev>
//
// Submitting a key that is already resolved replays the stored result
// stream (a *hit*); submitting a key that is currently executing
// attaches the caller to the in-flight entry (a *join*) so N concurrent
// identical submissions cost one execution and every submitter receives
// the byte-identical stream. Failures are delivered to joined waiters
// but never stored: a transient failure must not poison the key.
//
// Unknown-rev refusal: a binary built outside git stamps its traces
// `unknown` (trace.cpp's RRFD_GIT_REV fallback). Two *different* builds
// would then share every cache key -- stale results served across
// revisions. A cache constructed with rev "unknown" therefore refuses
// to store or join anything: every submission is a kBypass that the
// caller executes itself (counted, and tested in cache_test).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace rrfd::serve {

/// The deliverable outcome of one job execution: the result stream's
/// row payloads and done payload (rendered without the per-submission
/// envelope, so every subscriber -- whatever id it submitted under --
/// receives byte-identical result bytes), or a named execution error.
struct JobResult {
  std::vector<std::string> rows;  ///< payloads for `row` lines
  std::string done;               ///< payload for the `done` line
  bool failed = false;
  std::string error_code;         ///< e.g. "exec_error", "replay_divergence"
  std::string error_detail;
};

inline constexpr const char* kUnknownRev = "unknown";

class ResultCache {
 public:
  using Delivery = std::function<void(const JobResult&)>;

  enum class Outcome : std::uint8_t {
    kLead,    ///< caller must execute, then publish() or fail()
    kJoined,  ///< attached to an in-flight execution; delivery happens later
    kHit,     ///< stored result; delivery already invoked
    kBypass,  ///< caching disabled (unknown rev); caller executes, nothing stored
  };

  struct Stats {
    std::uint64_t leads = 0;    ///< executions started (cache misses)
    std::uint64_t joins = 0;    ///< in-flight dedups
    std::uint64_t hits = 0;     ///< stored-result replays
    std::uint64_t bypasses = 0; ///< unknown-rev refusals
    std::uint64_t failures = 0; ///< executions that failed (not stored)
  };

  explicit ResultCache(std::string git_rev);

  const std::string& git_rev() const { return git_rev_; }
  bool caching_enabled() const { return git_rev_ != kUnknownRev; }

  /// Builds the full cache key for a canonical form + seed under this
  /// cache's rev.
  std::string key(const std::string& canonical, std::uint64_t seed) const;

  /// Registers a submission. kHit hands the stored result back through
  /// `*hit` (the delivery is NOT invoked -- the caller renders it so it
  /// can put its ack line in front); kJoined stores `delivery` to be
  /// invoked from the leader's publish()/fail(); kLead and kBypass
  /// return nothing -- the caller executes the job (and, for kLead,
  /// must publish() or fail() exactly once).
  Outcome submit(const std::string& key, Delivery delivery,
                 std::shared_ptr<const JobResult>* hit);

  /// Resolves an in-flight key: stores the result and delivers it to
  /// every joined waiter. `result.failed` must be false.
  void publish(const std::string& key, JobResult result);

  /// Resolves an in-flight key with a failure: delivers the error to
  /// every joined waiter and erases the entry (failures are not cached).
  void fail(const std::string& key, JobResult error);

  Stats stats() const;

 private:
  struct Entry {
    bool done = false;
    std::shared_ptr<const JobResult> result;  ///< set when done
    std::vector<Delivery> waiters;            ///< joined while in flight
  };

  const std::string git_rev_;
  mutable Mutex mu_;
  std::map<std::string, Entry> entries_ RRFD_GUARDED_BY(mu_);
  Stats stats_ RRFD_GUARDED_BY(mu_);
};

}  // namespace rrfd::serve
