// The multi-tenant deterministic job server.
//
// One Server owns an admission queue (queue.h), a result cache
// (cache.h), and a pool of worker threads executing jobs (exec.h).
// Transport is the caller's problem: submit_line() takes one
// rrfd-job-v1 request line and a sink that receives the response lines
// -- the sweep_serve CLI (tools/) frames stdin/stdout over it, and the
// tests drive it in-process from many client threads at once.
//
// Response discipline (DESIGN.md "Job server"):
//
//   * Every request line produces exactly one *ack* line -- `accepted`
//     (with the cache key and a source: execute | cache | joined |
//     uncached), `shed` (named reason, queue.h), or `error` (named
//     code, wire.h) -- and every accepted submission exactly one
//     *terminal* line (`done` on success, `error` on execution
//     failure), with its `row` lines in between. Nothing is dropped
//     silently; the stress test pins acks == submissions.
//   * The result stream (`row` payloads + `done` payload) is a pure
//     function of (canonical form, seed): duplicate submissions --
//     concurrent or later -- receive byte-identical result bytes while
//     costing one execution (leader/join/hit dedup in cache.h).
//   * A sink may be invoked from a worker thread (join deliveries run on
//     the leader's worker); sinks must be internally synchronized if
//     they share an output stream. Lines are handed over whole.
//
// Replay jobs attach the process-wide trace sink, so the server runs
// them exclusively (a shared_mutex: sweeps/modelchecks share, replays
// are exclusive) -- tracer state never leaks between jobs.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "serve/cache.h"
#include "serve/queue.h"

namespace rrfd::serve {

struct ServerOptions {
  int workers = 2;               ///< worker threads executing jobs
  AdmissionQueue::Options queue; ///< admission caps
  int sweep_threads = 0;         ///< inner fan-out per job (0/1 = serial)
  /// Revision stamped into cache keys. Empty selects the build's
  /// RRFD_GIT_REV (trace::build_git_rev()); the literal "unknown"
  /// disables caching entirely (see cache.h).
  std::string git_rev;
};

struct ServerStats {
  std::uint64_t requests = 0;     ///< lines submitted
  std::uint64_t wire_errors = 0;  ///< lines rejected before admission
  std::uint64_t executed = 0;     ///< jobs actually run by workers
  AdmissionQueue::Stats queue;
  ResultCache::Stats cache;
};

class Server {
 public:
  /// Receives one whole response line (no trailing newline).
  using LineSink = std::function<void(const std::string&)>;

  explicit Server(ServerOptions options = {});
  ~Server();  ///< shutdown(): drains accepted work, joins workers

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Handles one request line; response lines go to `sink` (ack
  /// synchronously; rows/terminal possibly later from a worker thread).
  void submit_line(const std::string& line, const LineSink& sink);

  /// Blocks until every accepted job has delivered its terminal line.
  void drain();

  /// Stops admitting, drains the queue, joins the workers. Idempotent.
  void shutdown();

  ServerStats stats() const;
  const std::string& git_rev() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace rrfd::serve
