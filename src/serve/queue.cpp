#include "serve/queue.h"

#include "util/check.h"

namespace rrfd::serve {

namespace {

constexpr const char* kAdmissionNames[] = {
    "accepted", "queue_full", "client_cap", "closed"};

}  // namespace

const char* admission_name(Admission admission) {
  const auto idx = static_cast<std::size_t>(admission);
  RRFD_REQUIRE(idx < std::size(kAdmissionNames));
  return kAdmissionNames[idx];
}

AdmissionQueue::AdmissionQueue(Options options) : options_(options) {
  RRFD_REQUIRE_MSG(options.depth > 0 && options.per_client > 0,
                   "queue caps must be positive");
}

Admission AdmissionQueue::push(Ticket ticket) {
  MutexLock lock(mu_);
  if (closed_) {
    ++stats_.shed_closed;
    return Admission::kShedClosed;
  }
  if (queue_.size() >= options_.depth) {
    ++stats_.shed_queue_full;
    return Admission::kShedQueueFull;
  }
  std::size_t& in_queue = per_client_[ticket.client];
  if (in_queue >= options_.per_client) {
    ++stats_.shed_client_cap;
    return Admission::kShedClientCap;
  }
  ++in_queue;
  ++stats_.accepted;
  queue_.push_back(std::move(ticket));
  ready_.notify_one();
  return Admission::kAccepted;
}

bool AdmissionQueue::pop(Ticket* out) {
  RRFD_REQUIRE(out != nullptr);
  MutexLock lock(mu_);
  while (!closed_ && queue_.empty()) ready_.wait(mu_);
  if (queue_.empty()) return false;
  *out = std::move(queue_.front());
  queue_.pop_front();
  ++stats_.popped;
  auto it = per_client_.find(out->client);
  RRFD_ENSURE_MSG(it != per_client_.end() && it->second > 0,
                  "per-client admission accounting out of sync");
  if (--it->second == 0) per_client_.erase(it);
  return true;
}

void AdmissionQueue::close() {
  MutexLock lock(mu_);
  closed_ = true;
  ready_.notify_all();
}

AdmissionQueue::Stats AdmissionQueue::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

std::size_t AdmissionQueue::size() const {
  MutexLock lock(mu_);
  return queue_.size();
}

}  // namespace rrfd::serve
