#include "serve/exec.h"

#include <sstream>
#include <string>
#include <vector>

#include "agreement/flood_min.h"
#include "agreement/one_round_kset.h"
#include "core/adversaries.h"
#include "core/engine.h"
#include "core/submodel.h"
#include "ho/compile.h"
#include "sweep/submodel_parallel.h"
#include "sweep/sweep.h"
#include "trace/replay.h"
#include "trace/trace.h"
#include "util/check.h"
#include "util/str.h"

namespace rrfd::serve {

namespace {

/// Digest of one engine run's decisions (same fold as the sweep tests).
template <typename Decision>
std::uint64_t decisions_digest(
    const std::vector<std::optional<Decision>>& decisions) {
  std::uint64_t digest = 0xcbf29ce484222325ULL;
  for (const auto& d : decisions) {
    digest ^= static_cast<std::uint64_t>(d ? *d : -1);
    digest *= 0x100000001b3ULL;
  }
  return digest;
}

/// Seals a result: the done payload carries the row count plus an
/// FNV-1a over the row payload bytes, so "byte-identical result stream"
/// is checkable from the done line alone.
JobResult seal(JobResult result) {
  std::string all;
  for (const std::string& row : result.rows) {
    all += row;
    all += '\n';
  }
  result.done = cat("\"rows\":", result.rows.size(),
                    ",\"stream_digest\":", fnv1a(all), result.done);
  return result;
}

JobResult failure(std::string code, std::string detail) {
  JobResult result;
  result.failed = true;
  result.error_code = std::move(code);
  result.error_detail = std::move(detail);
  return result;
}

// --------------------------------------------------------------------------
// sweep: the E1 workload, one row per trial
// --------------------------------------------------------------------------

JobResult run_sweep(const Request& req, int sweep_threads) {
  const int n = req.n;
  const int k = req.k;
  const auto digests = sweep::run(
      req.trials, req.seed,
      [n, k](int, Rng& rng) {
        std::vector<agreement::OneRoundKSet> ps;
        for (int i = 0; i < n; ++i) ps.emplace_back(i + 1);
        core::KUncertaintyAdversary adv(n, k, rng());
        const auto run = core::run_rounds(ps, adv);
        return decisions_digest(run.decisions);
      },
      sweep_threads);
  JobResult result;
  result.rows.reserve(digests.size());
  for (std::size_t trial = 0; trial < digests.size(); ++trial) {
    result.rows.push_back(
        cat("\"trial\":", trial, ",\"digest\":", digests[trial]));
  }
  return seal(std::move(result));
}

// --------------------------------------------------------------------------
// modelcheck: exhaustive spec-vs-spec placement
// --------------------------------------------------------------------------

JobResult run_modelcheck(const Request& req, int sweep_threads) {
  const core::PredicatePtr a = ho::compile_text(req.spec_a);
  const core::PredicatePtr b = ho::compile_text(req.spec_b);
  const core::EquivalenceResult eq = sweep::equivalent_exhaustive(
      *a, *b, req.n, req.rounds, sweep_threads);
  JobResult result;
  const auto row = [](const char* dir, const core::ImplicationResult& r) {
    return cat("\"dir\":\"", dir, "\",\"holds\":", r.holds ? "true" : "false",
               ",\"patterns\":", r.patterns_checked);
  };
  result.rows.push_back(row("forward", eq.forward));
  result.rows.push_back(row("backward", eq.backward));
  result.done = cat(",\"equivalent\":",
                    eq.forward.holds && eq.backward.holds ? "true" : "false");
  return seal(std::move(result));
}

// --------------------------------------------------------------------------
// replay: byte-identical re-execution of an uploaded trace
// --------------------------------------------------------------------------

JobResult run_replay(const Request& req) {
  std::istringstream is(req.trace);
  trace::TraceReplayer replayer(trace::read_trace(is));
  if (replayer.substrate() != trace::Substrate::kEngine) {
    return failure("unsupported_substrate",
                   cat("replay serves engine traces; got ",
                       trace::substrate_name(replayer.substrate())));
  }
  const int n = replayer.n();
  const core::AdversaryPtr adversary = replayer.scripted_adversary();

  trace::CaptureRecorder capture;
  std::uint64_t digest = 0;
  {
    trace::ScopedTrace attach(&capture);
    if (req.protocol == ReplayProtocol::kFloodMin) {
      // The flight_recorder example's workload: FloodMin(i*3+1, f+1).
      std::vector<agreement::FloodMin> ps;
      for (int i = 0; i < n; ++i) ps.emplace_back(i * 3 + 1, req.f + 1);
      digest = decisions_digest(core::run_rounds(ps, *adversary).decisions);
    } else {
      std::vector<agreement::OneRoundKSet> ps;
      for (int i = 0; i < n; ++i) ps.emplace_back(i + 1);
      digest = decisions_digest(core::run_rounds(ps, *adversary).decisions);
    }
  }
  try {
    replayer.verify_matches(capture.events());
  } catch (const ContractViolation& e) {
    return failure("replay_divergence", e.what());
  }
  JobResult result;
  result.rows.push_back(cat("\"events\":", capture.events().size(),
                            ",\"byte_identical\":true,\"decision_digest\":",
                            digest, ",\"trace_rev\":\"",
                            json_escape(replayer.trace().git_rev), "\""));
  return seal(std::move(result));
}

}  // namespace

JobResult execute(const Request& req, int sweep_threads) {
  RRFD_REQUIRE_MSG(req.op == Op::kSubmit, "execute() takes submitted jobs");
  try {
    switch (req.kind) {
      case JobKind::kSweep: return run_sweep(req, sweep_threads);
      case JobKind::kModelCheck: return run_modelcheck(req, sweep_threads);
      case JobKind::kReplay: return run_replay(req);
    }
    RRFD_ENSURE_MSG(false, "unreachable job kind");
  } catch (const std::exception& e) {
    return failure("exec_error", e.what());
  }
}

}  // namespace rrfd::serve
