// Exhaustive schedule exploration (bounded model checking) for protocols
// running on the cooperative runtime.
//
// The explorer enumerates the tree of scheduler choices by depth-first
// search with replay: each run follows a forced prefix and then defaults
// to the first alternative, recording the alternatives available at every
// new decision point; backtracking advances the deepest unexplored branch.
// With a crash budget, "crash p" choices are enumerated alongside "step p"
// choices, so safety properties are checked against every interleaving
// *and* every crash placement (up to the budget).
//
// The DFS tree can also be partitioned by its first decision: discover
// the root alternatives with root_alternatives(), then explore each
// root-fixed subtree independently with explore_shard(). The shards are
// disjoint and cover the tree, and shard k enumerates exactly the
// schedules the serial explore() visits between advancing the root to its
// k-th alternative and the next root advance -- so running the shards in
// index order reproduces the serial visit sequence exactly. sweep::
// explore_sharded (src/sweep) fans the shards across a thread pool.
//
// Exhaustive exploration is exponential; it is meant for small instances
// (n <= 3, short protocols) as in tests/shm/adopt_commit_test.cpp, which
// model-checks the paper's Section 4.2 protocol.
#pragma once

#include <functional>

#include "runtime/sim.h"

namespace rrfd::runtime {

class ScheduleExplorer {
 public:
  struct Options {
    long max_schedules = 100000;  ///< stop after this many runs (per shard)
    int max_crashes = 0;          ///< crash-choice budget per schedule
  };

  struct Stats {
    long schedules = 0;   ///< runs executed
    bool exhausted = false;  ///< true iff the whole (sub)tree was covered
  };

  ScheduleExplorer() = default;
  explicit ScheduleExplorer(Options options) : options_(options) {}

  /// Runs `run_one` once per schedule. `run_one` must build a *fresh*
  /// simulation, run it with the provided scheduler, and perform its
  /// assertions; any exception it throws aborts the exploration and
  /// propagates to the caller (carrying the failing schedule's context).
  Stats explore(const std::function<void(Scheduler&)>& run_one);

  /// Discovers the alternatives of the tree's first decision point by
  /// replaying one schedule. Executes `run_one` exactly once (a probe run
  /// whose side effects the caller must expect); the result is empty iff
  /// the program has no decision point at all, in which case that probe
  /// run was the tree's only schedule.
  std::vector<Scheduler::Choice> root_alternatives(
      const std::function<void(Scheduler&)>& run_one) const;

  /// Explores the subtree in which the first decision is pinned to
  /// `root[shard]`, where `root` is the list returned by
  /// root_alternatives(). Stats cover this shard only (max_schedules is a
  /// per-shard budget); `first_ordinal` offsets the schedule ordinals in
  /// flight-recorder events so a shard-sequential traced run is
  /// byte-identical to the serial one.
  Stats explore_shard(const std::vector<Scheduler::Choice>& root,
                      std::size_t shard,
                      const std::function<void(Scheduler&)>& run_one,
                      long first_ordinal = 0);

 private:
  struct Node {
    std::vector<Scheduler::Choice> alternatives;
    std::size_t chosen = 0;
  };

  /// Scheduler used for one replayed run; records new decision points.
  class TreeScheduler final : public Scheduler {
   public:
    TreeScheduler(std::vector<Node>& path, int max_crashes)
        : path_(path), max_crashes_(max_crashes) {}

    Choice pick(const ProcessSet& runnable, int step) override;

    /// Decision points this run actually consumed.
    std::size_t depth() const { return depth_; }

   private:
    std::vector<Node>& path_;
    int max_crashes_;
    int crashes_ = 0;
    std::size_t depth_ = 0;
  };

  /// The DFS loop. `path` is the starting replay prefix; the first
  /// `frozen` nodes are pinned -- backtracking never advances them, and
  /// reaching them means the (sub)tree is exhausted.
  Stats explore_impl(std::vector<Node> path, std::size_t frozen,
                     long first_ordinal,
                     const std::function<void(Scheduler&)>& run_one);

  Options options_{};
};

}  // namespace rrfd::runtime
