// Exhaustive schedule exploration (bounded model checking) for protocols
// running on the cooperative runtime.
//
// The explorer enumerates the tree of scheduler choices by depth-first
// search with replay: each run follows a forced prefix and then defaults
// to the first alternative, recording the alternatives available at every
// new decision point; backtracking advances the deepest unexplored branch.
// With a crash budget, "crash p" choices are enumerated alongside "step p"
// choices, so safety properties are checked against every interleaving
// *and* every crash placement (up to the budget).
//
// Exhaustive exploration is exponential; it is meant for small instances
// (n <= 3, short protocols) as in tests/shm/adopt_commit_test.cpp, which
// model-checks the paper's Section 4.2 protocol.
#pragma once

#include <functional>

#include "runtime/sim.h"

namespace rrfd::runtime {

class ScheduleExplorer {
 public:
  struct Options {
    long max_schedules = 100000;  ///< stop after this many runs
    int max_crashes = 0;          ///< crash-choice budget per schedule
  };

  struct Stats {
    long schedules = 0;   ///< runs executed
    bool exhausted = false;  ///< true iff the whole tree was covered
  };

  ScheduleExplorer() = default;
  explicit ScheduleExplorer(Options options) : options_(options) {}

  /// Runs `run_one` once per schedule. `run_one` must build a *fresh*
  /// simulation, run it with the provided scheduler, and perform its
  /// assertions; any exception it throws aborts the exploration and
  /// propagates to the caller (carrying the failing schedule's context).
  Stats explore(const std::function<void(Scheduler&)>& run_one);

 private:
  struct Node {
    std::vector<Scheduler::Choice> alternatives;
    std::size_t chosen = 0;
  };

  /// Scheduler used for one replayed run; records new decision points.
  class TreeScheduler final : public Scheduler {
   public:
    TreeScheduler(std::vector<Node>& path, int max_crashes)
        : path_(path), max_crashes_(max_crashes) {}

    Choice pick(const ProcessSet& runnable, int step) override;

   private:
    std::vector<Node>& path_;
    int max_crashes_;
    int crashes_ = 0;
    std::size_t depth_ = 0;
  };

  Options options_{};
};

}  // namespace rrfd::runtime
