// Stock schedulers for the cooperative runtime.
//
// RoundRobinScheduler  -- fair deterministic baseline.
// RandomScheduler      -- seeded uniform choice with optional crash
//                         injection; the workhorse of randomized sweeps.
// ScriptedScheduler    -- replays an explicit choice sequence (falling back
//                         to lowest-id) for hand-crafted counterexamples.
#pragma once

#include <vector>

#include "runtime/sim.h"
#include "util/rng.h"

namespace rrfd::runtime {

/// Cycles through runnable processes in id order.
class RoundRobinScheduler final : public Scheduler {
 public:
  Choice pick(const ProcessSet& runnable, int step) override;

 private:
  ProcId last_ = -1;
};

/// Uniform random choice among runnable processes. With probability
/// `crash_prob` (and while under the crash budget) the chosen process is
/// crashed instead of stepped.
class RandomScheduler final : public Scheduler {
 public:
  explicit RandomScheduler(std::uint64_t seed, double crash_prob = 0.0,
                           int max_crashes = 0);

  Choice pick(const ProcessSet& runnable, int step) override;

  int crashes_injected() const { return crashes_; }

 private:
  Rng rng_;
  double crash_prob_;
  int max_crashes_;
  int crashes_ = 0;
};

/// Follows a scripted sequence of choices; when the script is exhausted or
/// names a process that is not runnable, falls back to the lowest-id
/// runnable process.
class ScriptedScheduler final : public Scheduler {
 public:
  explicit ScriptedScheduler(std::vector<Choice> script);

  Choice pick(const ProcessSet& runnable, int step) override;

 private:
  std::vector<Choice> script_;
  std::size_t next_ = 0;
};

}  // namespace rrfd::runtime
