#include "runtime/explorer.h"

#include "trace/trace.h"
#include "util/check.h"

namespace rrfd::runtime {

Scheduler::Choice ScheduleExplorer::TreeScheduler::pick(
    const ProcessSet& runnable, int /*step*/) {
  RRFD_REQUIRE(!runnable.empty());
  if (depth_ == path_.size()) {
    // New decision point: enumerate all alternatives (steps first, then
    // crashes within the remaining budget) and take the first.
    Node node;
    for (ProcId p : runnable.members()) node.alternatives.push_back({p, false});
    if (crashes_ < max_crashes_) {
      for (ProcId p : runnable.members()) node.alternatives.push_back({p, true});
    }
    path_.push_back(std::move(node));
  }
  const Node& node = path_[depth_];
  RRFD_ENSURE(node.chosen < node.alternatives.size());
  Choice c = node.alternatives[node.chosen];
  // Replay consistency: the tree must be deterministic under replay.
  RRFD_ENSURE_MSG(runnable.contains(c.next),
                  "nondeterministic simulation: replayed choice not runnable");
  ++depth_;
  if (c.crash) ++crashes_;
  return c;
}

ScheduleExplorer::Stats ScheduleExplorer::explore(
    const std::function<void(Scheduler&)>& run_one) {
  return explore_impl({}, /*frozen=*/0, /*first_ordinal=*/0, run_one);
}

std::vector<Scheduler::Choice> ScheduleExplorer::root_alternatives(
    const std::function<void(Scheduler&)>& run_one) const {
  std::vector<Node> path;
  TreeScheduler scheduler(path, options_.max_crashes);
  run_one(scheduler);
  if (path.empty()) return {};
  return path.front().alternatives;
}

ScheduleExplorer::Stats ScheduleExplorer::explore_shard(
    const std::vector<Scheduler::Choice>& root, std::size_t shard,
    const std::function<void(Scheduler&)>& run_one, long first_ordinal) {
  RRFD_REQUIRE(shard < root.size());
  // Reconstruct the root node exactly as the serial DFS holds it while
  // visiting this subtree: all alternatives present, `shard` chosen.
  // Shard 0 instead starts with an empty path, as serial DFS does on its
  // very first run: the run rediscovers the root with chosen = 0 (shard
  // 0's pin), and frozen = 1 still stops backtracking at the root -- this
  // keeps the traced schedule brackets (whose payload is the replayed
  // prefix depth) byte-identical to the serial stream.
  std::vector<Node> path;
  if (shard > 0) {
    Node node;
    node.alternatives = root;
    node.chosen = shard;
    path.push_back(std::move(node));
  }
  return explore_impl(std::move(path), /*frozen=*/1, first_ordinal, run_one);
}

ScheduleExplorer::Stats ScheduleExplorer::explore_impl(
    std::vector<Node> path, std::size_t frozen, long first_ordinal,
    const std::function<void(Scheduler&)>& run_one) {
  Stats stats;

  // Flight recorder: one round_start/round_end pair per explored schedule
  // ("round" = schedule ordinal), bracketing the runtime events the inner
  // Simulation emits. The trace of a failing exploration therefore ends
  // with the exact schedule (and its choices) that blew up.
  const bool tracing = trace::Tracer::on();
  constexpr auto kSub = trace::Substrate::kExplorer;

  while (stats.schedules < options_.max_schedules) {
    TreeScheduler scheduler(path, options_.max_crashes);
    if (tracing) {
      trace::record(trace::EventKind::kRoundStart, kSub, -1,
                    static_cast<std::int32_t>(first_ordinal + stats.schedules),
                    static_cast<std::uint64_t>(path.size()));
    }
    run_one(scheduler);
    ++stats.schedules;
    if (tracing) {
      trace::record(
          trace::EventKind::kRoundEnd, kSub, -1,
          static_cast<std::int32_t>(first_ordinal + stats.schedules - 1));
    }

    // Discard decision points the replayed run did not consume. A run can
    // terminate shallower than the stored path (e.g. a run_one whose
    // program length varies across calls); stale deeper nodes would then
    // be backtracked as if the run had reached them, yielding duplicate /
    // phantom schedules and a wrong `exhausted`.
    RRFD_ENSURE_MSG(scheduler.depth() >= frozen,
                    "schedule ended inside the pinned shard prefix");
    path.resize(scheduler.depth());

    // Backtrack: advance the deepest unpinned node with an unexplored
    // alternative.
    while (path.size() > frozen &&
           path.back().chosen + 1 >= path.back().alternatives.size()) {
      path.pop_back();
    }
    if (path.size() <= frozen) {
      stats.exhausted = true;
      return stats;
    }
    ++path.back().chosen;
  }
  return stats;
}

}  // namespace rrfd::runtime
