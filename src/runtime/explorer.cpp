#include "runtime/explorer.h"

#include "trace/trace.h"
#include "util/check.h"

namespace rrfd::runtime {

Scheduler::Choice ScheduleExplorer::TreeScheduler::pick(
    const ProcessSet& runnable, int /*step*/) {
  RRFD_REQUIRE(!runnable.empty());
  if (depth_ == path_.size()) {
    // New decision point: enumerate all alternatives (steps first, then
    // crashes within the remaining budget) and take the first.
    Node node;
    for (ProcId p : runnable.members()) node.alternatives.push_back({p, false});
    if (crashes_ < max_crashes_) {
      for (ProcId p : runnable.members()) node.alternatives.push_back({p, true});
    }
    path_.push_back(std::move(node));
  }
  const Node& node = path_[depth_];
  RRFD_ENSURE(node.chosen < node.alternatives.size());
  Choice c = node.alternatives[node.chosen];
  // Replay consistency: the tree must be deterministic under replay.
  RRFD_ENSURE_MSG(runnable.contains(c.next),
                  "nondeterministic simulation: replayed choice not runnable");
  ++depth_;
  if (c.crash) ++crashes_;
  return c;
}

ScheduleExplorer::Stats ScheduleExplorer::explore(
    const std::function<void(Scheduler&)>& run_one) {
  std::vector<Node> path;
  Stats stats;

  // Flight recorder: one round_start/round_end pair per explored schedule
  // ("round" = schedule ordinal), bracketing the runtime events the inner
  // Simulation emits. The trace of a failing exploration therefore ends
  // with the exact schedule (and its choices) that blew up.
  const bool tracing = trace::Tracer::on();
  constexpr auto kSub = trace::Substrate::kExplorer;

  while (stats.schedules < options_.max_schedules) {
    TreeScheduler scheduler(path, options_.max_crashes);
    if (tracing) {
      trace::record(trace::EventKind::kRoundStart, kSub, -1,
                    static_cast<std::int32_t>(stats.schedules),
                    static_cast<std::uint64_t>(path.size()));
    }
    run_one(scheduler);
    ++stats.schedules;
    if (tracing) {
      trace::record(trace::EventKind::kRoundEnd, kSub, -1,
                    static_cast<std::int32_t>(stats.schedules - 1));
    }

    // Backtrack: advance the deepest node with an unexplored alternative.
    while (!path.empty() &&
           path.back().chosen + 1 >= path.back().alternatives.size()) {
      path.pop_back();
    }
    if (path.empty()) {
      stats.exhausted = true;
      return stats;
    }
    ++path.back().chosen;
  }
  return stats;
}

}  // namespace rrfd::runtime
