#include "runtime/sim.h"

#include "trace/trace.h"
#include "util/check.h"

namespace rrfd::runtime {

int Context::n() const { return sim_->n(); }

void Context::step() { sim_->process_step(id_); }

Simulation::Simulation(int n, Body body) {
  RRFD_REQUIRE(0 < n && n <= core::kMaxProcesses);
  RRFD_REQUIRE(body != nullptr);
  bodies_.assign(static_cast<std::size_t>(n), body);
  states_.assign(static_cast<std::size_t>(n), State::kNotStarted);
  crash_flags_.assign(static_cast<std::size_t>(n), false);
  finished_.assign(static_cast<std::size_t>(n), false);
}

Simulation::Simulation(std::vector<Body> bodies) : bodies_(std::move(bodies)) {
  RRFD_REQUIRE(!bodies_.empty() &&
               static_cast<int>(bodies_.size()) <= core::kMaxProcesses);
  for (const Body& b : bodies_) RRFD_REQUIRE(b != nullptr);
  states_.assign(bodies_.size(), State::kNotStarted);
  crash_flags_.assign(bodies_.size(), false);
  finished_.assign(bodies_.size(), false);
}

Simulation::~Simulation() {
  // If run() was never called (or threw), make sure threads can exit: crash
  // everything still pending and join.
  if (started_) {
    for (std::size_t i = 0; i < bodies_.size(); ++i) {
      MutexLock lk(mu_);
      if (finished_[i]) continue;
      crash_flags_[i] = true;
      turn_ = static_cast<ProcId>(i);
      cv_.notify_all();
      while (turn_ != -1) cv_.wait(mu_);
    }
  }
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void Simulation::process_main(ProcId id) {
  Context ctx(this, id);
  try {
    // Initial wait: do not run any body code until first granted a step.
    {
      MutexLock lk(mu_);
      states_[static_cast<std::size_t>(id)] = State::kBlocked;
      while (turn_ != id) cv_.wait(mu_);
      if (crash_flags_[static_cast<std::size_t>(id)]) throw Crashed{};
      states_[static_cast<std::size_t>(id)] = State::kRunning;
    }
    bodies_[static_cast<std::size_t>(id)](ctx);
  } catch (const Crashed&) {
    // Normal crash unwinding; nothing to record here (the scheduler knows).
  } catch (...) {
    MutexLock lk(mu_);
    if (!first_error_) first_error_ = std::current_exception();
  }
  MutexLock lk(mu_);
  states_[static_cast<std::size_t>(id)] = State::kDone;
  finished_[static_cast<std::size_t>(id)] = true;
  turn_ = -1;
  cv_.notify_all();
}

void Simulation::process_step(ProcId id) {
  MutexLock lk(mu_);
  // Yield the baton back to the scheduler...
  states_[static_cast<std::size_t>(id)] = State::kBlocked;
  turn_ = -1;
  cv_.notify_all();
  // ...and wait to be granted the next step.
  while (turn_ != id) cv_.wait(mu_);
  if (crash_flags_[static_cast<std::size_t>(id)]) throw Crashed{};
  states_[static_cast<std::size_t>(id)] = State::kRunning;
}

void Simulation::grant(ProcId id) {
  MutexLock lk(mu_);
  turn_ = id;
  cv_.notify_all();
  while (turn_ != -1) cv_.wait(mu_);
}

SimOutcome Simulation::run(Scheduler& scheduler, int max_steps) {
  RRFD_REQUIRE_MSG(!started_, "Simulation is single-use");
  started_ = true;

  const int count = n();
  SimOutcome outcome(count);

  // Flight recorder: every scheduler choice and crash injection becomes a
  // trace event, so a recorded schedule can be replayed verbatim through a
  // ScriptedScheduler (see trace/replay.h). Sampled once per run.
  const bool tracing = trace::Tracer::on();
  constexpr auto kSub = trace::Substrate::kRuntime;
  if (tracing) {
    trace::record(trace::EventKind::kRunBegin, kSub, count, 0,
                  static_cast<std::uint64_t>(max_steps));
  }

  threads_.reserve(static_cast<std::size_t>(count));
  for (ProcId i = 0; i < count; ++i) {
    threads_.emplace_back([this, i] { process_main(i); });
  }

  ProcessSet runnable = ProcessSet::all(count);
  while (!runnable.empty()) {
    if (outcome.steps >= max_steps) {
      // Budget-forced crashes are wind-down, not scheduler choices; they
      // are deliberately not traced so a replayed schedule stays faithful.
      crash_all_remaining(runnable, outcome);
      for (std::thread& t : threads_) t.join();
      threads_.clear();
      throw StepBudgetExhausted(max_steps);
    }

    Scheduler::Choice choice = scheduler.pick(runnable, outcome.steps);
    RRFD_REQUIRE_MSG(runnable.contains(choice.next),
                     "scheduler picked a process that is not runnable");

    if (choice.crash) {
      if (tracing) {
        trace::record(trace::EventKind::kCrash, kSub, choice.next,
                      outcome.steps);
      }
      {
        MutexLock lk(mu_);
        crash_flags_[static_cast<std::size_t>(choice.next)] = true;
      }
      grant(choice.next);  // wakes it; its pending step() throws Crashed
      outcome.crashed.add(choice.next);
      runnable.remove(choice.next);
      continue;
    }

    if (tracing) {
      trace::record(trace::EventKind::kSchedChoice, kSub, choice.next,
                    outcome.steps);
    }
    grant(choice.next);
    outcome.schedule.push_back(choice.next);
    ++outcome.steps;

    bool done;
    {
      MutexLock lk(mu_);
      done = finished_[static_cast<std::size_t>(choice.next)];
    }
    if (done) {
      if (!outcome.crashed.contains(choice.next)) {
        outcome.completed.add(choice.next);
      }
      runnable.remove(choice.next);
    }
  }

  for (std::thread& t : threads_) t.join();
  threads_.clear();

  std::exception_ptr err;
  {
    // The joins above already order every process write before this read;
    // taking the lock keeps the access inside the annotated discipline.
    MutexLock lk(mu_);
    err = first_error_;
  }
  if (err) std::rethrow_exception(err);
  if (tracing) {
    trace::record(trace::EventKind::kRunEnd, kSub, -1, outcome.steps,
                  outcome.completed.bits(), outcome.crashed.bits());
  }
  return outcome;
}

void Simulation::crash_all_remaining(ProcessSet remaining,
                                     SimOutcome& outcome) {
  for (ProcId p : remaining.members()) {
    {
      MutexLock lk(mu_);
      if (finished_[static_cast<std::size_t>(p)]) continue;
      crash_flags_[static_cast<std::size_t>(p)] = true;
    }
    grant(p);
    outcome.crashed.add(p);
  }
}

}  // namespace rrfd::runtime
