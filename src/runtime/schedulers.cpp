#include "runtime/schedulers.h"

#include <bit>
#include <cstdint>

#include "core/words.h"
#include "util/check.h"

namespace rrfd::runtime {

Scheduler::Choice RoundRobinScheduler::pick(const ProcessSet& runnable,
                                            int /*step*/) {
  RRFD_REQUIRE(!runnable.empty());
  // Lowest id strictly greater than last_, wrapping around. Masking off
  // bits 0..last_ turns that into one countr_zero; last_ = 63 would shift
  // by 64, so it short-circuits straight to the wrap.
  const std::uint64_t above =
      last_ >= 63 ? 0 : runnable.bits() & (~std::uint64_t{0} << (last_ + 1));
  last_ = above != 0 ? std::countr_zero(above) : runnable.min();
  return {last_, false};
}

RandomScheduler::RandomScheduler(std::uint64_t seed, double crash_prob,
                                 int max_crashes)
    : rng_(seed), crash_prob_(crash_prob), max_crashes_(max_crashes) {
  RRFD_REQUIRE(max_crashes >= 0);
}

Scheduler::Choice RandomScheduler::pick(const ProcessSet& runnable,
                                        int /*step*/) {
  RRFD_REQUIRE(!runnable.empty());
  // k-th member in increasing order == members()[k], without the vector.
  const ProcId p = core::nth_set_bit(
      runnable.bits(),
      static_cast<int>(
          rng_.below(static_cast<std::uint64_t>(runnable.size()))));
  if (crashes_ < max_crashes_ && rng_.chance(crash_prob_)) {
    ++crashes_;
    return {p, true};
  }
  return {p, false};
}

ScriptedScheduler::ScriptedScheduler(std::vector<Choice> script)
    : script_(std::move(script)) {}

Scheduler::Choice ScriptedScheduler::pick(const ProcessSet& runnable,
                                          int /*step*/) {
  RRFD_REQUIRE(!runnable.empty());
  if (next_ < script_.size()) {
    Choice c = script_[next_++];
    if (runnable.contains(c.next)) return c;
  }
  return {runnable.min(), false};
}

}  // namespace rrfd::runtime
