#include "runtime/schedulers.h"

#include "util/check.h"

namespace rrfd::runtime {

Scheduler::Choice RoundRobinScheduler::pick(const ProcessSet& runnable,
                                            int /*step*/) {
  RRFD_REQUIRE(!runnable.empty());
  // Lowest id strictly greater than last_, wrapping around.
  for (ProcId p : runnable.members()) {
    if (p > last_) {
      last_ = p;
      return {p, false};
    }
  }
  last_ = runnable.min();
  return {last_, false};
}

RandomScheduler::RandomScheduler(std::uint64_t seed, double crash_prob,
                                 int max_crashes)
    : rng_(seed), crash_prob_(crash_prob), max_crashes_(max_crashes) {
  RRFD_REQUIRE(max_crashes >= 0);
}

Scheduler::Choice RandomScheduler::pick(const ProcessSet& runnable,
                                        int /*step*/) {
  RRFD_REQUIRE(!runnable.empty());
  const std::vector<ProcId> members = runnable.members();
  const ProcId p =
      members[static_cast<std::size_t>(rng_.below(members.size()))];
  if (crashes_ < max_crashes_ && rng_.chance(crash_prob_)) {
    ++crashes_;
    return {p, true};
  }
  return {p, false};
}

ScriptedScheduler::ScriptedScheduler(std::vector<Choice> script)
    : script_(std::move(script)) {}

Scheduler::Choice ScriptedScheduler::pick(const ProcessSet& runnable,
                                          int /*step*/) {
  RRFD_REQUIRE(!runnable.empty());
  if (next_ < script_.size()) {
    Choice c = script_[next_++];
    if (runnable.contains(c.next)) return c;
  }
  return {runnable.min(), false};
}

}  // namespace rrfd::runtime
